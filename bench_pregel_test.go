package bench

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"ppaassembler/internal/pregel"
)

// The engine-shuffle regression workload: a message-heavy Pregel job whose
// per-superstep traffic dominates compute, mirroring
// internal/pregel.BenchmarkShuffle. The emission test below re-runs it via
// testing.Benchmark and writes BENCH_pregel.json so CI archives the perf
// trajectory of the engine's hot path.
const (
	shuffleVertices   = 20_000
	shuffleFanout     = 8
	shuffleSupersteps = 6
	shuffleWorkers    = 4
)

// shuffleBenchmark returns a benchmark function running the canonical
// shuffle workload in the given mode and accumulating total messages.
func shuffleBenchmark(parallel bool, msgs *int64) func(b *testing.B) {
	return func(b *testing.B) {
		g := pregel.NewGraph[int64, int64](pregel.Config{Workers: shuffleWorkers, Parallel: parallel})
		for i := 0; i < shuffleVertices; i++ {
			g.AddVertex(pregel.VertexID(i), 0)
		}
		*msgs = 0 // testing.Benchmark invokes this repeatedly; keep the final run's count
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st, err := g.Run(func(ctx *pregel.Context[int64], id pregel.VertexID, val *int64, in []int64) {
				for _, m := range in {
					*val += m
				}
				if ctx.Superstep() >= shuffleSupersteps {
					ctx.VoteToHalt()
					return
				}
				for j := 0; j < shuffleFanout; j++ {
					dst := pregel.VertexID((uint64(id)*2654435761 + uint64(j)*40503 + 7) % shuffleVertices)
					ctx.Send(dst, int64(id)+int64(j))
				}
			})
			if err != nil {
				b.Fatal(err)
			}
			*msgs += st.Messages
		}
	}
}

// shuffleResult is one mode's row in BENCH_pregel.json.
type shuffleResult struct {
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	MsgsPerSec  float64 `json:"msgs_per_sec"`
}

// benchArtifact is the schema of BENCH_pregel.json.
type benchArtifact struct {
	GeneratedUnix int64 `json:"generated_unix"`
	NumCPU        int   `json:"num_cpu"`
	GoMaxProcs    int   `json:"go_max_procs"`
	Workload      struct {
		Vertices   int `json:"vertices"`
		Fanout     int `json:"fanout"`
		Supersteps int `json:"supersteps"`
		Workers    int `json:"workers"`
	} `json:"workload"`
	Sequential shuffleResult `json:"sequential"`
	Parallel   shuffleResult `json:"parallel"`
	// ParallelSpeedup is sequential ns/op divided by parallel ns/op; > 1
	// means goroutine-per-worker execution wins on this host. Expect < 1 on
	// single-core runners and > 1 from 4 cores up.
	ParallelSpeedup float64 `json:"parallel_speedup"`
}

// runShuffleMode measures one mode with testing.Benchmark.
func runShuffleMode(parallel bool) shuffleResult {
	var msgs int64
	r := testing.Benchmark(shuffleBenchmark(parallel, &msgs))
	return shuffleResult{
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		MsgsPerSec:  float64(msgs) / r.T.Seconds(),
	}
}

// TestEmitPregelBenchArtifact runs the shuffle workload in both modes and
// writes BENCH_pregel.json to the path in $BENCH_PREGEL_JSON. Without the
// variable it skips, so plain `go test ./...` stays fast; CI sets it and
// uploads the artifact:
//
//	BENCH_PREGEL_JSON=BENCH_pregel.json go test -run TestEmitPregelBenchArtifact .
func TestEmitPregelBenchArtifact(t *testing.T) {
	path := os.Getenv("BENCH_PREGEL_JSON")
	if path == "" {
		t.Skip("set BENCH_PREGEL_JSON=<path> to emit the benchmark artifact")
	}
	var a benchArtifact
	a.GeneratedUnix = time.Now().Unix()
	a.NumCPU = runtime.NumCPU()
	a.GoMaxProcs = runtime.GOMAXPROCS(0)
	a.Workload.Vertices = shuffleVertices
	a.Workload.Fanout = shuffleFanout
	a.Workload.Supersteps = shuffleSupersteps
	a.Workload.Workers = shuffleWorkers
	a.Sequential = runShuffleMode(false)
	a.Parallel = runShuffleMode(true)
	if a.Parallel.NsPerOp > 0 {
		a.ParallelSpeedup = float64(a.Sequential.NsPerOp) / float64(a.Parallel.NsPerOp)
	}
	out, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: sequential %d ns/op %d allocs/op, parallel %d ns/op %d allocs/op, speedup %.2fx (%d CPUs)",
		path, a.Sequential.NsPerOp, a.Sequential.AllocsPerOp,
		a.Parallel.NsPerOp, a.Parallel.AllocsPerOp, a.ParallelSpeedup, a.NumCPU)

	// Regression gates that hold on any hardware: the arena-based shuffle
	// must stay allocation-light (the pre-arena engine spent ~480k allocs on
	// this workload; the floor guards the ≥50% reduction with huge margin),
	// and parallel mode must not lose badly to sequential when enough cores
	// are present. The speedup threshold sits below 1.0 to absorb scheduler
	// jitter on shared CI runners — a genuine serialization regression shows
	// up far below it, and the artifact records the exact ratio either way.
	if a.Sequential.AllocsPerOp > 240_000 {
		t.Errorf("sequential shuffle allocs/op = %d, want <= 240000 (arena regression)", a.Sequential.AllocsPerOp)
	}
	if a.NumCPU >= 4 && a.ParallelSpeedup < 0.9 {
		t.Errorf("parallel shuffle much slower than sequential on %d cores (speedup %.2fx)", a.NumCPU, a.ParallelSpeedup)
	}
}
