package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"ppaassembler/internal/core"
	"ppaassembler/internal/genome"
	"ppaassembler/internal/pregel"
	"ppaassembler/internal/readsim"
	"ppaassembler/internal/scaffold"
	"ppaassembler/internal/transport"
)

// The engine-shuffle regression workload: a message-heavy Pregel job whose
// per-superstep traffic dominates compute, mirroring
// internal/pregel.BenchmarkShuffle. The emission test below re-runs it via
// testing.Benchmark and writes BENCH_pregel.json so CI archives the perf
// trajectory of the engine's hot path.
const (
	shuffleVertices   = 20_000
	shuffleFanout     = 8
	shuffleSupersteps = 6
	shuffleWorkers    = 4
)

// shuffleBenchmark returns a benchmark function running the canonical
// shuffle workload in the given mode and accumulating total messages plus
// their local/remote tier split.
func shuffleBenchmark(parallel, overlap bool, msgs, local, remote *int64) func(b *testing.B) {
	return func(b *testing.B) {
		g := pregel.NewGraph[int64, int64](pregel.Config{Workers: shuffleWorkers, Parallel: parallel, Overlap: overlap})
		for i := 0; i < shuffleVertices; i++ {
			g.AddVertex(pregel.VertexID(i), 0)
		}
		*msgs, *local, *remote = 0, 0, 0 // testing.Benchmark invokes this repeatedly; keep the final run's count
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st, err := g.Run(func(ctx *pregel.Context[int64], id pregel.VertexID, val *int64, in []int64) {
				for _, m := range in {
					*val += m
				}
				if ctx.Superstep() >= shuffleSupersteps {
					ctx.VoteToHalt()
					return
				}
				for j := 0; j < shuffleFanout; j++ {
					dst := pregel.VertexID((uint64(id)*2654435761 + uint64(j)*40503 + 7) % shuffleVertices)
					ctx.Send(dst, int64(id)+int64(j))
				}
			})
			if err != nil {
				b.Fatal(err)
			}
			*msgs += st.Messages
			*local += st.LocalMessages
			*remote += st.RemoteMessages
		}
	}
}

// shuffleResult is one mode's row in BENCH_pregel.json. LocalMsgs and
// RemoteMsgs report the network-tier split of one run's traffic (new
// fields; the pre-existing fields are unchanged for trajectory
// comparability).
type shuffleResult struct {
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	MsgsPerSec  float64 `json:"msgs_per_sec"`
	LocalMsgs   int64   `json:"local_msgs"`
	RemoteMsgs  int64   `json:"remote_msgs"`
}

// benchArtifact is the schema of BENCH_pregel.json.
type benchArtifact struct {
	GeneratedUnix int64 `json:"generated_unix"`
	NumCPU        int   `json:"num_cpu"`
	GoMaxProcs    int   `json:"go_max_procs"`
	Workload      struct {
		Vertices   int `json:"vertices"`
		Fanout     int `json:"fanout"`
		Supersteps int `json:"supersteps"`
		Workers    int `json:"workers"`
	} `json:"workload"`
	Sequential shuffleResult `json:"sequential"`
	Parallel   shuffleResult `json:"parallel"`
	// ParallelOverlap is the parallel workload with compute/delivery
	// overlap on (-overlap): same traffic and output, barrier tax removed.
	ParallelOverlap shuffleResult `json:"parallel_overlap"`
	// ParallelSpeedup is sequential ns/op divided by parallel ns/op; > 1
	// means goroutine-per-worker execution wins on this host. Expect < 1 on
	// single-core runners and > 1 from 4 cores up.
	ParallelSpeedup float64 `json:"parallel_speedup"`
	// OverlapSpeedup is barriered-parallel ns/op divided by overlapped
	// ns/op: the measured barrier tax on this host.
	OverlapSpeedup float64 `json:"overlap_speedup"`
	// ParallelSpeedupValid gates interpretation of the two speedups: a run
	// with GOMAXPROCS < 2 executes "parallel" goroutines on one thread, so
	// the ratios measure scheduler overhead, not parallelism.
	// ParallelSpeedupNote carries the human-readable caveat.
	ParallelSpeedupValid bool   `json:"parallel_speedup_valid"`
	ParallelSpeedupNote  string `json:"parallel_speedup_note,omitempty"`

	// Partitioners benchmarks the engine shuffle on a neighbor-exchange
	// (ring) workload under each placement strategy: same traffic, only
	// the local/remote split — and so the simulated wire load — moves.
	Partitioners []partitionerShuffle `json:"partitioner_shuffle"`
	// Pipeline runs the standard paired-end assemble+scaffold workload
	// under each named partitioner and records its remote-message fraction
	// plus two simulated makespans: the communication-bound regime the
	// paper positions the system in (latency + network only), which is
	// deterministic, and the default measured-compute model, which is
	// host-noisy.
	Pipeline []pipelinePartitioner `json:"pipeline_partitioners"`
	// Adaptive reruns the pipeline with online repartitioning enabled
	// (hash base + live vertex migration) and compares it against the best
	// static placements: the migrated run must beat the static minimizer on
	// both the remote-message fraction and the communication-bound
	// makespan, with the migration traffic itself charged to the clock.
	Adaptive adaptivePartitioning `json:"adaptive_partitioning"`
	// CheckpointIO reruns the standard pipeline with checkpointing every 5
	// supersteps against the in-memory store and records the checkpoint
	// traffic — the deterministic I/O cost of the fault-tolerance cadence.
	CheckpointIO checkpointIO `json:"checkpoint_io"`
	// CheckpointThroughput measures the v2 binary checkpoint codec against
	// the v1 gob baseline on a synthetic worker partition: encode/decode
	// MB/s and speedups, plus the delta-checkpoint size ratio.
	CheckpointThroughput pregel.CheckpointCodecStats `json:"checkpoint_throughput"`
	// Transport runs the shuffle workload over the real TCP transport
	// (worker depots on localhost) and compares the measured wire time
	// against what the two-tier CostModel's remote bandwidth predicts for
	// the same byte volume — the simulated cost model checked against an
	// actual network stack.
	Transport transportBench `json:"transport"`
}

// transportBench is the real-wire validation section of the artifact.
type transportBench struct {
	Workers        int   `json:"workers"`
	FramesSent     int64 `json:"frames_sent"`
	FramesReceived int64 `json:"frames_received"`
	BytesSent      int64 `json:"bytes_sent"`
	BytesReceived  int64 `json:"bytes_received"`
	RemoteMessages int64 `json:"remote_messages"`
	// MeasuredWireSeconds is time actually spent inside socket reads and
	// writes (transport.Counters.WireNs).
	MeasuredWireSeconds float64 `json:"measured_wire_seconds"`
	// PredictedWireSeconds prices the same total byte volume at the
	// CostModel's remote-tier bandwidth (DefaultCost().BytesPerSecond).
	PredictedWireSeconds float64 `json:"predicted_wire_seconds"`
	// MeasuredOverPredicted > 1 means the real localhost wire is slower
	// than the modeled 117 MiB/s cluster link, < 1 faster.
	MeasuredOverPredicted float64 `json:"measured_over_predicted"`
}

// checkpointIO is the checkpoint-traffic section of the artifact.
type checkpointIO struct {
	Every         int   `json:"every_supersteps"`
	Saves         int64 `json:"saves"`
	Restores      int64 `json:"restores"`
	BytesWritten  int64 `json:"bytes_written"`
	BytesRestored int64 `json:"bytes_restored"`
}

// partitionerShuffle is one engine-level placement row.
type partitionerShuffle struct {
	Name           string  `json:"name"`
	NsPerOp        int64   `json:"ns_per_op"`
	LocalMsgs      int64   `json:"local_msgs"`
	RemoteMsgs     int64   `json:"remote_msgs"`
	RemoteFraction float64 `json:"remote_fraction"`
}

// pipelinePartitioner is one pipeline-level placement row.
type pipelinePartitioner struct {
	Name           string  `json:"name"`
	LocalMsgs      int64   `json:"local_msgs"`
	RemoteMsgs     int64   `json:"remote_msgs"`
	RemoteFraction float64 `json:"remote_fraction"`
	// NetSimSeconds is the communication-bound simulated makespan
	// (superstep latency + two-tier network, compute zeroed):
	// deterministic, so partitioners are exactly comparable.
	NetSimSeconds float64 `json:"net_sim_seconds"`
	// SimSeconds is the default-model makespan (measured compute included);
	// best of three runs to damp host noise.
	SimSeconds float64 `json:"sim_seconds"`
	// Note flags rows whose headline numbers need context (e.g. affinity
	// matching hash on this workload) so the artifact is not misread.
	Note string `json:"note,omitempty"`
}

// adaptiveRow is one adaptive-vs-static comparison row: the static rows
// carry zero migration counters by construction.
type adaptiveRow struct {
	Name             string  `json:"name"`
	RemoteFraction   float64 `json:"remote_fraction"`
	NetSimSeconds    float64 `json:"net_sim_seconds"`
	Migrations       int64   `json:"migrations"`
	MigratedVertices int64   `json:"migrated_vertices"`
	MigrationBytes   int64   `json:"migration_bytes"`
}

// adaptivePartitioning is the online-repartitioning section of the
// artifact: the policy that ran and the three-way comparison.
type adaptivePartitioning struct {
	Every    int           `json:"every_supersteps"`
	MaxMoves int           `json:"max_moves"`
	Rows     []adaptiveRow `json:"rows"`
}

// runShuffleMode measures one mode with testing.Benchmark.
func runShuffleMode(parallel, overlap bool) shuffleResult {
	var msgs, local, remote int64
	r := testing.Benchmark(shuffleBenchmark(parallel, overlap, &msgs, &local, &remote))
	n := int64(r.N)
	if n == 0 {
		n = 1
	}
	return shuffleResult{
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		MsgsPerSec:  float64(msgs) / r.T.Seconds(),
		LocalMsgs:   local / n,
		RemoteMsgs:  remote / n,
	}
}

// runPartitionerShuffle measures the ring workload — every vertex talks to
// its ID neighbors, the engine-level proxy for DBG-edge traffic — under one
// placement strategy.
func runPartitionerShuffle(name string, part pregel.Partitioner) partitionerShuffle {
	var local, remote int64
	r := testing.Benchmark(func(b *testing.B) {
		g := pregel.NewGraph[int64, int64](pregel.Config{Workers: shuffleWorkers, Partitioner: part})
		for i := 0; i < shuffleVertices; i++ {
			g.AddVertex(pregel.VertexID(i), 0)
		}
		local, remote = 0, 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st, err := g.Run(func(ctx *pregel.Context[int64], id pregel.VertexID, val *int64, in []int64) {
				for _, m := range in {
					*val += m
				}
				if ctx.Superstep() >= shuffleSupersteps {
					ctx.VoteToHalt()
					return
				}
				for j := 1; j <= shuffleFanout/2; j++ {
					ctx.Send(pregel.VertexID((uint64(id)+uint64(j))%shuffleVertices), int64(id))
					ctx.Send(pregel.VertexID((uint64(id)+shuffleVertices-uint64(j))%shuffleVertices), int64(id))
				}
			})
			if err != nil {
				b.Fatal(err)
			}
			local, remote = st.LocalMessages, st.RemoteMessages
		}
	})
	row := partitionerShuffle{Name: name, NsPerOp: r.NsPerOp(), LocalMsgs: local, RemoteMsgs: remote}
	if t := local + remote; t > 0 {
		row.RemoteFraction = float64(remote) / float64(t)
	}
	return row
}

// benchGenomeReads builds the standard paired-end workload shared by the
// pipeline rows (fixed seeds, deterministic).
func benchGenomeReads() ([]string, []scaffold.Pair, error) {
	ref, err := genome.Generate(genome.Spec{
		Name: "bench", Length: 30_000, Repeats: 2, RepeatLen: 300, Seed: 41,
	})
	if err != nil {
		return nil, nil, err
	}
	simPairs, err := readsim.SimulatePairs(ref, readsim.PairProfile{
		Profile:    readsim.Profile{ReadLen: 100, Coverage: 18, Seed: 42},
		InsertMean: 600, InsertSD: 50,
	})
	if err != nil {
		return nil, nil, err
	}
	pairs := make([]scaffold.Pair, len(simPairs))
	for i, p := range simPairs {
		pairs[i] = scaffold.Pair{R1: p.R1, R2: p.R2}
	}
	return readsim.Interleave(simPairs), pairs, nil
}

// pipelineRun is one assemble+scaffold measurement: traffic split,
// simulated makespan and (for adaptive runs) the migration counters.
type pipelineRun struct {
	local, remote    int64
	simSeconds       float64
	migrations       int64
	migratedVertices int64
	migrationBytes   int64
}

// runPipelinePartitioner assembles and scaffolds the standard workload
// under one partitioner, cost model and (optionally) an online
// repartitioning policy.
func runPipelinePartitioner(name string, workers int, cost pregel.CostModel, pol *pregel.RepartitionPolicy, reads []string, pairs []scaffold.Pair) (pipelineRun, error) {
	opt := core.DefaultOptions(workers)
	opt.K = 21
	opt.Cost = cost
	part, err := core.MakePartitioner(name, opt.K)
	if err != nil {
		return pipelineRun{}, err
	}
	opt.Partitioner = part
	opt.Repartition = pol
	res, err := core.Assemble(pregel.ShardSlice(reads, workers), opt)
	if err != nil {
		return pipelineRun{}, err
	}
	if _, _, err := core.ScaffoldContigs(res, opt, pairs, scaffold.Options{InsertMean: 600, InsertSD: 50}); err != nil {
		return pipelineRun{}, err
	}
	return pipelineRun{
		local: res.LocalMessages, remote: res.RemoteMessages,
		simSeconds: res.SimSeconds,
		migrations: res.Migrations, migratedVertices: res.MigratedVertices,
		migrationBytes: res.MigrationBytes,
	}, nil
}

// commBoundCost is the communication-dominated regime the paper positions
// Pregel+ assembly in: superstep latency and the two network tiers priced
// as by DefaultCost, compute zeroed so the comparison is deterministic.
func commBoundCost() pregel.CostModel {
	c := pregel.DefaultCost()
	c.ComputeScale = 1e-12
	return c
}

// runPipelineRows builds the per-partitioner pipeline section.
func runPipelineRows(t *testing.T) []pipelinePartitioner {
	t.Helper()
	reads, pairs, err := benchGenomeReads()
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	var rows []pipelinePartitioner
	for _, name := range []string{"hash", "range", "minimizer", "affinity"} {
		run, err := runPipelinePartitioner(name, workers, commBoundCost(), nil, reads, pairs)
		if err != nil {
			t.Fatal(err)
		}
		best := math.Inf(1)
		for i := 0; i < 3; i++ {
			r, err := runPipelinePartitioner(name, workers, pregel.CostModel{}, nil, reads, pairs)
			if err != nil {
				t.Fatal(err)
			}
			if r.simSeconds < best {
				best = r.simSeconds
			}
		}
		row := pipelinePartitioner{
			Name: name, LocalMsgs: run.local, RemoteMsgs: run.remote,
			NetSimSeconds: run.simSeconds, SimSeconds: best,
		}
		if tot := run.local + run.remote; tot > 0 {
			row.RemoteFraction = float64(run.remote) / float64(tot)
		}
		rows = append(rows, row)
	}
	// The affinity strategy only re-places the post-rebuild mixed graph, a
	// small slice of the canned pipeline's traffic, so its headline numbers
	// sit at hash scatter. Flag that in the artifact rather than letting the
	// row read as "affinity does nothing": its greedy junction heuristic is
	// the seed of the online migration solver measured in
	// adaptive_partitioning, where it acts on every superstep's traffic.
	var hashFrac float64
	for _, r := range rows {
		if r.Name == "hash" {
			hashFrac = r.RemoteFraction
		}
	}
	for i := range rows {
		if rows[i].Name == "affinity" && math.Abs(rows[i].RemoteFraction-hashFrac) < 0.01 {
			rows[i].Note = "matches hash on this workload: affinity re-places only the post-rebuild mixed graph; see adaptive_partitioning for its heuristic applied online"
		}
	}
	return rows
}

// adaptivePolicy is the repartitioning policy the bench section runs:
// decide every 2 supersteps with an uncapped (for this graph size) move
// budget, so placement chases the traffic as fast as the engine allows.
func adaptivePolicy() *pregel.RepartitionPolicy {
	return &pregel.RepartitionPolicy{Every: 2, MaxMoves: 1 << 20}
}

// runAdaptiveRows builds the adaptive-vs-static comparison from the static
// pipeline rows already measured plus one adaptive run (hash base + live
// migration) under the same communication-bound cost model.
func runAdaptiveRows(t *testing.T, static []pipelinePartitioner) adaptivePartitioning {
	t.Helper()
	reads, pairs, err := benchGenomeReads()
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	pol := adaptivePolicy()
	sec := adaptivePartitioning{Every: pol.Every, MaxMoves: pol.MaxMoves}
	for _, name := range []string{"hash", "minimizer"} {
		for _, r := range static {
			if r.Name == name {
				sec.Rows = append(sec.Rows, adaptiveRow{
					Name: name, RemoteFraction: r.RemoteFraction, NetSimSeconds: r.NetSimSeconds,
				})
			}
		}
	}
	run, err := runPipelinePartitioner("hash", workers, commBoundCost(), pol, reads, pairs)
	if err != nil {
		t.Fatal(err)
	}
	row := adaptiveRow{
		Name:          "adaptive(hash)",
		NetSimSeconds: run.simSeconds,
		Migrations:    run.migrations, MigratedVertices: run.migratedVertices,
		MigrationBytes: run.migrationBytes,
	}
	if tot := run.local + run.remote; tot > 0 {
		row.RemoteFraction = float64(run.remote) / float64(tot)
	}
	sec.Rows = append(sec.Rows, row)
	return sec
}

// runCheckpointIO measures the checkpoint traffic of the standard pipeline
// at the default fault-tolerance cadence (every 5 supersteps, in-memory
// store). The counts and bytes are deterministic for a fixed workload.
func runCheckpointIO(t *testing.T) checkpointIO {
	t.Helper()
	reads, pairs, err := benchGenomeReads()
	if err != nil {
		t.Fatal(err)
	}
	const workers, every = 4, 5
	opt := core.DefaultOptions(workers)
	opt.K = 21
	opt.CheckpointEvery = every
	res, err2 := core.Assemble(pregel.ShardSlice(reads, workers), opt)
	if err2 != nil {
		t.Fatal(err2)
	}
	if _, _, err := core.ScaffoldContigs(res, opt, pairs, scaffold.Options{InsertMean: 600, InsertSD: 50}); err != nil {
		t.Fatal(err)
	}
	return checkpointIO{
		Every:         every,
		Saves:         res.CheckpointSaves,
		Restores:      res.CheckpointRestores,
		BytesWritten:  res.CheckpointBytesWritten,
		BytesRestored: res.CheckpointBytesRestored,
	}
}

// runTransportBench runs the canonical shuffle workload once over the real
// TCP transport against in-process worker depots on localhost, and returns
// the measured-vs-modeled wire comparison.
func runTransportBench(t *testing.T) transportBench {
	t.Helper()
	addrs := make([]string, shuffleWorkers)
	for i := range shuffleWorkers {
		srv := &transport.WorkerServer{Worker: i}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = addr
		go srv.Serve()
		t.Cleanup(func() { srv.Close() })
	}
	tp, err := transport.DialTCP(transport.TCPOptions{Peers: addrs})
	if err != nil {
		t.Fatal(err)
	}
	defer tp.Close()
	g := pregel.NewGraph[int64, int64](pregel.Config{Workers: shuffleWorkers, Parallel: true, Transport: tp})
	for i := 0; i < shuffleVertices; i++ {
		g.AddVertex(pregel.VertexID(i), 0)
	}
	st, err := g.Run(func(ctx *pregel.Context[int64], id pregel.VertexID, val *int64, in []int64) {
		for _, m := range in {
			*val += m
		}
		if ctx.Superstep() >= shuffleSupersteps {
			ctx.VoteToHalt()
			return
		}
		for j := 0; j < shuffleFanout; j++ {
			dst := pregel.VertexID((uint64(id)*2654435761 + uint64(j)*40503 + 7) % shuffleVertices)
			ctx.Send(dst, int64(id)+int64(j))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	c := tp.Counters()
	row := transportBench{
		Workers:             shuffleWorkers,
		FramesSent:          c.FramesSent,
		FramesReceived:      c.FramesRecv,
		BytesSent:           c.BytesSent,
		BytesReceived:       c.BytesRecv,
		RemoteMessages:      st.RemoteMessages,
		MeasuredWireSeconds: float64(c.WireNs) / 1e9,
	}
	row.PredictedWireSeconds = float64(c.BytesSent+c.BytesRecv) / pregel.DefaultCost().BytesPerSecond
	if row.PredictedWireSeconds > 0 {
		row.MeasuredOverPredicted = row.MeasuredWireSeconds / row.PredictedWireSeconds
	}
	return row
}

// TestEmitPregelBenchArtifact runs the shuffle workload in both modes and
// writes BENCH_pregel.json to the path in $BENCH_PREGEL_JSON. Without the
// variable it skips, so plain `go test ./...` stays fast; CI sets it and
// uploads the artifact:
//
//	BENCH_PREGEL_JSON=BENCH_pregel.json go test -run TestEmitPregelBenchArtifact .
func TestEmitPregelBenchArtifact(t *testing.T) {
	path := os.Getenv("BENCH_PREGEL_JSON")
	if path == "" {
		t.Skip("set BENCH_PREGEL_JSON=<path> to emit the benchmark artifact")
	}
	var a benchArtifact
	a.GeneratedUnix = time.Now().Unix()
	a.NumCPU = runtime.NumCPU()
	a.GoMaxProcs = runtime.GOMAXPROCS(0)
	a.Workload.Vertices = shuffleVertices
	a.Workload.Fanout = shuffleFanout
	a.Workload.Supersteps = shuffleSupersteps
	a.Workload.Workers = shuffleWorkers
	a.Sequential = runShuffleMode(false, false)
	a.Parallel = runShuffleMode(true, false)
	a.ParallelOverlap = runShuffleMode(true, true)
	if a.Parallel.NsPerOp > 0 {
		a.ParallelSpeedup = float64(a.Sequential.NsPerOp) / float64(a.Parallel.NsPerOp)
	}
	if a.ParallelOverlap.NsPerOp > 0 {
		a.OverlapSpeedup = float64(a.Parallel.NsPerOp) / float64(a.ParallelOverlap.NsPerOp)
	}
	a.ParallelSpeedupValid = a.GoMaxProcs >= 2
	if !a.ParallelSpeedupValid {
		a.ParallelSpeedupNote = fmt.Sprintf(
			"measured with GOMAXPROCS=%d on %d CPU(s): parallel and overlap speedups reflect goroutine scheduling overhead, not parallel execution, and must not be read as engine regressions",
			a.GoMaxProcs, a.NumCPU)
	}
	for _, p := range []struct {
		name string
		part pregel.Partitioner
	}{
		{"hash", pregel.HashPartitioner{}},
		// The shuffle workload's IDs are dense in [0, vertices), so a
		// 15-bit range covers them; the ring traffic then stays almost
		// entirely inside each worker's contiguous span.
		{"range", pregel.RangePartitioner{Bits: 15}},
	} {
		a.Partitioners = append(a.Partitioners, runPartitionerShuffle(p.name, p.part))
	}
	a.Pipeline = runPipelineRows(t)
	a.Adaptive = runAdaptiveRows(t, a.Pipeline)
	a.CheckpointIO = runCheckpointIO(t)
	ct, err := pregel.MeasureCheckpointCodec(50_000, 2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	a.CheckpointThroughput = ct
	a.Transport = runTransportBench(t)
	out, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: sequential %d ns/op %d allocs/op, parallel %d ns/op %d allocs/op, speedup %.2fx (%d CPUs)",
		path, a.Sequential.NsPerOp, a.Sequential.AllocsPerOp,
		a.Parallel.NsPerOp, a.Parallel.AllocsPerOp, a.ParallelSpeedup, a.NumCPU)

	// Regression gates that hold on any hardware: the arena-based shuffle
	// must stay allocation-light (the pre-arena engine spent ~480k allocs on
	// this workload; the floor guards the ≥50% reduction with huge margin),
	// and parallel mode must not lose badly to sequential when enough cores
	// are present. The speedup threshold sits below 1.0 to absorb scheduler
	// jitter on shared CI runners — a genuine serialization regression shows
	// up far below it, and the artifact records the exact ratio either way.
	if a.Sequential.AllocsPerOp > 240_000 {
		t.Errorf("sequential shuffle allocs/op = %d, want <= 240000 (arena regression)", a.Sequential.AllocsPerOp)
	}
	// The speedup gates only bind when the measurement is valid (the
	// committed artifact from a GOMAXPROCS=1 runner recorded a meaningless
	// ratio; the validity flag exists so that can never recur silently).
	if a.ParallelSpeedupValid && a.GoMaxProcs >= 4 && a.ParallelSpeedup <= 1.0 {
		t.Errorf("parallel shuffle not faster than sequential with GOMAXPROCS=%d (speedup %.2fx)", a.GoMaxProcs, a.ParallelSpeedup)
	}
	if !a.ParallelSpeedupValid {
		t.Logf("NOTE: %s", a.ParallelSpeedupNote)
	}
	// Overlap must never change the traffic (determinism contract holds in
	// every mode; only the wall-clock barrier cost may move).
	if a.ParallelOverlap.LocalMsgs != a.Parallel.LocalMsgs || a.ParallelOverlap.RemoteMsgs != a.Parallel.RemoteMsgs {
		t.Errorf("overlap changed shuffle traffic: %d/%d local/remote, barriered %d/%d",
			a.ParallelOverlap.LocalMsgs, a.ParallelOverlap.RemoteMsgs, a.Parallel.LocalMsgs, a.Parallel.RemoteMsgs)
	}

	// Locality gates — all deterministic, so they hold on any hardware: on
	// the ring workload range placement must leave only span-boundary
	// traffic on the wire, and on the standard paired-end pipeline the
	// minimizer placement must cut both the remote-message fraction and
	// the communication-bound simulated makespan below hash scatter.
	rows := map[string]partitionerShuffle{}
	for _, r := range a.Partitioners {
		rows[r.Name] = r
		t.Logf("shuffle %-5s: %d ns/op, remote fraction %.3f", r.Name, r.NsPerOp, r.RemoteFraction)
	}
	if rows["range"].RemoteFraction >= rows["hash"].RemoteFraction/2 {
		t.Errorf("ring shuffle: range remote fraction %.3f not well below hash's %.3f",
			rows["range"].RemoteFraction, rows["hash"].RemoteFraction)
	}
	pipe := map[string]pipelinePartitioner{}
	for _, r := range a.Pipeline {
		pipe[r.Name] = r
		t.Logf("pipeline %-9s: remote fraction %.3f, net makespan %.3fs, full makespan %.3fs",
			r.Name, r.RemoteFraction, r.NetSimSeconds, r.SimSeconds)
	}
	if pipe["minimizer"].RemoteFraction >= pipe["hash"].RemoteFraction*0.95 {
		t.Errorf("pipeline: minimizer remote fraction %.3f not at least 5%% below hash's %.3f",
			pipe["minimizer"].RemoteFraction, pipe["hash"].RemoteFraction)
	}
	if pipe["minimizer"].NetSimSeconds >= pipe["hash"].NetSimSeconds {
		t.Errorf("pipeline: minimizer communication-bound makespan %.4fs not below hash's %.4fs",
			pipe["minimizer"].NetSimSeconds, pipe["hash"].NetSimSeconds)
	}

	// Adaptive gate — deterministic: hash placement plus live migration
	// must beat the best static strategy (the minimizer) on both the
	// remote-message fraction and the communication-bound makespan, with
	// the relocation traffic charged to the same clock. It must also have
	// actually migrated — a zero-move adaptive run is just hash.
	ad := map[string]adaptiveRow{}
	for _, r := range a.Adaptive.Rows {
		ad[r.Name] = r
		t.Logf("adaptive %-14s: remote fraction %.4f, net makespan %.4fs, %d migrations / %d vertices / %d bytes",
			r.Name, r.RemoteFraction, r.NetSimSeconds, r.Migrations, r.MigratedVertices, r.MigrationBytes)
	}
	adp, stat := ad["adaptive(hash)"], ad["minimizer"]
	if adp.Migrations == 0 || adp.MigratedVertices == 0 || adp.MigrationBytes == 0 {
		t.Errorf("adaptive run committed no migrations: %+v", adp)
	}
	if adp.RemoteFraction >= stat.RemoteFraction {
		t.Errorf("adaptive remote fraction %.4f not below static minimizer's %.4f",
			adp.RemoteFraction, stat.RemoteFraction)
	}
	if adp.NetSimSeconds >= stat.NetSimSeconds {
		t.Errorf("adaptive communication-bound makespan %.4fs (migration charged) not below static minimizer's %.4fs",
			adp.NetSimSeconds, stat.NetSimSeconds)
	}

	// Checkpoint gate: with a 5-superstep cadence and no faults, the
	// standard pipeline must actually write checkpoints and restore none.
	t.Logf("checkpoint I/O: %d saves (%d bytes), %d restores (%d bytes)",
		a.CheckpointIO.Saves, a.CheckpointIO.BytesWritten,
		a.CheckpointIO.Restores, a.CheckpointIO.BytesRestored)
	if a.CheckpointIO.Saves == 0 || a.CheckpointIO.BytesWritten == 0 {
		t.Errorf("checkpoint I/O section empty: saves=%d bytes=%d",
			a.CheckpointIO.Saves, a.CheckpointIO.BytesWritten)
	}
	if a.CheckpointIO.Restores != 0 {
		t.Errorf("fault-free run restored %d checkpoints", a.CheckpointIO.Restores)
	}

	// Transport gate: the shuffle workload over real TCP must have moved
	// real traffic and metered real wire time; the measured/predicted ratio
	// itself is recorded, not gated — it is a property of the host's
	// loopback stack, not of the engine.
	tb := a.Transport
	t.Logf("transport: %d workers, %d frames / %d bytes sent, wire %.3fs measured vs %.3fs modeled (%.2fx)",
		tb.Workers, tb.FramesSent, tb.BytesSent, tb.MeasuredWireSeconds, tb.PredictedWireSeconds, tb.MeasuredOverPredicted)
	if tb.FramesSent == 0 || tb.BytesSent == 0 || tb.BytesReceived == 0 {
		t.Errorf("transport section recorded no traffic: %+v", tb)
	}
	if tb.MeasuredWireSeconds <= 0 || tb.RemoteMessages == 0 {
		t.Errorf("transport section recorded no wire time or remote messages: %+v", tb)
	}

	// Codec gates: the v2 binary codec must beat the gob baseline on both
	// encode and decode time per snapshot (the margin is large — ~2x on
	// encode — so >1.0 holds even on noisy shared runners), and a 5%-dirty
	// delta must be a small fraction of a full snapshot.
	t.Logf("checkpoint codec: binary %.0f/%.0f MB/s enc/dec, gob %.0f/%.0f MB/s, speedup %.2fx/%.2fx, delta ratio %.3f",
		ct.BinEncodeMBps, ct.BinDecodeMBps, ct.GobEncodeMBps, ct.GobDecodeMBps,
		ct.EncodeSpeedup, ct.DecodeSpeedup, ct.DeltaRatio)
	if ct.EncodeSpeedup <= 1.0 {
		t.Errorf("binary checkpoint encode not faster than gob (%.2fx)", ct.EncodeSpeedup)
	}
	if ct.DecodeSpeedup <= 1.0 {
		t.Errorf("binary checkpoint decode not faster than gob (%.2fx)", ct.DecodeSpeedup)
	}
	if ct.DeltaRatio >= 0.5 {
		t.Errorf("delta checkpoint at %.0f%% dirty is %.2fx the full snapshot; expected well under half",
			100*ct.DirtyFraction, ct.DeltaRatio)
	}
	if ct.FullBytes >= ct.GobBytes {
		t.Errorf("binary full snapshot (%d bytes) not smaller than gob (%d bytes)", ct.FullBytes, ct.GobBytes)
	}
}
