module ppaassembler

go 1.24
