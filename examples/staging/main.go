// Staging: demonstrate the two ways consecutive jobs exchange data (§II):
// in-memory conversion (the Pregel+ extension, used by core.Assemble) and a
// round trip through the sharded part-file store (the HDFS path). The DBG
// is built, dumped to "HDFS", reloaded by a fresh process-equivalent, and
// assembly continues identically.
//
// Run with: go run ./examples/staging
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"ppaassembler/internal/core"
	"ppaassembler/internal/dbg"
	"ppaassembler/internal/genome"
	"ppaassembler/internal/pregel"
	"ppaassembler/internal/readsim"
	"ppaassembler/internal/shardio"
)

const k = 21

func main() {
	ref, err := genome.Generate(genome.Spec{Name: "stage", Length: 40_000, Seed: 51})
	if err != nil {
		log.Fatal(err)
	}
	reads, err := readsim.Simulate(ref, readsim.Profile{ReadLen: 100, Coverage: 18, Seed: 52})
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "ppa-staging-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cfg := pregel.Config{Workers: 4}
	clock := pregel.NewSimClock(pregel.DefaultCost())

	// Job 1: DBG construction, then convert to the segment graph and dump
	// it to the store (one part-file per worker, like HDFS blocks).
	build, err := dbg.BuildDBG(clock, cfg, pregel.ShardSlice(reads, cfg.Workers), k, 1)
	if err != nil {
		log.Fatal(err)
	}
	g := core.NewSegmentGraph(build, cfg, k)
	store, err := shardio.Open(filepath.Join(dir, "segments"))
	if err != nil {
		log.Fatal(err)
	}
	if err := core.DumpSegments(g, store); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dumped %d segment vertices to %s\n", g.VertexCount(), store.Dir())

	// Job 2 (a different worker count, as a new cluster might have):
	// reload and continue with labeling + merging.
	cfg2 := pregel.Config{Workers: 8}
	g2, err := core.LoadSegments(store, cfg2, clock)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reloaded %d vertices onto %d workers\n", g2.VertexCount(), cfg2.Workers)
	if _, err := core.LabelContigs(g2, core.LabelerLR); err != nil {
		log.Fatal(err)
	}
	merged, err := core.MergeContigs(g2, k, 80)
	if err != nil {
		log.Fatal(err)
	}

	// Contigs can be staged the same way.
	ctgStore, err := shardio.Open(filepath.Join(dir, "contigs"))
	if err != nil {
		log.Fatal(err)
	}
	if err := core.DumpContigs(merged.Contigs, ctgStore); err != nil {
		log.Fatal(err)
	}
	back, err := core.LoadContigs(ctgStore)
	if err != nil {
		log.Fatal(err)
	}
	n := 0
	for _, shard := range back {
		n += len(shard)
	}
	fmt.Printf("merged %d contig groups; %d contigs staged and reloaded intact\n",
		merged.Groups, n)
	fmt.Printf("end-to-end simulated time including staging shuffles: %.2fs\n", clock.Seconds())
}
