// Distributed: run the full assembly pipeline over the TCP transport —
// real sockets, real framed lanes, real worker death — and prove the
// distributed run is byte-identical to the in-memory one.
//
// The topology is coordinator-centric: compute stays in this process, and
// each worker is a lane depot (an external shuffle service) that stores
// the encoded message lanes addressed to it. Here the three depots live
// in-process on ephemeral localhost ports so the example is self-contained
// and self-terminating, but they speak the exact protocol of the real
// multi-process deployment:
//
//	ppa-assembler -serve-worker 0 -listen 127.0.0.1:9000 &
//	ppa-assembler -serve-worker 1 -listen 127.0.0.1:9001 &
//	ppa-assembler -serve-worker 2 -listen 127.0.0.1:9002 &
//	ppa-assembler -in reads.fastq -out contigs.fasta -workers 3 \
//	  -transport=tcp -peers 127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002 \
//	  -checkpoint ckpts -ckpt-every 5
//
// Mid-run, depot 1 kills itself after a fixed number of frames; a watchdog
// restarts it on the same port — empty, the way a respawned process comes
// back. The next lane read from it fails, the engine reports the worker
// down, rolls back to its latest checkpoint and replays. The final contigs
// still match the in-memory reference byte for byte.
//
// Run with: go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"runtime"
	"sort"
	"strings"

	"ppaassembler/internal/core"
	"ppaassembler/internal/genome"
	"ppaassembler/internal/pregel"
	"ppaassembler/internal/readsim"
	"ppaassembler/internal/transport"
)

const workers = 3

func assemble(reads []string, mutate func(*core.Options)) *core.Result {
	opt := core.DefaultOptions(workers)
	opt.K = 21
	if mutate != nil {
		mutate(&opt)
	}
	res, err := core.Assemble(pregel.ShardSlice(reads, opt.Workers), opt)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

// fingerprint canonicalizes a contig set for comparison.
func fingerprint(res *core.Result) string {
	var seqs []string
	for _, c := range res.Contigs {
		seq := c.Node.Seq.String()
		if rc := c.Node.Seq.ReverseComplement().String(); rc < seq {
			seq = rc
		}
		seqs = append(seqs, seq)
	}
	sort.Strings(seqs)
	return strings.Join(seqs, "\n")
}

// startDepot brings up one in-process lane depot on an ephemeral localhost
// port and returns its bound address.
func startDepot(worker int) (*transport.WorkerServer, string) {
	srv := &transport.WorkerServer{Worker: worker}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve()
	return srv, addr
}

func main() {
	ref, err := genome.Generate(genome.Spec{Name: "dist", Length: 30_000, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	reads, err := readsim.Simulate(ref, readsim.Profile{ReadLen: 100, Coverage: 16, Seed: 22})
	if err != nil {
		log.Fatal(err)
	}

	// 1. In-memory reference: the historical zero-copy shuffle.
	mem := assemble(reads, nil)
	fmt.Printf("in-memory run:   %d contigs, %.2fs simulated\n",
		len(mem.Contigs), mem.SimSeconds)

	// 2. Three lane depots, one per logical worker. Depot 1 is rigged to
	// die after 120 frames; the watchdog below respawns it on the same
	// port with an empty depot, exactly like a restarted OS process.
	peers := make([]string, workers)
	restarted := make(chan string, 1)
	for w := 0; w < workers; w++ {
		srv, addr := startDepot(w)
		peers[w] = addr
		if w == 1 {
			crashed := make(chan struct{})
			srv.ExitAfterFrames = 120
			srv.Exit = func(int) {
				srv.Close()
				close(crashed)
				runtime.Goexit() // end the handler goroutine like os.Exit would
			}
			go func(addr string) {
				<-crashed
				respawn := &transport.WorkerServer{Worker: 1}
				if _, err := respawn.Listen(addr); err != nil {
					log.Fatalf("respawn depot 1: %v", err)
				}
				go respawn.Serve()
				restarted <- addr
			}(addr)
		}
	}

	tp, err := transport.DialTCP(transport.TCPOptions{Peers: peers})
	if err != nil {
		log.Fatal(err)
	}
	defer tp.Close()
	fmt.Printf("depots:          %s\n", strings.Join(peers, " "))

	// 3. The same assembly over TCP, checkpointing every 3 rounds so the
	// engine has something to roll back to when depot 1 dies.
	tcp := assemble(reads, func(o *core.Options) {
		o.Transport = tp
		o.CheckpointEvery = 3
	})
	c := tp.Counters()
	fmt.Printf("tcp run:         %d contigs, %.2fs simulated\n",
		len(tcp.Contigs), tcp.SimSeconds)
	fmt.Printf("wire traffic:    %d frames / %.1f MiB sent, %d frames / %.1f MiB received, %d barriers\n",
		c.FramesSent, float64(c.BytesSent)/(1<<20),
		c.FramesRecv, float64(c.BytesRecv)/(1<<20), c.Barriers)

	select {
	case addr := <-restarted:
		fmt.Printf("worker death:    depot 1 crashed after 120 frames and was respawned on %s;\n", addr)
		fmt.Printf("                 the engine rolled back to its latest checkpoint and replayed\n")
	default:
		log.Fatal("depot 1 never crashed — the workload was too small to trip the crash hook")
	}

	if fingerprint(tcp) != fingerprint(mem) {
		log.Fatal("distributed contigs differ from the in-memory run!")
	}
	fmt.Println("                 contigs byte-identical to the in-memory run ✓")
}
