// Ops cookbook: a tour of the workflow layer — the paper's operation API
// (§II, §IV) reified as typed, stageable jobs.
//
//  1. Spell a workflow as a CLI-style spec and let the registry compile it.
//  2. Build the same thing programmatically with the Plan API.
//  3. Choose staging at a seam: in-memory handoff (the Pregel+ convert
//     extension) vs a dump/reload through a shardio store (the paper's
//     HDFS positioning) — and see that the outputs are identical.
//  4. Watch the planner reject an ill-typed composition before any compute.
//  5. Thread fault tolerance through a composition: checkpoints land under
//     per-op deterministic job keys, and an injected crash recovers.
//
// Run with: go run ./examples/ops-cookbook
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ppaassembler/internal/core"
	"ppaassembler/internal/fastx"
	"ppaassembler/internal/genome"
	"ppaassembler/internal/pregel"
	"ppaassembler/internal/readsim"
	"ppaassembler/internal/workflow"
)

func main() {
	ref, err := genome.Generate(genome.Spec{
		Name: "cookbook", Length: 40_000, Repeats: 3, RepeatLen: 250, Seed: 61,
	})
	if err != nil {
		log.Fatal(err)
	}
	reads, err := readsim.Simulate(ref, readsim.Profile{
		ReadLen: 100, Coverage: 16, SubRate: 0.003, Seed: 62,
	})
	if err != nil {
		log.Fatal(err)
	}
	shards := pregel.ShardSlice(reads, 4)

	// ── 1. A workflow as a spec string ─────────────────────────────────
	// The registry turns op names + key=value parameters into configured
	// ops; OpDefaults supplies whatever the spec leaves unset.
	reg := core.OpRegistry(core.DefaultOpDefaults())
	spec := "build,label,merge,bubble,rebuild,link,tiptrim:minlen=40,label,merge,fasta"
	plan, err := workflow.Parse(reg, spec, core.ArtReads)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1. parsed spec into %d ops: %s\n", len(plan.Ops()), plan)

	st := &core.State{Reads: shards}
	if err := plan.Run(&workflow.Env{Workers: 4}, st); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   assembled %d contigs (tiptrim ran with minlen=40)\n\n", len(st.Fasta))

	// ── 2. The same composition through the typed Plan API ─────────────
	// Each op is a struct whose fields are its entire configuration — the
	// old monolithic core.Options decomposes into exactly these.
	api := workflow.NewPlan[core.State](core.ArtReads).
		Then(core.BuildDBGOp{K: 21, Theta: 1}).
		Then(core.LabelOp{Algo: core.LabelerLR}).
		Then(core.MergeOp{TipLen: 80}).
		Then(core.EmitFastaOp{MinLen: 200})
	if err := api.Err(); err != nil {
		log.Fatal(err)
	}
	st2 := &core.State{Reads: shards}
	if err := api.Run(&workflow.Env{Workers: 4}, st2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2. one-round plan %q: %d contigs >= 200 bp\n\n", api.String(), len(st2.Fasta))

	// ── 3. Staging choices at a seam ───────────────────────────────────
	// By default artifacts hand over in memory. A StageOp dumps the live
	// graph/contigs to a shardio store (one part-file per worker, like
	// HDFS blocks) and reloads them — byte-identical results, at the cost
	// of simulated (and real) I/O.
	stageDir := filepath.Join(os.TempDir(), "ppa-cookbook-stage")
	defer os.RemoveAll(stageDir)
	staged := workflow.NewPlan[core.State](core.ArtReads).
		Then(core.BuildDBGOp{K: 21, Theta: 1}).
		Then(core.StageOp{Dir: stageDir}). // the explicit seam
		Then(core.LabelOp{Algo: core.LabelerLR}).
		Then(core.MergeOp{TipLen: 80}).
		Then(core.EmitFastaOp{MinLen: 200})
	st3 := &core.State{Reads: shards}
	if err := staged.Run(&workflow.Env{Workers: 4}, st3); err != nil {
		log.Fatal(err)
	}
	parts, _ := filepath.Glob(filepath.Join(stageDir, "segments", "part-*"))
	var memBuf, stagedBuf bytes.Buffer
	fastx.WriteFasta(&memBuf, st2.Fasta, 70)
	fastx.WriteFasta(&stagedBuf, st3.Fasta, 70)
	fmt.Printf("3. staging seam wrote %d part-files; staged output identical to in-memory: %v\n\n",
		len(parts), bytes.Equal(memBuf.Bytes(), stagedBuf.Bytes()))

	// ── 4. Typed validation catches bad compositions ───────────────────
	// Merging needs fresh labels; a staging seam drops them (only durable
	// segment data survives a dump/reload), so this plan is rejected at
	// build time, before any reads are touched.
	bad := workflow.NewPlan[core.State](core.ArtReads).
		Then(core.BuildDBGOp{K: 21, Theta: 1}).
		Then(core.LabelOp{Algo: core.LabelerLR}).
		Then(core.StageOp{}).
		Then(core.MergeOp{TipLen: 80})
	fmt.Printf("4. planner rejects a seam that loses labels:\n   %v\n\n", bad.Err())

	// ── 5. Fault tolerance across a composition ────────────────────────
	// One checkpoint store and one crash schedule thread through every op;
	// job keys carry the op's plan position, so a re-executed plan resumes
	// deterministically. Round 12 of the composition loses worker 2 and
	// the run recovers from the latest checkpoint.
	ckptDir := filepath.Join(os.TempDir(), "ppa-cookbook-ckpt")
	defer os.RemoveAll(ckptDir)
	store, err := pregel.NewDirCheckpointer(ckptDir)
	if err != nil {
		log.Fatal(err)
	}
	ft := workflow.NewPlan[core.State](core.ArtReads).
		Then(core.BuildDBGOp{K: 21, Theta: 1}).
		Then(core.LabelOp{Algo: core.LabelerLR}).
		Then(core.MergeOp{TipLen: 80}).
		Then(core.EmitFastaOp{MinLen: 200})
	faults := pregel.NewFaultPlan(pregel.Fault{Round: 12, Worker: 2})
	st4 := &core.State{Reads: shards}
	err = ft.Run(&workflow.Env{
		Workers: 4, CheckpointEvery: 4, Checkpointer: store, Faults: faults,
	}, st4)
	if err != nil {
		log.Fatal(err)
	}
	var ftBuf bytes.Buffer
	fastx.WriteFasta(&ftBuf, st4.Fasta, 70)
	entries, _ := os.ReadDir(ckptDir)
	keys := map[string]bool{}
	for _, e := range entries {
		if i := strings.Index(e.Name(), "@"); i > 0 {
			keys[e.Name()[:i]] = true
		}
	}
	var names []string
	for k := range keys {
		names = append(names, k)
	}
	sort.Strings(names)
	fmt.Printf("5. crash at round 12 fired=%v, recovered output identical: %v\n",
		faults.FiredCount() == 1, bytes.Equal(ftBuf.Bytes(), memBuf.Bytes()))
	fmt.Printf("   per-op checkpoint key families: %s\n", strings.Join(names, ", "))
}
