// Observability: trace a full assembly run at every layer and inspect
// what the engine did.
//
// The example assembles a simulated read set with the whole telemetry
// seam switched on:
//
//   - a Chrome trace_event file (load it at https://ui.perfetto.dev or
//     chrome://tracing) with one span per workflow op, Pregel job,
//     superstep, compute/shuffle/barrier sub-phase, MapReduce phase and
//     checkpoint save — each carrying both wall time and the simulated
//     cluster clock in its args;
//   - a JSONL trace of the same events, one greppable object per line;
//   - a Prometheus-text metrics dump (message tiers, bytes, checkpoint
//     I/O, queue-depth histogram);
//   - an in-memory Recorder, used here to print a per-layer span census.
//
// Run with: go run ./examples/observability
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"ppaassembler/internal/core"
	"ppaassembler/internal/genome"
	"ppaassembler/internal/pregel"
	"ppaassembler/internal/readsim"
	"ppaassembler/internal/telemetry"
)

func main() {
	// Workload: a 30 kb reference with planted repeats, sequenced to 15x.
	ref, err := genome.Generate(genome.Spec{
		Name: "obs", Length: 30_000, Repeats: 2, RepeatLen: 300, Seed: 21,
	})
	if err != nil {
		log.Fatal(err)
	}
	reads, err := readsim.Simulate(ref, readsim.Profile{ReadLen: 100, Coverage: 15, Seed: 22})
	if err != nil {
		log.Fatal(err)
	}

	// Output directory: the example is run from the repo root in CI, so
	// artifacts go to a temp dir the OS will clean up.
	dir, err := os.MkdirTemp("", "ppa-observability-*")
	if err != nil {
		log.Fatal(err)
	}
	tracePath := filepath.Join(dir, "trace.json")
	jsonlPath := filepath.Join(dir, "trace.jsonl")
	metricsPath := filepath.Join(dir, "metrics.prom")

	chromeFile, err := os.Create(tracePath)
	if err != nil {
		log.Fatal(err)
	}
	jsonlFile, err := os.Create(jsonlPath)
	if err != nil {
		log.Fatal(err)
	}
	chrome := telemetry.NewChromeWriter(chromeFile)
	jsonl := telemetry.NewJSONLWriter(jsonlFile)
	recorder := telemetry.NewRecorder()
	metrics := telemetry.NewRegistry()

	// One tracer fans out to all three sinks; the engine pays a single
	// Emit per event either way.
	opt := core.DefaultOptions(4)
	opt.K = 21
	opt.CheckpointEvery = 5 // exercise checkpoint spans too
	opt.Tracer = telemetry.Multi(chrome, jsonl, recorder)
	opt.Metrics = metrics

	res, err := core.Assemble(pregel.ShardSlice(reads, opt.Workers), opt)
	if err != nil {
		log.Fatal(err)
	}
	if err := chrome.Close(); err != nil {
		log.Fatal(err)
	}
	if err := jsonl.Close(); err != nil {
		log.Fatal(err)
	}
	mf, err := os.Create(metricsPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := metrics.WritePrometheus(mf); err != nil {
		log.Fatal(err)
	}
	mf.Close()

	fmt.Printf("assembled %d contigs (%.2fs simulated cluster time)\n\n", len(res.Contigs), res.SimSeconds)

	// Span census: how many spans each layer emitted.
	type catName struct{ cat, name string }
	counts := map[catName]int{}
	for _, e := range recorder.Events() {
		if e.Kind == telemetry.KindBegin || e.Kind == telemetry.KindInstant {
			counts[catName{e.Cat, e.Name}]++
		}
	}
	keys := make([]catName, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].cat != keys[j].cat {
			return keys[i].cat < keys[j].cat
		}
		return keys[i].name < keys[j].name
	})
	fmt.Println("span census (begin/instant events per cat/name):")
	for _, k := range keys {
		fmt.Printf("  %-10s %-18s %5d\n", k.cat, k.name, counts[k])
	}

	// A few headline metrics, straight from the registry.
	local := metrics.Counter("pregel_messages_local_total").Value()
	remote := metrics.Counter("pregel_messages_remote_total").Value()
	fmt.Printf("\nmessages: %d local + %d remote (%.1f%% remote)\n",
		local, remote, 100*float64(remote)/float64(local+remote))
	fmt.Printf("checkpoints: %d saves, %d bytes\n",
		metrics.Counter("pregel_checkpoint_saves_total").Value(),
		metrics.Counter("pregel_checkpoint_bytes_written_total").Value())

	fmt.Printf("\nartifacts:\n  %s\n  %s\n  %s\n", tracePath, jsonlPath, metricsPath)
	fmt.Println("\nopen the .json trace at https://ui.perfetto.dev (or chrome://tracing);")
	fmt.Println("each span's args carry sim_us — the simulated cluster clock — next to wall time.")
	fmt.Println("the same run is available from the CLI:")
	fmt.Println("  ppa-assembler -in reads.fastq -out contigs.fasta -trace trace.json -trace-format chrome -metrics metrics.prom")
}
