// Error correction: show what bubble filtering (op ④), tip removing (op ⑤)
// and the second labeling/merging round (arrow ⑥) buy on erroneous reads.
// The same reads are assembled once with Rounds=1 (stop after the first
// merge, no error correction) and once with the full workflow; the N50
// improvement mirrors the paper's §V observation that the second merge
// round roughly doubles N50 (1074 -> 2070 on HC-2).
//
// Run with: go run ./examples/errorcorrection
package main

import (
	"fmt"
	"log"

	"ppaassembler/internal/core"
	"ppaassembler/internal/genome"
	"ppaassembler/internal/pregel"
	"ppaassembler/internal/quality"
	"ppaassembler/internal/readsim"
)

func main() {
	ref, err := genome.Generate(genome.Spec{
		Name: "errdemo", Length: 80_000, Repeats: 6, RepeatLen: 250, Seed: 21,
	})
	if err != nil {
		log.Fatal(err)
	}
	// 0.5% substitution errors: enough to litter the DBG with tips and
	// bubbles at 15x coverage.
	reads, err := readsim.Simulate(ref, readsim.Profile{
		ReadLen: 100, Coverage: 15, SubRate: 0.005, Seed: 22,
	})
	if err != nil {
		log.Fatal(err)
	}

	run := func(rounds int) *core.Result {
		opt := core.DefaultOptions(4)
		opt.K = 21
		opt.Rounds = rounds
		res, err := core.Assemble(pregel.ShardSlice(reads, opt.Workers), opt)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	n50 := func(res *core.Result) int {
		var lens []int
		for _, c := range res.Contigs {
			lens = append(lens, c.Len())
		}
		return quality.N50(lens)
	}

	r1 := run(1)
	r2 := run(2)
	fmt.Printf("reads: %d at 0.5%% substitution errors\n", len(reads))
	fmt.Printf("round 1 only:   %5d contigs, N50 %6d\n", len(r1.Contigs), n50(r1))
	fmt.Printf("full workflow:  %5d contigs, N50 %6d\n", len(r2.Contigs), n50(r2))
	fmt.Printf("error correction: %d bubble arms pruned, %d tip vertices removed, %d+%d tips dropped at merge\n",
		r2.BubblesPruned, r2.TipVerticesRemoved, r2.TipsDroppedAtMerge[0], r2.TipsDroppedAtMerge[1])
	fmt.Printf("N50 growth factor: %.2fx (the paper reports ~2x on HC-2)\n",
		float64(n50(r2))/float64(n50(r1)))
}
