// Scaling: a miniature Figure 12 — assemble one dataset with all four
// assemblers across worker counts and print the simulated cluster times.
// The shapes to look for: PPA-assembler fastest and improving with
// workers; ABySS-style flat (its one-hop-per-round extension is a latency
// floor); Ray-style an order of magnitude slower; SWAP-style in between.
//
// Run with: go run ./examples/scaling
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"ppaassembler/internal/baselines"
	"ppaassembler/internal/genome"
	"ppaassembler/internal/pregel"
	"ppaassembler/internal/readsim"
)

func main() {
	ref, err := genome.Generate(genome.Spec{
		Name: "scaling", Length: 120_000, Repeats: 8, RepeatLen: 250, Seed: 31,
	})
	if err != nil {
		log.Fatal(err)
	}
	reads, err := readsim.Simulate(ref, readsim.Profile{
		ReadLen: 100, Coverage: 15, SubRate: 0.003, Seed: 32,
	})
	if err != nil {
		log.Fatal(err)
	}
	workerCounts := []int{1, 2, 4, 8, 16}
	asms := []baselines.Assembler{
		baselines.PPA{}, baselines.ABySS{}, baselines.Ray{}, baselines.SWAP{},
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "# workers")
	for _, a := range asms {
		fmt.Fprintf(tw, "\t%s", a.Name())
	}
	fmt.Fprintln(tw)
	for _, w := range workerCounts {
		fmt.Fprintf(tw, "%d", w)
		for _, a := range asms {
			res, err := a.Assemble(pregel.ShardSlice(reads, w), baselines.Options{
				K: 21, Theta: 1, TipLen: 80, Workers: w,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(tw, "\t%.2fs", res.SimSeconds)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Println("\n(simulated cluster seconds; see DESIGN.md for the cost model)")
}
