// Adaptive repartitioning: watch the engine beat its own best static
// placement by migrating vertices while the job runs.
//
// Static partitioners place a vertex once, from what is knowable before
// the run: the minimizer strategy co-locates DBG-adjacent k-mers and is
// the best static choice on genomic workloads. But the dominant stage of
// assembly — contig labeling by pointer-jumping list ranking — changes
// its communication pattern every round: each vertex talks to a partner
// twice as far along its contig as the round before, racing past any
// adjacency a static placement can see.
//
// With a RepartitionPolicy the engine observes the actual (sender,
// receiver) message traffic over a trailing window, condenses whole
// communicating components (contig chains) onto single workers at
// superstep barriers, and charges every relocated byte to the same
// simulated clock the savings accrue to. This example assembles one
// dataset three ways and prints the traffic split and the
// communication-bound makespan for each — watch the remote fraction drop
// below half of minimizer's while the contigs stay byte-identical.
//
// Run with: go run ./examples/adaptive-repartitioning
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"ppaassembler/internal/core"
	"ppaassembler/internal/genome"
	"ppaassembler/internal/pregel"
	"ppaassembler/internal/readsim"
)

func main() {
	ref, err := genome.Generate(genome.Spec{
		Name: "adaptive", Length: 30_000, Repeats: 2, RepeatLen: 300, Seed: 41,
	})
	if err != nil {
		log.Fatal(err)
	}
	reads, err := readsim.Simulate(ref, readsim.Profile{
		ReadLen: 100, Coverage: 18, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	const workers = 4

	// Communication-bound cost model: latency and the two network tiers as
	// by DefaultCost, compute zeroed, so the numbers below are
	// deterministic and isolate what placement controls.
	cost := pregel.DefaultCost()
	cost.ComputeScale = 1e-12

	type setup struct {
		label string
		part  string
		pol   *pregel.RepartitionPolicy
	}
	setups := []setup{
		{"hash (static)", "hash", nil},
		{"minimizer (static best)", "minimizer", nil},
		{"hash + adaptive", "hash", &pregel.RepartitionPolicy{Every: 2, MaxMoves: 1 << 20}},
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "placement\tremote msgs\tremote frac\tmakespan\tmigrations\tmoved vertices\tmoved bytes")
	var firstContigs []core.ContigRec
	for _, s := range setups {
		opt := core.DefaultOptions(workers)
		opt.K = 21
		opt.Cost = cost
		part, err := core.MakePartitioner(s.part, opt.K)
		if err != nil {
			log.Fatal(err)
		}
		opt.Partitioner = part
		opt.Repartition = s.pol
		res, err := core.Assemble(pregel.ShardSlice(reads, workers), opt)
		if err != nil {
			log.Fatal(err)
		}
		frac := float64(res.RemoteMessages) / float64(res.LocalMessages+res.RemoteMessages)
		fmt.Fprintf(tw, "%s\t%d\t%.3f\t%.4fs\t%d\t%d\t%d\n",
			s.label, res.RemoteMessages, frac, res.SimSeconds,
			res.Migrations, res.MigratedVertices, res.MigrationBytes)

		// Placement never changes output: every setup must produce the
		// same contigs, byte for byte.
		if firstContigs == nil {
			firstContigs = res.Contigs
		} else if err := sameContigs(firstContigs, res.Contigs); err != nil {
			log.Fatalf("%s changed assembly output: %v", s.label, err)
		}
	}
	tw.Flush()

	fmt.Println("\nAll three runs produced byte-identical contigs; the adaptive run")
	fmt.Println("pays for every relocated byte on the same clock (MigrationLatency +")
	fmt.Println("busiest sender / MigrationBytesPerSecond per decision) and still")
	fmt.Println("finishes ahead of the best static placement, because condensing a")
	fmt.Println("contig chain once keeps its pointer-jumping traffic local at every")
	fmt.Println("doubling distance that follows.")
}

func sameContigs(a, b []core.ContigRec) error {
	if len(a) != len(b) {
		return fmt.Errorf("contig count %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Node.Seq.String() != b[i].Node.Seq.String() {
			return fmt.Errorf("contig %d differs", i)
		}
	}
	return nil
}
