// Custom workflow: compose the toolkit's operations into a strategy the
// stock pipeline does not offer — the paper's central design point is that
// the five operations are composable building blocks ("can be assembled to
// implement various sequencing strategies"). This example builds the DBG
// (op ①), labels with the simplified S-V algorithm instead of list ranking
// (op ②), merges (op ③), then deliberately skips bubble filtering and runs
// only tip removal (op ⑤) before a final labeling/merging round.
//
// Since PR 4 the composition is a first-class workflow.Plan over the op
// catalog in internal/core: the planner type-checks the artifact flow
// before any compute, and one shared environment (clock, checkpoint store,
// fault plan) threads through every op. The same plan can be spelled on
// the command line as
//
//	ppa-assembler -workflow "build,svlabel,merge,rebuild,link,tiptrim,svlabel,merge,fasta"
//
// Run with: go run ./examples/customworkflow
package main

import (
	"fmt"
	"log"

	"ppaassembler/internal/core"
	"ppaassembler/internal/genome"
	"ppaassembler/internal/pregel"
	"ppaassembler/internal/readsim"
	"ppaassembler/internal/workflow"
)

const (
	k      = 21
	tipLen = 80
)

func main() {
	ref, err := genome.Generate(genome.Spec{
		Name: "custom", Length: 60_000, Repeats: 4, RepeatLen: 200, Seed: 41,
	})
	if err != nil {
		log.Fatal(err)
	}
	reads, err := readsim.Simulate(ref, readsim.Profile{
		ReadLen: 100, Coverage: 15, SubRate: 0.004, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The custom strategy as a typed plan: note there is no bubble op, and
	// both labeling rounds use the S-V variant. Validation runs as the
	// plan is built — try inserting MergeOp before LabelOp and the plan
	// reports the missing "labels" artifact instead of computing garbage.
	plan := workflow.NewPlan[core.State](core.ArtReads).
		Then(core.BuildDBGOp{K: k, Theta: 1}).
		Then(core.LabelOp{Algo: core.LabelerSV}).
		Then(core.MergeOp{TipLen: tipLen}).
		Then(core.RebuildOp{}). // straight to the mixed graph: bubble filtering skipped
		Then(core.LinkContigsOp{}).
		Then(core.TipTrimOp{MinLen: tipLen}).
		Then(core.LabelOp{Algo: core.LabelerSV}).
		Then(core.MergeOp{TipLen: tipLen})
	if err := plan.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: %s\n", plan)

	env := &workflow.Env{Workers: 4}
	st := &core.State{Reads: pregel.ShardSlice(reads, env.Workers)}
	if err := plan.Run(env, st); err != nil {
		log.Fatal(err)
	}

	m := &st.Metrics
	fmt.Printf("op1: %d k-mer vertices (%d/%d (k+1)-mers kept)\n",
		m.KmerVertices, m.K1Kept, m.K1Distinct)
	fmt.Printf("op2 (S-V): %d supersteps, %d messages\n",
		m.Labels[0].Supersteps, m.Labels[0].Messages)
	fmt.Printf("op3: %d contig groups, %d dropped as merge-time tips\n",
		m.MergeGroups[0], m.MergeDroppedTips[0])
	fmt.Printf("op5: %d tip vertices removed (bubble filtering skipped)\n",
		m.TipVerticesRemoved)

	contigs := pregel.Flatten(st.Contigs)
	total := 0
	for _, c := range contigs {
		total += c.Len()
	}
	fmt.Printf("final: %d contigs totaling %d bp (reference %d bp)\n",
		len(contigs), total, ref.Len())
	fmt.Printf("end-to-end simulated cluster time: %.2fs\n", env.Clock.Seconds())
}
