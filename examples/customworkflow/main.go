// Custom workflow: drive the toolkit's operations individually instead of
// through core.Assemble — the paper's central design point is that the five
// operations are composable building blocks ("can be assembled to implement
// various sequencing strategies"). This example builds the DBG (op ①),
// labels with the simplified S-V algorithm instead of list ranking (op ②),
// merges (op ③), then deliberately skips bubble filtering and runs only tip
// removal (op ⑤) before a final labeling/merging round — a custom strategy
// the stock pipeline does not offer.
//
// Run with: go run ./examples/customworkflow
package main

import (
	"fmt"
	"log"

	"ppaassembler/internal/core"
	"ppaassembler/internal/dbg"
	"ppaassembler/internal/genome"
	"ppaassembler/internal/pregel"
	"ppaassembler/internal/readsim"
)

const (
	k      = 21
	tipLen = 80
)

func main() {
	ref, err := genome.Generate(genome.Spec{
		Name: "custom", Length: 60_000, Repeats: 4, RepeatLen: 200, Seed: 41,
	})
	if err != nil {
		log.Fatal(err)
	}
	reads, err := readsim.Simulate(ref, readsim.Profile{
		ReadLen: 100, Coverage: 15, SubRate: 0.004, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}

	cfg := pregel.Config{Workers: 4}
	clock := pregel.NewSimClock(pregel.DefaultCost())

	// ① DBG construction (two mini-MapReduce phases).
	build, err := dbg.BuildDBG(clock, cfg, pregel.ShardSlice(reads, cfg.Workers), k, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("op1: %d k-mer vertices (%d/%d (k+1)-mers kept)\n",
		build.Graph.VertexCount(), build.K1Kept, build.K1Distinct)

	// In-memory conversion into the segment graph (the convert-UDF
	// extension of §II) and ② labeling — with S-V instead of LR.
	g := core.NewSegmentGraph(build, cfg, k)
	ls, err := core.LabelContigs(g, core.LabelerSV)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("op2 (S-V): %d supersteps, %d messages\n", ls.Supersteps, ls.Messages)

	// ③ merge.
	merged, err := core.MergeContigs(g, k, tipLen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("op3: %d contig groups, %d dropped as merge-time tips\n",
		merged.Groups, merged.DroppedTips)

	// Custom choice: SKIP op ④ (bubble filtering). Rebuild the mixed graph
	// and run op ⑤ (tip removal) only.
	g2 := core.BuildMixedGraph(g, merged.Contigs, cfg, clock)
	if _, err := core.LinkContigs(g2); err != nil {
		log.Fatal(err)
	}
	tips, err := core.RemoveTips(g2, k, tipLen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("op5: %d tip vertices removed (bubble filtering skipped)\n", tips.RemovedVertices)

	// ⑥②③: grow contigs once more.
	if _, err := core.LabelContigs(g2, core.LabelerSV); err != nil {
		log.Fatal(err)
	}
	final, err := core.MergeContigs(g2, k, tipLen)
	if err != nil {
		log.Fatal(err)
	}
	contigs := pregel.Flatten(final.Contigs)
	total := 0
	for _, c := range contigs {
		total += c.Len()
	}
	fmt.Printf("final: %d contigs totaling %d bp (reference %d bp)\n",
		len(contigs), total, ref.Len())
	fmt.Printf("end-to-end simulated cluster time: %.2fs\n", clock.Seconds())
}
