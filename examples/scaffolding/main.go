// Scaffolding walkthrough: simulate paired-end reads from a repeat-bearing
// genome, assemble contigs with the PPA workflow ①–⑥ (contigs break at every
// planted repeat), then run the paired-end scaffolding stage ⑦ — mate
// placement, link bundling, the ambiguity-filter handshake, S-V chain
// labeling, the ordering wave and list-ranked coordinates — and evaluate the
// scaffolds against the known reference.
//
// Run with: go run ./examples/scaffolding
package main

import (
	"fmt"
	"log"

	"ppaassembler/internal/core"
	"ppaassembler/internal/genome"
	"ppaassembler/internal/pregel"
	"ppaassembler/internal/quality"
	"ppaassembler/internal/readsim"
	"ppaassembler/internal/scaffold"
)

func main() {
	// 1. A 60 kbp reference with planted 300 bp repeats: each repeat pair
	// collapses into one DBG path, so the assembler's contigs stop at every
	// repeat junction — exactly the breaks paired ends can bridge.
	ref, err := genome.Generate(genome.Spec{
		Name: "scaffolding", Length: 60_000, Repeats: 4, RepeatLen: 300, Seed: 17,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Paired reads: 2x100 bp, 700 ± 60 bp inserts — long enough that a
	// fragment can span a whole repeat with both mates anchored in unique
	// flanking sequence.
	const insertMean, insertSD = 700, 60
	simPairs, err := readsim.SimulatePairs(ref, readsim.PairProfile{
		Profile:    readsim.Profile{ReadLen: 100, Coverage: 25, SubRate: 0.001, Seed: 18},
		InsertMean: insertMean, InsertSD: insertSD,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d read pairs from a %d bp reference\n", len(simPairs), ref.Len())

	// 3. Assemble. The repeats fragment the assembly into several contigs.
	opt := core.DefaultOptions(4)
	opt.K = 21
	reads := readsim.Interleave(simPairs)
	res, err := core.Assemble(pregel.ShardSlice(reads, opt.Workers), opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembled %d contigs (simulated %.2fs)\n", len(res.Contigs), res.SimSeconds)

	// 4. Scaffold stage ⑦ on the same simulated cluster clock. The insert
	// size is deliberately left at zero: the scaffolder estimates it from
	// pairs whose mates land on one contig.
	pairs := make([]scaffold.Pair, len(simPairs))
	for i, p := range simPairs {
		pairs[i] = scaffold.Pair{R1: p.R1, R2: p.R2}
	}
	sres, contigs, err := core.ScaffoldContigs(res, opt, pairs, scaffold.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimated insert: %.0f ± %.0f bp (true: %d ± %d)\n",
		sres.InsertMean, sres.InsertSD, insertMean, insertSD)
	fmt.Printf("links: %d bundles observed, %d kept after filtering\n",
		sres.LinkBundles, sres.LinksKept)
	for _, st := range sres.Jobs {
		fmt.Printf("  job %-20s %2d supersteps, %5d messages\n", st.Name, st.Supersteps, st.Messages)
	}
	multi := 0
	for _, s := range sres.Scaffolds {
		if s.Len() > 1 {
			multi++
			fmt.Printf("scaffold of %d contigs, gaps %v, span %d bp\n",
				s.Len(), s.Gaps, s.Span(contigs))
		}
	}
	fmt.Printf("%d scaffolds (%d multi-contig), pipeline simulated time %.2fs\n",
		len(sres.Scaffolds), multi, res.SimSeconds)

	// 5. Evaluate against the known reference: every join must be
	// consistent, with gaps sized to within ~2 insert standard deviations.
	recs := scaffold.Records(contigs, sres.Scaffolds)
	parts := make([]quality.ScaffoldParts, len(recs))
	for i, r := range recs {
		parts[i] = quality.ParseScaffold(r.Seq)
	}
	rep := quality.EvaluateScaffolds(parts, ref, 0, 2*insertSD)
	fmt.Printf("scaffold N50 %d (largest %d), %d joins, %d misjoins, mean gap error %.0f bp\n",
		rep.ScaffoldN50, rep.LargestScaffold, rep.Joins, rep.Misjoins, rep.MeanAbsGapError)
	if multi > 0 && rep.Misjoins == 0 && rep.GapsOutOfTolerance == 0 {
		fmt.Println("OK: repeats bridged with correctly sized gaps and no misjoins")
	} else {
		fmt.Println("note: scaffolding left breaks unbridged or mis-sized (try more coverage)")
	}
}
