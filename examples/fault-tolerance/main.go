// Fault tolerance: demonstrate superstep checkpointing and crash recovery
// on the full pipeline. The same paired-read set is assembled and
// scaffolded three times:
//
//  1. clean — no failures, no checkpoints (the reference output);
//  2. crashed — two workers are killed mid-pipeline by a FaultPlan; the
//     engine rolls back to the last checkpoint each time and replays;
//  3. resumed — the "process" is restarted over the on-disk checkpoints
//     left by a prior run and fast-forwards through every job.
//
// All three produce byte-identical contigs; only the simulated cluster
// time differs (recovery costs checkpoint reads plus replayed supersteps).
//
// Run with: go run ./examples/fault-tolerance
package main

import (
	"fmt"
	"log"
	"os"

	"ppaassembler/internal/core"
	"ppaassembler/internal/genome"
	"ppaassembler/internal/pregel"
	"ppaassembler/internal/readsim"
)

func assemble(reads []string, mutate func(*core.Options)) *core.Result {
	opt := core.DefaultOptions(4)
	opt.K = 21
	if mutate != nil {
		mutate(&opt)
	}
	res, err := core.Assemble(pregel.ShardSlice(reads, opt.Workers), opt)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

// fingerprint canonicalizes a contig set for comparison.
func fingerprint(res *core.Result) string {
	s := ""
	for _, c := range res.Contigs {
		seq := c.Node.Seq.String()
		if rc := c.Node.Seq.ReverseComplement().String(); rc < seq {
			seq = rc
		}
		s += seq + "\n"
	}
	return s
}

func main() {
	ref, err := genome.Generate(genome.Spec{Name: "ft", Length: 30_000, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	reads, err := readsim.Simulate(ref, readsim.Profile{ReadLen: 100, Coverage: 16, Seed: 12})
	if err != nil {
		log.Fatal(err)
	}

	// 1. Clean run.
	clean := assemble(reads, nil)
	fmt.Printf("clean run:    %d contigs, %.2fs simulated\n",
		len(clean.Contigs), clean.SimSeconds)

	// 2. Crash two workers mid-pipeline. Rounds count every BSP round of
	// the whole pipeline (engine supersteps and MapReduce phases), so the
	// two faults land in different stages; both recover from the last
	// checkpoint.
	plan := pregel.NewFaultPlan(
		pregel.Fault{Round: 10, Worker: 2},
		pregel.Fault{Round: 40, Worker: 0},
	)
	crashed := assemble(reads, func(o *core.Options) {
		o.CheckpointEvery = 3
		o.Faults = plan
	})
	fmt.Printf("crashed run:  %d contigs, %.2fs simulated, %d/%d faults fired\n",
		len(crashed.Contigs), crashed.SimSeconds, plan.FiredCount(), plan.Scheduled())
	if fingerprint(crashed) != fingerprint(clean) {
		log.Fatal("recovered contigs differ from the clean run!")
	}
	fmt.Println("              contigs byte-identical to the clean run ✓")

	// 3. Kill-and-resume at process granularity: checkpoint to disk, then
	// pretend the process died and run again with Resume — every job
	// fast-forwards from its last on-disk checkpoint. Deterministic
	// re-execution reserves the same job keys, which is what matches the
	// checkpoints back up to their jobs.
	dir, err := os.MkdirTemp("", "ppa-ckpt-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store1, err := pregel.NewDirCheckpointer(dir)
	if err != nil {
		log.Fatal(err)
	}
	assemble(reads, func(o *core.Options) {
		o.CheckpointEvery = 3
		o.Checkpointer = store1
	})
	store2, err := pregel.NewDirCheckpointer(dir)
	if err != nil {
		log.Fatal(err)
	}
	resumed := assemble(reads, func(o *core.Options) {
		o.CheckpointEvery = 3
		o.Checkpointer = store2
		o.Resume = true
	})
	fmt.Printf("resumed run:  %d contigs, %.2fs simulated (fast-forwarded from %s)\n",
		len(resumed.Contigs), resumed.SimSeconds, dir)
	if fingerprint(resumed) != fingerprint(clean) {
		log.Fatal("resumed contigs differ from the clean run!")
	}
	fmt.Println("              contigs byte-identical to the clean run ✓")

	// The cadence trade-off, priced by the simulated clock: tighter
	// checkpointing costs more time upfront but bounds replay on failure.
	for _, every := range []int{1, 5, 20} {
		r := assemble(reads, func(o *core.Options) { o.CheckpointEvery = every })
		fmt.Printf("cadence N=%-2d: %.2fs simulated (no failures)\n", every, r.SimSeconds)
	}
}
