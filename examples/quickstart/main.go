// Quickstart: generate a small synthetic genome, simulate error-free short
// reads from both strands, assemble them with the full PPA workflow
// ①②③④⑤⑥②③, and verify the genome is reconstructed.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"ppaassembler/internal/core"
	"ppaassembler/internal/genome"
	"ppaassembler/internal/pregel"
	"ppaassembler/internal/readsim"
)

func main() {
	// 1. A 50 kbp reference with no planted repeats.
	ref, err := genome.Generate(genome.Spec{Name: "quickstart", Length: 50_000, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// 2. 100 bp reads at 20x coverage, error-free for a clean first run
	// (high enough that no (k+1)-mer junction goes uncovered).
	reads, err := readsim.Simulate(ref, readsim.Profile{ReadLen: 100, Coverage: 20, Seed: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d reads from a %d bp reference\n", len(reads), ref.Len())

	// 3. Assemble with 4 logical workers and paper-default parameters.
	opt := core.DefaultOptions(4)
	opt.K = 21
	res, err := core.Assemble(pregel.ShardSlice(reads, opt.Workers), opt)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Inspect the result.
	fmt.Printf("k-mer vertices: %d -> after merging: %d -> contigs: %d\n",
		res.KmerVertices, res.MidVertices, res.FinalContigs)
	for i, c := range res.Contigs {
		fmt.Printf("contig %d: %d bp (coverage %d)\n", i+1, c.Len(), c.Node.Cov)
	}
	fmt.Printf("simulated cluster time: %.2fs, wall: %.2fs\n", res.SimSeconds, res.WallSeconds)

	// The extreme reference ends are covered by at most one read, so the
	// theta filter trims a few bases there; everything else must match.
	if len(res.Contigs) == 1 {
		s := res.Contigs[0].Node.Seq
		if s.Len() > ref.Len()-100 &&
			(strings.Contains(ref.String(), s.String()) ||
				strings.Contains(ref.String(), s.ReverseComplement().String())) {
			fmt.Println("OK: the single contig reconstructs the reference (minus thin-coverage ends)")
			return
		}
	}
	fmt.Println("note: assembly did not produce one exact contig (repeats or low coverage)")
}
