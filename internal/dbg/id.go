// Package dbg implements the de Bruijn graph substrate of PPA-assembler
// (§IV-A of the paper): the 64-bit vertex-ID scheme, edge polarity and its
// algebra (Property 1), the compressed adjacency formats for k-mer vertices,
// the unified "segment" node used by the assembly operations, and DBG
// construction from reads (operation ①) as two mini-MapReduce phases.
package dbg

import (
	"fmt"

	"ppaassembler/internal/dna"
	"ppaassembler/internal/pregel"
)

// Vertex-ID layout (Figure 7). A k-mer's 2-bit-packed sequence occupies the
// low 2k ≤ 62 bits, so bits 63 and 62 are free:
//
//	bit 63: set for NULL and for contig IDs
//	bit 62: the "flipped" contig-end marker used during contig labeling
//
// A contig ID packs the creating worker (bits 32..61) and a per-worker
// ordinal (bits 0..31, starting at 1 so contig IDs never collide with NULL).
const (
	// NullID is the dummy neighbor marking a dead end (Figure 7(b)).
	NullID = pregel.VertexID(1) << 63
	// flipBit is toggled by FlipID to mark contig-end self-loops (§IV-B ②).
	flipBit = pregel.VertexID(1) << 62
	// maxContigWorker bounds the worker field of a contig ID.
	maxContigWorker = 1<<30 - 1
)

// KmerID returns the vertex ID of a (canonical) k-mer: its integer encoding.
func KmerID(m dna.Kmer) pregel.VertexID { return pregel.VertexID(m) }

// KmerOf inverts KmerID.
func KmerOf(id pregel.VertexID) dna.Kmer { return dna.Kmer(id) }

// ContigID builds the ID of the ord-th contig created by the given worker
// (Figure 7(c)). ord must be >= 1.
func ContigID(worker int, ord uint32) pregel.VertexID {
	if worker < 0 || worker > maxContigWorker {
		panic(fmt.Sprintf("dbg: contig worker %d out of range", worker))
	}
	if ord == 0 {
		panic("dbg: contig ordinal must be >= 1")
	}
	return NullID | pregel.VertexID(worker)<<32 | pregel.VertexID(ord)
}

// IsContigID reports whether id names a contig vertex.
func IsContigID(id pregel.VertexID) bool {
	return id&NullID != 0 && UnflipID(id) != NullID
}

// ContigWorker extracts the creating worker from a contig ID.
func ContigWorker(id pregel.VertexID) int {
	return int(UnflipID(id) >> 32 & maxContigWorker)
}

// FlipID toggles the contig-end marker bit (the "second most significant
// bit" of §IV-B ②).
func FlipID(id pregel.VertexID) pregel.VertexID { return id ^ flipBit }

// IsFlipped reports whether id carries the contig-end marker.
func IsFlipped(id pregel.VertexID) bool { return id&flipBit != 0 }

// UnflipID clears the contig-end marker.
func UnflipID(id pregel.VertexID) pregel.VertexID { return id &^ flipBit }
