package dbg

import (
	"sync/atomic"

	"ppaassembler/internal/dna"
	"ppaassembler/internal/pregel"
)

// MinimizerPartitioner places k-mer vertices by their canonical minimizer:
// the lexicographically smallest m-mer over both strands of the k-mer, the
// classic locality device of distributed de Bruijn graph construction. Two
// k-mers joined by a DBG edge overlap in k-1 bases, so their minimizer
// windows share all but one position per strand and the minimizer — and
// with it the assigned worker — is usually identical: most edge traffic
// (labeling hellos, first-hop pointer requests, S-V neighbor broadcasts,
// tip waves) stays intra-machine, while hashing the minimizer keeps
// distinct super-k-mer runs spread across the cluster.
//
// Non-k-mer IDs — contig and NULL IDs (bit 63) and anything else outside
// the 2K-bit space — fall back to plain hash placement, so the partitioner
// is total over the assembler's whole ID scheme.
type MinimizerPartitioner struct {
	// K is the k-mer length whose 2K-bit encoding IDs are interpreted as.
	K int
	// M is the minimizer length (0 < M <= K). Smaller M localizes more
	// edges but concentrates more vertices per minimizer; DefaultMinimizerM
	// balances the two for the paper's k range.
	M int

	// cache memoizes Assign: the partitioner sits on the engine's per-send
	// hot path, where the minimizer scan — cheap as it is — would be
	// measured as worker compute time by the simulated clock, eating the
	// very locality win the placement buys. A direct-mapped, atomically
	// published table keeps the common case to one load; uint32 entries
	// keep the whole table L2-resident (256 KiB), which is what makes the
	// hit path as cheap as the plain hash mix. An entry packs
	// the ID's high bits as a tag and the assigned worker, which serves
	// IDs below 2^42 (k <= 21, the default) and worker counts below 63;
	// anything larger just recomputes every call.
	cache []atomic.Uint32
	// cacheWorkers latches the worker count the cache entries were
	// computed for (set once, CAS); calls with any other count bypass the
	// cache, so one shared partitioner stays correct across graphs.
	cacheWorkers atomic.Int32
}

// DefaultMinimizerM is the default minimizer length.
const DefaultMinimizerM = 11

// minimizerCacheSlots must be a power of two with minimizerCacheBits set
// bits, so slot index + tag + worker exactly tile a uint32 entry.
const (
	minimizerCacheBits  = 18
	minimizerCacheSlots = 1 << minimizerCacheBits
)

// NewMinimizerPartitioner returns a minimizer partitioner for k-mers of
// length k with the default minimizer length and the Assign memo cache
// enabled. The zero-value struct also works (and is what tests of the
// scan itself use); it simply recomputes every call.
func NewMinimizerPartitioner(k int) *MinimizerPartitioner {
	m := DefaultMinimizerM
	if m > k {
		m = k
	}
	return &MinimizerPartitioner{K: k, M: m, cache: make([]atomic.Uint32, minimizerCacheSlots)}
}

// Name implements pregel.Partitioner.
func (p *MinimizerPartitioner) Name() string { return "minimizer" }

// Assign implements pregel.Partitioner.
func (p *MinimizerPartitioner) Assign(id pregel.VertexID, workers int) int {
	k, m := p.K, p.M
	if m <= 0 {
		m = DefaultMinimizerM
	}
	if k <= 0 || k > dna.MaxK || m > k || uint64(id)>>(2*uint(k)) != 0 {
		return pregel.HashPartitioner{}.Assign(id, workers)
	}
	cacheable := p.cache != nil && uint64(id) < 1<<42 && workers < 63
	if cacheable {
		if cw := p.cacheWorkers.Load(); cw != int32(workers) {
			if cw != 0 || !p.cacheWorkers.CompareAndSwap(0, int32(workers)) {
				cacheable = p.cacheWorkers.Load() == int32(workers)
			}
		}
	}
	var slot *atomic.Uint32
	if cacheable {
		// Direct low-bit indexing: a canonical k-mer's trailing bases are
		// close to uniform, and skipping a hash keeps the hit path as
		// cheap as the plain hash partitioner's mix. An entry stores the
		// ID bits above the slot index as a 26-bit tag plus worker+1 (0 =
		// empty slot), which exactly fills 32 bits for IDs below 2^42.
		slot = &p.cache[uint64(id)&(minimizerCacheSlots-1)]
		tag := uint32(uint64(id) >> minimizerCacheBits)
		if e := slot.Load(); e != 0 && e>>6 == tag {
			return int(e&63) - 1
		}
	}
	// The minimizer is already hash-mixed by the scan order, so a plain
	// modulo spreads it without double hashing.
	w := int(canonicalMinimizer(dna.Kmer(id), k, m) % uint64(workers))
	if cacheable {
		slot.Store(uint32(uint64(id)>>minimizerCacheBits)<<6 | uint32(w+1))
	}
	return w
}

// canonicalMinimizer returns the m-mer with the smallest *mixed* value
// across both strands of the k-mer. The minimum is taken in a hashed order
// (random minimizers) rather than lexicographically: low-complexity m-mers
// like poly-A would otherwise win in a huge fraction of windows and clump
// their super-k-mers onto a few workers, skewing both compute and the
// most-loaded link. Scanning the reverse complement explicitly (rather
// than taking per-window canonical forms) keeps the value identical for a
// k-mer and its reverse complement, so edge endpoints agree on the
// minimizer no matter which strand each canonicalized to.
func canonicalMinimizer(kmer dna.Kmer, k, m int) uint64 {
	min := scanMinimizer(uint64(kmer), k, m)
	if rc := scanMinimizer(uint64(kmer.ReverseComplement(k)), k, m); rc < min {
		min = rc
	}
	return min
}

// scanMinimizer returns the smallest mixed m-mer value of one strand.
func scanMinimizer(v uint64, k, m int) uint64 {
	mask := dna.KmerMask(m)
	min := ^uint64(0)
	for shift := 0; shift <= 2*(k-m); shift += 2 {
		if w := pregel.Uint64Hash(v >> uint(shift) & mask); w < min {
			min = w
		}
	}
	return min
}
