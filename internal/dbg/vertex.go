package dbg

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// KmerVertex is the memory-compact k-mer vertex produced by DBG
// construction: a 32-bit adjacency bitmap plus one coverage count per set
// bit (§IV-A). Coverage counts serialize as variable-length integers; in
// memory they are a []uint32 parallel to the set bits in ascending bit
// order.
type KmerVertex struct {
	Adj  Bitmap32
	Covs []uint32
}

// AddEdge records an adjacency item, accumulating coverage if the item is
// already present.
func (v *KmerVertex) AddEdge(a AdjKmer) {
	i := bitIndex(a)
	r := v.Adj.rank(i)
	if v.Adj.Has(a) {
		v.Covs[r] += a.Cov
		return
	}
	v.Adj = v.Adj.Set(a)
	v.Covs = append(v.Covs, 0)
	copy(v.Covs[r+1:], v.Covs[r:])
	v.Covs[r] = a.Cov
}

// Merge folds another partially constructed vertex into v (the reduce step
// of DBG-construction phase (ii)).
func (v *KmerVertex) Merge(o KmerVertex) {
	for _, a := range o.Items() {
		v.AddEdge(a)
	}
}

// Items expands the bitmap into adjacency items with coverage, in ascending
// bit order.
func (v *KmerVertex) Items() []AdjKmer {
	out := make([]AdjKmer, 0, v.Adj.Count())
	j := 0
	for bit := 0; bit < 32; bit++ {
		if v.Adj&(1<<bit) != 0 {
			a := itemAt(bit)
			a.Cov = v.Covs[j]
			j++
			out = append(out, a)
		}
	}
	return out
}

// Degree returns the number of adjacency items.
func (v *KmerVertex) Degree() int { return v.Adj.Count() }

// EncodeCovs serializes the coverage list as uvarints (the paper's
// variable-length integers, which keep small counts at one byte).
func (v *KmerVertex) EncodeCovs() []byte {
	buf := make([]byte, 0, len(v.Covs))
	var tmp [binary.MaxVarintLen32]byte
	for _, c := range v.Covs {
		n := binary.PutUvarint(tmp[:], uint64(c))
		buf = append(buf, tmp[:n]...)
	}
	return buf
}

// DecodeCovs parses a uvarint coverage list of the given count.
func DecodeCovs(b []byte, count int) ([]uint32, error) {
	out := make([]uint32, 0, count)
	for i := 0; i < count; i++ {
		c, n := binary.Uvarint(b)
		if n <= 0 {
			return nil, fmt.Errorf("dbg: truncated coverage list at item %d", i)
		}
		if c > 1<<32-1 {
			return nil, fmt.Errorf("dbg: coverage %d overflows uint32", c)
		}
		out = append(out, uint32(c))
		b = b[n:]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("dbg: %d trailing bytes after coverage list", len(b))
	}
	return out, nil
}

// SortedItems returns Items sorted by encoded byte, a stable order for
// deterministic iteration in tests.
func (v *KmerVertex) SortedItems() []AdjKmer {
	items := v.Items()
	sort.Slice(items, func(i, j int) bool { return items[i].Encode() < items[j].Encode() })
	return items
}
