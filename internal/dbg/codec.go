package dbg

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"

	"ppaassembler/internal/dna"
	"ppaassembler/internal/pregel"
)

// Record serialization. Each operation of PPA-assembler can either hand its
// output to the next job in memory (pregel.Convert) or dump it to the
// sharded store and reload it later, exactly as the paper positions HDFS.
// Records are line-oriented hex-encoded binary so they travel through
// shardio's line store unharmed; the binary layout uses uvarints so small
// coverages cost one byte (the paper's variable-length integers).

// MarshalKmerRecord serializes one compact k-mer vertex (ID, 32-bit
// adjacency bitmap, varint coverage list).
func MarshalKmerRecord(id pregel.VertexID, v *KmerVertex) string {
	var buf bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(id))
	buf.Write(tmp[:n])
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], uint32(v.Adj))
	buf.Write(b4[:])
	buf.Write(v.EncodeCovs())
	return hex.EncodeToString(buf.Bytes())
}

// UnmarshalKmerRecord inverts MarshalKmerRecord.
func UnmarshalKmerRecord(s string) (pregel.VertexID, KmerVertex, error) {
	raw, err := hex.DecodeString(s)
	if err != nil {
		return 0, KmerVertex{}, fmt.Errorf("dbg: bad k-mer record: %w", err)
	}
	r := bytes.NewReader(raw)
	id, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, KmerVertex{}, fmt.Errorf("dbg: bad k-mer record id: %w", err)
	}
	var b4 [4]byte
	if _, err := io.ReadFull(r, b4[:]); err != nil {
		return 0, KmerVertex{}, fmt.Errorf("dbg: bad k-mer record bitmap: %w", err)
	}
	v := KmerVertex{Adj: Bitmap32(binary.LittleEndian.Uint32(b4[:]))}
	rest := raw[len(raw)-r.Len():]
	covs, err := DecodeCovs(rest, v.Adj.Count())
	if err != nil {
		return 0, KmerVertex{}, err
	}
	v.Covs = covs
	return pregel.VertexID(id), v, nil
}

// MarshalNodeRecord serializes a segment node with its vertex ID: kind,
// coverage, sequence (length + packed words), and adjacency items.
func MarshalNodeRecord(id pregel.VertexID, n *Node) string {
	var buf bytes.Buffer
	putUvarint := func(v uint64) {
		var tmp [binary.MaxVarintLen64]byte
		k := binary.PutUvarint(tmp[:], v)
		buf.Write(tmp[:k])
	}
	putUvarint(uint64(id))
	buf.WriteByte(byte(n.Kind))
	putUvarint(uint64(n.Cov))
	putUvarint(uint64(n.Seq.Len()))
	for _, w := range n.Seq.Words() {
		var b8 [8]byte
		binary.LittleEndian.PutUint64(b8[:], w)
		buf.Write(b8[:])
	}
	putUvarint(uint64(len(n.Adj)))
	for _, a := range n.Adj {
		putUvarint(uint64(a.Nbr))
		flags := byte(0)
		if a.In {
			flags |= 1
		}
		flags |= byte(a.PSelf) << 1
		flags |= byte(a.PNbr) << 2
		buf.WriteByte(flags)
		putUvarint(uint64(a.Cov))
		putUvarint(uint64(a.NbrLen))
	}
	return hex.EncodeToString(buf.Bytes())
}

// UnmarshalNodeRecord inverts MarshalNodeRecord.
func UnmarshalNodeRecord(s string) (pregel.VertexID, Node, error) {
	raw, err := hex.DecodeString(s)
	if err != nil {
		return 0, Node{}, fmt.Errorf("dbg: bad node record: %w", err)
	}
	r := bytes.NewReader(raw)
	fail := func(what string, err error) (pregel.VertexID, Node, error) {
		return 0, Node{}, fmt.Errorf("dbg: bad node record %s: %w", what, err)
	}
	id, err := binary.ReadUvarint(r)
	if err != nil {
		return fail("id", err)
	}
	kind, err := r.ReadByte()
	if err != nil {
		return fail("kind", err)
	}
	if kind > byte(KindContig) {
		return 0, Node{}, fmt.Errorf("dbg: bad node kind %d", kind)
	}
	cov, err := binary.ReadUvarint(r)
	if err != nil {
		return fail("coverage", err)
	}
	seqLen, err := binary.ReadUvarint(r)
	if err != nil {
		return fail("sequence length", err)
	}
	words := make([]uint64, (seqLen+31)/32)
	for i := range words {
		var b8 [8]byte
		if _, err := io.ReadFull(r, b8[:]); err != nil {
			return fail("sequence words", err)
		}
		words[i] = binary.LittleEndian.Uint64(b8[:])
	}
	seq, err := dna.SeqFromWords(words, int(seqLen))
	if err != nil {
		return fail("sequence", err)
	}
	nAdj, err := binary.ReadUvarint(r)
	if err != nil {
		return fail("adjacency count", err)
	}
	if nAdj > uint64(len(raw)) {
		return 0, Node{}, fmt.Errorf("dbg: implausible adjacency count %d", nAdj)
	}
	node := Node{Kind: NodeKind(kind), Cov: uint32(cov), Seq: seq}
	for i := uint64(0); i < nAdj; i++ {
		nbr, err := binary.ReadUvarint(r)
		if err != nil {
			return fail("adjacency nbr", err)
		}
		flags, err := r.ReadByte()
		if err != nil {
			return fail("adjacency flags", err)
		}
		acov, err := binary.ReadUvarint(r)
		if err != nil {
			return fail("adjacency coverage", err)
		}
		nlen, err := binary.ReadUvarint(r)
		if err != nil {
			return fail("adjacency length", err)
		}
		node.Adj = append(node.Adj, Adj{
			Nbr:    pregel.VertexID(nbr),
			In:     flags&1 != 0,
			PSelf:  Polarity(flags >> 1 & 1),
			PNbr:   Polarity(flags >> 2 & 1),
			Cov:    uint32(acov),
			NbrLen: int32(nlen),
		})
	}
	if r.Len() != 0 {
		return 0, Node{}, fmt.Errorf("dbg: %d trailing bytes in node record", r.Len())
	}
	return pregel.VertexID(id), node, nil
}
