// Checkpoint codec methods: the graph-stage vertex types opt into the
// Pregel engine's binary checkpoint format (v2) by implementing
// pregel.CheckpointAppender / pregel.CheckpointDecoder. Encodings are
// self-delimiting and composed from the pregel wire helpers; vertex IDs are
// fixed 8-byte little-endian because they are canonical k-mer codes (and
// NullID), which occupy the full 64-bit range where varints buy nothing.

package dbg

import (
	"fmt"

	"ppaassembler/internal/pregel"
)

// AppendCheckpoint implements pregel.CheckpointAppender.
func (a *Adj) AppendCheckpoint(buf []byte) []byte {
	buf = pregel.AppendUint64(buf, uint64(a.Nbr))
	buf = pregel.AppendBool(buf, a.In)
	buf = append(buf, byte(a.PSelf), byte(a.PNbr))
	buf = pregel.AppendUvarint(buf, uint64(a.Cov))
	return pregel.AppendVarint(buf, int64(a.NbrLen))
}

// DecodeCheckpoint implements pregel.CheckpointDecoder.
func (a *Adj) DecodeCheckpoint(data []byte) ([]byte, error) {
	id, data, err := pregel.ConsumeUint64(data)
	if err != nil {
		return nil, err
	}
	a.Nbr = pregel.VertexID(id)
	if a.In, data, err = pregel.ConsumeBool(data); err != nil {
		return nil, err
	}
	if len(data) < 2 {
		return nil, fmt.Errorf("dbg: corrupt Adj encoding: truncated polarity")
	}
	a.PSelf, a.PNbr = Polarity(data[0]), Polarity(data[1])
	data = data[2:]
	cov, data, err := pregel.ConsumeUvarint(data)
	if err != nil {
		return nil, err
	}
	a.Cov = uint32(cov)
	nl, data, err := pregel.ConsumeVarint(data)
	if err != nil {
		return nil, err
	}
	a.NbrLen = int32(nl)
	return data, nil
}

// AppendCheckpoint implements pregel.CheckpointAppender.
func (n *Node) AppendCheckpoint(buf []byte) []byte {
	buf = append(buf, byte(n.Kind))
	buf = n.Seq.AppendBinary(buf)
	buf = pregel.AppendUvarint(buf, uint64(n.Cov))
	buf = pregel.AppendUvarint(buf, uint64(len(n.Adj)))
	for i := range n.Adj {
		buf = n.Adj[i].AppendCheckpoint(buf)
	}
	return buf
}

// DecodeCheckpoint implements pregel.CheckpointDecoder.
func (n *Node) DecodeCheckpoint(data []byte) ([]byte, error) {
	if len(data) < 1 {
		return nil, fmt.Errorf("dbg: corrupt Node encoding: truncated kind")
	}
	n.Kind = NodeKind(data[0])
	data, err := n.Seq.DecodeBinary(data[1:])
	if err != nil {
		return nil, err
	}
	cov, data, err := pregel.ConsumeUvarint(data)
	if err != nil {
		return nil, err
	}
	n.Cov = uint32(cov)
	na, data, err := pregel.ConsumeUvarint(data)
	if err != nil {
		return nil, err
	}
	if uint64(len(data)) < na {
		return nil, fmt.Errorf("dbg: corrupt Node encoding: %d adjacency items in %d bytes", na, len(data))
	}
	n.Adj = nil
	if na > 0 {
		n.Adj = make([]Adj, na)
	}
	for i := range n.Adj {
		if data, err = n.Adj[i].DecodeCheckpoint(data); err != nil {
			return nil, err
		}
	}
	return data, nil
}

// AppendCheckpoint implements pregel.CheckpointAppender.
func (v *KmerVertex) AppendCheckpoint(buf []byte) []byte {
	buf = pregel.AppendUvarint(buf, uint64(v.Adj))
	buf = pregel.AppendUvarint(buf, uint64(len(v.Covs)))
	for _, c := range v.Covs {
		buf = pregel.AppendUvarint(buf, uint64(c))
	}
	return buf
}

// DecodeCheckpoint implements pregel.CheckpointDecoder.
func (v *KmerVertex) DecodeCheckpoint(data []byte) ([]byte, error) {
	adj, data, err := pregel.ConsumeUvarint(data)
	if err != nil {
		return nil, err
	}
	v.Adj = Bitmap32(adj)
	nc, data, err := pregel.ConsumeUvarint(data)
	if err != nil {
		return nil, err
	}
	if uint64(len(data)) < nc {
		return nil, fmt.Errorf("dbg: corrupt KmerVertex encoding: %d coverages in %d bytes", nc, len(data))
	}
	v.Covs = nil
	if nc > 0 {
		v.Covs = make([]uint32, nc)
	}
	for i := range v.Covs {
		c, rest, err := pregel.ConsumeUvarint(data)
		if err != nil {
			return nil, err
		}
		v.Covs[i], data = uint32(c), rest
	}
	return data, nil
}
