package dbg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ppaassembler/internal/dna"
	"ppaassembler/internal/pregel"
)

func TestIDScheme(t *testing.T) {
	if NullID != 1<<63 {
		t.Errorf("NullID = %x", NullID)
	}
	id := ContigID(5, 7)
	if !IsContigID(id) {
		t.Error("contig ID not recognized")
	}
	if IsContigID(NullID) {
		t.Error("NullID misclassified as contig")
	}
	if ContigWorker(id) != 5 {
		t.Errorf("ContigWorker = %d", ContigWorker(id))
	}
	k := KmerID(dna.ParseKmer("ACGTACGTACGTACGTACGTACGTACGTACG"))
	if IsContigID(k) {
		t.Error("k-mer ID misclassified as contig")
	}
	// Flip marker round trip, on both k-mer and contig IDs.
	for _, v := range []pregel.VertexID{k, id} {
		f := FlipID(v)
		if !IsFlipped(f) || IsFlipped(v) {
			t.Errorf("flip marker wrong for %x", v)
		}
		if UnflipID(f) != v {
			t.Errorf("UnflipID(FlipID(%x)) = %x", v, UnflipID(f))
		}
		if FlipID(f) != v {
			t.Errorf("FlipID not an involution for %x", v)
		}
	}
}

func TestContigIDPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { ContigID(0, 0) },
		func() { ContigID(-1, 1) },
		func() { ContigID(1<<30, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestAdjKmerPaperExampleInItem(t *testing.T) {
	// Figure 8(b) item ①: vertex "ACGG" has in-neighbor "CGGC" via edge
	// polarity <H:H>, encoded as bitmap 00010111.
	a := AdjKmer{Base: dna.G, In: true, PSelf: H, PNbr: H}
	if got := a.Encode(); got != 0b00010111 {
		t.Errorf("Encode = %08b, want 00010111", got)
	}
	self := dna.ParseKmer("ACGG")
	if got := a.Neighbor(self, 4).String(4); got != "CGGC" {
		t.Errorf("Neighbor = %q, want CGGC", got)
	}
}

func TestAdjKmerPaperExampleOutItem(t *testing.T) {
	// Figure 8(b) item ②: vertex "ACGG" has out-neighbor "CGTA" via edge
	// polarity <H:L>: reverse-complement ACGG to CCGT, append A giving
	// CGTA, already canonical.
	a := AdjKmer{Base: dna.A, In: false, PSelf: H, PNbr: L}
	if got := a.Encode(); got != 0b00000010 {
		t.Errorf("Encode = %08b, want 00000010", got)
	}
	self := dna.ParseKmer("ACGG")
	if got := a.Neighbor(self, 4).String(4); got != "CGTA" {
		t.Errorf("Neighbor = %q, want CGTA", got)
	}
}

func TestAdjKmerNullItem(t *testing.T) {
	a := AdjKmer{Null: true}
	if a.Encode() != 0x80 {
		t.Errorf("NULL encodes as %08b", a.Encode())
	}
	d, err := DecodeAdjKmer(0x80)
	if err != nil || !d.Null {
		t.Errorf("decode NULL = %+v, %v", d, err)
	}
	if a.Flip() != a {
		t.Error("NULL flip changed the item")
	}
}

func TestDecodeAdjKmerRejectsGarbage(t *testing.T) {
	for _, b := range []byte{0xFF, 0xA0, 0x40, 0x81} {
		if _, err := DecodeAdjKmer(b); err == nil {
			t.Errorf("DecodeAdjKmer(%08b) accepted", b)
		}
	}
}

func randomAdj(r *rand.Rand) AdjKmer {
	return AdjKmer{
		Base:  dna.Base(r.Intn(4)),
		In:    r.Intn(2) == 0,
		PSelf: Polarity(r.Intn(2)),
		PNbr:  Polarity(r.Intn(2)),
		Cov:   uint32(r.Intn(1000)),
	}
}

func TestPropAdjEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomAdj(r)
		a.Cov = 0 // coverage travels outside the byte
		d, err := DecodeAdjKmer(a.Encode())
		return err == nil && d == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropFlipInvolution(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomAdj(r)
		return a.Flip().Flip() == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropFlipPreservesNeighbor(t *testing.T) {
	// Property 1: the flipped item describes the same edge, so it must
	// resolve to the same neighbor vertex.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := []int{3, 5, 15, 31}[r.Intn(4)]
		self, _ := dna.Kmer(r.Uint64() & dna.KmerMask(k)).Canonical(k)
		a := randomAdj(r)
		return a.Flip().Neighbor(self, k) == a.Neighbor(self, k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropBitmapItemRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomAdj(r)
		a.Cov = 0
		return itemAt(bitIndex(a)) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestKmerVertexAddEdgeAccumulates(t *testing.T) {
	var v KmerVertex
	a := AdjKmer{Base: dna.C, In: false, PSelf: L, PNbr: H, Cov: 3}
	b := AdjKmer{Base: dna.G, In: true, PSelf: H, PNbr: L, Cov: 5}
	v.AddEdge(a)
	v.AddEdge(b)
	v.AddEdge(AdjKmer{Base: dna.C, In: false, PSelf: L, PNbr: H, Cov: 2})
	if v.Degree() != 2 {
		t.Fatalf("degree = %d, want 2", v.Degree())
	}
	items := v.Items()
	covs := map[byte]uint32{}
	for _, it := range items {
		covs[it.Encode()] = it.Cov
	}
	if covs[a.Encode()] != 5 {
		t.Errorf("cov of duplicated edge = %d, want 5", covs[a.Encode()])
	}
	if covs[b.Encode()] != 5 {
		t.Errorf("cov of single edge = %d, want 5", covs[b.Encode()])
	}
}

func TestPropKmerVertexItemsMatchInserted(t *testing.T) {
	// Inserting random items in random order and reading them back via the
	// bitmap must preserve the (item -> total coverage) mapping.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var v KmerVertex
		want := map[byte]uint32{}
		for i := 0; i < r.Intn(40); i++ {
			a := randomAdj(r)
			want[a.Encode()] += a.Cov
			v.AddEdge(a)
		}
		if v.Degree() != len(want) {
			return false
		}
		for _, it := range v.Items() {
			if want[it.Encode()] != it.Cov {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCovsVarintRoundTrip(t *testing.T) {
	v := KmerVertex{}
	v.AddEdge(AdjKmer{Base: dna.A, Cov: 1})
	v.AddEdge(AdjKmer{Base: dna.T, Cov: 300})
	v.AddEdge(AdjKmer{Base: dna.G, In: true, Cov: 4_000_000})
	enc := v.EncodeCovs()
	got, err := DecodeCovs(enc, len(v.Covs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != v.Covs[i] {
			t.Errorf("cov[%d] = %d, want %d", i, got[i], v.Covs[i])
		}
	}
	// Small counts must take one byte (the paper's space argument).
	one := KmerVertex{}
	one.AddEdge(AdjKmer{Base: dna.A, Cov: 9})
	if len(one.EncodeCovs()) != 1 {
		t.Errorf("1-digit coverage took %d bytes", len(one.EncodeCovs()))
	}
}

func TestDecodeCovsErrors(t *testing.T) {
	if _, err := DecodeCovs([]byte{0x80}, 1); err == nil {
		t.Error("truncated varint accepted")
	}
	if _, err := DecodeCovs([]byte{1, 2}, 1); err == nil {
		t.Error("trailing bytes accepted")
	}
}
