package dbg

import (
	"encoding/binary"
	"testing"

	"ppaassembler/internal/dna"
	"ppaassembler/internal/pregel"
	"ppaassembler/internal/pregel/ckpttest"
)

// fuzzGen derives struct fields deterministically from raw fuzz input, so
// the fuzzer's byte mutations explore the codec's value space.
type fuzzGen struct {
	data []byte
	i    int
}

func (g *fuzzGen) b() byte {
	if g.i >= len(g.data) {
		return 0
	}
	v := g.data[g.i]
	g.i++
	return v
}

func (g *fuzzGen) flag() bool { return g.b()&1 == 1 }

func (g *fuzzGen) u64() uint64 {
	var raw [8]byte
	for i := range raw {
		raw[i] = g.b()
	}
	return binary.LittleEndian.Uint64(raw[:])
}

func (g *fuzzGen) u32() uint32 { return uint32(g.u64()) }

func (g *fuzzGen) n(max int) int { return int(g.b()) % (max + 1) }

func (g *fuzzGen) seq() dna.Seq {
	s := dna.NewSeq(0)
	for n := g.n(70); n > 0; n-- {
		s = s.Append(dna.Base(g.b() & 3))
	}
	return s
}

func (g *fuzzGen) adj() Adj {
	return Adj{
		Nbr:    pregel.VertexID(g.u64()),
		In:     g.flag(),
		PSelf:  Polarity(g.b()),
		PNbr:   Polarity(g.b()),
		Cov:    g.u32(),
		NbrLen: int32(g.u64()),
	}
}

func (g *fuzzGen) node() Node {
	n := Node{Kind: NodeKind(g.b()), Seq: g.seq(), Cov: g.u32()}
	if na := g.n(4); na > 0 {
		n.Adj = make([]Adj, na)
		for i := range n.Adj {
			n.Adj[i] = g.adj()
		}
	}
	return n
}

func FuzzNodeCodecDifferential(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x03, 0x41, 0x42})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := &fuzzGen{data: data}
		a := g.adj()
		ckpttest.RoundTrip[Adj](t, &a)
		n := g.node()
		ckpttest.RoundTrip[Node](t, &n)
		ckpttest.NoPanic[Adj](t, data)
		ckpttest.NoPanic[Node](t, data)
		ckpttest.Corrupt[Adj](t, &a, data)
		ckpttest.Corrupt[Node](t, &n, data)
	})
}

func FuzzKmerVertexCodecDifferential(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x0f, 3, 200, 1, 0, 0x80, 0x80, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := &fuzzGen{data: data}
		v := KmerVertex{Adj: Bitmap32(g.u32())}
		if nc := g.n(8); nc > 0 {
			v.Covs = make([]uint32, nc)
			for i := range v.Covs {
				v.Covs[i] = g.u32()
			}
		}
		ckpttest.RoundTrip[KmerVertex](t, &v)
		ckpttest.NoPanic[KmerVertex](t, data)
		ckpttest.Corrupt[KmerVertex](t, &v, data)
	})
}
