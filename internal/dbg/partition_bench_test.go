package dbg

import (
	"testing"

	"ppaassembler/internal/pregel"
)

const benchIDSpace = uint64(1)<<42 - 1

func BenchmarkAssignHash(b *testing.B) {
	p := pregel.HashPartitioner{}
	s := 0
	for i := 0; i < b.N; i++ {
		s += p.Assign(pregel.VertexID(uint64(i)*2654435761&benchIDSpace), 4)
	}
	_ = s
}

func BenchmarkAssignMinimizerCached(b *testing.B) {
	p := NewMinimizerPartitioner(21)
	// Working set of 30k ids, mirroring the assembler's vertex count.
	ids := make([]pregel.VertexID, 30_000)
	for i := range ids {
		ids[i] = pregel.VertexID(uint64(i) * 0x9E3779B97F4A7C15 & benchIDSpace)
		p.Assign(ids[i], 4) // warm
	}
	b.ResetTimer()
	s := 0
	for i := 0; i < b.N; i++ {
		s += p.Assign(ids[i%len(ids)], 4)
	}
	_ = s
}

func BenchmarkAssignMinimizerUncached(b *testing.B) {
	p := &MinimizerPartitioner{K: 21, M: 11}
	s := 0
	for i := 0; i < b.N; i++ {
		s += p.Assign(pregel.VertexID(uint64(i)*0x9E3779B97F4A7C15&benchIDSpace), 4)
	}
	_ = s
}
