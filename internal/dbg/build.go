package dbg

import (
	"ppaassembler/internal/dna"
	"ppaassembler/internal/pregel"
)

// K1Mer is a counted (k+1)-mer: the output record of DBG-construction
// phase (i). ID is the canonical (k+1)-mer's integer encoding.
type K1Mer struct {
	ID  dna.Kmer
	Cov uint32
}

// BuildResult carries the constructed compact de Bruijn graph plus the
// statistics the experiments report.
type BuildResult struct {
	// Graph holds one KmerVertex per canonical k-mer.
	Graph *pregel.Graph[KmerVertex, struct{}]
	// Stats aggregates both mini-MapReduce phases.
	Stats pregel.Stats
	// K1Distinct is the number of distinct (k+1)-mers seen; K1Kept those
	// surviving the coverage threshold θ.
	K1Distinct, K1Kept int64
}

// BuildDBG is operation ① (§IV-B): it turns reads into a de Bruijn graph of
// canonical k-mer vertices with compressed adjacency bitmaps, in two mini-
// MapReduce phases. Phase (i) extracts (k+1)-mers (splitting reads at 'N',
// pre-aggregating counts per worker exactly as the paper describes) and
// drops those with coverage <= theta. Phase (ii) emits, for every surviving
// (k+1)-mer, an adjacency item to each of its two endpoint k-mer vertices
// and reduces items into complete KmerVertex values.
//
// readShards holds each worker's reads (as ASCII strings, possibly
// containing 'N'). The clock is charged for both shuffles.
func BuildDBG(clock *pregel.SimClock, cfg pregel.Config, readShards [][]string, k int, theta uint32) (*BuildResult, error) {
	if err := dna.ValidK(k); err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	res := &BuildResult{}

	// Phase (i): each worker's whole shard is one map item so the map UDF
	// can pre-aggregate counts locally before shuffling (the paper's
	// "(ID, count) pair ... otherwise the count is increased by 1").
	shardItems := make([][][]string, workers)
	for w := 0; w < workers && w < len(readShards); w++ {
		shardItems[w] = [][]string{readShards[w]}
	}
	// Reduce UDFs run concurrently (one reducer per worker) under Parallel,
	// so the θ-filter counters accumulate per reducer and fold afterwards.
	// Keys are (k+1)-mer and k-mer IDs, so both phases group through the
	// same partitioner that will place the graph's vertices (keyHash is the
	// identity projection; see MRConfig.Partitioner): each reduced
	// KmerVertex of phase (ii) is born on the worker that owns it, and the
	// AddVertex pass below is a local insert rather than a second shuffle.
	part := cfg.Partitioner
	if part == nil {
		part = pregel.HashPartitioner{}
	}
	// Phase (i) routes each (k+1)-mer to the worker owning its canonical
	// prefix k-mer (a routing projection, not a mixing hash — see
	// MRConfig.Partitioner). Phase (ii) then runs its map on that worker,
	// so the prefix-endpoint adjacency pair it emits is intra-machine by
	// construction under every partitioner — and under locality-aware
	// placement the suffix endpoint, which shares k-1 bases, usually is
	// too.
	routeK1 := func(id uint64) uint64 {
		pref, _ := dna.Kmer(id >> 2).Canonical(k)
		return uint64(pref)
	}
	rawKey := func(k uint64) uint64 { return k }
	mrCfg := pregel.MRConfig{
		Workers: workers, PairBytes: 12, Parallel: cfg.Parallel, Faults: cfg.Faults, Partitioner: part,
		Name: cfg.JobPrefix + "k1", Tracer: cfg.Tracer, Metrics: cfg.Metrics,
	}
	k1Distinct := make([]int64, workers)
	k1Kept := make([]int64, workers)
	k1Shards, st1 := pregel.MapReduceCfg(
		clock, mrCfg, // ~8-byte key + varint count on the wire
		shardItems,
		func(w int, reads []string, emit func(uint64, uint32)) {
			local := make(map[dna.Kmer]uint32)
			for _, r := range reads {
				eachKPlus1(r, k, func(m dna.Kmer) {
					c, _ := m.Canonical(k + 1)
					local[c]++
				})
			}
			for id, cnt := range local {
				emit(uint64(id), cnt)
			}
		},
		routeK1,
		func(a, b uint64) bool { return a < b },
		func(w int, key uint64, counts []uint32, emit func(K1Mer)) {
			total := uint32(0)
			for _, c := range counts {
				total += c
			}
			k1Distinct[w]++
			if total > theta {
				k1Kept[w]++
				emit(K1Mer{ID: dna.Kmer(key), Cov: total})
			}
		},
	)
	for w := 0; w < workers; w++ {
		res.K1Distinct += k1Distinct[w]
		res.K1Kept += k1Kept[w]
	}
	res.Stats.Add(st1)

	// Phase (ii): one adjacency item per (k+1)-mer endpoint.
	type partial struct {
		item AdjKmer
	}
	mrCfg.PairBytes = 10 // 8-byte key + 1-byte item + varint cov
	mrCfg.Name = cfg.JobPrefix + "adj"
	vertShards, st2 := pregel.MapReduceCfg(
		clock, mrCfg,
		k1Shards,
		func(w int, e K1Mer, emit func(uint64, partial)) {
			srcID, srcItem, dstID, dstItem := EdgeEndpoints(e, k)
			emit(uint64(srcID), partial{srcItem})
			emit(uint64(dstID), partial{dstItem})
		},
		rawKey,
		func(a, b uint64) bool { return a < b },
		func(w int, key uint64, parts []partial, emit func(kvPair)) {
			var v KmerVertex
			for _, p := range parts {
				v.AddEdge(p.item)
			}
			emit(kvPair{pregel.VertexID(key), v})
		},
	)
	res.Stats.Add(st2)

	g := pregel.NewGraph[KmerVertex, struct{}](cfg)
	g.UseClock(clock)
	for _, shard := range vertShards {
		for _, p := range shard {
			g.AddVertex(p.id, p.v)
		}
	}
	res.Graph = g
	return res, nil
}

type kvPair struct {
	id pregel.VertexID
	v  KmerVertex
}

// EdgeEndpoints decomposes a counted (k+1)-mer into its two endpoint
// vertices and their adjacency items: the prefix k-mer receives an out-item
// labelled with the (k+1)-mer's last base, the suffix k-mer an in-item
// labelled with its first base; polarities record which endpoint needed
// reverse-complementing to become canonical (§III, Figure 6).
func EdgeEndpoints(e K1Mer, k int) (srcID pregel.VertexID, srcItem AdjKmer, dstID pregel.VertexID, dstItem AdjKmer) {
	k1 := k + 1
	prefix := dna.Kmer(uint64(e.ID) >> 2)              // drop last base
	suffix := dna.Kmer(uint64(e.ID) & dna.KmerMask(k)) // drop first base
	first := e.ID.At(0, k1)                            // prepended base for the suffix vertex
	last := e.ID.Last()                                // appended base for the prefix vertex
	srcCanon, srcWas := prefix.Canonical(k)
	dstCanon, dstWas := suffix.Canonical(k)
	x, y := H, H
	if srcWas {
		x = L
	}
	if dstWas {
		y = L
	}
	srcID = KmerID(srcCanon)
	dstID = KmerID(dstCanon)
	srcItem = AdjKmer{Base: last, In: false, PSelf: x, PNbr: y, Cov: e.Cov}
	dstItem = AdjKmer{Base: first, In: true, PSelf: y, PNbr: x, Cov: e.Cov}
	return srcID, srcItem, dstID, dstItem
}

// eachKPlus1 slides a (k+1)-wide window over every maximal ACGT run of the
// read (runs shorter than k+1 yield nothing; 'N' and other letters break
// runs, per §IV-B ①).
func eachKPlus1(read string, k int, fn func(dna.Kmer)) {
	k1 := k + 1
	var cur uint64
	run := 0
	mask := dna.KmerMask(k1)
	for i := 0; i < len(read); i++ {
		b, ok := dna.BaseFromByte(read[i])
		if !ok {
			run = 0
			cur = 0
			continue
		}
		cur = (cur<<2 | uint64(b)) & mask
		run++
		if run >= k1 {
			fn(dna.Kmer(cur))
		}
	}
}
