package dbg

import (
	"testing"

	"ppaassembler/internal/dna"
	"ppaassembler/internal/pregel"
)

// TestMinimizerStrandIndependence: a k-mer and its reverse complement must
// compute the same canonical minimizer, so the two endpoints of a DBG edge
// agree on placement no matter which strand each canonicalized to.
func TestMinimizerStrandIndependence(t *testing.T) {
	const k, m = 21, 11
	z := uint64(7)
	for i := 0; i < 5_000; i++ {
		z += 0x9E3779B97F4A7C15
		kmer := dna.Kmer(pregel.Uint64Hash(z) & dna.KmerMask(k))
		rc := kmer.ReverseComplement(k)
		if canonicalMinimizer(kmer, k, m) != canonicalMinimizer(rc, k, m) {
			t.Fatalf("kmer %x and its reverse complement disagree on the minimizer", kmer)
		}
	}
}

// TestMinimizerEdgeLocality: DBG-adjacent canonical k-mers share k-1 bases,
// so under minimizer placement most edges must be intra-worker — the whole
// point of the strategy. Hash placement pins the baseline at ~(W-1)/W
// remote.
func TestMinimizerEdgeLocality(t *testing.T) {
	const k, workers = 21, 4
	p := NewMinimizerPartitioner(k)
	h := pregel.HashPartitioner{}
	localMin, localHash, edges := 0, 0, 0
	z := uint64(3)
	for i := 0; i < 20_000; i++ {
		z += 0x9E3779B97F4A7C15
		kmer := dna.Kmer(pregel.Uint64Hash(z) & dna.KmerMask(k))
		next := kmer.AppendBase(dna.Base(z>>61&3), k)
		a, _ := kmer.Canonical(k)
		b, _ := next.Canonical(k)
		if a == b {
			continue
		}
		edges++
		if p.Assign(pregel.VertexID(a), workers) == p.Assign(pregel.VertexID(b), workers) {
			localMin++
		}
		if h.Assign(pregel.VertexID(a), workers) == h.Assign(pregel.VertexID(b), workers) {
			localHash++
		}
	}
	minFrac := float64(localMin) / float64(edges)
	hashFrac := float64(localHash) / float64(edges)
	if minFrac < 0.5 {
		t.Errorf("minimizer co-locates only %.1f%% of adjacent k-mer pairs, want >= 50%%", 100*minFrac)
	}
	if minFrac < 2*hashFrac {
		t.Errorf("minimizer locality %.1f%% not clearly above hash's %.1f%%", 100*minFrac, 100*hashFrac)
	}
}

// TestMinimizerCacheMatchesUncached: the memoized Assign must agree with a
// cache-less partitioner for every ID class (k-mers, contig IDs, NULL) and
// across the worker counts the suite uses.
func TestMinimizerCacheMatchesUncached(t *testing.T) {
	const k = 21
	cached := NewMinimizerPartitioner(k)
	plain := &MinimizerPartitioner{K: k, M: cached.M}
	ids := []pregel.VertexID{0, 1, 5}
	z := uint64(11)
	for i := 0; i < 10_000; i++ {
		z += 0x9E3779B97F4A7C15
		ids = append(ids, pregel.VertexID(pregel.Uint64Hash(z)&dna.KmerMask(k)))
	}
	ids = append(ids, NullID, ContigID(3, 9), FlipID(pregel.VertexID(42)))
	for _, workers := range []int{1, 4, 7} {
		// Fresh cache per worker count: the memo latches the first count it
		// serves and bypasses for others, which must also stay correct.
		cached := NewMinimizerPartitioner(k)
		for _, id := range ids {
			// Twice, so the second call exercises the cache hit path.
			first := cached.Assign(id, workers)
			if second := cached.Assign(id, workers); second != first {
				t.Fatalf("workers=%d id=%x: cached Assign unstable (%d then %d)", workers, id, first, second)
			}
			if want := plain.Assign(id, workers); first != want {
				t.Fatalf("workers=%d id=%x: cached %d != uncached %d", workers, id, first, want)
			}
		}
	}
	// A second worker count on one instance must bypass the latched cache,
	// not serve stale entries.
	shared := NewMinimizerPartitioner(k)
	for _, id := range ids {
		shared.Assign(id, 4)
	}
	for _, id := range ids {
		if got, want := shared.Assign(id, 7), plain.Assign(id, 7); got != want {
			t.Fatalf("id=%x: workers=7 after caching workers=4: got %d want %d", id, got, want)
		}
	}
}

// TestMinimizerFallback: IDs outside the 2k-bit k-mer space (contig IDs,
// NULL, flipped markers) place exactly like the hash partitioner.
func TestMinimizerFallback(t *testing.T) {
	p := NewMinimizerPartitioner(21)
	h := pregel.HashPartitioner{}
	for _, id := range []pregel.VertexID{NullID, ContigID(0, 1), ContigID(6, 12345), 1 << 42, 1 << 62} {
		if got, want := p.Assign(id, 7), h.Assign(id, 7); got != want {
			t.Errorf("id=%x: minimizer fallback %d != hash %d", id, got, want)
		}
	}
}
