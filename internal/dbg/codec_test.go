package dbg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ppaassembler/internal/dna"
	"ppaassembler/internal/pregel"
)

func TestKmerRecordRoundTrip(t *testing.T) {
	var v KmerVertex
	v.AddEdge(AdjKmer{Base: dna.C, In: false, PSelf: L, PNbr: H, Cov: 3})
	v.AddEdge(AdjKmer{Base: dna.G, In: true, PSelf: H, PNbr: L, Cov: 400000})
	id := KmerID(dna.ParseKmer("ACGTACGTACGTACGTACGTA"))
	rec := MarshalKmerRecord(id, &v)
	id2, v2, err := UnmarshalKmerRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id || v2.Adj != v.Adj {
		t.Errorf("round trip mismatch: id %x vs %x", id2, id)
	}
	for i := range v.Covs {
		if v2.Covs[i] != v.Covs[i] {
			t.Errorf("cov %d mismatch", i)
		}
	}
}

func TestPropKmerRecordRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var v KmerVertex
		for i := 0; i < r.Intn(10); i++ {
			v.AddEdge(randomAdj(r))
		}
		id := pregel.VertexID(r.Uint64() & dna.KmerMask(21))
		id2, v2, err := UnmarshalKmerRecord(MarshalKmerRecord(id, &v))
		if err != nil || id2 != id || v2.Adj != v.Adj {
			return false
		}
		for i := range v.Covs {
			if v2.Covs[i] != v.Covs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNodeRecordRoundTrip(t *testing.T) {
	n := Node{
		Kind: KindContig,
		Seq:  dna.ParseSeq("ACGTTGCAAGCTTAGCATCCGATCGGATTACA"),
		Cov:  17,
		Adj: []Adj{
			{Nbr: 12345, In: true, PSelf: L, PNbr: H, Cov: 9, NbrLen: 21},
			{Nbr: NullID, In: false, PSelf: L},
		},
	}
	id := ContigID(3, 99)
	id2, n2, err := UnmarshalNodeRecord(MarshalNodeRecord(id, &n))
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id || n2.Kind != n.Kind || n2.Cov != n.Cov {
		t.Errorf("header mismatch: %x %v %d", id2, n2.Kind, n2.Cov)
	}
	if !n2.Seq.Equal(n.Seq) {
		t.Error("sequence mismatch")
	}
	if len(n2.Adj) != 2 || n2.Adj[0] != n.Adj[0] || n2.Adj[1] != n.Adj[1] {
		t.Errorf("adjacency mismatch: %+v", n2.Adj)
	}
}

func TestPropNodeRecordRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var sb dna.Builder
		for i := 0; i < r.Intn(200); i++ {
			sb.Append(dna.Base(r.Intn(4)))
		}
		n := Node{
			Kind: NodeKind(r.Intn(2)),
			Seq:  sb.Seq(),
			Cov:  uint32(r.Intn(1 << 20)),
		}
		for i := 0; i < r.Intn(5); i++ {
			n.Adj = append(n.Adj, Adj{
				Nbr:    pregel.VertexID(r.Uint64()),
				In:     r.Intn(2) == 0,
				PSelf:  Polarity(r.Intn(2)),
				PNbr:   Polarity(r.Intn(2)),
				Cov:    uint32(r.Intn(1 << 16)),
				NbrLen: int32(r.Intn(1 << 20)),
			})
		}
		id := pregel.VertexID(r.Uint64())
		id2, n2, err := UnmarshalNodeRecord(MarshalNodeRecord(id, &n))
		if err != nil || id2 != id || !n2.Seq.Equal(n.Seq) || n2.Cov != n.Cov || n2.Kind != n.Kind {
			return false
		}
		if len(n2.Adj) != len(n.Adj) {
			return false
		}
		for i := range n.Adj {
			if n2.Adj[i] != n.Adj[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	for _, s := range []string{"", "zz", "00", "ff00", "0102030405"} {
		if _, _, err := UnmarshalKmerRecord(s); err == nil {
			t.Errorf("UnmarshalKmerRecord(%q) accepted", s)
		}
		if _, _, err := UnmarshalNodeRecord(s); err == nil {
			t.Errorf("UnmarshalNodeRecord(%q) accepted", s)
		}
	}
	// Truncated but hex-valid node record.
	n := Node{Kind: KindKmer, Seq: dna.ParseSeq("ACGTA")}
	rec := MarshalNodeRecord(7, &n)
	if _, _, err := UnmarshalNodeRecord(rec[:len(rec)-4]); err == nil {
		t.Error("truncated node record accepted")
	}
	// Trailing garbage.
	if _, _, err := UnmarshalNodeRecord(rec + "0011"); err == nil {
		t.Error("node record with trailing bytes accepted")
	}
}
