package dbg

import (
	"fmt"
	"math/bits"

	"ppaassembler/internal/dna"
)

// Polarity is one side of an edge-polarity pair ⟨X:Y⟩ (§III,
// "Directionality"). L means the incident vertex participates in the
// generating (k+1)-mer in its canonical orientation, H means as its reverse
// complement.
type Polarity uint8

// The two polarity labels.
const (
	L Polarity = 0
	H Polarity = 1
)

// Flip returns the complementary label (H̄ = L, L̄ = H).
func (p Polarity) Flip() Polarity { return p ^ 1 }

// String returns "L" or "H".
func (p Polarity) String() string {
	if p == L {
		return "L"
	}
	return "H"
}

// AdjKmer is one adjacency-list item of a k-mer vertex in uncompressed form
// (the 8-bit bitmap of Figure 8(b)): the neighbor is identified by the base
// that is prepended (in-edge) or appended (out-edge) to this vertex's
// oriented sequence, together with the edge polarity. Null marks the
// dead-end item 10000000.
type AdjKmer struct {
	// Base is prepended (In) or appended (!In) to this vertex's oriented
	// sequence to form the (k+1)-mer that generates the edge.
	Base dna.Base
	// In reports edge direction from this vertex's perspective.
	In bool
	// PSelf is the polarity on this vertex's side, PNbr on the neighbor's.
	PSelf, PNbr Polarity
	// Cov is the edge coverage (the (k+1)-mer count). It is stored beside
	// the bitmap, not inside it.
	Cov uint32
	// Null marks a dead-end marker item; all other fields are ignored.
	Null bool
}

// nullAdjByte is the dead-end bitmap 10000000.
const nullAdjByte = 0x80

// Encode packs the item into the paper's 8-bit format 000XXYZZ, where XX is
// the base, Y the direction (1 = in) and ZZ the edge polarity in edge
// direction (source:target).
func (a AdjKmer) Encode() byte {
	if a.Null {
		return nullAdjByte
	}
	x, y := a.edgePolarity()
	return byte(a.Base)<<3 | boolBit(a.In)<<2 | byte(x)<<1 | byte(y)
}

// DecodeAdjKmer inverts Encode. Coverage is carried separately.
func DecodeAdjKmer(b byte) (AdjKmer, error) {
	if b == nullAdjByte {
		return AdjKmer{Null: true}, nil
	}
	if b&0xE0 != 0 {
		return AdjKmer{}, fmt.Errorf("dbg: invalid adjacency byte %08b", b)
	}
	a := AdjKmer{Base: dna.Base(b >> 3 & 3), In: b>>2&1 == 1}
	x, y := Polarity(b>>1&1), Polarity(b&1)
	if a.In {
		a.PSelf, a.PNbr = y, x
	} else {
		a.PSelf, a.PNbr = x, y
	}
	return a, nil
}

// edgePolarity returns the pair ⟨X:Y⟩ in edge direction: X is the polarity
// of the edge's source side, Y the target side.
func (a AdjKmer) edgePolarity() (x, y Polarity) {
	if a.In {
		return a.PNbr, a.PSelf
	}
	return a.PSelf, a.PNbr
}

// Flip applies Property 1: edge (u,v) with polarity ⟨X:Y⟩ is equivalent to
// edge (v,u) with polarity ⟨Ȳ:X̄⟩. From a single vertex's perspective this
// reverses the item's direction, complements both polarities, and
// complements the base (because the oriented sequence the base extends is
// itself reverse-complemented).
func (a AdjKmer) Flip() AdjKmer {
	if a.Null {
		return a
	}
	a.In = !a.In
	a.PSelf = a.PSelf.Flip()
	a.PNbr = a.PNbr.Flip()
	a.Base = a.Base.Complement()
	return a
}

// Oriented returns self in the orientation this item references: canonical
// when PSelf is L, reverse complement when H.
func oriented(self dna.Kmer, p Polarity, k int) dna.Kmer {
	if p == L {
		return self
	}
	return self.ReverseComplement(k)
}

// Neighbor reconstructs the neighbor's canonical k-mer from this item,
// following the recipe of §IV-A: orient self by PSelf, prepend/append Base,
// then orient the result by PNbr.
func (a AdjKmer) Neighbor(self dna.Kmer, k int) dna.Kmer {
	if a.Null {
		panic("dbg: Neighbor on NULL adjacency item")
	}
	o := oriented(self, a.PSelf, k)
	var n dna.Kmer
	if a.In {
		n = o.PrependBase(a.Base, k)
	} else {
		n = o.AppendBase(a.Base, k)
	}
	return oriented(n, a.PNbr, k) // PNbr==H means stored form is the rc
}

// KPlus1 reconstructs the generating (k+1)-mer in this vertex's oriented
// reading direction (useful for tests and debugging).
func (a AdjKmer) KPlus1(self dna.Kmer, k int) dna.Kmer {
	o := oriented(self, a.PSelf, k)
	if a.In {
		return dna.Kmer(uint64(a.Base)<<(2*uint(k)) | uint64(o))
	}
	return dna.Kmer(uint64(o)<<2 | uint64(a.Base))
}

func boolBit(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// Bitmap32 is the compressed adjacency list of a k-mer vertex during DBG
// construction (Figure 8(a)): one bit per (edge polarity ⟨X:Y⟩, direction,
// base) combination, 4×2×4 = 32 bits. Coverage counts are stored in a
// parallel list ordered by ascending bit index.
type Bitmap32 uint32

// bitIndex maps an item to its bit position: polarity pair (in edge
// direction) selects the group of 8, direction the group of 4, base the bit.
func bitIndex(a AdjKmer) int {
	x, y := a.edgePolarity()
	return (int(x)<<1|int(y))<<3 | int(boolBit(a.In))<<2 | int(a.Base)
}

// itemAt inverts bitIndex (without coverage).
func itemAt(bit int) AdjKmer {
	a := AdjKmer{Base: dna.Base(bit & 3), In: bit>>2&1 == 1}
	x, y := Polarity(bit>>4&1), Polarity(bit>>3&1)
	if a.In {
		a.PSelf, a.PNbr = y, x
	} else {
		a.PSelf, a.PNbr = x, y
	}
	return a
}

// Has reports whether the bit for item a is set.
func (b Bitmap32) Has(a AdjKmer) bool { return b&(1<<bitIndex(a)) != 0 }

// Set returns b with the bit for item a set.
func (b Bitmap32) Set(a AdjKmer) Bitmap32 { return b | 1<<bitIndex(a) }

// Count returns the number of set bits (the vertex degree).
func (b Bitmap32) Count() int { return bits.OnesCount32(uint32(b)) }

// rank returns how many set bits precede bit i (the coverage-list index of
// item i).
func (b Bitmap32) rank(i int) int {
	return bits.OnesCount32(uint32(b) & (1<<i - 1))
}
