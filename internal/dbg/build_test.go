package dbg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ppaassembler/internal/dna"
	"ppaassembler/internal/pregel"
)

func TestEachKPlus1(t *testing.T) {
	var got []string
	eachKPlus1("ATTGC", 3, func(m dna.Kmer) { got = append(got, m.String(4)) })
	want := []string{"ATTG", "TTGC"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("window %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestEachKPlus1SplitsAtN(t *testing.T) {
	var got []string
	eachKPlus1("ACGTNACGT", 3, func(m dna.Kmer) { got = append(got, m.String(4)) })
	want := []string{"ACGT", "ACGT"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("got %v, want %v", got, want)
	}
	got = nil
	eachKPlus1("ACGNTAG", 3, func(m dna.Kmer) { got = append(got, m.String(4)) })
	if len(got) != 0 {
		t.Errorf("short runs produced %v", got)
	}
}

func TestEdgeEndpointsMutuallyConsistent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := []int{3, 5, 21, 31}[r.Intn(4)]
		raw := dna.Kmer(r.Uint64() & dna.KmerMask(k+1))
		e, _ := raw.Canonical(k + 1)
		srcID, srcItem, dstID, dstItem := EdgeEndpoints(K1Mer{ID: e, Cov: 7}, k)
		// Each endpoint's item must resolve to the other endpoint.
		if KmerID(srcItem.Neighbor(KmerOf(srcID), k)) != dstID {
			return false
		}
		if KmerID(dstItem.Neighbor(KmerOf(dstID), k)) != srcID {
			return false
		}
		// Both endpoint IDs must be canonical k-mers.
		if !KmerOf(srcID).IsCanonical(k) || !KmerOf(dstID).IsCanonical(k) {
			return false
		}
		// The (k+1)-mer reconstructed from the source item must be e again
		// (up to reverse complement).
		back := srcItem.KPlus1(KmerOf(srcID), k)
		c, _ := back.Canonical(k + 1)
		return c == e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEdgeEndpointsBothStrandsAgree(t *testing.T) {
	// A (k+1)-mer and its reverse complement describe the same edge, so
	// after canonicalization (which phase (i) performs) they must yield the
	// same endpoints. Figure 6's point: reads from either strand stitch.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := []int{3, 5, 21}[r.Intn(3)]
		raw := dna.Kmer(r.Uint64() & dna.KmerMask(k+1))
		c1, _ := raw.Canonical(k + 1)
		c2, _ := raw.ReverseComplement(k + 1).Canonical(k + 1)
		if c1 != c2 {
			return false
		}
		s1, _, d1, _ := EdgeEndpoints(K1Mer{ID: c1, Cov: 1}, k)
		s2, _, d2, _ := EdgeEndpoints(K1Mer{ID: c2, Cov: 1}, k)
		return s1 == s2 && d1 == d2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func buildFromReads(t *testing.T, reads []string, k int, theta uint32, workers int) *BuildResult {
	t.Helper()
	cfg := pregel.Config{Workers: workers}
	res, err := BuildDBG(pregel.NewSimClock(pregel.DefaultCost()), cfg, pregel.ShardSlice(reads, workers), k, theta)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// distinctCanonicalKmers counts the distinct canonical k-mers of the reads.
func distinctCanonicalKmers(reads []string, k int) int {
	seen := map[dna.Kmer]bool{}
	for _, r := range reads {
		eachKPlus1(r, k-1, func(m dna.Kmer) { // windows of length k
			c, _ := m.Canonical(k)
			seen[c] = true
		})
	}
	return len(seen)
}

func TestBuildDBGSingleRead(t *testing.T) {
	reads := []string{"ATTGCAAGT"} // the contig of Figure 4
	res := buildFromReads(t, reads, 3, 0, 3)
	// The read has 6 windows of length 4, but TTGC and GCAA are reverse
	// complements of each other, so they canonicalize to one (k+1)-mer
	// (with coverage 2): 5 distinct records.
	if res.K1Distinct != 5 || res.K1Kept != 5 {
		t.Errorf("K1 distinct/kept = %d/%d, want 5/5", res.K1Distinct, res.K1Kept)
	}
	want := distinctCanonicalKmers(reads, 3)
	if got := res.Graph.VertexCount(); got != want {
		t.Errorf("vertices = %d, want %d", got, want)
	}
	// Every edge must be present from both endpoints with equal coverage.
	checkEdgeSymmetry(t, res, 3)
}

// checkEdgeSymmetry verifies that for every vertex item, the resolved
// neighbor exists and has a matching reciprocal item with the same coverage.
func checkEdgeSymmetry(t *testing.T, res *BuildResult, k int) {
	t.Helper()
	res.Graph.ForEach(func(id pregel.VertexID, v *KmerVertex) {
		self := KmerOf(id)
		for _, item := range v.Items() {
			nbrID := KmerID(item.Neighbor(self, k))
			nv, ok := res.Graph.Value(nbrID)
			if !ok {
				t.Errorf("vertex %s: neighbor %s missing", self.String(k), item.Neighbor(self, k).String(k))
				continue
			}
			found := false
			for _, back := range nv.Items() {
				if KmerID(back.Neighbor(KmerOf(nbrID), k)) == id && back.Cov == item.Cov &&
					back.In != item.In == (nbrID != id) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("vertex %s: no reciprocal item on %s", self.String(k), item.Neighbor(self, k).String(k))
			}
		}
	})
}

func TestBuildDBGBothStrandsMerge(t *testing.T) {
	// A read and its reverse complement must produce the identical graph
	// with doubled coverage, not a second strand's worth of vertices.
	fwd := []string{"ATTGCAAGTCCGTA"}
	both := []string{"ATTGCAAGTCCGTA", "TACGGACTTGCAAT"}
	r1 := buildFromReads(t, fwd, 5, 0, 2)
	r2 := buildFromReads(t, both, 5, 0, 2)
	if r1.Graph.VertexCount() != r2.Graph.VertexCount() {
		t.Fatalf("vertex count differs: %d vs %d", r1.Graph.VertexCount(), r2.Graph.VertexCount())
	}
	r1.Graph.ForEach(func(id pregel.VertexID, v *KmerVertex) {
		v2, ok := r2.Graph.Value(id)
		if !ok {
			t.Fatalf("vertex %x missing in both-strand graph", id)
		}
		if v.Adj != v2.Adj {
			t.Fatalf("bitmaps differ at %x", id)
		}
		for i := range v.Covs {
			if v2.Covs[i] != 2*v.Covs[i] {
				t.Errorf("coverage not doubled at %x", id)
			}
		}
	})
}

func TestBuildDBGThetaFilters(t *testing.T) {
	// One erroneous read against three agreeing ones: theta=1 must drop the
	// error branch (single-copy (k+1)-mers).
	good := "ACGGTCATCAGTT"
	bad := "ACGGTCTTCAGTT" // one substitution mid-read
	reads := []string{good, good, good, bad}
	res := buildFromReads(t, reads, 5, 1, 2)
	resAll := buildFromReads(t, reads, 5, 0, 2)
	if res.K1Kept >= resAll.K1Kept {
		t.Errorf("theta=1 kept %d of %d; expected filtering", res.K1Kept, resAll.K1Kept)
	}
	// The filtered graph must equal the graph built from good reads alone,
	// except coverage is 3 per edge.
	resGood := buildFromReads(t, []string{good, good, good}, 5, 0, 2)
	if res.Graph.VertexCount() != resGood.Graph.VertexCount() {
		t.Errorf("filtered graph has %d vertices, error-free graph %d",
			res.Graph.VertexCount(), resGood.Graph.VertexCount())
	}
}

func TestBuildDBGRejectsEvenK(t *testing.T) {
	if _, err := BuildDBG(pregel.NewSimClock(pregel.DefaultCost()), pregel.Config{Workers: 1}, [][]string{{"ACGT"}}, 4, 0); err == nil {
		t.Fatal("even k accepted")
	}
}

func TestPropBuildDBGWorkerCountInvariant(t *testing.T) {
	// The constructed graph must not depend on the number of workers.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		genome := randomGenome(r, 120)
		var reads []string
		for i := 0; i < 25; i++ {
			lo := r.Intn(len(genome) - 30)
			reads = append(reads, genome[lo:lo+30])
		}
		base := mustBuild(reads, 7, 0, 1)
		for _, w := range []int{2, 5} {
			other := mustBuild(reads, 7, 0, w)
			if base.Graph.VertexCount() != other.Graph.VertexCount() {
				return false
			}
			ok := true
			base.Graph.ForEach(func(id pregel.VertexID, v *KmerVertex) {
				ov, present := other.Graph.Value(id)
				if !present || ov.Adj != v.Adj {
					ok = false
					return
				}
				for i := range v.Covs {
					if ov.Covs[i] != v.Covs[i] {
						ok = false
						return
					}
				}
			})
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func mustBuild(reads []string, k int, theta uint32, workers int) *BuildResult {
	res, err := BuildDBG(pregel.NewSimClock(pregel.DefaultCost()), pregel.Config{Workers: workers}, pregel.ShardSlice(reads, workers), k, theta)
	if err != nil {
		panic(err)
	}
	return res
}

func randomGenome(r *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = "ACGT"[r.Intn(4)]
	}
	return string(b)
}

func TestKmerNodeConversion(t *testing.T) {
	reads := []string{"ATTGCAAGT"}
	res := buildFromReads(t, reads, 3, 0, 2)
	res.Graph.ForEach(func(id pregel.VertexID, v *KmerVertex) {
		n := KmerNode(id, v, 3)
		if n.Kind != KindKmer || n.Seq.Len() != 3 {
			t.Fatalf("bad node %+v", n)
		}
		if len(n.Adj) != v.Degree() {
			t.Errorf("node adj %d != vertex degree %d", len(n.Adj), v.Degree())
		}
		for i, a := range n.Adj {
			if a.NbrLen != 3 {
				t.Errorf("NbrLen = %d", a.NbrLen)
			}
			if a.Cov != v.Items()[i].Cov {
				t.Errorf("cov mismatch")
			}
		}
	})
}

func TestNodeTypeClassification(t *testing.T) {
	mk := func(adj ...Adj) *Node { return &Node{Kind: KindKmer, Seq: dna.ParseSeq("ACA"), Adj: adj} }
	inL := Adj{Nbr: 1, In: true, PSelf: L, PNbr: L}
	outL := Adj{Nbr: 2, In: false, PSelf: L, PNbr: L}
	if got := mk().Type(); got != TypeIsolated {
		t.Errorf("no adj: %v", got)
	}
	if got := mk(inL).Type(); got != TypeOne {
		t.Errorf("one adj: %v", got)
	}
	if got := mk(inL, outL).Type(); got != TypeOneOne {
		t.Errorf("in+out: %v", got)
	}
	// Two edges that are both incoming once normalized: ambiguous.
	in2 := Adj{Nbr: 3, In: true, PSelf: L, PNbr: H}
	if got := mk(inL, in2).Type(); got != TypeManyAny {
		t.Errorf("in+in: %v", got)
	}
	// An H-side out-edge equals an L-side in-edge by Property 1: so inL
	// plus (out with PSelf=H) is still one-in-one-out ... of the same
	// direction after normalization -> ambiguous.
	outH := Adj{Nbr: 4, In: false, PSelf: H, PNbr: L}
	if got := mk(inL, outH).Type(); got != TypeManyAny {
		t.Errorf("inL+outH: %v (outH normalizes to inL-direction)", got)
	}
	if got := mk(inL, outL, in2).Type(); got != TypeManyAny {
		t.Errorf("three edges: %v", got)
	}
	// NULL ends do not count as neighbors.
	nullEnd := Adj{Nbr: NullID, In: true, PSelf: L}
	if got := mk(nullEnd, outL).Type(); got != TypeOne {
		t.Errorf("null+out: %v", got)
	}
}

func TestNodeInOut(t *testing.T) {
	n := &Node{Kind: KindKmer, Seq: dna.ParseSeq("ACA"), Adj: []Adj{
		{Nbr: 7, In: true, PSelf: H, PNbr: L, Cov: 2},
		{Nbr: 9, In: false, PSelf: L, PNbr: H, Cov: 3},
	}}
	// Normalize to L: first item flips to out(L), second already out(L)?
	// First: in,H -> flipped = out,L. Second stays out,L. Both out -> m-n!
	if n.Type() != TypeManyAny {
		t.Fatalf("type = %v", n.Type())
	}
	n2 := &Node{Kind: KindKmer, Seq: dna.ParseSeq("ACA"), Adj: []Adj{
		{Nbr: 7, In: true, PSelf: L, PNbr: L, Cov: 2},
		{Nbr: 9, In: false, PSelf: L, PNbr: H, Cov: 3},
	}}
	in, out := n2.InOut(L)
	if in.Nbr != 7 || out.Nbr != 9 {
		t.Errorf("InOut(L) = %v,%v", in.Nbr, out.Nbr)
	}
	// Normalizing to H swaps the roles.
	inH, outH := n2.InOut(H)
	if inH.Nbr != 9 || outH.Nbr != 7 {
		t.Errorf("InOut(H) = %v,%v", inH.Nbr, outH.Nbr)
	}
}

func TestNodeRemoveEdgeTo(t *testing.T) {
	km := &Node{Kind: KindKmer, Adj: []Adj{{Nbr: 1}, {Nbr: 2}, {Nbr: 1}}}
	if got := km.RemoveEdgeTo(1); got != 2 {
		t.Errorf("removed %d, want 2", got)
	}
	if len(km.Adj) != 1 || km.Adj[0].Nbr != 2 {
		t.Errorf("remaining adj %v", km.Adj)
	}
	ct := &Node{Kind: KindContig, Adj: []Adj{{Nbr: 5, In: true}, {Nbr: 6}}}
	ct.RemoveEdgeTo(5)
	if len(ct.Adj) != 2 || ct.Adj[0].Nbr != NullID {
		t.Errorf("contig end not nulled: %v", ct.Adj)
	}
}

func TestAdjSameEdge(t *testing.T) {
	a := Adj{Nbr: 3, In: true, PSelf: L, PNbr: H, Cov: 5}
	if !a.SameEdge(a) {
		t.Error("item not same as itself")
	}
	if !a.SameEdge(a.Flip()) {
		t.Error("item not same as its flip")
	}
	b := a
	b.PNbr = L
	if a.SameEdge(b) {
		t.Error("different polarity considered same")
	}
	c := a
	c.Cov = 99
	c.NbrLen = 4
	if !a.SameEdge(c) {
		t.Error("coverage/len must be ignored")
	}
}
