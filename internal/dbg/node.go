package dbg

import (
	"ppaassembler/internal/dna"
	"ppaassembler/internal/pregel"
)

// Adj is an adjacency item of a segment node, identifying the neighbor by
// vertex ID rather than by base (the uncompressed representation used by
// operations ②–⑤, where neighbors may be k-mers or contigs). Nbr may be
// NullID for a contig's dead end.
type Adj struct {
	Nbr         pregel.VertexID
	In          bool
	PSelf, PNbr Polarity
	Cov         uint32
	// NbrLen caches the neighbor's sequence length (k for k-mer
	// neighbors); tip removing uses it to accumulate dangling-path length
	// without fetching neighbor sequences.
	NbrLen int32
}

// Flip applies Property 1 to the item (see AdjKmer.Flip; no base to
// complement here because the neighbor is identified by ID).
func (a Adj) Flip() Adj {
	a.In = !a.In
	a.PSelf = a.PSelf.Flip()
	a.PNbr = a.PNbr.Flip()
	return a
}

// Normalized returns the item flipped, if needed, so PSelf equals want.
func (a Adj) Normalized(want Polarity) Adj {
	if a.PSelf != want {
		return a.Flip()
	}
	return a
}

// SameEdge reports whether two items describe the same edge from the same
// vertex (identical up to Property-1 flipping), ignoring coverage.
func (a Adj) SameEdge(b Adj) bool {
	a.Cov, b.Cov = 0, 0
	a.NbrLen, b.NbrLen = 0, 0
	return a == b || a == b.Flip()
}

// NodeKind distinguishes the two vertex populations of §IV-A.
type NodeKind uint8

// Node kinds.
const (
	KindKmer NodeKind = iota
	KindContig
)

// NodeType is the vertex typing of §IV-A ("Vertex Types").
type NodeType uint8

// Node types. TypeIsolated covers the "isolated contig" case the paper
// folds into ⟨1⟩ (both ends dead); it is reported separately because tip
// removing treats it by total length.
const (
	TypeOne      NodeType = iota // ⟨1⟩: one real neighbor — a dead end
	TypeOneOne                   // ⟨1-1⟩: unambiguous path interior
	TypeManyAny                  // ⟨m-n⟩: ambiguous
	TypeIsolated                 // no real neighbors
)

func (t NodeType) String() string {
	switch t {
	case TypeOne:
		return "<1>"
	case TypeOneOne:
		return "<1-1>"
	case TypeManyAny:
		return "<m-n>"
	default:
		return "<isolated>"
	}
}

// Node is the unified "segment" vertex the assembly operations run on: a
// k-mer (Seq of length k) or a contig (Seq of length ≥ k). Two adjacent
// segments always overlap by k-1 bases, which is what makes the second
// labeling/merging round (mixed k-mers and contigs, arrow ⑥ of Figure 10)
// identical in structure to the first.
type Node struct {
	Kind NodeKind
	// Seq is the stored orientation: the canonical form for k-mers, the
	// merge orientation for contigs (polarity L refers to this form).
	Seq dna.Seq
	// Cov is the contig coverage (minimum merged edge coverage, §IV-A);
	// for k-mer nodes it is the minimum incident edge coverage.
	Cov uint32
	// Adj lists incident edges. Contig nodes always have exactly two
	// items (index 0 = the in-edge of the stored orientation, index 1 =
	// the out-edge), either of which may point at NullID.
	Adj []Adj
}

// RealDegree counts non-NULL adjacency items.
func (n *Node) RealDegree() int {
	d := 0
	for _, a := range n.Adj {
		if a.Nbr != NullID {
			d++
		}
	}
	return d
}

// RealAdj returns the non-NULL adjacency items.
func (n *Node) RealAdj() []Adj {
	out := make([]Adj, 0, len(n.Adj))
	for _, a := range n.Adj {
		if a.Nbr != NullID {
			out = append(out, a)
		}
	}
	return out
}

// Type classifies the node per §IV-A: ⟨1-1⟩ requires exactly two real
// neighbors that, once both items are normalized to the same self-side
// polarity (possible by Property 1), form one in-edge and one out-edge.
func (n *Node) Type() NodeType {
	real := n.RealAdj()
	switch len(real) {
	case 0:
		return TypeIsolated
	case 1:
		return TypeOne
	case 2:
		a := real[0].Normalized(L)
		b := real[1].Normalized(L)
		if a.In != b.In {
			return TypeOneOne
		}
		return TypeManyAny
	default:
		return TypeManyAny
	}
}

// InOut returns the in-item and out-item of a ⟨1-1⟩ node after normalizing
// both to self polarity p. It panics if the node is not ⟨1-1⟩.
func (n *Node) InOut(p Polarity) (in, out Adj) {
	real := n.RealAdj()
	if len(real) != 2 {
		panic("dbg: InOut on non-<1-1> node")
	}
	a, b := real[0].Normalized(p), real[1].Normalized(p)
	if a.In == b.In {
		panic("dbg: InOut on ambiguous node")
	}
	if a.In {
		return a, b
	}
	return b, a
}

// Oriented returns the node's sequence in orientation p (L = stored form).
func (n *Node) Oriented(p Polarity) dna.Seq {
	if p == L {
		return n.Seq
	}
	return n.Seq.ReverseComplement()
}

// RemoveEdgeTo deletes all adjacency items pointing at nbr and reports how
// many were removed. For contigs the items are replaced by NULL ends so the
// invariant len(Adj) == 2 holds.
func (n *Node) RemoveEdgeTo(nbr pregel.VertexID) int {
	removed := 0
	if n.Kind == KindContig {
		for i := range n.Adj {
			if n.Adj[i].Nbr == nbr {
				n.Adj[i].Nbr = NullID
				n.Adj[i].Cov = 0
				removed++
			}
		}
		return removed
	}
	out := n.Adj[:0]
	for _, a := range n.Adj {
		if a.Nbr == nbr {
			removed++
			continue
		}
		out = append(out, a)
	}
	n.Adj = out
	return removed
}

// KmerNode builds a segment node from a compact KmerVertex, resolving each
// bitmap item to its neighbor ID (this is the convert UDF between operation
// ① and operation ②).
func KmerNode(id pregel.VertexID, v *KmerVertex, k int) Node {
	self := KmerOf(id)
	items := v.Items()
	n := Node{Kind: KindKmer, Seq: self.Seq(k)}
	minCov := uint32(0)
	for i, a := range items {
		n.Adj = append(n.Adj, Adj{
			Nbr:    KmerID(a.Neighbor(self, k)),
			In:     a.In,
			PSelf:  a.PSelf,
			PNbr:   a.PNbr,
			Cov:    a.Cov,
			NbrLen: int32(k),
		})
		if i == 0 || a.Cov < minCov {
			minCov = a.Cov
		}
	}
	n.Cov = minCov
	return n
}
