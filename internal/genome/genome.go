// Package genome generates synthetic reference sequences for the
// experiments. The paper evaluates on NCBI/GAGE datasets (Homo sapiens
// chromosomes, Bombus impatiens); this reproduction substitutes seeded
// random references with planted exact repeats, which create the genuine
// ⟨m-n⟩ ambiguity, tips-after-dead-ends and bubble structure that the
// assembler's operations exist to handle (see DESIGN.md, substitutions).
package genome

import (
	"fmt"
	"math/rand"

	"ppaassembler/internal/dna"
)

// Spec describes a synthetic reference.
type Spec struct {
	// Name labels the dataset (e.g. "sim-HC2").
	Name string
	// Length is the reference length in base pairs.
	Length int
	// Repeats plants this many exact repeat pairs.
	Repeats int
	// RepeatLen is the length of each planted repeat (must exceed k to be
	// unresolvable).
	RepeatLen int
	// Seed makes generation deterministic.
	Seed int64
}

// Generate builds the reference sequence for the spec.
func Generate(spec Spec) (dna.Seq, error) {
	if spec.Length <= 0 {
		return dna.Seq{}, fmt.Errorf("genome: non-positive length %d", spec.Length)
	}
	if spec.Repeats > 0 && spec.RepeatLen <= 0 {
		return dna.Seq{}, fmt.Errorf("genome: %d repeats with non-positive repeat length", spec.Repeats)
	}
	if spec.Repeats*spec.RepeatLen*2 > spec.Length/2 {
		return dna.Seq{}, fmt.Errorf("genome: repeats cover more than half the genome")
	}
	r := rand.New(rand.NewSource(spec.Seed))
	b := make([]byte, spec.Length)
	for i := range b {
		b[i] = byte(r.Intn(4))
	}
	// Plant repeats: copy a random segment to a random position. Both
	// copies then share all interior k-mers for any k < RepeatLen, making
	// the junction vertices ambiguous. Source and destination regions are
	// kept disjoint from every previously planted region so repeats do not
	// clobber each other.
	var reserved [][2]int
	free := func(pos int) bool {
		for _, iv := range reserved {
			if pos < iv[1] && pos+spec.RepeatLen > iv[0] {
				return false
			}
		}
		return true
	}
	pick := func() (int, bool) {
		for tries := 0; tries < 200; tries++ {
			p := r.Intn(spec.Length - spec.RepeatLen)
			if free(p) {
				return p, true
			}
		}
		return 0, false
	}
	for rep := 0; rep < spec.Repeats; rep++ {
		src, ok1 := pick()
		if !ok1 {
			break
		}
		reserved = append(reserved, [2]int{src, src + spec.RepeatLen})
		dst, ok2 := pick()
		if !ok2 {
			break
		}
		reserved = append(reserved, [2]int{dst, dst + spec.RepeatLen})
		copy(b[dst:dst+spec.RepeatLen], b[src:src+spec.RepeatLen])
	}
	var sb dna.Builder
	sb.Grow(spec.Length)
	for _, c := range b {
		sb.Append(dna.Base(c))
	}
	return sb.Seq(), nil
}

// PaperDatasets returns the four synthetic stand-ins for Table I, in the
// paper's increasing-size order (HC-2 < HC-X < HC-14 < BI), scaled to run
// on one host. Lengths preserve the relative ordering; repeats scale with
// genome size.
func PaperDatasets() []Spec {
	return []Spec{
		{Name: "sim-HC2", Length: 200_000, Repeats: 12, RepeatLen: 300, Seed: 1002},
		{Name: "sim-HCX", Length: 400_000, Repeats: 24, RepeatLen: 300, Seed: 1023},
		{Name: "sim-HC14", Length: 800_000, Repeats: 48, RepeatLen: 300, Seed: 1014},
		{Name: "sim-BI", Length: 1_600_000, Repeats: 96, RepeatLen: 300, Seed: 1088},
	}
}
