package genome

import (
	"testing"

	"ppaassembler/internal/dna"
)

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{Name: "x", Length: 5000, Repeats: 3, RepeatLen: 120, Seed: 42}
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Error("same spec produced different genomes")
	}
	if a.Len() != 5000 {
		t.Errorf("length = %d", a.Len())
	}
	spec.Seed = 43
	c, _ := Generate(spec)
	if a.Equal(c) {
		t.Error("different seeds produced identical genomes")
	}
}

func TestGeneratePlantsRepeats(t *testing.T) {
	spec := Spec{Name: "x", Length: 20000, Repeats: 5, RepeatLen: 200, Seed: 7}
	g, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	// A planted repeat means some k-mer occurs at two positions for k well
	// below RepeatLen.
	k := 31
	seen := map[dna.Kmer]bool{}
	dup := 0
	for i := 0; i+k <= g.Len(); i++ {
		c, _ := dna.KmerFromSeq(g, i, k).Canonical(k)
		if seen[c] {
			dup++
		}
		seen[c] = true
	}
	if dup < spec.Repeats*(spec.RepeatLen-k) {
		t.Errorf("only %d duplicated k-mers; repeats not planted?", dup)
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Spec{Length: 0}); err == nil {
		t.Error("zero length accepted")
	}
	if _, err := Generate(Spec{Length: 100, Repeats: 2}); err == nil {
		t.Error("repeats without length accepted")
	}
	if _, err := Generate(Spec{Length: 100, Repeats: 50, RepeatLen: 10}); err == nil {
		t.Error("repeat overload accepted")
	}
}

func TestPaperDatasetsOrdering(t *testing.T) {
	specs := PaperDatasets()
	if len(specs) != 4 {
		t.Fatalf("want 4 datasets, got %d", len(specs))
	}
	for i := 1; i < len(specs); i++ {
		if specs[i].Length <= specs[i-1].Length {
			t.Errorf("dataset %s not larger than %s", specs[i].Name, specs[i-1].Name)
		}
	}
	if specs[0].Name != "sim-HC2" || specs[3].Name != "sim-BI" {
		t.Error("dataset names do not match Table I order")
	}
}
