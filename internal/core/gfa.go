package core

import (
	"bufio"
	"fmt"
	"io"

	"ppaassembler/internal/dbg"
	"ppaassembler/internal/pregel"
)

// WriteGFA exports a segment graph in GFA v1, the de-facto interchange
// format for assembly graphs: one S line per segment (contigs and
// ambiguous k-mers, with a dp depth tag) and one L line per edge, oriented
// by the edge polarities (+ for the stored/canonical orientation, - for
// the reverse complement) with the fixed k-1 overlap as the CIGAR.
//
// Exporting the post-error-correction mixed graph (ambiguous k-mers plus
// surviving contigs) gives downstream tools the same picture the second
// labeling round sees.
func WriteGFA(w io.Writer, g *Graph, k int) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "H\tVN:Z:1.0"); err != nil {
		return err
	}
	name := func(id pregel.VertexID) string {
		if dbg.IsContigID(id) {
			return fmt.Sprintf("ctg_%d_%d", dbg.ContigWorker(id), uint32(id))
		}
		return fmt.Sprintf("kmer_%x", uint64(id))
	}
	orient := func(p dbg.Polarity) byte {
		if p == dbg.L {
			return '+'
		}
		return '-'
	}
	var err error
	g.ForEach(func(id pregel.VertexID, v *VData) {
		if err != nil {
			return
		}
		_, err = fmt.Fprintf(bw, "S\t%s\t%s\tdp:i:%d\n", name(id), v.Node.Seq.String(), v.Node.Cov)
	})
	if err != nil {
		return err
	}
	g.ForEach(func(id pregel.VertexID, v *VData) {
		if err != nil {
			return
		}
		for _, a := range v.Node.Adj {
			if a.Nbr == dbg.NullID || a.Nbr < id {
				continue // the smaller endpoint emits the link
			}
			n := a
			if n.In {
				n = n.Flip()
			}
			_, err = fmt.Fprintf(bw, "L\t%s\t%c\t%s\t%c\t%dM\n",
				name(id), orient(n.PSelf), name(n.Nbr), orient(n.PNbr), k-1)
			if err != nil {
				return
			}
		}
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}
