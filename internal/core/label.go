package core

import (
	"time"

	"ppaassembler/internal/dbg"
	"ppaassembler/internal/pregel"
)

// Labeler selects the contig-labeling algorithm (the comparison axis of
// Tables II and III).
type Labeler int

// Available labelers.
const (
	// LabelerLR is bidirectional list ranking with S-V fallback for
	// cycles (the paper's preferred method).
	LabelerLR Labeler = iota
	// LabelerSV labels with the simplified S-V algorithm alone.
	LabelerSV
)

func (l Labeler) String() string {
	if l == LabelerSV {
		return "S-V"
	}
	return "LR"
}

// LabelStats reports one labeling run in the shape of Tables II/III.
type LabelStats struct {
	Algorithm   Labeler
	Supersteps  int
	Messages    int64
	WallSeconds float64
	SimSeconds  float64
	// CycleVertices counts vertices labeled by the S-V fallback.
	CycleVertices int
}

const aggUndone = "lr-undone-sides"

// LabelContigs is operation ② (§IV-B): it marks every vertex of each
// maximal unambiguous path with the path's unique contig label. Ambiguous
// (⟨m-n⟩) vertices end up with Labeled == false; as a side effect every
// vertex learns which of its neighbors are ambiguous (VData.NbrAmbig),
// which operation ⑤ consumes later.
func LabelContigs(g *Graph, algo Labeler) (*LabelStats, error) {
	start := time.Now()
	sim0 := g.Clock().Seconds()
	ls := &LabelStats{Algorithm: algo}

	var st *pregel.Stats
	var err error
	if algo == LabelerLR {
		st, err = g.Run(lrCompute, pregel.WithName("contig-label-lr"))
	} else {
		st, err = g.Run(svLabelCompute(2), pregel.WithName("contig-label-sv"))
	}
	if err != nil {
		return nil, err
	}
	ls.Supersteps = st.Supersteps
	ls.Messages = st.Messages

	if algo == LabelerLR {
		// Cycles of ⟨1-1⟩ vertices never reach a contig end; label the
		// marked residue with the simplified S-V algorithm (§IV-B ②).
		cycles := 0
		g.ForEach(func(id pregel.VertexID, v *VData) {
			if v.Cycle {
				cycles++
			}
		})
		ls.CycleVertices = cycles
		if cycles > 0 {
			st2, err := g.Run(svCycleCompute, pregel.WithName("contig-label-cycle-sv"))
			if err != nil {
				return nil, err
			}
			ls.Supersteps += st2.Supersteps
			ls.Messages += st2.Messages
		}
	}
	ls.WallSeconds = time.Since(start).Seconds()
	ls.SimSeconds = g.Clock().Seconds() - sim0
	return ls, nil
}

// helloPhase implements supersteps 0 and 1 shared by both labelers: every
// vertex announces (identity, side index, ambiguity) to its neighbors, then
// unambiguous vertices set up their side pointers, replacing edges to
// ambiguous neighbors and dead ends by flipped self-loops (Figure 11), and
// every vertex records NbrAmbig. It reports whether the caller should
// return (vertex halted or fully handled).
func helloPhase(ctx *pregel.Context[Msg], id pregel.VertexID, v *VData, msgs []Msg) (done bool) {
	switch ctx.Superstep() {
	case 0:
		v.Ambig = v.Node.Type() == dbg.TypeManyAny
		v.Labeled, v.Cycle = false, false
		v.Done = [2]bool{}
		v.TipProbed = false
		v.LastActive = -1
		v.arrangeSides()
		if v.Ambig {
			// Ambiguous vertices announce without side bookkeeping and
			// take no further part in labeling (§IV-B ②, superstep 1).
			for _, a := range v.Node.RealAdj() {
				ctx.Send(a.Nbr, Msg{Kind: MsgHello, From: id, Flag: true})
			}
			ctx.VoteToHalt()
			return true
		}
		for i := 0; i < 2; i++ {
			if v.HasSide[i] {
				ctx.Send(v.Sides[i].Nbr, Msg{Kind: MsgHello, From: id, Side: uint8(i)})
			}
		}
		return true
	case 1:
		ambigFrom := map[pregel.VertexID]bool{}
		helloSides := map[pregel.VertexID][]uint8{}
		for _, m := range msgs {
			if m.Kind != MsgHello {
				continue
			}
			if m.Flag {
				ambigFrom[m.From] = true
			}
			helloSides[m.From] = append(helloSides[m.From], m.Side)
		}
		v.NbrAmbig = make([]bool, len(v.Node.Adj))
		for i, a := range v.Node.Adj {
			if a.Nbr != dbg.NullID && ambigFrom[a.Nbr] {
				v.NbrAmbig[i] = true
			}
		}
		if v.Ambig {
			ctx.VoteToHalt()
			return true
		}
		consumed := map[pregel.VertexID]int{}
		for i := 0; i < 2; i++ {
			if !v.HasSide[i] || ambigFrom[v.Sides[i].Nbr] {
				// Dead end, or edge to an ambiguous vertex: this vertex is
				// a contig end on side i — install the flipped self-loop.
				v.P[i] = dbg.FlipID(id)
				v.Done[i] = true
				continue
			}
			nbr := v.Sides[i].Nbr
			sides := helloSides[nbr]
			j := consumed[nbr]
			consumed[nbr]++
			senderSide := uint8(0)
			if j < len(sides) {
				senderSide = sides[j]
			}
			v.P[i] = nbr
			v.PSide[i] = 1 - senderSide
		}
		if v.Done[0] && v.Done[1] {
			v.finishLabel()
			ctx.VoteToHalt()
			return true
		}
		return false // caller continues with algorithm-specific setup
	}
	return false
}

// lrCompute is the bidirectional-list-ranking labeler (Figure 11). Rounds
// take two supersteps: even supersteps apply responses and issue the next
// requests; odd supersteps answer requests with the responder's away-side
// pointer. An aggregator counts undone sides; if the count stays positive
// and unchanged across rounds, only cycles remain and the survivors mark
// themselves for the S-V fallback.
func lrCompute(ctx *pregel.Context[Msg], id pregel.VertexID, v *VData, msgs []Msg) {
	s := ctx.Superstep()
	if s <= 1 {
		if helloPhase(ctx, id, v, msgs) {
			return
		}
		// Setup finished with sides pending; tick the aggregator so the
		// stall detector has a baseline, and stay active.
		ctx.AggSum(aggUndone, v.undoneSides())
		return
	}
	if v.Ambig {
		ctx.VoteToHalt()
		return
	}
	if s%2 == 0 {
		if v.Labeled || v.Cycle {
			ctx.VoteToHalt()
			return
		}
		for _, m := range msgs {
			if m.Kind != MsgResp {
				continue
			}
			v.P[m.Side] = m.Ptr
			v.PSide[m.Side] = m.Side2
			if dbg.IsFlipped(m.Ptr) {
				v.Done[m.Side] = true
			}
		}
		if v.Done[0] && v.Done[1] {
			v.finishLabel()
			ctx.VoteToHalt()
			return
		}
		cur := ctx.PrevAggSum(aggUndone)
		if s >= 6 && v.LastActive >= 0 && cur > 0 && cur == v.LastActive {
			v.Cycle = true
			ctx.VoteToHalt()
			return
		}
		v.LastActive = cur
		ctx.AggSum(aggUndone, v.undoneSides())
		for i := uint8(0); i < 2; i++ {
			if !v.Done[i] {
				ctx.Send(v.P[i], Msg{Kind: MsgReq, From: id, Side: i, Side2: v.PSide[i]})
			}
		}
		return
	}
	// Odd superstep: answer requests from the requested away side.
	for _, m := range msgs {
		if m.Kind == MsgReq {
			ctx.Send(m.From, Msg{
				Kind:  MsgResp,
				From:  id,
				Side:  m.Side,
				Ptr:   v.P[m.Side2],
				Side2: v.PSide[m.Side2],
			})
		}
	}
	if v.Labeled || v.Cycle {
		ctx.VoteToHalt()
		return
	}
	ctx.AggSum(aggUndone, v.undoneSides())
}

const aggSVChanged = "sv-changed"

// svRound executes one 4-phase simplified-S-V step over the side-neighbor
// subgraph (sides i with HasSide && !Done are the surviving edges). phase
// is (superstep - offset) % 4. Convergence is signalled through the shared
// boolean aggregator; on convergence the vertex labels itself with D.
func svRound(ctx *pregel.Context[Msg], id pregel.VertexID, v *VData, msgs []Msg, phase int, first bool) {
	switch phase {
	case 0:
		if first {
			v.D = id
		} else {
			if !ctx.PrevAggOr(aggSVChanged) {
				v.Label = v.D
				v.Labeled = true
				ctx.VoteToHalt()
				return
			}
			for _, m := range msgs {
				if m.Kind == MsgSVHook && m.Ptr < v.D {
					v.D = m.Ptr
					ctx.AggOr(aggSVChanged, true)
				}
			}
		}
		ctx.Send(v.D, Msg{Kind: MsgSVQuery, From: id})
	case 1:
		for _, m := range msgs {
			if m.Kind == MsgSVQuery {
				ctx.Send(m.From, Msg{Kind: MsgSVReply, Ptr: v.D})
			}
		}
	case 2:
		for _, m := range msgs {
			if m.Kind == MsgSVReply {
				v.DD = m.Ptr
			}
		}
		for i := 0; i < 2; i++ {
			if v.HasSide[i] && !v.Done[i] {
				ctx.Send(v.Sides[i].Nbr, Msg{Kind: MsgSVNbr, Ptr: v.D})
			}
		}
	case 3:
		best := v.D
		for _, m := range msgs {
			if m.Kind == MsgSVNbr && m.Ptr < best {
				best = m.Ptr
			}
		}
		if v.DD == v.D && best < v.D {
			ctx.Send(v.D, Msg{Kind: MsgSVHook, Ptr: best})
			ctx.AggOr(aggSVChanged, true)
		}
		if v.DD != v.D {
			v.D = v.DD
			ctx.AggOr(aggSVChanged, true)
		}
	}
}

// svLabelCompute returns the compute function for the pure-S-V labeler:
// hello setup in supersteps 0..1, then S-V phases starting at `offset`.
// With S-V, every vertex in an unambiguous path obtains the smallest vertex
// ID of the path as its label (ends included, because the path is a
// connected component once ambiguous edges are cut).
func svLabelCompute(offset int) pregel.Compute[VData, Msg] {
	return func(ctx *pregel.Context[Msg], id pregel.VertexID, v *VData, msgs []Msg) {
		s := ctx.Superstep()
		if s <= 1 {
			if helloPhase(ctx, id, v, msgs) {
				return
			}
			return
		}
		if v.Ambig || v.Labeled {
			ctx.VoteToHalt()
			return
		}
		svRound(ctx, id, v, msgs, (s-offset)%4, s == offset)
	}
}

// svCycleCompute runs the S-V fallback over the vertices the LR labeler
// marked as cycle members; everything else halts immediately. A cycle of
// ⟨1-1⟩ vertices has both sides live, so the side subgraph is exactly the
// cycle.
func svCycleCompute(ctx *pregel.Context[Msg], id pregel.VertexID, v *VData, msgs []Msg) {
	if !v.Cycle || v.Labeled {
		ctx.VoteToHalt()
		return
	}
	svRound(ctx, id, v, msgs, ctx.Superstep()%4, ctx.Superstep() == 0)
}
