package core

import (
	"testing"

	"ppaassembler/internal/genome"
	"ppaassembler/internal/pregel"
	"ppaassembler/internal/readsim"
	"ppaassembler/internal/scaffold"
)

// TestScaffoldContigsStage runs the full pipeline ①–⑥ plus stage ⑦ and
// checks the stage wiring: contig IDs pass through, scaffolding charges the
// assembly's simulated clock, and the result SimSeconds reflects it.
func TestScaffoldContigsStage(t *testing.T) {
	ref, err := genome.Generate(genome.Spec{
		Name: "stage7", Length: 30_000, Repeats: 2, RepeatLen: 300, Seed: 91,
	})
	if err != nil {
		t.Fatal(err)
	}
	simPairs, err := readsim.SimulatePairs(ref, readsim.PairProfile{
		Profile:    readsim.Profile{ReadLen: 100, Coverage: 25, Seed: 92},
		InsertMean: 700, InsertSD: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions(3)
	res, err := Assemble(pregel.ShardSlice(readsim.Interleave(simPairs), 3), opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clock == nil {
		t.Fatal("assembly result carries no clock")
	}
	simBefore := res.SimSeconds

	pairs := make([]scaffold.Pair, len(simPairs))
	for i, p := range simPairs {
		pairs[i] = scaffold.Pair{R1: p.R1, R2: p.R2}
	}
	sres, contigs, err := ScaffoldContigs(res, opt, pairs, scaffold.Options{
		InsertMean: 700, InsertSD: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(contigs) != len(res.Contigs) {
		t.Fatalf("%d scaffold contigs from %d assembly contigs", len(contigs), len(res.Contigs))
	}
	for i, c := range contigs {
		if c.ID != res.Contigs[i].ID {
			t.Fatalf("contig %d: ID %x does not match assembly ID %x", i, c.ID, res.Contigs[i].ID)
		}
	}
	if sres.SimSeconds <= 0 {
		t.Error("scaffolding charged no simulated time")
	}
	if res.SimSeconds <= simBefore {
		t.Errorf("pipeline SimSeconds did not grow: %.4f -> %.4f", simBefore, res.SimSeconds)
	}
	if sres.Stats.Supersteps == 0 || sres.Stats.Messages == 0 {
		t.Errorf("no scaffolding supersteps/messages recorded: %+v", sres.Stats)
	}
	total := 0
	for _, s := range sres.Scaffolds {
		total += s.Len()
	}
	if total != len(contigs) {
		t.Errorf("scaffolds cover %d contigs, input had %d", total, len(contigs))
	}
}
