package core

import (
	"fmt"
	"os"
	"path/filepath"

	"ppaassembler/internal/dbg"
	"ppaassembler/internal/fastx"
	"ppaassembler/internal/pregel"
	"ppaassembler/internal/scaffold"
	"ppaassembler/internal/shardio"
	"ppaassembler/internal/telemetry"
	"ppaassembler/internal/workflow"
)

// This file is the assembler's op catalog for the workflow layer: every
// assembly operation of the paper's API (§IV-B) as a first-class
// workflow.Op with typed artifacts and per-op configuration. The old
// monolithic Options struct decomposes into these per-op structs;
// Assemble and ScaffoldContigs are canned plans over them (pipeline.go),
// and the ppa-assembler CLI exposes the same catalog as a -workflow spec
// through OpRegistry.

// Artifacts produced and consumed by the catalog. "labels" and "ambig" are
// scratch annotations living on graph vertices (written by the labeling
// job); a staging seam round-trips only durable segment data, so it
// consumes both — which is how the planner rejects, before any compute, a
// seam placed where the next op would silently read lost state.
const (
	// ArtReads is the sharded read set ([][]string).
	ArtReads workflow.Artifact = "reads"
	// ArtPairs is the paired-end read list ([]scaffold.Pair).
	ArtPairs workflow.Artifact = "pairs"
	// ArtGraph is the live segment graph (*core.Graph).
	ArtGraph workflow.Artifact = "graph"
	// ArtLabels marks that the graph's vertices carry fresh contig labels.
	ArtLabels workflow.Artifact = "labels"
	// ArtAmbig marks that vertices carry ambiguity annotations
	// (VData.Ambig/NbrAmbig), which rebuilding the mixed graph consumes.
	ArtAmbig workflow.Artifact = "ambig"
	// ArtMixed is the freshly rebuilt mixed graph (ambiguous k-mers +
	// contig vertices) whose k-mer adjacency has not yet been relinked;
	// only the link op can turn it back into an operable graph. Keeping it
	// distinct from ArtGraph is what stops a plan from tip-trimming or
	// relabeling a graph whose adjacency is still missing (which would
	// silently delete real sequence).
	ArtMixed workflow.Artifact = "mixed"
	// ArtLinked marks that ambiguous vertices' adjacency has been rebuilt
	// with contig announcements (operation ⑤ setup).
	ArtLinked workflow.Artifact = "linked"
	// ArtContigs is the current per-worker contig set ([][]ContigRec).
	ArtContigs workflow.Artifact = "contigs"
	// ArtScaffolds is the scaffolding result.
	ArtScaffolds workflow.Artifact = "scaffolds"
	// ArtFasta is the rendered FASTA record set.
	ArtFasta workflow.Artifact = "fasta"
)

// State is the typed artifact store a plan threads through core's ops.
// Exactly one instance travels the whole plan; each op reads the artifacts
// it declared in Needs and replaces the ones it Produces.
type State struct {
	// K is the k-mer length, set by the build op (or by the caller when a
	// plan starts from pre-built artifacts); merge and tiptrim consume it
	// for the k-1 overlap arithmetic.
	K int

	Reads   [][]string
	Pairs   []scaffold.Pair
	Graph   *Graph
	Contigs [][]ContigRec

	Scaffold        *scaffold.Result
	ScaffoldContigs []scaffold.Contig
	Fasta           []fastx.Record

	Metrics Metrics
}

// Metrics accumulates the per-op counters the paper's experiments report;
// Assemble folds them into a Result.
type Metrics struct {
	K1Distinct, K1Kept int64
	KmerVertices       int
	MidVertices        int
	// Labels collects one LabelStats per labeling op, in plan order.
	Labels []*LabelStats
	// MergeDroppedTips and MergeGroups record each merge op's tip drops
	// and group count. MergeContigs holds flattened contig snapshots of
	// the first and most recent merge only (the two any consumer reads),
	// so long custom plans do not retain every intermediate contig set.
	MergeDroppedTips   []int
	MergeGroups        []int
	MergeContigs       [][]ContigRec
	BubblesPruned      int
	TipVerticesRemoved int
	BranchesCut        int
}

func (st *State) needK() (int, error) {
	if st.K <= 0 {
		return 0, fmt.Errorf("core: k-mer length unknown (set State.K or start the plan with a build op)")
	}
	return st.K, nil
}

// BuildDBGOp is operation ①: DBG construction from reads, followed by the
// in-memory conversion into the segment graph.
type BuildDBGOp struct {
	// K is the k-mer length (odd, <= 31; the paper uses 31).
	K int
	// Theta drops (k+1)-mers with coverage <= Theta.
	Theta uint32
}

// Info implements workflow.Op.
func (o BuildDBGOp) Info() workflow.Info {
	return workflow.Info{Name: "build", Needs: []workflow.Artifact{ArtReads},
		Produces: []workflow.Artifact{ArtGraph}}
}

// Run implements workflow.Op.
func (o BuildDBGOp) Run(env *workflow.Env, st *State) error {
	cfg := env.Config()
	build, err := dbg.BuildDBG(env.Clock, cfg, st.Reads, o.K, o.Theta)
	if err != nil {
		return err
	}
	st.Metrics.K1Distinct, st.Metrics.K1Kept = build.K1Distinct, build.K1Kept
	st.Metrics.KmerVertices = build.Graph.VertexCount()
	st.Graph = NewSegmentGraph(build, cfg, o.K)
	st.K = o.K
	return nil
}

// LabelOp is operation ②: contig labeling (list ranking or simplified
// S-V), which also annotates every vertex with its neighbors' ambiguity.
type LabelOp struct {
	Algo Labeler
}

// Info implements workflow.Op.
func (o LabelOp) Info() workflow.Info {
	return workflow.Info{Name: "label", Needs: []workflow.Artifact{ArtGraph},
		Produces: []workflow.Artifact{ArtLabels, ArtAmbig}}
}

// Run implements workflow.Op.
func (o LabelOp) Run(env *workflow.Env, st *State) error {
	st.Graph.SetJobPrefix(env.JobPrefix())
	ls, err := LabelContigs(st.Graph, o.Algo)
	if err != nil {
		return err
	}
	st.Metrics.Labels = append(st.Metrics.Labels, ls)
	return nil
}

// MergeOp is operation ③: grouping labeled vertices into contigs. Labels
// are spent by the merge; relabel before merging again.
type MergeOp struct {
	// TipLen drops dead-ending groups no longer than this at merge time.
	TipLen int
}

// Info implements workflow.Op.
func (o MergeOp) Info() workflow.Info {
	return workflow.Info{Name: "merge",
		Needs:    []workflow.Artifact{ArtGraph, ArtLabels},
		Consumes: []workflow.Artifact{ArtLabels},
		Produces: []workflow.Artifact{ArtContigs}}
}

// Run implements workflow.Op.
func (o MergeOp) Run(env *workflow.Env, st *State) error {
	k, err := st.needK()
	if err != nil {
		return err
	}
	merge, err := MergeContigs(st.Graph, k, o.TipLen)
	if err != nil {
		return err
	}
	st.Contigs = merge.Contigs
	m := &st.Metrics
	m.MergeDroppedTips = append(m.MergeDroppedTips, merge.DroppedTips)
	m.MergeGroups = append(m.MergeGroups, merge.Groups)
	flat := pregel.Flatten(merge.Contigs)
	if len(m.MergeContigs) < 2 {
		m.MergeContigs = append(m.MergeContigs, flat)
	} else {
		m.MergeContigs[1] = flat
	}
	return nil
}

// BubblePopOp is operation ④: bubble filtering over the contig set.
type BubblePopOp struct {
	// EditDist prunes a bubble arm whose edit distance to a stronger
	// parallel arm is below this threshold (paper: 5).
	EditDist int
	// MinCov additionally prunes arms with coverage below this threshold
	// whenever a stronger parallel arm exists (0 disables).
	MinCov uint32
}

// Info implements workflow.Op.
func (o BubblePopOp) Info() workflow.Info {
	return workflow.Info{Name: "bubble", Needs: []workflow.Artifact{ArtContigs},
		Produces: []workflow.Artifact{ArtContigs}}
}

// Run implements workflow.Op.
func (o BubblePopOp) Run(env *workflow.Env, st *State) error {
	bub, err := FilterBubblesCfg(env.Clock, env.MRConfig(), st.Contigs, o.EditDist, o.MinCov)
	if err != nil {
		return err
	}
	st.Contigs = bub.Contigs
	st.Metrics.BubblesPruned += bub.Pruned
	return nil
}

// RebuildOp is the in-memory conversion between jobs ③/④ and ⑤: the
// ambiguous k-mers of the labeled graph plus the surviving contigs become
// a fresh mixed graph. The contig set is absorbed into the graph (merge
// again to get one back), the ambiguity annotations are spent, and the
// result is a not-yet-operable mixed graph: its k-mers dropped every edge
// into merged paths, so the link op must run before anything else touches
// it (the planner enforces this by consuming "graph").
type RebuildOp struct{}

// Info implements workflow.Op.
func (o RebuildOp) Info() workflow.Info {
	return workflow.Info{Name: "rebuild",
		Needs:    []workflow.Artifact{ArtGraph, ArtAmbig, ArtContigs},
		Consumes: []workflow.Artifact{ArtGraph, ArtAmbig, ArtContigs, ArtLinked},
		Produces: []workflow.Artifact{ArtMixed}}
}

// Run implements workflow.Op.
func (o RebuildOp) Run(env *workflow.Env, st *State) error {
	if aff, ok := pregel.BasePartitioner(env.Partitioner).(*AffinityPartitioner); ok {
		// The label-affinity strategy learns its placement here, the first
		// point where merge-label groups (the contigs) exist: each contig
		// vertex of the mixed graph is re-placed next to one of its end
		// neighbors before the graph is built.
		aff.Place(st.Contigs, env.Workers)
	}
	st.Graph = BuildMixedGraph(st.Graph, st.Contigs, env.Config(), env.Clock)
	st.Metrics.MidVertices = st.Graph.VertexCount()
	st.Contigs = nil
	return nil
}

// LinkContigsOp is the setup phase of operation ⑤: contig vertices
// announce themselves to their end k-mers, which rebuild their adjacency,
// turning the rebuilt mixed graph back into an operable segment graph.
type LinkContigsOp struct{}

// Info implements workflow.Op.
func (o LinkContigsOp) Info() workflow.Info {
	return workflow.Info{Name: "link",
		Needs:    []workflow.Artifact{ArtMixed},
		Consumes: []workflow.Artifact{ArtMixed},
		Produces: []workflow.Artifact{ArtGraph, ArtLinked}}
}

// Run implements workflow.Op.
func (o LinkContigsOp) Run(env *workflow.Env, st *State) error {
	st.Graph.SetJobPrefix(env.JobPrefix())
	_, err := LinkContigs(st.Graph)
	return err
}

// SplitOp is the Spaler-style branch-splitting extension: dominated edges
// at ambiguous vertices are cut, leaving dangling paths for tip removal.
type SplitOp struct {
	// Ratio cuts an edge when a parallel edge out-covers it Ratio-to-one
	// (must be >= 2).
	Ratio uint32
}

// Info implements workflow.Op.
func (o SplitOp) Info() workflow.Info {
	return workflow.Info{Name: "split", Needs: []workflow.Artifact{ArtGraph},
		Produces: []workflow.Artifact{ArtGraph}}
}

// Run implements workflow.Op.
func (o SplitOp) Run(env *workflow.Env, st *State) error {
	st.Graph.SetJobPrefix(env.JobPrefix())
	split, err := SplitBranches(st.Graph, o.Ratio)
	if err != nil {
		return err
	}
	st.Metrics.BranchesCut += split.EdgesCut
	return nil
}

// TipTrimOp is the wave phase of operation ⑤: REQUEST/DELETE waves delete
// dangling paths no longer than MinLen.
type TipTrimOp struct {
	// MinLen is the tip-length threshold (paper: 80).
	MinLen int
}

// Info implements workflow.Op.
func (o TipTrimOp) Info() workflow.Info {
	return workflow.Info{Name: "tiptrim", Needs: []workflow.Artifact{ArtGraph},
		Produces: []workflow.Artifact{ArtGraph}}
}

// Run implements workflow.Op.
func (o TipTrimOp) Run(env *workflow.Env, st *State) error {
	k, err := st.needK()
	if err != nil {
		return err
	}
	st.Graph.SetJobPrefix(env.JobPrefix())
	tips, err := RemoveTips(st.Graph, k, o.MinLen)
	if err != nil {
		return err
	}
	st.Metrics.TipVerticesRemoved += tips.RemovedVertices
	return nil
}

// StageOp is an explicit staging seam: the live segment graph and contig
// set are dumped to a shardio store (the paper's HDFS positioning between
// jobs of different systems) and immediately reloaded. Only durable
// segment data survives — labels and ambiguity annotations do not, which
// the planner enforces by consuming them. Dump and reload are charged to
// the simulated clock at checkpoint-I/O rates.
type StageOp struct {
	// Dir is the store directory; empty stages through a temporary
	// directory that is removed after the reload.
	Dir string
}

// Info implements workflow.Op.
func (o StageOp) Info() workflow.Info {
	return workflow.Info{Name: "stage",
		NeedsAny: []workflow.Artifact{ArtGraph, ArtMixed, ArtContigs},
		Consumes: []workflow.Artifact{ArtLabels, ArtAmbig}}
}

// Run implements workflow.Op.
func (o StageOp) Run(env *workflow.Env, st *State) error {
	if st.Graph == nil && st.Contigs == nil {
		return fmt.Errorf("core: stage seam has nothing to stage (no graph or contigs yet)")
	}
	dir := o.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "ppa-stage-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	if st.Graph != nil {
		store, err := shardio.Open(filepath.Join(dir, "segments"))
		if err != nil {
			return err
		}
		if err := DumpSegments(st.Graph, store); err != nil {
			return err
		}
		if err := chargeStageIO(env, store); err != nil {
			return err
		}
		g, err := LoadSegments(store, env.Config(), env.Clock)
		if err != nil {
			return err
		}
		st.Graph = g
	}
	if st.Contigs != nil {
		store, err := shardio.Open(filepath.Join(dir, "contigs"))
		if err != nil {
			return err
		}
		if err := DumpContigs(st.Contigs, store); err != nil {
			return err
		}
		if err := chargeStageIO(env, store); err != nil {
			return err
		}
		contigs, err := LoadContigs(store)
		if err != nil {
			return err
		}
		st.Contigs = contigs
	}
	return nil
}

// chargeStageIO charges a staging round trip to the simulated clock: every
// worker writes and re-reads its part-file in parallel, so the charge is
// carried by the largest part at checkpoint-I/O rates.
func chargeStageIO(env *workflow.Env, store *shardio.Store) error {
	sizes, err := store.PartSizes()
	if err != nil {
		return err
	}
	var max float64
	for _, s := range sizes {
		if b := float64(s); b > max {
			max = b
		}
	}
	env.Clock.ChargeCheckpoint(max)
	env.Clock.ChargeRecovery(max)
	return nil
}

// EmitFastaOp renders the current contig set as FASTA records (named and
// numbered exactly as the ppa-assembler CLI writes them).
type EmitFastaOp struct {
	// MinLen omits contigs shorter than this (0 keeps everything).
	MinLen int
}

// Info implements workflow.Op.
func (o EmitFastaOp) Info() workflow.Info {
	return workflow.Info{Name: "fasta", Needs: []workflow.Artifact{ArtContigs},
		Produces: []workflow.Artifact{ArtFasta}}
}

// Run implements workflow.Op.
func (o EmitFastaOp) Run(env *workflow.Env, st *State) error {
	var recs []fastx.Record
	for i, c := range pregel.Flatten(st.Contigs) {
		if c.Len() < o.MinLen {
			continue
		}
		recs = append(recs, fastx.Record{
			Name: fmt.Sprintf("contig_%d length=%d cov=%d", i+1, c.Len(), c.Node.Cov),
			Seq:  c.Node.Seq.String(),
		})
	}
	st.Fasta = recs
	return nil
}

// ScaffoldOp is the pipeline's stage ⑦ as a workflow op: paired-end
// scaffolding of the current contig set (mate placement and link bundling,
// link filtering, S-V chain labeling, ordering/orientation and list
// ranking — the jobs of package scaffold). Unset library options inherit
// the plan's environment.
type ScaffoldOp struct {
	Lib scaffold.Options
}

// Info implements workflow.Op.
func (o ScaffoldOp) Info() workflow.Info {
	return workflow.Info{Name: "scaffold",
		Needs:    []workflow.Artifact{ArtContigs, ArtPairs},
		Produces: []workflow.Artifact{ArtScaffolds}}
}

// Run implements workflow.Op.
func (o ScaffoldOp) Run(env *workflow.Env, st *State) error {
	flat := pregel.Flatten(st.Contigs)
	contigs := make([]scaffold.Contig, len(flat))
	for i, c := range flat {
		contigs[i] = scaffold.Contig{
			ID:   c.ID,
			Name: fmt.Sprintf("contig_%d", i+1),
			Seq:  c.Node.Seq,
		}
	}
	opt := o.Lib
	if opt.Workers <= 0 {
		opt.Workers = env.Workers
	}
	if opt.Cost == (pregel.CostModel{}) {
		opt.Cost = env.Cost
	}
	if opt.Partitioner == nil {
		opt.Partitioner = env.Partitioner
	}
	if opt.MessageBytes <= 0 {
		opt.MessageBytes = env.MessageBytes
	}
	if !opt.Parallel {
		opt.Parallel = env.Parallel
	}
	if opt.Clock == nil {
		opt.Clock = env.Clock
	}
	if opt.CheckpointEvery <= 0 {
		opt.CheckpointEvery = env.CheckpointEvery
	}
	if opt.Checkpointer == nil {
		opt.Checkpointer = env.Checkpointer
	}
	if opt.Faults == nil {
		opt.Faults = env.Faults
	}
	if !opt.Resume {
		opt.Resume = env.Resume
	}
	if opt.JobPrefix == "" {
		opt.JobPrefix = env.JobPrefix()
	}
	if opt.Tracer == nil {
		opt.Tracer = env.Tracer
	}
	if opt.Metrics == nil {
		opt.Metrics = env.Metrics
	}
	if opt.Warn == nil {
		opt.Warn = env.Warn
	}
	sres, err := scaffold.Build(contigs, st.Pairs, opt)
	if err != nil {
		return err
	}
	st.Scaffold = sres
	st.ScaffoldContigs = contigs
	return nil
}

// TraceOp turns telemetry on for the rest of the plan: it opens the
// requested trace/metrics sinks, layers the trace sink over any tracer the
// environment already carries, and registers closers so everything flushes
// when the plan finishes (even a failed one). It is how the CLI's
// `trace:file=...` spec op gives arbitrary user workflows the same
// observability as the -trace flag.
type TraceOp struct {
	// File is the trace output path ("" = no trace sink).
	File string
	// Format selects the trace encoding: "jsonl" (default) or "chrome"
	// (trace_event JSON for Perfetto / chrome://tracing).
	Format string
	// Metrics is the Prometheus-text metrics dump path ("" = no dump).
	Metrics string
}

// Info implements workflow.Op. The op needs no artifacts: it may open any
// plan, or sit mid-plan to trace only the ops after it.
func (o TraceOp) Info() workflow.Info { return workflow.Info{Name: "trace"} }

// Run implements workflow.Op.
func (o TraceOp) Run(env *workflow.Env, st *State) error {
	if o.File != "" {
		f, err := os.Create(o.File)
		if err != nil {
			return fmt.Errorf("core: trace sink: %w", err)
		}
		var sink interface {
			telemetry.Tracer
			Close() error
		}
		switch o.Format {
		case "", "jsonl":
			sink = telemetry.NewJSONLWriter(f)
		case "chrome":
			sink = telemetry.NewChromeWriter(f)
		default:
			f.Close()
			return fmt.Errorf("core: trace format %q: want jsonl or chrome", o.Format)
		}
		env.Tracer = telemetry.Multi(env.Tracer, sink)
		env.AddCloser(sink.Close)
	}
	if o.Metrics != "" {
		if env.Metrics == nil {
			env.Metrics = telemetry.NewRegistry()
		}
		reg, path := env.Metrics, o.Metrics
		env.AddCloser(func() error {
			f, err := os.Create(path)
			if err != nil {
				return fmt.Errorf("core: metrics dump: %w", err)
			}
			if err := reg.WritePrometheus(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		})
	}
	// A graph built by an earlier op captured the pre-trace telemetry in
	// its Config; retrofit the live sinks so the remaining ops on it are
	// traced too.
	if st.Graph != nil {
		st.Graph.SetTelemetry(env.Tracer, env.Metrics)
	}
	return nil
}

// OpDefaults seeds the spec-registry factories with defaults for
// parameters a spec leaves unset — the ppa-assembler CLI passes its global
// flag values here, so `-workflow "build,label,merge"` honors -k and -tip.
type OpDefaults struct {
	K              int
	Theta          uint32
	TipLen         int
	BubbleEditDist int
	BubbleMinCov   uint32
	Labeler        Labeler
	MinLen         int
	Scaffold       scaffold.Options
}

// DefaultOpDefaults mirrors DefaultOptions for spec parsing.
func DefaultOpDefaults() OpDefaults {
	return OpDefaults{K: 21, Theta: 1, TipLen: 80, BubbleEditDist: 5, Labeler: LabelerLR}
}

// OpRegistry returns the spec registry of the assembler's op catalog, the
// grammar behind the ppa-assembler -workflow flag:
//
//	build[:k=21][:theta=1]      DBG construction (op ①)
//	label[:algo=lr|sv]          contig labeling (op ②); aliases: listrank, svlabel
//	merge[:tiplen=80]           contig merging (op ③)
//	bubble[:editdist=5][:mincov=0]  bubble filtering (op ④)
//	rebuild                     mixed-graph conversion (ambiguous k-mers + contigs)
//	partition[:scheme=hash|range|minimizer|affinity][:k=21]
//	                            vertex placement for graphs built from here on
//	repartition[:every=4][:window=N][:maxmove=N]
//	                            online adaptive repartitioning (live vertex
//	                            migration) from here on; every=0 disables
//	link                        contig announcement (op ⑤ setup)
//	split:ratio=N               branch splitting (Spaler extension)
//	tiptrim[:minlen=80]         tip removal waves (op ⑤)
//	stage[:dir=PATH]            dump/reload seam through a shardio store
//	trace[:file=PATH][:format=jsonl|chrome][:metrics=PATH]
//	                            telemetry sinks for the rest of the plan
//	fasta[:minlen=0]            render contigs as FASTA
//	scaffold[:insert=0][:insertsd=0][:minsupport=3][:minlen=500][:seed=31]
//	                            paired-end scaffolding (stage ⑦)
func OpRegistry(def OpDefaults) workflow.Registry[State] {
	labelOp := func(algo Labeler) workflow.Factory[State] {
		return func(p *workflow.Params) (workflow.Op[State], error) {
			return LabelOp{Algo: algo}, p.Err()
		}
	}
	return workflow.Registry[State]{
		"build": func(p *workflow.Params) (workflow.Op[State], error) {
			return BuildDBGOp{K: p.Int("k", def.K), Theta: p.Uint32("theta", def.Theta)}, p.Err()
		},
		"label": func(p *workflow.Params) (workflow.Op[State], error) {
			op := LabelOp{}
			switch algo := p.Str("algo", ""); algo {
			case "", "lr":
				op.Algo = def.Labeler
				if algo == "lr" {
					op.Algo = LabelerLR
				}
			case "sv":
				op.Algo = LabelerSV
			default:
				return nil, fmt.Errorf("parameter algo=%q: want lr or sv", algo)
			}
			return op, p.Err()
		},
		"listrank": labelOp(LabelerLR),
		"svlabel":  labelOp(LabelerSV),
		"merge": func(p *workflow.Params) (workflow.Op[State], error) {
			return MergeOp{TipLen: p.Int("tiplen", def.TipLen)}, p.Err()
		},
		"bubble": func(p *workflow.Params) (workflow.Op[State], error) {
			return BubblePopOp{
				EditDist: p.Int("editdist", def.BubbleEditDist),
				MinCov:   p.Uint32("mincov", def.BubbleMinCov),
			}, p.Err()
		},
		"rebuild": func(p *workflow.Params) (workflow.Op[State], error) {
			return RebuildOp{}, p.Err()
		},
		"partition": func(p *workflow.Params) (workflow.Op[State], error) {
			op := PartitionOp{Scheme: p.Str("scheme", "hash"), K: p.Int("k", def.K)}
			// Validate the scheme at parse time so a typo fails before any
			// compute, like every other spec error.
			if _, err := MakePartitioner(op.Scheme, op.K); err != nil {
				return nil, err
			}
			return op, p.Err()
		},
		"repartition": func(p *workflow.Params) (workflow.Op[State], error) {
			op := RepartitionOp{
				Every:    p.Int("every", 4),
				Window:   p.Int("window", 0),
				MaxMoves: p.Int("maxmove", 0),
			}
			if err := p.Err(); err != nil {
				return nil, err
			}
			if op.Every > 0 {
				pol := pregel.RepartitionPolicy{Every: op.Every, Window: op.Window, MaxMoves: op.MaxMoves}
				// Validate the policy at parse time, like partition schemes.
				if err := (pregel.Config{Workers: 1, Repartition: &pol}).Validate(); err != nil {
					return nil, err
				}
			}
			return op, nil
		},
		"link": func(p *workflow.Params) (workflow.Op[State], error) {
			return LinkContigsOp{}, p.Err()
		},
		"split": func(p *workflow.Params) (workflow.Op[State], error) {
			op := SplitOp{Ratio: p.Uint32("ratio", 0)}
			if op.Ratio < 2 {
				return nil, fmt.Errorf("parameter ratio=%d: must be >= 2", op.Ratio)
			}
			return op, p.Err()
		},
		"tiptrim": func(p *workflow.Params) (workflow.Op[State], error) {
			return TipTrimOp{MinLen: p.Int("minlen", def.TipLen)}, p.Err()
		},
		"stage": func(p *workflow.Params) (workflow.Op[State], error) {
			return StageOp{Dir: p.Str("dir", "")}, p.Err()
		},
		"trace": func(p *workflow.Params) (workflow.Op[State], error) {
			op := TraceOp{
				File:    p.Str("file", ""),
				Format:  p.Str("format", "jsonl"),
				Metrics: p.Str("metrics", ""),
			}
			if op.Format != "jsonl" && op.Format != "chrome" {
				return nil, fmt.Errorf("parameter format=%q: want jsonl or chrome", op.Format)
			}
			if op.File == "" && op.Metrics == "" {
				return nil, fmt.Errorf("trace op needs file= and/or metrics=")
			}
			return op, p.Err()
		},
		"fasta": func(p *workflow.Params) (workflow.Op[State], error) {
			return EmitFastaOp{MinLen: p.Int("minlen", def.MinLen)}, p.Err()
		},
		"scaffold": func(p *workflow.Params) (workflow.Op[State], error) {
			lib := def.Scaffold
			lib.InsertMean = p.Float("insert", lib.InsertMean)
			lib.InsertSD = p.Float("insertsd", lib.InsertSD)
			lib.MinSupport = p.Int("minsupport", lib.MinSupport)
			lib.MinContigLen = p.Int("minlen", lib.MinContigLen)
			lib.SeedLen = p.Int("seed", lib.SeedLen)
			return ScaffoldOp{Lib: lib}, p.Err()
		},
	}
}
