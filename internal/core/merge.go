package core

import (
	"fmt"

	"ppaassembler/internal/dbg"
	"ppaassembler/internal/dna"
	"ppaassembler/internal/pregel"
)

// ContigRec is one merged contig: a contig-kind segment node plus its
// assigned vertex ID (Figure 7(c): worker number + per-worker ordinal).
type ContigRec struct {
	ID   pregel.VertexID
	Node dbg.Node
}

// Len returns the contig's sequence length in bases.
func (c *ContigRec) Len() int { return c.Node.Seq.Len() }

// MergeResult is the output of operation ③.
type MergeResult struct {
	// Contigs holds the per-worker contig records (worker = the reducer
	// that created the contig, matching its ID).
	Contigs [][]ContigRec
	// DroppedTips counts unambiguous paths discarded at merge time because
	// they dead-end and are no longer than tipLen (§IV-B ③).
	DroppedTips int
	// Groups is the number of contig groups processed (before the tip
	// drop), i.e. the number of maximal unambiguous paths.
	Groups int
	Stats  *pregel.Stats
}

// member is the map-side record of operation ③: one labeled vertex.
type member struct {
	ID    pregel.VertexID
	label pregel.VertexID
	Node  dbg.Node
}

// MergeContigs is operation ③ (§IV-B): a mini-MapReduce that groups the
// labeled unambiguous vertices by contig label and stitches each group into
// a contig, orienting every member with the edge-polarity algebra
// (Property 1) and overlapping consecutive members by k-1 bases. Dangling
// groups no longer than tipLen are dropped as tips. Ambiguous vertices are
// not consumed; they stay in g for the next operations.
func MergeContigs(g *Graph, k, tipLen int) (*MergeResult, error) {
	workers := g.Workers()
	input := make([][]member, workers)
	g.ForEachWorker(func(w int, id pregel.VertexID, v *VData) {
		if v.Labeled {
			input[w] = append(input[w], member{ID: id, label: v.Label, Node: v.Node})
		}
	})

	// Reducers run concurrently under Parallel (reduceFn(w, ...) is only
	// ever called from reducer w), so every side effect — ordinal
	// assignment, group/tip counters, error capture — is partitioned by
	// reducer index and folded after the shuffle.
	res := &MergeResult{}
	ordinals := make([]uint32, workers)
	groups := make([]int, workers)
	droppedTips := make([]int, workers)
	errs := make([]error, workers)
	// The grouping deliberately leaves MRConfig.Partitioner nil: the
	// reducer index is baked into every contig's (worker, ordinal) ID and
	// therefore into the output's naming and order, so merge grouping must
	// stay placement-invariant — all three partitioners must produce
	// byte-identical contigs.
	out, st := pregel.MapReduceCfg(
		g.Clock(), pregel.MRConfig{
			Workers: workers, PairBytes: 64, Parallel: g.Config().Parallel, Faults: g.Config().Faults,
			Name: g.Config().JobPrefix + "group", Tracer: g.Config().Tracer, Metrics: g.Config().Metrics,
		},
		input, // 64 ≈ id + packed node on the wire, rough charge
		func(w int, m member, emit func(uint64, member)) {
			emit(uint64(m.label), m)
		},
		pregel.Uint64Hash,
		func(a, b uint64) bool { return a < b },
		func(w int, key uint64, group []member, emit func(ContigRec)) {
			groups[w]++
			rec, dropped, err := stitchGroup(w, &ordinals[w], group, k, tipLen)
			if err != nil && errs[w] == nil {
				errs[w] = err
			}
			if dropped {
				droppedTips[w]++
				return
			}
			if err == nil {
				emit(rec)
			}
		},
	)
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			return nil, errs[w]
		}
		res.Groups += groups[w]
		res.DroppedTips += droppedTips[w]
	}
	res.Contigs = out
	res.Stats = st
	return res, nil
}

// stitchGroup orders and stitches one contig group (the reduce(.) of
// §IV-B ③). It returns the contig record, or dropped=true when the group is
// a dead-ending path no longer than tipLen.
func stitchGroup(worker int, ordinal *uint32, group []member, k, tipLen int) (rec ContigRec, dropped bool, err error) {
	inGroup := make(map[pregel.VertexID]*member, len(group))
	for i := range group {
		inGroup[group[i].ID] = &group[i]
	}
	internal := func(a dbg.Adj) bool {
		_, ok := inGroup[a.Nbr]
		return a.Nbr != dbg.NullID && ok
	}

	// Identify a starting vertex: one with an external (or dead) side.
	// A cycle has none; start anywhere (smallest ID for determinism —
	// group order is deterministic but explicit is better).
	var start *member
	for i := range group {
		m := &group[i]
		ext := 2 - countInternal(m.Node, internal)
		if ext >= 1 && (start == nil || m.ID < start.ID) {
			start = m
		}
	}
	isCycle := start == nil
	if isCycle {
		for i := range group {
			if start == nil || group[i].ID < start.ID {
				start = &group[i]
			}
		}
	}

	// Orient the start so its internal edge (if any) leaves it.
	orient := dbg.L
	var outItem dbg.Adj
	hasOut := false
	for _, a := range start.Node.Adj {
		if internal(a) {
			n := a
			if n.In {
				n = n.Flip()
			}
			orient = n.PSelf
			// Re-normalize: we want the item expressed with PSelf=orient
			// and In=false, which n already is.
			outItem = n
			hasOut = true
			break
		}
	}

	var sb dna.Builder
	first := start.Node.Oriented(orient)
	sb.AppendSeq(first)
	cov := uint32(0)
	hasCov := false
	foldCov := func(c uint32) {
		if !hasCov || c < cov {
			cov, hasCov = c, true
		}
	}
	if start.Node.Kind == dbg.KindContig {
		foldCov(start.Node.Cov)
	}

	// Walk the path, appending each member's oriented sequence minus the
	// k-1 overlap, with a consistency check on the overlap itself.
	cur, curOrient := start, orient
	lastOrient := orient
	visited := 1
	for hasOut {
		foldCov(outItem.Cov)
		next, ok := inGroup[outItem.Nbr]
		if !ok {
			return rec, false, fmt.Errorf("core: contig walk left group at %x", outItem.Nbr)
		}
		if next == start {
			break // cycle closed
		}
		if visited++; visited > len(group) {
			return rec, false, fmt.Errorf("core: contig walk did not terminate (label group of %d)", len(group))
		}
		nextOrient := outItem.PNbr
		seq := next.Node.Oriented(nextOrient)
		// Overlap check: the stitched tail must equal the next segment's
		// head (k-1 bases) — a violated invariant means a polarity bug.
		tail := sb.Len() - (k - 1)
		for i := 0; i < k-1; i++ {
			if seq.At(i) != seqAt(&sb, tail+i) {
				return rec, false, fmt.Errorf("core: overlap mismatch while stitching contig (member %x)", next.ID)
			}
		}
		for i := k - 1; i < seq.Len(); i++ {
			sb.Append(seq.At(i))
		}
		if next.Node.Kind == dbg.KindContig {
			foldCov(next.Node.Cov)
		}
		// Find the ongoing edge: the item of next (normalized to
		// nextOrient) that is an out-edge and not the one we came through.
		cur, curOrient = next, nextOrient
		hasOut = false
		for _, a := range next.Node.Adj {
			if !internal(a) {
				continue
			}
			n := a.Normalized(nextOrient)
			if !n.In {
				outItem = n
				hasOut = true
				break
			}
		}
		lastOrient = nextOrient
	}
	_ = curOrient

	// Determine the two ends. Left end: start's external item, which under
	// the walk orientation must be incoming; right end: the final member's
	// external item, outgoing. Dead sides become NULL ends.
	left := externalEnd(start.Node, internal, orient, true)
	right := externalEnd(cur.Node, internal, lastOrient, false)
	if isCycle {
		left = dbg.Adj{Nbr: dbg.NullID, In: true, PSelf: dbg.L}
		right = dbg.Adj{Nbr: dbg.NullID, In: false, PSelf: dbg.L}
	}

	length := sb.Len()
	if (left.Nbr == dbg.NullID || right.Nbr == dbg.NullID) && length <= tipLen {
		return rec, true, nil
	}
	if !hasCov {
		foldCov(minAdjCov(start.Node))
	}

	*ordinal++
	rec = ContigRec{
		ID: dbg.ContigID(worker, *ordinal),
		Node: dbg.Node{
			Kind: dbg.KindContig,
			Seq:  sb.Seq(),
			Cov:  cov,
			Adj:  []dbg.Adj{left, right},
		},
	}
	return rec, false, nil
}

// externalEnd extracts a member's external edge as a contig end item. The
// contig side is always polarity L because the contig's stored sequence is
// the walk orientation (§IV-A: "we always keep the contig-side edge
// polarity to be L").
func externalEnd(n dbg.Node, internal func(dbg.Adj) bool, orient dbg.Polarity, wantIn bool) dbg.Adj {
	for _, a := range n.Adj {
		if a.Nbr == dbg.NullID || internal(a) {
			continue
		}
		e := a.Normalized(orient)
		if e.In == wantIn {
			return dbg.Adj{Nbr: e.Nbr, In: wantIn, PSelf: dbg.L, PNbr: e.PNbr, Cov: e.Cov, NbrLen: e.NbrLen}
		}
	}
	return dbg.Adj{Nbr: dbg.NullID, In: wantIn, PSelf: dbg.L}
}

func countInternal(n dbg.Node, internal func(dbg.Adj) bool) int {
	c := 0
	for _, a := range n.Adj {
		if internal(a) {
			c++
		}
	}
	return c
}

func minAdjCov(n dbg.Node) uint32 {
	var cov uint32
	has := false
	for _, a := range n.Adj {
		if a.Nbr != dbg.NullID && (!has || a.Cov < cov) {
			cov, has = a.Cov, true
		}
	}
	return cov
}

// seqAt reads base i out of an in-progress builder. The builder exposes no
// random access, so we keep a parallel accessor here.
func seqAt(b *dna.Builder, i int) dna.Base { return b.Seq().At(i) }
