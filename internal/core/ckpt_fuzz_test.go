package core

import (
	"encoding/binary"
	"testing"

	"ppaassembler/internal/dbg"
	"ppaassembler/internal/dna"
	"ppaassembler/internal/pregel"
	"ppaassembler/internal/pregel/ckpttest"
)

// fuzzGen derives struct fields deterministically from raw fuzz input.
type fuzzGen struct {
	data []byte
	i    int
}

func (g *fuzzGen) b() byte {
	if g.i >= len(g.data) {
		return 0
	}
	v := g.data[g.i]
	g.i++
	return v
}

func (g *fuzzGen) flag() bool { return g.b()&1 == 1 }

func (g *fuzzGen) u64() uint64 {
	var raw [8]byte
	for i := range raw {
		raw[i] = g.b()
	}
	return binary.LittleEndian.Uint64(raw[:])
}

func (g *fuzzGen) id() pregel.VertexID { return pregel.VertexID(g.u64()) }

func (g *fuzzGen) n(max int) int { return int(g.b()) % (max + 1) }

func (g *fuzzGen) seq() dna.Seq {
	s := dna.NewSeq(0)
	for n := g.n(70); n > 0; n-- {
		s = s.Append(dna.Base(g.b() & 3))
	}
	return s
}

func (g *fuzzGen) adj() dbg.Adj {
	return dbg.Adj{
		Nbr:    g.id(),
		In:     g.flag(),
		PSelf:  dbg.Polarity(g.b()),
		PNbr:   dbg.Polarity(g.b()),
		Cov:    uint32(g.u64()),
		NbrLen: int32(g.u64()),
	}
}

func (g *fuzzGen) node() dbg.Node {
	n := dbg.Node{Kind: dbg.NodeKind(g.b()), Seq: g.seq(), Cov: uint32(g.u64())}
	if na := g.n(4); na > 0 {
		n.Adj = make([]dbg.Adj, na)
		for i := range n.Adj {
			n.Adj[i] = g.adj()
		}
	}
	return n
}

// FuzzVDataCodecDifferential checks the segment-graph vertex value — the
// richest state shape the checkpoint codec carries (nested node, sequence,
// adjacency, per-side labeling state) — against the gob baseline.
func FuzzVDataCodecDifferential(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x05, 0x00, 0x41})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := &fuzzGen{data: data}
		v := VData{
			Node:       g.node(),
			Ambig:      g.flag(),
			Label:      g.id(),
			Labeled:    g.flag(),
			Cycle:      g.flag(),
			LastActive: int64(g.u64()),
			D:          g.id(),
			DD:         g.id(),
			TipProbed:  g.flag(),
		}
		if na := g.n(6); na > 0 {
			v.NbrAmbig = make([]bool, na)
			for i := range v.NbrAmbig {
				v.NbrAmbig[i] = g.flag()
			}
		}
		for i := 0; i < 2; i++ {
			v.Sides[i] = g.adj()
			v.HasSide[i] = g.flag()
			v.P[i] = g.id()
			v.PSide[i] = g.b()
			v.Done[i] = g.flag()
		}
		ckpttest.RoundTrip[VData](t, &v)
		ckpttest.NoPanic[VData](t, data)
		ckpttest.Corrupt[VData](t, &v, data)
	})
}

func FuzzMsgCodecDifferential(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{7, 1, 0, 2, 3, 1, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff, 0x11, 0x22})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := &fuzzGen{data: data}
		m := Msg{
			Kind:  MsgKind(g.b()),
			From:  g.id(),
			Ptr:   g.id(),
			Side:  g.b(),
			Side2: g.b(),
			Flag:  g.flag(),
			Len:   int64(g.u64()),
			Cov:   uint32(g.u64()),
			P1:    dbg.Polarity(g.b()),
			P2:    dbg.Polarity(g.b()),
			NLen:  int32(g.u64()),
		}
		ckpttest.RoundTrip[Msg](t, &m)
		ckpttest.NoPanic[Msg](t, data)
		ckpttest.Corrupt[Msg](t, &m, data)
	})
}
