// Checkpoint codec methods: VData and Msg opt into the Pregel engine's
// binary checkpoint format (v2) by implementing pregel.CheckpointAppender /
// pregel.CheckpointDecoder, so segment-graph jobs checkpoint without gob
// and become eligible for delta checkpoints. Field order is the struct
// order; vertex IDs are fixed 8-byte little-endian (canonical k-mer codes
// and flipped IDs span the full 64-bit range, where varints buy nothing).

package core

import (
	"fmt"

	"ppaassembler/internal/dbg"
	"ppaassembler/internal/pregel"
)

// AppendCheckpoint implements pregel.CheckpointAppender.
func (v *VData) AppendCheckpoint(buf []byte) []byte {
	buf = v.Node.AppendCheckpoint(buf)
	buf = pregel.AppendUvarint(buf, uint64(len(v.NbrAmbig)))
	for _, b := range v.NbrAmbig {
		buf = pregel.AppendBool(buf, b)
	}
	buf = pregel.AppendBool(buf, v.Ambig)
	for i := 0; i < 2; i++ {
		buf = v.Sides[i].AppendCheckpoint(buf)
		buf = pregel.AppendBool(buf, v.HasSide[i])
		buf = pregel.AppendUint64(buf, uint64(v.P[i]))
		buf = append(buf, v.PSide[i])
		buf = pregel.AppendBool(buf, v.Done[i])
	}
	buf = pregel.AppendUint64(buf, uint64(v.Label))
	buf = pregel.AppendBool(buf, v.Labeled)
	buf = pregel.AppendBool(buf, v.Cycle)
	buf = pregel.AppendVarint(buf, v.LastActive)
	buf = pregel.AppendUint64(buf, uint64(v.D))
	buf = pregel.AppendUint64(buf, uint64(v.DD))
	return pregel.AppendBool(buf, v.TipProbed)
}

// DecodeCheckpoint implements pregel.CheckpointDecoder.
func (v *VData) DecodeCheckpoint(data []byte) ([]byte, error) {
	data, err := v.Node.DecodeCheckpoint(data)
	if err != nil {
		return nil, err
	}
	na, data, err := pregel.ConsumeUvarint(data)
	if err != nil {
		return nil, err
	}
	if uint64(len(data)) < na {
		return nil, fmt.Errorf("core: corrupt VData encoding: %d ambiguity flags in %d bytes", na, len(data))
	}
	v.NbrAmbig = nil
	if na > 0 {
		v.NbrAmbig = make([]bool, na)
	}
	for i := range v.NbrAmbig {
		if v.NbrAmbig[i], data, err = pregel.ConsumeBool(data); err != nil {
			return nil, err
		}
	}
	if v.Ambig, data, err = pregel.ConsumeBool(data); err != nil {
		return nil, err
	}
	for i := 0; i < 2; i++ {
		if data, err = v.Sides[i].DecodeCheckpoint(data); err != nil {
			return nil, err
		}
		if v.HasSide[i], data, err = pregel.ConsumeBool(data); err != nil {
			return nil, err
		}
		var id uint64
		if id, data, err = pregel.ConsumeUint64(data); err != nil {
			return nil, err
		}
		v.P[i] = pregel.VertexID(id)
		if len(data) < 1 {
			return nil, fmt.Errorf("core: corrupt VData encoding: truncated side")
		}
		v.PSide[i], data = data[0], data[1:]
		if v.Done[i], data, err = pregel.ConsumeBool(data); err != nil {
			return nil, err
		}
	}
	var id uint64
	if id, data, err = pregel.ConsumeUint64(data); err != nil {
		return nil, err
	}
	v.Label = pregel.VertexID(id)
	if v.Labeled, data, err = pregel.ConsumeBool(data); err != nil {
		return nil, err
	}
	if v.Cycle, data, err = pregel.ConsumeBool(data); err != nil {
		return nil, err
	}
	if v.LastActive, data, err = pregel.ConsumeVarint(data); err != nil {
		return nil, err
	}
	if id, data, err = pregel.ConsumeUint64(data); err != nil {
		return nil, err
	}
	v.D = pregel.VertexID(id)
	if id, data, err = pregel.ConsumeUint64(data); err != nil {
		return nil, err
	}
	v.DD = pregel.VertexID(id)
	if v.TipProbed, data, err = pregel.ConsumeBool(data); err != nil {
		return nil, err
	}
	return data, nil
}

// AppendCheckpoint implements pregel.CheckpointAppender.
func (m *Msg) AppendCheckpoint(buf []byte) []byte {
	buf = append(buf, byte(m.Kind), m.Side, m.Side2, byte(m.P1), byte(m.P2))
	buf = pregel.AppendBool(buf, m.Flag)
	buf = pregel.AppendUint64(buf, uint64(m.From))
	buf = pregel.AppendUint64(buf, uint64(m.Ptr))
	buf = pregel.AppendVarint(buf, m.Len)
	buf = pregel.AppendUvarint(buf, uint64(m.Cov))
	return pregel.AppendVarint(buf, int64(m.NLen))
}

// DecodeCheckpoint implements pregel.CheckpointDecoder.
func (m *Msg) DecodeCheckpoint(data []byte) ([]byte, error) {
	if len(data) < 5 {
		return nil, fmt.Errorf("core: corrupt Msg encoding: truncated header")
	}
	m.Kind = MsgKind(data[0])
	m.Side, m.Side2 = data[1], data[2]
	m.P1, m.P2 = dbg.Polarity(data[3]), dbg.Polarity(data[4])
	data = data[5:]
	var err error
	if m.Flag, data, err = pregel.ConsumeBool(data); err != nil {
		return nil, err
	}
	var id uint64
	if id, data, err = pregel.ConsumeUint64(data); err != nil {
		return nil, err
	}
	m.From = pregel.VertexID(id)
	if id, data, err = pregel.ConsumeUint64(data); err != nil {
		return nil, err
	}
	m.Ptr = pregel.VertexID(id)
	if m.Len, data, err = pregel.ConsumeVarint(data); err != nil {
		return nil, err
	}
	cov, data, err := pregel.ConsumeUvarint(data)
	if err != nil {
		return nil, err
	}
	m.Cov = uint32(cov)
	nl, data, err := pregel.ConsumeVarint(data)
	if err != nil {
		return nil, err
	}
	m.NLen = int32(nl)
	return data, nil
}
