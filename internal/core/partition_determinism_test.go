package core

import (
	"bytes"
	"fmt"
	"testing"

	"ppaassembler/internal/fastx"
	"ppaassembler/internal/pregel"
	"ppaassembler/internal/scaffold"
)

// partitionerRun executes the full pipeline (assemble + scaffold) under one
// named placement strategy and renders both FASTA outputs exactly as the
// CLI does, so byte equality here is byte equality of shipped artifacts.
func partitionerRun(t *testing.T, reads []string, pairs []scaffold.Pair, workers int, parallel, overlap bool, partitioner string, pol *pregel.RepartitionPolicy) (contigFasta, scaffoldFasta []byte, res *Result, sres *scaffold.Result) {
	t.Helper()
	opt := DefaultOptions(workers)
	opt.K = 21
	opt.Parallel = parallel
	opt.Overlap = overlap
	part, err := MakePartitioner(partitioner, opt.K)
	if err != nil {
		t.Fatal(err)
	}
	opt.Partitioner = part
	opt.Repartition = pol
	res, err = Assemble(pregel.ShardSlice(reads, workers), opt)
	if err != nil {
		t.Fatal(err)
	}
	var recs []fastx.Record
	for i, c := range res.Contigs {
		recs = append(recs, fastx.Record{
			Name: fmt.Sprintf("contig_%d length=%d cov=%d", i+1, c.Len(), c.Node.Cov),
			Seq:  c.Node.Seq.String(),
		})
	}
	var cb bytes.Buffer
	if err := fastx.WriteFasta(&cb, recs, 70); err != nil {
		t.Fatal(err)
	}
	sres, scontigs, err := ScaffoldContigs(res, opt, pairs, scaffold.Options{
		InsertMean: 600, InsertSD: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb bytes.Buffer
	if err := fastx.WriteFasta(&sb, scaffold.Records(scontigs, sres.Scaffolds), 70); err != nil {
		t.Fatal(err)
	}
	return cb.Bytes(), sb.Bytes(), res, sres
}

// TestPipelinePartitionerByteIdentity is the placement-independence
// contract at pipeline scale: the assemble+scaffold workload must produce
// byte-identical contig and scaffold FASTA — and identical experiment
// counters — under every partitioner, for workers in {1, 4, 7}, sequential,
// parallel-barriered and parallel-overlapped alike. Placement and delivery
// mode may only move the local/remote traffic split, and for multi-worker
// runs the minimizer partitioner must actually move it: fewer remote
// messages than hash.
func TestPipelinePartitionerByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline partitioner matrix is slow")
	}
	reads, pairs := exampleGenomeReads(t)
	modes := []struct{ parallel, overlap bool }{
		{false, false}, {true, false}, {true, true},
	}
	for _, workers := range []int{1, 4, 7} {
		cBase, sBase, resBase, sresBase := partitionerRun(t, reads, pairs, workers, false, false, "hash", nil)
		baseTotal := resBase.LocalMessages + resBase.RemoteMessages
		for _, partitioner := range []string{"hash", "range", "minimizer", "affinity"} {
			for _, mode := range modes {
				if partitioner == "hash" && !mode.parallel {
					continue // that run is the baseline itself
				}
				parallel, overlap := mode.parallel, mode.overlap
				label := fmt.Sprintf("workers=%d partitioner=%s parallel=%v overlap=%v", workers, partitioner, parallel, overlap)
				c, s, res, sres := partitionerRun(t, reads, pairs, workers, parallel, overlap, partitioner, nil)
				if !bytes.Equal(c, cBase) {
					t.Errorf("%s: contig FASTA differs from hash", label)
				}
				if !bytes.Equal(s, sBase) {
					t.Errorf("%s: scaffold FASTA differs from hash", label)
				}
				counters := [][2]int{
					{res.KmerVertices, resBase.KmerVertices},
					{res.MidVertices, resBase.MidVertices},
					{res.FinalContigs, resBase.FinalContigs},
					{res.BubblesPruned, resBase.BubblesPruned},
					{res.TipVerticesRemoved, resBase.TipVerticesRemoved},
					{res.TipsDroppedAtMerge[0], resBase.TipsDroppedAtMerge[0]},
					{res.TipsDroppedAtMerge[1], resBase.TipsDroppedAtMerge[1]},
					{int(res.K1Kept), int(resBase.K1Kept)},
					{int(res.K1Distinct), int(resBase.K1Distinct)},
					{res.KmerLabel.Supersteps, resBase.KmerLabel.Supersteps},
					{int(res.KmerLabel.Messages), int(resBase.KmerLabel.Messages)},
					{res.ContigLabel.Supersteps, resBase.ContigLabel.Supersteps},
					{int(res.ContigLabel.Messages), int(resBase.ContigLabel.Messages)},
					{sres.Stats.Supersteps, sresBase.Stats.Supersteps},
					{int(sres.Stats.Messages), int(sresBase.Stats.Messages)},
					{sres.LinkBundles, sresBase.LinkBundles},
					{sres.LinksKept, sresBase.LinksKept},
				}
				for i, c := range counters {
					if c[0] != c[1] {
						t.Errorf("%s: counter %d = %d, hash = %d", label, i, c[0], c[1])
					}
				}
				if total := res.LocalMessages + res.RemoteMessages; total != baseTotal {
					t.Errorf("%s: total traffic %d != hash total %d", label, total, baseTotal)
				}
				// The minimizer placement is the locality workhorse: DBG
				// edges co-locate whenever the endpoints share a minimizer,
				// so its remote share must drop well below hash's scatter.
				if partitioner == "minimizer" && workers > 1 {
					if res.RemoteMessages >= resBase.RemoteMessages*95/100 {
						t.Errorf("%s: remote messages %d not at least 5%% below hash's %d",
							label, res.RemoteMessages, resBase.RemoteMessages)
					}
				}
			}
		}
	}
}

// TestPipelineAdaptiveByteIdentity extends the placement-independence
// contract to live migration: an adaptive run — any base partitioner, any
// delivery mode — must produce byte-identical contig and scaffold FASTA to
// the static hash baseline while actually migrating, and over a hash base
// its remote traffic must drop below what the static minimizer placement
// achieves (the headline of the adaptive_partitioning bench section).
func TestPipelineAdaptiveByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline adaptive matrix is slow")
	}
	reads, pairs := exampleGenomeReads(t)
	const workers = 4
	pol := &pregel.RepartitionPolicy{Every: 2, MaxMoves: 1 << 20}
	cBase, sBase, resBase, _ := partitionerRun(t, reads, pairs, workers, false, false, "hash", nil)
	_, _, resMin, _ := partitionerRun(t, reads, pairs, workers, false, false, "minimizer", nil)
	for _, base := range []string{"hash", "minimizer"} {
		for _, mode := range []struct{ parallel, overlap bool }{
			{false, false}, {true, false}, {true, true},
		} {
			label := fmt.Sprintf("base=%s parallel=%v overlap=%v", base, mode.parallel, mode.overlap)
			c, s, res, _ := partitionerRun(t, reads, pairs, workers, mode.parallel, mode.overlap, base, pol)
			if !bytes.Equal(c, cBase) {
				t.Errorf("%s: contig FASTA differs from static hash", label)
			}
			if !bytes.Equal(s, sBase) {
				t.Errorf("%s: scaffold FASTA differs from static hash", label)
			}
			if total := res.LocalMessages + res.RemoteMessages; total != resBase.LocalMessages+resBase.RemoteMessages {
				t.Errorf("%s: total traffic %d != static hash total %d",
					label, total, resBase.LocalMessages+resBase.RemoteMessages)
			}
			if res.Migrations == 0 || res.MigratedVertices == 0 {
				t.Errorf("%s: adaptive run committed no migrations", label)
			}
			if base == "hash" && res.RemoteMessages >= resMin.RemoteMessages {
				t.Errorf("%s: remote messages %d not below static minimizer's %d",
					label, res.RemoteMessages, resMin.RemoteMessages)
			}
		}
	}
}
