package core

import (
	"fmt"

	"ppaassembler/internal/dbg"
	"ppaassembler/internal/dna"
	"ppaassembler/internal/pregel"
	"ppaassembler/internal/workflow"
)

// This file is the assembler's placement catalog over the engine's
// pluggable Partitioner layer: the named strategies the CLI and workflow
// specs can select, and the label-affinity partitioner that re-places
// contig vertices after merging.
//
// Placement never changes what the assembler outputs — the engine is
// placement-deterministic and contig identity is pinned to the hash-grouped
// merge reduce — it only changes which messages cross the simulated wire,
// which is exactly what the two-tier cost model measures.

// PartitionerNames lists the selectable strategies, for flag help and
// error messages.
const PartitionerNames = "hash, range, minimizer or affinity"

// MakePartitioner builds a named placement strategy:
//
//	hash       SplitMix64 scatter (the default; byte-identical to the
//	           engine's historical behavior)
//	range      contiguous spans of the 2k-bit k-mer ID space, so each
//	           worker owns one lexicographic slice of k-mer space; contig
//	           and NULL IDs fall back to hash
//	minimizer  k-mers placed by their canonical minimizer, so DBG-adjacent
//	           k-mers — which share k-1 bases and almost always a
//	           minimizer — co-locate (see dbg.MinimizerPartitioner); the
//	           measured locality winner on the assemble+scaffold workload
//	affinity   hash placement until contigs exist, then the rebuilt mixed
//	           graph is re-placed by junction neighborhood
//	           (see AffinityPartitioner)
//
// k is the run's k-mer length, which sizes the range partitioner's ID
// space and the minimizer windows.
func MakePartitioner(name string, k int) (pregel.Partitioner, error) {
	switch name {
	case "", "hash":
		return pregel.HashPartitioner{}, nil
	case "range":
		if err := dna.ValidK(k); err != nil {
			return nil, fmt.Errorf("core: range partitioner: %w", err)
		}
		return pregel.RangePartitioner{Bits: uint(2 * k)}, nil
	case "minimizer":
		if err := dna.ValidK(k); err != nil {
			return nil, fmt.Errorf("core: minimizer partitioner: %w", err)
		}
		return dbg.NewMinimizerPartitioner(k), nil
	case "affinity":
		return NewAffinityPartitioner(), nil
	}
	return nil, fmt.Errorf("core: unknown partitioner %q (want %s)", name, PartitionerNames)
}

// AffinityPartitioner is the greedy label-affinity strategy: ordinary
// vertices keep their base (hash) placement, but once operation ③ has
// grouped the labeled vertices into contigs, the rebuilt mixed graph is
// re-placed by junction neighborhood. Every edge of the mixed graph is
// incident to an ambiguous k-mer (the graph holds only ambiguous k-mers
// and contig vertices), so each ambiguous end k-mer and all the contigs
// whose merge-label groups border on it are assigned to one worker —
// greedily, least-loaded worker first, which keeps the re-placement
// balanced. The contig↔end-k-mer edges carry the link announcements (op ⑤
// setup), the hello exchange of the second labeling round, and the
// tip-removal waves; co-locating each junction converts that traffic from
// inter- to intra-machine.
//
// The table is (re)derived in RebuildOp. The derivation is deterministic,
// so a resumed process rebuilds the identical table and checkpointed
// partitions restore onto the same workers.
type AffinityPartitioner struct {
	*pregel.TablePartitioner
}

// NewAffinityPartitioner returns an affinity partitioner with an empty
// table (pure hash placement until Place is called).
func NewAffinityPartitioner() *AffinityPartitioner {
	return &AffinityPartitioner{pregel.NewTablePartitioner("affinity", pregel.HashPartitioner{})}
}

// Place derives the contig placement table from the merged contig set for
// the given worker count, replacing any previous table. It must be called
// between runs, never while one executes.
func (p *AffinityPartitioner) Place(contigs [][]ContigRec, workers int) {
	if workers <= 0 {
		p.Reset()
		return
	}
	// Junction neighborhoods: every ambiguous end k-mer together with the
	// contigs bordering on it. Contig iteration order is deterministic
	// (reducer order, each shard sorted by merge label), so the
	// first-appearance k-mer order — and with it the whole table — is too.
	border := map[pregel.VertexID][]pregel.VertexID{}
	var junctions []pregel.VertexID
	for _, shard := range contigs {
		for _, c := range shard {
			for _, a := range c.Node.Adj {
				if a.Nbr == dbg.NullID {
					continue
				}
				k := dbg.UnflipID(a.Nbr)
				if _, seen := border[k]; !seen {
					junctions = append(junctions, k)
				}
				border[k] = append(border[k], c.ID)
			}
		}
	}
	load := make([]int, workers)
	table := make(map[pregel.VertexID]int, len(border))
	for _, k := range junctions {
		// The least-loaded worker (lowest index on ties) hosts the whole
		// neighborhood. A contig bridging two junctions stays where its
		// first junction put it — one localized end is still one more
		// than scatter placement guarantees.
		best := 0
		for w := 1; w < workers; w++ {
			if load[w] < load[best] {
				best = w
			}
		}
		table[k] = best
		load[best]++
		for _, cid := range border[k] {
			if _, done := table[cid]; !done {
				table[cid] = best
				load[best]++
			}
		}
	}
	// Contigs with two dead ends have no junction and keep base placement.
	p.Install(table, workers)
}

// PartitionOp sets the plan's vertex-placement strategy from its plan
// position onward: graphs built by later ops (build, rebuild, scaffold)
// adopt it, while graphs already live keep the placement they were
// constructed with (follow with a stage seam to re-shard an existing
// graph). In specs it appears as
// partition:scheme=hash|range|minimizer|affinity (with an optional :k=N
// sizing the k-mer-aware schemes).
type PartitionOp struct {
	// Scheme is a MakePartitioner name.
	Scheme string
	// K sizes the range partitioner's ID space (the run's k-mer length).
	K int
}

// Info implements workflow.Op.
func (o PartitionOp) Info() workflow.Info {
	return workflow.Info{Name: "partition"}
}

// Run implements workflow.Op.
func (o PartitionOp) Run(env *workflow.Env, st *State) error {
	p, err := MakePartitioner(o.Scheme, o.K)
	if err != nil {
		return err
	}
	if env.Repartition != nil {
		// Adaptive plans keep a dynamic layer over whatever base the op
		// selects; the routing table starts empty because the old table was
		// learned against the replaced base.
		env.Partitioner = pregel.AsDynamic(p)
	} else {
		env.Partitioner = p
	}
	return nil
}

// RepartitionOp turns online adaptive repartitioning on (or off) from its
// plan position onward: later ops run with env.Repartition set, their
// graphs place through one shared pregel.DynamicPartitioner, and the
// routing table learned by one job seeds the next. Graphs already live
// keep the placement they were built with, exactly like PartitionOp. In
// specs it appears as repartition[:every=4][:window=N][:maxmove=N]
// (every=0 disables for the rest of the plan).
type RepartitionOp struct {
	// Every is the migration decision cadence in supersteps (0 disables).
	Every int
	// Window is the trailing traffic-observation window (0 = Every).
	Window int
	// MaxMoves caps vertices relocated per decision (0 = engine default).
	MaxMoves int
}

// Info implements workflow.Op. Like PartitionOp it needs no artifacts: it
// may open a plan or flip the policy mid-composition.
func (o RepartitionOp) Info() workflow.Info {
	return workflow.Info{Name: "repartition"}
}

// Run implements workflow.Op.
func (o RepartitionOp) Run(env *workflow.Env, st *State) error {
	if o.Every <= 0 {
		env.Repartition = nil
		env.Partitioner = pregel.BasePartitioner(env.Partitioner)
		return nil
	}
	env.Repartition = &pregel.RepartitionPolicy{Every: o.Every, Window: o.Window, MaxMoves: o.MaxMoves}
	env.Partitioner = pregel.AsDynamic(env.Partitioner)
	return nil
}
