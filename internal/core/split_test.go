package core

import (
	"testing"

	"ppaassembler/internal/dbg"
	"ppaassembler/internal/dna"
	"ppaassembler/internal/pregel"
)

// splitGraph builds a hub with a dominant out-edge (cov 20) and a weak
// parallel out-edge (cov given), plus one in-edge.
func splitGraph(weakCov uint32) (*Graph, pregel.VertexID, pregel.VertexID) {
	g := pregel.NewGraph[VData, Msg](pregel.Config{Workers: 2})
	hub := pregel.VertexID(dna.ParseKmer("ACGTA"))
	strong := pregel.VertexID(dna.ParseKmer("CCCGG"))
	weak := pregel.VertexID(dna.ParseKmer("TTTAA"))
	in := pregel.VertexID(dna.ParseKmer("GGGTT"))
	g.AddVertex(hub, VData{Node: dbg.Node{
		Kind: dbg.KindKmer, Seq: dna.ParseSeq("ACGTA"),
		Adj: []dbg.Adj{
			{Nbr: in, In: true, Cov: 20, NbrLen: 5},
			{Nbr: strong, In: false, Cov: 20, NbrLen: 5},
			{Nbr: weak, In: false, Cov: weakCov, NbrLen: 5},
		},
	}})
	for _, v := range []struct {
		id pregel.VertexID
		in bool
	}{{strong, true}, {weak, true}, {in, false}} {
		g.AddVertex(v.id, VData{Node: dbg.Node{
			Kind: dbg.KindKmer, Seq: dna.ParseSeq("AAAAA"),
			Adj: []dbg.Adj{{Nbr: hub, In: v.in, Cov: 20, NbrLen: 5}},
		}})
	}
	return g, hub, weak
}

func TestSplitBranchesCutsDominatedEdge(t *testing.T) {
	g, hub, weak := splitGraph(2) // 2*5 <= 20: dominated
	res, err := SplitBranches(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.EdgesCut != 1 {
		t.Fatalf("edges cut = %d, want 1", res.EdgesCut)
	}
	h, _ := g.Value(hub)
	if h.Node.Type() != dbg.TypeOneOne {
		t.Errorf("hub type = %v after split, want <1-1>", h.Node.Type())
	}
	w, _ := g.Value(weak)
	if w.Node.RealDegree() != 0 {
		t.Error("weak neighbor still holds the reciprocal edge")
	}
}

func TestSplitBranchesKeepsBalancedEdges(t *testing.T) {
	g, hub, _ := splitGraph(10) // 10*5 > 20: not dominated
	res, err := SplitBranches(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.EdgesCut != 0 {
		t.Errorf("edges cut = %d, want 0", res.EdgesCut)
	}
	h, _ := g.Value(hub)
	if h.Node.RealDegree() != 3 {
		t.Errorf("hub degree = %d, want 3", h.Node.RealDegree())
	}
}

func TestSplitBranchesRejectsBadRatio(t *testing.T) {
	g, _, _ := splitGraph(2)
	if _, err := SplitBranches(g, 1); err == nil {
		t.Error("ratio 1 accepted")
	}
}

func TestFilterBubblesMinArmCov(t *testing.T) {
	a, b := pregel.VertexID(100), pregel.VertexID(200)
	// The weak arm is NOT similar to the strong one (edit distance well
	// above threshold), so only the coverage rule can prune it.
	strong := mkContig(dbg.ContigID(0, 1), "ACGTTGCAAGCT", 20, a, b)
	weak := mkContig(dbg.ContigID(0, 2), "TGCACCGGTATA", 1, a, b)
	res, err := FilterBubbles(pregel.NewSimClock(pregel.DefaultCost()), 1,
		[][]ContigRec{{strong, weak}}, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pruned != 1 {
		t.Fatalf("pruned = %d, want 1 (coverage rule)", res.Pruned)
	}
	kept := pregel.Flatten(res.Contigs)
	if len(kept) != 1 || kept[0].ID != strong.ID {
		t.Errorf("wrong survivor")
	}
	// Without the coverage rule the weak arm survives.
	res2, err := FilterBubbles(pregel.NewSimClock(pregel.DefaultCost()), 1,
		[][]ContigRec{{strong, weak}}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Pruned != 0 {
		t.Errorf("pruned = %d without coverage rule, want 0", res2.Pruned)
	}
}

func TestAssembleWithExtensions(t *testing.T) {
	// The optional operations must compose with the stock pipeline and
	// keep (or improve) the result on erroneous reads.
	r := seededRand(61)
	genome := randomCleanGenome(r, 400, 11)
	var reads []string
	for i := 0; i < 3; i++ {
		reads = append(reads, readsFromGenome(genome, 80, 40)...)
	}
	bad := []byte(genome[100:180])
	bad[40] ^= 1 // one substitution (flips the base's low bit)
	reads = append(reads, string(bad))

	opt := testOpts(3, 11, LabelerLR)
	opt.BranchSplitRatio = 4
	opt.BubbleMinCov = 2
	res := assemble(t, reads, opt)
	if len(res.Contigs) != 1 {
		t.Fatalf("contigs = %d, want 1", len(res.Contigs))
	}
	if !seqOrRC(res.Contigs[0].Node.Seq, genome) {
		t.Error("extended pipeline failed to reconstruct the genome")
	}
}
