package core

import (
	"math/rand"
	"strings"
	"testing"

	"ppaassembler/internal/dbg"
	"ppaassembler/internal/dna"
	"ppaassembler/internal/pregel"
)

func seededRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// buildSegGraph builds a labeled-ready segment graph directly from reads.
func buildSegGraph(t *testing.T, reads []string, k, workers int) *Graph {
	t.Helper()
	cfg := pregel.Config{Workers: workers}
	clock := pregel.NewSimClock(pregel.DefaultCost())
	b, err := dbg.BuildDBG(clock, cfg, pregel.ShardSlice(reads, workers), k, 0)
	if err != nil {
		t.Fatal(err)
	}
	return NewSegmentGraph(b, cfg, k)
}

func TestLabelContigsMarksAmbiguity(t *testing.T) {
	// Two reads sharing a middle segment create a branch point: the DBG
	// has ambiguous vertices, everything else is labeled.
	reads := []string{
		"AACCTTGCACGAGT",
		"TGGATTGCACGCCA",
	}
	g := buildSegGraph(t, reads, 5, 2)
	ls, err := LabelContigs(g, LabelerLR)
	if err != nil {
		t.Fatal(err)
	}
	ambig, labeled := 0, 0
	g.ForEach(func(id pregel.VertexID, v *VData) {
		if v.Ambig {
			ambig++
			if v.Labeled {
				t.Error("ambiguous vertex carries a label")
			}
		}
		if v.Labeled {
			labeled++
		}
	})
	if ambig == 0 {
		t.Error("no ambiguous vertices on a branching input")
	}
	if labeled == 0 {
		t.Error("no labeled vertices")
	}
	if ambig+labeled != g.VertexCount() {
		t.Errorf("ambig %d + labeled %d != vertices %d", ambig, labeled, g.VertexCount())
	}
	if ls.Supersteps == 0 || ls.Messages == 0 {
		t.Error("empty labeling stats")
	}
}

func TestLabelingSetsNbrAmbig(t *testing.T) {
	reads := []string{
		"AACCTTGCACGAGT",
		"TGGATTGCACGCCA",
	}
	g := buildSegGraph(t, reads, 5, 2)
	if _, err := LabelContigs(g, LabelerLR); err != nil {
		t.Fatal(err)
	}
	// Every vertex's NbrAmbig must agree with the actual type of the
	// pointed-at neighbor.
	ambigSet := map[pregel.VertexID]bool{}
	g.ForEach(func(id pregel.VertexID, v *VData) {
		if v.Ambig {
			ambigSet[id] = true
		}
	})
	g.ForEach(func(id pregel.VertexID, v *VData) {
		if len(v.NbrAmbig) != len(v.Node.Adj) {
			t.Fatalf("vertex %x: NbrAmbig length %d != adj %d", id, len(v.NbrAmbig), len(v.Node.Adj))
		}
		for i, a := range v.Node.Adj {
			if a.Nbr == dbg.NullID {
				continue
			}
			if v.NbrAmbig[i] != ambigSet[a.Nbr] {
				t.Errorf("vertex %x adj %d: NbrAmbig=%v but neighbor ambig=%v",
					id, i, v.NbrAmbig[i], ambigSet[a.Nbr])
			}
		}
	})
}

func TestMergeContigsGroupCount(t *testing.T) {
	// A single unambiguous path = one group = one contig. The read is
	// generated with all-distinct canonical 9-mers so no vertex is
	// ambiguous.
	r := seededRand(51)
	reads := []string{randomCleanGenome(r, 60, 9)}
	g := buildSegGraph(t, reads, 9, 3)
	if _, err := LabelContigs(g, LabelerLR); err != nil {
		t.Fatal(err)
	}
	m, err := MergeContigs(g, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	flat := pregel.Flatten(m.Contigs)
	if m.Groups != 1 || len(flat) != 1 {
		t.Fatalf("groups=%d contigs=%d, want 1/1", m.Groups, len(flat))
	}
	c := flat[0]
	if got := c.Node.Seq.String(); got != reads[0] &&
		got != dna.ParseSeq(reads[0]).ReverseComplement().String() {
		t.Errorf("contig %q does not match the read", got)
	}
	if !dbg.IsContigID(c.ID) {
		t.Errorf("contig ID %x not in contig ID space", c.ID)
	}
	// Both ends of an isolated read-path are dead.
	if c.Node.Adj[0].Nbr != dbg.NullID || c.Node.Adj[1].Nbr != dbg.NullID {
		t.Errorf("isolated contig has non-NULL ends: %+v", c.Node.Adj)
	}
}

func TestMergeContigsDropsShortDanglingGroups(t *testing.T) {
	r := seededRand(52)
	reads := []string{randomCleanGenome(r, 60, 9)}
	g := buildSegGraph(t, reads, 9, 2)
	if _, err := LabelContigs(g, LabelerLR); err != nil {
		t.Fatal(err)
	}
	m, err := MergeContigs(g, 9, 100) // tip threshold above the contig length
	if err != nil {
		t.Fatal(err)
	}
	if m.DroppedTips != 1 || len(pregel.Flatten(m.Contigs)) != 0 {
		t.Errorf("dropped=%d kept=%d, want 1/0", m.DroppedTips, len(pregel.Flatten(m.Contigs)))
	}
}

func TestMergeContigCoverageIsMinEdge(t *testing.T) {
	// Overlay coverage: the genome core appears 3x, its prefix only once,
	// so the contig's coverage equals the minimum edge coverage (1).
	r := seededRand(53)
	genome := randomCleanGenome(r, 60, 9)
	core := genome[15:]
	reads := []string{core, core, core, genome}
	g := buildSegGraph(t, reads, 9, 2)
	if _, err := LabelContigs(g, LabelerLR); err != nil {
		t.Fatal(err)
	}
	m, err := MergeContigs(g, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	flat := pregel.Flatten(m.Contigs)
	if len(flat) != 1 {
		t.Fatalf("contigs = %d, want 1", len(flat))
	}
	if flat[0].Node.Cov != 1 {
		t.Errorf("contig coverage = %d, want 1 (minimum edge)", flat[0].Node.Cov)
	}
}

// mkContig builds a contig record between two (possibly NULL) end vertices.
func mkContig(id pregel.VertexID, seq string, cov uint32, nb1, nb2 pregel.VertexID) ContigRec {
	return ContigRec{
		ID: id,
		Node: dbg.Node{
			Kind: dbg.KindContig,
			Seq:  dna.ParseSeq(seq),
			Cov:  cov,
			Adj: []dbg.Adj{
				{Nbr: nb1, In: true, PSelf: dbg.L, PNbr: dbg.L},
				{Nbr: nb2, In: false, PSelf: dbg.L, PNbr: dbg.L},
			},
		},
	}
}

func TestFilterBubblesPrunesLowCoverageArm(t *testing.T) {
	a, b := pregel.VertexID(100), pregel.VertexID(200)
	hi := mkContig(dbg.ContigID(0, 1), "ACGTTGCAAGCT", 20, a, b)
	lo := mkContig(dbg.ContigID(0, 2), "ACGTTACAAGCT", 2, a, b) // 1 substitution
	other := mkContig(dbg.ContigID(0, 3), "TTTTTGGGGGCCCCC", 9, a, dbg.NullID)
	res, err := FilterBubbles(pregel.NewSimClock(pregel.DefaultCost()), 2,
		[][]ContigRec{{hi, lo, other}}, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pruned != 1 {
		t.Fatalf("pruned = %d, want 1", res.Pruned)
	}
	kept := map[pregel.VertexID]bool{}
	for _, c := range pregel.Flatten(res.Contigs) {
		kept[c.ID] = true
	}
	if !kept[hi.ID] || kept[lo.ID] || !kept[other.ID] {
		t.Errorf("kept set wrong: %v", kept)
	}
}

func TestFilterBubblesKeepsDissimilarArms(t *testing.T) {
	a, b := pregel.VertexID(100), pregel.VertexID(200)
	c1 := mkContig(dbg.ContigID(0, 1), "ACGTTGCAAGCT", 20, a, b)
	c2 := mkContig(dbg.ContigID(0, 2), "TGCACCGGTATA", 2, a, b) // unrelated
	res, err := FilterBubbles(pregel.NewSimClock(pregel.DefaultCost()), 2,
		[][]ContigRec{{c1, c2}}, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pruned != 0 {
		t.Errorf("pruned dissimilar arms: %d", res.Pruned)
	}
}

func TestFilterBubblesOrientsArms(t *testing.T) {
	// Arm 2 is stored in the opposite direction (its in-end is the larger
	// vertex); orientation by the sorted key must reverse-complement it
	// before comparison.
	a, b := pregel.VertexID(100), pregel.VertexID(200)
	fwd := "ACGTTGCAAGCT"
	rc := dna.ParseSeq(fwd).ReverseComplement().String()
	c1 := mkContig(dbg.ContigID(0, 1), fwd, 20, a, b)
	c2 := mkContig(dbg.ContigID(0, 2), rc, 2, b, a)
	res, err := FilterBubbles(pregel.NewSimClock(pregel.DefaultCost()), 2,
		[][]ContigRec{{c1, c2}}, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pruned != 1 {
		t.Errorf("reverse-oriented identical arm not pruned (pruned=%d)", res.Pruned)
	}
}

func TestFilterBubblesThreeArms(t *testing.T) {
	a, b := pregel.VertexID(100), pregel.VertexID(200)
	arms := []ContigRec{
		mkContig(dbg.ContigID(0, 1), "ACGTTGCAAGCT", 20, a, b),
		mkContig(dbg.ContigID(0, 2), "ACGTTACAAGCT", 5, a, b),
		mkContig(dbg.ContigID(0, 3), "ACGTTCCAAGCT", 2, a, b),
	}
	res, err := FilterBubbles(pregel.NewSimClock(pregel.DefaultCost()), 1,
		[][]ContigRec{arms}, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pruned != 2 {
		t.Errorf("pruned = %d, want 2 (only the highest-coverage arm survives)", res.Pruned)
	}
	kept := pregel.Flatten(res.Contigs)
	if len(kept) != 1 || kept[0].Node.Cov != 20 {
		t.Errorf("wrong survivor: %+v", kept)
	}
}

func TestLinkContigsRebuildsAdjacency(t *testing.T) {
	// Graph: one ambiguous k-mer + one contig whose in-end points at it.
	cfg := pregel.Config{Workers: 2}
	g := pregel.NewGraph[VData, Msg](cfg)
	kmerID := pregel.VertexID(dna.ParseKmer("ACGTA"))
	ctg := mkContig(dbg.ContigID(0, 1), "CGTATTTGGG", 7, kmerID, dbg.NullID)
	ctg.Node.Adj[0].PNbr = dbg.H // polarity on the k-mer's side
	ctg.Node.Adj[0].Cov = 7
	g.AddVertex(kmerID, VData{Ambig: true, Node: dbg.Node{
		Kind: dbg.KindKmer, Seq: dna.ParseSeq("ACGTA"),
	}})
	g.AddVertex(ctg.ID, VData{Node: ctg.Node})
	if _, err := LinkContigs(g); err != nil {
		t.Fatal(err)
	}
	v, _ := g.Value(kmerID)
	if len(v.Node.Adj) != 1 {
		t.Fatalf("k-mer adjacency = %d items, want 1", len(v.Node.Adj))
	}
	item := v.Node.Adj[0]
	if item.Nbr != ctg.ID || item.In != false || item.PSelf != dbg.H || item.PNbr != dbg.L {
		t.Errorf("rebuilt item wrong: %+v", item)
	}
	if item.Cov != 7 || item.NbrLen != 10 {
		t.Errorf("item cov/len = %d/%d", item.Cov, item.NbrLen)
	}
}

// addLongArm attaches a 200 bp contig between the hub and a dead end, so
// the hub's non-tip branches are well above any tip threshold.
func addLongArm(g *Graph, id pregel.VertexID, hub pregel.VertexID, in bool) dbg.Adj {
	seq := strings.Repeat("ACGT", 50)
	node := dbg.Node{
		Kind: dbg.KindContig,
		Seq:  dna.ParseSeq(seq),
		Cov:  9,
		Adj: []dbg.Adj{
			{Nbr: hub, In: true, PSelf: dbg.L, PNbr: dbg.L, Cov: 9, NbrLen: 5},
			{Nbr: dbg.NullID, In: false, PSelf: dbg.L},
		},
	}
	g.AddVertex(id, VData{Node: node})
	return dbg.Adj{Nbr: id, In: in, PSelf: dbg.L, PNbr: dbg.L, Cov: 9, NbrLen: int32(len(seq))}
}

func TestRemoveTipsDeletesShortDanglingChain(t *testing.T) {
	// Ambiguous hub with three neighbors: two long contig arms and one
	// short dangling contig (a tip). After RemoveTips the tip is gone,
	// the hub lost that edge, and everything else survives.
	cfg := pregel.Config{Workers: 2}
	g := pregel.NewGraph[VData, Msg](cfg)
	hub := pregel.VertexID(dna.ParseKmer("ACGTA"))
	arm1 := addLongArm(g, dbg.ContigID(0, 11), hub, true)
	arm2 := addLongArm(g, dbg.ContigID(0, 12), hub, false)
	tip := mkContig(dbg.ContigID(0, 1), "ACGTATT", 1, hub, dbg.NullID) // 7 bp dangling
	g.AddVertex(hub, VData{Node: dbg.Node{
		Kind: dbg.KindKmer, Seq: dna.ParseSeq("ACGTA"),
		Adj: []dbg.Adj{
			arm1,
			arm2,
			{Nbr: tip.ID, In: false, PSelf: dbg.L, PNbr: dbg.L, Cov: 1, NbrLen: 7},
		},
	}})
	tipNode := tip.Node
	tipNode.Adj[0] = dbg.Adj{Nbr: hub, In: true, PSelf: dbg.L, PNbr: dbg.L, Cov: 1, NbrLen: 5}
	g.AddVertex(tip.ID, VData{Node: tipNode})

	res, err := RemoveTips(g, 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemovedVertices != 1 {
		t.Fatalf("removed %d vertices, want 1 (the tip)", res.RemovedVertices)
	}
	if _, ok := g.Value(tip.ID); ok {
		t.Error("tip contig still present")
	}
	h, ok := g.Value(hub)
	if !ok {
		t.Fatal("hub deleted")
	}
	for _, a := range h.Node.Adj {
		if a.Nbr == tip.ID {
			t.Error("hub still points at the removed tip")
		}
	}
	if h.Node.Type() != dbg.TypeOneOne {
		t.Errorf("hub type after tip removal = %v, want <1-1>", h.Node.Type())
	}
}

func TestRemoveTipsKeepsLongDanglingChain(t *testing.T) {
	// A hub whose only neighbors are long arms: a REQUEST from a short
	// probe must never delete the long contigs, and a dangling arm longer
	// than the threshold stays.
	cfg := pregel.Config{Workers: 1}
	g := pregel.NewGraph[VData, Msg](cfg)
	hub := pregel.VertexID(dna.ParseKmer("ACGTA"))
	arm1 := addLongArm(g, dbg.ContigID(0, 21), hub, true)
	arm2 := addLongArm(g, dbg.ContigID(0, 22), hub, false)
	shortTip := mkContig(dbg.ContigID(0, 23), "ACGTATT", 1, hub, dbg.NullID)
	g.AddVertex(hub, VData{Node: dbg.Node{
		Kind: dbg.KindKmer, Seq: dna.ParseSeq("ACGTA"),
		Adj: []dbg.Adj{
			arm1,
			arm2,
			{Nbr: shortTip.ID, In: false, PSelf: dbg.L, PNbr: dbg.L, Cov: 1, NbrLen: 7},
		},
	}})
	stNode := shortTip.Node
	stNode.Adj[0] = dbg.Adj{Nbr: hub, In: true, PSelf: dbg.L, PNbr: dbg.L, Cov: 1, NbrLen: 5}
	g.AddVertex(shortTip.ID, VData{Node: stNode})

	if _, err := RemoveTips(g, 5, 20); err != nil {
		t.Fatal(err)
	}
	for _, id := range []pregel.VertexID{dbg.ContigID(0, 21), dbg.ContigID(0, 22)} {
		if _, ok := g.Value(id); !ok {
			t.Errorf("long arm %x wrongly removed", id)
		}
	}
	if _, ok := g.Value(shortTip.ID); ok {
		t.Error("short tip survived")
	}
	if _, ok := g.Value(hub); !ok {
		t.Error("hub deleted despite long arms")
	}
}

func TestRemoveTipsIsolatedShortSegment(t *testing.T) {
	cfg := pregel.Config{Workers: 1}
	g := pregel.NewGraph[VData, Msg](cfg)
	iso := mkContig(dbg.ContigID(0, 1), "ACGTACGT", 1, dbg.NullID, dbg.NullID)
	g.AddVertex(iso.ID, VData{Node: iso.Node})
	res, err := RemoveTips(g, 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemovedVertices != 1 || g.VertexCount() != 0 {
		t.Errorf("isolated short segment not removed: %+v", res)
	}
	// A long isolated segment survives.
	g2 := pregel.NewGraph[VData, Msg](cfg)
	iso2 := mkContig(dbg.ContigID(0, 2), strings.Repeat("ACGT", 20), 5, dbg.NullID, dbg.NullID)
	g2.AddVertex(iso2.ID, VData{Node: iso2.Node})
	if _, err := RemoveTips(g2, 5, 20); err != nil {
		t.Fatal(err)
	}
	if g2.VertexCount() != 1 {
		t.Error("long isolated segment removed")
	}
}
