package core

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"ppaassembler/internal/dna"
	"ppaassembler/internal/pregel"
)

// randomCleanGenome returns a random genome of length n whose canonical
// k-mers are all distinct (so the DBG is a simple path and assembly must
// reconstruct it exactly).
func randomCleanGenome(r *rand.Rand, n, k int) string {
	for tries := 0; tries < 200; tries++ {
		b := make([]byte, n)
		for i := range b {
			b[i] = "ACGT"[r.Intn(4)]
		}
		g := string(b)
		if allKmersDistinct(g, k) {
			return g
		}
	}
	panic("could not generate a repeat-free genome")
}

func allKmersDistinct(g string, k int) bool {
	seen := map[dna.Kmer]bool{}
	s := dna.ParseSeq(g)
	for i := 0; i+k <= s.Len(); i++ {
		c, _ := dna.KmerFromSeq(s, i, k).Canonical(k)
		if seen[c] {
			return false
		}
		seen[c] = true
	}
	return true
}

// readsFromGenome slices overlapping windows (error-free "reads").
func readsFromGenome(g string, readLen, step int) []string {
	var reads []string
	for i := 0; ; i += step {
		if i+readLen >= len(g) {
			reads = append(reads, g[len(g)-readLen:])
			break
		}
		reads = append(reads, g[i:i+readLen])
	}
	return reads
}

func assemble(t *testing.T, reads []string, opt Options) *Result {
	t.Helper()
	res, err := Assemble(pregel.ShardSlice(reads, opt.Workers), opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func seqOrRC(s dna.Seq, want string) bool {
	return s.String() == want || s.ReverseComplement().String() == want
}

func testOpts(workers int, k int, labeler Labeler) Options {
	o := DefaultOptions(workers)
	o.K = k
	o.Theta = 0
	o.Labeler = labeler
	return o
}

func TestAssembleSinglePathLR(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	genome := randomCleanGenome(r, 400, 11)
	reads := readsFromGenome(genome, 60, 25)
	res := assemble(t, reads, testOpts(3, 11, LabelerLR))
	if len(res.Contigs) != 1 {
		t.Fatalf("contigs = %d, want 1", len(res.Contigs))
	}
	if !seqOrRC(res.Contigs[0].Node.Seq, genome) {
		t.Errorf("contig does not reconstruct the genome")
	}
	if res.KmerLabel == nil || res.KmerLabel.Supersteps == 0 {
		t.Error("missing k-mer labeling stats")
	}
}

func TestAssembleSinglePathSV(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	genome := randomCleanGenome(r, 350, 11)
	reads := readsFromGenome(genome, 60, 25)
	res := assemble(t, reads, testOpts(2, 11, LabelerSV))
	if len(res.Contigs) != 1 {
		t.Fatalf("contigs = %d, want 1", len(res.Contigs))
	}
	if !seqOrRC(res.Contigs[0].Node.Seq, genome) {
		t.Errorf("contig does not reconstruct the genome")
	}
}

func TestAssembleRoundsOne(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	genome := randomCleanGenome(r, 300, 11)
	reads := readsFromGenome(genome, 50, 20)
	opt := testOpts(2, 11, LabelerLR)
	opt.Rounds = 1
	res := assemble(t, reads, opt)
	if len(res.Contigs) != 1 || !seqOrRC(res.Contigs[0].Node.Seq, genome) {
		t.Fatalf("round-1 assembly failed: %d contigs", len(res.Contigs))
	}
	if res.ContigLabel != nil {
		t.Error("round-1 run should have no contig-labeling stats")
	}
}

func TestAssembleReverseStrandReads(t *testing.T) {
	// Half the reads come from strand 2 (reverse complement); canonical
	// k-mers must stitch them into the same single contig (Figure 6).
	r := rand.New(rand.NewSource(10))
	genome := randomCleanGenome(r, 400, 11)
	reads := readsFromGenome(genome, 60, 25)
	for i := range reads {
		if i%2 == 1 {
			reads[i] = dna.ParseSeq(reads[i]).ReverseComplement().String()
		}
	}
	res := assemble(t, reads, testOpts(3, 11, LabelerLR))
	if len(res.Contigs) != 1 || !seqOrRC(res.Contigs[0].Node.Seq, genome) {
		t.Fatalf("mixed-strand assembly failed: %d contigs", len(res.Contigs))
	}
}

func TestAssembleCycleFallback(t *testing.T) {
	// A circular genome yields a DBG cycle of <1-1> vertices: LR must
	// detect the stall and the S-V fallback must still label one contig.
	r := rand.New(rand.NewSource(11))
	genome := randomCleanGenome(r, 200, 11)
	circ := genome + genome[:60] // reads wrap around the origin
	reads := readsFromGenome(circ, 40, 10)
	opt := testOpts(2, 11, LabelerLR)
	opt.TipLen = 0 // keep everything
	res := assemble(t, reads, opt)
	if len(res.Contigs) != 1 {
		t.Fatalf("contigs = %d, want 1 (cycle)", len(res.Contigs))
	}
	if res.KmerLabel.CycleVertices == 0 {
		t.Error("expected LR to fall back to S-V for the cycle")
	}
	// A cycle over L distinct k-mer positions stitches to L + k - 1 bases.
	want := len(genome) + 11 - 1
	if got := res.Contigs[0].Len(); got != want {
		t.Errorf("cycle contig length = %d, want %d", got, want)
	}
	// The contig is some rotation R of the circular genome plus the k-1
	// wrap bases: s = R + R[:k-1]. Extending it by s[k-1:] yields R+R+...,
	// which contains every rotation, in particular the genome itself.
	s := res.Contigs[0].Node.Seq.String()
	rc := res.Contigs[0].Node.Seq.ReverseComplement().String()
	if !strings.Contains(s+s[10:], genome) && !strings.Contains(rc+rc[10:], genome) {
		t.Error("cycle contig does not cover the circular genome")
	}
}

func TestAssembleTipRemoved(t *testing.T) {
	// One read ends with a sequencing error: its final k-mers dangle off
	// the true path as a short tip. With theta=0 the tip survives DBG
	// construction and must be removed by operation ⑤, after which the
	// second merge round reconstructs the full genome.
	r := rand.New(rand.NewSource(12))
	k := 11
	genome := randomCleanGenome(r, 400, k)
	reads := readsFromGenome(genome, 60, 25)
	// Corrupt the last base of a middle read: creates a dead-end branch.
	bad := []byte(reads[4])
	orig := bad[len(bad)-1]
	for _, c := range []byte("ACGT") {
		if c != orig {
			bad[len(bad)-1] = c
			break
		}
	}
	reads = append(reads, string(bad))
	opt := testOpts(3, k, LabelerLR)
	res := assemble(t, reads, opt)
	if len(res.Contigs) != 1 {
		t.Fatalf("contigs = %d, want 1 after tip removal", len(res.Contigs))
	}
	if !seqOrRC(res.Contigs[0].Node.Seq, genome) {
		t.Error("contig does not reconstruct the genome after tip removal")
	}
	if res.TipVerticesRemoved == 0 && res.TipsDroppedAtMerge[0] == 0 {
		t.Error("expected some tip to be removed somewhere")
	}
	// Without the second round, the assembly must stay fragmented.
	opt1 := opt
	opt1.Rounds = 1
	res1 := assemble(t, reads, opt1)
	if len(res1.Contigs) == 1 && seqOrRC(res1.Contigs[0].Node.Seq, genome) {
		t.Error("round-1 assembly unexpectedly already perfect; tip test is vacuous")
	}
}

func TestAssembleBubbleRemoved(t *testing.T) {
	// A substitution in the middle of one low-coverage read creates a
	// bubble: two parallel arms between two ambiguous vertices. Bubble
	// filtering must prune the low-coverage arm; the second round then
	// reconstructs the genome.
	r := rand.New(rand.NewSource(13))
	k := 11
	genome := randomCleanGenome(r, 400, k)
	var reads []string
	for rep := 0; rep < 3; rep++ { // coverage 3 on the true sequence
		reads = append(reads, readsFromGenome(genome, 80, 40)...)
	}
	bad := []byte(genome[100:180])
	mid := len(bad) / 2
	orig := bad[mid]
	for _, c := range []byte("ACGT") {
		if c != orig {
			bad[mid] = c
			break
		}
	}
	reads = append(reads, string(bad))
	opt := testOpts(3, k, LabelerLR)
	res := assemble(t, reads, opt)
	if res.BubblesPruned == 0 {
		t.Error("expected at least one pruned bubble arm")
	}
	if len(res.Contigs) != 1 {
		t.Fatalf("contigs = %d, want 1 after bubble filtering", len(res.Contigs))
	}
	if !seqOrRC(res.Contigs[0].Node.Seq, genome) {
		t.Error("contig does not reconstruct the genome after bubble filtering")
	}
}

func TestAssembleRepeatCreatesAmbiguity(t *testing.T) {
	// A genome with an exact repeat longer than k cannot be resolved: the
	// assembler must produce multiple contigs, each a correct substring.
	r := rand.New(rand.NewSource(14))
	k := 11
	a := randomCleanGenome(r, 150, k)
	b := randomCleanGenome(r, 40, k)
	c := randomCleanGenome(r, 150, k)
	d := randomCleanGenome(r, 150, k)
	genome := a + b + c + b + d // repeat b appears twice
	reads := readsFromGenome(genome, 60, 20)
	res := assemble(t, reads, testOpts(3, k, LabelerLR))
	if len(res.Contigs) < 2 {
		t.Fatalf("contigs = %d, want >= 2 (unresolvable repeat)", len(res.Contigs))
	}
	double := genome + "|" + dna.ParseSeq(genome).ReverseComplement().String()
	for _, ctg := range res.Contigs {
		if !strings.Contains(double, ctg.Node.Seq.String()) {
			t.Errorf("contig %q is not a substring of the genome (misassembly)", ctg.Node.Seq.String())
		}
	}
}

func contigSeqSet(res *Result) []string {
	var out []string
	for _, c := range res.Contigs {
		s := c.Node.Seq.String()
		rc := c.Node.Seq.ReverseComplement().String()
		if rc < s {
			s = rc
		}
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func TestAssembleWorkerCountInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(15))
	k := 11
	genome := randomCleanGenome(r, 300, k)
	reads := readsFromGenome(genome, 50, 20)
	// Inject one error to exercise correction paths too.
	reads = append(reads, genome[40:90]+"A")
	base := assemble(t, reads, testOpts(1, k, LabelerLR))
	want := contigSeqSet(base)
	for _, w := range []int{2, 4, 7} {
		got := contigSeqSet(assemble(t, reads, testOpts(w, k, LabelerLR)))
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d contigs vs %d", w, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: contig %d differs", w, i)
			}
		}
	}
}

func TestLabelersAgreeOnGrouping(t *testing.T) {
	// LR and S-V must produce identical contig sets (labels differ, the
	// grouping must not).
	r := rand.New(rand.NewSource(16))
	k := 11
	a := randomCleanGenome(r, 120, k)
	b := randomCleanGenome(r, 40, k)
	c := randomCleanGenome(r, 120, k)
	genome := a + b + c + b + a[:60] // repeats => several contigs
	reads := readsFromGenome(genome, 50, 15)
	lr := contigSeqSet(assemble(t, reads, testOpts(3, k, LabelerLR)))
	sv := contigSeqSet(assemble(t, reads, testOpts(3, k, LabelerSV)))
	if len(lr) != len(sv) {
		t.Fatalf("LR %d contigs, SV %d", len(lr), len(sv))
	}
	for i := range lr {
		if lr[i] != sv[i] {
			t.Errorf("contig %d differs between labelers", i)
		}
	}
}

func TestLRUsesFewerSuperstepsThanSV(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	k := 11
	genome := randomCleanGenome(r, 800, k)
	reads := readsFromGenome(genome, 60, 20)
	lr := assemble(t, reads, testOpts(2, k, LabelerLR))
	sv := assemble(t, reads, testOpts(2, k, LabelerSV))
	if lr.KmerLabel.Supersteps >= sv.KmerLabel.Supersteps {
		t.Errorf("LR supersteps %d not fewer than SV %d",
			lr.KmerLabel.Supersteps, sv.KmerLabel.Supersteps)
	}
	if lr.KmerLabel.Messages >= sv.KmerLabel.Messages {
		t.Errorf("LR messages %d not fewer than SV %d",
			lr.KmerLabel.Messages, sv.KmerLabel.Messages)
	}
}

func TestVertexCollapseCounters(t *testing.T) {
	r := rand.New(rand.NewSource(18))
	k := 11
	genome := randomCleanGenome(r, 400, k)
	reads := readsFromGenome(genome, 60, 20)
	res := assemble(t, reads, testOpts(2, k, LabelerLR))
	if res.KmerVertices == 0 {
		t.Fatal("no k-mer vertices recorded")
	}
	if res.MidVertices >= res.KmerVertices {
		t.Errorf("mid vertices %d not smaller than k-mer vertices %d",
			res.MidVertices, res.KmerVertices)
	}
	if res.FinalContigs > res.MidVertices {
		t.Errorf("final contigs %d exceed mid vertices %d", res.FinalContigs, res.MidVertices)
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := Assemble(nil, Options{Workers: 2, K: 11, Rounds: 5}); err == nil {
		t.Error("Rounds=5 accepted")
	}
	if _, err := Assemble(nil, Options{Workers: -1, K: 11, Rounds: 1}); err == nil {
		t.Error("negative workers accepted")
	}
	if _, err := Assemble(nil, Options{Workers: 2, K: 10, Rounds: 1}); err == nil {
		t.Error("even k accepted")
	}
}
