package core

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sort"
	"testing"

	"ppaassembler/internal/dbg"
	"ppaassembler/internal/fastx"
	"ppaassembler/internal/pregel"
	"ppaassembler/internal/shardio"
	"ppaassembler/internal/workflow"
)

// graphRecords canonicalizes a segment graph as its sorted node records,
// which is worker-layout independent.
func graphRecords(g *Graph) []string {
	var recs []string
	g.ForEach(func(id pregel.VertexID, v *VData) {
		recs = append(recs, dbg.MarshalNodeRecord(id, &v.Node))
	})
	sort.Strings(recs)
	return recs
}

// TestDumpLoadSegmentsAcrossWorkerCounts: a segment store written by W
// workers and re-replicated onto a different worker count must reconstruct
// an equivalent graph — same node records — and assemble the same contig
// sequences.
func TestDumpLoadSegmentsAcrossWorkerCounts(t *testing.T) {
	reads, _ := exampleGenomeReads(t)
	const k = 21
	g := buildSegGraph(t, reads, k, 3)
	want := graphRecords(g)
	if _, err := LabelContigs(g, LabelerLR); err != nil {
		t.Fatal(err)
	}
	m, err := MergeContigs(g, k, 80)
	if err != nil {
		t.Fatal(err)
	}
	wantSeqs := contigSeqs(pregel.Flatten(m.Contigs))

	// Dump from the pre-labeling state (labels are scratch, not staged).
	g = buildSegGraph(t, reads, k, 3)
	store, err := shardio.Open(filepath.Join(t.TempDir(), "seg"))
	if err != nil {
		t.Fatal(err)
	}
	if err := DumpSegments(g, store); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 3, 4, 7} {
		g2, err := LoadSegments(store, pregel.Config{Workers: workers}, nil)
		if err != nil {
			t.Fatal(err)
		}
		got := graphRecords(g2)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: reloaded %d records, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: record %d differs:\n got %s\nwant %s", workers, i, got[i], want[i])
			}
		}
		// The reloaded graph must assemble the same contig sequences
		// (contig IDs legitimately differ with the worker layout).
		if _, err := LabelContigs(g2, LabelerLR); err != nil {
			t.Fatal(err)
		}
		m2, err := MergeContigs(g2, k, 80)
		if err != nil {
			t.Fatal(err)
		}
		gotSeqs := contigSeqs(pregel.Flatten(m2.Contigs))
		if len(gotSeqs) != len(wantSeqs) {
			t.Fatalf("workers=%d: assembled %d contigs, want %d", workers, len(gotSeqs), len(wantSeqs))
		}
		for i := range wantSeqs {
			if gotSeqs[i] != wantSeqs[i] {
				t.Errorf("workers=%d: contig %d sequence differs", workers, i)
			}
		}
	}
}

// contigSeqs returns the canonicalized (sorted) contig sequence strings.
func contigSeqs(contigs []ContigRec) []string {
	seqs := make([]string, len(contigs))
	for i, c := range contigs {
		seqs[i] = c.Node.Seq.String()
	}
	sort.Strings(seqs)
	return seqs
}

// TestDumpLoadContigsAcrossWorkerCounts: contig records survive a store
// round trip bit-for-bit, shard structure included.
func TestDumpLoadContigsAcrossWorkerCounts(t *testing.T) {
	reads, _ := exampleGenomeReads(t)
	const k = 21
	g := buildSegGraph(t, reads, k, 4)
	if _, err := LabelContigs(g, LabelerLR); err != nil {
		t.Fatal(err)
	}
	m, err := MergeContigs(g, k, 80)
	if err != nil {
		t.Fatal(err)
	}
	store, err := shardio.Open(filepath.Join(t.TempDir(), "ctg"))
	if err != nil {
		t.Fatal(err)
	}
	if err := DumpContigs(m.Contigs, store); err != nil {
		t.Fatal(err)
	}
	got, err := LoadContigs(store)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(m.Contigs) {
		t.Fatalf("reloaded %d shards, want %d", len(got), len(m.Contigs))
	}
	for w := range m.Contigs {
		if len(got[w]) != len(m.Contigs[w]) {
			t.Fatalf("shard %d: %d records, want %d", w, len(got[w]), len(m.Contigs[w]))
		}
		for i, c := range m.Contigs[w] {
			g := got[w][i]
			if g.ID != c.ID || !g.Node.Seq.Equal(c.Node.Seq) || g.Node.Cov != c.Node.Cov {
				t.Errorf("shard %d record %d differs after round trip", w, i)
			}
		}
	}
}

// metricsFingerprint summarizes every deterministic counter of a workflow
// state for exact comparison.
func metricsFingerprint(st *State) string {
	m := &st.Metrics
	return fmt.Sprintf("k1=%d/%d kmerV=%d midV=%d drops=%v groups=%v bubbles=%d tips=%d branches=%d",
		m.K1Kept, m.K1Distinct, m.KmerVertices, m.MidVertices,
		m.MergeDroppedTips, m.MergeGroups, m.BubblesPruned, m.TipVerticesRemoved, m.BranchesCut)
}

// stockOps appends the two-round pipeline's ops to p, with staging seams
// inserted after build and after rebuild when staged is set (the two seams
// where only durable segment data is live).
func stockOps(p *workflow.Plan[State], staged bool) *workflow.Plan[State] {
	p.Then(BuildDBGOp{K: 21, Theta: 1})
	if staged {
		p.Then(StageOp{})
	}
	p.Then(LabelOp{Algo: LabelerLR}).
		Then(MergeOp{TipLen: 80}).
		Then(BubblePopOp{EditDist: 5}).
		Then(RebuildOp{})
	if staged {
		p.Then(StageOp{})
	}
	p.Then(LinkContigsOp{}).
		Then(TipTrimOp{MinLen: 80}).
		Then(LabelOp{Algo: LabelerLR}).
		Then(MergeOp{TipLen: 80}).
		Then(EmitFastaOp{})
	return p
}

// TestStagedPlanMatchesInMemoryTwin is the staging contract at the plan
// level: a plan with shardio seams (through anonymous temp stores) must
// produce byte-identical FASTA and identical metrics to its all-in-memory
// twin.
func TestStagedPlanMatchesInMemoryTwin(t *testing.T) {
	reads, _ := exampleGenomeReads(t)
	render := func(staged bool) ([]byte, string) {
		p := stockOps(workflow.NewPlan[State](ArtReads), staged)
		if err := p.Err(); err != nil {
			t.Fatal(err)
		}
		st := &State{Reads: pregel.ShardSlice(reads, 4)}
		if err := p.Run(&workflow.Env{Workers: 4}, st); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := fastx.WriteFasta(&buf, st.Fasta, 70); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), metricsFingerprint(st)
	}
	memFasta, memMetrics := render(false)
	stagedFasta, stagedMetrics := render(true)
	if len(memFasta) == 0 {
		t.Fatal("in-memory plan produced no FASTA")
	}
	if !bytes.Equal(memFasta, stagedFasta) {
		t.Error("staged plan FASTA differs from in-memory twin")
	}
	if memMetrics != stagedMetrics {
		t.Errorf("staged plan metrics differ:\n mem    %s\n staged %s", memMetrics, stagedMetrics)
	}
}

// TestAssemblePlanShape: the canned plans validate and end with the
// artifacts Assemble folds into its Result.
func TestAssemblePlanShape(t *testing.T) {
	opt := DefaultOptions(2)
	p, err := AssemblePlan(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Provides(ArtContigs) || !p.Provides(ArtGraph) {
		t.Error("two-round plan does not end with contigs and graph")
	}
	if got := p.String(); got != "build,label,merge,bubble,rebuild,link,tiptrim,label,merge" {
		t.Errorf("two-round plan = %q", got)
	}
	opt.Rounds = 1
	if p, err = AssemblePlan(opt); err != nil {
		t.Fatal(err)
	}
	if got := p.String(); got != "build,label,merge" {
		t.Errorf("one-round plan = %q", got)
	}
	opt.Rounds = 2
	opt.BranchSplitRatio = 3
	if p, err = AssemblePlan(opt); err != nil {
		t.Fatal(err)
	}
	if got := p.String(); got != "build,label,merge,bubble,rebuild,link,split,tiptrim,label,merge" {
		t.Errorf("split-enabled plan = %q", got)
	}
	// The zero value defaults to two rounds, exactly as Assemble does.
	opt.Rounds = 0
	opt.BranchSplitRatio = 0
	if p, err = AssemblePlan(opt); err != nil {
		t.Fatal(err)
	}
	if got := p.String(); got != "build,label,merge,bubble,rebuild,link,tiptrim,label,merge" {
		t.Errorf("zero-rounds plan = %q (should default to two rounds)", got)
	}
	opt.Rounds = 5
	if _, err = AssemblePlan(opt); err == nil {
		t.Error("Rounds=5 accepted")
	}
}

// TestOpRegistryAliases: the labeling aliases and parameter plumbing of
// the spec registry.
func TestOpRegistryAliases(t *testing.T) {
	reg := OpRegistry(DefaultOpDefaults())
	for spec, want := range map[string]Labeler{
		"listrank":      LabelerLR,
		"svlabel":       LabelerSV,
		"label":         LabelerLR,
		"label:algo=sv": LabelerSV,
	} {
		p, err := workflow.Parse(reg, "build,"+spec+",merge,fasta", ArtReads)
		if err != nil {
			t.Fatalf("spec %q: %v", spec, err)
		}
		op, ok := p.Ops()[1].(LabelOp)
		if !ok {
			t.Fatalf("spec %q: op 1 is %T", spec, p.Ops()[1])
		}
		if op.Algo != want {
			t.Errorf("spec %q: algo %v, want %v", spec, op.Algo, want)
		}
	}
	if _, err := workflow.Parse(reg, "build,label:algo=zz,merge,fasta", ArtReads); err == nil {
		t.Error("bad label algo accepted")
	}
	if _, err := workflow.Parse(reg, "build,label,merge,split:ratio=1,fasta", ArtReads); err == nil {
		t.Error("split ratio 1 accepted")
	}
}
