package core

import (
	"bytes"
	"strings"
	"testing"

	"ppaassembler/internal/pregel"
)

func TestWriteGFAStructure(t *testing.T) {
	r := seededRand(81)
	k := 11
	a := randomCleanGenome(r, 150, k)
	b := randomCleanGenome(r, 40, k)
	c := randomCleanGenome(r, 150, k)
	genome := a + b + c + b + a[:60] // repeats -> ambiguous vertices survive
	reads := readsFromGenome(genome, 60, 20)
	opt := testOpts(3, k, LabelerLR)
	opt.KeepGraph = true
	res := assemble(t, reads, opt)
	if res.FinalGraph == nil {
		t.Fatal("KeepGraph did not retain the graph")
	}
	var buf bytes.Buffer
	if err := WriteGFA(&buf, res.FinalGraph, k); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "H\tVN:Z:1.0" {
		t.Fatalf("header = %q", lines[0])
	}
	segs := map[string]bool{}
	nS, nL := 0, 0
	for _, l := range lines[1:] {
		f := strings.Split(l, "\t")
		switch f[0] {
		case "S":
			if len(f) < 4 || !strings.HasPrefix(f[3], "dp:i:") {
				t.Fatalf("bad S line %q", l)
			}
			for _, ch := range f[2] {
				if !strings.ContainsRune("ACGT", ch) {
					t.Fatalf("bad sequence in %q", l)
				}
			}
			segs[f[1]] = true
			nS++
		case "L":
			if len(f) != 6 {
				t.Fatalf("bad L line %q", l)
			}
			if f[2] != "+" && f[2] != "-" || f[4] != "+" && f[4] != "-" {
				t.Fatalf("bad orientations in %q", l)
			}
			if f[5] != "10M" {
				t.Fatalf("overlap = %q, want 10M", f[5])
			}
			nL++
		default:
			t.Fatalf("unexpected record %q", l)
		}
	}
	if nS != res.FinalGraph.VertexCount() {
		t.Errorf("S lines = %d, vertices = %d", nS, res.FinalGraph.VertexCount())
	}
	if nL == 0 {
		t.Error("no links exported despite ambiguous junctions")
	}
	// Every link endpoint must be a declared segment.
	for _, l := range lines[1:] {
		f := strings.Split(l, "\t")
		if f[0] == "L" && (!segs[f[1]] || !segs[f[3]]) {
			t.Errorf("link references undeclared segment: %q", l)
		}
	}
}

func TestWriteGFAEmptyGraph(t *testing.T) {
	g := pregel.NewGraph[VData, Msg](pregel.Config{Workers: 1})
	var buf bytes.Buffer
	if err := WriteGFA(&buf, g, 21); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "H\tVN:Z:1.0" {
		t.Errorf("empty graph output %q", buf.String())
	}
}
