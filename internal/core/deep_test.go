package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"ppaassembler/internal/dbg"
	"ppaassembler/internal/dna"
	"ppaassembler/internal/pregel"
)

// chainGraph builds hub -> s1 -> s2 -> ... -> sN (a dangling chain of
// contig segments relayed through ⟨1-1⟩ nodes) hanging off an ambiguous
// hub that also has two long arms.
func chainGraph(t *testing.T, segLens []int) (*Graph, pregel.VertexID, []pregel.VertexID) {
	t.Helper()
	g := pregel.NewGraph[VData, Msg](pregel.Config{Workers: 3})
	hub := pregel.VertexID(dna.ParseKmer("ACGTA"))
	arm1 := addLongArm(g, dbg.ContigID(0, 91), hub, true)
	arm2 := addLongArm(g, dbg.ContigID(0, 92), hub, false)

	var ids []pregel.VertexID
	prev := hub
	for i, l := range segLens {
		id := dbg.ContigID(1, uint32(i+1))
		ids = append(ids, id)
		node := dbg.Node{
			Kind: dbg.KindContig,
			Seq:  dna.ParseSeq(strings.Repeat("A", l)),
			Cov:  1,
			Adj: []dbg.Adj{
				{Nbr: prev, In: true, PSelf: dbg.L, PNbr: dbg.L, Cov: 1, NbrLen: 5},
				{Nbr: dbg.NullID, In: false, PSelf: dbg.L},
			},
		}
		if i < len(segLens)-1 {
			node.Adj[1] = dbg.Adj{Nbr: dbg.ContigID(1, uint32(i+2)), In: false, PSelf: dbg.L, PNbr: dbg.L, Cov: 1, NbrLen: int32(segLens[i+1])}
		}
		g.AddVertex(id, VData{Node: node})
		prev = id
	}
	g.AddVertex(hub, VData{Node: dbg.Node{
		Kind: dbg.KindKmer, Seq: dna.ParseSeq("ACGTA"),
		Adj: []dbg.Adj{
			arm1,
			arm2,
			{Nbr: ids[0], In: false, PSelf: dbg.L, PNbr: dbg.L, Cov: 1, NbrLen: int32(segLens[0])},
		},
	}})
	return g, hub, ids
}

func TestRemoveTipsMultiRelayChain(t *testing.T) {
	// Chain of three segments (10+10+10 bp, overlaps 4): total dangling
	// length 10 + 6 + 6 = 22 <= 30, so the whole chain must go; the
	// REQUEST is relayed twice before terminating at the hub.
	g, hub, ids := chainGraph(t, []int{10, 10, 10})
	res, err := RemoveTips(g, 5, 30)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemovedVertices != 3 {
		t.Fatalf("removed %d vertices, want 3", res.RemovedVertices)
	}
	for _, id := range ids {
		if _, ok := g.Value(id); ok {
			t.Errorf("chain segment %x survived", id)
		}
	}
	h, ok := g.Value(hub)
	if !ok {
		t.Fatal("hub deleted")
	}
	if h.Node.RealDegree() != 2 {
		t.Errorf("hub degree = %d, want 2", h.Node.RealDegree())
	}
}

func TestRemoveTipsChainJustOverThreshold(t *testing.T) {
	// Same chain with a threshold one base short of the cumulative
	// length: nothing may be removed.
	g, _, ids := chainGraph(t, []int{10, 10, 10})
	res, err := RemoveTips(g, 5, 21)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemovedVertices != 0 {
		t.Fatalf("removed %d vertices at threshold-1, want 0", res.RemovedVertices)
	}
	for _, id := range ids {
		if _, ok := g.Value(id); !ok {
			t.Errorf("segment %x removed below threshold", id)
		}
	}
}

func TestAssembleMaxK(t *testing.T) {
	// k = 31 exercises the full 62-bit ID width end to end.
	r := rand.New(rand.NewSource(91))
	genome := randomCleanGenome(r, 600, 31)
	reads := readsFromGenome(genome, 80, 30)
	res := assemble(t, reads, testOpts(3, 31, LabelerLR))
	if len(res.Contigs) != 1 || !seqOrRC(res.Contigs[0].Node.Seq, genome) {
		t.Fatalf("k=31 assembly failed: %d contigs", len(res.Contigs))
	}
}

func TestPropAssembledContigsAreSubstrings(t *testing.T) {
	// For any error-free read set, every assembled contig must be an
	// exact substring of the genome (on either strand) — the no-
	// misassembly invariant of the pipeline.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 11
		a := randomCleanGenome(r, 100+r.Intn(200), k)
		b := randomCleanGenome(r, 30+r.Intn(30), k)
		genome := a + b + a[:50+r.Intn(40)] + b // repeats allowed
		reads := readsFromGenome(genome, 50, 10+r.Intn(20))
		opt := testOpts(1+r.Intn(4), k, LabelerLR)
		res, err := Assemble(pregel.ShardSlice(reads, opt.Workers), opt)
		if err != nil {
			return false
		}
		double := genome + "|" + dna.ParseSeq(genome).ReverseComplement().String()
		for _, c := range res.Contigs {
			if !strings.Contains(double, c.Node.Seq.String()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestAssembleParallelEngineMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(92))
	genome := randomCleanGenome(r, 300, 11)
	reads := readsFromGenome(genome, 50, 20)
	reads = append(reads, genome[40:90]+"A") // one error
	seq := assemble(t, reads, testOpts(4, 11, LabelerLR))
	par := testOpts(4, 11, LabelerLR)
	par.Parallel = true
	pres := assemble(t, reads, par)
	a, b := contigSeqSet(seq), contigSeqSet(pres)
	if len(a) != len(b) {
		t.Fatalf("parallel engine: %d contigs vs %d", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("parallel engine contig %d differs", i)
		}
	}
}
