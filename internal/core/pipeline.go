package core

import (
	"fmt"
	"time"

	"ppaassembler/internal/dbg"
	"ppaassembler/internal/pregel"
	"ppaassembler/internal/scaffold"
	"ppaassembler/internal/telemetry"
	"ppaassembler/internal/transport"
	"ppaassembler/internal/workflow"
)

// Options configures an assembly run. The defaults mirror the paper's
// experimental settings (§V) scaled to this reproduction: edit-distance
// threshold 5 for bubble filtering and length threshold 80 for tip removal.
//
// Options is the compatibility shim over the workflow layer: it decomposes
// into the per-op option structs of the op catalog (BuildDBGOp, LabelOp,
// MergeOp, BubblePopOp, SplitOp, TipTrimOp — see AssemblePlan) plus a
// workflow.Env carrying the engine-wide settings. New code composing its
// own workflows should use those directly.
type Options struct {
	// K is the k-mer length (odd, <= 31; the paper uses 31).
	K int
	// Theta drops (k+1)-mers with coverage <= Theta during DBG
	// construction.
	Theta uint32
	// TipLen is the tip-length threshold (paper: 80).
	TipLen int
	// BubbleEditDist prunes a bubble arm when its edit distance to a
	// higher-coverage arm is below this threshold (paper: 5).
	BubbleEditDist int
	// Workers is the number of logical Pregel workers.
	Workers int
	// Labeler chooses the contig-labeling algorithm for both rounds.
	Labeler Labeler
	// Rounds of labeling+merging: 1 = stop after the first merge (no error
	// correction), 2 = the paper's workflow ①②③④⑤⑥②③. Default 2.
	Rounds int
	// Cost parameterizes the simulated cluster (zero value = default).
	Cost pregel.CostModel
	// Parallel runs engine workers on goroutines (see pregel.Config).
	Parallel bool
	// Partitioner is the vertex-placement strategy for every stage (nil =
	// hash, the historical behavior). Build one with MakePartitioner;
	// placement changes simulated network locality but never the
	// assembler's output.
	Partitioner pregel.Partitioner
	// Transport is the message transport every stage shuffles over (see
	// pregel.Config.Transport). Nil keeps the in-memory loopback shuffle;
	// a TCP transport drains every superstep's lanes over real worker
	// processes. Like Parallel and Partitioner, it never changes the
	// assembler's output.
	Transport transport.Transport
	// Overlap enables the engine's overlapped compute/delivery mode for
	// every stage (see pregel.Config.Overlap); like Parallel and
	// Partitioner, it never changes the assembler's output.
	Overlap bool
	// Repartition enables online adaptive repartitioning for every stage
	// (see pregel.Config.Repartition): traffic-driven live vertex migration
	// layered over Partitioner, with the learned routing table shared
	// across stages. Like the other placement knobs, it never changes the
	// assembler's output — only the local/remote traffic split and the
	// simulated time.
	Repartition *pregel.RepartitionPolicy

	// CheckpointEvery enables Pregel-style fault tolerance for every job
	// of the pipeline: each run checkpoints its state every N supersteps
	// and a worker failure rolls back to the latest checkpoint and
	// replays (see pregel.Config.CheckpointEvery). Zero disables it.
	CheckpointEvery int
	// Checkpointer stores the snapshots; every stage shares it. Nil with
	// CheckpointEvery > 0 installs an in-memory store. Use a
	// pregel.DirCheckpointer to survive process death (with Resume).
	Checkpointer pregel.Checkpointer
	// Faults injects simulated worker crashes across the whole pipeline
	// (engine supersteps and MapReduce phases alike); see pregel.FaultPlan.
	Faults *pregel.FaultPlan
	// Resume makes every job fast-forward from checkpoints left in
	// Checkpointer by a previous (killed) process; see
	// pregel.Config.Resume.
	Resume bool
	// DeltaCheckpoints makes cadence checkpoints after the first snapshot
	// only the vertices dirtied since the previous save (see
	// pregel.Config.DeltaCheckpoints).
	DeltaCheckpoints bool

	// Tracer, when non-nil, receives telemetry spans from every workflow
	// op and every engine/MapReduce job of the pipeline (see
	// pregel.Config.Tracer). Nil disables tracing at zero cost.
	Tracer telemetry.Tracer
	// Metrics, when non-nil, collects engine and workflow counters for a
	// Prometheus-text dump (telemetry.Registry.WritePrometheus).
	Metrics *telemetry.Registry
	// Warn, when non-nil, receives the engine's non-fatal diagnostics from
	// every stage — delta-checkpoint downgrades, corrupt checkpoint
	// artifacts skipped during recovery (see pregel.Config.Warn). Nil
	// routes each distinct message to stderr once per process.
	Warn func(msg string)

	// Optional extension operations (§V names both as user
	// customizations; zero disables them):

	// BubbleMinCov additionally prunes bubble arms with coverage below
	// this threshold whenever a stronger parallel arm exists.
	BubbleMinCov uint32
	// BranchSplitRatio enables Spaler-style branch splitting before tip
	// removal: at ambiguous vertices, edges out-covered ratio-to-one by a
	// parallel edge are cut (must be >= 2 when set).
	BranchSplitRatio uint32
	// KeepGraph retains the post-error-correction mixed graph on the
	// Result (for GFA export or further custom operations); it is
	// otherwise released for garbage collection.
	KeepGraph bool
}

// DefaultOptions returns the paper-inspired defaults with the given worker
// count.
func DefaultOptions(workers int) Options {
	return Options{
		K:              21,
		Theta:          1,
		TipLen:         80,
		BubbleEditDist: 5,
		Workers:        workers,
		Labeler:        LabelerLR,
		Rounds:         2,
	}
}

func (o Options) validate() error {
	if o.Rounds < 1 || o.Rounds > 2 {
		return fmt.Errorf("core: Rounds must be 1 or 2, got %d", o.Rounds)
	}
	if o.Workers <= 0 {
		return fmt.Errorf("core: Workers must be positive, got %d", o.Workers)
	}
	return nil
}

// Result is the output of one assembly run plus everything the paper's
// experiments report about it.
type Result struct {
	// Contigs is the final contig set (after the second merge round).
	Contigs []ContigRec
	// Round1Contigs is the contig set after the first merge, before error
	// correction (used by experiment E8: N50 growth).
	Round1Contigs []ContigRec

	// Vertex-count collapse (experiment E9, §V): canonical k-mer vertices,
	// then vertices after merging (ambiguous k-mers + contigs), then final
	// contigs.
	KmerVertices, MidVertices, FinalContigs int

	// KmerLabel and ContigLabel are the two labeling runs (Tables II/III).
	KmerLabel, ContigLabel *LabelStats

	// Error-correction counters.
	BubblesPruned, TipVerticesRemoved int
	TipsDroppedAtMerge                [2]int
	// BranchesCut counts edges removed by optional branch splitting.
	BranchesCut int

	// K1Distinct / K1Kept report the θ filter of operation ①.
	K1Distinct, K1Kept int64

	// SimSeconds is the end-to-end simulated cluster time; WallSeconds the
	// host wall-clock time.
	SimSeconds, WallSeconds float64

	// LocalMessages and RemoteMessages split the pipeline's total shuffle
	// traffic by network tier (read off the shared clock): local messages
	// stayed on their worker, remote ones crossed the simulated wire. The
	// split depends on Options.Partitioner; the totals do not.
	LocalMessages, RemoteMessages int64

	// Checkpoint I/O across the whole pipeline (read off the shared
	// clock): saves and restores performed, and their total bytes. All
	// zero when Options.CheckpointEvery is zero.
	CheckpointSaves, CheckpointRestores             int64
	CheckpointBytesWritten, CheckpointBytesRestored int64

	// Live-migration totals across the whole pipeline (read off the shared
	// clock). All zero when Options.Repartition is nil.
	Migrations, MigratedVertices, MigrationBytes int64

	// FinalGraph is the post-error-correction mixed graph (only when
	// Options.KeepGraph was set); pass it to WriteGFA.
	FinalGraph *Graph

	// Clock is the simulated-cluster clock the run charged; follow-on
	// stages (scaffolding) keep charging it so the pipeline accumulates
	// one end-to-end simulated time.
	Clock *pregel.SimClock

	// Checkpointer is the store every assembly stage checkpointed to
	// (including one installed by default when Options.CheckpointEvery was
	// set with a nil store); ScaffoldContigs inherits it so the whole
	// pipeline reserves job keys in one order, which is what Resume
	// relies on.
	Checkpointer pregel.Checkpointer
}

// Env renders the engine-wide half of the options as a workflow
// environment sharing the given clock (nil starts a fresh one on Run).
func (o Options) Env(clock *pregel.SimClock) *workflow.Env {
	return &workflow.Env{
		Workers: o.Workers, Parallel: o.Parallel, Overlap: o.Overlap, Cost: o.Cost,
		Partitioner: o.Partitioner, Transport: o.Transport, MessageBytes: MsgWireBytes,
		Repartition:     o.Repartition,
		CheckpointEvery: o.CheckpointEvery, Checkpointer: o.Checkpointer,
		DeltaCheckpoints: o.DeltaCheckpoints,
		Faults:           o.Faults, Resume: o.Resume,
		Clock:  clock,
		Tracer: o.Tracer, Metrics: o.Metrics, Warn: o.Warn,
	}
}

// AssemblePlan decomposes the options into the paper's canned workflow
// ①②③④⑤⑥②③ (or just ①②③ with Rounds == 1) over the op catalog of flow.go.
// Custom workflows build their own plans from the same ops. Rounds
// defaults to 2 exactly as in Assemble.
func AssemblePlan(opt Options) (*workflow.Plan[State], error) {
	if opt.Rounds == 0 {
		opt.Rounds = 2
	}
	if opt.Rounds < 1 || opt.Rounds > 2 {
		return nil, fmt.Errorf("core: Rounds must be 1 or 2, got %d", opt.Rounds)
	}
	p := workflow.NewPlan[State](ArtReads).
		Then(BuildDBGOp{K: opt.K, Theta: opt.Theta}).
		Then(LabelOp{Algo: opt.Labeler}).
		Then(MergeOp{TipLen: opt.TipLen})
	if opt.Rounds == 2 {
		p.Then(BubblePopOp{EditDist: opt.BubbleEditDist, MinCov: opt.BubbleMinCov}).
			Then(RebuildOp{}).
			Then(LinkContigsOp{})
		if opt.BranchSplitRatio > 0 {
			p.Then(SplitOp{Ratio: opt.BranchSplitRatio})
		}
		p.Then(TipTrimOp{MinLen: opt.TipLen}).
			Then(LabelOp{Algo: opt.Labeler}).
			Then(MergeOp{TipLen: opt.TipLen})
	}
	return p, p.Err()
}

// Assemble runs the paper's workflow ①②③④⑤⑥②③ over the sharded reads: DBG
// construction, contig labeling and merging, bubble filtering, tip removal,
// then a second labeling/merging round to grow contigs across corrected
// regions. It is a thin canned plan over the workflow layer: the options
// decompose into per-op configs (AssemblePlan) and the per-op metrics fold
// back into the Result.
func Assemble(readShards [][]string, opt Options) (*Result, error) {
	if opt.Workers == 0 {
		opt = DefaultOptions(1)
	}
	if opt.Rounds == 0 {
		opt.Rounds = 2
	}
	if err := opt.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	plan, err := AssemblePlan(opt)
	if err != nil {
		return nil, err
	}
	env := opt.Env(pregel.NewSimClock(opt.Cost))
	st := &State{Reads: readShards}
	if err := plan.Run(env, st); err != nil {
		return nil, err
	}

	res := &Result{Clock: env.Clock, Checkpointer: env.Checkpointer}
	m := &st.Metrics
	res.K1Distinct, res.K1Kept = m.K1Distinct, m.K1Kept
	res.KmerVertices, res.MidVertices = m.KmerVertices, m.MidVertices
	if len(m.Labels) > 0 {
		res.KmerLabel = m.Labels[0]
	}
	if len(m.Labels) > 1 {
		res.ContigLabel = m.Labels[1]
	}
	for i, d := range m.MergeDroppedTips {
		if i < len(res.TipsDroppedAtMerge) {
			res.TipsDroppedAtMerge[i] = d
		}
	}
	res.BubblesPruned = m.BubblesPruned
	res.TipVerticesRemoved = m.TipVerticesRemoved
	res.BranchesCut = m.BranchesCut
	res.Round1Contigs = m.MergeContigs[0]
	res.Contigs = m.MergeContigs[len(m.MergeContigs)-1]
	res.FinalContigs = len(res.Contigs)
	if opt.KeepGraph && opt.Rounds == 2 {
		res.FinalGraph = st.Graph
	}
	res.SimSeconds = env.Clock.Seconds()
	res.readClockCounters()
	res.WallSeconds = time.Since(start).Seconds()
	return res, nil
}

// readClockCounters refreshes the Result's pipeline-wide traffic and
// checkpoint-I/O totals from the shared clock.
func (r *Result) readClockCounters() {
	if r.Clock == nil {
		return
	}
	r.LocalMessages = r.Clock.LocalMessages()
	r.RemoteMessages = r.Clock.RemoteMessages()
	r.CheckpointSaves = r.Clock.CheckpointSaves()
	r.CheckpointRestores = r.Clock.CheckpointRestores()
	r.CheckpointBytesWritten = r.Clock.CheckpointBytesWritten()
	r.CheckpointBytesRestored = r.Clock.CheckpointBytesRestored()
	r.Migrations = r.Clock.Migrations()
	r.MigratedVertices = r.Clock.MigratedVertices()
	r.MigrationBytes = r.Clock.MigrationBytes()
}

// ScaffoldContigs is the pipeline's seventh stage (⑦): paired-end
// scaffolding of the final contig set with package scaffold. The contigs
// keep their (worker, ordinal) vertex IDs, and the scaffolding jobs charge
// the assembly's simulated clock, so the stage extends the same end-to-end
// accounting as operations ①–⑥. Library options (insert size, support,
// seed length) come in via opt; Workers/Parallel/Cost and the clock are
// inherited from the assembly run unless opt overrides them.
func ScaffoldContigs(res *Result, asmOpt Options, pairs []scaffold.Pair, opt scaffold.Options) (*scaffold.Result, []scaffold.Contig, error) {
	env := asmOpt.Env(res.Clock)
	if env.Workers <= 0 {
		// scaffold.Build historically defaulted a zero worker count.
		env.Workers = 1
	}
	if env.Checkpointer == nil {
		// Assemble normalizes a nil store on its own copy of the options;
		// the Result carries the store actually used.
		env.Checkpointer = res.Checkpointer
	}
	plan := workflow.NewPlan[State](ArtContigs, ArtPairs).
		Then(ScaffoldOp{Lib: opt})
	st := &State{Contigs: [][]ContigRec{res.Contigs}, Pairs: pairs}
	if err := plan.Run(env, st); err != nil {
		return nil, nil, err
	}
	if res.Clock != nil {
		res.SimSeconds = res.Clock.Seconds()
		res.readClockCounters()
	}
	return st.Scaffold, st.ScaffoldContigs, nil
}

// BuildMixedGraph assembles the operation-⑤ input graph: the ambiguous
// k-mers of a labeled graph (keeping only their k-mer-to-k-mer edges; edges
// into merged paths are re-established by LinkContigs) plus the given
// contig vertices. It is exported so custom workflows can compose the
// operations differently from the stock pipeline.
func BuildMixedGraph(g1 *Graph, contigs [][]ContigRec, cfg pregel.Config, clock *pregel.SimClock) *Graph {
	g2 := pregel.Convert[VData, Msg](g1, cfg, func(id pregel.VertexID, v VData, emit func(pregel.VertexID, VData)) {
		if !v.Ambig {
			return
		}
		node := dbg.Node{Kind: v.Node.Kind, Seq: v.Node.Seq, Cov: v.Node.Cov}
		for i, a := range v.Node.Adj {
			if i < len(v.NbrAmbig) && v.NbrAmbig[i] {
				node.Adj = append(node.Adj, a)
			}
		}
		emit(id, VData{Node: node})
	})
	g2.UseClock(clock)
	for _, shard := range contigs {
		for _, c := range shard {
			g2.AddVertex(c.ID, VData{Node: c.Node})
		}
	}
	return g2
}
