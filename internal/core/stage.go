package core

import (
	"fmt"

	"ppaassembler/internal/dbg"
	"ppaassembler/internal/pregel"
	"ppaassembler/internal/shardio"
)

// Staging: every operation can hand its output to the next job in memory
// (pregel.Convert — the Pregel+ extension of §II) or dump it to the sharded
// store and reload it later, which is how the paper positions HDFS between
// jobs of different systems. These helpers stage the segment graph and
// contig sets as one part-file per worker.

// DumpSegments writes every live vertex's segment node to the store, one
// part-file per owning worker. Per-job scratch state (labels, pointers) is
// deliberately not persisted: operations exchange vertex data, not job
// state.
func DumpSegments(g *Graph, store *shardio.Store) error {
	shards := make([][]string, g.Workers())
	g.ForEachWorker(func(w int, id pregel.VertexID, v *VData) {
		shards[w] = append(shards[w], dbg.MarshalNodeRecord(id, &v.Node))
	})
	return store.WriteShards(shards)
}

// LoadSegments reconstructs a segment graph from a store written by
// DumpSegments. The part count may differ from cfg.Workers; vertices are
// re-hashed to their owning workers on insert, exactly as a re-replicated
// HDFS load would.
func LoadSegments(store *shardio.Store, cfg pregel.Config, clock *pregel.SimClock) (*Graph, error) {
	shards, err := store.ReadShards(0)
	if err != nil {
		return nil, err
	}
	g := pregel.NewGraph[VData, Msg](cfg)
	if clock != nil {
		g.UseClock(clock)
	}
	for _, shard := range shards {
		for _, line := range shard {
			id, node, err := dbg.UnmarshalNodeRecord(line)
			if err != nil {
				return nil, fmt.Errorf("core: loading segments: %w", err)
			}
			g.AddVertex(id, VData{Node: node})
		}
	}
	return g, nil
}

// DumpContigs writes contig records (per creating worker) to the store.
func DumpContigs(contigs [][]ContigRec, store *shardio.Store) error {
	shards := make([][]string, len(contigs))
	for w, shard := range contigs {
		for _, c := range shard {
			shards[w] = append(shards[w], dbg.MarshalNodeRecord(c.ID, &c.Node))
		}
	}
	return store.WriteShards(shards)
}

// LoadContigs reads contig records written by DumpContigs.
func LoadContigs(store *shardio.Store) ([][]ContigRec, error) {
	shards, err := store.ReadShards(0)
	if err != nil {
		return nil, err
	}
	out := make([][]ContigRec, len(shards))
	for w, shard := range shards {
		for _, line := range shard {
			id, node, err := dbg.UnmarshalNodeRecord(line)
			if err != nil {
				return nil, fmt.Errorf("core: loading contigs: %w", err)
			}
			if !dbg.IsContigID(id) {
				return nil, fmt.Errorf("core: record %x is not a contig", id)
			}
			out[w] = append(out[w], ContigRec{ID: id, Node: node})
		}
	}
	return out, nil
}
