package core

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"ppaassembler/internal/fastx"
	"ppaassembler/internal/genome"
	"ppaassembler/internal/pregel"
	"ppaassembler/internal/readsim"
	"ppaassembler/internal/scaffold"
)

// assembleAndScaffoldOnce runs the full pipeline (assemble + scaffold) over
// the example genome's paired reads and renders both FASTA outputs exactly
// as cmd/ppa-assembler does, so byte equality here is byte equality of the
// shipped artifacts.
func assembleAndScaffoldOnce(t *testing.T, reads []string, pairs []scaffold.Pair, workers int, parallel bool) (contigFasta, scaffoldFasta []byte, res *Result, sres *scaffold.Result) {
	t.Helper()
	opt := DefaultOptions(workers)
	opt.K = 21
	opt.Parallel = parallel
	res, err := Assemble(pregel.ShardSlice(reads, workers), opt)
	if err != nil {
		t.Fatal(err)
	}
	var recs []fastx.Record
	for i, c := range res.Contigs {
		recs = append(recs, fastx.Record{
			Name: fmt.Sprintf("contig_%d length=%d cov=%d", i+1, c.Len(), c.Node.Cov),
			Seq:  c.Node.Seq.String(),
		})
	}
	var cb bytes.Buffer
	if err := fastx.WriteFasta(&cb, recs, 70); err != nil {
		t.Fatal(err)
	}
	sres, scontigs, err := ScaffoldContigs(res, opt, pairs, scaffold.Options{
		InsertMean: 600, InsertSD: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb bytes.Buffer
	if err := fastx.WriteFasta(&sb, scaffold.Records(scontigs, sres.Scaffolds), 70); err != nil {
		t.Fatal(err)
	}
	return cb.Bytes(), sb.Bytes(), res, sres
}

// exampleGenomeReads builds the deterministic paired-read set shared by the
// determinism tests: a repeat-bearing reference, so scaffolding has real
// joins to make.
func exampleGenomeReads(t *testing.T) ([]string, []scaffold.Pair) {
	t.Helper()
	ref, err := genome.Generate(genome.Spec{
		Name: "determinism", Length: 30_000, Repeats: 2, RepeatLen: 300, Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	simPairs, err := readsim.SimulatePairs(ref, readsim.PairProfile{
		Profile:    readsim.Profile{ReadLen: 100, Coverage: 18, Seed: 42},
		InsertMean: 600, InsertSD: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	pairs := make([]scaffold.Pair, len(simPairs))
	for i, p := range simPairs {
		pairs[i] = scaffold.Pair{R1: p.R1, R2: p.R2}
	}
	return readsim.Interleave(simPairs), pairs
}

// TestPipelineParallelDeterminism is the engine-shuffle determinism contract
// at pipeline scale: assembling and scaffolding the example genome with
// Parallel: true must produce byte-identical contig and scaffold FASTA and
// identical message/superstep statistics to sequential mode, for worker
// counts 1, 4 and 7.
func TestPipelineParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline determinism matrix is slow")
	}
	reads, pairs := exampleGenomeReads(t)
	perWorkerSorted := map[int][]string{}
	for _, workers := range []int{1, 4, 7} {
		cSeq, sSeq, resSeq, sresSeq := assembleAndScaffoldOnce(t, reads, pairs, workers, false)
		cPar, sPar, resPar, sresPar := assembleAndScaffoldOnce(t, reads, pairs, workers, true)
		if !bytes.Equal(cSeq, cPar) {
			t.Errorf("workers=%d: contig FASTA differs between Parallel=false and true", workers)
		}
		if !bytes.Equal(sSeq, sPar) {
			t.Errorf("workers=%d: scaffold FASTA differs between Parallel=false and true", workers)
		}
		for _, cmp := range []struct {
			name               string
			seqMsgs, parMsgs   int64
			seqSteps, parSteps int
		}{
			{"kmer-label", resSeq.KmerLabel.Messages, resPar.KmerLabel.Messages,
				resSeq.KmerLabel.Supersteps, resPar.KmerLabel.Supersteps},
			{"contig-label", resSeq.ContigLabel.Messages, resPar.ContigLabel.Messages,
				resSeq.ContigLabel.Supersteps, resPar.ContigLabel.Supersteps},
			{"scaffold", sresSeq.Stats.Messages, sresPar.Stats.Messages,
				sresSeq.Stats.Supersteps, sresPar.Stats.Supersteps},
		} {
			if cmp.seqMsgs != cmp.parMsgs || cmp.seqSteps != cmp.parSteps {
				t.Errorf("workers=%d %s: parallel stats (msgs=%d steps=%d) != sequential (msgs=%d steps=%d)",
					workers, cmp.name, cmp.parMsgs, cmp.parSteps, cmp.seqMsgs, cmp.seqSteps)
			}
		}
		perWorkerSorted[workers] = sortedContigSeqs(resSeq)
	}
	// Across worker counts the contig ordering (and so the FASTA bytes) may
	// legitimately differ — contigs are named by the reducer that created
	// them — but the assembled sequence content must not.
	base := perWorkerSorted[1]
	for _, workers := range []int{4, 7} {
		got := perWorkerSorted[workers]
		if len(got) != len(base) {
			t.Errorf("workers=%d produced %d contigs, workers=1 produced %d", workers, len(got), len(base))
			continue
		}
		for i := range base {
			if got[i] != base[i] {
				t.Errorf("workers=%d: contig sequence set differs from workers=1 (first at %d)", workers, i)
				break
			}
		}
	}
}

// sortedContigSeqs canonicalizes an assembly's contig set: each contig as
// the lexicographically smaller of itself and its reverse complement, the
// whole set sorted.
func sortedContigSeqs(res *Result) []string {
	out := make([]string, 0, len(res.Contigs))
	for _, c := range res.Contigs {
		s := c.Node.Seq.String()
		if rc := c.Node.Seq.ReverseComplement().String(); rc < s {
			s = rc
		}
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// TestPipelineRepeatRunsIdentical: two identical parallel runs produce the
// same bytes (no hidden dependence on scheduling or map iteration).
func TestPipelineRepeatRunsIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline determinism matrix is slow")
	}
	reads, pairs := exampleGenomeReads(t)
	c1, s1, _, _ := assembleAndScaffoldOnce(t, reads, pairs, 4, true)
	c2, s2, _, _ := assembleAndScaffoldOnce(t, reads, pairs, 4, true)
	if !bytes.Equal(c1, c2) {
		t.Error("two identical parallel runs produced different contig FASTA")
	}
	if !bytes.Equal(s1, s2) {
		t.Error("two identical parallel runs produced different scaffold FASTA")
	}
}
