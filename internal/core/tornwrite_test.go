package core

import (
	"bytes"
	"testing"

	"ppaassembler/internal/pregel"
	"ppaassembler/internal/testfs"
)

// TestPipelineResumeTornCheckpoint is the end-to-end torn-write leg: a full
// assembly+scaffold pipeline checkpoints into a fault-injecting filesystem,
// the newest checkpoint artifact is torn at a section boundary (the exact
// state a crashed write leaves), and a resumed pipeline must walk back to
// the previous intact snapshot and still emit byte-identical FASTA.
func TestPipelineResumeTornCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline torn-write test is slow")
	}
	reads, pairs := recoveryGenomeReads(t)
	fs := testfs.New()
	const dir = "/ckpt"

	store1, err := pregel.NewDirCheckpointerOpts(dir, pregel.DirStoreOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	c1, s1, _, _ := runPipeline(t, reads, pairs, 4, false, func(o *Options) {
		o.CheckpointEvery = 3
		o.Checkpointer = store1
	})

	rep, err := pregel.VerifyCheckpointDirFS(dir, fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Files) == 0 {
		t.Fatal("pipeline run left no checkpoint artifacts")
	}
	if bad := rep.Corrupt(); len(bad) != 0 {
		t.Fatalf("clean pipeline run left corrupt artifacts: %+v", bad)
	}
	// Tear the newest artifact of a job that kept an older generation —
	// tearing a job's only checkpoint tests the loud-refusal path, which
	// durability_test covers; here the resume must walk back and succeed.
	perJob := map[string]int{}
	for _, f := range rep.Files {
		if !f.Temp {
			perJob[f.Job]++
		}
	}
	var victim pregel.CkptFileInfo
	for _, f := range rep.Files {
		if !f.Temp && perJob[f.Job] > 1 &&
			(victim.Name == "" || f.Job == victim.Job && f.Step > victim.Step) {
			if victim.Name == "" || f.Job == victim.Job {
				victim = f
			}
		}
	}
	if victim.Name == "" {
		t.Fatal("no job kept two checkpoint generations; cannot exercise walk-back")
	}
	cut := victim.SectionEnds[len(victim.SectionEnds)-1] - 3
	if err := fs.Truncate(dir+"/"+victim.Name, int(cut)); err != nil {
		t.Fatal(err)
	}

	store2, err := pregel.NewDirCheckpointerOpts(dir, pregel.DirStoreOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	var warns []string
	c2, s2, _, _ := runPipeline(t, reads, pairs, 4, false, func(o *Options) {
		o.CheckpointEvery = 3
		o.Checkpointer = store2
		o.Resume = true
		o.Warn = func(msg string) { warns = append(warns, msg) }
	})
	if !bytes.Equal(c1, c2) {
		t.Error("pipeline resumed over a torn checkpoint produced different contig FASTA")
	}
	if !bytes.Equal(s1, s2) {
		t.Error("pipeline resumed over a torn checkpoint produced different scaffold FASTA")
	}
	found := false
	for _, w := range warns {
		if bytes.Contains([]byte(w), []byte(victim.Name)) {
			found = true
		}
	}
	if !found {
		t.Errorf("no warning names the torn artifact %s: %q", victim.Name, warns)
	}
}
