package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ppaassembler/internal/genome"
	"ppaassembler/internal/pregel"
	"ppaassembler/internal/readsim"
	"ppaassembler/internal/telemetry"
	"ppaassembler/internal/workflow"
)

// traceReads builds a small deterministic read set for the trace matrix —
// the full example genome would make the 18-run matrix needlessly slow.
func traceReads(t *testing.T) []string {
	t.Helper()
	ref, err := genome.Generate(genome.Spec{
		Name: "trace", Length: 12_000, Repeats: 2, RepeatLen: 200, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	reads, err := readsim.Simulate(ref, readsim.Profile{ReadLen: 100, Coverage: 12, Seed: 18})
	if err != nil {
		t.Fatal(err)
	}
	return reads
}

// traceAssemble runs the canned pipeline with a Recorder attached and
// returns the timestamp-stripped span signatures plus total message count
// from the metrics registry.
func traceAssemble(t *testing.T, reads []string, partitioner string, workers int, parallel bool) ([]string, int64) {
	t.Helper()
	opt := DefaultOptions(workers)
	opt.K = 21
	opt.Parallel = parallel
	var err error
	if opt.Partitioner, err = MakePartitioner(partitioner, opt.K); err != nil {
		t.Fatal(err)
	}
	rec := telemetry.NewRecorder()
	reg := telemetry.NewRegistry()
	opt.Tracer = rec
	opt.Metrics = reg
	if _, err := Assemble(pregel.ShardSlice(reads, workers), opt); err != nil {
		t.Fatal(err)
	}
	total := reg.Counter("pregel_messages_local_total").Value() +
		reg.Counter("pregel_messages_remote_total").Value()
	return rec.Signatures(), total
}

// TestTraceDeterminism is the telemetry half of the engine's determinism
// contract: the span sequence with timestamps stripped must be identical
// across Parallel on/off and across partitioners (span args carry only
// placement-invariant totals), and its shape — the kind/cat/name sequence —
// must be identical across worker counts. Checkpointing stays off here:
// checkpoint byte counts legitimately vary with placement.
func TestTraceDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("trace determinism matrix is slow")
	}
	reads := traceReads(t)
	partitioners := []string{"hash", "range", "minimizer"}
	workerCounts := []int{1, 4, 7}

	var baseShape []string // kind|cat|name sequence, the cross-worker invariant
	for _, workers := range workerCounts {
		var baseSigs []string
		var baseMsgs int64
		for _, part := range partitioners {
			for _, parallel := range []bool{false, true} {
				label := fmt.Sprintf("part=%s workers=%d parallel=%v", part, workers, parallel)
				sigs, msgs := traceAssemble(t, reads, part, workers, parallel)
				if len(sigs) == 0 {
					t.Fatalf("%s: no spans recorded", label)
				}
				if baseSigs == nil {
					baseSigs, baseMsgs = sigs, msgs
					continue
				}
				if diff := firstDiff(baseSigs, sigs); diff != "" {
					t.Errorf("%s: span signatures differ from %s/%d/sequential: %s",
						label, partitioners[0], workers, diff)
				}
				if msgs != baseMsgs {
					t.Errorf("%s: metrics message total %d != %d", label, msgs, baseMsgs)
				}
			}
		}
		shape := make([]string, len(baseSigs))
		for i, s := range baseSigs {
			if cut := strings.Index(s, "|"); cut >= 0 {
				// kind|cat|name|args... -> kind|cat|name
				parts := strings.SplitN(s, "|", 4)
				shape[i] = strings.Join(parts[:3], "|")
				continue
			}
			shape[i] = s
		}
		if baseShape == nil {
			baseShape = shape
			continue
		}
		if diff := firstDiff(baseShape, shape); diff != "" {
			t.Errorf("workers=%d: span shape differs from workers=%d: %s",
				workers, workerCounts[0], diff)
		}
	}
}

// firstDiff describes the first difference between two string sequences, or
// returns "" when they are identical.
func firstDiff(a, b []string) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return fmt.Sprintf("index %d: %q vs %q", i, a[i], b[i])
		}
	}
	if len(a) != len(b) {
		return fmt.Sprintf("length %d vs %d", len(a), len(b))
	}
	return ""
}

// TestTraceCoversEveryOp locks the span taxonomy at pipeline scale: a canned
// assembly must emit workflow plan+op spans, pregel job and superstep spans,
// compute/shuffle/barrier sub-phase spans, and MR map/shuffle/reduce spans —
// and every Begin must have a matching End.
func TestTraceCoversEveryOp(t *testing.T) {
	reads := traceReads(t)
	opt := DefaultOptions(4)
	opt.K = 21
	rec := telemetry.NewRecorder()
	opt.Tracer = rec
	if _, err := Assemble(pregel.ShardSlice(reads, 4), opt); err != nil {
		t.Fatal(err)
	}
	events := rec.Events()
	open := map[string]int{}
	seen := map[string]bool{}
	for _, e := range events {
		key := e.Cat + "/" + e.Name
		seen[key] = true
		switch e.Kind {
		case telemetry.KindBegin:
			open[key]++
		case telemetry.KindEnd:
			open[key]--
			if open[key] < 0 {
				t.Fatalf("end without begin for %s", key)
			}
		}
	}
	for key, n := range open {
		if n != 0 {
			t.Errorf("unbalanced span %s: %d left open", key, n)
		}
	}
	for _, want := range []string{
		"workflow/plan", "workflow/op",
		"pregel/job", "pregel/superstep", "pregel/convert",
		"phase/compute", "phase/shuffle", "phase/barrier",
		"mr/mr", "mr/map", "mr/shuffle", "mr/reduce",
	} {
		if !seen[want] {
			t.Errorf("span %s never emitted; saw %v", want, keysOf(seen))
		}
	}
}

// TestTraceOpMidPlan: a trace op inserted mid-spec must observe the engine
// work of the remaining ops — including Pregel jobs on the graph built
// before it (TraceOp retrofits live graphs) — and emit a balanced stream
// into its own sink (no End span for the trace op itself).
func TestTraceOpMidPlan(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.jsonl")
	reads := traceReads(t)

	def := OpDefaults{K: 21, Theta: 1, TipLen: 80, Labeler: LabelerLR}
	plan, err := workflow.Parse(OpRegistry(def),
		"build,trace:file="+tracePath+",label,merge,fasta", ArtReads)
	if err != nil {
		t.Fatal(err)
	}
	env := &workflow.Env{Workers: 4, MessageBytes: MsgWireBytes}
	st := &State{Reads: pregel.ShardSlice(reads, 4)}
	if err := plan.Run(env, st); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	open := map[string]int{}
	cats := map[string]bool{}
	for i, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var e struct {
			Ph, Name, Cat string
		}
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %d: %v", i+1, err)
		}
		cats[e.Cat] = true
		switch e.Ph {
		case "B":
			open[e.Cat+"/"+e.Name]++
		case "E":
			open[e.Cat+"/"+e.Name]--
			if open[e.Cat+"/"+e.Name] < 0 {
				t.Fatalf("line %d: end without begin for %s/%s", i+1, e.Cat, e.Name)
			}
		}
	}
	for key, n := range open {
		if n != 0 {
			t.Errorf("unbalanced span %s: %d left open", key, n)
		}
	}
	// label runs on the pre-trace graph; its Pregel job must still appear.
	for _, want := range []string{"workflow", "pregel", "phase", "mr"} {
		if !cats[want] {
			t.Errorf("mid-plan trace missing %q spans", want)
		}
	}
}

func keysOf(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
