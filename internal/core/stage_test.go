package core

import (
	"path/filepath"
	"testing"

	"ppaassembler/internal/dbg"
	"ppaassembler/internal/pregel"
	"ppaassembler/internal/shardio"
)

func TestDumpLoadSegmentsRoundTrip(t *testing.T) {
	r := seededRand(71)
	reads := []string{randomCleanGenome(r, 80, 9)}
	g := buildSegGraph(t, reads, 9, 3)
	store, err := shardio.Open(filepath.Join(t.TempDir(), "seg"))
	if err != nil {
		t.Fatal(err)
	}
	if err := DumpSegments(g, store); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadSegments(store, pregel.Config{Workers: 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g2.VertexCount() != g.VertexCount() {
		t.Fatalf("loaded %d vertices, want %d", g2.VertexCount(), g.VertexCount())
	}
	g.ForEach(func(id pregel.VertexID, v *VData) {
		v2, ok := g2.Value(id)
		if !ok {
			t.Fatalf("vertex %x lost", id)
		}
		if !v2.Node.Seq.Equal(v.Node.Seq) || len(v2.Node.Adj) != len(v.Node.Adj) {
			t.Fatalf("vertex %x node differs", id)
		}
		for i := range v.Node.Adj {
			if v2.Node.Adj[i] != v.Node.Adj[i] {
				t.Fatalf("vertex %x adj %d differs", id, i)
			}
		}
	})
	// The reloaded graph must be fully operable: label and merge it.
	if _, err := LabelContigs(g2, LabelerLR); err != nil {
		t.Fatal(err)
	}
	m, err := MergeContigs(g2, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pregel.Flatten(m.Contigs)) != 1 {
		t.Errorf("staged graph assembled %d contigs, want 1", len(pregel.Flatten(m.Contigs)))
	}
}

func TestDumpLoadContigsRoundTrip(t *testing.T) {
	contigs := [][]ContigRec{
		{mkContig(dbg.ContigID(0, 1), "ACGTTGCAAGCT", 20, 100, 200)},
		{mkContig(dbg.ContigID(1, 1), "TTGGCCAATTGG", 5, 100, dbg.NullID)},
	}
	store, err := shardio.Open(filepath.Join(t.TempDir(), "ctg"))
	if err != nil {
		t.Fatal(err)
	}
	if err := DumpContigs(contigs, store); err != nil {
		t.Fatal(err)
	}
	got, err := LoadContigs(store)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || len(got[0]) != 1 || len(got[1]) != 1 {
		t.Fatalf("shape: %v", got)
	}
	for w := range contigs {
		if got[w][0].ID != contigs[w][0].ID {
			t.Errorf("worker %d ID mismatch", w)
		}
		if !got[w][0].Node.Seq.Equal(contigs[w][0].Node.Seq) {
			t.Errorf("worker %d sequence mismatch", w)
		}
	}
}

func TestLoadContigsRejectsNonContigRecords(t *testing.T) {
	store, err := shardio.Open(filepath.Join(t.TempDir(), "bad"))
	if err != nil {
		t.Fatal(err)
	}
	n := dbg.Node{Kind: dbg.KindKmer}
	if err := store.WriteShards([][]string{{dbg.MarshalNodeRecord(42, &n)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadContigs(store); err == nil {
		t.Fatal("k-mer record accepted as contig")
	}
}
