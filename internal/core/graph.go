// Package core implements PPA-assembler's assembly operations ②–⑤ (§IV-B)
// — contig labeling, contig merging, bubble filtering and tip removing — and
// the end-to-end pipeline ①②③④⑤⑥②③ evaluated in the paper. Everything runs
// on the pregel engine over the unified segment graph of package dbg, so a
// second labeling/merging round over a mix of ambiguous k-mers and contigs
// (arrow ⑥ of Figure 10) reuses the same code paths as the first.
package core

import (
	"ppaassembler/internal/dbg"
	"ppaassembler/internal/pregel"
)

// VData is the vertex value for all core operations: the segment node plus
// per-operation scratch state (the paper's vertex attribute a(v)).
type VData struct {
	Node dbg.Node
	// NbrAmbig marks which adjacency items point at ambiguous (⟨m-n⟩)
	// neighbors; it is learned in the labeling hello exchange and consumed
	// when rebuilding adjacency after merging (operation ⑤ setup).
	NbrAmbig []bool
	// Ambig records this vertex's own ⟨m-n⟩ status at labeling time.
	Ambig bool

	// Contig-labeling state. A vertex has up to two "sides"; Sides[i] is
	// the adjacency item of side i (HasSide[i] false for dead ends). P is
	// the pair of predecessor pointers of §IV-B ② (Figure 11), PSide the
	// side index of the pointer target that faces away from this vertex,
	// and Done marks sides whose pointer reached a flipped contig-end ID.
	Sides      [2]dbg.Adj
	HasSide    [2]bool
	P          [2]pregel.VertexID
	PSide      [2]uint8
	Done       [2]bool
	Label      pregel.VertexID
	Labeled    bool
	Cycle      bool
	LastActive int64

	// Simplified S-V state (cycle fallback and the LabelSV variant).
	D, DD pregel.VertexID

	// Tip-removal state.
	TipProbed bool
}

// MsgKind discriminates the message types of the core operations.
type MsgKind uint8

// Message kinds.
const (
	MsgHello   MsgKind = iota // labeling setup: sender identity + side + ambiguity
	MsgReq                    // list ranking: request pointer jump
	MsgResp                   // list ranking: response
	MsgSVQuery                // S-V: ask parent for its parent
	MsgSVReply                // S-V: parent's reply
	MsgSVNbr                  // S-V: neighbor D broadcast
	MsgSVHook                 // S-V: hook proposal
	MsgCtgLink                // op ⑤ setup: contig announces itself to end k-mers
	MsgTipReq                 // op ⑤: REQUEST wave
	MsgTipDel                 // op ⑤: DELETE wave
)

// Msg is the single message type shared by all jobs that run on the segment
// graph (one Pregel vertex program per operation, as in the paper).
type Msg struct {
	Kind  MsgKind
	From  pregel.VertexID
	Ptr   pregel.VertexID
	Side  uint8
	Side2 uint8
	Flag  bool
	Len   int64
	Cov   uint32
	P1    dbg.Polarity
	P2    dbg.Polarity
	NLen  int32
}

// MsgWireBytes is the charged wire size of one Msg on the simulated
// network: kind (1) + two vertex IDs (16) + sides (2) + flag (1) + the
// varint-packed length/coverage/polarity tail (~4). The engine's generic
// 16-byte default undercharges this record; every segment-graph job
// declares the real size so locality-aware placement is priced against the
// traffic the paper's cluster would actually carry.
const MsgWireBytes = 24

// Graph is the segment graph all core operations run on.
type Graph = pregel.Graph[VData, Msg]

// NewSegmentGraph converts the compact DBG of operation ① into the segment
// graph consumed by operations ②–⑤, using the engine's in-memory job
// concatenation (the convert UDF of §II). k is the k-mer length.
func NewSegmentGraph(b *dbg.BuildResult, cfg pregel.Config, k int) *Graph {
	return pregel.Convert[VData, Msg](b.Graph, cfg,
		func(id pregel.VertexID, v dbg.KmerVertex, emit func(pregel.VertexID, VData)) {
			emit(id, VData{Node: dbg.KmerNode(id, &v, k)})
		})
}

// arrangeSides lays out a vertex's real adjacency items into the two side
// slots used by labeling: ⟨1-1⟩ vertices get both real items, ⟨1⟩ vertices
// get their single real item in slot 0, isolated vertices get none.
func (v *VData) arrangeSides() {
	v.HasSide = [2]bool{}
	real := v.Node.RealAdj()
	for i, a := range real {
		if i >= 2 {
			break
		}
		v.Sides[i] = a
		v.HasSide[i] = true
	}
}

// undoneSides counts sides that have not reached a contig end.
func (v *VData) undoneSides() int64 {
	n := int64(0)
	for i := 0; i < 2; i++ {
		if !v.Done[i] {
			n++
		}
	}
	return n
}

// finishLabel derives the contig label once both pointers are final: the
// smaller of the two contig-end vertex IDs (§IV-B ②).
func (v *VData) finishLabel() {
	a, b := dbg.UnflipID(v.P[0]), dbg.UnflipID(v.P[1])
	if b < a {
		a = b
	}
	v.Label = a
	v.Labeled = true
}
