package core

import (
	"ppaassembler/internal/dbg"
	"ppaassembler/internal/pregel"
)

// TipResult is the output of operation ⑤.
type TipResult struct {
	// LinkStats covers the two-superstep adjacency rebuild, TipStats the
	// REQUEST/DELETE waves.
	LinkStats, TipStats *pregel.Stats
	// RemovedVertices counts vertices (k-mers and contigs) deleted as tip
	// members.
	RemovedVertices int
}

// LinkContigs is the setup phase of operation ⑤ (§IV-B): in superstep 1
// every contig vertex sends its information (ID, length, coverage, end
// polarity) to its non-NULL end neighbors; in superstep 2 every ambiguous
// k-mer collects the announcements into its adjacency list, replacing the
// stale items that pointed into now-merged unambiguous paths (those were
// dropped when the graph was rebuilt).
func LinkContigs(g *Graph) (*pregel.Stats, error) {
	return g.Run(func(ctx *pregel.Context[Msg], id pregel.VertexID, v *VData, msgs []Msg) {
		switch ctx.Superstep() {
		case 0:
			if v.Node.Kind == dbg.KindContig {
				for _, end := range v.Node.Adj {
					if end.Nbr == dbg.NullID {
						continue
					}
					ctx.Send(end.Nbr, Msg{
						Kind: MsgCtgLink,
						From: id,
						Flag: end.In,
						P1:   end.PNbr, // polarity on the k-mer's side
						Cov:  end.Cov,
						NLen: int32(v.Node.Seq.Len()),
					})
				}
			}
			ctx.VoteToHalt()
		case 1:
			for _, m := range msgs {
				if m.Kind != MsgCtgLink {
					continue
				}
				// Perspective reversal (not Property 1): the edge that is
				// the contig's in-end is the k-mer's out-edge.
				v.Node.Adj = append(v.Node.Adj, dbg.Adj{
					Nbr:    m.From,
					In:     !m.Flag,
					PSelf:  m.P1,
					PNbr:   dbg.L, // contig-side polarity is always L
					Cov:    m.Cov,
					NbrLen: m.NLen,
				})
			}
			ctx.VoteToHalt()
		}
	}, pregel.WithName("link-contigs"))
}

// RemoveTips is the wave phase of operation ⑤ (§IV-B): ⟨1⟩-typed vertices
// launch REQUEST messages carrying the cumulative dangling-path length;
// ⟨1-1⟩ vertices relay them (adding their own length minus the k-1
// overlap); the terminal vertex sends DELETE back along the path when the
// cumulative length is within tipLen, deleting the dangling vertices and
// cutting its own edge. Vertices that become ⟨1⟩ through deletions launch
// their own REQUESTs (the paper's multi-phase loop), so one engine run
// reaches the fixed point. Relays drop REQUESTs whose cumulative length
// already exceeds tipLen, bounding the wave depth.
func RemoveTips(g *Graph, k, tipLen int) (*TipResult, error) {
	res := &TipResult{}
	before := g.VertexCount()
	st, err := g.Run(func(ctx *pregel.Context[Msg], id pregel.VertexID, v *VData, msgs []Msg) {
		if ctx.Superstep() == 0 {
			v.TipProbed = false
		}
		mutated := false
		for _, m := range msgs {
			switch m.Kind {
			case MsgTipReq:
				switch v.Node.Type() {
				case dbg.TypeOneOne:
					other, ok := otherSide(&v.Node, m.From)
					if !ok {
						break
					}
					newLen := m.Len + int64(v.Node.Seq.Len()-(k-1))
					if newLen <= int64(tipLen) {
						ctx.Send(other.Nbr, Msg{Kind: MsgTipReq, From: id, Len: newLen})
					}
				default:
					// Terminal (⟨m-n⟩ or ⟨1⟩ or newly degraded): when the
					// dangling path is short enough, send DELETE back
					// (which kills the relays and the originator — not
					// this terminal) and cut the edge towards it. A
					// floating tip with two ⟨1⟩ ends dies symmetrically:
					// each end is deleted by the DELETE answering its own
					// REQUEST (the paper's "meet in the middle" case), or
					// by the isolated-segment check below once its last
					// edge is cut.
					if m.Len <= int64(tipLen) {
						ctx.Send(m.From, Msg{Kind: MsgTipDel, From: id})
						v.Node.RemoveEdgeTo(m.From)
						mutated = true
					}
				}
			case MsgTipDel:
				if other, ok := otherSide(&v.Node, m.From); ok {
					ctx.Send(other.Nbr, Msg{Kind: MsgTipDel, From: id})
				}
				ctx.RemoveSelf()
				return
			}
		}
		switch v.Node.Type() {
		case dbg.TypeIsolated:
			if v.Node.Seq.Len() <= tipLen {
				ctx.RemoveSelf()
				return
			}
		case dbg.TypeOne:
			if !v.TipProbed {
				v.TipProbed = true
				real := v.Node.RealAdj()
				ctx.Send(real[0].Nbr, Msg{Kind: MsgTipReq, From: id, Len: int64(v.Node.Seq.Len())})
			}
		}
		if !mutated {
			ctx.VoteToHalt()
		}
	}, pregel.WithName("remove-tips"))
	if err != nil {
		return nil, err
	}
	res.TipStats = st
	res.RemovedVertices = before - g.VertexCount()
	return res, nil
}

// otherSide returns an adjacency item of n that does not point at from
// (the relay direction of a REQUEST/DELETE wave).
func otherSide(n *dbg.Node, from pregel.VertexID) (dbg.Adj, bool) {
	for _, a := range n.Adj {
		if a.Nbr != dbg.NullID && a.Nbr != from {
			return a, true
		}
	}
	return dbg.Adj{}, false
}
