package core

import (
	"ppaassembler/internal/dbg"
	"ppaassembler/internal/dna"
	"ppaassembler/internal/pregel"
)

// BubbleResult is the output of operation ④.
type BubbleResult struct {
	// Contigs holds the surviving contigs, per worker.
	Contigs [][]ContigRec
	// Pruned counts contigs removed as low-coverage bubble arms.
	Pruned int
	Stats  *pregel.Stats
}

// endPair is the shuffle key of operation ④: the sorted IDs of a contig's
// two ambiguous end vertices.
type endPair struct{ Lo, Hi pregel.VertexID }

func pairHash(p endPair) uint64 {
	return pregel.Uint64Hash(uint64(p.Lo)*0x9E3779B97F4A7C15 ^ uint64(p.Hi))
}

func pairLess(a, b endPair) bool {
	if a.Lo != b.Lo {
		return a.Lo < b.Lo
	}
	return a.Hi < b.Hi
}

// FilterBubbles is operation ④ (§IV-B): a mini-MapReduce that groups
// contigs sharing both (ambiguous) end vertices and, within each group,
// prunes the lower-coverage arm of any pair whose sequences are within
// maxEditDist of each other (after orienting both arms in the same
// end-to-end direction). Contigs with a dead end do not participate; they
// pass through unchanged.
//
// minArmCov > 0 enables the coverage-threshold pruning the paper's §V
// suggests as a user customization: an arm with coverage below minArmCov
// is pruned whenever a stronger parallel arm exists, regardless of edit
// distance.
func FilterBubbles(clock *pregel.SimClock, workers int, contigs [][]ContigRec, maxEditDist int, minArmCov uint32) (*BubbleResult, error) {
	return FilterBubblesCfg(clock, pregel.MRConfig{Workers: workers, PairBytes: 64}, contigs, maxEditDist, minArmCov)
}

// FilterBubblesCfg is FilterBubbles with explicit shuffle configuration;
// cfg.Parallel runs one mapper/reducer goroutine per worker.
func FilterBubblesCfg(clock *pregel.SimClock, cfg pregel.MRConfig, contigs [][]ContigRec, maxEditDist int, minArmCov uint32) (*BubbleResult, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.PairBytes <= 0 {
		cfg.PairBytes = 64
	}
	res := &BubbleResult{}
	type keyed struct {
		rec      ContigRec
		inBubble bool
	}
	prunedPerWorker := make([]int, cfg.Workers)
	out, st := pregel.MapReduceCfg(
		clock, cfg,
		contigs,
		func(w int, c ContigRec, emit func(endPair, keyed)) {
			nb1, nb2 := c.Node.Adj[0].Nbr, c.Node.Adj[1].Nbr
			if nb1 == dbg.NullID || nb2 == dbg.NullID {
				// Not a bubble candidate: route to a unique key so it
				// passes through reduce untouched.
				emit(endPair{Lo: c.ID, Hi: dbg.NullID}, keyed{rec: c})
				return
			}
			lo, hi := nb1, nb2
			if hi < lo {
				lo, hi = hi, lo
			}
			emit(endPair{Lo: lo, Hi: hi}, keyed{rec: c, inBubble: true})
		},
		pairHash,
		pairLess,
		func(w int, key endPair, group []keyed, emit func(ContigRec)) {
			if len(group) == 1 || !group[0].inBubble {
				for _, kd := range group {
					emit(kd.rec)
				}
				return
			}
			pruned := make([]bool, len(group))
			seqs := make([]dna.Seq, len(group))
			maxCov := uint32(0)
			for i, kd := range group {
				seqs[i] = orientArm(kd.rec, key)
				if kd.rec.Node.Cov > maxCov {
					maxCov = kd.rec.Node.Cov
				}
			}
			if minArmCov > 0 {
				for i, kd := range group {
					if kd.rec.Node.Cov < minArmCov && kd.rec.Node.Cov < maxCov {
						pruned[i] = true
					}
				}
			}
			for i := range group {
				if pruned[i] {
					continue
				}
				for j := i + 1; j < len(group); j++ {
					if pruned[j] {
						continue
					}
					d := dna.EditDistanceAtMost(seqs[i], seqs[j], maxEditDist-1)
					if key.Lo == key.Hi {
						// Self-pair ends: orientation is ambiguous; also
						// compare against the reverse complement.
						d2 := dna.EditDistanceAtMost(seqs[i], seqs[j].ReverseComplement(), maxEditDist-1)
						if d2 < d {
							d = d2
						}
					}
					if d >= maxEditDist {
						continue
					}
					// Similar arms: prune the lower-coverage one.
					if group[i].rec.Node.Cov < group[j].rec.Node.Cov {
						pruned[i] = true
					} else {
						pruned[j] = true
					}
				}
				if pruned[i] {
					continue
				}
			}
			for i, kd := range group {
				if pruned[i] {
					prunedPerWorker[w]++
					continue
				}
				emit(kd.rec)
			}
		},
	)
	for _, p := range prunedPerWorker {
		res.Pruned += p
	}
	res.Contigs = out
	res.Stats = st
	return res, nil
}

// orientArm returns the contig sequence reading from key.Lo to key.Hi: as
// stored when the in-end neighbor is Lo, reverse-complemented otherwise.
func orientArm(c ContigRec, key endPair) dna.Seq {
	if c.Node.Adj[0].Nbr == key.Lo {
		return c.Node.Seq
	}
	return c.Node.Seq.ReverseComplement()
}
