package core

import (
	"errors"

	"ppaassembler/internal/dbg"
	"ppaassembler/internal/pregel"
)

// SplitResult is the output of the branch-splitting operation.
type SplitResult struct {
	// EdgesCut counts removed edges (counted once per edge).
	EdgesCut int
	Stats    *pregel.Stats
}

// SplitBranches is the branch-splitting error-correction operation the
// paper's §V names as an example of a user-added operation (it originates
// in Spaler [1]): at every ambiguous (⟨m-n⟩) vertex, edges whose coverage
// is dominated ratio-to-one by the strongest parallel edge on the same
// side are cut — they are almost always contributed by erroneous reads.
// The severed branches become dangling paths that the next tip-removal
// pass cleans up, and previously ambiguous vertices may become unambiguous,
// letting the next labeling round grow longer contigs.
//
// Two supersteps: ambiguous vertices cut locally and notify the affected
// neighbors; neighbors drop the reciprocal items.
func SplitBranches(g *Graph, ratio uint32) (*SplitResult, error) {
	if ratio < 2 {
		return nil, errRatio
	}
	res := &SplitResult{}
	before := countEdgeEndpoints(g)
	st, err := g.Run(func(ctx *pregel.Context[Msg], id pregel.VertexID, v *VData, msgs []Msg) {
		switch ctx.Superstep() {
		case 0:
			if v.Node.Type() != dbg.TypeManyAny {
				ctx.VoteToHalt()
				return
			}
			// Group items by side (normalized direction): a branch exists
			// where several edges leave the same side; the dominant edge
			// must out-cover a victim ratio-to-one for the victim to go.
			var inMax, outMax uint32
			for _, a := range v.Node.RealAdj() {
				n := a.Normalized(dbg.L)
				if n.In {
					if n.Cov > inMax {
						inMax = n.Cov
					}
				} else if n.Cov > outMax {
					outMax = n.Cov
				}
			}
			for _, a := range v.Node.RealAdj() {
				n := a.Normalized(dbg.L)
				max := outMax
				if n.In {
					max = inMax
				}
				if n.Cov*ratio <= max {
					v.Node.RemoveEdgeTo(a.Nbr)
					ctx.Send(a.Nbr, Msg{Kind: MsgHello, From: id, Flag: true})
				}
			}
			ctx.VoteToHalt()
		case 1:
			for _, m := range msgs {
				if m.Kind == MsgHello && m.Flag {
					v.Node.RemoveEdgeTo(m.From)
				}
			}
			ctx.VoteToHalt()
		}
	}, pregel.WithName("split-branches"))
	if err != nil {
		return nil, err
	}
	res.EdgesCut = (before - countEdgeEndpoints(g)) / 2
	res.Stats = st
	return res, nil
}

// countEdgeEndpoints sums real adjacency items over all vertices (each
// surviving edge contributes two endpoints).
func countEdgeEndpoints(g *Graph) int {
	n := 0
	g.ForEach(func(_ pregel.VertexID, v *VData) { n += v.Node.RealDegree() })
	return n
}

// errRatio is returned for a degenerate dominance ratio.
var errRatio = errors.New("core: branch-split ratio must be >= 2")
