package core

import (
	"bytes"
	"fmt"
	"testing"

	"ppaassembler/internal/fastx"
	"ppaassembler/internal/genome"
	"ppaassembler/internal/pregel"
	"ppaassembler/internal/readsim"
	"ppaassembler/internal/scaffold"
)

// recoveryGenomeReads is a smaller cousin of exampleGenomeReads sized for
// the pipeline crash matrix, which assembles the genome dozens of times.
func recoveryGenomeReads(t *testing.T) ([]string, []scaffold.Pair) {
	t.Helper()
	ref, err := genome.Generate(genome.Spec{
		Name: "recovery", Length: 12_000, Repeats: 2, RepeatLen: 250, Seed: 71,
	})
	if err != nil {
		t.Fatal(err)
	}
	simPairs, err := readsim.SimulatePairs(ref, readsim.PairProfile{
		Profile:    readsim.Profile{ReadLen: 100, Coverage: 14, Seed: 72},
		InsertMean: 600, InsertSD: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	pairs := make([]scaffold.Pair, len(simPairs))
	for i, p := range simPairs {
		pairs[i] = scaffold.Pair{R1: p.R1, R2: p.R2}
	}
	return readsim.Interleave(simPairs), pairs
}

// runPipeline assembles and scaffolds with the given fault-tolerance knobs
// and renders both FASTA artifacts exactly as cmd/ppa-assembler does.
func runPipeline(t *testing.T, reads []string, pairs []scaffold.Pair, workers int, parallel bool, mutate func(*Options)) (contigFasta, scaffoldFasta []byte, res *Result, sres *scaffold.Result) {
	t.Helper()
	opt := DefaultOptions(workers)
	opt.K = 21
	opt.Parallel = parallel
	if mutate != nil {
		mutate(&opt)
	}
	res, err := Assemble(pregel.ShardSlice(reads, workers), opt)
	if err != nil {
		t.Fatal(err)
	}
	var recs []fastx.Record
	for i, c := range res.Contigs {
		recs = append(recs, fastx.Record{
			Name: fmt.Sprintf("contig_%d length=%d cov=%d", i+1, c.Len(), c.Node.Cov),
			Seq:  c.Node.Seq.String(),
		})
	}
	var cb bytes.Buffer
	if err := fastx.WriteFasta(&cb, recs, 70); err != nil {
		t.Fatal(err)
	}
	sres, scontigs, err := ScaffoldContigs(res, opt, pairs, scaffold.Options{
		InsertMean: 600, InsertSD: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb bytes.Buffer
	if err := fastx.WriteFasta(&sb, scaffold.Records(scontigs, sres.Scaffolds), 70); err != nil {
		t.Fatal(err)
	}
	return cb.Bytes(), sb.Bytes(), res, sres
}

// pipelineCounters fingerprints every deterministic counter the pipeline
// reports — including the MapReduce-derived ones (θ-filter totals, merge
// drops, pair placement), which a recovery that double-ran a map or reduce
// task would corrupt even when the FASTA happens to survive.
func pipelineCounters(res *Result, sres *scaffold.Result) string {
	return fmt.Sprintf(
		"kmerV=%d midV=%d final=%d k1=%d/%d bubbles=%d tips=%d tipdrop=%v branches=%d "+
			"klabel=%d/%d/%d clabel=%d/%d/%d "+
			"pairs=%d/%d/%d/%d bundles=%d kept=%d excl=%d cyc=%d scaf=%d/%d insert=%.3f/%.3f",
		res.KmerVertices, res.MidVertices, res.FinalContigs, res.K1Kept, res.K1Distinct,
		res.BubblesPruned, res.TipVerticesRemoved, res.TipsDroppedAtMerge, res.BranchesCut,
		res.KmerLabel.Supersteps, res.KmerLabel.Messages, int64(res.KmerLabel.CycleVertices),
		res.ContigLabel.Supersteps, res.ContigLabel.Messages, int64(res.ContigLabel.CycleVertices),
		sres.PairsTotal, sres.PairsPlaced, sres.PairsSameContig, sres.PairsLinking,
		sres.LinkBundles, sres.LinksKept, sres.Excluded, sres.CycleContigs,
		sres.Stats.Supersteps, sres.Stats.Messages, sres.InsertMean, sres.InsertSD)
}

// sampleRounds picks up to max failure rounds covering [0, rounds): always
// the first and last round, the rest evenly spaced, so every pipeline stage
// (DBG MapReduce, labeling, merging, bubble/tip jobs, scaffolding) gets
// crashed somewhere in the matrix.
func sampleRounds(rounds, max int) []int {
	if rounds <= max {
		out := make([]int, rounds)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := []int{0}
	for i := 1; i < max-1; i++ {
		out = append(out, i*(rounds-1)/(max-1))
	}
	return append(out, rounds-1)
}

// TestPipelineCrashMatrix is the headline fault-tolerance contract at
// pipeline scale: kill a worker at failure rounds sampled across the whole
// assemble→scaffold pipeline, for worker counts {1,4,7} × Parallel
// {off,on}, and every recovered run must write byte-identical contig and
// scaffold FASTA with identical job statistics to the unfailed run.
func TestPipelineCrashMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline crash matrix is slow")
	}
	reads, pairs := recoveryGenomeReads(t)
	for _, workers := range []int{1, 4, 7} {
		for _, parallel := range []bool{false, true} {
			t.Run(fmt.Sprintf("w%d-par%v", workers, parallel), func(t *testing.T) {
				probe := pregel.NewFaultPlan()
				cBase, sBase, resBase, sresBase := runPipeline(t, reads, pairs, workers, parallel,
					func(o *Options) { o.Faults = probe })
				rounds := probe.Rounds()
				if rounds < 10 {
					t.Fatalf("probe saw only %d BSP rounds; pipeline shrank?", rounds)
				}

				for _, failAt := range sampleRounds(rounds, 8) {
					plan := pregel.NewFaultPlan(pregel.Fault{Round: failAt, Worker: failAt})
					cGot, sGot, resGot, sresGot := runPipeline(t, reads, pairs, workers, parallel,
						func(o *Options) {
							o.CheckpointEvery = 4
							o.Faults = plan
						})
					if plan.FiredCount() != 1 {
						t.Errorf("fail@%d/%d: fault did not fire", failAt, rounds)
					}
					if !bytes.Equal(cGot, cBase) {
						t.Errorf("fail@%d/%d: recovered contig FASTA differs from unfailed run", failAt, rounds)
					}
					if !bytes.Equal(sGot, sBase) {
						t.Errorf("fail@%d/%d: recovered scaffold FASTA differs from unfailed run", failAt, rounds)
					}
					if base, got := pipelineCounters(resBase, sresBase), pipelineCounters(resGot, sresGot); got != base {
						t.Errorf("fail@%d/%d: recovered pipeline counters differ:\nunfailed %s\nrecovered %s",
							failAt, rounds, base, got)
					}
					// Simulated time is NOT compared: it mixes measured
					// compute ns with the deterministic recovery charges,
					// so run-to-run noise can mask them here. The clock
					// ordering contract is pinned at engine level by
					// TestClockNeverRewindsThroughRecovery and
					// TestCheckpointChargesClock, where fixed latencies
					// dominate measurement noise.
				}
			})
		}
	}
}

// TestPipelineCrashMatrixOverlap is the overlapped-delivery leg of the
// crash matrix: the same sampled-round kill schedule, but with compute/
// delivery overlap enabled — recovery must still write byte-identical
// artifacts, pinning the interaction of per-source completion signals with
// checkpoint restore across every pipeline stage.
func TestPipelineCrashMatrixOverlap(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline crash matrix is slow")
	}
	reads, pairs := recoveryGenomeReads(t)
	for _, workers := range []int{4, 7} {
		t.Run(fmt.Sprintf("w%d", workers), func(t *testing.T) {
			probe := pregel.NewFaultPlan()
			cBase, sBase, resBase, sresBase := runPipeline(t, reads, pairs, workers, true,
				func(o *Options) { o.Faults = probe })
			baseCounters := pipelineCounters(resBase, sresBase)

			for _, failAt := range sampleRounds(probe.Rounds(), 6) {
				plan := pregel.NewFaultPlan(pregel.Fault{Round: failAt, Worker: failAt})
				cGot, sGot, resGot, sresGot := runPipeline(t, reads, pairs, workers, true,
					func(o *Options) {
						o.Overlap = true
						o.CheckpointEvery = 4
						o.Faults = plan
					})
				if plan.FiredCount() != 1 {
					t.Errorf("fail@%d: fault did not fire", failAt)
				}
				if !bytes.Equal(cGot, cBase) || !bytes.Equal(sGot, sBase) {
					t.Errorf("fail@%d: recovered overlapped FASTA differs from barriered unfailed run", failAt)
				}
				if got := pipelineCounters(resGot, sresGot); got != baseCounters {
					t.Errorf("fail@%d: recovered pipeline counters differ:\nunfailed %s\nrecovered %s",
						failAt, baseCounters, got)
				}
			}
		})
	}
}

// TestPipelineCrashDeltaCheckpoints is the delta-checkpoint leg of the
// crash matrix: incremental (dirty-vertex-only) checkpoints between full
// snapshots, crashed at sampled rounds — recovery replays the full+delta
// chain through every pipeline stage and must write byte-identical
// artifacts. VData/Msg implement the binary codec, so the segment-graph
// jobs genuinely take the delta path here.
func TestPipelineCrashDeltaCheckpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline crash matrix is slow")
	}
	reads, pairs := recoveryGenomeReads(t)
	probe := pregel.NewFaultPlan()
	cBase, sBase, resBase, sresBase := runPipeline(t, reads, pairs, 4, true,
		func(o *Options) { o.Faults = probe })
	baseCounters := pipelineCounters(resBase, sresBase)

	for _, failAt := range sampleRounds(probe.Rounds(), 6) {
		plan := pregel.NewFaultPlan(pregel.Fault{Round: failAt, Worker: failAt})
		cGot, sGot, resGot, sresGot := runPipeline(t, reads, pairs, 4, true,
			func(o *Options) {
				o.CheckpointEvery = 2
				o.DeltaCheckpoints = true
				o.Faults = plan
			})
		if plan.FiredCount() != 1 {
			t.Errorf("fail@%d: fault did not fire", failAt)
		}
		if !bytes.Equal(cGot, cBase) || !bytes.Equal(sGot, sBase) {
			t.Errorf("fail@%d: recovery from delta chain wrote different FASTA", failAt)
		}
		if got := pipelineCounters(resGot, sresGot); got != baseCounters {
			t.Errorf("fail@%d: recovered pipeline counters differ:\nunfailed %s\nrecovered %s",
				failAt, baseCounters, got)
		}
	}
}

// TestPipelineCrashSweepAllRounds is the exhaustive companion to the
// sampled matrix: at workers=1 it crashes the pipeline at every single BSP
// round — engine supersteps and MapReduce phases alike — and requires
// byte-identical FASTA plus identical counters each time. This is the test
// that catches recovery paths whose damage hides between sampled rounds
// (e.g. a MapReduce task redo double-counting a caller-owned accumulator).
func TestPipelineCrashSweepAllRounds(t *testing.T) {
	if testing.Short() {
		t.Skip("full crash sweep is slow")
	}
	reads, pairs := recoveryGenomeReads(t)
	probe := pregel.NewFaultPlan()
	cBase, sBase, resBase, sresBase := runPipeline(t, reads, pairs, 1, false,
		func(o *Options) { o.Faults = probe })
	rounds := probe.Rounds()
	baseCounters := pipelineCounters(resBase, sresBase)

	for failAt := 0; failAt < rounds; failAt++ {
		plan := pregel.NewFaultPlan(pregel.Fault{Round: failAt, Worker: 0})
		cGot, sGot, resGot, sresGot := runPipeline(t, reads, pairs, 1, false,
			func(o *Options) {
				o.CheckpointEvery = 4
				o.Faults = plan
			})
		if plan.FiredCount() != 1 {
			t.Errorf("fail@%d/%d: fault did not fire", failAt, rounds)
		}
		if !bytes.Equal(cGot, cBase) || !bytes.Equal(sGot, sBase) {
			t.Errorf("fail@%d/%d: recovered FASTA differs from unfailed run", failAt, rounds)
		}
		if got := pipelineCounters(resGot, sresGot); got != baseCounters {
			t.Errorf("fail@%d/%d: recovered pipeline counters differ:\nunfailed %s\nrecovered %s",
				failAt, rounds, baseCounters, got)
		}
	}
}

// TestPipelineResumeFromDisk kills-and-resumes at process granularity: a
// first pipeline run leaves its checkpoints in a DirCheckpointer; a second
// run over the same inputs with Resume must fast-forward from them and
// write byte-identical artifacts. (The first run completing is the worst
// case for resume correctness: every job restarts from its last cadence
// checkpoint and replays its tail.)
func TestPipelineResumeFromDisk(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline resume test is slow")
	}
	reads, pairs := recoveryGenomeReads(t)
	dir := t.TempDir()

	store1, err := pregel.NewDirCheckpointer(dir)
	if err != nil {
		t.Fatal(err)
	}
	c1, s1, _, _ := runPipeline(t, reads, pairs, 4, false, func(o *Options) {
		o.CheckpointEvery = 3
		o.Checkpointer = store1
	})

	store2, err := pregel.NewDirCheckpointer(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2, s2, _, _ := runPipeline(t, reads, pairs, 4, false, func(o *Options) {
		o.CheckpointEvery = 3
		o.Checkpointer = store2
		o.Resume = true
	})
	if !bytes.Equal(c1, c2) {
		t.Error("resumed pipeline produced different contig FASTA")
	}
	if !bytes.Equal(s1, s2) {
		t.Error("resumed pipeline produced different scaffold FASTA")
	}
}
