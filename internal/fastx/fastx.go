// Package fastx reads and writes the FASTA and FASTQ formats used for
// reference sequences, simulated reads and assembled contigs. The paper's
// datasets are FASTQ files on HDFS; this reproduction reads them from the
// local filesystem or the sharded store of package shardio.
package fastx

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strings"
)

// Record is one sequence record. Qual is empty for FASTA records.
type Record struct {
	Name string
	Seq  string
	Qual string
}

// ReadFasta parses FASTA records from r. Multi-line sequences are joined.
func ReadFasta(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	var out []Record
	var cur *Record
	var seq strings.Builder
	flush := func() {
		if cur != nil {
			cur.Seq = seq.String()
			out = append(out, *cur)
			seq.Reset()
			cur = nil
		}
	}
	line := 0
	for sc.Scan() {
		line++
		t := strings.TrimSpace(sc.Text())
		if t == "" {
			continue
		}
		if strings.HasPrefix(t, ">") {
			flush()
			cur = &Record{Name: strings.TrimSpace(t[1:])}
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("fastx: line %d: sequence before first header", line)
		}
		seq.WriteString(t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fastx: %w", err)
	}
	flush()
	return out, nil
}

// WriteFasta writes records to w, wrapping sequence lines at width (<=0
// means no wrapping).
func WriteFasta(w io.Writer, recs []Record, width int) error {
	bw := bufio.NewWriter(w)
	for _, rec := range recs {
		if _, err := fmt.Fprintf(bw, ">%s\n", rec.Name); err != nil {
			return fmt.Errorf("fastx: %w", err)
		}
		s := rec.Seq
		if width <= 0 {
			if _, err := fmt.Fprintln(bw, s); err != nil {
				return fmt.Errorf("fastx: %w", err)
			}
			continue
		}
		for len(s) > 0 {
			n := width
			if n > len(s) {
				n = len(s)
			}
			if _, err := fmt.Fprintln(bw, s[:n]); err != nil {
				return fmt.Errorf("fastx: %w", err)
			}
			s = s[n:]
		}
	}
	return bw.Flush()
}

// ReadFastq parses FASTQ records from r (strict four-line records).
func ReadFastq(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	var out []Record
	line := 0
	next := func() (string, bool) {
		for sc.Scan() {
			line++
			t := strings.TrimRight(sc.Text(), "\r\n")
			return t, true
		}
		return "", false
	}
	for {
		h, ok := next()
		if !ok {
			break
		}
		if strings.TrimSpace(h) == "" {
			continue
		}
		if !strings.HasPrefix(h, "@") {
			return nil, fmt.Errorf("fastx: line %d: expected @header, got %q", line, h)
		}
		seq, ok := next()
		if !ok {
			return nil, fmt.Errorf("fastx: line %d: truncated record", line)
		}
		plus, ok := next()
		if !ok || !strings.HasPrefix(plus, "+") {
			return nil, fmt.Errorf("fastx: line %d: expected + separator", line)
		}
		qual, ok := next()
		if !ok {
			return nil, fmt.Errorf("fastx: line %d: missing quality line", line)
		}
		if len(qual) != len(seq) {
			return nil, fmt.Errorf("fastx: line %d: quality length %d != sequence length %d", line, len(qual), len(seq))
		}
		out = append(out, Record{Name: strings.TrimSpace(h[1:]), Seq: seq, Qual: qual})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fastx: %w", err)
	}
	return out, nil
}

// WriteFastq writes records to w; records without quality get a constant
// high-quality string.
func WriteFastq(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	for _, rec := range recs {
		q := rec.Qual
		if q == "" {
			q = strings.Repeat("I", len(rec.Seq))
		}
		if _, err := fmt.Fprintf(bw, "@%s\n%s\n+\n%s\n", rec.Name, rec.Seq, q); err != nil {
			return fmt.Errorf("fastx: %w", err)
		}
	}
	return bw.Flush()
}

// Open opens path for reading, transparently decompressing when the name
// ends in .gz (the form sequencing archives usually ship in). Closing the
// returned reader closes the underlying file.
func Open(path string) (io.ReadCloser, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	if !strings.HasSuffix(strings.ToLower(path), ".gz") {
		return f, nil
	}
	gz, err := gzip.NewReader(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("fastx: %s: %w", path, err)
	}
	return &gzFile{gz: gz, f: f}, nil
}

// BaseExt returns the lower-cased filename extension with a trailing .gz
// stripped, so callers can dispatch on ".fastq" for "reads.FASTQ.gz".
func BaseExt(path string) string {
	p := strings.ToLower(path)
	p = strings.TrimSuffix(p, ".gz")
	if i := strings.LastIndexByte(p, '.'); i >= 0 {
		return p[i:]
	}
	return ""
}

type gzFile struct {
	gz *gzip.Reader
	f  *os.File
}

func (g *gzFile) Read(p []byte) (int, error) { return g.gz.Read(p) }

func (g *gzFile) Close() error {
	gzErr := g.gz.Close()
	if err := g.f.Close(); err != nil {
		return err
	}
	return gzErr
}

// Seqs extracts just the sequence strings.
func Seqs(recs []Record) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.Seq
	}
	return out
}
