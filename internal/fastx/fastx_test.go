package fastx

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFastaRoundTrip(t *testing.T) {
	recs := []Record{
		{Name: "ctg1 length=10", Seq: "ACGTACGTAC"},
		{Name: "ctg2", Seq: strings.Repeat("GATTACA", 30)},
	}
	var buf bytes.Buffer
	if err := WriteFasta(&buf, recs, 60); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFasta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("records = %d", len(got))
	}
	for i := range recs {
		if got[i].Name != recs[i].Name || got[i].Seq != recs[i].Seq {
			t.Errorf("record %d mismatch: %+v", i, got[i])
		}
	}
}

func TestFastaNoWrap(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFasta(&buf, []Record{{Name: "x", Seq: "ACGT"}}, 0); err != nil {
		t.Fatal(err)
	}
	if buf.String() != ">x\nACGT\n" {
		t.Errorf("output %q", buf.String())
	}
}

func TestFastaMultiline(t *testing.T) {
	in := ">a\nACGT\nTTTT\n\n>b\nGG\n"
	recs, err := ReadFasta(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Seq != "ACGTTTTT" || recs[1].Seq != "GG" {
		t.Errorf("parsed %+v", recs)
	}
}

func TestFastaErrors(t *testing.T) {
	if _, err := ReadFasta(strings.NewReader("ACGT\n")); err == nil {
		t.Error("sequence before header accepted")
	}
}

func TestFastqRoundTrip(t *testing.T) {
	recs := []Record{
		{Name: "r1", Seq: "ACGTN", Qual: "IIIII"},
		{Name: "r2", Seq: "GG", Qual: "!!"},
	}
	var buf bytes.Buffer
	if err := WriteFastq(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFastq(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("records = %d", len(got))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
}

func TestFastqDefaultQuality(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFastq(&buf, []Record{{Name: "r", Seq: "ACG"}}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFastq(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Qual != "III" {
		t.Errorf("qual = %q", got[0].Qual)
	}
}

func TestFastqErrors(t *testing.T) {
	for _, in := range []string{
		"ACGT\nACGT\n+\nIIII\n", // missing @
		"@r\nACGT\nIIII\n",      // missing +
		"@r\nACGT\n+\nII\n",     // quality length mismatch
		"@r\nACGT\n+\n",         // truncated
	} {
		if _, err := ReadFastq(strings.NewReader(in)); err == nil {
			t.Errorf("malformed FASTQ accepted: %q", in)
		}
	}
}

func TestSeqs(t *testing.T) {
	s := Seqs([]Record{{Seq: "A"}, {Seq: "CG"}})
	if len(s) != 2 || s[0] != "A" || s[1] != "CG" {
		t.Errorf("Seqs = %v", s)
	}
}

func TestOpenPlainAndGzip(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "reads.fastq")
	const content = "@r1\nACGT\n+\nIIII\n"
	if err := os.WriteFile(plain, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	zipped := filepath.Join(dir, "reads.fastq.gz")
	f, err := os.Create(zipped)
	if err != nil {
		t.Fatal(err)
	}
	gz := gzip.NewWriter(f)
	if _, err := gz.Write([]byte(content)); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{plain, zipped} {
		r, err := Open(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		recs, err := ReadFastq(r)
		if cerr := r.Close(); cerr != nil {
			t.Fatalf("%s: close: %v", path, cerr)
		}
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(recs) != 1 || recs[0].Seq != "ACGT" {
			t.Errorf("%s: records = %v", path, recs)
		}
	}
}

func TestOpenRejectsCorruptGzip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.fa.gz")
	if err := os.WriteFile(path, []byte("not gzip data"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("corrupt gzip accepted")
	}
	if _, err := Open(filepath.Join(t.TempDir(), "missing.fa")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestBaseExt(t *testing.T) {
	for _, c := range []struct{ in, want string }{
		{"reads.fastq", ".fastq"},
		{"reads.FASTQ.gz", ".fastq"},
		{"a/b/ref.fa.GZ", ".fa"},
		{"noext", ""},
		{"reads.gz", ""},
	} {
		if got := BaseExt(c.in); got != c.want {
			t.Errorf("BaseExt(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
