// Package telemetry is the engine-wide observability seam: structured trace
// spans and a lightweight metrics registry, threaded through the Pregel
// engine, the mini-MapReduce, the workflow layer and the CLIs the same way
// the simulated clock already flows.
//
// A Tracer receives Event records — paired Begin/End spans plus Instant
// markers — for every job, superstep sub-phase (compute/shuffle/barrier),
// MapReduce phase (map/shuffle/reduce), workflow op, checkpoint save/restore
// and fault-plan firing. Each event carries both the real wall-clock time
// and the simulated-cluster clock reading, so one trace shows where a run
// spends real CPU time and where the modeled cluster would spend its time.
//
// The zero value of every producer-side hook is "off": a nil Tracer or nil
// *Registry short-circuits before any event is built, so disabled telemetry
// adds zero allocations to the engine's shuffle hot path (locked by a
// benchmark fence in internal/pregel).
//
// Sinks: NewRecorder (in-memory, for tests and determinism checks),
// NewJSONLWriter (one JSON object per line), NewChromeWriter (Chrome
// trace_event JSON that loads directly in Perfetto / chrome://tracing).
package telemetry

import (
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind classifies an event: the start of a span, its end, or a point event.
type Kind uint8

const (
	// KindBegin opens a span; a matching KindEnd with the same Name closes it.
	KindBegin Kind = iota
	// KindEnd closes the most recent open span with the same Name.
	KindEnd
	// KindInstant is a point event (e.g. a fault-plan firing).
	KindInstant
)

// String returns the trace_event phase letter for the kind.
func (k Kind) String() string {
	switch k {
	case KindBegin:
		return "B"
	case KindEnd:
		return "E"
	default:
		return "i"
	}
}

// Arg is one key/value annotation on an event. Exactly one of Str or Int is
// meaningful, selected by IsStr; the helpers S and I build them.
type Arg struct {
	Key   string
	Str   string
	Int   int64
	IsStr bool
}

// I builds an integer arg.
func I(key string, v int64) Arg { return Arg{Key: key, Int: v} }

// S builds a string arg.
func S(key, v string) Arg { return Arg{Key: key, Str: v, IsStr: true} }

// Event is one structured trace record.
type Event struct {
	Kind Kind
	// Name labels the span or instant ("superstep", "compute", "op", ...).
	Name string
	// Cat groups related names ("pregel", "phase", "mr", "workflow",
	// "checkpoint", "fault").
	Cat string
	// WallNs is the real wall-clock time of the event in Unix nanoseconds.
	WallNs int64
	// SimNs is the simulated-cluster clock reading at the event, in
	// nanoseconds since pipeline start (see pregel.SimClock).
	SimNs float64
	// Args are optional annotations (step numbers, message counts, ...).
	Args []Arg
}

// Signature renders the event with timestamps stripped: kind, category,
// name and args only. Trace-determinism tests compare signature sequences
// across worker counts and partitioners.
func (e Event) Signature() string {
	var b strings.Builder
	b.WriteString(e.Kind.String())
	b.WriteByte('|')
	b.WriteString(e.Cat)
	b.WriteByte('|')
	b.WriteString(e.Name)
	for _, a := range e.Args {
		b.WriteByte('|')
		b.WriteString(a.Key)
		b.WriteByte('=')
		if a.IsStr {
			b.WriteString(a.Str)
		} else {
			b.WriteString(strconv.FormatInt(a.Int, 10))
		}
	}
	return b.String()
}

// Tracer receives events. Implementations must be safe for concurrent use;
// the engine only emits from its coordinator (between-superstep) code, but
// several graphs may share one tracer.
type Tracer interface {
	Emit(Event)
}

// Recorder is an in-memory Tracer for tests.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Emit implements Tracer.
func (r *Recorder) Emit(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Events returns a copy of everything recorded so far.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Signatures returns the timestamp-stripped signature of every recorded
// event, in emission order.
func (r *Recorder) Signatures() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	sigs := make([]string, len(r.events))
	for i, e := range r.events {
		sigs[i] = e.Signature()
	}
	return sigs
}

// Reset discards everything recorded so far.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.events = nil
	r.mu.Unlock()
}

// multiTracer fans events out to several sinks.
type multiTracer struct{ sinks []Tracer }

func (m multiTracer) Emit(e Event) {
	for _, s := range m.sinks {
		s.Emit(e)
	}
}

// Multi returns a Tracer that forwards every event to each non-nil sink.
// With zero non-nil sinks it returns nil, which producers treat as "off".
func Multi(sinks ...Tracer) Tracer {
	var live []Tracer
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	default:
		return multiTracer{sinks: live}
	}
}

// appendJSONString appends s as a JSON string literal (quoted, escaped).
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			dst = append(dst, '\\', c)
		case c == '\n':
			dst = append(dst, '\\', 'n')
		case c == '\t':
			dst = append(dst, '\\', 't')
		case c < 0x20:
			const hex = "0123456789abcdef"
			dst = append(dst, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		default:
			dst = append(dst, c)
		}
	}
	return append(dst, '"')
}

// appendArgsJSON appends the args as a JSON object in arg order, with the
// simulated-clock reading first.
func appendArgsJSON(dst []byte, simNs float64, args []Arg) []byte {
	dst = append(dst, '{')
	dst = append(dst, `"sim_us":`...)
	dst = strconv.AppendFloat(dst, simNs/1e3, 'f', 3, 64)
	for _, a := range args {
		dst = append(dst, ',')
		dst = appendJSONString(dst, a.Key)
		dst = append(dst, ':')
		if a.IsStr {
			dst = appendJSONString(dst, a.Str)
		} else {
			dst = strconv.AppendInt(dst, a.Int, 10)
		}
	}
	return append(dst, '}')
}

// sortedKeys returns m's keys in sorted order (shared by the metrics dump).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
