package telemetry

import (
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
)

// Registry is a lightweight metrics registry: named counters, gauges and
// histograms, created on first use and dumped in the Prometheus text
// exposition format. Instruments are cached by the producers that bump them
// (the engine resolves its counters once per run, not per superstep), so a
// registry adds no overhead to hot paths; a nil *Registry disables
// collection entirely.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter is a monotonically increasing int64.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable int64.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into cumulative buckets, Prometheus-style.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf is implicit
	counts []atomic.Int64
	sum    atomic.Int64 // sum of observations, in integral units
	count  atomic.Int64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			break
		}
	}
	h.sum.Add(int64(v))
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Counter returns (creating if needed) the named counter. A nil registry
// returns a throwaway instrument so callers can hold one without nil checks
// at every bump site.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return &Counter{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// DefaultDepthBuckets suit count-like distributions (queue depths, per-
// worker message loads) spanning 1 to ~1M.
var DefaultDepthBuckets = []float64{1, 10, 100, 1_000, 10_000, 100_000, 1_000_000}

// Histogram returns (creating if needed) the named histogram with the given
// upper bounds (nil = DefaultDepthBuckets). Bounds are fixed at creation;
// later calls with different bounds get the existing instrument.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultDepthBuckets
	}
	if r == nil {
		return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds))}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds))}
		r.histograms[name] = h
	}
	return h
}

// WritePrometheus dumps every instrument in the Prometheus text exposition
// format, sorted by name so output is stable for golden tests. A nil
// registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range sortedKeys(r.counters) {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, r.counters[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.gauges) {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, r.gauges[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(r.histograms) {
		h := r.histograms[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		cum := int64(0)
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			le := formatBound(b)
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			name, h.count.Load(), name, h.sum.Load(), name, h.count.Load()); err != nil {
			return err
		}
	}
	return nil
}

// formatBound renders a bucket bound the way Prometheus expects.
func formatBound(b float64) string {
	if b == math.Trunc(b) && math.Abs(b) < 1e15 {
		return fmt.Sprintf("%d", int64(b))
	}
	return fmt.Sprintf("%g", b)
}
