package telemetry

import (
	"bufio"
	"io"
	"strconv"
	"sync"
)

// JSONLWriter is a Tracer that writes one JSON object per event per line:
//
//	{"ph":"B","name":"superstep","cat":"pregel","wall_ns":...,"args":{"sim_us":...,"step":3}}
//
// The format is self-describing and greppable; cmd/tracecheck validates it.
type JSONLWriter struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer
	buf []byte
}

// NewJSONLWriter wraps w. If w is also an io.Closer, Close closes it.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	j := &JSONLWriter{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		j.c = c
	}
	return j
}

// Emit implements Tracer.
func (j *JSONLWriter) Emit(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	b := j.buf[:0]
	b = append(b, `{"ph":"`...)
	b = append(b, e.Kind.String()...)
	b = append(b, `","name":`...)
	b = appendJSONString(b, e.Name)
	b = append(b, `,"cat":`...)
	b = appendJSONString(b, e.Cat)
	b = append(b, `,"wall_ns":`...)
	b = strconv.AppendInt(b, e.WallNs, 10)
	b = append(b, `,"args":`...)
	b = appendArgsJSON(b, e.SimNs, e.Args)
	b = append(b, '}', '\n')
	j.buf = b
	j.w.Write(b)
}

// Close flushes buffered events and closes the underlying writer when it is
// closable.
func (j *JSONLWriter) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	err := j.w.Flush()
	if j.c != nil {
		if cerr := j.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
