package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestSignature(t *testing.T) {
	e := Event{Kind: KindBegin, Name: "superstep", Cat: "pregel",
		WallNs: 123456789, SimNs: 42e3,
		Args: []Arg{I("step", 3), S("job", "label")}}
	got := e.Signature()
	want := "B|pregel|superstep|step=3|job=label"
	if got != want {
		t.Fatalf("Signature() = %q, want %q", got, want)
	}
	// Timestamps must not leak into the signature.
	e2 := e
	e2.WallNs, e2.SimNs = 999, 1
	if e2.Signature() != want {
		t.Fatalf("signature depends on timestamps")
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder()
	r.Emit(Event{Kind: KindBegin, Name: "a", Cat: "c"})
	r.Emit(Event{Kind: KindEnd, Name: "a", Cat: "c", Args: []Arg{I("n", 7)}})
	sigs := r.Signatures()
	if len(sigs) != 2 || sigs[0] != "B|c|a" || sigs[1] != "E|c|a|n=7" {
		t.Fatalf("Signatures() = %v", sigs)
	}
	r.Reset()
	if len(r.Events()) != 0 {
		t.Fatalf("Reset did not clear events")
	}
}

func TestMulti(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatalf("Multi with no live sinks must be nil")
	}
	a, b := NewRecorder(), NewRecorder()
	if got := Multi(nil, a); got != Tracer(a) {
		t.Fatalf("Multi with one live sink must return it directly")
	}
	m := Multi(a, nil, b)
	m.Emit(Event{Kind: KindInstant, Name: "x", Cat: "c"})
	if len(a.Events()) != 1 || len(b.Events()) != 1 {
		t.Fatalf("Multi did not fan out: %d/%d", len(a.Events()), len(b.Events()))
	}
}

func TestJSONLWriterGolden(t *testing.T) {
	var sb strings.Builder
	w := NewJSONLWriter(&sb)
	w.Emit(Event{Kind: KindBegin, Name: "op", Cat: "workflow",
		WallNs: 1000, SimNs: 2500, Args: []Arg{S("op", "build"), I("index", 0)}})
	w.Emit(Event{Kind: KindInstant, Name: "fault", Cat: "fault",
		WallNs: 2000, SimNs: 3000, Args: []Arg{I("worker", 2)}})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	want := `{"ph":"B","name":"op","cat":"workflow","wall_ns":1000,"args":{"sim_us":2.500,"op":"build","index":0}}
{"ph":"i","name":"fault","cat":"fault","wall_ns":2000,"args":{"sim_us":3.000,"worker":2}}
`
	if sb.String() != want {
		t.Fatalf("jsonl output:\n%s\nwant:\n%s", sb.String(), want)
	}
	// Every line must round-trip as standalone JSON.
	for _, line := range strings.Split(strings.TrimSpace(sb.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
	}
}

func TestChromeWriterGolden(t *testing.T) {
	var sb strings.Builder
	w := NewChromeWriter(&sb)
	w.Emit(Event{Kind: KindBegin, Name: "superstep", Cat: "pregel",
		WallNs: 5_000_000, SimNs: 0, Args: []Arg{I("step", 0)}})
	w.Emit(Event{Kind: KindInstant, Name: "fault", Cat: "fault",
		WallNs: 5_500_000, SimNs: 100})
	w.Emit(Event{Kind: KindEnd, Name: "superstep", Cat: "pregel",
		WallNs: 6_000_000, SimNs: 200})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	var events []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		S    string         `json:"s"`
		Args map[string]any `json:"args"`
	}
	if err := json.Unmarshal([]byte(out), &events); err != nil {
		t.Fatalf("not a JSON array: %v\n%s", err, out)
	}
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	// Timestamps are µs relative to the first event.
	if events[0].Ts != 0 || events[1].Ts != 500 || events[2].Ts != 1000 {
		t.Fatalf("ts = %v %v %v, want 0 500 1000", events[0].Ts, events[1].Ts, events[2].Ts)
	}
	if events[1].S != "t" {
		t.Fatalf("instant missing s:t scope")
	}
	if events[0].S != "" || events[2].S != "" {
		t.Fatalf("span events must not carry an instant scope")
	}
	for i, e := range events {
		if e.Pid != 1 || e.Tid != 1 {
			t.Fatalf("event %d: pid/tid = %d/%d", i, e.Pid, e.Tid)
		}
		if _, ok := e.Args["sim_us"]; !ok {
			t.Fatalf("event %d: args missing sim_us", i)
		}
	}
	if events[0].Args["step"] != float64(0) {
		t.Fatalf("arg step = %v", events[0].Args["step"])
	}
	// A crash-truncated trace (no Close) must still be salvageable: the
	// format tolerates a missing trailing bracket.
	if !strings.HasPrefix(out, "[\n") || !strings.HasSuffix(out, "\n]\n") {
		t.Fatalf("unexpected array framing:\n%s", out)
	}
}

func TestJSONStringEscaping(t *testing.T) {
	var sb strings.Builder
	w := NewJSONLWriter(&sb)
	w.Emit(Event{Kind: KindBegin, Name: "we\"ird\\na\nme\t\x01", Cat: "c"})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(sb.String())), &m); err != nil {
		t.Fatalf("escaped output does not parse: %v\n%s", err, sb.String())
	}
	if m["name"] != "we\"ird\\na\nme\t\x01" {
		t.Fatalf("name round-trip = %q", m["name"])
	}
}

func TestRegistryPrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("pregel_messages_local_total").Add(10)
	r.Counter("pregel_messages_local_total").Add(5) // same instrument
	r.Gauge("pregel_vertices_active").Set(42)
	h := r.Histogram("pregel_inbox_queue_depth")
	h.Observe(0.5)
	h.Observe(7)
	h.Observe(50_000)
	h.Observe(9_999_999) // beyond the last bound: +Inf only

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE pregel_messages_local_total counter
pregel_messages_local_total 15
# TYPE pregel_vertices_active gauge
pregel_vertices_active 42
# TYPE pregel_inbox_queue_depth histogram
pregel_inbox_queue_depth_bucket{le="1"} 1
pregel_inbox_queue_depth_bucket{le="10"} 2
pregel_inbox_queue_depth_bucket{le="100"} 2
pregel_inbox_queue_depth_bucket{le="1000"} 2
pregel_inbox_queue_depth_bucket{le="10000"} 2
pregel_inbox_queue_depth_bucket{le="100000"} 3
pregel_inbox_queue_depth_bucket{le="1000000"} 3
pregel_inbox_queue_depth_bucket{le="+Inf"} 4
pregel_inbox_queue_depth_sum 10050006
pregel_inbox_queue_depth_count 4
`
	if sb.String() != want {
		t.Fatalf("prometheus dump:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestNilRegistry(t *testing.T) {
	var r *Registry
	// Nil registries hand out throwaway instruments: no panics, no effects.
	r.Counter("x").Add(1)
	r.Gauge("y").Set(2)
	r.Histogram("z").Observe(3)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Fatalf("nil registry wrote %q", sb.String())
	}
}
