package telemetry

import (
	"bufio"
	"io"
	"strconv"
	"sync"
)

// ChromeWriter is a Tracer that writes the Chrome trace_event JSON-array
// format, loadable directly in Perfetto (https://ui.perfetto.dev) and
// chrome://tracing. Spans map to "B"/"E" duration events and instants to
// "i"; timestamps are microseconds relative to the first event, and the
// simulated-cluster clock reading rides along in each event's args as
// "sim_us".
//
// The trailing "]" is written by Close, but the format explicitly tolerates
// its absence, so even a trace cut short by a crash still loads.
type ChromeWriter struct {
	mu    sync.Mutex
	w     *bufio.Writer
	c     io.Closer
	buf   []byte
	t0    int64
	first bool
}

// NewChromeWriter wraps w and writes the opening bracket immediately. If w
// is also an io.Closer, Close closes it.
func NewChromeWriter(w io.Writer) *ChromeWriter {
	cw := &ChromeWriter{w: bufio.NewWriter(w), first: true}
	if c, ok := w.(io.Closer); ok {
		cw.c = c
	}
	cw.w.WriteString("[\n")
	return cw
}

// Emit implements Tracer.
func (c *ChromeWriter) Emit(e Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.t0 == 0 {
		c.t0 = e.WallNs
	}
	b := c.buf[:0]
	if c.first {
		c.first = false
	} else {
		b = append(b, ',', '\n')
	}
	b = append(b, `{"name":`...)
	b = appendJSONString(b, e.Name)
	b = append(b, `,"cat":`...)
	b = appendJSONString(b, e.Cat)
	b = append(b, `,"ph":"`...)
	b = append(b, e.Kind.String()...)
	b = append(b, `","ts":`...)
	b = strconv.AppendFloat(b, float64(e.WallNs-c.t0)/1e3, 'f', 3, 64)
	if e.Kind == KindInstant {
		// Thread-scoped instant, rendered as a marker in the track.
		b = append(b, `,"s":"t"`...)
	}
	b = append(b, `,"pid":1,"tid":1,"args":`...)
	b = appendArgsJSON(b, e.SimNs, e.Args)
	b = append(b, '}')
	c.buf = b
	c.w.Write(b)
}

// Close terminates the JSON array, flushes, and closes the underlying
// writer when it is closable.
func (c *ChromeWriter) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.w.WriteString("\n]\n")
	err := c.w.Flush()
	if c.c != nil {
		if cerr := c.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
