package workflow

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Spec grammar — the CLI surface of the workflow layer:
//
//	spec  = op *("," op)
//	op    = name *(":" key "=" value)
//
// e.g. "build,label,merge,bubble,rebuild,link,tiptrim:minlen=40,label,merge,fasta".
// Op names come from a Registry; parameters are op-specific and parsed by
// the op's factory through Params, which rejects unknown keys. A ":"
// segment without "=" continues the previous parameter's value, so path
// values containing colons (stage:dir=/data/run:3) survive the split.

// Factory builds one configured op from spec parameters.
type Factory[S any] func(p *Params) (Op[S], error)

// Registry maps spec op names to factories. Aliases may map several names
// to one factory (e.g. "listrank" and "svlabel" to pre-configured label
// ops).
type Registry[S any] map[string]Factory[S]

// Names lists the registered op names, sorted.
func (r Registry[S]) Names() []string {
	names := make([]string, 0, len(r))
	for n := range r {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Parse compiles a spec string into a validated plan whose initial live
// artifacts are initial. Errors name the offending op and parameter.
func Parse[S any](reg Registry[S], spec string, initial ...Artifact) (*Plan[S], error) {
	plan := NewPlan[S](initial...)
	toks := strings.Split(spec, ",")
	n := 0
	for _, tok := range toks {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		fields := strings.Split(tok, ":")
		name := strings.TrimSpace(fields[0])
		fac, ok := reg[name]
		if !ok {
			return nil, fmt.Errorf("workflow: unknown op %q (have %s)", name, strings.Join(reg.Names(), ", "))
		}
		params := &Params{op: name, vals: map[string]string{}}
		lastKey := ""
		for _, kv := range fields[1:] {
			key, val, ok := strings.Cut(kv, "=")
			if !ok || strings.TrimSpace(key) == "" {
				// No "=": this segment is the tail of a value that itself
				// contained a colon.
				if lastKey == "" {
					return nil, fmt.Errorf("workflow: op %q: malformed parameter %q (want key=value)", name, kv)
				}
				params.vals[lastKey] += ":" + kv
				continue
			}
			key = strings.TrimSpace(key)
			if _, dup := params.vals[key]; dup {
				return nil, fmt.Errorf("workflow: op %q: duplicate parameter %q", name, key)
			}
			params.vals[key] = strings.TrimSpace(val)
			lastKey = key
		}
		op, err := fac(params)
		if err != nil {
			return nil, fmt.Errorf("workflow: op %q: %w", name, err)
		}
		if err := params.unused(); err != nil {
			return nil, fmt.Errorf("workflow: op %q: %w", name, err)
		}
		plan.Then(op)
		n++
	}
	if n == 0 {
		return nil, fmt.Errorf("workflow: empty spec")
	}
	if err := plan.Err(); err != nil {
		return nil, err
	}
	return plan, nil
}

// Params carries one op's spec parameters into its factory, with typed
// accessors that fall back to a default when the key is absent. Keys never
// read by the factory are reported as errors by Parse, so typos fail
// loudly instead of silently running with defaults.
type Params struct {
	op   string
	vals map[string]string
	used []string
	err  error
}

func (p *Params) get(key string) (string, bool) {
	v, ok := p.vals[key]
	if ok {
		p.used = append(p.used, key)
	}
	return v, ok
}

func (p *Params) fail(key, val, want string) {
	if p.err == nil {
		p.err = fmt.Errorf("parameter %s=%q: want %s", key, val, want)
	}
}

// Str returns the string parameter key, or def when absent.
func (p *Params) Str(key, def string) string {
	if v, ok := p.get(key); ok {
		return v
	}
	return def
}

// Int returns the integer parameter key, or def when absent.
func (p *Params) Int(key string, def int) int {
	v, ok := p.get(key)
	if !ok {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		p.fail(key, v, "an integer")
		return def
	}
	return n
}

// Uint32 returns the unsigned parameter key, or def when absent.
func (p *Params) Uint32(key string, def uint32) uint32 {
	v, ok := p.get(key)
	if !ok {
		return def
	}
	n, err := strconv.ParseUint(v, 10, 32)
	if err != nil {
		p.fail(key, v, "a non-negative integer")
		return def
	}
	return uint32(n)
}

// Float returns the float parameter key, or def when absent.
func (p *Params) Float(key string, def float64) float64 {
	v, ok := p.get(key)
	if !ok {
		return def
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		p.fail(key, v, "a number")
		return def
	}
	return f
}

// Err surfaces the first malformed-value error; factories should return it
// after reading their parameters.
func (p *Params) Err() error { return p.err }

// unused reports keys the factory never read.
func (p *Params) unused() error {
	for key := range p.vals {
		seen := false
		for _, u := range p.used {
			if u == key {
				seen = true
				break
			}
		}
		if !seen {
			return fmt.Errorf("unknown parameter %q", key)
		}
	}
	return nil
}
