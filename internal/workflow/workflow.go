// Package workflow is the composable job layer the paper positions as its
// headline contribution (§II, §IV): assembly operations are not stages of
// one hard-coded pipeline but first-class, typed building blocks that users
// chain into their own workflows. An Op declares the artifacts it needs,
// produces and consumes; a Plan validates the artifact flow at build time
// (before any compute) and then runs the ops in order, threading one shared
// execution environment — simulated clock, checkpoint store, fault plan —
// through every job so checkpoint/resume and fault injection keep working
// across arbitrary user compositions.
//
// The package is deliberately generic over the state type S: the engine
// knows nothing about assembly. The op catalog for the assembler (BuildDBG,
// Label, Merge, BubblePop, TipTrim, ...) lives in internal/core, which
// implements Op[core.State] for each operation; that is what lets
// core.Assemble itself be a thin canned plan without an import cycle.
//
// Between two ops the handoff is in memory by default (the Pregel+ convert
// extension); inserting a staging op (core.StageOp) at a seam dumps the
// live artifacts to a shardio store and reloads them, which is how the
// paper positions HDFS between jobs of different systems.
package workflow

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"ppaassembler/internal/pregel"
	"ppaassembler/internal/telemetry"
	"ppaassembler/internal/transport"
)

// Artifact names a typed value flowing between operations (reads, the
// segment graph, a contig set, ...). The planner tracks which artifacts are
// live to reject ill-typed compositions before any compute runs.
type Artifact string

// Info is an operation's static type signature: its catalog name, the
// artifacts that must be live before it runs, the artifacts it makes live,
// and the artifacts it invalidates.
type Info struct {
	Name string
	// Needs must all be live when the op runs.
	Needs []Artifact
	// NeedsAny requires at least one of these to be live (for ops like a
	// staging seam that operate on whichever artifacts exist).
	NeedsAny []Artifact
	// Produces become live after the op.
	Produces []Artifact
	// Consumes become dead after the op (checked against later Needs).
	Consumes []Artifact
}

// Op is one assembly operation over a workflow state S: a typed job (or a
// short fixed sequence of jobs) with per-op configuration carried on the
// implementing struct.
type Op[S any] interface {
	Info() Info
	Run(env *Env, st *S) error
}

// Env is the shared execution environment a plan threads through every op:
// the engine parameters plus the cross-job state (simulated clock,
// checkpoint store, fault plan) that must be shared for end-to-end time
// accounting, crash schedules and resume to span the whole composition.
type Env struct {
	// Workers is the number of logical Pregel workers, shared by every op.
	Workers int
	// Parallel runs engine workers and MapReduce tasks on goroutines.
	Parallel bool
	// Cost parameterizes the simulated cluster (zero value = default).
	Cost pregel.CostModel
	// Partitioner is the vertex-placement strategy every op builds its
	// graphs with (nil = hash). Ops may replace it mid-plan (see
	// core.PartitionOp); graphs already built keep the placement they were
	// constructed with.
	Partitioner pregel.Partitioner
	// Transport is the message transport every op's graphs shuffle over
	// (pregel.Config.Transport). Nil keeps the in-memory loopback shuffle;
	// a TCP transport makes every op's superstep shuffle cross real worker
	// processes. Output is byte-identical either way.
	Transport transport.Transport
	// MessageBytes is the charged wire size of one engine message (0 =
	// pregel.DefaultMessageBytes). The assembler sets its Msg record's
	// actual wire size here so the simulated network load reflects the
	// traffic the paper's cluster would carry.
	MessageBytes int

	// Overlap enables the engine's overlapped compute/delivery mode
	// (pregel.Config.Overlap) for every op.
	Overlap bool

	// Repartition enables online adaptive repartitioning
	// (pregel.Config.Repartition) for every op. normalize wraps Partitioner
	// in one shared pregel.DynamicPartitioner, so the routing table a job
	// learns carries into every later job of the plan: placement improves
	// across the composition, not just within one job.
	Repartition *pregel.RepartitionPolicy

	// CheckpointEvery, Checkpointer, Faults and Resume configure Pregel-
	// style fault tolerance exactly as on pregel.Config; the plan passes
	// them to every op so one store and one crash schedule span the run.
	CheckpointEvery int
	Checkpointer    pregel.Checkpointer
	Faults          *pregel.FaultPlan
	Resume          bool
	// DeltaCheckpoints enables incremental checkpoints
	// (pregel.Config.DeltaCheckpoints) for every op.
	DeltaCheckpoints bool

	// Clock is the simulated-cluster clock every op charges. Plan.Run
	// installs a fresh one when nil.
	Clock *pregel.SimClock

	// Tracer, when non-nil, receives telemetry spans from every op and
	// every engine/MapReduce job the ops start: Plan.Run brackets the plan
	// and each op with spans, and Config/MRConfig thread the tracer down
	// to the engine. Ops may install or wrap it mid-plan (core.TraceOp is
	// how the `trace:` spec op turns tracing on for the rest of a plan).
	Tracer telemetry.Tracer
	// Metrics, when non-nil, collects engine and workflow counters.
	Metrics *telemetry.Registry
	// Warn, when non-nil, receives the engine's non-fatal diagnostics
	// (pregel.Config.Warn) from every op. Nil routes each distinct message
	// to stderr once per process.
	Warn func(msg string)

	prefix  string         // current op's deterministic job-key prefix
	closers []func() error // sinks to flush/close when the plan finishes
}

// normalize fills the cross-job state exactly once per run.
func (e *Env) normalize() error {
	if err := e.Config().Validate(); err != nil {
		return err
	}
	if err := e.MRConfig().Validate(); err != nil {
		return err
	}
	if e.Clock == nil {
		e.Clock = pregel.NewSimClock(e.Cost)
	}
	if e.Repartition != nil {
		// One dynamic wrapper for the whole plan (AsDynamic is idempotent):
		// every op's graphs share the routing table, so migrations committed
		// by one job seed the next job's placement.
		e.Partitioner = pregel.AsDynamic(e.Partitioner)
	}
	if e.CheckpointEvery > 0 && e.Checkpointer == nil {
		// One shared store for every op, so job keys are reserved in plan
		// order (which is what Resume relies on).
		e.Checkpointer = pregel.NewMemCheckpointer()
	}
	return nil
}

// Config renders the environment as an engine configuration for the
// current op, including its deterministic job-key prefix.
func (e *Env) Config() pregel.Config {
	return pregel.Config{
		Workers: e.Workers, Parallel: e.Parallel, Overlap: e.Overlap, Cost: e.Cost,
		Partitioner: e.Partitioner, Transport: e.Transport, MessageBytes: e.MessageBytes,
		Repartition:     e.Repartition,
		CheckpointEvery: e.CheckpointEvery, Checkpointer: e.Checkpointer,
		DeltaCheckpoints: e.DeltaCheckpoints,
		Faults:           e.Faults, Resume: e.Resume,
		JobPrefix: e.prefix,
		Tracer:    e.Tracer, Metrics: e.Metrics, Warn: e.Warn,
	}
}

// MRConfig renders the environment as a mini-MapReduce configuration.
// MapReduce jobs recover by lineage, not checkpoint, so only the crash
// schedule is threaded through. The partitioner deliberately is not:
// MRConfig.Partitioner reinterprets keyHash as a routing-ID projection,
// which only call sites with vertex-ID keys opt into explicitly (the DBG
// build); generic ops keep hashed grouping so their reducer assignment
// stays placement-invariant.
func (e *Env) MRConfig() pregel.MRConfig {
	return pregel.MRConfig{
		Workers: e.Workers, Parallel: e.Parallel, Faults: e.Faults,
		Name: strings.TrimSuffix(e.prefix, "."), Tracer: e.Tracer, Metrics: e.Metrics,
	}
}

// JobPrefix is the deterministic job-key prefix of the op being run
// (e.g. "s03.tiptrim."): plan position plus op name. Ops prepend it —
// via pregel.Config.JobPrefix or Graph.SetJobPrefix — to every job they
// start, so checkpoint keys are stable and self-describing for any
// composition, and a re-executed plan re-reserves identical keys on Resume.
func (e *Env) JobPrefix() string { return e.prefix }

// AddCloser registers fn to run when the enclosing Plan.Run finishes,
// success or failure — how trace/metrics sinks opened mid-plan (by
// core.TraceOp) get flushed exactly once. Closers run in registration
// order after the last op; their first error surfaces only when the plan
// itself succeeded.
func (e *Env) AddCloser(fn func() error) { e.closers = append(e.closers, fn) }

// runClosers drains the registered closers, returning the first error.
func (e *Env) runClosers() error {
	var first error
	for _, fn := range e.closers {
		if err := fn(); err != nil && first == nil {
			first = err
		}
	}
	e.closers = nil
	return first
}

// Plan is an ordered composition of ops plus the artifact-flow validation
// state. Build one with NewPlan, chain ops with Then (validation errors
// accumulate and surface on Run or Err), then execute with Run.
type Plan[S any] struct {
	ops   []Op[S]
	live  map[Artifact]bool
	specs []string
	err   error
}

// NewPlan starts an empty plan whose initial live artifacts are initial
// (e.g. the sharded reads a CLI loaded from disk).
func NewPlan[S any](initial ...Artifact) *Plan[S] {
	p := &Plan[S]{live: map[Artifact]bool{}}
	for _, a := range initial {
		p.live[a] = true
	}
	return p
}

// Then appends op after validating its Info against the artifacts live at
// this point of the plan. A failed validation poisons the plan; further
// Then calls are no-ops and Run/Err report the first error.
func (p *Plan[S]) Then(op Op[S]) *Plan[S] {
	if p.err != nil {
		return p
	}
	info := op.Info()
	for _, need := range info.Needs {
		if !p.live[need] {
			p.err = fmt.Errorf("workflow: op %d (%s) needs %q, but the plan so far only provides %s",
				len(p.ops), info.Name, need, describeLive(p.live))
			return p
		}
	}
	if len(info.NeedsAny) > 0 {
		ok := false
		for _, need := range info.NeedsAny {
			if p.live[need] {
				ok = true
				break
			}
		}
		if !ok {
			p.err = fmt.Errorf("workflow: op %d (%s) needs one of %v, but the plan so far only provides %s",
				len(p.ops), info.Name, info.NeedsAny, describeLive(p.live))
			return p
		}
	}
	for _, a := range info.Consumes {
		delete(p.live, a)
	}
	for _, a := range info.Produces {
		p.live[a] = true
	}
	p.ops = append(p.ops, op)
	p.specs = append(p.specs, info.Name)
	return p
}

// Err returns the first validation error, if any.
func (p *Plan[S]) Err() error { return p.err }

// Ops returns the validated op sequence.
func (p *Plan[S]) Ops() []Op[S] { return p.ops }

// String renders the plan as a spec-like op listing.
func (p *Plan[S]) String() string { return strings.Join(p.specs, ",") }

// Provides reports whether the plan's final state has artifact a live —
// how a caller checks, before running anything, that a user composition
// ends in the output it wants to write.
func (p *Plan[S]) Provides(a Artifact) bool { return p.err == nil && p.live[a] }

// Run executes the plan over st: it validates and normalizes env, then
// runs every op in order with a deterministic job-key prefix derived from
// the op's plan position, so arbitrary compositions checkpoint and resume
// exactly like the canned pipelines.
func (p *Plan[S]) Run(env *Env, st *S) (err error) {
	if p.err != nil {
		return p.err
	}
	if len(p.ops) == 0 {
		return fmt.Errorf("workflow: empty plan")
	}
	if err := env.normalize(); err != nil {
		return err
	}
	// Sinks registered by ops (TraceOp) must flush even when a later op
	// fails — a truncated trace of a failed run is exactly when one wants
	// to look at it.
	defer func() {
		if cerr := env.runClosers(); err == nil {
			err = cerr
		}
	}()
	if env.Tracer != nil {
		env.Tracer.Emit(telemetry.Event{
			Kind: telemetry.KindBegin, Name: "plan", Cat: "workflow",
			WallNs: time.Now().UnixNano(), SimNs: env.Clock.Ns(),
			Args: []telemetry.Arg{telemetry.I("ops", int64(len(p.ops)))},
		})
		defer func() {
			env.Tracer.Emit(telemetry.Event{
				Kind: telemetry.KindEnd, Name: "plan", Cat: "workflow",
				WallNs: time.Now().UnixNano(), SimNs: env.Clock.Ns(),
			})
		}()
	}
	for i, op := range p.ops {
		name := op.Info().Name
		env.prefix = fmt.Sprintf("s%02d.%s.", i, sanitizeName(name))
		// Checked per op, not once: an op may install the tracer mid-plan.
		// The End goes to the tracer that saw the Begin — an op that
		// installs a sink (TraceOp) must not open that sink's stream with
		// its own unbalanced End span.
		tr := env.Tracer
		if tr != nil {
			tr.Emit(telemetry.Event{
				Kind: telemetry.KindBegin, Name: "op", Cat: "workflow",
				WallNs: time.Now().UnixNano(), SimNs: env.Clock.Ns(),
				Args: []telemetry.Arg{telemetry.S("op", name), telemetry.I("index", int64(i))},
			})
		}
		opErr := op.Run(env, st)
		if tr != nil {
			tr.Emit(telemetry.Event{
				Kind: telemetry.KindEnd, Name: "op", Cat: "workflow",
				WallNs: time.Now().UnixNano(), SimNs: env.Clock.Ns(),
				Args: []telemetry.Arg{telemetry.S("op", name)},
			})
		}
		if env.Metrics != nil {
			env.Metrics.Counter("workflow_ops_total").Add(1)
		}
		if opErr != nil {
			return fmt.Errorf("workflow: op %d (%s): %w", i, name, opErr)
		}
	}
	env.prefix = ""
	return nil
}

// describeLive lists live artifacts for error messages, deterministically.
func describeLive(live map[Artifact]bool) string {
	if len(live) == 0 {
		return "nothing"
	}
	names := make([]string, 0, len(live))
	for a := range live {
		names = append(names, string(a))
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// sanitizeName keeps job-key prefixes filename-safe regardless of how an
// op names itself.
func sanitizeName(name string) string {
	clean := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_':
			clean = append(clean, c)
		default:
			clean = append(clean, '_')
		}
	}
	return string(clean)
}
