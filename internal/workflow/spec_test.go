package workflow

import (
	"fmt"
	"strings"
	"testing"
)

// specOp is a parameterized fake for parser tests.
type specOp struct {
	fakeOp
	n   int
	dir string
}

func testRegistry() Registry[fakeState] {
	return Registry[fakeState]{
		"build": func(p *Params) (Op[fakeState], error) {
			return specOp{fakeOp: fakeOp{name: "build", produces: []Artifact{"graph"}},
				n: p.Int("k", 21)}, p.Err()
		},
		"dump": func(p *Params) (Op[fakeState], error) {
			return specOp{fakeOp: fakeOp{name: "dump"}, dir: p.Str("dir", "")}, p.Err()
		},
		"trim": func(p *Params) (Op[fakeState], error) {
			n := p.Int("minlen", 80)
			if n < 0 {
				return nil, fmt.Errorf("parameter minlen=%d: must not be negative", n)
			}
			return specOp{fakeOp: fakeOp{name: "trim", needs: []Artifact{"graph"}}, n: n}, p.Err()
		},
	}
}

func TestParseSpec(t *testing.T) {
	plan, err := Parse(testRegistry(), "build:k=15, trim:minlen=40,trim")
	if err != nil {
		t.Fatal(err)
	}
	ops := plan.Ops()
	if len(ops) != 3 {
		t.Fatalf("parsed %d ops, want 3", len(ops))
	}
	if got := ops[0].(specOp).n; got != 15 {
		t.Errorf("build k = %d, want 15", got)
	}
	if got := ops[1].(specOp).n; got != 40 {
		t.Errorf("trim minlen = %d, want 40", got)
	}
	if got := ops[2].(specOp).n; got != 80 {
		t.Errorf("default trim minlen = %d, want 80", got)
	}
}

// TestParseSpecColonInValue: a parameter segment without "=" continues the
// previous value, so paths with colons pass through the grammar.
func TestParseSpecColonInValue(t *testing.T) {
	plan, err := Parse(testRegistry(), "dump:dir=/data/run:3,build")
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Ops()[0].(specOp).dir; got != "/data/run:3" {
		t.Errorf("dir = %q, want %q", got, "/data/run:3")
	}
	// A tail segment with no preceding parameter is still malformed.
	if _, err := Parse(testRegistry(), "dump:lonetail,build"); err == nil {
		t.Error("value tail without a parameter accepted")
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		spec, want string
	}{
		{"frobnicate", `unknown op "frobnicate"`},
		{"build:k", "malformed parameter"},
		{"build:k=3:k=4", "duplicate parameter"},
		{"build:zap=1", `unknown parameter "zap"`},
		{"build:k=banana", "want an integer"},
		{"trim:minlen=-4", "must not be negative"},
		{"", "empty spec"},
		{" , ", "empty spec"},
		{"trim", `needs "graph"`}, // type validation reaches the planner
	}
	for _, c := range cases {
		_, err := Parse(testRegistry(), c.spec)
		if err == nil {
			t.Errorf("spec %q accepted", c.spec)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("spec %q: error %q does not contain %q", c.spec, err, c.want)
		}
	}
}

func TestRegistryNamesSorted(t *testing.T) {
	names := testRegistry().Names()
	if len(names) != 3 || names[0] != "build" || names[1] != "dump" || names[2] != "trim" {
		t.Errorf("Names() = %v", names)
	}
}
