package workflow

import (
	"errors"
	"strings"
	"testing"

	"ppaassembler/internal/pregel"
)

// fakeState records what the fake ops observed at run time.
type fakeState struct {
	ran      []string
	prefixes []string
	clocks   []*pregel.SimClock
}

// fakeOp is a configurable catalog entry for engine tests.
type fakeOp struct {
	name     string
	needs    []Artifact
	produces []Artifact
	consumes []Artifact
	fail     error
}

func (o fakeOp) Info() Info {
	return Info{Name: o.name, Needs: o.needs, Produces: o.produces, Consumes: o.consumes}
}

func (o fakeOp) Run(env *Env, st *fakeState) error {
	st.ran = append(st.ran, o.name)
	st.prefixes = append(st.prefixes, env.JobPrefix())
	st.clocks = append(st.clocks, env.Clock)
	return o.fail
}

func TestPlanValidatesArtifactFlow(t *testing.T) {
	p := NewPlan[fakeState](Artifact("reads")).
		Then(fakeOp{name: "build", needs: []Artifact{"reads"}, produces: []Artifact{"graph"}}).
		Then(fakeOp{name: "label", needs: []Artifact{"graph"}, produces: []Artifact{"labels"}}).
		Then(fakeOp{name: "merge", needs: []Artifact{"graph", "labels"},
			consumes: []Artifact{"labels"}, produces: []Artifact{"contigs"}})
	if err := p.Err(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	if !p.Provides("contigs") || !p.Provides("graph") {
		t.Error("plan should end with contigs and graph live")
	}
	if p.Provides("labels") {
		t.Error("labels were consumed by merge but still reported live")
	}
	if got := p.String(); got != "build,label,merge" {
		t.Errorf("plan spec = %q", got)
	}
}

func TestPlanRejectsMissingArtifact(t *testing.T) {
	p := NewPlan[fakeState](Artifact("reads")).
		Then(fakeOp{name: "build", needs: []Artifact{"reads"}, produces: []Artifact{"graph"}}).
		Then(fakeOp{name: "merge", needs: []Artifact{"graph", "labels"}})
	err := p.Err()
	if err == nil {
		t.Fatal("plan with missing artifact accepted")
	}
	for _, want := range []string{"merge", `"labels"`, "graph, reads"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %s", err, want)
		}
	}
	// The poisoned plan must refuse to run and ignore further ops.
	p.Then(fakeOp{name: "late"})
	st := &fakeState{}
	if runErr := p.Run(&Env{Workers: 2}, st); !errors.Is(runErr, err) && runErr == nil {
		t.Fatal("poisoned plan ran anyway")
	}
	if len(st.ran) != 0 {
		t.Errorf("poisoned plan executed ops: %v", st.ran)
	}
}

// anyOp exercises Info.NeedsAny.
type anyOp struct{ fakeOp }

func (o anyOp) Info() Info {
	i := o.fakeOp.Info()
	i.NeedsAny = []Artifact{"graph", "contigs"}
	return i
}

func TestPlanNeedsAny(t *testing.T) {
	if err := NewPlan[fakeState](Artifact("contigs")).Then(anyOp{}).Err(); err != nil {
		t.Errorf("NeedsAny with one live member rejected: %v", err)
	}
	err := NewPlan[fakeState](Artifact("reads")).Then(anyOp{fakeOp{name: "stage"}}).Err()
	if err == nil {
		t.Fatal("NeedsAny with no live member accepted")
	}
	if !strings.Contains(err.Error(), "needs one of") {
		t.Errorf("error %q does not describe the any-of requirement", err)
	}
}

func TestPlanRejectsConsumedArtifact(t *testing.T) {
	p := NewPlan[fakeState](Artifact("graph"), Artifact("labels")).
		Then(fakeOp{name: "stage", consumes: []Artifact{"labels"}}).
		Then(fakeOp{name: "merge", needs: []Artifact{"graph", "labels"}})
	if p.Err() == nil {
		t.Fatal("plan reading a consumed artifact accepted")
	}
}

func TestPlanRunAssignsDeterministicJobPrefixes(t *testing.T) {
	p := NewPlan[fakeState]().
		Then(fakeOp{name: "build"}).
		Then(fakeOp{name: "tip trim!"})
	st := &fakeState{}
	if err := p.Run(&Env{Workers: 2}, st); err != nil {
		t.Fatal(err)
	}
	want := []string{"s00.build.", "s01.tip_trim_."}
	for i, w := range want {
		if st.prefixes[i] != w {
			t.Errorf("op %d prefix = %q, want %q", i, st.prefixes[i], w)
		}
	}
}

func TestPlanRunNormalizesEnv(t *testing.T) {
	env := &Env{Workers: 3, CheckpointEvery: 2}
	st := &fakeState{}
	p := NewPlan[fakeState]().Then(fakeOp{name: "a"}).Then(fakeOp{name: "b"})
	if err := p.Run(env, st); err != nil {
		t.Fatal(err)
	}
	if env.Clock == nil {
		t.Error("Run did not install a clock")
	}
	if env.Checkpointer == nil {
		t.Error("Run did not install a checkpoint store for CheckpointEvery > 0")
	}
	if st.clocks[0] == nil || st.clocks[0] != st.clocks[1] {
		t.Error("ops did not share one clock")
	}
	cfg := env.Config()
	if cfg.Workers != 3 || cfg.CheckpointEvery != 2 || cfg.Checkpointer == nil {
		t.Errorf("Config() lost environment fields: %+v", cfg)
	}
	mr := env.MRConfig()
	if mr.Workers != 3 {
		t.Errorf("MRConfig().Workers = %d", mr.Workers)
	}
}

func TestPlanRunValidatesConfigEarly(t *testing.T) {
	for _, env := range []*Env{
		{Workers: 0},
		{Workers: -4},
		{Workers: 2, CheckpointEvery: -1},
		{Workers: 2, Resume: true},
	} {
		st := &fakeState{}
		err := NewPlan[fakeState]().Then(fakeOp{name: "a"}).Run(env, st)
		if err == nil {
			t.Errorf("env %+v accepted", env)
		}
		if len(st.ran) != 0 {
			t.Errorf("env %+v: ops ran despite invalid config", env)
		}
	}
}

func TestPlanRunWrapsOpErrors(t *testing.T) {
	boom := errors.New("boom")
	p := NewPlan[fakeState]().
		Then(fakeOp{name: "ok"}).
		Then(fakeOp{name: "bad", fail: boom})
	err := p.Run(&Env{Workers: 1}, &fakeState{})
	if !errors.Is(err, boom) {
		t.Fatalf("op error not propagated: %v", err)
	}
	if !strings.Contains(err.Error(), "op 1 (bad)") {
		t.Errorf("error %q does not name the failing op", err)
	}
}

func TestEmptyPlanErrors(t *testing.T) {
	if err := NewPlan[fakeState]().Run(&Env{Workers: 1}, &fakeState{}); err == nil {
		t.Fatal("empty plan ran")
	}
}
