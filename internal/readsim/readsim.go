// Package readsim simulates short-read sequencing, standing in for the ART
// simulator the paper uses to produce reads from reference sequences
// (Table I: 100–155 bp reads at high coverage). It models the error
// processes the assembler's error-correction operations target: base
// substitutions (tips and bubbles in the DBG) and undetermined 'N' bases
// (read splitting during DBG construction), with reads drawn uniformly from
// both strands.
package readsim

import (
	"fmt"
	"math/rand"

	"ppaassembler/internal/dna"
)

// Profile configures the simulated sequencer.
type Profile struct {
	// ReadLen is the read length in bases.
	ReadLen int
	// Coverage is the mean per-base coverage (total read bases ≈
	// Coverage × reference length).
	Coverage float64
	// SubRate is the per-base substitution error probability.
	SubRate float64
	// NRate is the per-base probability of an undetermined 'N'.
	NRate float64
	// Seed makes simulation deterministic.
	Seed int64
}

// Validate checks the profile.
func (p Profile) Validate() error {
	if p.ReadLen <= 0 {
		return fmt.Errorf("readsim: non-positive read length %d", p.ReadLen)
	}
	if p.Coverage <= 0 {
		return fmt.Errorf("readsim: non-positive coverage %g", p.Coverage)
	}
	if p.SubRate < 0 || p.SubRate > 1 || p.NRate < 0 || p.NRate > 1 {
		return fmt.Errorf("readsim: rates must be in [0,1]")
	}
	return nil
}

// Simulate draws reads from the reference until the target coverage is
// reached. Each read samples a uniform start position and a uniform strand;
// strand-2 reads are reverse complements, read in the 5'→3' direction
// exactly as §III describes.
func Simulate(ref dna.Seq, p Profile) ([]string, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if ref.Len() < p.ReadLen {
		return nil, fmt.Errorf("readsim: reference (%d bp) shorter than read length %d", ref.Len(), p.ReadLen)
	}
	r := rand.New(rand.NewSource(p.Seed))
	n := int(p.Coverage * float64(ref.Len()) / float64(p.ReadLen))
	if n < 1 {
		n = 1
	}
	reads := make([]string, 0, n)
	buf := make([]byte, p.ReadLen)
	for i := 0; i < n; i++ {
		pos := r.Intn(ref.Len() - p.ReadLen + 1)
		rc := r.Intn(2) == 1
		reads = append(reads, drawRead(r, ref, pos, rc, p, buf))
	}
	return reads, nil
}

// drawRead samples one read of p.ReadLen bases starting at pos (rc = read the
// reverse complement 5'→3' from the other strand), applying the profile's
// substitution and N error processes.
func drawRead(r *rand.Rand, ref dna.Seq, pos int, rc bool, p Profile, buf []byte) string {
	for j := 0; j < p.ReadLen; j++ {
		var b dna.Base
		if rc {
			b = ref.At(pos + p.ReadLen - 1 - j).Complement()
		} else {
			b = ref.At(pos + j)
		}
		switch {
		case p.NRate > 0 && r.Float64() < p.NRate:
			buf[j] = 'N'
			continue
		case p.SubRate > 0 && r.Float64() < p.SubRate:
			b = (b + dna.Base(1+r.Intn(3))) & 3 // any different base
		}
		buf[j] = b.Byte()
	}
	return string(buf)
}

// PairProfile configures paired-end simulation: fragments of normally
// distributed length are drawn from either strand and sequenced from both
// ends inward (Illumina FR orientation), each mate with the embedded
// Profile's length and error processes.
type PairProfile struct {
	Profile
	// InsertMean is the mean outer fragment length (R1 start to R2 start,
	// end to end).
	InsertMean float64
	// InsertSD is the fragment-length standard deviation.
	InsertSD float64
}

// Pair is one simulated read pair. Both mates are given 5'→3'; R2 reads the
// opposite strand of the fragment, so on the reference the pair faces
// forward-reverse.
type Pair struct {
	R1, R2 string
}

// Validate checks the pair profile.
func (p PairProfile) Validate() error {
	if err := p.Profile.Validate(); err != nil {
		return err
	}
	if p.InsertMean < float64(p.ReadLen) {
		return fmt.Errorf("readsim: insert mean %g below read length %d", p.InsertMean, p.ReadLen)
	}
	if p.InsertSD < 0 {
		return fmt.Errorf("readsim: negative insert s.d. %g", p.InsertSD)
	}
	return nil
}

// SimulatePairs draws read pairs until Coverage counts the bases of both
// mates. Each fragment samples a uniform start, a normal length (clamped to
// [ReadLen, reference length]) and a uniform strand; the mates are the
// fragment's two ends read inward.
func SimulatePairs(ref dna.Seq, p PairProfile) ([]Pair, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if float64(ref.Len()) < p.InsertMean {
		return nil, fmt.Errorf("readsim: reference (%d bp) shorter than insert mean %g", ref.Len(), p.InsertMean)
	}
	r := rand.New(rand.NewSource(p.Seed))
	n := int(p.Coverage * float64(ref.Len()) / float64(2*p.ReadLen))
	if n < 1 {
		n = 1
	}
	pairs := make([]Pair, 0, n)
	buf := make([]byte, p.ReadLen)
	for i := 0; i < n; i++ {
		insert := int(p.InsertMean + r.NormFloat64()*p.InsertSD)
		if insert < p.ReadLen {
			insert = p.ReadLen
		}
		if insert > ref.Len() {
			insert = ref.Len()
		}
		pos := r.Intn(ref.Len() - insert + 1)
		// The fragment [pos, pos+insert) comes from either strand; its
		// "first" end is the left end on the forward strand, the right end
		// otherwise.
		flip := r.Intn(2) == 1
		var pair Pair
		if !flip {
			pair.R1 = drawRead(r, ref, pos, false, p.Profile, buf)
			pair.R2 = drawRead(r, ref, pos+insert-p.ReadLen, true, p.Profile, buf)
		} else {
			pair.R1 = drawRead(r, ref, pos+insert-p.ReadLen, true, p.Profile, buf)
			pair.R2 = drawRead(r, ref, pos, false, p.Profile, buf)
		}
		pairs = append(pairs, pair)
	}
	return pairs, nil
}

// Interleave flattens pairs into the conventional interleaved order
// (R1, R2, R1, R2, ...), the layout cmd/readsim writes and the scaffolder
// reads back.
func Interleave(pairs []Pair) []string {
	out := make([]string, 0, 2*len(pairs))
	for _, p := range pairs {
		out = append(out, p.R1, p.R2)
	}
	return out
}

// PaperProfile returns the read profile used for the named paper dataset
// stand-in (read lengths follow Table I's ordering: ~100 bp for the
// chromosome datasets, longer for Bombus impatiens).
func PaperProfile(dataset string, seed int64) Profile {
	p := Profile{ReadLen: 100, Coverage: 15, SubRate: 0.005, NRate: 0.0005, Seed: seed}
	if dataset == "sim-BI" {
		p.ReadLen = 124
	}
	return p
}
