// Package readsim simulates short-read sequencing, standing in for the ART
// simulator the paper uses to produce reads from reference sequences
// (Table I: 100–155 bp reads at high coverage). It models the error
// processes the assembler's error-correction operations target: base
// substitutions (tips and bubbles in the DBG) and undetermined 'N' bases
// (read splitting during DBG construction), with reads drawn uniformly from
// both strands.
package readsim

import (
	"fmt"
	"math/rand"

	"ppaassembler/internal/dna"
)

// Profile configures the simulated sequencer.
type Profile struct {
	// ReadLen is the read length in bases.
	ReadLen int
	// Coverage is the mean per-base coverage (total read bases ≈
	// Coverage × reference length).
	Coverage float64
	// SubRate is the per-base substitution error probability.
	SubRate float64
	// NRate is the per-base probability of an undetermined 'N'.
	NRate float64
	// Seed makes simulation deterministic.
	Seed int64
}

// Validate checks the profile.
func (p Profile) Validate() error {
	if p.ReadLen <= 0 {
		return fmt.Errorf("readsim: non-positive read length %d", p.ReadLen)
	}
	if p.Coverage <= 0 {
		return fmt.Errorf("readsim: non-positive coverage %g", p.Coverage)
	}
	if p.SubRate < 0 || p.SubRate > 1 || p.NRate < 0 || p.NRate > 1 {
		return fmt.Errorf("readsim: rates must be in [0,1]")
	}
	return nil
}

// Simulate draws reads from the reference until the target coverage is
// reached. Each read samples a uniform start position and a uniform strand;
// strand-2 reads are reverse complements, read in the 5'→3' direction
// exactly as §III describes.
func Simulate(ref dna.Seq, p Profile) ([]string, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if ref.Len() < p.ReadLen {
		return nil, fmt.Errorf("readsim: reference (%d bp) shorter than read length %d", ref.Len(), p.ReadLen)
	}
	r := rand.New(rand.NewSource(p.Seed))
	n := int(p.Coverage * float64(ref.Len()) / float64(p.ReadLen))
	if n < 1 {
		n = 1
	}
	reads := make([]string, 0, n)
	buf := make([]byte, p.ReadLen)
	for i := 0; i < n; i++ {
		pos := r.Intn(ref.Len() - p.ReadLen + 1)
		rc := r.Intn(2) == 1
		for j := 0; j < p.ReadLen; j++ {
			var b dna.Base
			if rc {
				b = ref.At(pos + p.ReadLen - 1 - j).Complement()
			} else {
				b = ref.At(pos + j)
			}
			switch {
			case p.NRate > 0 && r.Float64() < p.NRate:
				buf[j] = 'N'
				continue
			case p.SubRate > 0 && r.Float64() < p.SubRate:
				b = (b + dna.Base(1+r.Intn(3))) & 3 // any different base
			}
			buf[j] = b.Byte()
		}
		reads = append(reads, string(buf))
	}
	return reads, nil
}

// PaperProfile returns the read profile used for the named paper dataset
// stand-in (read lengths follow Table I's ordering: ~100 bp for the
// chromosome datasets, longer for Bombus impatiens).
func PaperProfile(dataset string, seed int64) Profile {
	p := Profile{ReadLen: 100, Coverage: 15, SubRate: 0.005, NRate: 0.0005, Seed: seed}
	if dataset == "sim-BI" {
		p.ReadLen = 124
	}
	return p
}
