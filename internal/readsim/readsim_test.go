package readsim

import (
	"strings"
	"testing"

	"ppaassembler/internal/dna"
	"ppaassembler/internal/genome"
)

func ref(t *testing.T, n int) dna.Seq {
	t.Helper()
	g, err := genome.Generate(genome.Spec{Name: "t", Length: n, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSimulateCoverageAndLength(t *testing.T) {
	g := ref(t, 10000)
	reads, err := Simulate(g, Profile{ReadLen: 100, Coverage: 12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := 12 * 10000 / 100
	if len(reads) != want {
		t.Errorf("reads = %d, want %d", len(reads), want)
	}
	for _, r := range reads {
		if len(r) != 100 {
			t.Fatalf("read length %d", len(r))
		}
	}
}

func TestSimulateErrorFreeReadsAreSubstrings(t *testing.T) {
	g := ref(t, 4000)
	reads, err := Simulate(g, Profile{ReadLen: 80, Coverage: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	fwd := g.String()
	rc := g.ReverseComplement().String()
	nRC := 0
	for _, r := range reads {
		inF := strings.Contains(fwd, r)
		inR := strings.Contains(rc, r)
		if !inF && !inR {
			t.Fatalf("error-free read %q not found on either strand", r)
		}
		if inR && !inF {
			nRC++
		}
	}
	if nRC == 0 {
		t.Error("no reads from strand 2; both strands must be sampled")
	}
}

func TestSimulateSubstitutionRate(t *testing.T) {
	g := ref(t, 20000)
	p := Profile{ReadLen: 100, Coverage: 10, SubRate: 0.01, Seed: 3}
	reads, err := Simulate(g, p)
	if err != nil {
		t.Fatal(err)
	}
	fwd := g.String()
	rc := g.ReverseComplement().String()
	errs, total := 0, 0
	for _, r := range reads {
		total += len(r)
		if strings.Contains(fwd, r) || strings.Contains(rc, r) {
			continue
		}
		errs++ // at least one error in this read
	}
	// With 1% per-base errors a 100 bp read is erroneous with prob
	// ~1-0.99^100 ≈ 63%. Accept a broad band.
	frac := float64(errs) / float64(len(reads))
	if frac < 0.40 || frac > 0.85 {
		t.Errorf("erroneous-read fraction = %.2f, want ~0.63", frac)
	}
	_ = total
}

func TestSimulateNRate(t *testing.T) {
	g := ref(t, 5000)
	reads, err := Simulate(g, Profile{ReadLen: 100, Coverage: 10, NRate: 0.02, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, r := range reads {
		n += strings.Count(r, "N")
	}
	if n == 0 {
		t.Error("NRate produced no N bases")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	g := ref(t, 3000)
	p := Profile{ReadLen: 50, Coverage: 3, SubRate: 0.01, Seed: 9}
	a, _ := Simulate(g, p)
	b, _ := Simulate(g, p)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different reads")
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	g := ref(t, 100)
	if _, err := Simulate(g, Profile{ReadLen: 0, Coverage: 1}); err == nil {
		t.Error("zero read length accepted")
	}
	if _, err := Simulate(g, Profile{ReadLen: 50, Coverage: 0}); err == nil {
		t.Error("zero coverage accepted")
	}
	if _, err := Simulate(g, Profile{ReadLen: 200, Coverage: 1}); err == nil {
		t.Error("read longer than reference accepted")
	}
	if _, err := Simulate(g, Profile{ReadLen: 50, Coverage: 1, SubRate: 2}); err == nil {
		t.Error("rate > 1 accepted")
	}
}

func TestSimulatePairsCoverageAndLengths(t *testing.T) {
	g := ref(t, 20000)
	pairs, err := SimulatePairs(g, PairProfile{
		Profile:    Profile{ReadLen: 100, Coverage: 10, Seed: 1},
		InsertMean: 500, InsertSD: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 10 * 20000 / (2 * 100)
	if len(pairs) != want {
		t.Errorf("pairs = %d, want %d", len(pairs), want)
	}
	for _, p := range pairs {
		if len(p.R1) != 100 || len(p.R2) != 100 {
			t.Fatalf("mate lengths %d/%d", len(p.R1), len(p.R2))
		}
	}
}

// TestSimulatePairsFROrientation checks the defining paired-end invariant:
// for an error-free pair, one mate matches the forward strand and the other
// the reverse strand, facing each other, separated by approximately the
// insert size.
func TestSimulatePairsFROrientation(t *testing.T) {
	g := ref(t, 30000)
	const mean, sd = 400.0, 40.0
	pairs, err := SimulatePairs(g, PairProfile{
		Profile:    Profile{ReadLen: 80, Coverage: 6, Seed: 2},
		InsertMean: mean, InsertSD: sd,
	})
	if err != nil {
		t.Fatal(err)
	}
	fwd := g.String()
	sumInsert, n := 0.0, 0
	for _, p := range pairs {
		r1f := strings.Index(fwd, p.R1)
		r2f := strings.Index(fwd, p.R2)
		r1r := strings.Index(fwd, revComp(p.R1))
		r2r := strings.Index(fwd, revComp(p.R2))
		var left, right int
		switch {
		case r1f >= 0 && r2r >= 0: // R1 forward, R2 on reverse strand
			left, right = r1f, r2r
		case r2f >= 0 && r1r >= 0: // flipped fragment
			left, right = r2f, r1r
		default:
			t.Fatalf("pair not in FR orientation (indices %d %d %d %d)", r1f, r2f, r1r, r2r)
		}
		insert := right + 80 - left
		if insert < 80 {
			t.Fatalf("mates face away from each other (insert %d)", insert)
		}
		sumInsert += float64(insert)
		n++
	}
	if m := sumInsert / float64(n); m < mean-3*sd || m > mean+3*sd {
		t.Errorf("mean observed insert = %.0f, want ~%.0f", m, mean)
	}
}

func TestSimulatePairsDeterministicAndValidated(t *testing.T) {
	g := ref(t, 5000)
	p := PairProfile{Profile: Profile{ReadLen: 50, Coverage: 4, SubRate: 0.01, Seed: 7}, InsertMean: 300, InsertSD: 30}
	a, _ := SimulatePairs(g, p)
	b, _ := SimulatePairs(g, p)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different pairs")
		}
	}
	if _, err := SimulatePairs(g, PairProfile{Profile: Profile{ReadLen: 50, Coverage: 1}, InsertMean: 20}); err == nil {
		t.Error("insert below read length accepted")
	}
	if _, err := SimulatePairs(g, PairProfile{Profile: Profile{ReadLen: 50, Coverage: 1}, InsertMean: 300, InsertSD: -1}); err == nil {
		t.Error("negative insert s.d. accepted")
	}
	if _, err := SimulatePairs(g, PairProfile{Profile: Profile{ReadLen: 50, Coverage: 1}, InsertMean: 9000}); err == nil {
		t.Error("insert beyond reference accepted")
	}
}

func TestInterleave(t *testing.T) {
	got := Interleave([]Pair{{R1: "AA", R2: "CC"}, {R1: "GG", R2: "TT"}})
	want := []string{"AA", "CC", "GG", "TT"}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("interleave[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func revComp(s string) string {
	comp := map[byte]byte{'A': 'T', 'C': 'G', 'G': 'C', 'T': 'A', 'N': 'N'}
	b := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		b[len(s)-1-i] = comp[s[i]]
	}
	return string(b)
}

func TestPaperProfile(t *testing.T) {
	if PaperProfile("sim-HC2", 1).ReadLen != 100 {
		t.Error("sim-HC2 read length")
	}
	if PaperProfile("sim-BI", 1).ReadLen != 124 {
		t.Error("sim-BI read length")
	}
}
