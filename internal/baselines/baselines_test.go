package baselines

import (
	"strings"
	"testing"

	"ppaassembler/internal/dna"
	"ppaassembler/internal/genome"
	"ppaassembler/internal/pregel"
	"ppaassembler/internal/quality"
	"ppaassembler/internal/readsim"
)

const testK = 15

func dataset(t *testing.T, length int, subRate float64, seed int64) (dna.Seq, [][]string) {
	t.Helper()
	ref, err := genome.Generate(genome.Spec{Name: "t", Length: length, Repeats: 2, RepeatLen: 60, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	reads, err := readsim.Simulate(ref, readsim.Profile{ReadLen: 60, Coverage: 20, SubRate: subRate, Seed: seed + 1})
	if err != nil {
		t.Fatal(err)
	}
	return ref, pregel.ShardSlice(reads, 4)
}

func opts() Options {
	return Options{K: testK, Theta: 1, TipLen: 50, Workers: 4}
}

func allAssemblers() []Assembler {
	return []Assembler{PPA{}, ABySS{}, Ray{}, SWAP{}}
}

func TestAllAssemblersProduceCorrectContigsOnCleanReads(t *testing.T) {
	ref, shards := dataset(t, 3000, 0, 21)
	fwd := ref.String()
	rc := ref.ReverseComplement().String()
	for _, a := range allAssemblers() {
		res, err := a.Assemble(shards, opts())
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if len(res.Contigs) == 0 {
			t.Fatalf("%s produced no contigs", a.Name())
		}
		total := 0
		for _, c := range res.Contigs {
			total += c.Len()
			s := c.String()
			if !strings.Contains(fwd, s) && !strings.Contains(rc, s) {
				// SWAP's greedy rule may produce chimeras even on clean
				// repeats; everyone else must be exact.
				if a.Name() != "SWAP-style" {
					t.Errorf("%s: contig is not a reference substring", a.Name())
				}
			}
		}
		if total < 1500 {
			t.Errorf("%s: contigs cover only %d bases of 3000", a.Name(), total)
		}
		if res.SimSeconds <= 0 {
			t.Errorf("%s: no simulated time charged", a.Name())
		}
	}
}

func TestPPAQualityBeatsBaselinesOnErrorfulReads(t *testing.T) {
	ref, shards := dataset(t, 16000, 0.005, 22)
	reports := map[string]quality.Report{}
	for _, a := range allAssemblers() {
		res, err := a.Assemble(shards, opts())
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		rep := quality.Evaluate(res.Contigs, ref, 100)
		reports[a.Name()] = rep
		t.Logf("%s: contigs=%d N50=%d frac=%.1f%% misasm=%d",
			a.Name(), rep.NumContigs, rep.N50, rep.GenomeFraction, rep.Misassemblies)
	}
	ppa := reports["PPA-assembler"]
	// The Table-IV shape: PPA strictly beats the conservative baselines on
	// contiguity; the greedy SWAP-style may tie or slightly exceed PPA's
	// N50 only by accepting misassembly risk, never beat it cleanly.
	for _, b := range []string{"ABySS-style", "Ray-style"} {
		if ppa.N50 < reports[b].N50 {
			t.Errorf("PPA N50 %d below %s N50 %d", ppa.N50, b, reports[b].N50)
		}
	}
	swap := reports["SWAP-style"]
	if swap.N50 > ppa.N50*11/10 && swap.Misassemblies <= ppa.Misassemblies {
		t.Errorf("SWAP-style cleanly beat PPA: N50 %d vs %d, misassemblies %d vs %d",
			swap.N50, ppa.N50, swap.Misassemblies, ppa.Misassemblies)
	}
	if ppa.Misassemblies > swap.Misassemblies {
		t.Errorf("PPA misassemblies %d exceed SWAP-style %d", ppa.Misassemblies, swap.Misassemblies)
	}
}

func TestABySSProbingCreatesSpuriousAmbiguity(t *testing.T) {
	// On a genome where two k-mers exist whose concatenation was never
	// read, probing fragments contigs that (k+1)-verified construction
	// keeps whole. Statistically, ABySS-style must not beat Ray-style in
	// contiguity on the same clean input.
	ref, shards := dataset(t, 6000, 0, 23)
	ab, err := ABySS{}.Assemble(shards, opts())
	if err != nil {
		t.Fatal(err)
	}
	ray, err := Ray{}.Assemble(shards, opts())
	if err != nil {
		t.Fatal(err)
	}
	abN50 := quality.Evaluate(ab.Contigs, ref, 100).N50
	rayN50 := quality.Evaluate(ray.Contigs, ref, 100).N50
	if abN50 > rayN50 {
		t.Errorf("probing-built N50 %d exceeds verified-edge N50 %d", abN50, rayN50)
	}
}

func TestABySSInsensitiveToWorkers(t *testing.T) {
	_, shards := dataset(t, 6000, 0.003, 24)
	sim := func(w int) float64 {
		o := opts()
		o.Workers = w
		res, err := ABySS{}.Assemble(pregel.ShardSlice(pregel.Flatten(shards), w), o)
		if err != nil {
			t.Fatal(err)
		}
		return res.SimSeconds
	}
	t1, t8 := sim(1), sim(8)
	// The serial coordinator stage dominates: 8 workers must not even
	// halve the simulated time.
	if t8 < t1/2 {
		t.Errorf("ABySS-style sped up too much: %f -> %f", t1, t8)
	}
}

func TestPPAScalesWithWorkers(t *testing.T) {
	_, shards := dataset(t, 12000, 0.003, 25)
	sim := func(w int) float64 {
		o := opts()
		o.Workers = w
		res, err := PPA{}.Assemble(pregel.ShardSlice(pregel.Flatten(shards), w), o)
		if err != nil {
			t.Fatal(err)
		}
		return res.SimSeconds
	}
	t1, t8 := sim(1), sim(8)
	if t8 >= t1 {
		t.Errorf("PPA did not speed up with workers: %f -> %f", t1, t8)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	_, shards := dataset(t, 3000, 0.005, 26)
	for _, a := range allAssemblers() {
		r1, err := a.Assemble(shards, opts())
		if err != nil {
			t.Fatal(err)
		}
		r2, err := a.Assemble(shards, opts())
		if err != nil {
			t.Fatal(err)
		}
		if len(r1.Contigs) != len(r2.Contigs) {
			t.Fatalf("%s: nondeterministic contig count", a.Name())
		}
		for i := range r1.Contigs {
			if !r1.Contigs[i].Equal(r2.Contigs[i]) {
				t.Fatalf("%s: nondeterministic contig %d", a.Name(), i)
			}
		}
	}
}

func TestInvalidKRejected(t *testing.T) {
	for _, a := range allAssemblers() {
		o := opts()
		o.K = 16
		if _, err := a.Assemble([][]string{{"ACGT"}}, o); err == nil {
			t.Errorf("%s accepted even k", a.Name())
		}
	}
}
