package baselines

import (
	"time"

	"ppaassembler/internal/dna"
	"ppaassembler/internal/pregel"
)

// ABySS is the ABySS-style baseline (§V of the paper): the de Bruijn graph
// is built by letting each k-mer probe its 8 possible neighbors for
// existence, without verifying that the connecting (k+1)-mer was ever
// observed in a read. Probing manufactures spurious edges (extra ambiguity,
// shorter contigs) and, occasionally, chimeric joins. The adjacency/walk
// stage runs on a coordinator, which is why the analogue's runtime barely
// improves with more workers — the behaviour Figure 12 reports for ABySS.
type ABySS struct{}

// Name implements Assembler.
func (ABySS) Name() string { return "ABySS-style" }

// Assemble implements Assembler.
func (ABySS) Assemble(readShards [][]string, opt Options) (*Result, error) {
	if err := dna.ValidK(opt.K); err != nil {
		return nil, err
	}
	start := time.Now()
	clock := pregel.NewSimClock(opt.Cost)
	k := opt.K
	kmers := countCanonicalKmers(clock, opt.Workers, readShards, k, opt.Theta)

	// Probing successor rule: an extension exists iff the probed k-mer
	// exists anywhere in the k-mer set — the (k+1)-mer is never checked.
	succs := func(o dna.Kmer) []dna.Kmer {
		var out []dna.Kmer
		for c := dna.Base(0); c < 4; c++ {
			n := o.AppendBase(c, k)
			if _, ok := kmers[canonOf(n, k)]; ok {
				out = append(out, n)
			}
		}
		return out
	}
	serialStart := time.Now()
	contigs := walkUnitigs(kmers, k, func(o dna.Kmer) (dna.Kmer, bool) {
		return uniqueExtension(o, k, succs)
	}, nil)
	clock.ChargeSerial(float64(time.Since(serialStart).Nanoseconds()))
	// ABySS extends contigs one k-mer per communication round, so the
	// round count is the longest contig's hop length — a latency floor
	// that no amount of workers reduces (why Figure 12 shows ABySS flat
	// in the number of workers). Probe traffic is packeted (1 KB batches,
	// per the paper's §I discussion of ABySS) and charged as transfer.
	latency := float64(clock.Model().SuperstepLatency.Nanoseconds())
	clock.ChargeSerial(float64(maxContigHops(contigs, k)) * latency)
	clock.ChargeTransfer(float64(len(kmers)) * 8 * 16 / float64(opt.Workers))

	tip := opt.TipLen
	if tip <= 0 {
		tip = 2 * k
	}
	out := &Result{}
	for _, c := range contigs {
		if c.Len() > tip {
			out.Contigs = append(out.Contigs, c)
		}
	}
	out.SimSeconds = clock.Seconds()
	out.WallSeconds = time.Since(start).Seconds()
	return out, nil
}

func canonOf(m dna.Kmer, k int) dna.Kmer {
	c, _ := m.Canonical(k)
	return c
}
