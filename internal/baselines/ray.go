package baselines

import (
	"time"

	"ppaassembler/internal/dna"
	"ppaassembler/internal/pregel"
)

// Ray is the Ray-style baseline: greedy seed-and-extend over a DBG whose
// edges are verified by observed (k+1)-mers. Every extension step performs
// a remote k-mer-table lookup — Ray's defining communication pattern — so
// the simulated clock charges one round trip per step (amortized over a
// small pipelining window). That per-step cost is what makes Ray an order
// of magnitude slower than the bulk-synchronous assemblers in Figure 12.
type Ray struct{}

// rayRoundsPerHop models Ray's query/vote/commit exchange per extension
// step; rayMsgsPerStep the per-step candidate-lookup traffic.
const (
	rayRoundsPerHop = 3
	rayMsgsPerStep  = 4
)

// Name implements Assembler.
func (Ray) Name() string { return "Ray-style" }

// Assemble implements Assembler.
func (Ray) Assemble(readShards [][]string, opt Options) (*Result, error) {
	if err := dna.ValidK(opt.K); err != nil {
		return nil, err
	}
	start := time.Now()
	clock := pregel.NewSimClock(opt.Cost)
	k := opt.K
	// Ray counts (k+1)-mers to verify edges and k-mers for seeds; fold
	// both into one pass over the (k+1)-mers.
	k1mers := countCanonicalKmers(clock, opt.Workers, readShards, k+1, opt.Theta)
	kmers := make(map[dna.Kmer]uint32, len(k1mers))
	for e, cov := range k1mers {
		p := canonOf(dna.Kmer(uint64(e)>>2), k)
		s := canonOf(dna.Kmer(uint64(e)&dna.KmerMask(k)), k)
		kmers[p] += cov
		kmers[s] += cov
	}

	succs := func(o dna.Kmer) []dna.Kmer {
		var out []dna.Kmer
		for c := dna.Base(0); c < 4; c++ {
			e := dna.Kmer(uint64(o)<<2 | uint64(c))
			if _, ok := k1mers[canonOf(e, k+1)]; ok {
				out = append(out, o.AppendBase(c, k))
			}
		}
		return out
	}
	steps := 0
	walkStart := time.Now()
	contigs := walkUnitigs(kmers, k, func(o dna.Kmer) (dna.Kmer, bool) {
		return uniqueExtension(o, k, succs)
	}, func() { steps++ })
	// The walk compute distributes over workers (seeds are partitioned).
	walkNs := float64(time.Since(walkStart).Nanoseconds()) / float64(opt.Workers)
	per := make([]float64, opt.Workers)
	for i := range per {
		per[i] = walkNs
	}
	clock.ChargeSuperstep(per, make([]float64, opt.Workers))
	// Ray advances every seed extension one k-mer per round, and each hop
	// is a query/vote/commit exchange (~3 round trips). The global round
	// count is therefore 3x the longest contig's hop length — the
	// latency wall that leaves Ray an order of magnitude slower in
	// Figure 12. Redundant per-seed message volume is charged as
	// transfer over the workers' links.
	latency := float64(clock.Model().SuperstepLatency.Nanoseconds())
	clock.ChargeSerial(float64(rayRoundsPerHop*maxContigHops(contigs, k)) * latency)
	clock.ChargeTransfer(float64(steps) * rayMsgsPerStep * 16 / float64(opt.Workers))

	out := &Result{}
	for _, c := range contigs {
		if c.Len() >= 2*k {
			out.Contigs = append(out.Contigs, c)
		}
	}
	out.SimSeconds = clock.Seconds()
	out.WallSeconds = time.Since(start).Seconds()
	return out, nil
}
