// Package baselines implements algorithmic analogues of the three parallel
// assemblers the paper compares against (§V): ABySS, Ray and
// SWAP-Assembler. The real systems are external C++/MPI programs; each
// analogue here reproduces the published algorithmic signature that the
// paper's analysis attributes the system's behaviour to:
//
//   - ABySS-style: the DBG is built by probing all 8 possible k-mer
//     neighbors for existence (the paper's §V critique: an edge is created
//     between "CA" and "AA" even though no read contains "CAA"), which
//     manufactures spurious ambiguity; its message-packeting communication
//     stage is coordinated serially, which is what makes its runtime
//     insensitive to the number of workers (Figure 12).
//   - Ray-style: greedy seed-and-extend over verified (k+1)-mer edges with
//     a per-step remote k-mer lookup — the per-extension round trips are
//     what make Ray an order of magnitude slower (Figure 12).
//   - SWAP-style: no coverage filtering and greedy coverage-ratio branch
//     resolution with small-step pairwise merging rounds — fast-ish but
//     error-prone (Table IV: many misassemblies, short contigs).
//
// All three charge the same simulated-cluster clock as the PPA pipeline, so
// end-to-end times are comparable (experiments E2/E3).
package baselines

import (
	"time"

	"ppaassembler/internal/core"
	"ppaassembler/internal/dna"
	"ppaassembler/internal/pregel"
)

// Options configures a baseline run (a subset of core.Options).
type Options struct {
	K       int
	Theta   uint32
	TipLen  int
	Workers int
	Cost    pregel.CostModel
}

// Result is a baseline assembly outcome.
type Result struct {
	Contigs                 []dna.Seq
	SimSeconds, WallSeconds float64
}

// Assembler is the common interface over PPA-assembler and the baselines.
type Assembler interface {
	Name() string
	Assemble(readShards [][]string, opt Options) (*Result, error)
}

// PPA adapts the core pipeline to the Assembler interface.
type PPA struct {
	// Labeler selects LR or S-V (default LR).
	Labeler core.Labeler
}

// Name implements Assembler.
func (PPA) Name() string { return "PPA-assembler" }

// Assemble implements Assembler by running the full workflow ①②③④⑤⑥②③.
func (p PPA) Assemble(readShards [][]string, opt Options) (*Result, error) {
	o := core.DefaultOptions(opt.Workers)
	o.K = opt.K
	o.Theta = opt.Theta
	o.Labeler = p.Labeler
	o.Cost = opt.Cost
	if opt.TipLen > 0 {
		o.TipLen = opt.TipLen
	}
	res, err := core.Assemble(readShards, o)
	if err != nil {
		return nil, err
	}
	out := &Result{SimSeconds: res.SimSeconds, WallSeconds: res.WallSeconds}
	for _, c := range res.Contigs {
		out.Contigs = append(out.Contigs, c.Node.Seq)
	}
	return out, nil
}

// countCanonicalKmers counts canonical k-mers across the sharded reads,
// measuring per-worker map time and charging the clock one shuffle round
// (the distributed counting stage every assembler shares).
func countCanonicalKmers(clock *pregel.SimClock, workers int, shards [][]string, k int, theta uint32) map[dna.Kmer]uint32 {
	perWorker := make([]map[dna.Kmer]uint32, workers)
	computeNs := make([]float64, workers)
	bytesOut := make([]float64, workers)
	for w := 0; w < workers; w++ {
		perWorker[w] = make(map[dna.Kmer]uint32)
		if w >= len(shards) {
			continue
		}
		start := time.Now()
		for _, read := range shards[w] {
			eachWindow(read, k, func(m dna.Kmer) {
				c, _ := m.Canonical(k)
				perWorker[w][c]++
			})
		}
		computeNs[w] = float64(time.Since(start).Nanoseconds())
		bytesOut[w] = float64(len(perWorker[w])) * 12
	}
	clock.ChargeSuperstep(computeNs, bytesOut)
	merged := make(map[dna.Kmer]uint32)
	start := time.Now()
	for _, m := range perWorker {
		for kk, c := range m {
			merged[kk] += c
		}
	}
	for kk, c := range merged {
		if c <= theta {
			delete(merged, kk)
		}
	}
	// The merge itself is distributed by key in a real system: charge it
	// as one balanced round.
	per := float64(time.Since(start).Nanoseconds()) / float64(workers)
	balanced := make([]float64, workers)
	for i := range balanced {
		balanced[i] = per
	}
	clock.ChargeSuperstep(balanced, make([]float64, workers))
	return merged
}

// eachWindow slides a k-wide window over maximal ACGT runs.
func eachWindow(read string, k int, fn func(dna.Kmer)) {
	var cur uint64
	run := 0
	mask := dna.KmerMask(k)
	for i := 0; i < len(read); i++ {
		b, ok := dna.BaseFromByte(read[i])
		if !ok {
			run, cur = 0, 0
			continue
		}
		cur = (cur<<2 | uint64(b)) & mask
		run++
		if run >= k {
			fn(dna.Kmer(cur))
		}
	}
}

// maxContigHops returns the longest contig's length in k-mer hops — the
// superstep count of any system that extends contigs one vertex per
// superstep (ABySS and Ray both do; the paper's §V contrasts this with
// PPA-assembler's O(log n)-superstep labeling).
func maxContigHops(contigs []dna.Seq, k int) int {
	longest := 0
	for _, c := range contigs {
		if h := c.Len() - k + 1; h > longest {
			longest = h
		}
	}
	if longest < 1 {
		longest = 1
	}
	return longest
}
