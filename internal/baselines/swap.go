package baselines

import (
	"time"

	"ppaassembler/internal/dna"
	"ppaassembler/internal/pregel"
)

// SWAP is the SWAP-Assembler-style baseline: no coverage filtering (every
// observed (k+1)-mer becomes an edge) and greedy coverage-ratio branch
// resolution — at an ambiguous vertex the walk follows the dominant branch
// when it has at least swapDominance times the coverage of every
// alternative. Its small-step pairwise merging needs more global rounds
// than PPA's O(log n) labeling, charged as extra synchronization below.
// The combination is fast-ish but error-prone: erroneous edges fragment
// contigs and greedy resolution produces chimeric joins, the Table IV
// signature (many misassemblies, short contigs).
type SWAP struct{}

// swapDominance is the greedy branch-resolution ratio.
const swapDominance = 2

// swapRoundFactor models SWAP's semi-extension needing ~3 global
// synchronizations per doubling round, against PPA-LR's 2 supersteps.
const swapRoundFactor = 3

// Name implements Assembler.
func (SWAP) Name() string { return "SWAP-style" }

// Assemble implements Assembler.
func (SWAP) Assemble(readShards [][]string, opt Options) (*Result, error) {
	if err := dna.ValidK(opt.K); err != nil {
		return nil, err
	}
	start := time.Now()
	clock := pregel.NewSimClock(opt.Cost)
	k := opt.K
	k1mers := countCanonicalKmers(clock, opt.Workers, readShards, k+1, 0) // no θ filter
	kmers := make(map[dna.Kmer]uint32, len(k1mers))
	for e, cov := range k1mers {
		kmers[canonOf(dna.Kmer(uint64(e)>>2), k)] += cov
		kmers[canonOf(dna.Kmer(uint64(e)&dna.KmerMask(k)), k)] += cov
	}

	type ext struct {
		n   dna.Kmer
		cov uint32
	}
	exts := func(o dna.Kmer) []ext {
		var out []ext
		for c := dna.Base(0); c < 4; c++ {
			e := dna.Kmer(uint64(o)<<2 | uint64(c))
			if cov, ok := k1mers[canonOf(e, k+1)]; ok {
				out = append(out, ext{o.AppendBase(c, k), cov})
			}
		}
		return out
	}
	// Greedy pick: the unique extension, or the dominant one.
	pick := func(o dna.Kmer) (dna.Kmer, bool) {
		cands := exts(o)
		switch len(cands) {
		case 0:
			return 0, false
		case 1:
			return cands[0].n, true
		}
		best, second := -1, -1
		for i, c := range cands {
			if best < 0 || c.cov > cands[best].cov {
				second = best
				best = i
			} else if second < 0 || c.cov > cands[second].cov {
				second = i
			}
		}
		if cands[best].cov >= swapDominance*cands[second].cov {
			return cands[best].n, true
		}
		return 0, false
	}
	// SWAP's semi-extension merges forward greedily without a backward
	// consistency check — the aggressiveness behind its Table-IV
	// misassembly count: a walk that enters a repeat can exit into the
	// wrong flank and produce a chimeric contig.
	step := pick
	steps := 0
	walkStart := time.Now()
	contigs := walkUnitigs(kmers, k, step, func() { steps++ })
	// SWAP's pairwise semi-extension needs ~log2(longest path) doubling
	// rounds and recopies the growing segments in every round, so its
	// merging compute is walk-work x rounds, distributed over workers.
	rounds := 0
	for l := maxContigHops(contigs, k); l > 1; l >>= 1 {
		rounds++
	}
	if rounds < 1 {
		rounds = 1
	}
	walkNs := float64(time.Since(walkStart).Nanoseconds()) * float64(rounds) / float64(opt.Workers)
	per := make([]float64, opt.Workers)
	for i := range per {
		per[i] = walkNs
	}
	clock.ChargeSuperstep(per, make([]float64, opt.Workers))
	// Each round takes ~3 global synchronizations and reshuffles the
	// segment/edge tables (small MPI messages, ~64 B effective each).
	latency := float64(clock.Model().SuperstepLatency.Nanoseconds())
	clock.ChargeSerial(float64(swapRoundFactor*rounds) * latency)
	clock.ChargeTransfer(float64(rounds) * 2 * float64(len(kmers)) * 64 / float64(opt.Workers))

	out := &Result{}
	for _, c := range contigs {
		if c.Len() >= 2*k {
			out.Contigs = append(out.Contigs, c)
		}
	}
	out.SimSeconds = clock.Seconds()
	out.WallSeconds = time.Since(start).Seconds()
	return out, nil
}
