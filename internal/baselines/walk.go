package baselines

import (
	"sort"

	"ppaassembler/internal/dna"
)

// stepFn returns the unique (per the assembler's rule) next oriented k-mer
// after o, or ok=false when extension stops (dead end or ambiguity).
type stepFn func(o dna.Kmer) (next dna.Kmer, ok bool)

// walkUnitigs extracts maximal unambiguous paths from the k-mer set by
// greedy bidirectional extension, the in-memory equivalent of what all
// three baseline assemblers do after their (different) graph constructions.
// step embodies each assembler's extension rule; onStep (optional) is
// invoked once per extension step so callers can charge per-step costs
// (Ray's remote lookups). Iteration order is sorted for determinism.
func walkUnitigs(kmers map[dna.Kmer]uint32, k int, step stepFn, onStep func()) []dna.Seq {
	canons := make([]dna.Kmer, 0, len(kmers))
	for c := range kmers {
		canons = append(canons, c)
	}
	sort.Slice(canons, func(i, j int) bool { return canons[i] < canons[j] })

	visited := make(map[dna.Kmer]bool, len(kmers))
	extend := func(o dna.Kmer) []dna.Base {
		var bases []dna.Base
		for {
			if onStep != nil {
				onStep()
			}
			n, ok := step(o)
			if !ok {
				return bases
			}
			cn, _ := n.Canonical(k)
			if visited[cn] {
				return bases
			}
			visited[cn] = true
			bases = append(bases, n.Last())
			o = n
		}
	}

	var out []dna.Seq
	for _, canon := range canons {
		if visited[canon] {
			continue
		}
		visited[canon] = true
		right := extend(canon)
		left := extend(canon.ReverseComplement(k))
		var b dna.Builder
		b.Grow(len(left) + k + len(right))
		for i := len(left) - 1; i >= 0; i-- {
			b.Append(left[i].Complement())
		}
		b.AppendSeq(canon.Seq(k))
		for _, c := range right {
			b.Append(c)
		}
		out = append(out, b.Seq())
	}
	return out
}

// uniqueExtension applies the standard unitig rule shared by the Ray- and
// ABySS-style walkers: o extends to n only when n is o's sole successor
// and o is n's sole predecessor. succs lists the existing one-base
// extensions of an oriented k-mer.
func uniqueExtension(o dna.Kmer, k int, succs func(o dna.Kmer) []dna.Kmer) (dna.Kmer, bool) {
	nexts := succs(o)
	if len(nexts) != 1 {
		return 0, false
	}
	n := nexts[0]
	// Predecessors of n are successors of rc(n), reverse complemented.
	if len(succs(n.ReverseComplement(k))) != 1 {
		return 0, false
	}
	return n, true
}
