package pregel

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func lessU64(a, b uint64) bool { return a < b }

func TestMapReduceWordCount(t *testing.T) {
	lines := []string{"a b a", "b c", "a"}
	input := ShardSlice(lines, 3)
	wordID := func(w string) uint64 {
		var h uint64 = 14695981039346656037
		for i := 0; i < len(w); i++ {
			h = (h ^ uint64(w[i])) * 1099511628211
		}
		return h
	}
	type kv struct {
		word  string
		count int
	}
	// Key by hash of word; carry the word in the value for output.
	out, st := MapReduce(
		NewSimClock(DefaultCost()), 3, 16, input,
		func(w int, line string, emit func(uint64, string)) {
			for _, word := range strings.Fields(line) {
				emit(wordID(word), word)
			}
		},
		Uint64Hash, lessU64,
		func(w int, key uint64, vals []string, emit func(kv)) {
			emit(kv{vals[0], len(vals)})
		},
	)
	if st.Messages != 6 {
		t.Errorf("shuffled pairs = %d, want 6", st.Messages)
	}
	got := map[string]int{}
	for _, o := range Flatten(out) {
		got[o.word] = o.count
	}
	want := map[string]int{"a": 3, "b": 2, "c": 1}
	for w, c := range want {
		if got[w] != c {
			t.Errorf("count[%q] = %d, want %d", w, got[w], c)
		}
	}
}

func TestMapReduceGroupsAllValuesForKey(t *testing.T) {
	// Every value emitted under one key must appear in exactly one reduce
	// call, regardless of which mapper emitted it.
	input := make([]int, 100)
	for i := range input {
		input[i] = i
	}
	out, _ := MapReduce(
		NewSimClock(DefaultCost()), 7, 8, ShardSlice(input, 7),
		func(w int, item int, emit func(uint64, int)) {
			emit(uint64(item%10), item)
		},
		Uint64Hash, lessU64,
		func(w int, key uint64, vals []int, emit func(int)) {
			sum := 0
			for _, v := range vals {
				if uint64(v%10) != key {
					t.Errorf("value %d grouped under key %d", v, key)
				}
				sum += v
			}
			emit(sum)
		},
	)
	total := 0
	for _, v := range Flatten(out) {
		total += v
	}
	if total != 99*100/2 {
		t.Errorf("total = %d, want %d", total, 99*100/2)
	}
}

func TestMapReduceDeterministicValueOrder(t *testing.T) {
	// Values within a group arrive in (source worker, emission order),
	// which must be stable across runs.
	input := ShardSlice([]int{5, 1, 9, 3, 7, 2, 8}, 3)
	run := func() []int {
		out, _ := MapReduce(
			NewSimClock(DefaultCost()), 3, 8, input,
			func(w int, item int, emit func(uint64, int)) { emit(0, item) },
			Uint64Hash, lessU64,
			func(w int, key uint64, vals []int, emit func(int)) {
				for _, v := range vals {
					emit(v)
				}
			},
		)
		return Flatten(out)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic value order: %v vs %v", a, b)
		}
	}
}

func TestMapReduceEmptyInput(t *testing.T) {
	out, st := MapReduce(
		NewSimClock(DefaultCost()), 4, 8, nil,
		func(w int, item struct{}, emit func(uint64, int)) {},
		Uint64Hash, lessU64,
		func(w int, key uint64, vals []int, emit func(int)) { emit(1) },
	)
	if len(Flatten(out)) != 0 || st.Messages != 0 {
		t.Errorf("empty input produced output %v, stats %+v", out, st)
	}
}

func TestShardSliceFlattenRoundTrip(t *testing.T) {
	f := func(n uint8, w uint8) bool {
		items := make([]int, int(n))
		for i := range items {
			items[i] = i
		}
		shards := ShardSlice(items, int(w%10))
		flat := Flatten(shards)
		if len(flat) != len(items) {
			return false
		}
		sort.Ints(flat)
		for i, v := range flat {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropMapReduceEquivalentToSequentialGroupBy(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(200)
		items := make([]uint64, n)
		for i := range items {
			items[i] = uint64(r.Intn(20))
		}
		workers := 1 + r.Intn(8)
		out, _ := MapReduce(
			NewSimClock(DefaultCost()), workers, 8, ShardSlice(items, workers),
			func(w int, item uint64, emit func(uint64, uint64)) { emit(item, 1) },
			Uint64Hash, lessU64,
			func(w int, key uint64, vals []uint64, emit func([2]uint64)) {
				emit([2]uint64{key, uint64(len(vals))})
			},
		)
		want := map[uint64]uint64{}
		for _, it := range items {
			want[it]++
		}
		got := map[uint64]uint64{}
		for _, o := range Flatten(out) {
			got[o[0]] = o[1]
		}
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestConvertChainsGraphs(t *testing.T) {
	cfg := Config{Workers: 3}
	g1 := NewGraph[int, int](cfg)
	for i := 1; i <= 10; i++ {
		g1.AddVertex(VertexID(i), i*i)
	}
	// Job j' gets one vertex per even source vertex, value doubled, and
	// shares the clock.
	g2 := Convert[int64, string](g1, cfg, func(id VertexID, val int, emit func(VertexID, int64)) {
		if id%2 == 0 {
			emit(id*100, int64(val)*2)
		}
	})
	if g2.VertexCount() != 5 {
		t.Fatalf("converted count = %d, want 5", g2.VertexCount())
	}
	if v, ok := g2.Value(400); !ok || v != 32 {
		t.Errorf("g2[400] = %d,%v, want 32,true", v, ok)
	}
	if g2.Clock() != g1.Clock() {
		t.Error("converted graph does not share the source clock")
	}
}

func TestConvertFanOut(t *testing.T) {
	cfg := Config{Workers: 2}
	g1 := NewGraph[int, int](cfg)
	g1.AddVertex(1, 3)
	g2 := Convert[int, int](g1, cfg, func(id VertexID, val int, emit func(VertexID, int)) {
		for i := 0; i < val; i++ {
			emit(VertexID(100+i), i)
		}
	})
	if g2.VertexCount() != 3 {
		t.Errorf("fan-out count = %d, want 3", g2.VertexCount())
	}
}
