package pregel

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"ppaassembler/internal/telemetry"
	"ppaassembler/internal/transport"
)

// Transport delivery: when Config.Transport is a non-loopback transport,
// the superstep shuffle leaves process memory. After the compute barrier
// every remote (src,dst) outbox lane is encoded with the deterministic
// lane codec below and shipped to the destination worker's depot
// (SendLane); delivery then drains each destination by fetching its lanes
// back (RecvLane), decoding, and running the exact count/place passes of
// the in-memory path. Lanes are encoded and drained in source-worker
// order, and the codec is byte-deterministic, so a run over a transport is
// bit-identical to an in-memory run. Local lanes (src == dst) never leave
// memory, matching the two-tier cost model's intra-machine lane.
//
// The engine sends every remote lane of a superstep — even empty ones —
// before draining any, so a missing lane at RecvLane time is never
// ambiguity about emptiness: it means the depot lost state (worker death
// and restart), surfaces as a *transport.WorkerDownError, and the run
// rolls back to its latest checkpoint exactly like an injected fault.

// laneBinary/laneGob flag the lane payload encoding, mirroring the
// checkpoint container's wsecBinary/wsecGob worker sections: message types
// admitted by the binary value codec use the zero-copy path, anything else
// falls back to gob.
const (
	laneBinary byte = 0
	laneGob    byte = 1
)

// wireEnvelope is the gob-visible shape of an envelope (whose fields are
// unexported by design).
type wireEnvelope[M any] struct {
	Dst VertexID
	Msg M
}

// encodeLane appends the lane payload encoding of envs to buf.
func encodeLane[M any](buf []byte, envs []envelope[M], bin bool) ([]byte, error) {
	if !bin {
		w := make([]wireEnvelope[M], len(envs))
		for i, e := range envs {
			w[i] = wireEnvelope[M]{Dst: e.dst, Msg: e.msg}
		}
		var gb bytes.Buffer
		if err := gob.NewEncoder(&gb).Encode(w); err != nil {
			return nil, fmt.Errorf("pregel: gob-encoding transport lane: %w", err)
		}
		buf = append(buf, laneGob)
		return append(buf, gb.Bytes()...), nil
	}
	buf = append(buf, laneBinary)
	buf = AppendUvarint(buf, uint64(len(envs)))
	for i := range envs {
		buf = AppendUvarint(buf, uint64(envs[i].dst))
		buf = appendVal(buf, &envs[i].msg)
	}
	return buf, nil
}

// decodeLane decodes a lane payload into envs (reusing its capacity).
func decodeLane[M any](data []byte, envs []envelope[M]) ([]envelope[M], error) {
	envs = envs[:0]
	if len(data) == 0 {
		return nil, corruptf("pregel: transport lane payload is empty")
	}
	flag, data := data[0], data[1:]
	switch flag {
	case laneGob:
		var w []wireEnvelope[M]
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
			return nil, fmt.Errorf("pregel: gob-decoding transport lane: %w", err)
		}
		for _, e := range w {
			envs = append(envs, envelope[M]{dst: e.Dst, msg: e.Msg})
		}
		return envs, nil
	case laneBinary:
		n, data, err := ConsumeUvarint(data)
		if err != nil {
			return nil, err
		}
		for i := uint64(0); i < n; i++ {
			var e envelope[M]
			var d uint64
			if d, data, err = ConsumeUvarint(data); err != nil {
				return nil, err
			}
			e.dst = VertexID(d)
			if data, err = consumeVal(data, &e.msg); err != nil {
				return nil, err
			}
			envs = append(envs, e)
		}
		if len(data) != 0 {
			return nil, corruptf("pregel: %d trailing bytes after transport lane", len(data))
		}
		return envs, nil
	default:
		return nil, corruptf("pregel: unknown transport lane flag %d", flag)
	}
}

// transportActive reports whether the shuffle must leave process memory.
// A nil Transport and the loopback mem transport both keep the historical
// zero-copy in-memory path.
func (g *Graph[V, M]) transportActive() bool {
	return g.cfg.Transport != nil && !g.cfg.Transport.Loopback()
}

// transportName is the transport identity recorded in checkpoints. A nil
// Transport is the historical in-memory shuffle and shares the loopback
// mem transport's name, so the two interoperate across a resume.
func (g *Graph[V, M]) transportName() string {
	if g.cfg.Transport == nil {
		return "mem"
	}
	return g.cfg.Transport.Name()
}

// deliverViaTransport runs one superstep's shuffle over cfg.Transport:
// a send phase ships every remote lane to its destination depot, then a
// drain phase rebuilds each destination's inbox arena from fetched lanes.
// Errors land in the destination workers' deliverErr slots and fold out
// through collectDelivery, so worker-down detection composes with the
// engine's existing error path.
func (g *Graph[V, M]) deliverViaTransport(step int) (delivered, dropped int64, err error) {
	t := g.cfg.Transport
	bin := binaryCodecFor[M]()
	tr := g.cfg.Tracer
	// The send phase reports through the workers' deliverErr slots, which
	// resetInbox normally clears at drain time — replaying after a failed
	// attempt must not resurface the stale error.
	for _, w := range g.workers {
		w.deliverErr = nil
	}

	if tr != nil {
		g.emit(telemetry.KindBegin, "send", "transport", nowNs(), g.clock.Ns(),
			telemetry.I("step", int64(step)))
	}
	var sendErr error
	forEachWorkerProf(g.cfg.Workers, g.cfg.Parallel, g.runName, "tx-send", func(swi int) {
		src := g.workers[swi]
		var buf []byte
		for dwi := range g.workers {
			if dwi == swi || src.outbox == nil {
				continue // local lanes never leave memory
			}
			var encErr error
			if buf, encErr = encodeLane(buf[:0], src.outbox[dwi], bin); encErr != nil {
				src.deliverErr = encErr
				return
			}
			if sErr := t.SendLane(step, swi, dwi, buf); sErr != nil {
				src.deliverErr = sErr
				return
			}
		}
	})
	for _, w := range g.workers {
		if w.deliverErr != nil {
			sendErr = w.deliverErr
			break
		}
	}
	if tr != nil {
		g.emit(telemetry.KindEnd, "send", "transport", nowNs(), g.clock.Ns())
	}
	if sendErr != nil {
		// resetInbox in the drain phase normally clears deliverErr; bail
		// before it so the send failure is not masked.
		return 0, 0, sendErr
	}

	if tr != nil {
		g.emit(telemetry.KindBegin, "drain", "transport", nowNs(), g.clock.Ns(),
			telemetry.I("step", int64(step)))
	}
	forEachWorkerProf(g.cfg.Workers, g.cfg.Parallel, g.runName, "tx-drain", func(dwi int) {
		g.transportDeliverTo(step, dwi)
	})
	if tr != nil {
		g.emit(telemetry.KindEnd, "drain", "transport", nowNs(), g.clock.Ns())
	}
	return g.collectDelivery()
}

// transportDeliverTo rebuilds destination worker dwi's inbox arena from
// transport-fetched lanes — the wire twin of deliverTo. The local lane
// (src == dwi) is read straight from the source outbox; remote lanes are
// fetched and decoded into per-worker scratch, then counted and placed in
// source-worker order, preserving the engine's delivery order exactly.
func (g *Graph[V, M]) transportDeliverTo(step, dwi int) {
	t := g.cfg.Transport
	dst := g.workers[dwi]
	if dst.rlanes == nil {
		dst.rlanes = make([][]envelope[M], g.cfg.Workers)
	}
	g.resetInbox(dst)
	for swi, src := range g.workers {
		if swi == dwi {
			var local []envelope[M]
			if src.outbox != nil {
				local = src.outbox[dwi]
			}
			dst.rlanes[swi] = local
			continue
		}
		payload, err := t.RecvLane(step, swi, dwi)
		if err != nil {
			dst.deliverErr = err
			return
		}
		lane, err := decodeLane(payload, dst.rlanes[swi])
		if err != nil {
			dst.deliverErr = err
			return
		}
		dst.rlanes[swi] = lane
	}
	for swi, lane := range dst.rlanes {
		g.countLane(dst, swi, lane)
	}
	g.placeInboxLanes(dst, dst.rlanes)
}

// placeInboxLanes is placeInbox over an explicit lane set (the wire path's
// decoded lanes) instead of the destination column of every worker's
// outbox. Kept separate from placeInbox so the loopback shuffle keeps its
// zero-allocation steady state.
func (g *Graph[V, M]) placeInboxLanes(dst *worker[V, M], lanes [][]envelope[M]) {
	n := len(dst.ids)
	counts := dst.inCur[:n]
	off := int32(0)
	for i := 0; i < n; i++ {
		c := counts[i]
		dst.inOff[i] = off
		counts[i] = off // becomes the placement cursor
		off += c
	}
	dst.inOff[n] = off
	if cap(dst.inArena) < int(off) {
		dst.inArena = make([]M, off)
	} else {
		dst.inArena = dst.inArena[:off]
	}
	fused := g.runTotal && g.runComb != nil
	m := 0
	for _, lane := range lanes {
		for _, e := range lane {
			i := dst.rIdx[m]
			m++
			if i < 0 {
				continue
			}
			if fused && counts[i] > dst.inOff[i] {
				slot := &dst.inArena[dst.inOff[i]]
				*slot = g.runComb(*slot, e.msg)
				continue
			}
			dst.inArena[counts[i]] = e.msg
			counts[i]++
		}
	}
}

// transportBarrier publishes the end of superstep step to every worker,
// carrying the aggregator snapshot, inside a traced transport span.
func (g *Graph[V, M]) transportBarrier(step int) error {
	tr := g.cfg.Tracer
	if tr != nil {
		g.emit(telemetry.KindBegin, "barrier", "transport", nowNs(), g.clock.Ns(),
			telemetry.I("step", int64(step)))
	}
	err := g.cfg.Transport.Barrier(step, appendAggSnapshot(nil, g.agg.snapshot()))
	if tr != nil {
		g.emit(telemetry.KindEnd, "barrier", "transport", nowNs(), g.clock.Ns())
	}
	return err
}

// transportConnect establishes the worker connections before the first
// superstep, inside a traced transport span.
func (g *Graph[V, M]) transportConnect() error {
	tr := g.cfg.Tracer
	if tr != nil {
		g.emit(telemetry.KindBegin, "connect", "transport", nowNs(), g.clock.Ns(),
			telemetry.I("workers", int64(g.cfg.Workers)))
	}
	err := g.cfg.Transport.Connect()
	if tr != nil {
		g.emit(telemetry.KindEnd, "connect", "transport", nowNs(), g.clock.Ns())
	}
	return err
}

// foldTransportMetrics adds the transport counter deltas of one run to the
// metrics registry.
func foldTransportMetrics(reg *telemetry.Registry, base, now transport.Counters) {
	if reg == nil {
		return
	}
	add := func(name string, delta int64) {
		if delta > 0 {
			reg.Counter(name).Add(delta)
		}
	}
	add("transport_bytes_sent_total", now.BytesSent-base.BytesSent)
	add("transport_bytes_received_total", now.BytesRecv-base.BytesRecv)
	add("transport_frames_sent_total", now.FramesSent-base.FramesSent)
	add("transport_frames_received_total", now.FramesRecv-base.FramesRecv)
	add("transport_wire_ns_total", now.WireNs-base.WireNs)
	add("transport_connects_total", now.Connects-base.Connects)
	add("transport_retries_total", now.Redials-base.Redials)
	add("transport_barriers_total", now.Barriers-base.Barriers)
}

// maxTransportRecoveries caps back-to-back worker-down rollbacks of one
// run: a worker that keeps dying (or a peer address that is simply wrong)
// must eventually fail the run instead of replaying forever. Any
// successfully completed superstep resets the count.
const maxTransportRecoveries = 10

// transportRecover handles a worker-down failure during a superstep: with
// checkpointing enabled it rolls the run back to the latest checkpoint —
// exactly the injected-fault path — and returns the restored step and
// pending count; the transport redials on the next use. Without
// checkpointing the failure is fatal, with an error that says how to make
// it survivable.
func (g *Graph[V, M]) transportRecover(ck *ckptRun, job string, step int, cause error, stats *Stats) (int, int64, error) {
	if g.cfg.Tracer != nil {
		g.emit(telemetry.KindInstant, "workerdown", "transport", nowNs(), g.clock.Ns(),
			telemetry.I("step", int64(step)))
	}
	if ck == nil {
		return 0, 0, fmt.Errorf("pregel: job %q: worker lost at superstep %d with checkpointing disabled (set CheckpointEvery to make worker death survivable): %w",
			job, step, cause)
	}
	g.warnf("pregel: job %q: %v at superstep %d; rolling back to the latest checkpoint", job, cause, step)
	chain, ok, err := ck.loadCheckpoint()
	if err != nil {
		return 0, 0, err
	}
	if !ok {
		return 0, 0, fmt.Errorf("pregel: job %q: worker lost at superstep %d but no checkpoint exists: %w", job, step, cause)
	}
	newStep, pending, err := g.restoreCheckpoint(chain, stats)
	if err != nil {
		return 0, 0, err
	}
	stats.Recoveries++
	if g.cfg.Metrics != nil {
		g.cfg.Metrics.Counter("pregel_recoveries_total").Add(1)
	}
	return newStep, pending, nil
}
