// Package pregel implements a Pregel-like bulk-synchronous vertex-centric
// graph-processing engine in the spirit of Pregel+ (the backend the paper
// builds PPA-assembler on), together with the paper's two API extensions:
// a mini-MapReduce procedure for loading/grouping data by key (§II), and
// in-memory job concatenation via a convert UDF (§II).
//
// The engine partitions vertices across W logical workers with a pluggable
// Partitioner (by a hash of the vertex ID unless configured otherwise; see
// partition.go), runs user compute functions in numbered supersteps, shuffles
// messages between supersteps, supports vote-to-halt with reactivation on
// message receipt, aggregators, and vertex removal. It records per-superstep
// metrics (message counts, bytes, per-worker compute time) and charges them
// to a simulated distributed-cluster clock (see cost.go), which is how this
// reproduction obtains multi-machine scaling curves on a single host.
package pregel

import (
	"fmt"
	"os"
	"sort"
	"sync"

	"ppaassembler/internal/telemetry"
	"ppaassembler/internal/transport"
)

// stderrWarnOnce backs the default Config.Warn sink: each distinct message
// goes to stderr once per process. Dedup keys on the full message, which
// deliberately omits job names for per-configuration warnings (like a
// delta-checkpoint downgrade) so a hundred-job pipeline warns once.
var stderrWarnOnce struct {
	mu   sync.Mutex
	seen map[string]bool
}

// warnf routes an engine diagnostic to Config.Warn, or to the deduplicated
// stderr sink when no Warn is configured.
func (g *Graph[V, M]) warnf(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	if g.cfg.Warn != nil {
		g.cfg.Warn(msg)
		return
	}
	stderrWarnOnce.mu.Lock()
	defer stderrWarnOnce.mu.Unlock()
	if stderrWarnOnce.seen[msg] {
		return
	}
	if stderrWarnOnce.seen == nil {
		stderrWarnOnce.seen = map[string]bool{}
	}
	stderrWarnOnce.seen[msg] = true
	fmt.Fprintf(os.Stderr, "warning: %s\n", msg)
}

// VertexID identifies a vertex. The assembler encodes k-mer sequences and
// contig (worker, ordinal) pairs directly into these 64-bit IDs (§IV-A).
type VertexID uint64

// hashID mixes a vertex ID before partitioning so that structured IDs (e.g.
// contig IDs, which have a worker number in their high bits) still spread
// evenly across workers. SplitMix64 finalizer.
func hashID(id VertexID) uint64 {
	z := uint64(id) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Config controls engine construction.
type Config struct {
	// Workers is the number of logical workers (simulated machines).
	Workers int
	// Parallel runs workers on goroutines — one per worker for compute and
	// again for message delivery (each destination worker drains the
	// outbox lanes addressed to it). Results are bit-identical to
	// sequential execution for any worker count; only wall-clock time
	// changes. The default (false) runs workers sequentially, which gives
	// the least-noisy per-worker compute timings for the simulated clock
	// and is just as fast on a single-core host.
	Parallel bool
	// Overlap lets delivery overlap with compute under Parallel: instead of
	// one global barrier between the compute and shuffle phases, each
	// worker signals a per-source completion counter when its outbox lanes
	// are sealed, and destination workers begin draining a source's lanes
	// the moment that source has signalled — while other sources are still
	// computing. Lanes are single-writer/single-reader and are drained in
	// source-worker order with the same count/place passes as barriered
	// delivery, so results stay bit-identical for any worker count; only
	// wall-clock time changes. Ignored (no-op) unless Parallel is set and
	// Workers > 1.
	Overlap bool
	// MessageBytes is the charged wire size of one message for the cost
	// model and byte metrics. Zero means DefaultMessageBytes.
	MessageBytes int
	// MaxSupersteps aborts a run that fails to terminate. Zero means
	// DefaultMaxSupersteps.
	MaxSupersteps int
	// Strict makes a message sent to a nonexistent vertex a run error
	// instead of a silently dropped (but counted) message.
	Strict bool
	// Cost is the simulated-cluster cost model. Zero value = DefaultCost().
	Cost CostModel
	// Partitioner maps vertex IDs to workers (see Partitioner). Nil means
	// HashPartitioner, the engine's historical hashID-modulo placement.
	// Checkpoints record the partitioner's name; Resume under a different
	// one fails loudly instead of scattering partition-local state.
	Partitioner Partitioner
	// Transport moves superstep message lanes between logical workers.
	// Nil (or the loopback mem transport) keeps the historical zero-copy
	// in-memory shuffle. A non-loopback transport (memwire, tcp) makes
	// every remote lane travel the encode/frame/decode wire path; results
	// stay bit-identical because the lane codec is deterministic and lanes
	// drain in source-worker order. Its worker count must equal Workers.
	// Checkpoints record the transport's name; Resume under a different
	// one fails loudly. A *transport.WorkerDownError during a superstep is
	// treated like an injected worker crash: with checkpointing enabled
	// the run rolls back and replays, otherwise it fails.
	Transport transport.Transport

	// Repartition enables online adaptive repartitioning: the engine
	// observes each vertex's per-source-worker message traffic over a
	// trailing window and, at every Repartition.Every superstep boundary,
	// migrates the hottest mismatched vertices to the worker they receive
	// the most messages from (see repartition.go). The Partitioner is
	// wrapped in a DynamicPartitioner (unless it already is one) whose
	// versioned routing table overrides base placement for migrated IDs;
	// checkpoints persist the table, so Resume restores placement exactly.
	// Results stay bit-identical to a static run — migration moves state at
	// barriers, never semantics — only the local/remote traffic split and
	// the simulated clock change. Nil disables migration.
	Repartition *RepartitionPolicy

	// CheckpointEvery enables Pregel-style fault tolerance: every N
	// supersteps each run snapshots its vertex state, pending inboxes,
	// aggregators and counters (plus a baseline snapshot before superstep
	// 0), and a worker failure rolls the run back to the latest checkpoint
	// and replays. Zero disables checkpointing; a failure is then fatal to
	// the run. Checkpoint writes and recovery reads are charged to the
	// simulated clock via CostModel.CheckpointBytesPerSecond.
	CheckpointEvery int
	// Checkpointer stores the snapshots. Nil with CheckpointEvery > 0
	// installs a fresh MemCheckpointer; pass a DirCheckpointer (shared by
	// every stage of a pipeline) to survive process death.
	Checkpointer Checkpointer
	// DeltaCheckpoints makes cadence checkpoints incremental: after a full
	// snapshot, subsequent saves record only the vertices dirtied (computed
	// on, or delivered a message) since the previous save, bounded by a
	// short chain before the next full snapshot. Requires the binary
	// checkpoint codec (vertex value and message types that are primitives
	// or implement CheckpointAppender/CheckpointDecoder) and a store
	// implementing DeltaCheckpointer; when either is missing every save
	// stays a full snapshot, and the downgrade is reported through Warn
	// plus the pregel_checkpoint_delta_downgrades_total counter. Recovery
	// replays the newest full snapshot plus its delta chain and is
	// bit-identical to recovering from a full save.
	DeltaCheckpoints bool
	// Faults, when non-nil, is a worker-crash schedule for fault-injection
	// testing; see FaultPlan. Graphs created from this Config (including
	// via Convert) share the plan, so one schedule spans a whole pipeline.
	Faults *FaultPlan
	// Resume makes each Run look for an existing checkpoint of its job in
	// Checkpointer before starting, and fast-forward from it. With a
	// DirCheckpointer this is how a killed pipeline process picks up where
	// it left off: deterministic re-execution reserves the same job keys,
	// and every job restarts from its last completed checkpoint.
	Resume bool

	// JobPrefix is prepended to every run name before a checkpoint job key
	// is reserved. The workflow layer sets a per-op prefix derived from the
	// op's plan position (e.g. "s03.tiptrim."), so checkpoint keys are
	// deterministic and self-describing for arbitrary compositions.
	JobPrefix string

	// Tracer, when non-nil, receives structured span/event records for
	// every run on this graph: job start/end, each superstep's
	// compute/shuffle/barrier sub-phases, checkpoint saves/restores and
	// fault-plan firings, each stamped with both wall time and the
	// simulated-clock reading. Events are emitted only from coordinator
	// code at superstep barriers — never per message — and the span
	// sequence (timestamps aside) is deterministic across Parallel on/off,
	// worker counts and partitioners. Nil disables tracing with zero
	// allocations on the message path.
	Tracer telemetry.Tracer
	// Metrics, when non-nil, receives engine counters, gauges and
	// histograms (messages by network tier, bytes, supersteps, dropped
	// messages, checkpoint I/O, active/halted vertices, per-worker inbox
	// depths). Instrument handles are resolved once per run.
	Metrics *telemetry.Registry
	// Warn, when non-nil, receives the engine's non-fatal diagnostics: a
	// requested delta-checkpoint mode that had to fall back to full
	// snapshots, a corrupt checkpoint artifact skipped during recovery.
	// Nil routes each distinct message to stderr once per process (repeats
	// are suppressed so a pipeline of a hundred jobs warns once, not a
	// hundred times); a caller-supplied Warn receives every occurrence.
	Warn func(msg string)
}

// Validate rejects configurations that would otherwise be silently
// defaulted (zero values) or run nonsensically. It is meant to be called
// early — by CLIs and the workflow layer — so a typo like a negative
// worker count fails with a clear error before any compute starts.
func (c Config) Validate() error {
	if c.Workers <= 0 {
		return fmt.Errorf("pregel: Workers must be positive, got %d", c.Workers)
	}
	if c.MessageBytes < 0 {
		return fmt.Errorf("pregel: MessageBytes must not be negative, got %d", c.MessageBytes)
	}
	if c.MaxSupersteps < 0 {
		return fmt.Errorf("pregel: MaxSupersteps must not be negative, got %d", c.MaxSupersteps)
	}
	if c.CheckpointEvery < 0 {
		return fmt.Errorf("pregel: CheckpointEvery must not be negative, got %d", c.CheckpointEvery)
	}
	if c.Resume && c.CheckpointEvery <= 0 {
		return fmt.Errorf("pregel: Resume requires CheckpointEvery > 0 (there are no checkpoints to resume from)")
	}
	if c.DeltaCheckpoints && c.CheckpointEvery <= 0 {
		return fmt.Errorf("pregel: DeltaCheckpoints requires CheckpointEvery > 0 (there are no checkpoints to make incremental)")
	}
	if c.Transport != nil && c.Workers > 0 && c.Transport.Workers() != c.Workers {
		return fmt.Errorf("pregel: transport %q addresses %d workers, Config.Workers is %d",
			c.Transport.Name(), c.Transport.Workers(), c.Workers)
	}
	if c.Repartition != nil {
		if err := c.Repartition.validate(); err != nil {
			return err
		}
	}
	return nil
}

// Defaults for Config fields.
const (
	DefaultMessageBytes  = 16
	DefaultMaxSupersteps = 10000
)

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.MessageBytes <= 0 {
		c.MessageBytes = DefaultMessageBytes
	}
	if c.MaxSupersteps <= 0 {
		c.MaxSupersteps = DefaultMaxSupersteps
	}
	if c.Cost == (CostModel{}) {
		c.Cost = DefaultCost()
	}
	if c.Partitioner == nil {
		c.Partitioner = HashPartitioner{}
	}
	if c.Repartition != nil {
		pol := c.Repartition.withDefaults()
		c.Repartition = &pol
		c.Partitioner = AsDynamic(c.Partitioner)
	}
	if c.CheckpointEvery > 0 && c.Checkpointer == nil {
		c.Checkpointer = NewMemCheckpointer()
	}
	return c
}

// Compute is the user-defined compute(.) function: called once per active
// vertex per superstep with the messages delivered to that vertex.
type Compute[V, M any] func(ctx *Context[M], id VertexID, val *V, msgs []M)

// envelope is a routed message.
type envelope[M any] struct {
	dst VertexID
	msg M
}

// worker holds one partition of the vertex set. Vertices are kept in a
// slice sorted by ID (plus an index map) so iteration order — and therefore
// message emission order and the whole computation — is deterministic.
//
// The message path is arena-based: outgoing messages accumulate in per-
// destination-worker lanes (outbox), and incoming messages live in one flat
// per-worker arena (inArena) grouped by destination vertex via an offset
// index (inOff). Lanes and arenas keep their capacity across supersteps, so
// the steady-state shuffle allocates nothing. Each (src,dst) lane is written
// only by its source worker during compute and read only by its destination
// worker during delivery, which is what makes both phases safe to run on one
// goroutine per worker with no locks.
type worker[V, M any] struct {
	ids    []VertexID
	idx    map[VertexID]int
	vals   []V
	active []bool
	dead   []bool

	// Inbox arena: messages for vertex i occupy inArena[inOff[i]:inOff[i+1]],
	// in (source worker, emission) order. inCur and rIdx are delivery
	// scratch (placement cursors; resolved vertex index per envelope).
	inArena []M
	inOff   []int32
	inCur   []int32
	rIdx    []int32

	outbox [][]envelope[M]      // one lane per destination worker
	fold   []map[VertexID]int32 // eager-combine index: dst vertex -> lane position
	rlanes [][]envelope[M]      // wire-path decode scratch, one lane per source worker

	ctx       Context[M]
	nDead     int
	msgsOut   int64 // messages sent by this worker in current superstep
	msgsLocal int64 // subset of msgsOut addressed back to this worker

	// Per-superstep delivery results, filled by deliverTo (this worker as
	// the destination), folded into run totals after the barrier.
	delivered  int64
	dropped    int64
	deliverErr error

	// dirty marks vertices touched since the last checkpoint save (compute
	// invoked, or a message delivered); nil unless the current run takes
	// delta checkpoints. A clean vertex is guaranteed to have an unchanged
	// value and flags and an empty inbox at both barriers, because a
	// non-empty inbox forces reactivation and therefore compute.
	dirty []bool

	// edges is the adaptive-repartitioning observation matrix (nil unless
	// Config.Repartition is set and a window has opened): per (sender,
	// receiver) vertex-pair message counts for the current observation
	// window, recorded at Send time by this worker's own compute pass —
	// sender-side, because only there is the source vertex still known.
	// Written single-threaded per worker, so it needs no locks for the same
	// reason the outbox lanes don't. curSrc is the vertex currently
	// computing, maintained only while a window is observing.
	edges  map[migEdge]int64
	curSrc VertexID
}

func (w *worker[V, M]) vertexCount() int { return len(w.ids) - w.nDead }

// Graph is a distributed vertex collection plus engine state. Create one
// with NewGraph, populate it with AddVertex (or via MapReduce/Convert), then
// Run one or more jobs over it.
type Graph[V, M any] struct {
	cfg      Config
	workers  []*worker[V, M]
	clock    *SimClock
	agg      *aggState
	combiner func(a, b M) M
	// combTotal declares the installed combiner total (SetTotalCombiner):
	// delivery may then fold across source workers too, so compute sees at
	// most one combined message per vertex (superstep fusion).
	combTotal bool
	// runComb/runTotal are the combiner as locked at Run start. Send and
	// delivery read only these, never g.combiner, so installing a combiner
	// mid-run can never split one superstep between combined and
	// uncombined semantics — it takes effect at the next Run.
	runComb  func(a, b M) M
	runTotal bool

	// srcDone is the per-source completion counter array of overlapped
	// delivery (Config.Overlap): srcDone[s] is signalled when worker s has
	// sealed its outbox lanes for the current superstep, and destination
	// workers wait on exactly the source they need next instead of on a
	// global barrier. Reused across supersteps so the steady state
	// allocates nothing.
	srcDone []sync.WaitGroup

	// Per-superstep scratch, reused across supersteps and runs.
	computeNs      []float64
	bytesPerWorker []float64
	localBytes     []float64

	// runName is the current run's label (set by Run), used for pprof
	// labels on the delivery and checkpoint phases.
	runName string

	// observing gates traffic recording (Config.Repartition): set by the
	// coordinator before each superstep's compute/delivery phases, read by
	// the delivery passes. True only during the observation window.
	observing bool
}

// NewGraph creates an empty graph with the given configuration.
func NewGraph[V, M any](cfg Config) *Graph[V, M] {
	cfg = cfg.withDefaults()
	g := &Graph[V, M]{cfg: cfg, clock: NewSimClock(cfg.Cost), agg: newAggState()}
	for i := 0; i < cfg.Workers; i++ {
		g.workers = append(g.workers, &worker[V, M]{idx: make(map[VertexID]int)})
	}
	return g
}

// Workers returns the number of logical workers.
func (g *Graph[V, M]) Workers() int { return g.cfg.Workers }

// Config returns the (defaulted) configuration the graph was built with, so
// downstream stages can inherit Parallel/Strict/cost settings.
func (g *Graph[V, M]) Config() Config { return g.cfg }

// Clock returns the simulated-cluster clock shared by all jobs on g.
func (g *Graph[V, M]) Clock() *SimClock { return g.clock }

// SetJobPrefix replaces the checkpoint job-key prefix for subsequent runs
// on g (see Config.JobPrefix). The workflow layer calls this before every
// op that reuses an existing graph, so each op's jobs reserve keys under
// the op's own prefix.
func (g *Graph[V, M]) SetJobPrefix(prefix string) { g.cfg.JobPrefix = prefix }

// WorkerOf returns the worker index that owns id, as decided by the
// configured Partitioner. Every placement decision in the engine routes
// through here: vertex insertion, message-lane addressing, point lookups,
// and the Convert re-shard.
func (g *Graph[V, M]) WorkerOf(id VertexID) int {
	return g.cfg.Partitioner.Assign(id, g.cfg.Workers)
}

// Partitioner returns the (defaulted) placement strategy of this graph.
func (g *Graph[V, M]) Partitioner() Partitioner { return g.cfg.Partitioner }

// AddVertex inserts a vertex. Adding an existing ID replaces its value.
// AddVertex must not be called while Run is executing.
func (g *Graph[V, M]) AddVertex(id VertexID, val V) {
	w := g.workers[g.WorkerOf(id)]
	if i, ok := w.idx[id]; ok {
		if w.dead[i] {
			w.dead[i] = false
			w.nDead--
		}
		w.vals[i] = val
		return
	}
	w.idx[id] = len(w.ids)
	w.ids = append(w.ids, id)
	w.vals = append(w.vals, val)
	w.active = append(w.active, true)
	w.dead = append(w.dead, false)
}

// sortVertices restores sorted-by-ID order inside each worker and compacts
// away removed vertices. Called before every Run.
func (g *Graph[V, M]) sortVertices() {
	for _, w := range g.workers {
		type rec struct {
			id  VertexID
			val V
		}
		recs := make([]rec, 0, w.vertexCount())
		for i, id := range w.ids {
			if !w.dead[i] {
				recs = append(recs, rec{id, w.vals[i]})
			}
		}
		sort.Slice(recs, func(a, b int) bool { return recs[a].id < recs[b].id })
		n := len(recs)
		w.ids = make([]VertexID, n)
		w.vals = make([]V, n)
		w.active = make([]bool, n)
		w.dead = make([]bool, n)
		w.idx = make(map[VertexID]int, n)
		w.nDead = 0
		for i, r := range recs {
			w.ids[i] = r.id
			w.vals[i] = r.val
			w.active[i] = true
			w.idx[r.id] = i
		}
		// Empty inbox arena sized for the new vertex count: all offsets
		// zero, so the first superstep sees no messages.
		w.inArena = w.inArena[:0]
		w.inOff = growInt32(w.inOff, n+1)
		for i := range w.inOff {
			w.inOff[i] = 0
		}
		w.inCur = growInt32(w.inCur, n)
	}
}

// growInt32 returns s resized to n, reallocating only when capacity is
// insufficient.
func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// growBool is growInt32 for bool slices.
func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// VertexCount returns the number of live vertices.
func (g *Graph[V, M]) VertexCount() int {
	n := 0
	for _, w := range g.workers {
		n += w.vertexCount()
	}
	return n
}

// ForEach calls fn for every live vertex, in worker order then ID order.
// The value pointer may be used to read or mutate the vertex value.
func (g *Graph[V, M]) ForEach(fn func(id VertexID, val *V)) {
	for _, w := range g.workers {
		for i, id := range w.ids {
			if !w.dead[i] {
				fn(id, &w.vals[i])
			}
		}
	}
}

// ForEachWorker calls fn(workerIndex, id, val) for every live vertex. Used
// by the convert/chaining path and by contig-ID assignment, which needs to
// know which worker owns a vertex.
func (g *Graph[V, M]) ForEachWorker(fn func(worker int, id VertexID, val *V)) {
	for wi, w := range g.workers {
		for i, id := range w.ids {
			if !w.dead[i] {
				fn(wi, id, &w.vals[i])
			}
		}
	}
}

// Value returns the value of vertex id, if present.
func (g *Graph[V, M]) Value(id VertexID) (V, bool) {
	w := g.workers[g.WorkerOf(id)]
	if i, ok := w.idx[id]; ok && !w.dead[i] {
		return w.vals[i], true
	}
	var zero V
	return zero, false
}

// SetValue overwrites the value of an existing vertex and reports whether
// the vertex was present.
func (g *Graph[V, M]) SetValue(id VertexID, val V) bool {
	w := g.workers[g.WorkerOf(id)]
	if i, ok := w.idx[id]; ok && !w.dead[i] {
		w.vals[i] = val
		return true
	}
	return false
}

// RemoveVertex deletes a vertex outside of a run.
func (g *Graph[V, M]) RemoveVertex(id VertexID) {
	w := g.workers[g.WorkerOf(id)]
	if i, ok := w.idx[id]; ok && !w.dead[i] {
		w.dead[i] = true
		w.nDead++
	}
}

// RunOption modifies a single Run.
type RunOption func(*runOpts)

type runOpts struct {
	activateAll bool
	name        string
}

// WithName labels the run in its Stats (useful when several jobs share a
// graph and a clock).
func WithName(name string) RunOption { return func(o *runOpts) { o.name = name } }

// SetCombiner installs a Pregel message combiner for subsequent runs:
// messages addressed to the same destination vertex within one worker's
// outbox are folded pairwise with fn before shuffling, reducing message
// traffic exactly as Google's Pregel combiners do. Pass nil to remove.
// The combiner must be commutative and associative; compute functions then
// receive at most one combined message per (worker, destination) pair.
//
// The combiner is captured once at Run start: a SetCombiner while a run is
// in flight (e.g. from a compute function) never changes the semantics of
// the run already executing — messages queued before the call and messages
// queued after it are treated identically — and takes effect at the next
// Run. SetCombiner must not be called concurrently with a Parallel run.
func (g *Graph[V, M]) SetCombiner(fn func(a, b M) M) { g.combiner, g.combTotal = fn, false }

// SetTotalCombiner installs fn exactly like SetCombiner and additionally
// declares the job combiner-total: the folded value of ALL messages to a
// vertex is what compute needs, never the per-source pieces. Delivery then
// completes the fold across source workers while placing messages
// (superstep fusion — the combine work of the next superstep's compute is
// fused into the shuffle), so compute receives at most ONE combined message
// per vertex. Folding happens in source-worker order, so results are
// identical to running SetCombiner and folding the per-worker pieces in
// compute. The same Run-start capture rule as SetCombiner applies.
func (g *Graph[V, M]) SetTotalCombiner(fn func(a, b M) M) { g.combiner, g.combTotal = fn, fn != nil }

// Run executes compute over the graph in supersteps until every vertex has
// voted to halt and no messages are in flight, or the superstep limit is
// reached. All vertices start active (standard Pregel semantics). It returns
// per-run statistics; simulated time is also accumulated on g.Clock().
//
// With Config.CheckpointEvery set, the run snapshots its state every N
// supersteps (plus a baseline before superstep 0); a worker crash injected
// by Config.Faults rolls back to the latest checkpoint and replays, and —
// because the engine is deterministic — finishes with the same vertex
// values, aggregators and counters as an unfailed run (only Recoveries and
// simulated time differ). With Config.Resume the run first fast-forwards
// from any checkpoint a previous process left in Config.Checkpointer.
func (g *Graph[V, M]) Run(compute Compute[V, M], opts ...RunOption) (*Stats, error) {
	o := runOpts{activateAll: true}
	for _, opt := range opts {
		opt(&o)
	}
	g.sortVertices()
	g.agg.reset()
	stats := &Stats{Name: o.name, Workers: g.cfg.Workers}
	g.runName = o.name
	// Lock the combiner for the whole run (see SetCombiner): send and
	// delivery read the run-scoped copy only.
	g.runComb, g.runTotal = g.combiner, g.combTotal
	wire := g.transportActive()
	overlap := g.cfg.Overlap && g.cfg.Parallel && g.cfg.Workers > 1 && !wire
	if wire && g.cfg.Overlap {
		g.warnf("pregel: Overlap is disabled under transport %q (delivery is a network drain, not a fused phase)", g.cfg.Transport.Name())
	}
	tr := g.cfg.Tracer
	rm := newRunMetrics(g.cfg.Metrics)
	if pol := g.cfg.Repartition; pol != nil {
		// withDefaults normalizes Window/MaxMoves but deliberately leaves a
		// broken cadence alone: silently "fixing" Every would run a policy
		// the caller never asked for.
		if err := pol.validate(); err != nil {
			return stats, fmt.Errorf("pregel: job %q: %w", o.name, err)
		}
	}
	if wire {
		if tw := g.cfg.Transport.Workers(); tw != g.cfg.Workers {
			return stats, fmt.Errorf("pregel: job %q: transport %q addresses %d workers, the graph has %d",
				o.name, g.cfg.Transport.Name(), tw, g.cfg.Workers)
		}
		if err := g.transportConnect(); err != nil {
			return stats, fmt.Errorf("pregel: job %q: %w", o.name, err)
		}
		txBase := g.cfg.Transport.Counters()
		defer func() { foldTransportMetrics(g.cfg.Metrics, txBase, g.cfg.Transport.Counters()) }()
	}
	if tr != nil {
		g.emit(telemetry.KindBegin, "job", "pregel", nowNs(), g.clock.Ns(),
			telemetry.S("name", o.name), telemetry.I("vertices", int64(g.VertexCount())))
		defer func() {
			g.emit(telemetry.KindEnd, "job", "pregel", nowNs(), g.clock.Ns(),
				telemetry.I("supersteps", int64(stats.Supersteps)),
				telemetry.I("messages", stats.Messages))
		}()
	}

	ck, err := g.newCkptRun(o.name)
	if err != nil {
		return stats, err
	}
	// Dirty tracking exists only when this run takes delta checkpoints.
	for _, w := range g.workers {
		if ck != nil && ck.delta {
			w.dirty = growBool(w.dirty, len(w.ids))
			clear(w.dirty)
		} else {
			w.dirty = nil
		}
	}
	step := 0
	pending := int64(0) // messages delivered at the last barrier
	downStreak := 0     // consecutive worker-down rollbacks (transport only)
	if ck != nil {
		restored := false
		if g.cfg.Resume {
			file, ok, err := ck.loadCheckpoint()
			if err != nil {
				return stats, err
			}
			if !ok {
				// Nothing under our key: make sure that is "no previous
				// process", not "a previous binary wrote checkpoints under
				// the legacy key format" (which would silently recompute).
				if err := ck.checkLegacyKeys(); err != nil {
					return stats, err
				}
			}
			if ok {
				if step, pending, err = g.restoreCheckpoint(file, stats); err != nil {
					return stats, err
				}
				restored = true
			}
		}
		if !restored {
			// Baseline: recovery from a crash before the first cadence
			// checkpoint restarts the job from its input state.
			if err := g.saveCheckpoint(ck, 0, 0, stats); err != nil {
				return stats, err
			}
		}
	}

	for {
		if step >= g.cfg.MaxSupersteps {
			return stats, fmt.Errorf("pregel: job %q exceeded %d supersteps", o.name, g.cfg.MaxSupersteps)
		}
		anyActive := false
		for _, w := range g.workers {
			for i := range w.active {
				if w.active[i] && !w.dead[i] {
					anyActive = true
					break
				}
			}
			if anyActive {
				break
			}
		}
		if !anyActive && pending == 0 {
			break
		}

		// Fault injection: the crash consumes the round (its work is lost)
		// and the run rolls back to the latest checkpoint.
		if w, fired := g.cfg.Faults.tick(g.cfg.Workers); fired {
			if tr != nil {
				g.emit(telemetry.KindInstant, "fault", "fault", nowNs(), g.clock.Ns(),
					telemetry.I("worker", int64(w)), telemetry.I("step", int64(step)))
			}
			if ck == nil {
				return stats, fmt.Errorf("pregel: job %q: worker %d crashed at superstep %d with checkpointing disabled", o.name, w, step)
			}
			file, ok, err := ck.loadCheckpoint()
			if err != nil {
				return stats, err
			}
			if !ok {
				return stats, fmt.Errorf("pregel: job %q: worker %d crashed at superstep %d but no checkpoint exists", o.name, w, step)
			}
			if step, pending, err = g.restoreCheckpoint(file, stats); err != nil {
				return stats, err
			}
			stats.Recoveries++
			if g.cfg.Metrics != nil {
				g.cfg.Metrics.Counter("pregel_recoveries_total").Add(1)
			}
			continue
		}

		// Adaptive repartitioning: open/close the traffic-observation window
		// for the superstep about to execute (coordinator-side, before any
		// worker goroutine reads the gate).
		g.observeWindow(step)

		if g.computeNs == nil {
			g.computeNs = make([]float64, g.cfg.Workers)
			g.bytesPerWorker = make([]float64, g.cfg.Workers)
			g.localBytes = make([]float64, g.cfg.Workers)
		}
		// Telemetry observes at the barrier only: wall marks bracket the
		// phases, the sim-timeline sub-phase boundaries are synthesized from
		// SuperstepParts, and the events are emitted together after the
		// charge so the disabled path costs one branch and no allocations.
		var activeVerts, haltedVerts int64
		var wall0, wall1, wall2 int64
		var sim0 float64
		if tr != nil || rm != nil {
			activeVerts, haltedVerts = g.countVertices()
		}
		if tr != nil {
			wall0 = nowNs()
			sim0 = g.clock.Ns()
		}
		computeNs := g.computeNs
		var delivered, dropped int64
		var stepErr error
		if overlap {
			// Fused phase: compute and delivery share one goroutine per
			// worker; delivery of a source's lanes starts as soon as that
			// source signals, not at a global barrier.
			g.overlapStep(step, compute, computeNs)
			delivered, dropped, stepErr = g.collectDelivery()
			if tr != nil {
				wall1 = nowNs()
				wall2 = wall1
			}
		} else {
			forEachWorkerProf(g.cfg.Workers, g.cfg.Parallel, o.name, "compute", func(wi int) {
				computeNs[wi] = g.runWorker(wi, step, compute)
			})
			if tr != nil {
				wall1 = nowNs()
			}
			// Barrier: deliver messages, apply aggregator values, record stats.
			if wire {
				delivered, dropped, stepErr = g.deliverViaTransport(step)
			} else {
				delivered, dropped, stepErr = g.deliver()
			}
			if tr != nil {
				wall2 = nowNs()
			}
		}
		if stepErr != nil {
			if wire && transport.IsWorkerDown(stepErr) {
				if downStreak++; downStreak > maxTransportRecoveries {
					return stats, fmt.Errorf("pregel: job %q: %d consecutive worker failures, giving up: %w", o.name, downStreak, stepErr)
				}
				if step, pending, err = g.transportRecover(ck, o.name, step, stepErr, stats); err != nil {
					return stats, err
				}
				continue
			}
			return stats, stepErr
		}
		msgs, local := int64(0), int64(0)
		for _, w := range g.workers {
			msgs += w.msgsOut
			local += w.msgsLocal
		}
		// Two-tier network charge: a worker's self-addressed messages stay
		// intra-machine; only the rest travel the simulated wire.
		bytesPerWorker, localBytes := g.bytesPerWorker, g.localBytes
		for wi, w := range g.workers {
			bytesPerWorker[wi] = float64(w.msgsOut-w.msgsLocal) * float64(g.cfg.MessageBytes)
			localBytes[wi] = float64(w.msgsLocal) * float64(g.cfg.MessageBytes)
		}
		var simComp, simNet float64
		if tr != nil {
			_, simComp, simNet = g.clock.SuperstepParts(computeNs, bytesPerWorker, localBytes)
		}
		g.clock.ChargeSuperstepTiered(computeNs, bytesPerWorker, localBytes)
		g.clock.CountMessages(local, msgs-local)
		stats.Supersteps++
		stats.Messages += msgs
		stats.LocalMessages += local
		stats.RemoteMessages += msgs - local
		stats.Bytes += msgs * int64(g.cfg.MessageBytes)
		stats.DroppedMessages += dropped
		if rm != nil {
			rm.localMsgs.Add(local)
			rm.remoteMsgs.Add(msgs - local)
			rm.bytes.Add(msgs * int64(g.cfg.MessageBytes))
			rm.supersteps.Add(1)
			rm.dropped.Add(dropped)
			rm.activeVerts.Set(activeVerts)
			rm.haltedVerts.Set(haltedVerts)
			for _, w := range g.workers {
				rm.inboxDepth.Observe(float64(w.delivered))
			}
		}
		if tr != nil {
			// Span args carry only placement-invariant totals (step, active
			// vertices, delivered/dropped/message counts) so the signature
			// sequence is identical across partitioners and worker counts.
			wall3 := nowNs()
			sim1 := g.clock.Ns()
			g.emit(telemetry.KindBegin, "superstep", "pregel", wall0, sim0,
				telemetry.I("step", int64(step)), telemetry.I("active", activeVerts))
			if overlap {
				// The fused compute+delivery wall window; the compute and
				// shuffle spans inside it keep their synthesized sim-timeline
				// boundaries, so sim traces stay comparable across modes.
				g.emit(telemetry.KindBegin, "overlap", "phase", wall0, sim0,
					telemetry.I("step", int64(step)))
			}
			g.emit(telemetry.KindBegin, "compute", "phase", wall0, sim0)
			g.emit(telemetry.KindEnd, "compute", "phase", wall1, sim0+simComp)
			g.emit(telemetry.KindBegin, "shuffle", "phase", wall1, sim0+simComp)
			g.emit(telemetry.KindEnd, "shuffle", "phase", wall2, sim0+simComp+simNet,
				telemetry.I("delivered", delivered), telemetry.I("dropped", dropped))
			if overlap {
				g.emit(telemetry.KindEnd, "overlap", "phase", wall2, sim0+simComp+simNet)
			}
			g.emit(telemetry.KindBegin, "barrier", "phase", wall2, sim0+simComp+simNet)
			g.emit(telemetry.KindEnd, "barrier", "phase", wall3, sim1)
			g.emit(telemetry.KindEnd, "superstep", "pregel", wall3, sim1,
				telemetry.I("messages", msgs))
		}
		g.agg.flip()
		if wire {
			if berr := g.transportBarrier(step); berr != nil {
				if !transport.IsWorkerDown(berr) {
					return stats, berr
				}
				if downStreak++; downStreak > maxTransportRecoveries {
					return stats, fmt.Errorf("pregel: job %q: %d consecutive worker failures, giving up: %w", o.name, downStreak, berr)
				}
				if step, pending, err = g.transportRecover(ck, o.name, step, berr, stats); err != nil {
					return stats, err
				}
				continue
			}
		}
		downStreak = 0
		pending = delivered
		step++
		// Adaptive repartitioning commits here — after the barrier, before
		// the cadence checkpoint — so a checkpoint always captures the
		// migrated partitions together with the routing table that placed
		// them. A worker lost mid-migration aborts before anything is
		// spliced and rolls back exactly like a lost superstep; the delta
		// chain is cut (haveFull=false) because per-index dirty tracking
		// does not survive a relocation.
		if g.repartitionDue(step) {
			merr := g.runRepartition(step, stats)
			if merr != nil && wire && transport.IsWorkerDown(merr) {
				if downStreak++; downStreak > maxTransportRecoveries {
					return stats, fmt.Errorf("pregel: job %q: %d consecutive worker failures, giving up: %w", o.name, downStreak, merr)
				}
				if step, pending, err = g.transportRecover(ck, o.name, step, merr, stats); err != nil {
					return stats, err
				}
				continue
			}
			if merr != nil {
				return stats, merr
			}
			if ck != nil {
				ck.haveFull = false
			}
		}
		if ck != nil && step%ck.every == 0 {
			if err := g.saveCheckpoint(ck, step, pending, stats); err != nil {
				return stats, err
			}
		}
	}
	stats.SimSeconds = g.clock.Seconds() // cumulative; callers can diff
	return stats, nil
}

// runWorker executes one superstep for one worker partition and returns the
// measured compute nanoseconds.
func (g *Graph[V, M]) runWorker(wi, step int, compute Compute[V, M]) float64 {
	w := g.workers[wi]
	if w.outbox == nil {
		w.outbox = make([][]envelope[M], g.cfg.Workers)
	}
	for i := range w.outbox {
		w.outbox[i] = w.outbox[i][:0]
	}
	if g.runComb != nil {
		if w.fold == nil {
			w.fold = make([]map[VertexID]int32, g.cfg.Workers)
			for i := range w.fold {
				w.fold[i] = make(map[VertexID]int32)
			}
		}
		for _, m := range w.fold {
			clear(m)
		}
	}
	w.msgsOut, w.msgsLocal = 0, 0
	w.ctx = Context[M]{g: gAdapter[V, M]{g}, worker: wi, superstep: step}
	ctx := &w.ctx
	start := nowNs()
	for i := range w.ids {
		if w.dead[i] {
			continue
		}
		msgs := w.inArena[w.inOff[i]:w.inOff[i+1]]
		if len(msgs) > 0 {
			w.active[i] = true
		}
		if !w.active[i] {
			continue
		}
		if w.dirty != nil {
			w.dirty[i] = true
		}
		ctx.halt = false
		ctx.remove = false
		w.curSrc = w.ids[i] // so an observing send can attribute its edges
		compute(ctx, w.ids[i], &w.vals[i], msgs)
		if ctx.remove {
			w.dead[i] = true
			w.nDead++
		} else if ctx.halt {
			w.active[i] = false
		}
	}
	return float64(nowNs() - start)
}

// combineEnvelopes folds messages sharing a destination, preserving the
// first-occurrence order of destinations for determinism. It is the
// reference semantics of the engine's eager at-Send combine (which folds
// into the same lane positions in the same left-to-right order); the fuzz
// suite asserts the two stay equivalent.
func combineEnvelopes[M any](envs []envelope[M], fn func(a, b M) M) []envelope[M] {
	if len(envs) < 2 {
		return envs
	}
	idx := make(map[VertexID]int, len(envs))
	out := envs[:0]
	for _, e := range envs {
		if i, ok := idx[e.dst]; ok {
			out[i].msg = fn(out[i].msg, e.msg)
			continue
		}
		idx[e.dst] = len(out)
		out = append(out, e)
	}
	return out
}

// deliver routes every outbox envelope into the destination worker's inbox
// arena for the next superstep. Each destination worker drains the lanes
// addressed to it — concurrently in Parallel mode, since no two destination
// workers touch the same lane or arena — and the per-worker results are
// folded after the implicit join. The result is bit-identical to the
// sequential path because each worker's arena depends only on lane contents,
// which are fixed at the compute barrier.
func (g *Graph[V, M]) deliver() (delivered, dropped int64, err error) {
	forEachWorkerProf(g.cfg.Workers, g.cfg.Parallel, g.runName, "deliver", g.deliverTo)
	return g.collectDelivery()
}

// collectDelivery folds the per-destination delivery results into run
// totals; called after the join of the deliver (or fused overlap) phase.
func (g *Graph[V, M]) collectDelivery() (delivered, dropped int64, err error) {
	for _, w := range g.workers {
		delivered += w.delivered
		dropped += w.dropped
		if err == nil && w.deliverErr != nil {
			err = w.deliverErr
		}
	}
	return delivered, dropped, err
}

// deliverTo rebuilds destination worker dwi's inbox arena from the lanes
// addressed to it: a counting pass (countLane, per source lane) resolves
// each envelope's vertex index and tallies per-vertex counts, then
// placeInbox lays out the offset index with a prefix sum and copies
// messages into their group. Iterating lanes in source-worker order in both
// passes preserves the engine's historical delivery order (source worker,
// then emission order) within each vertex's messages.
func (g *Graph[V, M]) deliverTo(dwi int) {
	dst := g.workers[dwi]
	g.resetInbox(dst)
	for swi, src := range g.workers {
		g.countLane(dst, swi, src.outbox[dwi])
	}
	g.placeInbox(dst, dwi)
}

// overlapStep runs one superstep's compute and delivery as a single fused
// parallel phase (Config.Overlap): each worker computes its partition,
// signals its per-source completion counter — its outbox lanes are sealed —
// and then switches role to destination, draining one source lane at a time
// and blocking only on the specific source it needs next. Lane s→d is
// written only by s during compute and read by d only after s's signal, and
// d touches its own arena only after its own compute, so the fused phase
// needs no locks; and because lanes are consumed in source-worker order
// with the same count/place passes as deliverTo, the resulting arenas — and
// therefore the whole run — are bit-identical to barriered delivery.
func (g *Graph[V, M]) overlapStep(step int, compute Compute[V, M], computeNs []float64) {
	if g.srcDone == nil {
		g.srcDone = make([]sync.WaitGroup, g.cfg.Workers)
	}
	srcDone := g.srcDone
	for i := range srcDone {
		srcDone[i].Add(1)
	}
	forEachWorkerProf(g.cfg.Workers, true, g.runName, "overlap", func(wi int) {
		computeNs[wi] = g.runWorker(wi, step, compute)
		srcDone[wi].Done()
		dst := g.workers[wi]
		g.resetInbox(dst)
		for s := range g.workers {
			srcDone[s].Wait()
			g.countLane(dst, s, g.workers[s].outbox[wi])
		}
		g.placeInbox(dst, wi)
	})
}

// resetInbox clears destination-side delivery state for a new superstep.
func (g *Graph[V, M]) resetInbox(dst *worker[V, M]) {
	dst.delivered, dst.dropped, dst.deliverErr = 0, 0, nil
	counts := dst.inCur[:len(dst.ids)]
	for i := range counts {
		counts[i] = 0
	}
	dst.rIdx = dst.rIdx[:0]
}

// countLane is the resolve-and-count half of delivery for one source lane:
// each envelope's destination vertex index is resolved (and remembered in
// rIdx for the placement pass), per-vertex counts accumulate, and dropped
// and strict-mode accounting happens here. With a total combiner installed
// the per-vertex count is capped at one — placeInbox folds further messages
// into that single slot instead of appending. src is the lane's source
// worker. (Adaptive-repartitioning traffic is observed on the send side,
// where the source vertex is still known — see gAdapter.send.)
func (g *Graph[V, M]) countLane(dst *worker[V, M], src int, lane []envelope[M]) {
	counts := dst.inCur[:len(dst.ids)]
	fused := g.runTotal && g.runComb != nil
	for _, e := range lane {
		i, ok := dst.idx[e.dst]
		if !ok || dst.dead[i] {
			dst.rIdx = append(dst.rIdx, -1)
			dst.dropped++
			if g.cfg.Strict && dst.deliverErr == nil {
				dst.deliverErr = fmt.Errorf("pregel: message to nonexistent vertex %d", e.dst)
			}
			continue
		}
		dst.rIdx = append(dst.rIdx, int32(i))
		dst.delivered++
		if dst.dirty != nil {
			dst.dirty[i] = true
		}
		if !fused || counts[i] == 0 {
			counts[i]++
		}
	}
}

// placeInbox is the layout-and-place half of delivery: a prefix sum over
// the per-vertex counts becomes the offset index, then messages are copied
// into their group in lane order. With a total combiner, messages beyond a
// vertex's first fold into its single slot in the same order, completing
// the cross-source combine during the shuffle (superstep fusion).
func (g *Graph[V, M]) placeInbox(dst *worker[V, M], dwi int) {
	n := len(dst.ids)
	counts := dst.inCur[:n]
	off := int32(0)
	for i := 0; i < n; i++ {
		c := counts[i]
		dst.inOff[i] = off
		counts[i] = off // becomes the placement cursor
		off += c
	}
	dst.inOff[n] = off
	if cap(dst.inArena) < int(off) {
		dst.inArena = make([]M, off)
	} else {
		dst.inArena = dst.inArena[:off]
	}
	fused := g.runTotal && g.runComb != nil
	m := 0
	for _, src := range g.workers {
		for _, e := range src.outbox[dwi] {
			i := dst.rIdx[m]
			m++
			if i < 0 {
				continue
			}
			if fused && counts[i] > dst.inOff[i] {
				slot := &dst.inArena[dst.inOff[i]]
				*slot = g.runComb(*slot, e.msg)
				continue
			}
			dst.inArena[counts[i]] = e.msg
			counts[i]++
		}
	}
}

// gAdapter lets Context stay non-generic in V by capturing only what it
// needs from the graph.
type gAdapter[V, M any] struct{ g *Graph[V, M] }

// send routes one message into the source worker's lane for the destination
// worker. With a combiner installed it folds eagerly: the lane holds at most
// one envelope per destination vertex and new messages fold into it in
// emission order, so lanes never hold pre-combine volume and the result is
// identical to a post-compute combineEnvelopes pass.
func (a gAdapter[V, M]) send(from int, dst VertexID, m M) {
	g := a.g
	w := g.workers[from]
	if g.observing {
		// Adaptive-repartitioning observation, pre-combine so the recorded
		// affinity reflects logical traffic: one count per (sender, receiver)
		// vertex pair, the raw material of the migration solver.
		w.edges[migEdge{w.curSrc, dst}]++
	}
	dwi := g.WorkerOf(dst)
	if g.runComb != nil {
		fm := w.fold[dwi]
		if i, ok := fm[dst]; ok {
			lane := w.outbox[dwi]
			lane[i].msg = g.runComb(lane[i].msg, m)
			return
		}
		fm[dst] = int32(len(w.outbox[dwi]))
	}
	w.outbox[dwi] = append(w.outbox[dwi], envelope[M]{dst, m})
	w.msgsOut++
	if dwi == from {
		w.msgsLocal++
	}
}
func (a gAdapter[V, M]) workers() int    { return a.g.cfg.Workers }
func (a gAdapter[V, M]) aggs() *aggState { return a.g.agg }

type graphPort[M any] interface {
	send(from int, dst VertexID, m M)
	workers() int
	aggs() *aggState
}

// Context is passed to the compute function. It is only valid for the
// duration of one compute call.
type Context[M any] struct {
	g         graphPort[M]
	worker    int
	superstep int
	halt      bool
	remove    bool
}

// Superstep returns the current superstep number (0-based).
func (c *Context[M]) Superstep() int { return c.superstep }

// Worker returns the index of the worker executing this vertex.
func (c *Context[M]) Worker() int { return c.worker }

// NumWorkers returns the number of logical workers.
func (c *Context[M]) NumWorkers() int { return c.g.workers() }

// Send sends m to vertex dst, to be delivered next superstep.
func (c *Context[M]) Send(dst VertexID, m M) { c.g.send(c.worker, dst, m) }

// VoteToHalt deactivates this vertex; it is reactivated by any incoming
// message.
func (c *Context[M]) VoteToHalt() { c.halt = true }

// RemoveSelf deletes this vertex at the end of the superstep. Messages
// already addressed to it are dropped.
func (c *Context[M]) RemoveSelf() { c.remove = true }

// AggSum adds delta to the named sum aggregator for this superstep.
func (c *Context[M]) AggSum(name string, delta int64) { c.g.aggs().addSum(name, delta) }

// AggMin folds v into the named min aggregator for this superstep.
func (c *Context[M]) AggMin(name string, v int64) { c.g.aggs().addMin(name, v) }

// AggOr ORs v into the named boolean aggregator for this superstep.
func (c *Context[M]) AggOr(name string, v bool) { c.g.aggs().addOr(name, v) }

// PrevAggSum returns the value the named sum aggregator had at the end of
// the previous superstep (0 if never set).
func (c *Context[M]) PrevAggSum(name string) int64 { return c.g.aggs().prevSum(name) }

// PrevAggMin returns the previous-superstep min aggregator value and whether
// any vertex contributed to it.
func (c *Context[M]) PrevAggMin(name string) (int64, bool) { return c.g.aggs().prevMin(name) }

// PrevAggOr returns the previous-superstep boolean OR aggregator value.
func (c *Context[M]) PrevAggOr(name string) bool { return c.g.aggs().prevOr(name) }
