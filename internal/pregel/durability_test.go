package pregel_test

// Crash matrices for the checkpoint store: an engine-level, black-box
// counterpart to the codec-level corruption tests. Everything here runs
// against internal/testfs, which models real fsync/rename durability and
// injects torn writes, dropped fsyncs and mid-protocol crashes. The
// contract under test: whatever the filesystem does, a resumed run either
// finishes byte-identical to an unfailed run or refuses loudly — it never
// silently produces different output.

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"ppaassembler/internal/pregel"
	"ppaassembler/internal/testfs"
)

// ringCompute is a deterministic multi-superstep job (messages,
// aggregators, vote-to-halt) over primitive vertex/message types, so both
// full and delta checkpoints take the binary codec path. Only the first
// ringActive vertices keep circulating tokens; the rest halt after
// superstep 0, keeping the dirty set small enough that delta mode really
// writes deltas instead of tripping the mostly-dirty full-snapshot
// fallback.
const ringActive = 6

func ringCompute(n, steps int) pregel.Compute[int64, int64] {
	return func(ctx *pregel.Context[int64], id pregel.VertexID, v *int64, msgs []int64) {
		for _, m := range msgs {
			*v += m
		}
		*v += ctx.PrevAggSum("acc") % 7
		if uint64(id) >= ringActive || ctx.Superstep() >= steps {
			ctx.VoteToHalt()
			return
		}
		ctx.AggSum("acc", *v)
		ctx.Send(pregel.VertexID((uint64(id)+1)%ringActive), *v+int64(ctx.Superstep()))
	}
}

func buildRing(cfg pregel.Config, n int) *pregel.Graph[int64, int64] {
	g := pregel.NewGraph[int64, int64](cfg)
	for i := 0; i < n; i++ {
		g.AddVertex(pregel.VertexID(i), int64(i)+1)
	}
	return g
}

func ringVals(g *pregel.Graph[int64, int64]) map[pregel.VertexID]int64 {
	out := map[pregel.VertexID]int64{}
	g.ForEach(func(id pregel.VertexID, v *int64) { out[id] = *v })
	return out
}

func sameVals(t *testing.T, label string, want, got map[pregel.VertexID]int64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d vertices, want %d", label, len(got), len(want))
	}
	for id, w := range want {
		if got[id] != w {
			t.Errorf("%s: vertex %d = %d, want %d", label, id, got[id], w)
		}
	}
}

const ringN, ringSteps = 48, 9

// ringBaseline runs the job with no checkpointing at all and returns the
// ground-truth final values.
func ringBaseline(t *testing.T) map[pregel.VertexID]int64 {
	t.Helper()
	g := buildRing(pregel.Config{Workers: 4}, ringN)
	if _, err := g.Run(ringCompute(ringN, ringSteps)); err != nil {
		t.Fatal(err)
	}
	return ringVals(g)
}

// checkpointedRun executes the job on fs with a testfs-backed
// DirCheckpointer and returns the final values. delta toggles incremental
// checkpoints; resume runs with Config.Resume; warn collects engine
// diagnostics.
func checkpointedRun(fs *testfs.FS, delta, resume bool, warn func(string)) (map[pregel.VertexID]int64, error) {
	store, err := pregel.NewDirCheckpointerOpts("/ck", pregel.DirStoreOptions{FS: fs})
	if err != nil {
		return nil, err
	}
	g := buildRing(pregel.Config{
		Workers:          4,
		CheckpointEvery:  3,
		Checkpointer:     store,
		DeltaCheckpoints: delta,
		Resume:           resume,
		Warn:             warn,
	}, ringN)
	if _, err := g.Run(ringCompute(ringN, ringSteps), pregel.WithName("ring")); err != nil {
		return nil, err
	}
	return ringVals(g), nil
}

// TestTornTailWalkBack is the satellite-4 crash-matrix leg: truncate the
// newest checkpoint artifact at every section boundary (and a byte past
// each, catching mid-section tears) and require a resumed run to walk back
// to the previous intact snapshot and finish byte-identical — with a
// warning naming the damaged file, never silently.
func TestTornTailWalkBack(t *testing.T) {
	want := ringBaseline(t)
	for _, delta := range []bool{false, true} {
		name := "full"
		if delta {
			name = "delta"
		}
		t.Run(name, func(t *testing.T) {
			base := testfs.New()
			if _, err := checkpointedRun(base, delta, false, func(string) {}); err != nil {
				t.Fatal(err)
			}
			rep, err := pregel.VerifyCheckpointDirFS("/ck", base)
			if err != nil {
				t.Fatal(err)
			}
			if bad := rep.Corrupt(); len(bad) != 0 {
				t.Fatalf("clean run left corrupt artifacts: %+v", bad)
			}
			// Newest artifact = the one holding the highest step; prefer the
			// delta when both exist at that step (it supersedes the full).
			var newest pregel.CkptFileInfo
			for _, f := range rep.Files {
				if f.Temp {
					continue
				}
				if f.Step > newest.Step || (f.Step == newest.Step && f.Delta && !newest.Delta) {
					newest = f
				}
			}
			if newest.Name == "" || len(newest.SectionEnds) == 0 {
				t.Fatalf("no newest artifact found in %+v", rep.Files)
			}
			if delta && !newest.Delta {
				t.Fatalf("delta mode left a full snapshot as the newest artifact: %+v", newest)
			}

			cuts := []int64{0}
			for _, end := range newest.SectionEnds {
				if end < newest.Bytes {
					cuts = append(cuts, end, end+1)
				}
			}
			cuts = append(cuts, newest.Bytes-1)
			for _, cut := range cuts {
				fs := base.Clone()
				if err := fs.Truncate("/ck/"+newest.Name, int(cut)); err != nil {
					t.Fatal(err)
				}
				var warns []string
				got, err := checkpointedRun(fs, delta, true, func(msg string) { warns = append(warns, msg) })
				if err != nil {
					t.Fatalf("cut at %d: resume failed: %v", cut, err)
				}
				sameVals(t, fmt.Sprintf("cut at %d", cut), want, got)
				found := false
				for _, w := range warns {
					if strings.Contains(w, newest.Name) && strings.Contains(w, "corrupt") {
						found = true
					}
				}
				if !found {
					t.Errorf("cut at %d: no warning names the damaged artifact %s: %q", cut, newest.Name, warns)
				}
			}
		})
	}
}

// TestDroppedFsyncCrashMatrix sweeps a lying disk across every fsync of a
// checkpointed run, crashes, and resumes. Each leg must end in one of two
// acceptable states: a resume identical to the baseline, or a loud
// refusal (every artifact corrupt) after which a fresh directory
// reproduces the baseline exactly.
func TestDroppedFsyncCrashMatrix(t *testing.T) {
	want := ringBaseline(t)

	clean := testfs.New()
	if _, err := checkpointedRun(clean, false, false, func(string) {}); err != nil {
		t.Fatal(err)
	}
	total := clean.Syncs()
	if total == 0 {
		t.Fatal("checkpointed run issued no syncs; the matrix would test nothing")
	}

	for k := 0; k <= total; k++ {
		fs := testfs.New()
		fs.DropSyncsAfter(k)
		if _, err := checkpointedRun(fs, false, false, func(string) {}); err != nil {
			t.Fatalf("k=%d: dropped syncs must look like success to the writer, got %v", k, err)
		}
		fs.Crash()
		got, err := checkpointedRun(fs, false, true, func(string) {})
		switch {
		case err == nil:
			sameVals(t, fmt.Sprintf("k=%d resume", k), want, got)
		case strings.Contains(err.Error(), "failed integrity verification"):
			// Loud refusal is acceptable; deleting the directory and rerunning
			// must then reproduce the baseline.
			fresh := testfs.New()
			got, err := checkpointedRun(fresh, false, false, func(string) {})
			if err != nil {
				t.Fatalf("k=%d: rerun after refusal: %v", k, err)
			}
			sameVals(t, fmt.Sprintf("k=%d rerun", k), want, got)
		default:
			t.Fatalf("k=%d: resume failed with neither success nor a loud integrity refusal: %v", k, err)
		}
	}
}

// TestCrashBetweenWriteAndRename sweeps an op-granular crash across the
// whole run — every Write/Sync/Rename/SyncDir boundary of the commit
// protocol, including the gap between writing the temp file and renaming
// it into place. After the crash, a resumed run must reproduce the
// baseline; stray temp files must never be mistaken for checkpoints.
func TestCrashBetweenWriteAndRename(t *testing.T) {
	want := ringBaseline(t)
	for n := 0; ; n++ {
		fs := testfs.New()
		fs.FailAfterOps(n)
		_, err := checkpointedRun(fs, false, false, func(string) {})
		if err != nil && !errors.Is(err, testfs.ErrInjected) {
			t.Fatalf("n=%d: run failed with a non-injected error: %v", n, err)
		}
		injected := err != nil
		fs.Crash()
		got, rerr := checkpointedRun(fs, false, true, func(string) {})
		if rerr != nil {
			t.Fatalf("n=%d: resume after crash: %v", n, rerr)
		}
		sameVals(t, fmt.Sprintf("n=%d", n), want, got)
		if !injected {
			// The fault budget outlasted the whole run; the matrix is done.
			break
		}
	}
}

// TestDurabilityNoneSkipsFsync: the escape hatch really does elide every
// sync (and the default really does sync).
func TestDurabilityNoneSkipsFsync(t *testing.T) {
	run := func(d pregel.Durability) int {
		fs := testfs.New()
		store, err := pregel.NewDirCheckpointerOpts("/ck", pregel.DirStoreOptions{FS: fs, Durability: d})
		if err != nil {
			t.Fatal(err)
		}
		g := buildRing(pregel.Config{Workers: 4, CheckpointEvery: 3, Checkpointer: store}, ringN)
		if _, err := g.Run(ringCompute(ringN, ringSteps)); err != nil {
			t.Fatal(err)
		}
		return fs.Syncs()
	}
	if n := run(pregel.DurabilityNone); n != 0 {
		t.Errorf("DurabilityNone issued %d syncs, want 0", n)
	}
	if n := run(pregel.DurabilityFull); n == 0 {
		t.Error("DurabilityFull issued no syncs")
	}
}

// TestResumeAfterPartialRunTornTail combines process death with a torn
// tail: kill the run mid-flight via the fault plan, tear the newest
// artifact, and the restarted process must still converge on the baseline.
func TestResumeAfterPartialRunTornTail(t *testing.T) {
	want := ringBaseline(t)
	clean := testfs.New()
	if _, err := checkpointedRun(clean, false, false, func(string) {}); err != nil {
		t.Fatal(err)
	}
	fs := testfs.New()
	store, err := pregel.NewDirCheckpointerOpts("/ck", pregel.DirStoreOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	// A budget of 3/5 of a clean run's write volume guarantees the run dies
	// partway through some checkpoint write, leaving a torn temp or final
	// file.
	fs.FailAfterBytes(clean.BytesWritten() * 3 / 5)
	g := buildRing(pregel.Config{Workers: 4, CheckpointEvery: 3, Checkpointer: store}, ringN)
	if _, err := g.Run(ringCompute(ringN, ringSteps), pregel.WithName("ring")); !errors.Is(err, testfs.ErrInjected) {
		t.Fatalf("run under a byte budget below its write volume: %v, want ErrInjected", err)
	}
	fs.Crash()
	got, err := checkpointedRun(fs, false, true, func(string) {})
	if err != nil {
		t.Fatalf("resume after torn-tail crash: %v", err)
	}
	sameVals(t, "torn tail", want, got)
}
