package pregel

import "time"

// CostModel parameterizes the simulated distributed cluster. The paper ran
// on 16 machines with Gigabit Ethernet; this reproduction runs W logical
// workers on one host and charges each superstep its critical path
//
//	λ  +  max_w(compute_w)  +  max_w(bytes_w)/B  +  serial_w
//
// where λ is the per-superstep synchronization latency (barrier + round
// trips), compute_w the measured CPU time of worker w's partition, B the
// per-link bandwidth, and serial_w any explicitly charged serial section
// (used by the ABySS-style baseline's packet-collection stage, which is what
// makes it insensitive to worker count, as observed in the paper's §V).
//
// PPA constraints 1–3 (balanced linear work per superstep) are what make
// max_w(compute_w) ≈ total/W, so scaling curves emerge from measurement
// rather than from assumed speedups.
type CostModel struct {
	// SuperstepLatency is λ, charged once per superstep/shuffle round.
	SuperstepLatency time.Duration
	// BytesPerSecond is the per-worker link bandwidth B for inter-machine
	// (remote) traffic: messages whose source and destination vertices
	// live on different workers.
	BytesPerSecond float64
	// LocalBytesPerSecond is the intra-machine tier: messages between
	// vertices on the same worker never touch the wire and are charged at
	// this (memory-copy) bandwidth instead. Zero means
	// DefaultLocalBytesPerSecond. Without this split no placement strategy
	// can ever beat random: every message costs the same regardless of
	// locality.
	LocalBytesPerSecond float64
	// ComputeScale multiplies measured compute time (1.0 = as measured).
	// It lets experiments model slower per-node CPUs if desired.
	ComputeScale float64

	// CheckpointBytesPerSecond is the per-worker bandwidth to the
	// distributed file system used for checkpoint writes and recovery
	// reads. Checkpoints are written by all workers in parallel, so one
	// checkpoint costs CheckpointLatency plus the largest partition
	// divided by this bandwidth. Zero means BytesPerSecond (checkpoint
	// traffic shares the network links).
	CheckpointBytesPerSecond float64
	// CheckpointLatency is the fixed cost of one checkpoint or recovery
	// round (barrier, DFS metadata round trips, failure detection). Zero
	// means SuperstepLatency.
	CheckpointLatency time.Duration

	// MigrationBytesPerSecond is the per-worker bandwidth for live vertex
	// migration (Config.Repartition): relocated partition state moves
	// worker-to-worker in parallel, so one migration costs MigrationLatency
	// plus the busiest worker's transfer at this bandwidth. Zero means
	// CheckpointBytesPerSecond (migration payloads ride the same links and
	// codec as checkpoint traffic). Adaptive runs pay this toll on the same
	// clock their placement savings accrue to, which is what makes the
	// adaptive-vs-static makespan comparison honest.
	MigrationBytesPerSecond float64
	// MigrationLatency is the fixed cost of one migration decision that
	// moves at least one vertex (solver barrier, routing-table fan-out).
	// Zero means CheckpointLatency.
	MigrationLatency time.Duration
}

// DefaultLocalBytesPerSecond is the default intra-machine bandwidth: a
// conservative single-channel memory-copy rate (8 GiB/s), roughly 70x the
// default Gigabit wire. Local delivery is cheap but not free — the copy
// into the destination inbox still happens.
const DefaultLocalBytesPerSecond = 8 << 30

// DefaultCost returns a model resembling the paper's testbed: Gigabit
// Ethernet (~117 MiB/s per link) between machines, memory-copy bandwidth
// within one, and a 1 ms superstep barrier.
func DefaultCost() CostModel {
	return CostModel{
		SuperstepLatency:    time.Millisecond,
		BytesPerSecond:      117 * 1024 * 1024,
		LocalBytesPerSecond: DefaultLocalBytesPerSecond,
		ComputeScale:        1.0,
	}
}

// SimClock accumulates simulated wall-clock time for one pipeline run. The
// Pregel engine and the mini-MapReduce shuffle both charge it; baselines
// charge their own stages through the same interface so end-to-end times
// are comparable.
type SimClock struct {
	model CostModel
	ns    float64
	// Cluster-wide traffic counters, folded in by the engine and the mini-
	// MapReduce shuffle via CountMessages. They count traffic as executed:
	// supersteps replayed after a simulated crash recount, and a resumed
	// process counts only post-resume traffic (per-run Stats restore their
	// counters from the checkpoint instead).
	localMsgs, remoteMsgs int64
	// Cluster-wide checkpoint I/O counters, folded in by the engine via
	// CountCheckpointSave/CountCheckpointRestore. Like the traffic counters
	// they count I/O as executed, so a pipeline-level report can read total
	// checkpoint traffic off the one shared clock.
	ckptSaves, ckptRestores         int64
	ckptBytesWritten, ckptBytesRead int64
	// Live-migration counters (Config.Repartition), folded in by the engine
	// via CountMigration. Like the checkpoint counters they count work as
	// executed — a migration replayed after a rollback recounts, because the
	// bytes genuinely moved again.
	migrations, migratedVertices, migrationBytes int64
}

// NewSimClock returns a clock at time zero.
func NewSimClock(m CostModel) *SimClock {
	if m == (CostModel{}) {
		m = DefaultCost()
	}
	if m.ComputeScale == 0 {
		m.ComputeScale = 1
	}
	if m.BytesPerSecond == 0 {
		m.BytesPerSecond = DefaultCost().BytesPerSecond
	}
	if m.LocalBytesPerSecond == 0 {
		m.LocalBytesPerSecond = DefaultLocalBytesPerSecond
	}
	if m.CheckpointBytesPerSecond == 0 {
		m.CheckpointBytesPerSecond = m.BytesPerSecond
	}
	if m.CheckpointLatency == 0 {
		m.CheckpointLatency = m.SuperstepLatency
	}
	if m.MigrationBytesPerSecond == 0 {
		m.MigrationBytesPerSecond = m.CheckpointBytesPerSecond
	}
	if m.MigrationLatency == 0 {
		m.MigrationLatency = m.CheckpointLatency
	}
	return &SimClock{model: m}
}

// Model returns the clock's cost model.
func (c *SimClock) Model() CostModel { return c.model }

// ChargeSuperstep charges one BSP superstep: barrier latency plus the
// slowest worker's compute plus the most-loaded link's transfer time. All
// bytes are priced at the inter-machine tier; callers that distinguish
// local traffic use ChargeSuperstepTiered.
func (c *SimClock) ChargeSuperstep(computeNs, bytesPerWorker []float64) {
	c.ChargeSuperstepTiered(computeNs, bytesPerWorker, nil)
}

// ChargeSuperstepTiered charges one BSP superstep with the network split
// into its two tiers: remoteBytes travels the wire at BytesPerSecond,
// localBytes stays intra-machine at LocalBytesPerSecond. Each tier's
// critical path is its most-loaded worker; a nil localBytes charges no
// local traffic.
func (c *SimClock) ChargeSuperstepTiered(computeNs, remoteBytes, localBytes []float64) {
	maxC, maxR, maxL := 0.0, 0.0, 0.0
	for _, v := range computeNs {
		if v > maxC {
			maxC = v
		}
	}
	for _, v := range remoteBytes {
		if v > maxR {
			maxR = v
		}
	}
	for _, v := range localBytes {
		if v > maxL {
			maxL = v
		}
	}
	c.ns += float64(c.model.SuperstepLatency.Nanoseconds())
	c.ns += maxC * c.model.ComputeScale
	c.ns += maxR / c.model.BytesPerSecond * 1e9
	c.ns += maxL / c.model.LocalBytesPerSecond * 1e9
}

// CountMessages folds one shuffle round's traffic into the clock's
// cluster-wide counters, which is how a whole pipeline's remote-message
// fraction is read off one shared clock.
func (c *SimClock) CountMessages(local, remote int64) {
	c.localMsgs += local
	c.remoteMsgs += remote
}

// LocalMessages returns the intra-machine messages counted so far.
func (c *SimClock) LocalMessages() int64 { return c.localMsgs }

// RemoteMessages returns the inter-machine messages counted so far.
func (c *SimClock) RemoteMessages() int64 { return c.remoteMsgs }

// CountCheckpointSave folds one checkpoint write (total bytes across all
// worker partitions) into the clock's I/O counters.
func (c *SimClock) CountCheckpointSave(bytes int64) {
	c.ckptSaves++
	c.ckptBytesWritten += bytes
}

// CountCheckpointRestore folds one checkpoint restore into the counters.
func (c *SimClock) CountCheckpointRestore(bytes int64) {
	c.ckptRestores++
	c.ckptBytesRead += bytes
}

// CheckpointSaves returns the checkpoint writes counted so far.
func (c *SimClock) CheckpointSaves() int64 { return c.ckptSaves }

// CheckpointRestores returns the checkpoint restores counted so far.
func (c *SimClock) CheckpointRestores() int64 { return c.ckptRestores }

// CheckpointBytesWritten returns total checkpoint bytes written so far.
func (c *SimClock) CheckpointBytesWritten() int64 { return c.ckptBytesWritten }

// CheckpointBytesRestored returns total checkpoint bytes re-read so far.
func (c *SimClock) CheckpointBytesRestored() int64 { return c.ckptBytesRead }

// ChargeSerial charges a section that runs on a single node regardless of
// worker count (e.g. a coordinator stage).
func (c *SimClock) ChargeSerial(computeNs float64) {
	c.ns += computeNs * c.model.ComputeScale
}

// ChargeTransfer charges moving the given number of bytes over one link.
func (c *SimClock) ChargeTransfer(bytes float64) {
	c.ns += bytes / c.model.BytesPerSecond * 1e9
}

// ChargeCheckpoint charges writing one checkpoint to the distributed file
// system: every worker persists its partition concurrently, so the critical
// path is the fixed checkpoint latency plus the largest partition's
// transfer.
func (c *SimClock) ChargeCheckpoint(maxWorkerBytes float64) {
	c.ns += float64(c.model.CheckpointLatency.Nanoseconds())
	c.ns += maxWorkerBytes / c.model.CheckpointBytesPerSecond * 1e9
}

// ChargeMigration charges one live-migration round: relocation payloads
// ship worker-to-worker in parallel, so the critical path is the fixed
// migration latency plus the busiest sender's outgoing bytes at the
// migration bandwidth tier — priced exactly like a shuffle round's
// most-loaded link (ChargeSuperstepTiered), because the sections ride the
// same links. Decisions that move nothing charge nothing — observing
// traffic is free, only acting on it costs.
func (c *SimClock) ChargeMigration(maxWorkerBytes float64) {
	c.ns += float64(c.model.MigrationLatency.Nanoseconds())
	c.ns += maxWorkerBytes / c.model.MigrationBytesPerSecond * 1e9
}

// CountMigration folds one committed migration (vertices relocated, total
// payload bytes) into the clock's counters.
func (c *SimClock) CountMigration(vertices, bytes int64) {
	c.migrations++
	c.migratedVertices += vertices
	c.migrationBytes += bytes
}

// Migrations returns the committed migration rounds counted so far.
func (c *SimClock) Migrations() int64 { return c.migrations }

// MigratedVertices returns the vertices relocated so far.
func (c *SimClock) MigratedVertices() int64 { return c.migratedVertices }

// MigrationBytes returns the migration payload bytes moved so far.
func (c *SimClock) MigrationBytes() int64 { return c.migrationBytes }

// ChargeRecovery charges one recovery event: failure detection and
// coordination, plus re-reading the largest checkpoint partition — the
// read mirror of ChargeCheckpoint's write, priced identically. The
// replayed supersteps then charge themselves as they re-execute, so a
// recovered run's simulated time includes the full price of the failure.
func (c *SimClock) ChargeRecovery(maxWorkerBytes float64) {
	c.ChargeCheckpoint(maxWorkerBytes)
}

// advanceTo moves the clock forward to at least ns. Restoring a checkpoint
// uses it so that a resumed process starts at the checkpoint-time reading,
// while an in-process recovery (whose clock is already past it) is
// unaffected — the clock never rewinds.
func (c *SimClock) advanceTo(ns float64) {
	if ns > c.ns {
		c.ns = ns
	}
}

// Seconds returns the simulated time elapsed so far.
func (c *SimClock) Seconds() float64 { return c.ns / 1e9 }

// Ns returns the simulated time elapsed so far in nanoseconds — the reading
// telemetry events stamp into their SimNs field.
func (c *SimClock) Ns() float64 { return c.ns }

// SuperstepParts decomposes one superstep's charge into its three critical-
// path components — barrier latency, slowest-worker compute, and the
// network transfer (both tiers) — without charging anything. The tracer
// uses it to synthesize sub-phase boundaries on the simulated timeline; the
// actual charge still goes through the single ChargeSuperstepTiered call,
// so instrumented and uninstrumented runs accumulate bit-identical clocks.
func (c *SimClock) SuperstepParts(computeNs, remoteBytes, localBytes []float64) (latencyNs, compNs, netNs float64) {
	maxC, maxR, maxL := 0.0, 0.0, 0.0
	for _, v := range computeNs {
		if v > maxC {
			maxC = v
		}
	}
	for _, v := range remoteBytes {
		if v > maxR {
			maxR = v
		}
	}
	for _, v := range localBytes {
		if v > maxL {
			maxL = v
		}
	}
	latencyNs = float64(c.model.SuperstepLatency.Nanoseconds())
	compNs = maxC * c.model.ComputeScale
	netNs = maxR/c.model.BytesPerSecond*1e9 + maxL/c.model.LocalBytesPerSecond*1e9
	return latencyNs, compNs, netNs
}

// Reset rewinds the clock to zero and clears the traffic and checkpoint
// counters.
func (c *SimClock) Reset() {
	c.ns, c.localMsgs, c.remoteMsgs = 0, 0, 0
	c.ckptSaves, c.ckptRestores, c.ckptBytesWritten, c.ckptBytesRead = 0, 0, 0, 0
	c.migrations, c.migratedVertices, c.migrationBytes = 0, 0, 0
}

// nowNs is the engine's monotonic time source.
func nowNs() int64 { return time.Now().UnixNano() }

// Stats summarizes one Run (or one MapReduce) for reporting; Tables II/III
// of the paper are printed directly from these fields.
type Stats struct {
	Name       string
	Workers    int
	Supersteps int
	Messages   int64
	// LocalMessages and RemoteMessages split Messages by network tier:
	// local messages stayed on their worker, remote ones crossed the
	// simulated wire. The split — unlike the total — depends on the
	// configured Partitioner, which is exactly what makes placement
	// strategies comparable.
	LocalMessages   int64
	RemoteMessages  int64
	Bytes           int64
	DroppedMessages int64
	// Recoveries counts worker failures this run rolled back from. The
	// other counters are restored to their checkpoint values on rollback,
	// so a recovered run reports the same Supersteps/Messages/Bytes as an
	// unfailed one; only Recoveries and SimSeconds reveal the failure.
	Recoveries int
	// Checkpoint I/O performed by this run, as executed: saves (and their
	// total bytes across worker partitions) and restores (rollbacks plus
	// Resume fast-forwards). Unlike the message counters these are not
	// rewound on rollback — the I/O genuinely happened — so they are how a
	// report shows what fault tolerance cost.
	CheckpointSaves         int
	CheckpointRestores      int
	CheckpointBytesWritten  int64
	CheckpointBytesRestored int64
	// CheckpointDeltaSaves counts the subset of CheckpointSaves that were
	// incremental (Config.DeltaCheckpoints); saves minus delta-saves is the
	// number of full snapshots taken.
	CheckpointDeltaSaves int
	// Live-migration work committed by this run (Config.Repartition):
	// decision rounds that moved at least one vertex, vertices relocated,
	// and relocation payload bytes. Restored from the checkpoint on resume
	// — the original process did that work — and, like the checkpoint
	// counters, recounted when a rollback replays a migration.
	Migrations       int
	MigratedVertices int64
	MigrationBytes   int64
	// SimSeconds is the simulated clock reading when the run finished
	// (cumulative across jobs sharing the clock).
	SimSeconds float64
}

// Add folds other into s (for aggregating multi-job pipelines).
func (s *Stats) Add(other *Stats) {
	s.Supersteps += other.Supersteps
	s.Messages += other.Messages
	s.LocalMessages += other.LocalMessages
	s.RemoteMessages += other.RemoteMessages
	s.Bytes += other.Bytes
	s.DroppedMessages += other.DroppedMessages
	s.Recoveries += other.Recoveries
	s.CheckpointSaves += other.CheckpointSaves
	s.CheckpointRestores += other.CheckpointRestores
	s.CheckpointBytesWritten += other.CheckpointBytesWritten
	s.CheckpointBytesRestored += other.CheckpointBytesRestored
	s.CheckpointDeltaSaves += other.CheckpointDeltaSaves
	s.Migrations += other.Migrations
	s.MigratedVertices += other.MigratedVertices
	s.MigrationBytes += other.MigrationBytes
	if other.SimSeconds > s.SimSeconds {
		s.SimSeconds = other.SimSeconds
	}
}
