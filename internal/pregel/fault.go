package pregel

import (
	"fmt"
	"strconv"
	"strings"
)

// Fault is one scheduled worker failure: logical worker Worker crashes at
// the Round-th BSP round observed by the plan. Rounds are counted globally
// across everything that shares the plan — every engine superstep and every
// MapReduce phase (map or reduce) ticks the counter once — so a single plan
// can target any point of a multi-job pipeline. Rounds replayed during
// recovery advance the counter too, exactly like wall-clock time on a real
// cluster: a second fault scheduled after a first one lands relative to the
// rounds actually executed, replays included.
type Fault struct {
	// Round is the 0-based global BSP round at which the failure occurs.
	Round int
	// Worker is the failing logical worker. It is taken modulo the worker
	// count of whatever job is executing when the round arrives, so one
	// plan works across jobs with different worker counts.
	Worker int
}

// FaultPlan is a deterministic worker-crash schedule for fault-injection
// testing. Install one via Config.Faults (engine jobs) or MRConfig.Faults
// (mini-MapReduce); each fault fires exactly once. A FaultPlan must not be
// shared by concurrently executing jobs: pipelines tick it from their
// single-threaded coordinators in stage order.
//
// The zero value and the nil plan are both valid "no faults" plans.
type FaultPlan struct {
	faults []Fault
	fired  []bool
	seen   int
}

// NewFaultPlan builds a plan from the given faults.
func NewFaultPlan(faults ...Fault) *FaultPlan {
	return &FaultPlan{faults: faults, fired: make([]bool, len(faults))}
}

// ParseFaultPlan parses a CLI-style schedule: a comma-separated list of
// ROUND:WORKER pairs, e.g. "12:0,57:3" (crash worker 0 at global round 12,
// then worker 3 at round 57). An empty string is an empty plan.
func ParseFaultPlan(s string) (*FaultPlan, error) {
	var faults []Fault
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		round, worker, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("pregel: fault %q: want ROUND:WORKER", part)
		}
		r, err := strconv.Atoi(strings.TrimSpace(round))
		if err != nil || r < 0 {
			return nil, fmt.Errorf("pregel: fault %q: bad round", part)
		}
		w, err := strconv.Atoi(strings.TrimSpace(worker))
		if err != nil || w < 0 {
			return nil, fmt.Errorf("pregel: fault %q: bad worker", part)
		}
		faults = append(faults, Fault{Round: r, Worker: w})
	}
	return NewFaultPlan(faults...), nil
}

// tick advances the global round counter and reports whether an unfired
// fault is scheduled for the round that just started. workers is the
// executing job's worker count (for the modulo). Safe on a nil plan.
func (p *FaultPlan) tick(workers int) (worker int, fired bool) {
	if p == nil {
		return 0, false
	}
	round := p.seen
	p.seen++
	for i, f := range p.faults {
		if !p.fired[i] && f.Round == round {
			p.fired[i] = true
			if workers <= 0 {
				workers = 1
			}
			return f.Worker % workers, true
		}
	}
	return 0, false
}

// Rounds returns the number of BSP rounds the plan has observed so far. A
// dry run with an empty plan measures a pipeline's total round count, which
// is how the crash-matrix tests enumerate every possible failure point.
func (p *FaultPlan) Rounds() int {
	if p == nil {
		return 0
	}
	return p.seen
}

// Scheduled returns the number of faults in the plan.
func (p *FaultPlan) Scheduled() int {
	if p == nil {
		return 0
	}
	return len(p.faults)
}

// FiredCount returns how many scheduled faults have fired.
func (p *FaultPlan) FiredCount() int {
	if p == nil {
		return 0
	}
	n := 0
	for _, f := range p.fired {
		if f {
			n++
		}
	}
	return n
}

// Reset rewinds the round counter and re-arms every fault.
func (p *FaultPlan) Reset() {
	if p == nil {
		return
	}
	p.seen = 0
	for i := range p.fired {
		p.fired[i] = false
	}
}
