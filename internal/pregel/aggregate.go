package pregel

import (
	"math"
	"sync"
)

// aggState implements Pregel aggregators: values contributed during
// superstep S become readable by every vertex during superstep S+1.
// Three aggregator families cover everything the assembler needs:
// int64 sums, int64 mins, and boolean ORs.
type aggState struct {
	mu       sync.Mutex
	curSum   map[string]int64
	prevSumV map[string]int64
	curMin   map[string]int64
	prevMinV map[string]int64
	curOr    map[string]bool
	prevOrV  map[string]bool
}

func newAggState() *aggState {
	a := &aggState{}
	a.reset()
	return a
}

func (a *aggState) reset() {
	a.curSum = map[string]int64{}
	a.prevSumV = map[string]int64{}
	a.curMin = map[string]int64{}
	a.prevMinV = map[string]int64{}
	a.curOr = map[string]bool{}
	a.prevOrV = map[string]bool{}
}

// flip publishes the current superstep's aggregates and clears accumulators.
func (a *aggState) flip() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.prevSumV, a.curSum = a.curSum, map[string]int64{}
	a.prevMinV, a.curMin = a.curMin, map[string]int64{}
	a.prevOrV, a.curOr = a.curOr, map[string]bool{}
}

// snapshot copies the published (previous-superstep) aggregator values for
// a checkpoint. It is taken at a superstep barrier, where the in-progress
// accumulators are empty by construction (flip just ran), so only the
// published values need persisting.
func (a *aggState) snapshot() aggSnapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := aggSnapshot{
		Sum: make(map[string]int64, len(a.prevSumV)),
		Min: make(map[string]int64, len(a.prevMinV)),
		Or:  make(map[string]bool, len(a.prevOrV)),
	}
	for k, v := range a.prevSumV {
		s.Sum[k] = v
	}
	for k, v := range a.prevMinV {
		s.Min[k] = v
	}
	for k, v := range a.prevOrV {
		s.Or[k] = v
	}
	return s
}

// restore replaces the published values with a snapshot's and clears the
// accumulators, exactly the state the graph had at the checkpoint barrier.
// Gob decodes empty maps as nil; published maps must always exist.
func (a *aggState) restore(s aggSnapshot) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.prevSumV = map[string]int64{}
	a.prevMinV = map[string]int64{}
	a.prevOrV = map[string]bool{}
	for k, v := range s.Sum {
		a.prevSumV[k] = v
	}
	for k, v := range s.Min {
		a.prevMinV[k] = v
	}
	for k, v := range s.Or {
		a.prevOrV[k] = v
	}
	a.curSum = map[string]int64{}
	a.curMin = map[string]int64{}
	a.curOr = map[string]bool{}
}

func (a *aggState) addSum(name string, delta int64) {
	a.mu.Lock()
	a.curSum[name] += delta
	a.mu.Unlock()
}

func (a *aggState) addMin(name string, v int64) {
	a.mu.Lock()
	if cur, ok := a.curMin[name]; !ok || v < cur {
		a.curMin[name] = v
	}
	a.mu.Unlock()
}

func (a *aggState) addOr(name string, v bool) {
	a.mu.Lock()
	a.curOr[name] = a.curOr[name] || v
	a.mu.Unlock()
}

func (a *aggState) prevSum(name string) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.prevSumV[name]
}

func (a *aggState) prevMin(name string) (int64, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	v, ok := a.prevMinV[name]
	if !ok {
		return math.MaxInt64, false
	}
	return v, true
}

func (a *aggState) prevOr(name string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.prevOrV[name]
}
