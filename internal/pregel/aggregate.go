package pregel

import (
	"math"
	"sync"
)

// aggState implements Pregel aggregators: values contributed during
// superstep S become readable by every vertex during superstep S+1.
// Three aggregator families cover everything the assembler needs:
// int64 sums, int64 mins, and boolean ORs.
type aggState struct {
	mu       sync.Mutex
	curSum   map[string]int64
	prevSumV map[string]int64
	curMin   map[string]int64
	prevMinV map[string]int64
	curOr    map[string]bool
	prevOrV  map[string]bool
}

func newAggState() *aggState {
	a := &aggState{}
	a.reset()
	return a
}

func (a *aggState) reset() {
	a.curSum = map[string]int64{}
	a.prevSumV = map[string]int64{}
	a.curMin = map[string]int64{}
	a.prevMinV = map[string]int64{}
	a.curOr = map[string]bool{}
	a.prevOrV = map[string]bool{}
}

// flip publishes the current superstep's aggregates and clears accumulators.
func (a *aggState) flip() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.prevSumV, a.curSum = a.curSum, map[string]int64{}
	a.prevMinV, a.curMin = a.curMin, map[string]int64{}
	a.prevOrV, a.curOr = a.curOr, map[string]bool{}
}

func (a *aggState) addSum(name string, delta int64) {
	a.mu.Lock()
	a.curSum[name] += delta
	a.mu.Unlock()
}

func (a *aggState) addMin(name string, v int64) {
	a.mu.Lock()
	if cur, ok := a.curMin[name]; !ok || v < cur {
		a.curMin[name] = v
	}
	a.mu.Unlock()
}

func (a *aggState) addOr(name string, v bool) {
	a.mu.Lock()
	a.curOr[name] = a.curOr[name] || v
	a.mu.Unlock()
}

func (a *aggState) prevSum(name string) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.prevSumV[name]
}

func (a *aggState) prevMin(name string) (int64, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	v, ok := a.prevMinV[name]
	if !ok {
		return math.MaxInt64, false
	}
	return v, true
}

func (a *aggState) prevOr(name string) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.prevOrV[name]
}
