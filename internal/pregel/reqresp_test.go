package pregel

import "testing"

func TestRequestRespondBasic(t *testing.T) {
	g := NewGraph[int, struct{}](Config{Workers: 3})
	for i := 0; i < 30; i++ {
		g.AddVertex(VertexID(i), i*10)
	}
	// Every vertex asks for the value of vertex (id+1)%30.
	st, err := RequestRespond(g,
		func(id VertexID, _ *int) []VertexID { return []VertexID{(id + 1) % 30} },
		func(_ VertexID, val *int) int { return *val },
		func(id VertexID, val *int, get func(VertexID) (int, bool)) {
			v, ok := get((id + 1) % 30)
			if !ok {
				t.Errorf("vertex %d: missing response", id)
				return
			}
			*val += v
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if st.Supersteps != 3 {
		t.Errorf("supersteps = %d", st.Supersteps)
	}
	g.ForEach(func(id VertexID, val *int) {
		want := int(id)*10 + int((id+1)%30)*10
		if *val != want {
			t.Errorf("vertex %d = %d, want %d", id, *val, want)
		}
	})
}

func TestRequestRespondDeduplicatesSkewedFanIn(t *testing.T) {
	// 1000 vertices all request vertex 0's value: naive fan-in would be
	// 1000 request messages; the worker-level dedup sends at most one per
	// worker.
	const n = 1000
	const workers = 4
	g := NewGraph[int, struct{}](Config{Workers: workers})
	for i := 0; i < n; i++ {
		g.AddVertex(VertexID(i), 7)
	}
	st, err := RequestRespond(g,
		func(id VertexID, _ *int) []VertexID {
			if id == 0 {
				return nil
			}
			return []VertexID{0}
		},
		func(_ VertexID, val *int) int { return *val },
		func(id VertexID, val *int, get func(VertexID) (int, bool)) {
			if id == 0 {
				return
			}
			if v, ok := get(0); ok {
				*val += v
			}
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	// 2 messages (request+response) per requesting worker, not per vertex.
	if st.Messages > 2*workers {
		t.Errorf("messages = %d, want <= %d (deduplicated)", st.Messages, 2*workers)
	}
	hit := 0
	g.ForEach(func(id VertexID, val *int) {
		if id != 0 && *val == 14 {
			hit++
		}
	})
	if hit != n-1 {
		t.Errorf("%d of %d requesters served", hit, n-1)
	}
}

func TestRequestRespondMissingTarget(t *testing.T) {
	g := NewGraph[int, struct{}](Config{Workers: 2})
	g.AddVertex(1, 5)
	got := false
	st, err := RequestRespond(g,
		func(id VertexID, _ *int) []VertexID { return []VertexID{999} },
		func(_ VertexID, val *int) int { return *val },
		func(id VertexID, val *int, get func(VertexID) (int, bool)) {
			_, got = get(999)
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("response for nonexistent target")
	}
	if st.DroppedMessages != 1 {
		t.Errorf("dropped = %d, want 1", st.DroppedMessages)
	}
}
