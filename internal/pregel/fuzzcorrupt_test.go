package pregel

import (
	"errors"
	"strings"
	"testing"
)

// FuzzCheckpointCorruptInput is the adversarial counterpart to
// FuzzCheckpointRoundTrip: instead of valid state, the decoder gets raw
// fuzz bytes and systematically damaged versions of a valid container
// (bit flips and truncations directed by the fuzz input). The contract:
// never panic, never hang, never allocate unboundedly — and any error on a
// v3 container past the magic/version prefix must carry
// ErrCheckpointCorrupt so walk-back recovery can act on it.
func FuzzCheckpointCorruptInput(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("PPCK"))
	f.Add([]byte{5, 200, 17, 64, 3, 0, 0, 255})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Raw bytes straight into the decoder.
		if _, err := decodeCkptFile("fuzz@000", data); err == nil && len(data) > 0 {
			// Accidentally valid input is astronomically unlikely but legal.
			_ = err
		}

		fixture := makeCodecCkptFile()
		for _, clean := range [][]byte{encodeCkptFile(fixture), encodeCkptFileV2(fixture)} {
			// Truncation at a fuzz-chosen point.
			if len(data) > 0 {
				cut := int(data[0]) % (len(clean) + 1)
				if cut < len(clean) {
					if _, err := decodeCkptFile("fuzz@000", clean[:cut]); err == nil {
						t.Fatalf("truncation to %d of %d bytes decoded cleanly", cut, len(clean))
					}
				}
			}
			// Bit flips at fuzz-chosen positions. Duplicate flips at one
			// position cancel, so damage is judged by comparing against the
			// clean bytes, not by counting flips; flips inside magic/version
			// report hard identification errors instead of corruption.
			mut := append([]byte(nil), clean...)
			for i := 0; i+1 < len(data) && i < 64; i += 2 {
				mut[int(data[i])%len(mut)] ^= data[i+1] | 1
			}
			flipped := false
			for pos := len(ckptMagic) + 1; pos < len(mut); pos++ {
				if mut[pos] != clean[pos] {
					flipped = true
				}
			}
			_, err := decodeCkptFile("fuzz@000", mut)
			if flipped && mut[4] == ckptVersion && err == nil {
				// v2 containers have no checksums: a flip there may decode
				// "cleanly" into different field values, which is exactly why
				// v3 exists. Only v3 guarantees detection.
				t.Fatalf("v3 container with flipped bytes decoded cleanly")
			}
			if err != nil && mut[4] == ckptVersion && string(mut[:4]) == ckptMagic &&
				!errors.Is(err, ErrCheckpointCorrupt) && !strings.Contains(err.Error(), "uses format") {
				t.Fatalf("v3 decode error is neither ErrCheckpointCorrupt nor a version mismatch: %v", err)
			}
		}
	})
}

// TestCheckpointCorruptSeeds runs the corrupt-input fuzz seeds as a plain
// test so `go test` without -fuzz still covers the property.
func TestCheckpointCorruptSeeds(t *testing.T) {
	seeds := [][]byte{
		{},
		[]byte("PPCK"),
		{5, 200, 17, 64, 3, 0, 0, 255},
		{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16},
	}
	fixture := makeCodecCkptFile()
	for _, data := range seeds {
		for n := 0; n <= len(data); n++ {
			if _, err := decodeCkptFile("seed@000", data[:n]); err == nil && n > 0 {
				t.Fatalf("junk seed %x decoded cleanly", data[:n])
			}
		}
		clean := encodeCkptFile(fixture)
		for n := 0; n < len(clean); n++ {
			if _, err := decodeCkptFile("seed@000", clean[:n]); err == nil {
				t.Fatalf("truncation to %d of %d bytes decoded cleanly", n, len(clean))
			}
		}
		_ = data
	}
}
