package pregel

import "ppaassembler/internal/telemetry"

// Telemetry is emitted only from coordinator code — the between-superstep
// barrier, checkpoint save/restore, and job start/end — never from the
// per-message send/deliver hot path. A nil Config.Tracer/Metrics therefore
// costs one branch per superstep and zero allocations anywhere (locked by
// TestShuffleAllocRegressionFence).

// runMetrics caches the engine's instrument handles for one run so the
// per-superstep barrier bumps atomics without registry lookups.
type runMetrics struct {
	localMsgs, remoteMsgs, bytes *telemetry.Counter
	supersteps, dropped          *telemetry.Counter
	activeVerts, haltedVerts     *telemetry.Gauge
	inboxDepth                   *telemetry.Histogram
}

// newRunMetrics resolves the engine's instruments; nil registry → nil.
func newRunMetrics(r *telemetry.Registry) *runMetrics {
	if r == nil {
		return nil
	}
	return &runMetrics{
		localMsgs:   r.Counter("pregel_messages_local_total"),
		remoteMsgs:  r.Counter("pregel_messages_remote_total"),
		bytes:       r.Counter("pregel_bytes_total"),
		supersteps:  r.Counter("pregel_supersteps_total"),
		dropped:     r.Counter("pregel_dropped_messages_total"),
		activeVerts: r.Gauge("pregel_vertices_active"),
		haltedVerts: r.Gauge("pregel_vertices_halted"),
		inboxDepth:  r.Histogram("pregel_inbox_queue_depth"),
	}
}

// emit sends one event to the graph's tracer. Callers must have checked
// g.cfg.Tracer != nil (the variadic args would otherwise allocate for
// nothing).
func (g *Graph[V, M]) emit(kind telemetry.Kind, name, cat string, wallNs int64, simNs float64, args ...telemetry.Arg) {
	g.cfg.Tracer.Emit(telemetry.Event{
		Kind: kind, Name: name, Cat: cat,
		WallNs: wallNs, SimNs: simNs, Args: args,
	})
}

// countVertices tallies live active and halted vertices — an O(V) pass run
// only when a tracer or metrics registry is observing the run.
func (g *Graph[V, M]) countVertices() (active, halted int64) {
	for _, w := range g.workers {
		for i := range w.active {
			if w.dead[i] {
				continue
			}
			if w.active[i] {
				active++
			} else {
				halted++
			}
		}
	}
	return active, halted
}
