package pregel

import (
	"fmt"
	"reflect"
	"testing"
)

// prVal is the PageRank-style vertex value: an integer rank (fixed-point,
// so parallel-mode results are exact) plus the final aggregator reading.
type prVal struct {
	Rank  int64
	Total int64
}

// pageRankish is a PageRank-style ranking job on a ring with skip edges:
// for `iters` iterations every vertex scatters its rank over its three out-
// edges and gathers incoming shares with a damping residue, all in integer
// arithmetic. A sum aggregator tracks total rank; the final superstep
// stores the previous aggregate into the value so the test can assert
// aggregator state survives recovery bit-exactly.
func pageRankish(n, iters int) Compute[prVal, int64] {
	return func(ctx *Context[int64], id VertexID, v *prVal, msgs []int64) {
		if ctx.Superstep() > 0 {
			sum := int64(0)
			for _, m := range msgs {
				sum += m
			}
			v.Rank = 150 + (sum*85)/100
		}
		v.Total = ctx.PrevAggSum("rank")
		if ctx.Superstep() >= iters {
			ctx.VoteToHalt()
			return
		}
		ctx.AggSum("rank", v.Rank)
		share := v.Rank / 3
		u := uint64(id)
		ctx.Send(VertexID((u+1)%uint64(n)), share)
		ctx.Send(VertexID((u+7)%uint64(n)), share)
		ctx.Send(VertexID((u+13)%uint64(n)), share)
	}
}

func buildPRGraph(cfg Config, n int) *Graph[prVal, int64] {
	g := NewGraph[prVal, int64](cfg)
	for i := 0; i < n; i++ {
		g.AddVertex(VertexID(i), prVal{Rank: 1000 + int64(i)})
	}
	return g
}

func collectPR(g *Graph[prVal, int64]) map[VertexID]prVal {
	out := map[VertexID]prVal{}
	g.ForEach(func(id VertexID, v *prVal) { out[id] = *v })
	return out
}

// TestCrashMatrixPageRank is the exhaustive engine-level crash matrix: a
// PageRank-style job is crashed at every BSP round × worker count {1,4,7} ×
// Parallel {off,on}, and every recovered run must match the unfailed run's
// vertex values, aggregator readings and run counters exactly.
func TestCrashMatrixPageRank(t *testing.T) {
	const n, iters = 96, 11
	for _, workers := range []int{1, 4, 7} {
		for _, parallel := range []bool{false, true} {
			name := fmt.Sprintf("w%d-par%v", workers, parallel)
			t.Run(name, func(t *testing.T) {
				// Baseline with a round-counting (empty) plan: its Rounds()
				// after the run enumerates every possible failure point.
				probe := NewFaultPlan()
				base := buildPRGraph(Config{Workers: workers, Parallel: parallel, Faults: probe}, n)
				baseStats, err := base.Run(pageRankish(n, iters), WithName("pagerankish"))
				if err != nil {
					t.Fatal(err)
				}
				want := collectPR(base)
				rounds := probe.Rounds()
				if rounds != baseStats.Supersteps {
					t.Fatalf("probe saw %d rounds, stats %d supersteps", rounds, baseStats.Supersteps)
				}

				for failAt := 0; failAt < rounds; failAt++ {
					plan := NewFaultPlan(Fault{Round: failAt, Worker: failAt})
					g := buildPRGraph(Config{
						Workers:         workers,
						Parallel:        parallel,
						CheckpointEvery: 3,
						Faults:          plan,
					}, n)
					stats, err := g.Run(pageRankish(n, iters), WithName("pagerankish"))
					if err != nil {
						t.Fatalf("fail@%d: %v", failAt, err)
					}
					if stats.Recoveries != 1 {
						t.Fatalf("fail@%d: %d recoveries, want 1", failAt, stats.Recoveries)
					}
					if got := collectPR(g); !reflect.DeepEqual(got, want) {
						t.Errorf("fail@%d: recovered values/aggregates differ from unfailed run", failAt)
					}
					sameRunStats(t, fmt.Sprintf("fail@%d", failAt), baseStats, stats)
				}
			})
		}
	}
}

// TestCheckpointStressParallelShuffle hammers checkpointing under the
// parallel shuffle for the race detector: every-superstep checkpoints,
// repeated crashes, a message combiner, and concurrent per-worker
// encode/decode during save and restore.
func TestCheckpointStressParallelShuffle(t *testing.T) {
	const n, iters = 200, 12
	base := buildPRGraph(Config{Workers: 8, Parallel: true}, n)
	base.SetCombiner(func(a, b int64) int64 { return a + b })
	if _, err := base.Run(pageRankish(n, iters), WithName("stress")); err != nil {
		t.Fatal(err)
	}
	want := collectPR(base)

	g := buildPRGraph(Config{
		Workers:         8,
		Parallel:        true,
		CheckpointEvery: 1,
		Faults: NewFaultPlan(
			Fault{Round: 2, Worker: 5},
			Fault{Round: 5, Worker: 1},
			Fault{Round: 6, Worker: 7},
			Fault{Round: 9, Worker: 3},
		),
	}, n)
	g.SetCombiner(func(a, b int64) int64 { return a + b })
	stats, err := g.Run(pageRankish(n, iters), WithName("stress"))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Recoveries != 4 {
		t.Fatalf("expected 4 recoveries, got %d", stats.Recoveries)
	}
	if !reflect.DeepEqual(collectPR(g), want) {
		t.Error("stressed parallel run diverged from unfailed run")
	}
}
