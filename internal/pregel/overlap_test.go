package pregel

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
)

// TestOverlapMatchesBarrieredDelivery is the determinism contract for the
// overlapped shuffle: the PageRank-style job must produce bit-identical
// vertex values, aggregates and run counters across worker counts with
// overlap on and off, all matching the sequential baseline.
func TestOverlapMatchesBarrieredDelivery(t *testing.T) {
	const n, iters = 96, 11
	base := buildPRGraph(Config{Workers: 1}, n)
	baseStats, err := base.Run(pageRankish(n, iters), WithName("ov-base"))
	if err != nil {
		t.Fatal(err)
	}
	want := collectPR(base)

	for _, workers := range []int{1, 4, 7} {
		for _, overlap := range []bool{false, true} {
			name := fmt.Sprintf("w%d-overlap%v", workers, overlap)
			t.Run(name, func(t *testing.T) {
				g := buildPRGraph(Config{Workers: workers, Parallel: true, Overlap: overlap}, n)
				stats, err := g.Run(pageRankish(n, iters), WithName("ov"))
				if err != nil {
					t.Fatal(err)
				}
				if got := collectPR(g); !reflect.DeepEqual(got, want) {
					t.Errorf("values/aggregates differ from sequential baseline")
				}
				sameRunStats(t, name, baseStats, stats)
			})
		}
	}
}

// TestOverlapWithCombiner repeats the contract with a message combiner in
// play: the per-lane fold happens on the sending side, so overlapped
// draining must see exactly the same combined envelopes.
func TestOverlapWithCombiner(t *testing.T) {
	const n, iters = 96, 9
	run := func(workers int, parallel, overlap bool) (*Stats, map[VertexID]prVal) {
		g := buildPRGraph(Config{Workers: workers, Parallel: parallel, Overlap: overlap}, n)
		g.SetCombiner(func(a, b int64) int64 { return a + b })
		stats, err := g.Run(pageRankish(n, iters), WithName("ov-comb"))
		if err != nil {
			t.Fatal(err)
		}
		return stats, collectPR(g)
	}
	_, want := run(1, false, false)
	for _, workers := range []int{1, 4, 7} {
		// The combined message count legitimately depends on the worker
		// count (the fold is per-worker), so stats compare barriered vs
		// overlapped at the same worker count, not against the sequential
		// baseline — values must match everywhere.
		barrierStats, barrierVals := run(workers, true, false)
		overlapStats, overlapVals := run(workers, true, true)
		name := fmt.Sprintf("w%d", workers)
		if !reflect.DeepEqual(barrierVals, want) {
			t.Errorf("%s: barriered combined values differ from sequential baseline", name)
		}
		if !reflect.DeepEqual(overlapVals, want) {
			t.Errorf("%s: overlapped combined values differ from sequential baseline", name)
		}
		sameRunStats(t, name, barrierStats, overlapStats)
	}
}

// TestCrashMatrixOverlap crashes the overlapped shuffle at every BSP round
// and requires recovery to reproduce the barriered, unfailed run exactly.
// This pins down the interaction between per-source completion signals,
// checkpoint restore (which rebuilds the inbox arenas) and fault replay.
func TestCrashMatrixOverlap(t *testing.T) {
	const n, iters = 96, 11
	for _, workers := range []int{4, 7} {
		t.Run(fmt.Sprintf("w%d", workers), func(t *testing.T) {
			probe := NewFaultPlan()
			base := buildPRGraph(Config{Workers: workers, Parallel: true, Faults: probe}, n)
			baseStats, err := base.Run(pageRankish(n, iters), WithName("ov-crash"))
			if err != nil {
				t.Fatal(err)
			}
			want := collectPR(base)

			for failAt := 0; failAt < probe.Rounds(); failAt++ {
				g := buildPRGraph(Config{
					Workers:         workers,
					Parallel:        true,
					Overlap:         true,
					CheckpointEvery: 3,
					Faults:          NewFaultPlan(Fault{Round: failAt, Worker: failAt}),
				}, n)
				stats, err := g.Run(pageRankish(n, iters), WithName("ov-crash"))
				if err != nil {
					t.Fatalf("fail@%d: %v", failAt, err)
				}
				if stats.Recoveries != 1 {
					t.Fatalf("fail@%d: %d recoveries, want 1", failAt, stats.Recoveries)
				}
				if got := collectPR(g); !reflect.DeepEqual(got, want) {
					t.Errorf("fail@%d: recovered overlapped run differs from barriered baseline", failAt)
				}
				sameRunStats(t, fmt.Sprintf("fail@%d", failAt), baseStats, stats)
			}
		})
	}
}

// fuseVal is the vertex value of the fusion test: the running sum of
// received messages plus the largest inbox the vertex has ever seen in a
// single compute call.
type fuseVal struct {
	Sum   int64
	MaxIn int64
}

// fanInCompute is a hub fan-in job: every superstep each vertex sends a
// distinct value to hub id%4, so each hub's inbox holds n/4 combinable
// messages per superstep.
func fanInCompute(n, iters int) Compute[fuseVal, int64] {
	return func(ctx *Context[int64], id VertexID, v *fuseVal, msgs []int64) {
		if int64(len(msgs)) > v.MaxIn {
			v.MaxIn = int64(len(msgs))
		}
		for _, m := range msgs {
			v.Sum += m
		}
		if ctx.Superstep() >= iters {
			ctx.VoteToHalt()
			return
		}
		ctx.Send(id%4, int64(id)*1000+int64(ctx.Superstep()))
	}
}

// TestTotalCombinerFusion: SetTotalCombiner promises the combiner folds the
// entire cross-worker fan-in, so compute must observe at most one message
// per vertex per superstep while producing the same sums as an ordinary
// per-worker combiner — in both barriered and overlapped mode.
func TestTotalCombinerFusion(t *testing.T) {
	const n, iters = 64, 6
	run := func(total bool, workers int, parallel, overlap bool) map[VertexID]fuseVal {
		g := NewGraph[fuseVal, int64](Config{Workers: workers, Parallel: parallel, Overlap: overlap})
		if total {
			g.SetTotalCombiner(func(a, b int64) int64 { return a + b })
		} else {
			g.SetCombiner(func(a, b int64) int64 { return a + b })
		}
		for i := 0; i < n; i++ {
			g.AddVertex(VertexID(i), fuseVal{})
		}
		if _, err := g.Run(fanInCompute(n, iters), WithName("fusion")); err != nil {
			t.Fatal(err)
		}
		out := map[VertexID]fuseVal{}
		g.ForEach(func(id VertexID, v *fuseVal) { out[id] = *v })
		return out
	}

	want := run(false, 1, false, false) // ordinary combiner, sequential
	for _, workers := range []int{1, 4, 7} {
		for _, overlap := range []bool{false, true} {
			name := fmt.Sprintf("w%d-overlap%v", workers, overlap)
			got := run(true, workers, true, overlap)
			for id, v := range got {
				if v.MaxIn > 1 {
					t.Errorf("%s: vertex %d saw %d messages in one superstep; total combiner should fuse to <= 1", name, id, v.MaxIn)
				}
				if v.Sum != want[id].Sum {
					t.Errorf("%s: vertex %d sum = %d, want %d", name, id, v.Sum, want[id].Sum)
				}
			}
		}
	}
}

// TestSetCombinerLockedAtRunStart: installing a combiner from inside
// compute (mid-run) must not affect the running job — the engine snapshots
// the combiner when Run starts. A graph that installs the same combiner
// before Run demonstrates what taking effect would have looked like.
func TestSetCombinerLockedAtRunStart(t *testing.T) {
	const n = 100
	job := func(ctx *Context[int], id VertexID, val *int, msgs []int) {
		for _, m := range msgs {
			*val += m
		}
		if ctx.Superstep() >= 2 {
			ctx.VoteToHalt()
			return
		}
		ctx.Send(0, 1)
	}
	build := func() *Graph[int, int] {
		g := NewGraph[int, int](Config{Workers: 4})
		for i := 0; i < n; i++ {
			g.AddVertex(VertexID(i), 0)
		}
		return g
	}

	plain := build()
	plainStats, err := plain.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	plainHub, _ := plain.Value(0)

	// Same job, but superstep 1 sneaks a combiner in mid-run.
	sneaky := build()
	sneakyStats, err := sneaky.Run(func(ctx *Context[int], id VertexID, val *int, msgs []int) {
		if ctx.Superstep() == 1 {
			sneaky.SetCombiner(func(a, b int) int { return a + b })
		}
		job(ctx, id, val, msgs)
	})
	if err != nil {
		t.Fatal(err)
	}
	sneakyHub, _ := sneaky.Value(0)
	if sneakyHub != plainHub {
		t.Errorf("mid-run SetCombiner changed the result: hub = %d, want %d", sneakyHub, plainHub)
	}
	if sneakyStats.Messages != plainStats.Messages {
		t.Errorf("mid-run SetCombiner took effect during the run: %d messages, want the uncombined %d",
			sneakyStats.Messages, plainStats.Messages)
	}

	// Installed before Run, the combiner does take effect — proving the
	// sneaky run's equality above is meaningful, not a no-op combiner.
	upfront := build()
	upfront.SetCombiner(func(a, b int) int { return a + b })
	upfrontStats, err := upfront.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	upfrontHub, _ := upfront.Value(0)
	if upfrontHub != plainHub {
		t.Errorf("combined run hub = %d, want %d", upfrontHub, plainHub)
	}
	if upfrontStats.Messages >= plainStats.Messages {
		t.Errorf("up-front combiner did not reduce messages: %d vs %d", upfrontStats.Messages, plainStats.Messages)
	}
}

// chainCompute is a pointer-chasing job designed for delta checkpoints:
// exactly one vertex computes per superstep (vertex 0 starts a token that
// hops down the chain), so the dirty fraction per checkpoint is tiny and
// the engine's delta-vs-full heuristic picks deltas.
func chainCompute(n int) Compute[int64, int64] {
	return func(ctx *Context[int64], id VertexID, v *int64, msgs []int64) {
		if ctx.Superstep() == 0 {
			if id == 0 {
				ctx.Send(1, 7)
			}
			ctx.VoteToHalt()
			return
		}
		for _, m := range msgs {
			*v += m + int64(ctx.Superstep())
		}
		if next := uint64(id) + 1; len(msgs) > 0 && next < uint64(n) {
			ctx.Send(VertexID(next), *v)
		}
		ctx.VoteToHalt()
	}
}

func buildChainGraph(cfg Config, n int) *Graph[int64, int64] {
	g := NewGraph[int64, int64](cfg)
	for i := 0; i < n; i++ {
		g.AddVertex(VertexID(i), int64(i))
	}
	return g
}

func collectChain(g *Graph[int64, int64]) map[VertexID]int64 {
	out := map[VertexID]int64{}
	g.ForEach(func(id VertexID, v *int64) { out[id] = *v })
	return out
}

// TestDeltaCheckpointCrashMatrix crashes a delta-checkpointed run at every
// BSP round: recovery replays the full+delta chain and must reproduce the
// unfailed run exactly. The chain job keeps the dirty fraction low so the
// heuristic genuinely picks incremental saves (asserted via stats).
func TestDeltaCheckpointCrashMatrix(t *testing.T) {
	const n = 40
	for _, workers := range []int{1, 4, 7} {
		t.Run(fmt.Sprintf("w%d", workers), func(t *testing.T) {
			probe := NewFaultPlan()
			base := buildChainGraph(Config{Workers: workers, Parallel: workers > 1, Faults: probe}, n)
			baseStats, err := base.Run(chainCompute(n), WithName("delta"))
			if err != nil {
				t.Fatal(err)
			}
			want := collectChain(base)

			// Unfailed delta-checkpointed run: same answer, and the delta
			// path must actually be exercised.
			clean := buildChainGraph(Config{
				Workers: workers, Parallel: workers > 1,
				CheckpointEvery: 2, DeltaCheckpoints: true,
			}, n)
			cleanStats, err := clean.Run(chainCompute(n), WithName("delta"))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(collectChain(clean), want) {
				t.Fatal("delta-checkpointed run diverged from plain run")
			}
			if cleanStats.CheckpointDeltaSaves == 0 {
				t.Fatalf("no delta saves recorded in %d checkpoint saves; the delta path was never exercised",
					cleanStats.CheckpointSaves)
			}
			if cleanStats.CheckpointDeltaSaves >= cleanStats.CheckpointSaves {
				t.Fatalf("%d delta saves out of %d total; expected periodic full snapshots in between",
					cleanStats.CheckpointDeltaSaves, cleanStats.CheckpointSaves)
			}

			for failAt := 0; failAt < probe.Rounds(); failAt++ {
				g := buildChainGraph(Config{
					Workers: workers, Parallel: workers > 1,
					CheckpointEvery: 2, DeltaCheckpoints: true,
					Faults: NewFaultPlan(Fault{Round: failAt, Worker: failAt}),
				}, n)
				stats, err := g.Run(chainCompute(n), WithName("delta"))
				if err != nil {
					t.Fatalf("fail@%d: %v", failAt, err)
				}
				if stats.Recoveries != 1 {
					t.Fatalf("fail@%d: %d recoveries, want 1", failAt, stats.Recoveries)
				}
				if got := collectChain(g); !reflect.DeepEqual(got, want) {
					t.Errorf("fail@%d: recovery from delta chain diverged from unfailed run", failAt)
				}
				sameRunStats(t, fmt.Sprintf("fail@%d", failAt), baseStats, stats)
			}
		})
	}
}

// TestDeltaDirCheckpointerResume: delta checkpoints round-trip through the
// directory store — .dckpt files land on disk next to the full .ckpt
// snapshots, and a restarted process resumes from the chain tip.
func TestDeltaDirCheckpointerResume(t *testing.T) {
	const n = 40
	dir := t.TempDir()
	store1, err := NewDirCheckpointer(dir)
	if err != nil {
		t.Fatal(err)
	}
	g1 := buildChainGraph(Config{
		Workers: 4, Parallel: true,
		CheckpointEvery: 2, DeltaCheckpoints: true, Checkpointer: store1,
	}, n)
	var calls1 atomic.Int64
	stats1, err := g1.Run(func(ctx *Context[int64], id VertexID, v *int64, msgs []int64) {
		calls1.Add(1)
		chainCompute(n)(ctx, id, v, msgs)
	}, WithName("dresume"))
	if err != nil {
		t.Fatal(err)
	}
	if stats1.CheckpointDeltaSaves == 0 {
		t.Fatal("no delta saves in the original run")
	}
	want := collectChain(g1)

	fulls, _ := filepath.Glob(filepath.Join(dir, "dresume@*.ckpt"))
	deltas, _ := filepath.Glob(filepath.Join(dir, "dresume@*.dckpt"))
	if len(fulls) == 0 || len(deltas) == 0 {
		t.Fatalf("expected both full and delta checkpoint files on disk, got %d .ckpt / %d .dckpt", len(fulls), len(deltas))
	}

	store2, err := NewDirCheckpointer(dir)
	if err != nil {
		t.Fatal(err)
	}
	g2 := buildChainGraph(Config{
		Workers: 4, Parallel: true,
		CheckpointEvery: 2, DeltaCheckpoints: true, Checkpointer: store2, Resume: true,
	}, n)
	var calls2 atomic.Int64
	stats2, err := g2.Run(func(ctx *Context[int64], id VertexID, v *int64, msgs []int64) {
		calls2.Add(1)
		chainCompute(n)(ctx, id, v, msgs)
	}, WithName("dresume"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(collectChain(g2), want) {
		t.Error("resume from a delta chain produced different vertex values")
	}
	if calls2.Load() >= calls1.Load() {
		t.Errorf("resume did not fast-forward: %d compute calls on resume, %d originally", calls2.Load(), calls1.Load())
	}
	if stats2.Supersteps != stats1.Supersteps {
		t.Errorf("resumed run reported %d supersteps, want %d", stats2.Supersteps, stats1.Supersteps)
	}
}

// TestResumeRejectsV1GobCheckpoint: a checkpoint file written by an older
// binary in the v1 gob format must fail the resume loudly, naming the
// format mismatch — not silently recompute or crash with a decode panic.
func TestResumeRejectsV1GobCheckpoint(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(struct{ Step int }{Step: 4}); err != nil {
		t.Fatal(err)
	}
	// The key a fresh store reserves for WithName("v1") is v1@000.
	if err := os.WriteFile(filepath.Join(dir, "v1@000.00000004.ckpt"), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	store, err := NewDirCheckpointer(dir)
	if err != nil {
		t.Fatal(err)
	}
	g := buildChainGraph(Config{Workers: 2, CheckpointEvery: 2, Checkpointer: store, Resume: true}, 16)
	_, err = g.Run(chainCompute(16), WithName("v1"))
	if err == nil {
		t.Fatal("resume over a v1 gob checkpoint succeeded")
	}
	if !strings.Contains(err.Error(), "v1 gob format") {
		t.Errorf("error does not name the v1 gob format: %v", err)
	}
}

// TestResumeRejectsLegacyJobKey: checkpoints stored under the pre-workflow
// key format (bare name@seq, no plan prefix) can never match a prefixed
// job key; Resume must fail naming both formats instead of silently
// recomputing from scratch.
func TestResumeRejectsLegacyJobKey(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "legacy@000.00000004.ckpt"), []byte("stale"), 0o644); err != nil {
		t.Fatal(err)
	}
	store, err := NewDirCheckpointer(dir)
	if err != nil {
		t.Fatal(err)
	}
	g := buildChainGraph(Config{
		Workers: 2, CheckpointEvery: 2, Checkpointer: store,
		Resume: true, JobPrefix: "plan0.",
	}, 16)
	_, err = g.Run(chainCompute(16), WithName("legacy"))
	if err == nil {
		t.Fatal("resume over legacy-format checkpoint keys succeeded (would have silently recomputed)")
	}
	if !strings.Contains(err.Error(), "legacy job-key format") {
		t.Errorf("error does not name the legacy key format: %v", err)
	}
}
