package pregel

import "sort"

// MapReduce is the paper's first Pregel+ API extension (§II): a mini
// MapReduce procedure used during graph loading and for the grouping steps
// of DBG construction (op ①), contig merging (op ③) and bubble filtering
// (op ④).
//
// The input is sharded per worker (input[w] is worker w's shard, mirroring
// HDFS block placement). Each worker maps its shard, emitted (key, value)
// pairs are shuffled to worker keyHash(key) % W, sorted by key with keyLess,
// grouped, and reduced; reduce output stays on the reducing worker (which is
// how contigs acquire their (worker, ordinal) IDs in op ③).
//
// Cost: the clock is charged one shuffle round — barrier latency + slowest
// mapper + most-loaded link — and one reduce round. pairBytes is the charged
// wire size of one shuffled pair.
func MapReduce[I, K, V, O any](
	clock *SimClock,
	workers int,
	pairBytes int,
	input [][]I,
	mapFn func(worker int, item I, emit func(K, V)),
	keyHash func(K) uint64,
	keyLess func(K, K) bool,
	reduceFn func(worker int, key K, vals []V, emit func(O)),
) ([][]O, *Stats) {
	if workers <= 0 {
		workers = 1
	}
	if pairBytes <= 0 {
		pairBytes = DefaultMessageBytes
	}
	type pair struct {
		k K
		v V
	}
	stats := &Stats{Name: "mapreduce", Workers: workers}

	// Map phase: each worker maps its shard into per-destination buckets.
	buckets := make([][][]pair, workers) // [src][dst][]pair
	mapNs := make([]float64, workers)
	outBytes := make([]float64, workers)
	for w := 0; w < workers; w++ {
		buckets[w] = make([][]pair, workers)
		if w >= len(input) {
			continue
		}
		start := nowNs()
		emitted := int64(0)
		for _, item := range input[w] {
			mapFn(w, item, func(k K, v V) {
				d := int(keyHash(k) % uint64(workers))
				buckets[w][d] = append(buckets[w][d], pair{k, v})
				emitted++
			})
		}
		mapNs[w] = float64(nowNs() - start)
		outBytes[w] = float64(emitted) * float64(pairBytes)
		stats.Messages += emitted
		stats.Bytes += emitted * int64(pairBytes)
	}
	clock.ChargeSuperstep(mapNs, outBytes)

	// Shuffle + sort + reduce phase.
	out := make([][]O, workers)
	redNs := make([]float64, workers)
	for d := 0; d < workers; d++ {
		var pairs []pair
		for s := 0; s < workers; s++ {
			pairs = append(pairs, buckets[s][d]...)
			buckets[s][d] = nil
		}
		start := nowNs()
		sort.SliceStable(pairs, func(a, b int) bool { return keyLess(pairs[a].k, pairs[b].k) })
		i := 0
		for i < len(pairs) {
			j := i + 1
			for j < len(pairs) && !keyLess(pairs[i].k, pairs[j].k) && !keyLess(pairs[j].k, pairs[i].k) {
				j++
			}
			vals := make([]V, 0, j-i)
			for _, p := range pairs[i:j] {
				vals = append(vals, p.v)
			}
			reduceFn(d, pairs[i].k, vals, func(o O) { out[d] = append(out[d], o) })
			i = j
		}
		redNs[d] = float64(nowNs() - start)
	}
	clock.ChargeSuperstep(redNs, make([]float64, workers))
	stats.Supersteps = 2
	stats.SimSeconds = clock.Seconds()
	return out, stats
}

// Uint64Hash is a keyHash for uint64-like keys (it applies the same mixing
// as vertex partitioning so adversarially structured keys still spread).
func Uint64Hash(k uint64) uint64 { return hashID(VertexID(k)) }

// ShardSlice splits items into w shards round-robin, simulating an even
// HDFS block distribution.
func ShardSlice[T any](items []T, w int) [][]T {
	if w <= 0 {
		w = 1
	}
	out := make([][]T, w)
	for i, it := range items {
		out[i%w] = append(out[i%w], it)
	}
	return out
}

// Flatten concatenates per-worker shards in worker order.
func Flatten[T any](shards [][]T) []T {
	var out []T
	for _, s := range shards {
		out = append(out, s...)
	}
	return out
}
