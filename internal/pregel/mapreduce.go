package pregel

import (
	"fmt"
	"sort"
	"sync"

	"ppaassembler/internal/telemetry"
)

// MapReduce is the paper's first Pregel+ API extension (§II): a mini
// MapReduce procedure used during graph loading and for the grouping steps
// of DBG construction (op ①), contig merging (op ③) and bubble filtering
// (op ④).
//
// The input is sharded per worker (input[w] is worker w's shard, mirroring
// HDFS block placement). Each worker maps its shard, emitted (key, value)
// pairs are shuffled to worker keyHash(key) % W (or through a configured
// Partitioner; see MRConfig), sorted by key with keyLess,
// grouped, and reduced; reduce output stays on the reducing worker (which is
// how contigs acquire their (worker, ordinal) IDs in op ③).
//
// Cost: the clock is charged one shuffle round — barrier latency + slowest
// mapper + most-loaded link — and one reduce round. pairBytes is the charged
// wire size of one shuffled pair.
//
// The vals slice passed to reduceFn aliases a per-reducer arena and is only
// valid for the duration of that reduce call; copy it to retain it.
//
// MapReduce runs sequentially; MapReduceCfg adds multi-core execution.
func MapReduce[I, K, V, O any](
	clock *SimClock,
	workers int,
	pairBytes int,
	input [][]I,
	mapFn func(worker int, item I, emit func(K, V)),
	keyHash func(K) uint64,
	keyLess func(K, K) bool,
	reduceFn func(worker int, key K, vals []V, emit func(O)),
) ([][]O, *Stats) {
	return MapReduceCfg(clock, MRConfig{Workers: workers, PairBytes: pairBytes},
		input, mapFn, keyHash, keyLess, reduceFn)
}

// MRConfig configures one MapReduceCfg run.
type MRConfig struct {
	// Workers is the number of logical workers (map shards / reducers).
	Workers int
	// PairBytes is the charged wire size of one shuffled (key, value) pair.
	// Zero means DefaultMessageBytes.
	PairBytes int
	// Parallel runs the map phase on one goroutine per source worker and the
	// shuffle+sort+reduce phase on one goroutine per destination worker.
	// Each mapper writes only its own per-destination buckets and each
	// reducer drains only the bucket lanes addressed to it, mirroring the
	// Pregel engine's shuffle; the output is identical to sequential
	// execution. Map and reduce UDFs are then called concurrently from
	// different workers and must not write shared state without
	// per-worker partitioning.
	Parallel bool
	// Partitioner, when non-nil, routes keys to reducers through the same
	// placement strategy the Pregel engine uses for vertices: keyHash is
	// then treated as a key → routing-ID projection (usually the identity
	// on a vertex-ID key, NOT a mixing hash) and the reducer is
	// Partitioner.Assign(routingID). A reduce whose output feeds a graph
	// keyed by the same IDs thus lands on the destination vertex's home
	// worker. With a nil Partitioner keys group by keyHash(k) % Workers,
	// the historical behavior; for a routing ID the two paths agree
	// exactly when the partitioner is HashPartitioner, since Assign applies
	// the same SplitMix64 mix as Uint64Hash. Call sites whose reducer
	// identity is part of the output contract (the assembler's contig
	// merge, whose reducer index is baked into contig IDs) deliberately
	// leave this nil so the grouping stays placement-invariant.
	Partitioner Partitioner
	// Faults, when non-nil, injects worker crashes for fault-tolerance
	// testing. MapReduce recovers by lineage, not by checkpoint: the
	// failed worker's map or reduce task re-runs from its in-memory input
	// (map shard, or shuffled bucket lanes), the classic MapReduce failure
	// model. Each phase ticks the shared plan once, so a pipeline-wide
	// schedule can land a crash inside a shuffle round. Because map and
	// reduce UDFs are allowed to accumulate caller-owned per-worker state
	// (the assembler's θ-filter counters, merge ordinals and pair counts
	// all do), the redo is priced, not re-invoked: the failed task's
	// second execution is identical by construction for deterministic
	// UDFs, so recovery only charges the clock an extra round carried by
	// the failed worker alone.
	Faults *FaultPlan

	// Name labels this MapReduce in trace spans and pprof labels (e.g.
	// "build.k1", "scaffold.links"). Empty means "mapreduce".
	Name string
	// Tracer, when non-nil, receives map/shuffle/reduce phase spans; see
	// Config.Tracer for the emission contract.
	Tracer telemetry.Tracer
	// Metrics, when non-nil, receives the mr_* counters.
	Metrics *telemetry.Registry
}

// Validate rejects nonsensical MapReduce configurations with a clear
// error; like Config.Validate it is meant to be called early by CLIs and
// the workflow layer (zero values are still defaulted for library use).
func (c MRConfig) Validate() error {
	if c.Workers <= 0 {
		return fmt.Errorf("pregel: MapReduce Workers must be positive, got %d", c.Workers)
	}
	if c.PairBytes < 0 {
		return fmt.Errorf("pregel: MapReduce PairBytes must not be negative, got %d", c.PairBytes)
	}
	return nil
}

func (c MRConfig) withDefaults() MRConfig {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.PairBytes <= 0 {
		c.PairBytes = DefaultMessageBytes
	}
	return c
}

// MapReduceCfg is MapReduce with explicit configuration, including parallel
// per-worker execution (see MRConfig.Parallel).
//
// The vals slice passed to reduceFn aliases a per-reducer arena and is only
// valid for the duration of that reduce call.
func MapReduceCfg[I, K, V, O any](
	clock *SimClock,
	cfg MRConfig,
	input [][]I,
	mapFn func(worker int, item I, emit func(K, V)),
	keyHash func(K) uint64,
	keyLess func(K, K) bool,
	reduceFn func(worker int, key K, vals []V, emit func(O)),
) ([][]O, *Stats) {
	cfg = cfg.withDefaults()
	workers := cfg.Workers
	type pair struct {
		k K
		v V
	}
	name := cfg.Name
	if name == "" {
		name = "mapreduce"
	}
	stats := &Stats{Name: name, Workers: workers}
	tr := cfg.Tracer
	emitEv := func(kind telemetry.Kind, evName string, wallNs int64, simNs float64, args ...telemetry.Arg) {
		tr.Emit(telemetry.Event{Kind: kind, Name: evName, Cat: "mr", WallNs: wallNs, SimNs: simNs, Args: args})
	}
	var wallMap0 int64
	if tr != nil {
		wallMap0 = nowNs()
		emitEv(telemetry.KindBegin, "mr", wallMap0, clock.Ns(), telemetry.S("name", name))
	}

	// Key grouping: with a partitioner, keyHash projects the key to a
	// routing ID placed like a vertex; without one, it is a mixing hash
	// taken modulo the worker count (the historical behavior).
	route := func(k K) int { return int(keyHash(k) % uint64(workers)) }
	if part := cfg.Partitioner; part != nil {
		route = func(k K) int { return part.Assign(VertexID(keyHash(k)), workers) }
	}

	// Map phase: each worker maps its shard into per-destination lanes.
	buckets := make([][][]pair, workers) // [src][dst][]pair
	mapNs := make([]float64, workers)
	outBytes := make([]float64, workers)
	localBytes := make([]float64, workers)
	emitted := make([]int64, workers)
	emittedLocal := make([]int64, workers)
	mapWorker := func(w int) {
		buckets[w] = make([][]pair, workers)
		if w >= len(input) {
			return
		}
		start := nowNs()
		for _, item := range input[w] {
			mapFn(w, item, func(k K, v V) {
				d := route(k)
				buckets[w][d] = append(buckets[w][d], pair{k, v})
				emitted[w]++
				if d == w {
					emittedLocal[w]++
				}
			})
		}
		mapNs[w] = float64(nowNs() - start)
	}
	forEachWorkerProf(workers, cfg.Parallel, name, "map", mapWorker)
	wallMap1 := int64(0)
	if tr != nil {
		wallMap1 = nowNs()
	}
	if w, fired := cfg.Faults.tick(workers); fired {
		// Lineage recovery: worker w's map output is lost and its task
		// re-runs from the in-memory shard while the other workers wait —
		// charged as an extra round carried by w alone (see MRConfig.Faults
		// for why the UDFs are not literally invoked a second time).
		if tr != nil {
			emitEv(telemetry.KindInstant, "fault", nowNs(), clock.Ns(),
				telemetry.I("worker", int64(w)), telemetry.S("phase", "map"))
		}
		redo := make([]float64, workers)
		redoBytes := make([]float64, workers)
		redoLocal := make([]float64, workers)
		redo[w] = mapNs[w]
		redoBytes[w] = float64(emitted[w]-emittedLocal[w]) * float64(cfg.PairBytes)
		redoLocal[w] = float64(emittedLocal[w]) * float64(cfg.PairBytes)
		clock.ChargeSuperstepTiered(redo, redoBytes, redoLocal)
		stats.Recoveries++
	}
	for w := 0; w < workers; w++ {
		outBytes[w] = float64(emitted[w]-emittedLocal[w]) * float64(cfg.PairBytes)
		localBytes[w] = float64(emittedLocal[w]) * float64(cfg.PairBytes)
		stats.Messages += emitted[w]
		stats.LocalMessages += emittedLocal[w]
		stats.RemoteMessages += emitted[w] - emittedLocal[w]
		stats.Bytes += emitted[w] * int64(cfg.PairBytes)
	}
	var simMap0, simComp float64
	if tr != nil {
		simMap0 = clock.Ns()
		_, simComp, _ = clock.SuperstepParts(mapNs, outBytes, localBytes)
	}
	clock.ChargeSuperstepTiered(mapNs, outBytes, localBytes)
	clock.CountMessages(stats.LocalMessages, stats.RemoteMessages)
	if cfg.Metrics != nil {
		cfg.Metrics.Counter("mr_jobs_total").Add(1)
		cfg.Metrics.Counter("mr_pairs_local_total").Add(stats.LocalMessages)
		cfg.Metrics.Counter("mr_pairs_remote_total").Add(stats.RemoteMessages)
		cfg.Metrics.Counter("mr_bytes_total").Add(stats.Bytes)
	}
	var wallRed0 int64
	if tr != nil {
		// The map span covers UDF execution; the shuffle span covers the
		// charged network transfer (its sim width is the λ + transfer part
		// of the map round's charge, its wall width the gap between the map
		// and reduce phases, where lane draining happens).
		wallRed0 = nowNs()
		emitEv(telemetry.KindBegin, "map", wallMap0, simMap0)
		emitEv(telemetry.KindEnd, "map", wallMap1, simMap0+simComp)
		emitEv(telemetry.KindBegin, "shuffle", wallMap1, simMap0+simComp)
		emitEv(telemetry.KindEnd, "shuffle", wallRed0, clock.Ns(),
			telemetry.I("pairs", stats.Messages))
		emitEv(telemetry.KindBegin, "reduce", wallRed0, clock.Ns())
	}

	// Shuffle + sort + reduce phase: destination worker d drains the lanes
	// buckets[*][d] into one flat pair arena (sized exactly), sorts it, and
	// reduces each key group against a values arena shared across groups.
	out := make([][]O, workers)
	redNs := make([]float64, workers)
	reduceWorker := func(d int) {
		total := 0
		for s := 0; s < workers; s++ {
			total += len(buckets[s][d])
		}
		pairs := make([]pair, 0, total)
		for s := 0; s < workers; s++ {
			pairs = append(pairs, buckets[s][d]...)
			buckets[s][d] = nil
		}
		start := nowNs()
		sort.SliceStable(pairs, func(a, b int) bool { return keyLess(pairs[a].k, pairs[b].k) })
		vals := make([]V, len(pairs))
		for i, p := range pairs {
			vals[i] = p.v
		}
		emit := func(o O) { out[d] = append(out[d], o) }
		i := 0
		for i < len(pairs) {
			j := i + 1
			for j < len(pairs) && !keyLess(pairs[i].k, pairs[j].k) && !keyLess(pairs[j].k, pairs[i].k) {
				j++
			}
			reduceFn(d, pairs[i].k, vals[i:j], emit)
			i = j
		}
		redNs[d] = float64(nowNs() - start)
	}
	forEachWorkerProf(workers, cfg.Parallel, name, "reduce", reduceWorker)
	if d, fired := cfg.Faults.tick(workers); fired {
		// Lineage recovery: the failed reduce task re-runs from its lanes,
		// priced as an extra round carried by d alone.
		if tr != nil {
			emitEv(telemetry.KindInstant, "fault", nowNs(), clock.Ns(),
				telemetry.I("worker", int64(d)), telemetry.S("phase", "reduce"))
		}
		redo := make([]float64, workers)
		redo[d] = redNs[d]
		clock.ChargeSuperstep(redo, make([]float64, workers))
		stats.Recoveries++
	}
	clock.ChargeSuperstep(redNs, make([]float64, workers))
	stats.Supersteps = 2
	stats.SimSeconds = clock.Seconds()
	if tr != nil {
		wallRed1 := nowNs()
		emitEv(telemetry.KindEnd, "reduce", wallRed1, clock.Ns())
		emitEv(telemetry.KindEnd, "mr", wallRed1, clock.Ns(),
			telemetry.I("pairs", stats.Messages))
	}
	return out, stats
}

// forEachWorker runs fn(w) for every worker index, on one goroutine per
// worker when parallel is set.
func forEachWorker(workers int, parallel bool, fn func(w int)) {
	if !parallel || workers <= 1 {
		for w := 0; w < workers; w++ {
			fn(w)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	wg.Wait()
}

// Uint64Hash is a keyHash for uint64-like keys (it applies the same mixing
// as vertex partitioning so adversarially structured keys still spread).
func Uint64Hash(k uint64) uint64 { return hashID(VertexID(k)) }

// ShardSlice splits items into w shards round-robin, simulating an even
// HDFS block distribution.
func ShardSlice[T any](items []T, w int) [][]T {
	if w <= 0 {
		w = 1
	}
	out := make([][]T, w)
	for i, it := range items {
		out[i%w] = append(out[i%w], it)
	}
	return out
}

// Flatten concatenates per-worker shards in worker order.
func Flatten[T any](shards [][]T) []T {
	var out []T
	for _, s := range shards {
		out = append(out, s...)
	}
	return out
}
