package pregel

import (
	"fmt"
	"testing"
)

// partFuzzGraph decodes fuzz bytes into a deterministic random workload:
// a vertex set, a fixed edge list per vertex, and a round budget. The
// compute function folds incoming payloads and the previous superstep's
// aggregator values into the vertex state (so aggregator equivalence is
// part of state equivalence) and fans out along the decoded edges.
type partFuzzGraph struct {
	n      int
	rounds int
	edges  [][]VertexID
}

func decodePartFuzz(data []byte) partFuzzGraph {
	g := partFuzzGraph{n: 16, rounds: 2}
	if len(data) > 0 {
		g.n = 16 + int(data[0]%64)
	}
	if len(data) > 1 {
		g.rounds = 2 + int(data[1]%4)
	}
	g.edges = make([][]VertexID, g.n)
	for i := 2; i+1 < len(data); i += 2 {
		src := int(data[i]) % g.n
		dst := VertexID(int(data[i+1]) % g.n)
		g.edges[src] = append(g.edges[src], dst)
	}
	// Give otherwise-isolated vertices one ring edge so the runs always
	// have message traffic to disagree about.
	for i := range g.edges {
		g.edges[i] = append(g.edges[i], VertexID((i+1)%g.n))
	}
	return g
}

func (fg partFuzzGraph) compute(ctx *Context[int64], id VertexID, val *int64, msgs []int64) {
	for _, m := range msgs {
		*val += m
	}
	*val += ctx.PrevAggSum("sum")
	if min, ok := ctx.PrevAggMin("min"); ok {
		*val ^= min
	}
	if ctx.PrevAggOr("or") {
		*val++
	}
	ctx.AggSum("sum", *val%7)
	ctx.AggMin("min", int64(id)%13)
	ctx.AggOr("or", *val%5 == 0)
	if ctx.Superstep() >= fg.rounds {
		ctx.VoteToHalt()
		return
	}
	for j, dst := range fg.edges[id] {
		ctx.Send(dst, *val+int64(j))
	}
}

// runPartFuzz executes the decoded workload under one placement and returns
// the final vertex states plus run stats.
func runPartFuzz(t *testing.T, fg partFuzzGraph, part Partitioner, workers int, parallel bool) ([]int64, *Stats) {
	t.Helper()
	g := NewGraph[int64, int64](Config{Workers: workers, Parallel: parallel, Partitioner: part})
	for i := 0; i < fg.n; i++ {
		g.AddVertex(VertexID(i), int64(i))
	}
	st, err := g.Run(fg.compute, WithName("partfuzz"))
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int64, fg.n)
	g.ForEach(func(id VertexID, v *int64) { out[id] = *v })
	return out, st
}

// fuzzPartitioners builds the three placement strategies under test: the
// hash default, a range partitioner covering the fuzz ID space, and a
// table partitioner whose overrides are derived from the seed — the
// engine-level stand-in for the assembler's learned affinity table.
func fuzzPartitioners(fg partFuzzGraph, seed uint64, workers int) []Partitioner {
	table := NewTablePartitioner("affinity", HashPartitioner{})
	entries := map[VertexID]int{}
	z := seed
	for i := 0; i < fg.n; i++ {
		z += 0x9E3779B97F4A7C15
		x := z
		x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
		x = (x ^ (x >> 27)) * 0x94D049BB133111EB
		if x&1 == 0 { // cover only part of the ID set, like the real table
			entries[VertexID(i)] = int((x >> 1) % uint64(workers))
		}
	}
	table.Install(entries, workers)
	return []Partitioner{
		HashPartitioner{},
		RangePartitioner{Bits: 7}, // 2^7 = 128 >= max n; larger IDs fall back
		table,
	}
}

// checkPartFuzz asserts the partition-equivalence contract for one decoded
// workload: identical vertex states (including the folded-in aggregator
// history), message totals and superstep counts across all three
// partitioners, workers in {1, 4, 7}, Parallel on and off — and a
// consistent local/remote split everywhere.
func checkPartFuzz(t *testing.T, data []byte, seed uint64) {
	t.Helper()
	fg := decodePartFuzz(data)
	baseVals, baseStats := runPartFuzz(t, fg, HashPartitioner{}, 1, false)
	for _, workers := range []int{1, 4, 7} {
		for _, part := range fuzzPartitioners(fg, seed, workers) {
			for _, parallel := range []bool{false, true} {
				label := fmt.Sprintf("part=%s workers=%d parallel=%v", part.Name(), workers, parallel)
				vals, st := runPartFuzz(t, fg, part, workers, parallel)
				for id := range baseVals {
					if vals[id] != baseVals[id] {
						t.Fatalf("%s: vertex %d state %d != baseline %d", label, id, vals[id], baseVals[id])
					}
				}
				if st.Messages != baseStats.Messages || st.Supersteps != baseStats.Supersteps {
					t.Fatalf("%s: stats (msgs=%d steps=%d) != baseline (msgs=%d steps=%d)",
						label, st.Messages, st.Supersteps, baseStats.Messages, baseStats.Supersteps)
				}
				if st.LocalMessages+st.RemoteMessages != st.Messages {
					t.Fatalf("%s: local %d + remote %d != total %d",
						label, st.LocalMessages, st.RemoteMessages, st.Messages)
				}
				if workers == 1 && st.RemoteMessages != 0 {
					t.Fatalf("%s: single worker counted %d remote messages", label, st.RemoteMessages)
				}
			}
		}
	}
}

// FuzzPartitionEquivalence is the placement-independence contract of the
// engine: for arbitrary graphs and a state-folding compute function, vertex
// states, aggregator history, message totals and superstep counts must not
// depend on which partitioner places the vertices, how many workers there
// are, or whether workers run in parallel. Only the local/remote traffic
// split may move.
func FuzzPartitionEquivalence(f *testing.F) {
	f.Add([]byte{5, 1, 0, 1, 1, 2, 2, 3}, uint64(1))
	f.Add([]byte{40, 3, 9, 9, 10, 11, 30, 2, 7, 7}, uint64(99))
	f.Add([]byte{}, uint64(0))
	f.Fuzz(func(t *testing.T, data []byte, seed uint64) {
		if len(data) > 256 {
			data = data[:256] // bound the workload, not the coverage
		}
		checkPartFuzz(t, data, seed)
	})
}

// TestPartitionEquivalenceSeeds runs the fuzz corpus seeds as a plain test
// so `go test` (without -fuzz) still covers the equivalence contract; CI's
// race job runs it with all three placements under the race detector.
func TestPartitionEquivalenceSeeds(t *testing.T) {
	seeds := []struct {
		data []byte
		seed uint64
	}{
		{[]byte{5, 1, 0, 1, 1, 2, 2, 3}, 1},
		{[]byte{40, 3, 9, 9, 10, 11, 30, 2, 7, 7}, 99},
		{[]byte{}, 0},
		{[]byte{63, 2, 0, 63, 63, 0, 31, 31, 5, 5, 1, 0}, 12345},
	}
	for _, s := range seeds {
		checkPartFuzz(t, s.data, s.seed)
	}
}
