package pregel

import (
	"encoding/binary"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// CkptFileInfo is the verification result for one file in a checkpoint
// directory.
type CkptFileInfo struct {
	// Name is the file's base name; Job and Step are parsed from it.
	Name string
	Job  string
	Step int
	// Delta marks .dckpt files, Temp marks stray .tmp-* files a crash left
	// mid-write (harmless debris, never counted as corruption).
	Delta bool
	Temp  bool
	// Version is the container format version (2, 3 or 4), 0 when the frame
	// is too damaged to tell.
	Version int
	// Bytes is the file size; SectionEnds are the container's internal
	// boundaries (header end, then each worker section's end) — the exact
	// offsets torn-write testing truncates at.
	Bytes       int64
	SectionEnds []int64
	// Err is nil for an intact file. For v3 files intact means every CRC
	// verified; v2 files predate checksums, so only the framing is checked.
	Err error
}

// CkptDirReport is the result of scrubbing one checkpoint directory.
type CkptDirReport struct {
	Dir   string
	Files []CkptFileInfo
}

// Corrupt returns the files that failed verification (stale temp files are
// not corruption).
func (r *CkptDirReport) Corrupt() []CkptFileInfo {
	var bad []CkptFileInfo
	for _, f := range r.Files {
		if f.Err != nil && !f.Temp {
			bad = append(bad, f)
		}
	}
	return bad
}

// VerifyCheckpointDir reads every checkpoint artifact under dir and checks
// its integrity: frame structure for all versions, CRC32C checksums for v3.
// It is the engine behind ppa-assembler's -ckpt-verify mode.
func VerifyCheckpointDir(dir string) (*CkptDirReport, error) {
	return VerifyCheckpointDirFS(dir, OSFS())
}

// VerifyCheckpointDirFS is VerifyCheckpointDir against an injected
// filesystem.
func VerifyCheckpointDirFS(dir string, fsys FS) (*CkptDirReport, error) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("pregel: verifying checkpoint dir: %w", err)
	}
	sort.Strings(names)
	rep := &CkptDirReport{Dir: dir}
	for _, name := range names {
		job, step, delta, ok := parseCkptName(name)
		if !ok {
			if strings.Contains(name, ".tmp-") {
				rep.Files = append(rep.Files, CkptFileInfo{Name: name, Temp: true,
					Err: fmt.Errorf("stale temp file left by an interrupted write; safe to delete")})
			}
			continue
		}
		info := CkptFileInfo{Name: name, Job: job, Step: step, Delta: delta}
		data, err := fsys.ReadFile(filepath.Join(dir, name))
		if err != nil {
			info.Err = err
			rep.Files = append(rep.Files, info)
			continue
		}
		info.Bytes = int64(len(data))
		info.Version = ckptBlobVersion(data)
		file, bounds, err := decodeCkptFileBounds(job, data)
		switch {
		case err != nil:
			info.Err = err
		case file.Step != step:
			info.Err = fmt.Errorf("file name says step %d but the container holds step %d", step, file.Step)
		case delta != (file.Kind == ckptKindDelta):
			info.Err = fmt.Errorf("file extension and container kind disagree (kind byte %d)", file.Kind)
		default:
			info.SectionEnds = bounds
		}
		rep.Files = append(rep.Files, info)
	}
	return rep, nil
}

// parseCkptName splits a checkpoint file name (job.%08d.ckpt or .dckpt)
// into its job key and step.
func parseCkptName(name string) (job string, step int, delta, ok bool) {
	rest := name
	switch {
	case strings.HasSuffix(rest, ".dckpt"):
		rest, delta = strings.TrimSuffix(rest, ".dckpt"), true
	case strings.HasSuffix(rest, ".ckpt"):
		rest = strings.TrimSuffix(rest, ".ckpt")
	default:
		return "", 0, false, false
	}
	i := strings.LastIndex(rest, ".")
	if i < 0 {
		return "", 0, false, false
	}
	s, err := strconv.Atoi(rest[i+1:])
	if err != nil {
		return "", 0, false, false
	}
	return rest[:i], s, delta, true
}

// ckptBlobVersion peeks at a container's version field; 0 when the frame
// is too damaged to carry one.
func ckptBlobVersion(data []byte) int {
	if len(data) < len(ckptMagic)+1 || string(data[:len(ckptMagic)]) != ckptMagic {
		return 0
	}
	v, n := binary.Uvarint(data[len(ckptMagic):])
	if n <= 0 {
		return 0
	}
	return int(v)
}
