// Package ckpttest is the differential test harness for checkpoint codec
// implementations: every type that opts into the engine's binary
// checkpoint format (pregel.CheckpointAppender / pregel.CheckpointDecoder)
// is checked against the gob baseline the v1 format used, so the two
// serializations can never silently disagree about a vertex state shape —
// and, via Corrupt, against truncated and bit-flipped encodings, so
// damaged state can never crash a decoder.
package ckpttest

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
)

// Codec is the pointer-receiver pair every checkpointable type implements.
type Codec[T any] interface {
	*T
	AppendCheckpoint(buf []byte) []byte
	DecodeCheckpoint(data []byte) ([]byte, error)
}

// RoundTrip runs the differential contract on one value:
//
//  1. the binary encoding is self-delimiting — decoding consumes exactly
//     the appended bytes and returns any trailing data untouched;
//  2. re-encoding the decoded value reproduces the original bytes
//     (byte-identical round trip, the property delta checkpoints rely on);
//  3. the binary-decoded value equals the value a gob round trip (the v1
//     checkpoint baseline) produces, field for field.
func RoundTrip[T any, P Codec[T]](t testing.TB, v *T) {
	t.Helper()
	enc := P(v).AppendCheckpoint(nil)

	sentinel := []byte{0xA5, 0x5A, 0x00, 0xFF}
	framed := append(append(make([]byte, 0, len(enc)+len(sentinel)), enc...), sentinel...)
	var bin T
	rest, err := P(&bin).DecodeCheckpoint(framed)
	if err != nil {
		t.Fatalf("DecodeCheckpoint(%T): %v", v, err)
	}
	if !bytes.Equal(rest, sentinel) {
		t.Fatalf("%T codec is not self-delimiting: %d bytes left after decode, want the %d-byte sentinel", v, len(rest), len(sentinel))
	}
	if re := P(&bin).AppendCheckpoint(nil); !bytes.Equal(re, enc) {
		t.Fatalf("%T re-encode after decode differs from the original encoding (%d vs %d bytes)", v, len(re), len(enc))
	}

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatalf("gob baseline encode of %T: %v", v, err)
	}
	var viaGob T
	if err := gob.NewDecoder(&buf).Decode(&viaGob); err != nil {
		t.Fatalf("gob baseline decode of %T: %v", v, err)
	}
	if !reflect.DeepEqual(bin, viaGob) {
		t.Fatalf("%T: binary codec and gob baseline disagree:\n binary %+v\n    gob %+v", v, bin, viaGob)
	}
}

// NoPanic feeds arbitrary bytes to the decoder: corrupt input must surface
// as an error, never a panic or an unbounded allocation.
func NoPanic[T any, P Codec[T]](t testing.TB, data []byte) {
	t.Helper()
	var junk T
	_, _ = P(&junk).DecodeCheckpoint(data)
}

// Corrupt exercises the decoder against damaged encodings of v — the
// adversarial counterpart to RoundTrip's happy path. It decodes every
// truncation of the valid encoding, then applies byte flips at positions
// drawn from the fuzz input. Damage must surface as a decode error or a
// differing value — never a panic, hang, or unbounded allocation (the
// properties the checkpoint walk-back recovery depends on).
func Corrupt[T any, P Codec[T]](t testing.TB, v *T, fuzz []byte) {
	t.Helper()
	enc := P(v).AppendCheckpoint(nil)
	for n := 0; n < len(enc); n++ {
		var junk T
		_, _ = P(&junk).DecodeCheckpoint(enc[:n])
	}
	if len(enc) == 0 {
		return
	}
	for i := 0; i+1 < len(fuzz) && i < 64; i += 2 {
		mut := append([]byte(nil), enc...)
		mut[int(fuzz[i])%len(mut)] ^= fuzz[i+1] | 1 // |1 keeps the flip nonzero
		var junk T
		_, _ = P(&junk).DecodeCheckpoint(mut)
	}
}
