package pregel

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"ppaassembler/internal/transport"
)

// TestTransportMemWireMatchesLoopback is the engine-level determinism
// contract for the wire path: the same job over the loopback shuffle (nil
// transport and the explicit mem transport) and over memwire — where every
// remote lane is encoded, framed, CRC-checked and decoded — must produce
// bit-identical vertex values, aggregates and run counters, for every
// worker count and Parallel mode.
func TestTransportMemWireMatchesLoopback(t *testing.T) {
	const n, iters = 96, 11
	for _, workers := range []int{1, 4, 7} {
		for _, parallel := range []bool{false, true} {
			t.Run(fmt.Sprintf("w%d-par%v", workers, parallel), func(t *testing.T) {
				base := buildPRGraph(Config{Workers: workers, Parallel: parallel}, n)
				baseStats, err := base.Run(pageRankish(n, iters), WithName("wirecheck"))
				if err != nil {
					t.Fatal(err)
				}
				want := collectPR(base)

				for _, tx := range []transport.Transport{
					transport.NewMem(workers),
					transport.NewMemWire(workers),
				} {
					g := buildPRGraph(Config{Workers: workers, Parallel: parallel, Transport: tx}, n)
					stats, err := g.Run(pageRankish(n, iters), WithName("wirecheck"))
					if err != nil {
						t.Fatalf("transport %q: %v", tx.Name(), err)
					}
					if got := collectPR(g); !reflect.DeepEqual(got, want) {
						t.Errorf("transport %q: vertex values differ from loopback run", tx.Name())
					}
					sameRunStats(t, "transport "+tx.Name(), baseStats, stats)
				}
			})
		}
	}
}

// gobMsg has no binary checkpoint codec, forcing the lane codec onto its
// gob fallback.
type gobMsg struct {
	Share int64
	Hops  int32
}

// TestTransportGobLaneFallback runs a job whose message type lacks the
// binary value codec over memwire: lanes take the gob path and results must
// still match the loopback run exactly.
func TestTransportGobLaneFallback(t *testing.T) {
	const n = 64
	compute := func(ctx *Context[gobMsg], id VertexID, v *int64, msgs []gobMsg) {
		for _, m := range msgs {
			*v += m.Share + int64(m.Hops)
		}
		if ctx.Superstep() >= 5 {
			ctx.VoteToHalt()
			return
		}
		ctx.Send(VertexID((uint64(id)+3)%n), gobMsg{Share: *v % 97, Hops: int32(ctx.Superstep())})
	}
	run := func(tx transport.Transport) map[VertexID]int64 {
		g := NewGraph[int64, gobMsg](Config{Workers: 4, Transport: tx})
		for i := 0; i < n; i++ {
			g.AddVertex(VertexID(i), int64(i))
		}
		if _, err := g.Run(compute, WithName("goblane")); err != nil {
			t.Fatal(err)
		}
		out := map[VertexID]int64{}
		g.ForEach(func(id VertexID, v *int64) { out[id] = *v })
		return out
	}
	want := run(nil)
	if got := run(transport.NewMemWire(4)); !reflect.DeepEqual(got, want) {
		t.Error("gob-lane memwire run differs from loopback run")
	}
}

// droppingTransport wraps MemWire and injects one worker-depot loss: the
// first RecvLane at the trigger step drops the victim's stored lanes
// first, so the engine sees exactly what a died-and-restarted TCP worker
// produces — a WorkerDownError on a lane fetch.
type droppingTransport struct {
	*transport.MemWire
	triggerStep int
	victim      int
	fired       bool
}

func (d *droppingTransport) RecvLane(step, src, dst int) ([]byte, error) {
	if !d.fired && step == d.triggerStep {
		d.fired = true
		d.MemWire.DropWorker(d.victim)
	}
	return d.MemWire.RecvLane(step, src, dst)
}

// TestTransportWorkerDownRollsBack proves the recovery contract: a worker
// losing its depot mid-run rolls the run back to the latest checkpoint,
// replays, and finishes with values and counters identical to an unfailed
// run — the same guarantee the injected-fault crash matrix provides, now
// reached through the transport's WorkerDownError path.
func TestTransportWorkerDownRollsBack(t *testing.T) {
	const n, iters = 96, 11
	base := buildPRGraph(Config{Workers: 4}, n)
	baseStats, err := base.Run(pageRankish(n, iters), WithName("wiredown"))
	if err != nil {
		t.Fatal(err)
	}
	want := collectPR(base)

	for trigger := 1; trigger < iters; trigger++ {
		tx := &droppingTransport{MemWire: transport.NewMemWire(4), triggerStep: trigger, victim: 2}
		g := buildPRGraph(Config{Workers: 4, Transport: tx, CheckpointEvery: 3}, n)
		stats, err := g.Run(pageRankish(n, iters), WithName("wiredown"))
		if err != nil {
			t.Fatalf("drop@%d: %v", trigger, err)
		}
		if stats.Recoveries != 1 {
			t.Fatalf("drop@%d: %d recoveries, want 1", trigger, stats.Recoveries)
		}
		if got := collectPR(g); !reflect.DeepEqual(got, want) {
			t.Errorf("drop@%d: recovered values differ from unfailed run", trigger)
		}
		sameRunStats(t, fmt.Sprintf("drop@%d", trigger), baseStats, stats)
	}
}

// TestTransportWorkerDownWithoutCheckpointsFatal: without checkpointing a
// lost worker fails the run with an error that names the cure.
func TestTransportWorkerDownWithoutCheckpointsFatal(t *testing.T) {
	const n = 96
	tx := &droppingTransport{MemWire: transport.NewMemWire(4), triggerStep: 2, victim: 1}
	g := buildPRGraph(Config{Workers: 4, Transport: tx}, n)
	_, err := g.Run(pageRankish(n, 8), WithName("wirefatal"))
	if err == nil {
		t.Fatal("run with a lost worker and no checkpoints succeeded")
	}
	if !strings.Contains(err.Error(), "CheckpointEvery") {
		t.Errorf("error should name the checkpointing cure: %v", err)
	}
	if !transport.IsWorkerDown(err) {
		t.Errorf("error should wrap the WorkerDownError cause: %v", err)
	}
}

// TestTransportRepeatedFailureGivesUp: a depot that loses state on every
// drain attempt must exhaust the consecutive-recovery cap instead of
// replaying forever.
func TestTransportRepeatedFailureGivesUp(t *testing.T) {
	tx := &alwaysDownTransport{MemWire: transport.NewMemWire(2)}
	g := buildPRGraph(Config{Workers: 2, Transport: tx, CheckpointEvery: 2}, 32)
	_, err := g.Run(pageRankish(32, 8), WithName("wiregiveup"))
	if err == nil {
		t.Fatal("run against a permanently down worker succeeded")
	}
	if !strings.Contains(err.Error(), "consecutive worker failures") {
		t.Errorf("error should report the recovery cap: %v", err)
	}
}

type alwaysDownTransport struct{ *transport.MemWire }

func (a *alwaysDownTransport) RecvLane(step, src, dst int) ([]byte, error) {
	return nil, &transport.WorkerDownError{Worker: dst, Err: fmt.Errorf("permanently down")}
}

// TestTransportTCPEngineRun drives the engine over the real TCP transport
// against in-process worker depots, including a depot kill-and-restart
// mid-run, and requires bit-identical results to the loopback run.
func TestTransportTCPEngineRun(t *testing.T) {
	const n, iters, workers = 96, 11, 3
	base := buildPRGraph(Config{Workers: workers}, n)
	if _, err := base.Run(pageRankish(n, iters), WithName("tcpcheck")); err != nil {
		t.Fatal(err)
	}
	want := collectPR(base)

	addrs := make([]string, workers)
	servers := make([]*transport.WorkerServer, workers)
	for i := range servers {
		servers[i] = &transport.WorkerServer{Worker: i}
		addr, err := servers[i].Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go servers[i].Serve()
		defer servers[i].Close()
		addrs[i] = addr
	}
	tx, err := transport.DialTCP(transport.TCPOptions{
		Peers:        addrs,
		DialTimeout:  2 * time.Second,
		IOTimeout:    5 * time.Second,
		RetryBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()

	t.Run("clean run", func(t *testing.T) {
		g := buildPRGraph(Config{Workers: workers, Parallel: true, Transport: tx}, n)
		if _, err := g.Run(pageRankish(n, iters), WithName("tcpcheck")); err != nil {
			t.Fatal(err)
		}
		if got := collectPR(g); !reflect.DeepEqual(got, want) {
			t.Error("TCP run differs from loopback run")
		}
		c := tx.Counters()
		if c.BytesSent == 0 || c.BytesRecv == 0 || c.Barriers == 0 {
			t.Errorf("TCP counters did not move: %+v", c)
		}
	})

	t.Run("kill and restart a depot mid-run", func(t *testing.T) {
		victim := 1
		done := make(chan struct{})
		go func() {
			defer close(done)
			time.Sleep(15 * time.Millisecond)
			servers[victim].Close()
			restarted := &transport.WorkerServer{Worker: victim}
			for i := 0; i < 100; i++ {
				if _, err := restarted.Listen(addrs[victim]); err == nil {
					break
				}
				time.Sleep(10 * time.Millisecond)
			}
			go restarted.Serve()
			servers[victim] = restarted
		}()
		g := buildPRGraph(Config{Workers: workers, Transport: tx, CheckpointEvery: 2}, n)
		// Slow the job down enough that the kill lands mid-run.
		slowed := func(ctx *Context[int64], id VertexID, v *prVal, msgs []int64) {
			if uint64(id) == 0 {
				time.Sleep(time.Millisecond)
			}
			pageRankish(n, iters)(ctx, id, v, msgs)
		}
		stats, err := g.Run(slowed, WithName("tcpkill"))
		<-done
		if err != nil {
			t.Fatal(err)
		}
		if got := collectPR(g); !reflect.DeepEqual(got, want) {
			t.Error("recovered TCP run differs from loopback run")
		}
		// The kill may land between supersteps and be absorbed by a clean
		// redial; recovery count is 0 or more, but values must match either
		// way. Log it for visibility.
		t.Logf("recoveries=%d redials=%d", stats.Recoveries, tx.Counters().Redials)
	})
}

// TestResumeTransportMismatchFails is the PR's resume-identity satellite:
// a checkpoint written under one transport refuses to resume under
// another, naming both (extending the partitioner/worker-count identity
// checks).
func TestResumeTransportMismatchFails(t *testing.T) {
	const n = 64
	dir := t.TempDir()
	store, err := NewDirCheckpointer(dir)
	if err != nil {
		t.Fatal(err)
	}
	g := buildPRGraph(Config{
		Workers:         4,
		Transport:       transport.NewMemWire(4),
		CheckpointEvery: 2,
		Checkpointer:    store,
	}, n)
	if _, err := g.Run(pageRankish(n, 8), WithName("txresume")); err != nil {
		t.Fatal(err)
	}

	store2, err := NewDirCheckpointer(dir)
	if err != nil {
		t.Fatal(err)
	}
	g2 := buildPRGraph(Config{
		Workers:         4,
		CheckpointEvery: 2,
		Checkpointer:    store2,
		Resume:          true,
	}, n)
	_, err = g2.Run(pageRankish(n, 8), WithName("txresume"))
	if err == nil {
		t.Fatal("resume under a different transport succeeded")
	}
	msg := err.Error()
	if !strings.Contains(msg, `transport "memwire"`) || !strings.Contains(msg, `transport "mem"`) {
		t.Errorf("error should name both transports: %v", err)
	}

	// Same transport resumes cleanly.
	store3, err := NewDirCheckpointer(dir)
	if err != nil {
		t.Fatal(err)
	}
	g3 := buildPRGraph(Config{
		Workers:         4,
		Transport:       transport.NewMemWire(4),
		CheckpointEvery: 2,
		Checkpointer:    store3,
		Resume:          true,
	}, n)
	if _, err := g3.Run(pageRankish(n, 8), WithName("txresume")); err != nil {
		t.Fatalf("resume under the original transport: %v", err)
	}
}

// TestTransportWorkerCountMismatchRejected: a transport addressing a
// different worker count than the graph is a configuration error, caught
// by both Validate and Run.
func TestTransportWorkerCountMismatchRejected(t *testing.T) {
	cfg := Config{Workers: 4, Transport: transport.NewMemWire(3)}
	if err := cfg.Validate(); err == nil {
		t.Error("Validate accepted a worker-count mismatch")
	}
	g := buildPRGraph(cfg, 16)
	if _, err := g.Run(pageRankish(16, 3), WithName("txmismatch")); err == nil {
		t.Error("Run accepted a worker-count mismatch")
	}
}

// TestLaneCodecRoundTrip pins the lane codec on both paths.
func TestLaneCodecRoundTrip(t *testing.T) {
	lanes := [][]envelope[int64]{
		nil,
		{},
		{{dst: 1, msg: 42}},
		{{dst: 7, msg: -3}, {dst: 7, msg: 0}, {dst: 99, msg: 1 << 40}},
	}
	for i, lane := range lanes {
		buf, err := encodeLane(nil, lane, true)
		if err != nil {
			t.Fatalf("lane %d: %v", i, err)
		}
		got, err := decodeLane[int64](buf, nil)
		if err != nil {
			t.Fatalf("lane %d: %v", i, err)
		}
		if len(got) != len(lane) {
			t.Fatalf("lane %d: %d envelopes, want %d", i, len(got), len(lane))
		}
		for j := range lane {
			if got[j] != lane[j] {
				t.Fatalf("lane %d envelope %d: %+v want %+v", i, j, got[j], lane[j])
			}
		}
	}
	// Corrupt payloads fail loudly instead of decoding garbage.
	if _, err := decodeLane[int64](nil, nil); err == nil {
		t.Error("empty payload decoded")
	}
	if _, err := decodeLane[int64]([]byte{9, 1, 2}, nil); err == nil {
		t.Error("unknown lane flag decoded")
	}
}
