package pregel

import "ppaassembler/internal/telemetry"

// Convert is the paper's second Pregel+ API extension (§II): in-memory job
// concatenation. It transforms the vertex set of a finished job j (graph
// src, vertex class V1) into the input vertex set of the next job j′
// (vertex class V2) without a round trip through the distributed file
// system. The UDF fn is called once per source vertex and may emit zero or
// more (id, value) vertices for the new graph; emitted vertices are
// shuffled to their owning worker by vertex-ID hash, exactly as on load.
//
// The new graph shares src's simulated clock, so a pipeline of chained jobs
// accumulates one end-to-end time. The conversion itself is charged as one
// shuffle round.
func Convert[V2, M2, V1, M1 any](
	src *Graph[V1, M1],
	cfg Config,
	fn func(id VertexID, val V1, emit func(VertexID, V2)),
) *Graph[V2, M2] {
	cfg = cfg.withDefaults()
	dst := NewGraph[V2, M2](cfg)
	dst.clock = src.clock
	if cfg.Tracer != nil {
		cfg.Tracer.Emit(telemetry.Event{
			Kind: telemetry.KindBegin, Name: "convert", Cat: "pregel",
			WallNs: nowNs(), SimNs: src.clock.Ns(),
			Args: []telemetry.Arg{telemetry.I("vertices", int64(src.VertexCount()))},
		})
	}

	convNs := make([]float64, src.cfg.Workers)
	outBytes := make([]float64, src.cfg.Workers)
	localBytes := make([]float64, src.cfg.Workers)
	var nLocal, nRemote int64
	type pending struct {
		id  VertexID
		val V2
	}
	var emitted []pending
	cur := -1
	var start int64
	src.ForEachWorker(func(w int, id VertexID, val *V1) {
		if w != cur {
			if cur >= 0 && cur < len(convNs) {
				convNs[cur] += float64(nowNs() - start)
			}
			cur = w
			start = nowNs()
		}
		fn(id, *val, func(nid VertexID, nval V2) {
			emitted = append(emitted, pending{nid, nval})
			if w < len(outBytes) {
				// The conversion shuffle is tiered like any other: a vertex
				// emitted to its source worker's own partition (under the
				// destination graph's partitioner) never crosses the wire.
				if w < dst.cfg.Workers && dst.WorkerOf(nid) == w {
					localBytes[w] += float64(cfg.MessageBytes)
					nLocal++
				} else {
					outBytes[w] += float64(cfg.MessageBytes)
					nRemote++
				}
			}
		})
	})
	if cur >= 0 && cur < len(convNs) {
		convNs[cur] += float64(nowNs() - start)
	}
	for _, p := range emitted {
		dst.AddVertex(p.id, p.val)
	}
	dst.clock.ChargeSuperstepTiered(convNs, outBytes, localBytes)
	dst.clock.CountMessages(nLocal, nRemote)
	if cfg.Tracer != nil {
		cfg.Tracer.Emit(telemetry.Event{
			Kind: telemetry.KindEnd, Name: "convert", Cat: "pregel",
			WallNs: nowNs(), SimNs: dst.clock.Ns(),
			Args: []telemetry.Arg{telemetry.I("emitted", int64(len(emitted)))},
		})
	}
	return dst
}

// UseClock replaces g's simulated clock, letting independent graphs charge
// a shared end-to-end pipeline clock.
func (g *Graph[V, M]) UseClock(c *SimClock) { g.clock = c }

// SetTelemetry replaces the graph's tracer and metrics registry. A graph
// captures both in its Config at construction, so a sink installed later
// (e.g. by a mid-plan trace op) must be retrofitted explicitly; nil
// detaches.
func (g *Graph[V, M]) SetTelemetry(tr telemetry.Tracer, m *telemetry.Registry) {
	g.cfg.Tracer = tr
	g.cfg.Metrics = m
}
