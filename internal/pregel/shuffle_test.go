package pregel

import (
	"math/rand"
	"runtime"
	"testing"
)

// TestShuffleParallelMatchesSequentialStress runs a messaging-heavy random
// job under every combination of worker count and execution mode and demands
// bit-identical vertex values and identical Stats (messages, supersteps,
// drops) between parallel and sequential execution — the determinism
// contract of Config.Parallel.
func TestShuffleParallelMatchesSequentialStress(t *testing.T) {
	const n = 500
	run := func(workers int, parallel bool) (map[VertexID]int64, *Stats) {
		g := NewGraph[int64, int64](Config{Workers: workers, Parallel: parallel})
		for i := 0; i < n; i++ {
			g.AddVertex(VertexID(i), 0)
		}
		st, err := g.Run(func(ctx *Context[int64], id VertexID, val *int64, msgs []int64) {
			for _, m := range msgs {
				*val = *val*31 + m // order-sensitive fold over the inbox
			}
			if ctx.Superstep() >= 8 {
				ctx.VoteToHalt()
				return
			}
			// Deterministic pseudo-random fan-out, including messages that
			// drop (to exercise the dropped-message path) and self-sends.
			h := uint64(id)*2654435761 + uint64(ctx.Superstep())*97
			for j := 0; j < int(h%5); j++ {
				dst := VertexID((h + uint64(j)*131) % (n + 20)) // some targets do not exist
				ctx.Send(dst, int64(id)<<8|int64(j))
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[VertexID]int64, n)
		g.ForEach(func(id VertexID, v *int64) { out[id] = *v })
		return out, st
	}
	for _, workers := range []int{1, 2, 4, 7} {
		seqVals, seqSt := run(workers, false)
		for trial := 0; trial < 3; trial++ {
			parVals, parSt := run(workers, true)
			if parSt.Messages != seqSt.Messages || parSt.Supersteps != seqSt.Supersteps ||
				parSt.DroppedMessages != seqSt.DroppedMessages {
				t.Fatalf("workers=%d trial=%d: parallel stats %+v != sequential %+v",
					workers, trial, parSt, seqSt)
			}
			for id, v := range seqVals {
				if parVals[id] != v {
					t.Fatalf("workers=%d trial=%d vertex %d: parallel %d != sequential %d",
						workers, trial, id, parVals[id], v)
				}
			}
		}
	}
}

// TestShuffleSteadyStateAllocationFree verifies the arena design: once lanes
// and arenas have warmed up, additional supersteps of a message-heavy job
// allocate (almost) nothing. It compares total allocations of a short and a
// long run of the same per-superstep workload; the difference divided by the
// extra supersteps must be far below one allocation per vertex.
func TestShuffleSteadyStateAllocationFree(t *testing.T) {
	const n = 2000
	g := NewGraph[int64, int64](Config{Workers: 4})
	for i := 0; i < n; i++ {
		g.AddVertex(VertexID(i), 0)
	}
	job := func(steps int) func() {
		return func() {
			_, err := g.Run(func(ctx *Context[int64], id VertexID, val *int64, msgs []int64) {
				for _, m := range msgs {
					*val += m
				}
				if ctx.Superstep() >= steps {
					ctx.VoteToHalt()
					return
				}
				for j := 0; j < 4; j++ {
					ctx.Send(VertexID((uint64(id)*2654435761+uint64(j))%n), int64(id))
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	job(60)() // warm lanes and arenas past any growth
	shortAllocs := testing.AllocsPerRun(3, job(10))
	longAllocs := testing.AllocsPerRun(3, job(60))
	perStep := (longAllocs - shortAllocs) / 50
	// Aggregator flips allocate a handful of small maps per superstep; the
	// message path itself must add nothing per vertex (n=2000 messages*4
	// per superstep would show up immediately).
	if perStep > 16 {
		t.Errorf("steady-state shuffle allocates %.1f allocs/superstep (short=%.0f long=%.0f), want <= 16",
			perStep, shortAllocs, longAllocs)
	}
}

// TestAggregatorSendParallelStress hammers every aggregator family and Send
// from all workers at once. Under -race this is the regression net for the
// engine's concurrent shuffle; in any mode it checks the aggregate values
// and fan-in sums survive parallel execution exactly.
func TestAggregatorSendParallelStress(t *testing.T) {
	const (
		n     = 800
		steps = 6
	)
	workers := runtime.GOMAXPROCS(0) * 2
	if workers < 8 {
		workers = 8
	}
	g := NewGraph[int64, int64](Config{Workers: workers, Parallel: true})
	g.SetCombiner(func(a, b int64) int64 { return a + b })
	for i := 0; i < n; i++ {
		g.AddVertex(VertexID(i), 0)
	}
	st, err := g.Run(func(ctx *Context[int64], id VertexID, val *int64, msgs []int64) {
		for _, m := range msgs {
			*val += m
		}
		s := ctx.Superstep()
		if s > 0 {
			// Every vertex checks the previous superstep's aggregates.
			if got := ctx.PrevAggSum("ones"); got != n {
				t.Errorf("superstep %d: PrevAggSum(ones) = %d, want %d", s, got, n)
			}
			if mn, ok := ctx.PrevAggMin("min"); !ok || mn != -int64(s-1) {
				t.Errorf("superstep %d: PrevAggMin(min) = %d,%v, want %d,true", s, mn, ok, -int64(s-1))
			}
			if !ctx.PrevAggOr("or") {
				t.Errorf("superstep %d: PrevAggOr(or) = false, want true", s)
			}
		}
		if s >= steps {
			ctx.VoteToHalt()
			return
		}
		ctx.AggSum("ones", 1)
		ctx.AggMin("min", -int64(s))
		ctx.AggMin("min", int64(id)+1)
		ctx.AggOr("or", id == 0)
		ctx.AggOr("or", false)
		// All-to-few fan-in through the eager combiner.
		ctx.Send(id%13, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Supersteps != steps+1 {
		t.Errorf("supersteps = %d, want %d", st.Supersteps, steps+1)
	}
	total := int64(0)
	g.ForEach(func(id VertexID, v *int64) { total += *v })
	if want := int64(n * steps); total != want {
		t.Errorf("fan-in sum = %d, want %d", total, want)
	}
}

// TestDeliverDropsToDeadVertexDeterministically: messages to vertices
// removed in the same superstep count as dropped identically in both modes.
func TestDeliverDropsToDeadVertexDeterministically(t *testing.T) {
	run := func(parallel bool) *Stats {
		g := NewGraph[int, int](Config{Workers: 4, Parallel: parallel})
		for i := 0; i < 40; i++ {
			g.AddVertex(VertexID(i), 0)
		}
		st, err := g.Run(func(ctx *Context[int], id VertexID, val *int, msgs []int) {
			switch ctx.Superstep() {
			case 0:
				ctx.Send((id+1)%40, 1) // everyone messages a neighbor
				if id%4 == 0 {
					ctx.RemoveSelf() // ... some of which die this superstep
					return
				}
			default:
			}
			ctx.VoteToHalt()
		})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	seq, par := run(false), run(true)
	if seq.DroppedMessages != 10 {
		t.Errorf("sequential dropped = %d, want 10", seq.DroppedMessages)
	}
	if par.DroppedMessages != seq.DroppedMessages || par.Messages != seq.Messages {
		t.Errorf("parallel stats %+v != sequential %+v", par, seq)
	}
}

// TestStrictModeParallel: Strict still fails the run when a message targets
// a nonexistent vertex under parallel delivery.
func TestStrictModeParallel(t *testing.T) {
	g := NewGraph[int, int](Config{Workers: 4, Parallel: true, Strict: true})
	for i := 0; i < 16; i++ {
		g.AddVertex(VertexID(i), 0)
	}
	_, err := g.Run(func(ctx *Context[int], id VertexID, val *int, msgs []int) {
		if ctx.Superstep() == 0 && id == 3 {
			ctx.Send(9999, 1)
		}
		ctx.VoteToHalt()
	})
	if err == nil {
		t.Fatal("expected strict-mode error for message to nonexistent vertex")
	}
}

// TestMessageOrderMatchesDeliveryContract pins the engine's documented inbox
// order: messages arrive grouped by source worker (ascending), then in
// emission order within the source. A permutation-heavy sender exercises the
// counting-sort placement.
func TestMessageOrderMatchesDeliveryContract(t *testing.T) {
	const n = 120
	r := rand.New(rand.NewSource(7))
	plan := make([][]VertexID, n) // sender -> destinations, in emission order
	for i := range plan {
		k := r.Intn(6)
		for j := 0; j < k; j++ {
			plan[i] = append(plan[i], VertexID(r.Intn(n)))
		}
	}
	for _, workers := range []int{1, 3, 8} {
		for _, parallel := range []bool{false, true} {
			g := NewGraph[[]int64, int64](Config{Workers: workers, Parallel: parallel})
			for i := 0; i < n; i++ {
				g.AddVertex(VertexID(i), nil)
			}
			_, err := g.Run(func(ctx *Context[int64], id VertexID, val *[]int64, msgs []int64) {
				if ctx.Superstep() == 0 {
					for seq, dst := range plan[id] {
						ctx.Send(dst, int64(id)<<16|int64(seq))
					}
					ctx.VoteToHalt()
					return
				}
				*val = append([]int64(nil), msgs...)
				ctx.VoteToHalt()
			})
			if err != nil {
				t.Fatal(err)
			}
			g.ForEach(func(id VertexID, val *[]int64) {
				// Expected: for each source worker in ascending order, that
				// worker's senders in ascending vertex order, each sender's
				// messages in emission order.
				var want []int64
				for w := 0; w < workers; w++ {
					for src := 0; src < n; src++ {
						if g.WorkerOf(VertexID(src)) != w {
							continue
						}
						for seq, dst := range plan[src] {
							if dst == id {
								want = append(want, int64(src)<<16|int64(seq))
							}
						}
					}
				}
				if len(want) != len(*val) {
					t.Fatalf("workers=%d parallel=%v vertex %d: got %d msgs, want %d",
						workers, parallel, id, len(*val), len(want))
				}
				for i := range want {
					if (*val)[i] != want[i] {
						t.Fatalf("workers=%d parallel=%v vertex %d msg %d: got %x, want %x",
							workers, parallel, id, i, (*val)[i], want[i])
					}
				}
			})
		}
	}
}
