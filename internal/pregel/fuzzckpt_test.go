package pregel

import (
	"fmt"
	"reflect"
	"testing"
)

// buildFuzzedGraph turns fuzz bytes into arbitrary mid-run engine state on
// a fresh graph: vertex IDs and values, halted and removed flags, a pending
// inbox arena with a consistent offset index, and aggregator values. It
// mirrors what a checkpoint taken at a superstep barrier must capture.
func buildFuzzedGraph(data []byte, workers int) *Graph[int64, int64] {
	g := NewGraph[int64, int64](Config{Workers: workers, CheckpointEvery: 1})
	take := func(i int) byte {
		if i < len(data) {
			return data[i]
		}
		return 0
	}
	n := int(take(0))%64 + 1
	for i := 0; i < n; i++ {
		g.AddVertex(VertexID(uint64(take(i+1))*131+uint64(i)), int64(int8(take(i+2)))*1000003)
	}
	// Runs snapshot post-sortVertices state; mirror that before poking at
	// worker internals.
	g.sortVertices()
	k := n + 3
	for _, w := range g.workers {
		for i := range w.ids {
			w.active[i] = take(k)%2 == 0
			k++
			if take(k)%7 == 0 && !w.dead[i] {
				w.dead[i] = true
				w.nDead++
			}
			k++
		}
		// Pending inbox: per-vertex message counts from the fuzz bytes,
		// laid out exactly as deliverTo would.
		nv := len(w.ids)
		off := int32(0)
		for i := 0; i < nv; i++ {
			w.inOff[i] = off
			off += int32(take(k) % 5)
			k++
		}
		w.inOff[nv] = off
		w.inArena = w.inArena[:0]
		for j := int32(0); j < off; j++ {
			w.inArena = append(w.inArena, int64(int8(take(k)))*917+int64(j))
			k++
		}
	}
	g.agg.addSum("s", int64(int8(take(k))))
	g.agg.addMin("m", int64(int8(take(k+1))))
	g.agg.addOr("o", take(k+2)%2 == 0)
	g.agg.flip()
	return g
}

// workerState flattens every field a checkpoint must preserve.
func workerState(g *Graph[int64, int64]) string {
	s := ""
	for wi, w := range g.workers {
		s += fmt.Sprintf("w%d ids=%v vals=%v active=%v dead=%v ndead=%d arena=%v off=%v\n",
			wi, w.ids, w.vals, w.active, w.dead, w.nDead, w.inArena, w.inOff[:len(w.ids)+1])
	}
	s += fmt.Sprintf("agg sum=%v min=%v or=%v", g.agg.prevSumV, g.agg.prevMinV, g.agg.prevOrV)
	return s
}

// FuzzCheckpointRoundTrip asserts checkpoint encode→decode is lossless for
// arbitrary vertex/inbox/aggregator state: snapshotting a graph, trashing
// it, and restoring must reproduce every field bit-for-bit, and the restored
// graph must compute exactly like the original.
func FuzzCheckpointRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, uint8(1))
	f.Add([]byte{255, 0, 128, 7, 7, 7, 200, 13}, uint8(4))
	f.Add([]byte{}, uint8(7))
	f.Fuzz(func(t *testing.T, data []byte, workerByte uint8) {
		workers := int(workerByte)%8 + 1
		g := buildFuzzedGraph(data, workers)
		want := workerState(g)

		ck, err := g.newCkptRun("fuzz")
		if err != nil {
			t.Fatal(err)
		}
		stats := &Stats{}
		if err := g.saveCheckpoint(ck, 3, 17, stats); err != nil {
			t.Fatal(err)
		}

		// Trash the live state so the restore has to rebuild everything.
		for _, w := range g.workers {
			for i := range w.vals {
				w.vals[i] = -9
				w.active[i] = false
			}
			w.inArena = w.inArena[:0]
			for i := range w.inOff {
				w.inOff[i] = 0
			}
		}
		g.agg.reset()

		file, ok, err := ck.loadCheckpoint()
		if err != nil || !ok {
			t.Fatalf("loadCheckpoint: ok=%v err=%v", ok, err)
		}
		step, pending, err := g.restoreCheckpoint(file, stats)
		if err != nil {
			t.Fatal(err)
		}
		if step != 3 || pending != 17 {
			t.Fatalf("restored (step=%d pending=%d), want (3, 17)", step, pending)
		}
		if got := workerState(g); got != want {
			t.Fatalf("checkpoint round trip lost state:\nwant %s\ngot  %s", want, got)
		}
		// The index maps must agree with the restored ID slices.
		for wi, w := range g.workers {
			if len(w.idx) != len(w.ids) {
				t.Fatalf("worker %d: idx has %d entries for %d ids", wi, len(w.idx), len(w.ids))
			}
			for i, id := range w.ids {
				if w.idx[id] != i {
					t.Fatalf("worker %d: idx[%d]=%d, want %d", wi, id, w.idx[id], i)
				}
			}
		}
	})
}

// TestCheckpointRoundTripSeeds runs the fuzz seeds as a plain test so `go
// test` (without -fuzz) still covers the round-trip property, mirroring
// TestFuzzSeedsRunClean.
func TestCheckpointRoundTripSeeds(t *testing.T) {
	seeds := []struct {
		data    []byte
		workers uint8
	}{
		{[]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 1},
		{[]byte{255, 0, 128, 7, 7, 7, 200, 13}, 4},
		{[]byte{}, 7},
		{[]byte{42, 42, 42, 0, 0, 0, 0, 9, 9, 9, 9, 9, 1, 3, 5}, 3},
	}
	for _, s := range seeds {
		workers := int(s.workers)%8 + 1
		g := buildFuzzedGraph(s.data, workers)
		want := workerState(g)
		ck, err := g.newCkptRun("seed")
		if err != nil {
			t.Fatal(err)
		}
		stats := &Stats{}
		if err := g.saveCheckpoint(ck, 1, 0, stats); err != nil {
			t.Fatal(err)
		}
		g.agg.reset()
		for _, w := range g.workers {
			for i := range w.vals {
				w.vals[i] = 0
			}
		}
		file, ok, err := ck.loadCheckpoint()
		if err != nil || !ok {
			t.Fatalf("loadCheckpoint: ok=%v err=%v", ok, err)
		}
		if _, _, err := g.restoreCheckpoint(file, stats); err != nil {
			t.Fatal(err)
		}
		if got := workerState(g); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed round trip lost state:\nwant %s\ngot  %s", want, got)
		}
	}
}
