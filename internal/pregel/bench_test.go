package pregel

import "testing"

// BenchmarkSuperstepOverhead measures the engine's fixed per-superstep cost
// on a graph where every vertex does trivial work.
func BenchmarkSuperstepOverhead(b *testing.B) {
	g := NewGraph[int, int](Config{Workers: 4})
	const n = 10_000
	for i := 0; i < n; i++ {
		g.AddVertex(VertexID(i), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := g.Run(func(ctx *Context[int], id VertexID, val *int, msgs []int) {
			if ctx.Superstep() < 3 {
				return
			}
			ctx.VoteToHalt()
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMessageThroughput measures message routing: every vertex sends
// to a pseudo-random peer each superstep for 4 supersteps.
func BenchmarkMessageThroughput(b *testing.B) {
	const n = 10_000
	g := NewGraph[int, int](Config{Workers: 4})
	for i := 0; i < n; i++ {
		g.AddVertex(VertexID(i), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := g.Run(func(ctx *Context[int], id VertexID, val *int, msgs []int) {
			for _, m := range msgs {
				*val += m
			}
			if ctx.Superstep() >= 4 {
				ctx.VoteToHalt()
				return
			}
			ctx.Send((id*2654435761+1)%n, 1)
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(st.Messages), "msgs/op")
	}
}

// BenchmarkShuffle is the engine's shuffle-heavy regression workload: 20k
// vertices each fan out 8 messages per superstep for 6 supersteps, with and
// without goroutine-per-worker execution. Allocations per op track the
// arena reuse of the message path; msgs/s tracks end-to-end shuffle
// throughput. cmd-level tooling (bench_pregel_test.go at the repo root)
// re-runs this workload and emits BENCH_pregel.json.
func BenchmarkShuffle(b *testing.B) {
	for _, mode := range []struct {
		name              string
		parallel, overlap bool
	}{
		{"sequential", false, false},
		{"parallel", true, false},
		{"overlap", true, true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			st, msgs := runShuffleWorkload(b, mode.parallel, mode.overlap, 4)
			_ = st
			b.ReportMetric(float64(msgs)/b.Elapsed().Seconds(), "msgs/s")
		})
	}
}

// runShuffleWorkload runs the canonical shuffle benchmark job b.N times and
// returns the last run's stats plus total messages across all runs.
func runShuffleWorkload(b *testing.B, parallel, overlap bool, workers int) (*Stats, int64) {
	b.Helper()
	const (
		n      = 20_000
		fanout = 8
		steps  = 6
	)
	g := NewGraph[int64, int64](Config{Workers: workers, Parallel: parallel, Overlap: overlap})
	for i := 0; i < n; i++ {
		g.AddVertex(VertexID(i), 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var st *Stats
	var err error
	var msgs int64
	for i := 0; i < b.N; i++ {
		st, err = g.Run(func(ctx *Context[int64], id VertexID, val *int64, in []int64) {
			for _, m := range in {
				*val += m
			}
			if ctx.Superstep() >= steps {
				ctx.VoteToHalt()
				return
			}
			for j := 0; j < fanout; j++ {
				ctx.Send(VertexID((uint64(id)*2654435761+uint64(j)*40503+7)%n), int64(id)+int64(j))
			}
		})
		if err != nil {
			b.Fatal(err)
		}
		msgs += st.Messages
	}
	return st, msgs
}

// BenchmarkCheckpointCodec measures full-snapshot encode/decode through
// the v2 binary worker-section codec and the gob fallback, plus the delta
// encoder, on the synthetic partition MeasureCheckpointCodec uses — the
// engine-level counterpart of the checkpoint_throughput section in
// BENCH_pregel.json.
func BenchmarkCheckpointCodec(b *testing.B) {
	const vertices, msgsPerVertex = 50_000, 2
	w := benchWorker(vertices, msgsPerVertex)
	binBlob, err := encodeWorkerFull(w, true)
	if err != nil {
		b.Fatal(err)
	}
	gobBlob, err := encodeWorkerFull(w, false)
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("section bytes: binary %d, gob %d", len(binBlob), len(gobBlob))

	b.Run("encode-binary", func(b *testing.B) {
		b.SetBytes(int64(len(binBlob)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := encodeWorkerFull(w, true); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encode-gob", func(b *testing.B) {
		b.SetBytes(int64(len(gobBlob)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := encodeWorkerFull(w, false); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode-binary", func(b *testing.B) {
		b.SetBytes(int64(len(binBlob)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := decodeWorkerSection[int64, int64](binBlob); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode-gob", func(b *testing.B) {
		b.SetBytes(int64(len(gobBlob)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := decodeWorkerSection[int64, int64](gobBlob); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encode-delta", func(b *testing.B) {
		w.dirty = make([]bool, vertices)
		for i := 0; i < vertices; i += 20 {
			w.dirty[i] = true
		}
		delta := encodeWorkerDelta(w)
		b.SetBytes(int64(len(delta)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			encodeWorkerDelta(w)
		}
	})
}

// BenchmarkMapReduceShuffle measures the mini-MapReduce over 100k pairs.
func BenchmarkMapReduceShuffle(b *testing.B) {
	const n = 100_000
	items := make([]uint64, n)
	for i := range items {
		items[i] = uint64(i % 997)
	}
	shards := ShardSlice(items, 4)
	clock := NewSimClock(DefaultCost())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _ := MapReduce(
			clock, 4, 8, shards,
			func(w int, item uint64, emit func(uint64, uint64)) { emit(item, 1) },
			Uint64Hash,
			func(a, c uint64) bool { return a < c },
			func(w int, key uint64, vals []uint64, emit func(uint64)) { emit(uint64(len(vals))) },
		)
		if len(Flatten(out)) != 997 {
			b.Fatal("wrong group count")
		}
	}
}

// BenchmarkCombinerWin shows the traffic reduction from a sum combiner on
// an all-to-one pattern.
func BenchmarkCombinerWin(b *testing.B) {
	for _, combine := range []bool{false, true} {
		name := "plain"
		if combine {
			name = "combined"
		}
		b.Run(name, func(b *testing.B) {
			const n = 20_000
			g := NewGraph[int, int](Config{Workers: 4})
			if combine {
				g.SetCombiner(func(a, c int) int { return a + c })
			}
			for i := 0; i < n; i++ {
				g.AddVertex(VertexID(i), 0)
			}
			b.ResetTimer()
			var msgs int64
			for i := 0; i < b.N; i++ {
				st, err := g.Run(func(ctx *Context[int], id VertexID, val *int, msgs []int) {
					if ctx.Superstep() == 0 {
						ctx.Send(0, 1)
					}
					ctx.VoteToHalt()
				})
				if err != nil {
					b.Fatal(err)
				}
				msgs += st.Messages
			}
			b.ReportMetric(float64(msgs)/float64(b.N), "msgs/op")
		})
	}
}
