package pregel

import "math/bits"

// Partitioner decides which logical worker owns each vertex. It is the
// engine's pluggable placement layer: every routing decision — AddVertex,
// message delivery lanes, Value/SetValue lookups, Convert re-sharding —
// goes through Graph.WorkerOf, which delegates here. On Pregel+ (the
// backend the paper builds on) communication dominates compute, so the
// placement strategy directly controls how much traffic crosses the
// simulated wire versus staying intra-machine (see CostModel's two network
// tiers).
//
// Implementations must be deterministic, safe for concurrent use (Assign is
// called from one goroutine per worker in Parallel mode), and stable for
// the duration of a run: the engine snapshots nothing about placement
// between supersteps, so an Assign that changes mid-run would strand
// vertices. Re-placement between runs (as the assembler's label-affinity
// partitioner does between pipeline stages) is fine for freshly built
// graphs; an existing graph keeps the placement it was constructed with.
//
// Checkpoints record the partitioner's Name, and Resume rejects a mismatch:
// partition snapshots are per-worker, so restoring them under a different
// placement would silently scatter partition-local state.
type Partitioner interface {
	// Name identifies the strategy; it is persisted in checkpoint headers
	// and surfaced by CLIs.
	Name() string
	// Assign returns the worker in [0, workers) that owns id.
	Assign(id VertexID, workers int) int
}

// HashPartitioner is the engine's historical default: SplitMix64-mix the ID
// and take it modulo the worker count. Placement is uniform and oblivious —
// adjacent vertices land on unrelated workers, so for W workers an expected
// (W-1)/W of all messages cross the wire.
type HashPartitioner struct{}

// Name implements Partitioner.
func (HashPartitioner) Name() string { return "hash" }

// Assign implements Partitioner.
func (HashPartitioner) Assign(id VertexID, workers int) int {
	return int(hashID(id) % uint64(workers))
}

// RangePartitioner splits a Bits-bit ID space into workers contiguous,
// equal-width spans: worker = floor(id · workers / 2^Bits). The assembler
// uses it over the 2-bit-packed k-mer encoding (Bits = 2k), where the ID
// order is the lexicographic order of the k-mer sequences, so one worker
// owns one contiguous slice of k-mer space. IDs outside the declared space —
// for the assembler: contig and NULL IDs, which carry bit 63 — fall back to
// hash placement, so the partitioner stays total over arbitrary ID schemes.
type RangePartitioner struct {
	// Bits is the width of the ranged ID space; IDs >= 1<<Bits fall back
	// to hash placement. Zero (or > 63) disables ranging entirely.
	Bits uint
}

// Name implements Partitioner.
func (p RangePartitioner) Name() string { return "range" }

// Assign implements Partitioner.
func (p RangePartitioner) Assign(id VertexID, workers int) int {
	if p.Bits == 0 || p.Bits > 63 || uint64(id)>>p.Bits != 0 {
		return int(hashID(id) % uint64(workers))
	}
	// floor(id * workers / 2^Bits) via the 128-bit product, so Bits up to
	// 63 cannot overflow. id < 2^Bits ensures the result is < workers.
	hi, lo := bits.Mul64(uint64(id), uint64(workers))
	return int(hi<<(64-p.Bits) | lo>>p.Bits)
}

// TablePartitioner overrides the placement of an explicit vertex set and
// delegates everything else to a base partitioner. It is the substrate for
// learned placements such as the assembler's label-affinity strategy, which
// re-places contig vertices next to their graph neighborhood after merging.
//
// The table is bound to the worker count it was built for; under any other
// worker count every ID falls back to Base, so a stale table can misplace
// nothing. Mutate the table only between runs (Install/Reset), never while
// a run is executing.
type TablePartitioner struct {
	// Label is the Name() of this placement (e.g. "affinity").
	Label string
	// Base places every ID the table does not cover. Nil means hash.
	Base Partitioner

	table   map[VertexID]int
	workers int
}

// NewTablePartitioner returns an empty table over base (nil base = hash).
func NewTablePartitioner(label string, base Partitioner) *TablePartitioner {
	if base == nil {
		base = HashPartitioner{}
	}
	return &TablePartitioner{Label: label, Base: base}
}

// Name implements Partitioner.
func (p *TablePartitioner) Name() string { return p.Label }

// Assign implements Partitioner.
func (p *TablePartitioner) Assign(id VertexID, workers int) int {
	if p.workers == workers {
		if w, ok := p.table[id]; ok {
			return w
		}
	}
	if p.Base == nil {
		return HashPartitioner{}.Assign(id, workers)
	}
	return p.Base.Assign(id, workers)
}

// Install replaces the table wholesale with entries valid for the given
// worker count. Entries must be in [0, workers); out-of-range entries are
// dropped rather than corrupting delivery.
func (p *TablePartitioner) Install(entries map[VertexID]int, workers int) {
	t := make(map[VertexID]int, len(entries))
	for id, w := range entries {
		if w >= 0 && w < workers {
			t[id] = w
		}
	}
	p.table, p.workers = t, workers
}

// Reset drops every table entry, reverting to pure base placement.
func (p *TablePartitioner) Reset() { p.table, p.workers = nil, 0 }

// Len reports the number of installed overrides.
func (p *TablePartitioner) Len() int { return len(p.table) }
