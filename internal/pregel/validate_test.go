package pregel

import (
	"strings"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	good := Config{Workers: 4}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		cfg  Config
		want string
	}{
		{Config{}, "Workers"},
		{Config{Workers: -2}, "Workers"},
		{Config{Workers: 1, MessageBytes: -1}, "MessageBytes"},
		{Config{Workers: 1, MaxSupersteps: -1}, "MaxSupersteps"},
		{Config{Workers: 1, CheckpointEvery: -5}, "CheckpointEvery"},
		{Config{Workers: 1, Resume: true}, "Resume"},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if err == nil {
			t.Errorf("config %+v accepted", c.cfg)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("config %+v: error %q does not mention %s", c.cfg, err, c.want)
		}
	}
}

func TestMRConfigValidate(t *testing.T) {
	if err := (MRConfig{Workers: 2}).Validate(); err != nil {
		t.Fatalf("valid MR config rejected: %v", err)
	}
	if err := (MRConfig{}).Validate(); err == nil || !strings.Contains(err.Error(), "Workers") {
		t.Errorf("zero-worker MR config: %v", err)
	}
	if err := (MRConfig{Workers: 1, PairBytes: -8}).Validate(); err == nil || !strings.Contains(err.Error(), "PairBytes") {
		t.Errorf("negative PairBytes MR config: %v", err)
	}
}

// collidingStore is a Checkpointer whose NextJob ignores the reservation
// sequence — the kind of custom-store bug the duplicate-key guard exists
// for. Embedding MemCheckpointer gives it checkpoint storage plus the
// jobTracker hook the engine consults.
type collidingStore struct {
	*MemCheckpointer
}

func (s collidingStore) NextJob(name string) string { return "stuck-key" }

// TestDuplicateJobKeyFailsLoudly: two jobs reserving the same checkpoint
// key in one run must fail the second run instead of silently overwriting
// the first job's checkpoints (which would corrupt Resume).
func TestDuplicateJobKeyFailsLoudly(t *testing.T) {
	store := collidingStore{NewMemCheckpointer()}
	cfg := Config{Workers: 2, CheckpointEvery: 1, Checkpointer: store}
	noop := func(ctx *Context[int], id VertexID, v *int, msgs []int) { ctx.VoteToHalt() }

	g1 := NewGraph[int, int](cfg)
	g1.AddVertex(1, 0)
	if _, err := g1.Run(noop, WithName("first")); err != nil {
		t.Fatalf("first job: %v", err)
	}

	g2 := NewGraph[int, int](cfg)
	g2.AddVertex(2, 0)
	_, err := g2.Run(noop, WithName("second"))
	if err == nil {
		t.Fatal("second job reserved the same key and ran anyway")
	}
	if !strings.Contains(err.Error(), "stuck-key") || !strings.Contains(err.Error(), "reserved twice") {
		t.Errorf("error %q does not describe the duplicate key", err)
	}
}

// TestUniqueJobKeysAccepted: the built-in stores' seq-suffixed keys never
// collide, including many runs named identically on one shared store.
func TestUniqueJobKeysAccepted(t *testing.T) {
	store := NewMemCheckpointer()
	cfg := Config{Workers: 2, CheckpointEvery: 1, Checkpointer: store}
	noop := func(ctx *Context[int], id VertexID, v *int, msgs []int) { ctx.VoteToHalt() }
	for i := 0; i < 5; i++ {
		g := NewGraph[int, int](cfg)
		g.AddVertex(VertexID(i+1), 0)
		if _, err := g.Run(noop, WithName("same-name")); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
}

// TestJobPrefixInKeys: Config.JobPrefix lands in the reserved job keys, so
// workflow ops get self-describing, deterministic checkpoint names.
func TestJobPrefixInKeys(t *testing.T) {
	store := NewMemCheckpointer()
	cfg := Config{Workers: 1, CheckpointEvery: 1, Checkpointer: store, JobPrefix: "s03.tiptrim."}
	g := NewGraph[int, int](cfg)
	g.AddVertex(7, 0)
	noop := func(ctx *Context[int], id VertexID, v *int, msgs []int) { ctx.VoteToHalt() }
	if _, err := g.Run(noop, WithName("remove-tips")); err != nil {
		t.Fatal(err)
	}
	store.mu.Lock()
	defer store.mu.Unlock()
	for job := range store.data {
		if !strings.HasPrefix(job, "s03.tiptrim.remove-tips@") {
			t.Errorf("job key %q does not carry the sanitized prefix", job)
		}
	}
	if len(store.data) == 0 {
		t.Fatal("no checkpoint saved")
	}
}
