package pregel

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// TestSingleSuperstepHalt: vertices that halt immediately terminate the job
// after one superstep.
func TestSingleSuperstepHalt(t *testing.T) {
	g := NewGraph[int, int](Config{Workers: 4})
	for i := 0; i < 100; i++ {
		g.AddVertex(VertexID(i), i)
	}
	calls := 0
	st, err := g.Run(func(ctx *Context[int], id VertexID, val *int, msgs []int) {
		calls++
		ctx.VoteToHalt()
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 100 {
		t.Errorf("compute called %d times, want 100", calls)
	}
	if st.Supersteps != 1 {
		t.Errorf("supersteps = %d, want 1", st.Supersteps)
	}
}

// TestMessageReactivation: a halted vertex is reactivated by a message.
func TestMessageReactivation(t *testing.T) {
	g := NewGraph[int, int](Config{Workers: 3})
	g.AddVertex(1, 0)
	g.AddVertex(2, 0)
	_, err := g.Run(func(ctx *Context[int], id VertexID, val *int, msgs []int) {
		switch ctx.Superstep() {
		case 0:
			if id == 1 {
				ctx.Send(2, 41)
			}
			ctx.VoteToHalt()
		default:
			for _, m := range msgs {
				*val += m + 1
			}
			ctx.VoteToHalt()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	v, _ := g.Value(2)
	if v != 42 {
		t.Errorf("vertex 2 value = %d, want 42", v)
	}
	v1, _ := g.Value(1)
	if v1 != 0 {
		t.Errorf("vertex 1 value = %d, want 0 (never received)", v1)
	}
}

// TestPropagationChain: a token forwarded along a chain takes exactly
// chain-length supersteps and every hop counts one message.
func TestPropagationChain(t *testing.T) {
	const n = 50
	g := NewGraph[bool, struct{}](Config{Workers: 4})
	for i := 0; i < n; i++ {
		g.AddVertex(VertexID(i), false)
	}
	st, err := g.Run(func(ctx *Context[struct{}], id VertexID, val *bool, msgs []struct{}) {
		if ctx.Superstep() == 0 {
			if id == 0 {
				*val = true
				ctx.Send(1, struct{}{})
			}
			ctx.VoteToHalt()
			return
		}
		if len(msgs) > 0 {
			*val = true
			if id+1 < n {
				ctx.Send(id+1, struct{}{})
			}
		}
		ctx.VoteToHalt()
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Messages != n-1 {
		t.Errorf("messages = %d, want %d", st.Messages, n-1)
	}
	if st.Supersteps != n {
		t.Errorf("supersteps = %d, want %d", st.Supersteps, n)
	}
	g.ForEach(func(id VertexID, val *bool) {
		if !*val {
			t.Errorf("vertex %d never reached", id)
		}
	})
}

func TestStrictModeRejectsUnknownDestination(t *testing.T) {
	g := NewGraph[int, int](Config{Workers: 2, Strict: true})
	g.AddVertex(1, 0)
	_, err := g.Run(func(ctx *Context[int], id VertexID, val *int, msgs []int) {
		if ctx.Superstep() == 0 {
			ctx.Send(999, 1)
		}
		ctx.VoteToHalt()
	})
	if err == nil {
		t.Fatal("expected error for message to nonexistent vertex")
	}
}

func TestNonStrictCountsDropped(t *testing.T) {
	g := NewGraph[int, int](Config{Workers: 2})
	g.AddVertex(1, 0)
	st, err := g.Run(func(ctx *Context[int], id VertexID, val *int, msgs []int) {
		if ctx.Superstep() == 0 {
			ctx.Send(999, 1)
		}
		ctx.VoteToHalt()
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.DroppedMessages != 1 {
		t.Errorf("dropped = %d, want 1", st.DroppedMessages)
	}
}

func TestMaxSuperstepsGuard(t *testing.T) {
	g := NewGraph[int, int](Config{Workers: 1, MaxSupersteps: 5})
	g.AddVertex(1, 0)
	g.AddVertex(2, 0)
	_, err := g.Run(func(ctx *Context[int], id VertexID, val *int, msgs []int) {
		ctx.Send(3-id, 1) // ping-pong forever
	})
	if err == nil {
		t.Fatal("expected superstep-limit error")
	}
}

func TestRemoveSelf(t *testing.T) {
	g := NewGraph[int, int](Config{Workers: 3})
	for i := 1; i <= 10; i++ {
		g.AddVertex(VertexID(i), i)
	}
	_, err := g.Run(func(ctx *Context[int], id VertexID, val *int, msgs []int) {
		if id%2 == 0 {
			ctx.RemoveSelf()
			return
		}
		ctx.VoteToHalt()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.VertexCount(); got != 5 {
		t.Errorf("VertexCount = %d, want 5", got)
	}
	if _, ok := g.Value(4); ok {
		t.Error("vertex 4 still present after RemoveSelf")
	}
	if _, ok := g.Value(5); !ok {
		t.Error("vertex 5 missing")
	}
}

func TestAggregatorsVisibleNextSuperstep(t *testing.T) {
	g := NewGraph[int64, int](Config{Workers: 2})
	for i := 1; i <= 10; i++ {
		g.AddVertex(VertexID(i), 0)
	}
	_, err := g.Run(func(ctx *Context[int], id VertexID, val *int64, msgs []int) {
		switch ctx.Superstep() {
		case 0:
			ctx.AggSum("total", int64(id))
			ctx.AggMin("min", int64(id))
			ctx.AggOr("any7", id == 7)
		case 1:
			*val = ctx.PrevAggSum("total")
			if mn, ok := ctx.PrevAggMin("min"); !ok || mn != 1 {
				*val = -1
			}
			if !ctx.PrevAggOr("any7") {
				*val = -2
			}
			ctx.VoteToHalt()
			return
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	g.ForEach(func(id VertexID, val *int64) {
		if *val != 55 {
			t.Errorf("vertex %d saw aggregate %d, want 55", id, *val)
		}
	})
}

func TestAddVertexReplacesAndRevives(t *testing.T) {
	g := NewGraph[int, int](Config{Workers: 2})
	g.AddVertex(7, 1)
	g.AddVertex(7, 2)
	if g.VertexCount() != 1 {
		t.Fatalf("VertexCount = %d, want 1", g.VertexCount())
	}
	if v, _ := g.Value(7); v != 2 {
		t.Errorf("value = %d, want 2", v)
	}
	g.RemoveVertex(7)
	if g.VertexCount() != 0 {
		t.Fatalf("VertexCount after remove = %d", g.VertexCount())
	}
	g.AddVertex(7, 3)
	if v, ok := g.Value(7); !ok || v != 3 {
		t.Errorf("revived value = %d,%v, want 3,true", v, ok)
	}
}

func TestSetValue(t *testing.T) {
	g := NewGraph[string, int](Config{Workers: 2})
	g.AddVertex(1, "a")
	if !g.SetValue(1, "b") {
		t.Error("SetValue on existing vertex returned false")
	}
	if g.SetValue(2, "c") {
		t.Error("SetValue on missing vertex returned true")
	}
	if v, _ := g.Value(1); v != "b" {
		t.Errorf("value = %q", v)
	}
}

// TestDeterminismAcrossWorkerCounts: the same vertex-sum computation yields
// identical results for any worker count, and repeated runs are identical.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) map[VertexID]int {
		g := NewGraph[int, int](Config{Workers: workers})
		r := rand.New(rand.NewSource(1))
		const n = 200
		edges := make(map[VertexID][]VertexID)
		for i := 0; i < n; i++ {
			g.AddVertex(VertexID(i), 0)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < 3; j++ {
				edges[VertexID(i)] = append(edges[VertexID(i)], VertexID(r.Intn(n)))
			}
		}
		_, err := g.Run(func(ctx *Context[int], id VertexID, val *int, msgs []int) {
			if ctx.Superstep() == 0 {
				for _, d := range edges[id] {
					ctx.Send(d, int(id))
				}
				ctx.VoteToHalt()
				return
			}
			for _, m := range msgs {
				*val += m
			}
			ctx.VoteToHalt()
		})
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[VertexID]int)
		g.ForEach(func(id VertexID, val *int) { out[id] = *val })
		return out
	}
	base := run(1)
	for _, w := range []int{2, 3, 8, 16} {
		got := run(w)
		for id, v := range base {
			if got[id] != v {
				t.Fatalf("workers=%d vertex %d: got %d want %d", w, id, got[id], v)
			}
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	build := func(parallel bool) map[VertexID]int {
		g := NewGraph[int, int](Config{Workers: 4, Parallel: parallel})
		const n = 300
		for i := 0; i < n; i++ {
			g.AddVertex(VertexID(i), 0)
		}
		_, err := g.Run(func(ctx *Context[int], id VertexID, val *int, msgs []int) {
			if ctx.Superstep() == 0 {
				ctx.Send((id*7+3)%n, int(id))
				ctx.AggSum("x", 1)
				ctx.VoteToHalt()
				return
			}
			for _, m := range msgs {
				*val += m + int(ctx.PrevAggSum("x"))
			}
			ctx.VoteToHalt()
		})
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[VertexID]int)
		g.ForEach(func(id VertexID, val *int) { out[id] = *val })
		return out
	}
	seq, par := build(false), build(true)
	for id, v := range seq {
		if par[id] != v {
			t.Fatalf("vertex %d: parallel %d != sequential %d", id, par[id], v)
		}
	}
}

func TestForEachWorkerConsistentWithWorkerOf(t *testing.T) {
	g := NewGraph[int, int](Config{Workers: 5})
	for i := 0; i < 100; i++ {
		g.AddVertex(VertexID(i*31), 0)
	}
	g.ForEachWorker(func(w int, id VertexID, _ *int) {
		if g.WorkerOf(id) != w {
			t.Errorf("vertex %d reported on worker %d but WorkerOf says %d", id, w, g.WorkerOf(id))
		}
	})
}

func TestPropVertexStoreSetGet(t *testing.T) {
	// Random add/remove/set sequences keep Value/VertexCount consistent
	// with a reference map.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := NewGraph[int, int](Config{Workers: 1 + r.Intn(6)})
		ref := map[VertexID]int{}
		for op := 0; op < 300; op++ {
			id := VertexID(r.Intn(40))
			switch r.Intn(3) {
			case 0:
				v := r.Int()
				g.AddVertex(id, v)
				ref[id] = v
			case 1:
				g.RemoveVertex(id)
				delete(ref, id)
			case 2:
				got, ok := g.Value(id)
				want, wok := ref[id]
				if ok != wok || (ok && got != want) {
					return false
				}
			}
		}
		return g.VertexCount() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHashIDSpreads(t *testing.T) {
	// Structured contig-style IDs (high bit set, low ordinal counter) must
	// still spread across workers.
	const workers = 8
	counts := make([]int, workers)
	for j := 1; j <= 8000; j++ {
		id := VertexID(1)<<63 | VertexID(j)
		counts[int(hashID(id)%workers)]++
	}
	for w, c := range counts {
		if c < 500 || c > 1500 {
			t.Errorf("worker %d got %d of 8000 structured IDs", w, c)
		}
	}
}

func TestSimClockCharges(t *testing.T) {
	c := NewSimClock(CostModel{SuperstepLatency: 0, BytesPerSecond: 1e6, ComputeScale: 1})
	c.ChargeSuperstep([]float64{5e8, 2e8}, []float64{1e6, 0}) // 0.5s compute + 1s transfer
	if got := c.Seconds(); got < 1.49 || got > 1.51 {
		t.Errorf("Seconds = %v, want ~1.5", got)
	}
	c.Reset()
	if c.Seconds() != 0 {
		t.Error("Reset did not zero the clock")
	}
	c.ChargeSerial(2e9)
	c.ChargeTransfer(1e6)
	if got := c.Seconds(); got < 2.99 || got > 3.01 {
		t.Errorf("Seconds = %v, want ~3", got)
	}
}

func TestStatsAdd(t *testing.T) {
	a := &Stats{Supersteps: 2, Messages: 10, Bytes: 100, SimSeconds: 1}
	b := &Stats{Supersteps: 3, Messages: 5, Bytes: 50, SimSeconds: 4}
	a.Add(b)
	if a.Supersteps != 5 || a.Messages != 15 || a.Bytes != 150 || a.SimSeconds != 4 {
		t.Errorf("Add result = %+v", a)
	}
}

func ExampleGraph_Run() {
	// Count each vertex's in-degree in a tiny ring.
	g := NewGraph[int, struct{}](Config{Workers: 2})
	for i := 0; i < 4; i++ {
		g.AddVertex(VertexID(i), 0)
	}
	_, _ = g.Run(func(ctx *Context[struct{}], id VertexID, val *int, msgs []struct{}) {
		if ctx.Superstep() == 0 {
			ctx.Send((id+1)%4, struct{}{})
			ctx.VoteToHalt()
			return
		}
		*val = len(msgs)
		ctx.VoteToHalt()
	})
	var ids []int
	g.ForEach(func(id VertexID, val *int) { ids = append(ids, *val) })
	sort.Ints(ids)
	fmt.Println(ids)
	// Output: [1 1 1 1]
}
