package pregel

import "sort"

// RequestRespond implements the request-respond API of Pregel+ that the
// paper's §II cites as the solution to workload skew: many vertices need an
// attribute of the same (possibly very high degree) target vertex; instead
// of each sending its own request — flooding the target with O(d) messages
// — every worker deduplicates its vertices' requests per target, the target
// answers each *worker* once, and the worker-local cache serves all of its
// requesters.
//
// One call runs a complete exchange as its own three-superstep job:
//
//	superstep 0: every vertex lists its targets (want); per-worker dedup
//	superstep 1: each target answers each requesting worker once
//	superstep 2: apply delivers the worker-cached answers to each vertex
//
// R is the response type derived from the target's value by answer. The
// returned stats show the deduplicated message counts (compare with
// vertex-level fan-in to see the skew win; see the package tests).
func RequestRespond[V, M, R any](
	g *Graph[V, M],
	want func(id VertexID, val *V) []VertexID,
	answer func(id VertexID, val *V) R,
	apply func(id VertexID, val *V, get func(VertexID) (R, bool)),
) (*Stats, error) {
	workers := g.cfg.Workers
	// Phase A (local, "superstep 0"): collect and deduplicate requests per
	// worker. This happens outside a vertex program because the engine's
	// message API is vertex-to-vertex; the dedup tables are worker state,
	// exactly as in Pregel+.
	requests := make([]map[VertexID]bool, workers)
	for w := range requests {
		requests[w] = map[VertexID]bool{}
	}
	computeNs := make([]float64, workers)
	g.ForEachWorker(func(w int, id VertexID, val *V) {
		start := nowNs()
		for _, t := range want(id, val) {
			requests[w][t] = true
		}
		computeNs[w] += float64(nowNs() - start)
	})
	// Requests to a target owned by the requesting worker itself stay
	// intra-machine; only cross-worker requests (and their responses) pay
	// the wire, mirroring the engine's two-tier network charge.
	reqCount, reqLocal := int64(0), int64(0)
	bytesOut := make([]float64, workers)
	localOut := make([]float64, workers)
	localReqs := make([]int64, workers)
	for w := range requests {
		reqCount += int64(len(requests[w]))
		for t := range requests[w] {
			if g.WorkerOf(t) == w {
				localReqs[w]++
			}
		}
		reqLocal += localReqs[w]
		bytesOut[w] = float64(int64(len(requests[w]))-localReqs[w]) * float64(g.cfg.MessageBytes)
		localOut[w] = float64(localReqs[w]) * float64(g.cfg.MessageBytes)
	}
	g.clock.ChargeSuperstepTiered(computeNs, bytesOut, localOut)

	// Phase B ("superstep 1"): resolve each deduplicated request against
	// the target's value and build per-worker caches.
	caches := make([]map[VertexID]R, workers)
	respNs := make([]float64, workers)
	answeredLocal := make([]int64, workers)
	dropped := int64(0)
	for w := range requests {
		caches[w] = make(map[VertexID]R, len(requests[w]))
		targets := make([]VertexID, 0, len(requests[w]))
		for t := range requests[w] {
			targets = append(targets, t)
		}
		sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
		start := nowNs()
		for _, t := range targets {
			val, ok := g.Value(t)
			if !ok {
				dropped++
				continue
			}
			caches[w][t] = answer(t, &val)
			if g.WorkerOf(t) == w {
				answeredLocal[w]++
			}
		}
		respNs[w] = float64(nowNs() - start)
	}
	respBytes := make([]float64, workers)
	respLocal := make([]float64, workers)
	for w := range caches {
		respBytes[w] = float64(int64(len(caches[w]))-answeredLocal[w]) * float64(g.cfg.MessageBytes)
		respLocal[w] = float64(answeredLocal[w]) * float64(g.cfg.MessageBytes)
	}
	g.clock.ChargeSuperstepTiered(respNs, respBytes, respLocal)

	// Phase C ("superstep 2"): every vertex reads the worker cache.
	applyNs := make([]float64, workers)
	g.ForEachWorker(func(w int, id VertexID, val *V) {
		start := nowNs()
		apply(id, val, func(t VertexID) (R, bool) {
			r, ok := caches[w][t]
			return r, ok
		})
		applyNs[w] += float64(nowNs() - start)
	})
	g.clock.ChargeSuperstep(applyNs, make([]float64, workers))

	local := reqLocal
	for _, n := range answeredLocal {
		local += n
	}
	g.clock.CountMessages(local, 2*reqCount-local)
	return &Stats{
		Name:            "request-respond",
		Workers:         workers,
		Supersteps:      3,
		Messages:        2 * reqCount,
		LocalMessages:   local,
		RemoteMessages:  2*reqCount - local,
		Bytes:           2 * reqCount * int64(g.cfg.MessageBytes),
		DroppedMessages: dropped,
		SimSeconds:      g.clock.Seconds(),
	}, nil
}
