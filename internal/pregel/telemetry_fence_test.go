package pregel

import (
	"testing"

	"ppaassembler/internal/telemetry"
)

// TestShuffleAllocRegressionFence locks the telemetry contract on the
// shuffle hot path: with tracing and metrics disabled (the default nil
// Tracer/Registry), the canonical BenchmarkShuffle workload must stay at its
// pre-telemetry allocation level. Every emission site in the engine is
// guarded by a nil check before any Event or arg slice is built, so
// disabled telemetry must add zero allocs/op; the ceiling below is the
// seed's steady-state figure (~150 allocs/op from arena bookkeeping) with
// generous headroom so unrelated noise does not flake the fence.
func TestShuffleAllocRegressionFence(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark fence is slow")
	}
	res := testing.Benchmark(func(b *testing.B) {
		runShuffleWorkload(b, false, false, 4)
	})
	if allocs := res.AllocsPerOp(); allocs > 2000 {
		t.Errorf("shuffle workload with telemetry disabled allocates %d allocs/op, fence is 2000 — a hot-path emission site is missing its nil guard", allocs)
	}
}

// TestShuffleTracedStillBounded is the companion sanity check: with a live
// tracer and registry attached, the same workload emits only per-superstep
// (coordinator-side) events, so allocations must grow by a bounded constant
// per superstep — not per message.
func TestShuffleTracedStillBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark fence is slow")
	}
	res := testing.Benchmark(func(b *testing.B) {
		const n = 20_000
		rec := telemetry.NewRecorder()
		g := NewGraph[int64, int64](Config{
			Workers: 4, Tracer: rec, Metrics: telemetry.NewRegistry(),
		})
		for i := 0; i < n; i++ {
			g.AddVertex(VertexID(i), 0)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec.Reset()
			_, err := g.Run(func(ctx *Context[int64], id VertexID, val *int64, in []int64) {
				if ctx.Superstep() >= 6 {
					ctx.VoteToHalt()
					return
				}
				for j := 0; j < 8; j++ {
					ctx.Send(VertexID((uint64(id)*2654435761+uint64(j)*40503+7)%n), int64(id))
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	// ~960k messages/op flow through the shuffle; tracing them per-message
	// would add six figures of allocations. Per-superstep emission stays in
	// the hundreds.
	if allocs := res.AllocsPerOp(); allocs > 5000 {
		t.Errorf("traced shuffle workload allocates %d allocs/op — emission has leaked into the per-message path", allocs)
	}
}
