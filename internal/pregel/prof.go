package pregel

import (
	"context"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
)

// profLabelsOn gates runtime/pprof labels on engine goroutines. Off by
// default: attaching labels allocates a label set per phase, which would
// show up in the engine's allocation fences. CLIs that write CPU/heap
// profiles flip it on so samples segment by job, phase and worker.
var profLabelsOn atomic.Bool

// EnableProfLabels toggles pprof labels (job name, superstep phase, worker
// id) on the engine's compute, delivery, checkpoint and MapReduce
// goroutines. ppa-assembler enables it whenever -cpuprofile or -memprofile
// is set, so `go tool pprof -tagfocus phase=compute` isolates one phase.
func EnableProfLabels(on bool) { profLabelsOn.Store(on) }

// ProfLabelsEnabled reports whether labels are currently attached.
func ProfLabelsEnabled() bool { return profLabelsOn.Load() }

// forEachWorkerProf is forEachWorker plus pprof labels when enabled: the
// disabled path is a single atomic load in front of the plain loop, so
// engine phases stay allocation-free. In parallel mode each worker
// goroutine gets its own label set including its worker id.
func forEachWorkerProf(workers int, parallel bool, job, phase string, fn func(w int)) {
	if !profLabelsOn.Load() {
		forEachWorker(workers, parallel, fn)
		return
	}
	if job == "" {
		job = "run"
	}
	if !parallel || workers <= 1 {
		pprof.Do(context.Background(), pprof.Labels("job", job, "phase", phase), func(context.Context) {
			for w := 0; w < workers; w++ {
				fn(w)
			}
		})
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pprof.Do(context.Background(),
				pprof.Labels("job", job, "phase", phase, "worker", strconv.Itoa(w)),
				func(context.Context) { fn(w) })
		}(w)
	}
	wg.Wait()
}
