package pregel

import "testing"

func TestCombinerReducesMessages(t *testing.T) {
	// 100 vertices each send 1 to vertex 0: without a combiner that is 100
	// messages; with a sum combiner at most one per worker.
	run := func(combine bool) (int64, int) {
		g := NewGraph[int, int](Config{Workers: 4})
		if combine {
			g.SetCombiner(func(a, b int) int { return a + b })
		}
		for i := 0; i < 100; i++ {
			g.AddVertex(VertexID(i), 0)
		}
		st, err := g.Run(func(ctx *Context[int], id VertexID, val *int, msgs []int) {
			if ctx.Superstep() == 0 {
				ctx.Send(0, 1)
				ctx.VoteToHalt()
				return
			}
			for _, m := range msgs {
				*val += m
			}
			ctx.VoteToHalt()
		})
		if err != nil {
			t.Fatal(err)
		}
		v, _ := g.Value(0)
		return st.Messages, v
	}
	plainMsgs, plainSum := run(false)
	combMsgs, combSum := run(true)
	if plainSum != 100 || combSum != 100 {
		t.Errorf("sums = %d/%d, want 100/100", plainSum, combSum)
	}
	if plainMsgs != 100 {
		t.Errorf("uncombined messages = %d, want 100", plainMsgs)
	}
	if combMsgs > 4 {
		t.Errorf("combined messages = %d, want <= 4 (one per worker)", combMsgs)
	}
}

func TestCombinerPreservesPerDestinationIsolation(t *testing.T) {
	// Messages to different destinations must not be folded together.
	g := NewGraph[int, int](Config{Workers: 2})
	g.SetCombiner(func(a, b int) int { return a + b })
	for i := 0; i < 10; i++ {
		g.AddVertex(VertexID(i), 0)
	}
	_, err := g.Run(func(ctx *Context[int], id VertexID, val *int, msgs []int) {
		if ctx.Superstep() == 0 {
			// Everyone sends its own ID value to id/2.
			ctx.Send(id/2, int(id))
			ctx.VoteToHalt()
			return
		}
		for _, m := range msgs {
			*val += m
		}
		ctx.VoteToHalt()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Vertex d receives ids 2d and 2d+1.
	for d := VertexID(0); d < 5; d++ {
		v, _ := g.Value(d)
		want := int(2*d) + int(2*d) + 1
		if v != want {
			t.Errorf("vertex %d sum = %d, want %d", d, v, want)
		}
	}
}

func TestCombineEnvelopesOrderStable(t *testing.T) {
	envs := []envelope[int]{{dst: 5, msg: 1}, {dst: 3, msg: 10}, {dst: 5, msg: 2}, {dst: 3, msg: 20}, {dst: 9, msg: 7}}
	out := combineEnvelopes(envs, func(a, b int) int { return a + b })
	if len(out) != 3 {
		t.Fatalf("combined to %d envelopes, want 3", len(out))
	}
	if out[0].dst != 5 || out[0].msg != 3 {
		t.Errorf("out[0] = %+v", out[0])
	}
	if out[1].dst != 3 || out[1].msg != 30 {
		t.Errorf("out[1] = %+v", out[1])
	}
	if out[2].dst != 9 || out[2].msg != 7 {
		t.Errorf("out[2] = %+v", out[2])
	}
}

// TestCombinerDeterministicUnderParallel checks the engine's determinism
// guarantee with goroutine-per-worker execution: each worker's outbox is
// folded in sorted-vertex emission order and delivered in worker order, so
// even an order-sensitive fold must produce identical results run after run
// and agree with sequential execution. (API combiners must be commutative
// and associative; the order-sensitive fold here exists to catch scheduling
// races that a commutative fold would mask.)
func TestCombinerDeterministicUnderParallel(t *testing.T) {
	run := func(parallel bool) (int64, []int64) {
		g := NewGraph[int64, int64](Config{Workers: 8, Parallel: parallel})
		g.SetCombiner(func(a, b int64) int64 { return a*1000003 + b })
		for i := 0; i < 400; i++ {
			g.AddVertex(VertexID(i), 0)
		}
		st, err := g.Run(func(ctx *Context[int64], id VertexID, val *int64, msgs []int64) {
			if ctx.Superstep() == 0 {
				// Fan-in: everyone messages id%7, creating many combinable
				// destinations per worker.
				ctx.Send(id%7, int64(id)+1)
				ctx.VoteToHalt()
				return
			}
			for _, m := range msgs {
				*val = *val*31 + m // order-sensitive apply
			}
			ctx.VoteToHalt()
		})
		if err != nil {
			t.Fatal(err)
		}
		var vals []int64
		g.ForEach(func(id VertexID, v *int64) { vals = append(vals, *v) })
		return st.Messages, vals
	}

	refMsgs, refVals := run(false)
	for trial := 0; trial < 5; trial++ {
		msgs, vals := run(true)
		if msgs != refMsgs {
			t.Fatalf("trial %d: parallel messages = %d, sequential = %d", trial, msgs, refMsgs)
		}
		for i := range refVals {
			if vals[i] != refVals[i] {
				t.Fatalf("trial %d: vertex %d value %d != sequential %d", trial, i, vals[i], refVals[i])
			}
		}
	}
}
