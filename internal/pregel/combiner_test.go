package pregel

import "testing"

func TestCombinerReducesMessages(t *testing.T) {
	// 100 vertices each send 1 to vertex 0: without a combiner that is 100
	// messages; with a sum combiner at most one per worker.
	run := func(combine bool) (int64, int) {
		g := NewGraph[int, int](Config{Workers: 4})
		if combine {
			g.SetCombiner(func(a, b int) int { return a + b })
		}
		for i := 0; i < 100; i++ {
			g.AddVertex(VertexID(i), 0)
		}
		st, err := g.Run(func(ctx *Context[int], id VertexID, val *int, msgs []int) {
			if ctx.Superstep() == 0 {
				ctx.Send(0, 1)
				ctx.VoteToHalt()
				return
			}
			for _, m := range msgs {
				*val += m
			}
			ctx.VoteToHalt()
		})
		if err != nil {
			t.Fatal(err)
		}
		v, _ := g.Value(0)
		return st.Messages, v
	}
	plainMsgs, plainSum := run(false)
	combMsgs, combSum := run(true)
	if plainSum != 100 || combSum != 100 {
		t.Errorf("sums = %d/%d, want 100/100", plainSum, combSum)
	}
	if plainMsgs != 100 {
		t.Errorf("uncombined messages = %d, want 100", plainMsgs)
	}
	if combMsgs > 4 {
		t.Errorf("combined messages = %d, want <= 4 (one per worker)", combMsgs)
	}
}

func TestCombinerPreservesPerDestinationIsolation(t *testing.T) {
	// Messages to different destinations must not be folded together.
	g := NewGraph[int, int](Config{Workers: 2})
	g.SetCombiner(func(a, b int) int { return a + b })
	for i := 0; i < 10; i++ {
		g.AddVertex(VertexID(i), 0)
	}
	_, err := g.Run(func(ctx *Context[int], id VertexID, val *int, msgs []int) {
		if ctx.Superstep() == 0 {
			// Everyone sends its own ID value to id/2.
			ctx.Send(id/2, int(id))
			ctx.VoteToHalt()
			return
		}
		for _, m := range msgs {
			*val += m
		}
		ctx.VoteToHalt()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Vertex d receives ids 2d and 2d+1.
	for d := VertexID(0); d < 5; d++ {
		v, _ := g.Value(d)
		want := int(2*d) + int(2*d) + 1
		if v != want {
			t.Errorf("vertex %d sum = %d, want %d", d, v, want)
		}
	}
}

func TestCombineEnvelopesOrderStable(t *testing.T) {
	envs := []envelope[int]{{dst: 5, msg: 1}, {dst: 3, msg: 10}, {dst: 5, msg: 2}, {dst: 3, msg: 20}, {dst: 9, msg: 7}}
	out := combineEnvelopes(envs, func(a, b int) int { return a + b })
	if len(out) != 3 {
		t.Fatalf("combined to %d envelopes, want 3", len(out))
	}
	if out[0].dst != 5 || out[0].msg != 3 {
		t.Errorf("out[0] = %+v", out[0])
	}
	if out[1].dst != 3 || out[1].msg != 30 {
		t.Errorf("out[1] = %+v", out[1])
	}
	if out[2].dst != 9 || out[2].msg != 7 {
		t.Errorf("out[2] = %+v", out[2])
	}
}
