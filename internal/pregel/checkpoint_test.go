package pregel

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// tokenVal is the vertex value of the token-ring job used throughout the
// recovery tests: an accumulating counter plus the last aggregator reading.
type tokenVal struct {
	Acc int64
	Agg int64
}

// tokenCompute is a deterministic multi-superstep job with messages,
// aggregators and vote-to-halt: each vertex passes an accumulating token
// around a ring for `steps` supersteps, folds received tokens into its
// value, contributes to a sum aggregator, and records the previous
// superstep's aggregate. Every engine feature a checkpoint must capture is
// exercised: vertex values, pending messages, halted flags, aggregators.
func tokenCompute(n int, steps int) Compute[tokenVal, int64] {
	return func(ctx *Context[int64], id VertexID, v *tokenVal, msgs []int64) {
		for _, m := range msgs {
			v.Acc += m
		}
		v.Agg = ctx.PrevAggSum("acc")
		if ctx.Superstep() >= steps {
			ctx.VoteToHalt()
			return
		}
		ctx.AggSum("acc", v.Acc)
		ctx.Send(VertexID((uint64(id)+1)%uint64(n)), v.Acc+int64(ctx.Superstep()))
	}
}

func buildTokenGraph(cfg Config, n int) *Graph[tokenVal, int64] {
	g := NewGraph[tokenVal, int64](cfg)
	for i := 0; i < n; i++ {
		g.AddVertex(VertexID(i), tokenVal{Acc: int64(i) + 1})
	}
	return g
}

// collectVals snapshots every vertex value keyed by ID.
func collectVals(g *Graph[tokenVal, int64]) map[VertexID]tokenVal {
	out := map[VertexID]tokenVal{}
	g.ForEach(func(id VertexID, v *tokenVal) { out[id] = *v })
	return out
}

// sameRunStats compares the deterministic parts of two Stats (everything
// except simulated/wall time and the recovery count, which legitimately
// differ between a failed and an unfailed run).
func sameRunStats(t *testing.T, label string, a, b *Stats) {
	t.Helper()
	if a.Supersteps != b.Supersteps || a.Messages != b.Messages ||
		a.Bytes != b.Bytes || a.DroppedMessages != b.DroppedMessages {
		t.Errorf("%s: stats diverged: got supersteps=%d msgs=%d bytes=%d dropped=%d, want supersteps=%d msgs=%d bytes=%d dropped=%d",
			label, b.Supersteps, b.Messages, b.Bytes, b.DroppedMessages,
			a.Supersteps, a.Messages, a.Bytes, a.DroppedMessages)
	}
}

// TestCheckpointRecoveryIdentical is the single-fault smoke test: crash in
// the middle of the token job, recover from the last checkpoint, and the
// run must finish with exactly the vertex values, aggregates and counters
// of an unfailed run.
func TestCheckpointRecoveryIdentical(t *testing.T) {
	const n, steps = 64, 9
	base := buildTokenGraph(Config{Workers: 4}, n)
	baseStats, err := base.Run(tokenCompute(n, steps), WithName("token"))
	if err != nil {
		t.Fatal(err)
	}
	want := collectVals(base)

	for _, every := range []int{1, 2, 4} {
		g := buildTokenGraph(Config{
			Workers:         4,
			CheckpointEvery: every,
			Faults:          NewFaultPlan(Fault{Round: 5, Worker: 2}),
		}, n)
		stats, err := g.Run(tokenCompute(n, steps), WithName("token"))
		if err != nil {
			t.Fatalf("every=%d: %v", every, err)
		}
		if stats.Recoveries != 1 {
			t.Fatalf("every=%d: expected 1 recovery, got %d", every, stats.Recoveries)
		}
		if got := collectVals(g); !reflect.DeepEqual(got, want) {
			t.Errorf("every=%d: recovered vertex values differ from unfailed run", every)
		}
		sameRunStats(t, "recovered", baseStats, stats)
	}
}

// TestCrashWithoutCheckpointingFails: a fault with CheckpointEvery unset is
// fatal to the run, with a descriptive error.
func TestCrashWithoutCheckpointingFails(t *testing.T) {
	g := buildTokenGraph(Config{Workers: 2, Faults: NewFaultPlan(Fault{Round: 1, Worker: 0})}, 16)
	if _, err := g.Run(tokenCompute(16, 5), WithName("doomed")); err == nil {
		t.Fatal("expected an error when crashing with checkpointing disabled")
	}
}

// TestCrashBeforeFirstCadenceCheckpoint: a fault at round 0 recovers from
// the baseline snapshot taken before superstep 0.
func TestCrashBeforeFirstCadenceCheckpoint(t *testing.T) {
	const n, steps = 32, 6
	base := buildTokenGraph(Config{Workers: 3}, n)
	if _, err := base.Run(tokenCompute(n, steps)); err != nil {
		t.Fatal(err)
	}
	g := buildTokenGraph(Config{
		Workers:         3,
		CheckpointEvery: 4,
		Faults:          NewFaultPlan(Fault{Round: 0, Worker: 1}),
	}, n)
	stats, err := g.Run(tokenCompute(n, steps))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Recoveries != 1 {
		t.Fatalf("expected 1 recovery, got %d", stats.Recoveries)
	}
	if !reflect.DeepEqual(collectVals(g), collectVals(base)) {
		t.Error("recovery from the baseline checkpoint diverged")
	}
}

// TestMultipleFaultsOneRun: two crashes in one run, including a second
// crash during the replay window of the first, still recover to the
// unfailed result.
func TestMultipleFaultsOneRun(t *testing.T) {
	const n, steps = 48, 10
	base := buildTokenGraph(Config{Workers: 4}, n)
	baseStats, err := base.Run(tokenCompute(n, steps))
	if err != nil {
		t.Fatal(err)
	}
	g := buildTokenGraph(Config{
		Workers:         4,
		CheckpointEvery: 3,
		Faults:          NewFaultPlan(Fault{Round: 4, Worker: 0}, Fault{Round: 6, Worker: 3}),
	}, n)
	stats, err := g.Run(tokenCompute(n, steps))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Recoveries != 2 {
		t.Fatalf("expected 2 recoveries, got %d", stats.Recoveries)
	}
	if !reflect.DeepEqual(collectVals(g), collectVals(base)) {
		t.Error("doubly-recovered run diverged from unfailed run")
	}
	sameRunStats(t, "double-fault", baseStats, stats)
}

// TestDirCheckpointerResume simulates process death and restart: a first
// "process" checkpoints to disk and is killed by an unrecoverable event (we
// just stop after noting its checkpoints exist); a second process re-runs
// the same deterministic job with Resume and must fast-forward — executing
// strictly fewer compute calls — while producing identical output.
func TestDirCheckpointerResume(t *testing.T) {
	const n, steps = 64, 9
	dir := t.TempDir()

	count := func(c Compute[tokenVal, int64], calls *int64) Compute[tokenVal, int64] {
		return func(ctx *Context[int64], id VertexID, v *tokenVal, msgs []int64) {
			*calls++
			c(ctx, id, v, msgs)
		}
	}

	store1, err := NewDirCheckpointer(dir)
	if err != nil {
		t.Fatal(err)
	}
	g1 := buildTokenGraph(Config{Workers: 4, CheckpointEvery: 3, Checkpointer: store1}, n)
	var calls1 int64
	if _, err := g1.Run(count(tokenCompute(n, steps), &calls1), WithName("resume")); err != nil {
		t.Fatal(err)
	}
	want := collectVals(g1)

	// "Restarted process": fresh store over the same directory, fresh graph
	// with the same input, Resume on. NextJob re-reserves the same key.
	store2, err := NewDirCheckpointer(dir)
	if err != nil {
		t.Fatal(err)
	}
	g2 := buildTokenGraph(Config{Workers: 4, CheckpointEvery: 3, Checkpointer: store2, Resume: true}, n)
	var calls2 int64
	stats2, err := g2.Run(count(tokenCompute(n, steps), &calls2), WithName("resume"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(collectVals(g2), want) {
		t.Error("resumed run produced different vertex values")
	}
	if calls2 >= calls1 {
		t.Errorf("resume did not fast-forward: %d compute calls on resume, %d on the original run", calls2, calls1)
	}
	if stats2.Supersteps != steps+1 {
		t.Errorf("resumed run reported %d supersteps, want the full job's %d", stats2.Supersteps, steps+1)
	}

	// The checkpoint files live where the flag reference says they do.
	matches, err := filepath.Glob(filepath.Join(dir, "resume@*.ckpt"))
	if err != nil || len(matches) == 0 {
		t.Errorf("expected on-disk checkpoint files in %s (err=%v)", dir, err)
	}
}

// TestResumeRejectsMismatchedRun: resuming over checkpoints written for
// different input (or a different worker layout) is an error, not a silent
// replay of stale state.
func TestResumeRejectsMismatchedRun(t *testing.T) {
	const n, steps = 32, 6
	dir := t.TempDir()
	store1, err := NewDirCheckpointer(dir)
	if err != nil {
		t.Fatal(err)
	}
	g1 := buildTokenGraph(Config{Workers: 4, CheckpointEvery: 2, Checkpointer: store1}, n)
	if _, err := g1.Run(tokenCompute(n, steps), WithName("fp")); err != nil {
		t.Fatal(err)
	}

	store2, err := NewDirCheckpointer(dir)
	if err != nil {
		t.Fatal(err)
	}
	g2 := buildTokenGraph(Config{Workers: 4, CheckpointEvery: 2, Checkpointer: store2, Resume: true}, n)
	g2.AddVertex(VertexID(9999), tokenVal{}) // different input than the checkpointed run
	if _, err := g2.Run(tokenCompute(n, steps), WithName("fp")); err == nil {
		t.Fatal("resume over a different input's checkpoints succeeded")
	}
}

// TestDirCheckpointerSupersedes: the store retains KeepGenerations full
// snapshots (default 2) as recovery fallbacks, deletes anything older, and
// Latest returns the newest.
func TestDirCheckpointerSupersedes(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDirCheckpointer(dir)
	if err != nil {
		t.Fatal(err)
	}
	job := store.NextJob("x")
	if err := store.Save(job, 3, []byte("aaa")); err != nil {
		t.Fatal(err)
	}
	if err := store.Save(job, 6, []byte("bbbb")); err != nil {
		t.Fatal(err)
	}
	if err := store.Save(job, 9, []byte("ccccc")); err != nil {
		t.Fatal(err)
	}
	step, data, ok, err := store.Latest(job)
	if err != nil || !ok || step != 9 || string(data) != "ccccc" {
		t.Fatalf("Latest = (%d, %q, %v, %v), want (9, ccccc, true, nil)", step, data, ok, err)
	}
	entries, _ := os.ReadDir(dir)
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(entries) != 2 {
		t.Errorf("expected the two newest generations after supersede, found %d: %v", len(entries), names)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".00000003.") {
			t.Errorf("superseded generation at step 3 not deleted: %v", names)
		}
	}
}

// TestDirCheckpointerKeepOne: KeepGenerations=1 restores the
// keep-only-newest behavior.
func TestDirCheckpointerKeepOne(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDirCheckpointerOpts(dir, DirStoreOptions{KeepGenerations: 1})
	if err != nil {
		t.Fatal(err)
	}
	job := store.NextJob("x")
	if err := store.Save(job, 3, []byte("aaa")); err != nil {
		t.Fatal(err)
	}
	if err := store.Save(job, 6, []byte("bbbb")); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Errorf("expected exactly one checkpoint file with KeepGenerations=1, found %d", len(entries))
	}
}

// TestMapReduceFaultRecovery: crashes during the map phase and during the
// reduce phase recover by lineage task re-execution — priced on the clock
// but never re-invoking the UDFs, which are allowed to accumulate caller-
// owned per-worker state. Output, message counts and UDF-side accumulators
// must all match the unfailed run exactly; simulated time must not.
func TestMapReduceFaultRecovery(t *testing.T) {
	input := ShardSlice([]int{5, 3, 5, 9, 3, 3, 7, 5, 1, 9, 2, 2}, 4)
	run := func(faults *FaultPlan) ([][]string, *Stats, []int64, float64) {
		clock := NewSimClock(CostModel{})
		// reduced mirrors the pipeline's caller-owned per-worker counters
		// (θ-filter totals, merge ordinals): a double-invoked task would
		// double them.
		reduced := make([]int64, 4)
		out, st := MapReduceCfg(clock, MRConfig{Workers: 4, Faults: faults}, input,
			func(w int, item int, emit func(uint64, int)) { emit(uint64(item), 1) },
			Uint64Hash,
			func(a, b uint64) bool { return a < b },
			func(w int, key uint64, vals []int, emit func(string)) {
				reduced[w] += int64(len(vals))
				emit(string(rune('a'+key)) + string(rune('0'+len(vals))))
			})
		return out, st, reduced, clock.Seconds()
	}
	want, wantStats, wantReduced, wantSim := run(nil)
	for name, plan := range map[string]*FaultPlan{
		"map-phase":    NewFaultPlan(Fault{Round: 0, Worker: 2}),
		"reduce-phase": NewFaultPlan(Fault{Round: 1, Worker: 1}),
		"both-phases":  NewFaultPlan(Fault{Round: 0, Worker: 0}, Fault{Round: 1, Worker: 3}),
	} {
		got, gotStats, gotReduced, gotSim := run(plan)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: recovered MapReduce output differs", name)
		}
		if gotStats.Messages != wantStats.Messages {
			t.Errorf("%s: message count %d != %d", name, gotStats.Messages, wantStats.Messages)
		}
		if !reflect.DeepEqual(gotReduced, wantReduced) {
			t.Errorf("%s: caller-owned reduce accumulators %v != unfailed %v (task redo must not double side effects)",
				name, gotReduced, wantReduced)
		}
		if gotStats.Recoveries != plan.FiredCount() || plan.FiredCount() == 0 {
			t.Errorf("%s: recoveries=%d fired=%d", name, gotStats.Recoveries, plan.FiredCount())
		}
		if gotSim <= wantSim {
			t.Errorf("%s: faulted run simulated %.6fs, expected more than unfailed %.6fs", name, gotSim, wantSim)
		}
	}
}

// TestRemoveVertexAndSetValueSurviveRecovery: out-of-run graph edits made
// before a checkpointed job (removals and value overwrites) must persist
// through rollback and replay — a removed vertex must stay removed, an
// overwritten value must replay from its overwritten state.
func TestRemoveVertexAndSetValueSurviveRecovery(t *testing.T) {
	const n, steps = 32, 7
	build := func(faults *FaultPlan) *Graph[tokenVal, int64] {
		cfg := Config{Workers: 4, CheckpointEvery: 2, Faults: faults}
		g := buildTokenGraph(cfg, n)
		// A first job runs to completion, then the graph is edited between
		// jobs, exactly as the assembler edits graphs between operations.
		if _, err := g.Run(tokenCompute(n, 3), WithName("job1")); err != nil {
			t.Fatal(err)
		}
		g.RemoveVertex(VertexID(5))
		g.RemoveVertex(VertexID(17))
		g.SetValue(VertexID(6), tokenVal{Acc: -1000})
		return g
	}

	base := build(nil)
	if _, err := base.Run(tokenCompute(n, steps), WithName("job2")); err != nil {
		t.Fatal(err)
	}
	want := collectVals(base)
	if _, ok := want[VertexID(5)]; ok {
		t.Fatal("sanity: removed vertex still present in baseline")
	}

	// Crash job2 late enough that the rollback replays supersteps in which
	// messages to the removed vertices are dropped.
	g := build(NewFaultPlan(Fault{Round: 9, Worker: 1}))
	stats, err := g.Run(tokenCompute(n, steps), WithName("job2"))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Recoveries != 1 {
		t.Fatalf("expected 1 recovery, got %d (fault may have landed outside job2)", stats.Recoveries)
	}
	got := collectVals(g)
	if _, ok := got[VertexID(5)]; ok {
		t.Error("vertex removed before the job reappeared after recovery")
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("recovered run over the edited graph diverged from unfailed run")
	}
}

// TestRemoveSelfReplaysIdentically: vertices that remove themselves mid-run
// after the last checkpoint are re-removed identically on replay.
func TestRemoveSelfReplaysIdentically(t *testing.T) {
	const n = 40
	compute := func(ctx *Context[int64], id VertexID, v *int64, msgs []int64) {
		for _, m := range msgs {
			*v += m
		}
		if ctx.Superstep() == 4 && uint64(id)%3 == 0 {
			ctx.RemoveSelf()
			return
		}
		if ctx.Superstep() >= 8 {
			ctx.VoteToHalt()
			return
		}
		ctx.Send(VertexID((uint64(id)+1)%n), *v)
	}
	run := func(faults *FaultPlan) map[VertexID]int64 {
		g := NewGraph[int64, int64](Config{Workers: 4, CheckpointEvery: 3, Faults: faults})
		for i := 0; i < n; i++ {
			g.AddVertex(VertexID(i), int64(i))
		}
		if _, err := g.Run(compute, WithName("removeself")); err != nil {
			t.Fatal(err)
		}
		out := map[VertexID]int64{}
		g.ForEach(func(id VertexID, v *int64) { out[id] = *v })
		return out
	}
	want := run(nil)
	// Fault at round 5: vertices self-removed at superstep 4 are gone, the
	// last checkpoint is at superstep 3 — replay must re-remove them.
	got := run(NewFaultPlan(Fault{Round: 5, Worker: 2}))
	if !reflect.DeepEqual(got, want) {
		t.Error("self-removal did not replay identically after recovery")
	}
	if len(got) >= n {
		t.Error("sanity: no vertices were removed")
	}
}

// TestSimClockCheckpointAccounting pins the cost model arithmetic: one
// checkpoint costs CheckpointLatency plus maxWorkerBytes at the checkpoint
// bandwidth; recovery charges the same read path; Reset zeroes the clock.
func TestSimClockCheckpointAccounting(t *testing.T) {
	m := CostModel{
		SuperstepLatency:         time.Millisecond,
		BytesPerSecond:           1 << 30,
		ComputeScale:             1,
		CheckpointBytesPerSecond: 1 << 20, // 1 MiB/s so transfers dominate
		CheckpointLatency:        2 * time.Millisecond,
	}
	c := NewSimClock(m)
	c.ChargeCheckpoint(1 << 20) // 1 MiB at 1 MiB/s = 1 s
	want := 1.0 + 0.002
	if got := c.Seconds(); got < want-1e-9 || got > want+1e-9 {
		t.Errorf("ChargeCheckpoint: clock at %.6fs, want %.6fs", got, want)
	}
	c.ChargeRecovery(2 << 20) // 2 MiB read = 2 s
	want += 2.0 + 0.002
	if got := c.Seconds(); got < want-1e-9 || got > want+1e-9 {
		t.Errorf("ChargeRecovery: clock at %.6fs, want %.6fs", got, want)
	}
	c.Reset()
	if c.Seconds() != 0 {
		t.Errorf("Reset: clock at %v, want 0", c.Seconds())
	}

	// Zero checkpoint fields fall back to the network bandwidth and the
	// superstep latency.
	c2 := NewSimClock(CostModel{SuperstepLatency: time.Millisecond, BytesPerSecond: 1 << 20})
	c2.ChargeCheckpoint(1 << 20)
	want2 := 1.0 + 0.001
	if got := c2.Seconds(); got < want2-1e-9 || got > want2+1e-9 {
		t.Errorf("defaulted checkpoint fields: clock at %.6fs, want %.6fs", got, want2)
	}
}

// TestClockNeverRewindsThroughRecovery observes the shared clock from
// inside the compute function across a faulted run: every reading must be
// >= the previous one even as state rolls back, and checkpoint writes plus
// the recovery read must make the faulted run strictly slower than the
// unfailed checkpointed run.
func TestClockNeverRewindsThroughRecovery(t *testing.T) {
	const n, steps = 32, 8
	run := func(faults *FaultPlan) (*Graph[tokenVal, int64], float64) {
		g := buildTokenGraph(Config{Workers: 4, CheckpointEvery: 2, Faults: faults}, n)
		inner := tokenCompute(n, steps)
		last := 0.0
		compute := func(ctx *Context[int64], id VertexID, v *tokenVal, msgs []int64) {
			if now := g.Clock().Seconds(); now < last {
				t.Fatalf("clock rewound: %.9f after %.9f", now, last)
			} else {
				last = now
			}
			inner(ctx, id, v, msgs)
		}
		if _, err := g.Run(compute, WithName("clock")); err != nil {
			t.Fatal(err)
		}
		return g, g.Clock().Seconds()
	}
	_, noFault := run(nil)
	_, withFault := run(NewFaultPlan(Fault{Round: 5, Worker: 0}))
	if withFault <= noFault {
		t.Errorf("recovered run simulated %.6fs, expected more than the unfailed run's %.6fs (replay + recovery read must cost time)", withFault, noFault)
	}
}

// TestCheckpointChargesClock: the same job with checkpointing enabled
// simulates strictly more time than without — checkpoint writes are not
// free — and tighter cadence costs at least as much as looser cadence.
func TestCheckpointChargesClock(t *testing.T) {
	const n, steps = 32, 8
	sim := func(every int) float64 {
		g := buildTokenGraph(Config{Workers: 4, CheckpointEvery: every}, n)
		if _, err := g.Run(tokenCompute(n, steps)); err != nil {
			t.Fatal(err)
		}
		return g.Clock().Seconds()
	}
	off, loose, tight := sim(0), sim(4), sim(1)
	if loose <= off {
		t.Errorf("checkpointing every 4 steps simulated %.6fs, expected more than uncheckpointed %.6fs", loose, off)
	}
	if tight <= loose {
		t.Errorf("checkpointing every step simulated %.6fs, expected more than every-4 %.6fs", tight, loose)
	}
}
