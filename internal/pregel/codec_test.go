package pregel

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"
)

// roundTrip pushes a value through appendVal/consumeVal and requires the
// decoded copy to match and the cursor to land exactly past the encoding.
func roundTrip[T any](t *testing.T, v T) {
	t.Helper()
	buf := appendVal(nil, &v)
	var got T
	rest, err := consumeVal(buf, &got)
	if err != nil {
		t.Fatalf("consumeVal(%T %v): %v", v, v, err)
	}
	if len(rest) != 0 {
		t.Fatalf("consumeVal(%T %v): %d trailing bytes", v, v, len(rest))
	}
	if !reflect.DeepEqual(got, v) {
		t.Fatalf("round trip of %T: got %v, want %v", v, got, v)
	}
}

func TestValueCodecPrimitives(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 63, -64, 1<<62 - 1, -(1 << 62)} {
		roundTrip(t, v)
	}
	for _, v := range []uint64{0, 1, 127, 128, 1<<64 - 1} {
		roundTrip(t, v)
	}
	roundTrip(t, int(-123456))
	roundTrip(t, int32(-7))
	roundTrip(t, uint32(1<<32-1))
	for _, v := range []float64{0, -0.5, 3.14159, 1e300} {
		roundTrip(t, v)
	}
	roundTrip(t, true)
	roundTrip(t, false)
	for _, v := range []string{"", "a", "checkpoint v2", strings.Repeat("x", 300)} {
		roundTrip(t, v)
	}
	roundTrip(t, VertexID(1<<63))
	roundTrip(t, struct{}{})
}

func TestBinaryCodecAdmission(t *testing.T) {
	if !binaryCodecFor[int64]() || !binaryCodecFor[VertexID]() || !binaryCodecFor[string]() {
		t.Error("primitive types must admit the binary codec")
	}
	if binaryCodecFor[prVal]() {
		t.Error("a struct without codec methods must not admit the binary codec")
	}
	if binaryCodecFor[[]int64]() {
		t.Error("a slice type must not admit the binary codec")
	}
}

// buildCodecWorker assembles a worker partition with dead vertices, halted
// vertices, a ragged pending inbox and an empty-inbox tail — every shape
// the section codec must carry.
func buildCodecWorker() *worker[int64, int64] {
	w := &worker[int64, int64]{
		ids:     []VertexID{3, 5, 100, 1 << 40, 1<<40 + 1},
		vals:    []int64{-7, 0, 42, 1 << 50, -(1 << 50)},
		active:  []bool{true, false, true, true, false},
		dead:    []bool{false, false, true, false, false},
		nDead:   1,
		inArena: []int64{10, 11, 12, -13},
		inOff:   []int32{0, 2, 2, 3, 4, 4},
		inCur:   make([]int32, 5),
	}
	return w
}

func sectionEqual(t *testing.T, label string, got, want *ckptWorker[int64, int64]) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("%s: decoded section = %+v, want %+v", label, got, want)
	}
}

func TestWorkerSectionRoundTrip(t *testing.T) {
	w := buildCodecWorker()
	want := &ckptWorker[int64, int64]{
		IDs: w.ids, Vals: w.vals, Active: w.active, Dead: w.dead,
		NDead: 1, InArena: w.inArena, InOff: w.inOff,
	}
	for _, bin := range []bool{true, false} {
		blob, err := encodeWorkerFull(w, bin)
		if err != nil {
			t.Fatalf("bin=%v: %v", bin, err)
		}
		got, err := decodeWorkerSection[int64, int64](blob)
		if err != nil {
			t.Fatalf("bin=%v: %v", bin, err)
		}
		label := "binary"
		if !bin {
			label = "gob"
		}
		sectionEqual(t, label, got, want)
	}
}

func TestWorkerSectionBinarySmallerThanGob(t *testing.T) {
	w := buildCodecWorker()
	binBlob, err := encodeWorkerFull(w, true)
	if err != nil {
		t.Fatal(err)
	}
	gobBlob, err := encodeWorkerFull(w, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(binBlob) >= len(gobBlob) {
		t.Errorf("binary section is %d bytes, gob is %d; the zero-copy codec should be denser", len(binBlob), len(gobBlob))
	}
}

// TestWorkerDeltaMergesToFull: mutate a worker, mark the touched vertices
// dirty, and the delta applied to the old snapshot must equal a fresh full
// snapshot of the mutated worker.
func TestWorkerDeltaMergesToFull(t *testing.T) {
	w := buildCodecWorker()
	before, err := encodeWorkerFull(w, true)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := decodeWorkerSection[int64, int64](before)
	if err != nil {
		t.Fatal(err)
	}

	// Mutate vertices 0 and 3: new values, flipped flags, a rewritten
	// inbox for 0 (2 msgs -> 1 msg) and a new message for 3.
	w.dirty = []bool{true, false, false, true, false}
	w.vals[0], w.active[0] = 999, false
	w.vals[3], w.active[3] = -999, true
	w.inArena = []int64{77, 12, 88}
	w.inOff = []int32{0, 1, 1, 2, 3, 3}

	delta := encodeWorkerDelta(w)
	if err := applyWorkerDelta(snap, delta); err != nil {
		t.Fatal(err)
	}
	after, err := encodeWorkerFull(w, true)
	if err != nil {
		t.Fatal(err)
	}
	want, err := decodeWorkerSection[int64, int64](after)
	if err != nil {
		t.Fatal(err)
	}
	sectionEqual(t, "delta-merged", snap, want)
}

func TestWorkerDeltaRejectsMismatchedSize(t *testing.T) {
	w := buildCodecWorker()
	w.dirty = make([]bool, len(w.ids))
	delta := encodeWorkerDelta(w)
	snap := &ckptWorker[int64, int64]{
		IDs: []VertexID{1}, Vals: []int64{0}, Active: []bool{true}, Dead: []bool{false},
		InOff: []int32{0, 0},
	}
	if err := applyWorkerDelta(snap, delta); err == nil {
		t.Error("applying a 5-vertex delta to a 1-vertex snapshot succeeded")
	}
}

func makeCodecCkptFile() *ckptFile {
	return &ckptFile{
		Step: 6, Pending: 17, Kind: ckptKindDelta, PrevStep: 4,
		PartitionerName: "hash", NumWorkers: 3,
		Supersteps: 7, Messages: 1234, LocalMessages: 1000, RemoteMessages: 234,
		Bytes: 99999, DroppedMessages: 2, ClockNs: 1.5e9, Fingerprint: 0xdeadbeefcafe,
		Agg: aggSnapshot{
			Sum: map[string]int64{"rank": 42, "acc": -7},
			Min: map[string]int64{"lo": -1},
			Or:  map[string]bool{"done": true},
		},
		Workers: [][]byte{{1, 2, 3}, {}, {9}},
	}
}

func TestCkptFileRoundTrip(t *testing.T) {
	f := makeCodecCkptFile()
	got, err := decodeCkptFile("job@000", encodeCkptFile(f))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, f) {
		t.Errorf("container round trip:\n got %+v\nwant %+v", got, f)
	}
}

func TestCkptFileRoundTripEmptyAgg(t *testing.T) {
	f := &ckptFile{Kind: ckptKindFull, PartitionerName: "range", NumWorkers: 1, Workers: [][]byte{{0}}}
	got, err := decodeCkptFile("job@000", encodeCkptFile(f))
	if err != nil {
		t.Fatal(err)
	}
	// Empty aggregator maps may decode as nil; compare through a fresh
	// encode instead of DeepEqual on the maps.
	if !reflect.DeepEqual(encodeCkptFile(got), encodeCkptFile(f)) {
		t.Errorf("empty-agg container did not round trip")
	}
}

func TestDecodeCkptFileRejectsV1Gob(t *testing.T) {
	_, err := decodeCkptFile("job@000", []byte{0x20, 0xff, 0x81, 0x03})
	if err == nil {
		t.Fatal("decoding gob-shaped bytes succeeded")
	}
	if !strings.Contains(err.Error(), "v1 gob format") {
		t.Errorf("error does not name the v1 gob format: %v", err)
	}
}

func TestDecodeCkptFileRejectsFutureVersion(t *testing.T) {
	blob := encodeCkptFile(makeCodecCkptFile())
	// The version uvarint sits right after the 4-byte magic; single-digit
	// versions encode as one byte.
	if blob[4] != ckptVersion {
		t.Fatalf("test assumption broken: blob[4] = %d, want the version byte", blob[4])
	}
	blob[4] = ckptVersion + 1
	_, err := decodeCkptFile("job@000", blob)
	if err == nil {
		t.Fatal("decoding a future-version container succeeded")
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("format v%d", ckptVersion+1)) {
		t.Errorf("error does not name the version mismatch: %v", err)
	}
	if errors.Is(err, ErrCheckpointCorrupt) {
		t.Errorf("a version mismatch must not look like corruption (walk-back would not help): %v", err)
	}
}

// TestDecodeCkptFileReadsV2: containers written by the previous (CRC-less)
// format version stay readable.
func TestDecodeCkptFileReadsV2(t *testing.T) {
	f := makeCodecCkptFile()
	blob := encodeCkptFileV2(f)
	if blob[4] != ckptVersionV2 {
		t.Fatalf("test assumption broken: blob[4] = %d, want version byte %d", blob[4], ckptVersionV2)
	}
	got, err := decodeCkptFile("job@000", blob)
	if err != nil {
		t.Fatalf("decoding a v2 container: %v", err)
	}
	if !reflect.DeepEqual(got, f) {
		t.Errorf("v2 container round trip:\n got %+v\nwant %+v", got, f)
	}
}

// TestDecodeCkptFileDetectsBitFlips: flipping any single byte of a v3
// container must fail decode, and — past the magic/version prefix — fail
// it with ErrCheckpointCorrupt; that is the CRC's whole job. A flipped
// magic byte is indistinguishable from a v1 gob file and a flipped
// version byte from a future format, so those two report hard
// identification errors instead.
func TestDecodeCkptFileDetectsBitFlips(t *testing.T) {
	clean := encodeCkptFile(makeCodecCkptFile())
	if _, err := decodeCkptFile("job@000", clean); err != nil {
		t.Fatal(err)
	}
	for i := range clean {
		blob := append([]byte(nil), clean...)
		blob[i] ^= 0x40
		_, err := decodeCkptFile("job@000", blob)
		if err == nil {
			t.Fatalf("flipping byte %d of %d went undetected", i, len(blob))
		}
		if i > len(ckptMagic) && !errors.Is(err, ErrCheckpointCorrupt) {
			t.Fatalf("flipping byte %d: error is not ErrCheckpointCorrupt: %v", i, err)
		}
	}
}

// TestDecodeCkptFileBounds: the reported section boundaries tile the
// container — header end, then each worker section end, with the last
// bound at the container's end.
func TestDecodeCkptFileBounds(t *testing.T) {
	f := makeCodecCkptFile()
	blob := encodeCkptFile(f)
	_, bounds, err := decodeCkptFileBounds("job@000", blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(bounds) != len(f.Workers)+1 {
		t.Fatalf("got %d bounds for %d workers", len(bounds), len(f.Workers))
	}
	if bounds[len(bounds)-1] != int64(len(blob)) {
		t.Errorf("last bound %d != container size %d", bounds[len(bounds)-1], len(blob))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Errorf("bounds not strictly increasing: %v", bounds)
		}
		// A container truncated at any section boundary (except the full
		// length) must fail decode as corrupt.
		if bounds[i] < int64(len(blob)) {
			if _, err := decodeCkptFile("job@000", blob[:bounds[i]]); !errors.Is(err, ErrCheckpointCorrupt) {
				t.Errorf("truncation at bound %d not detected as corruption: %v", bounds[i], err)
			}
		}
	}
}

// TestConsumeValRangeChecks: varints that overflow the destination type
// must error instead of silently truncating.
func TestConsumeValRangeChecks(t *testing.T) {
	overflow64 := appendVal(nil, ptr(int64(math.MaxInt32+1)))
	var i32 int32
	if _, err := consumeVal(overflow64, &i32); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Errorf("int32 overflow not rejected: %v (decoded %d)", err, i32)
	}
	underflow64 := appendVal(nil, ptr(int64(math.MinInt32-1)))
	if _, err := consumeVal(underflow64, &i32); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Errorf("int32 underflow not rejected: %v", err)
	}
	var u32 uint32
	big := appendVal(nil, ptr(uint64(math.MaxUint32+1)))
	if _, err := consumeVal(big, &u32); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Errorf("uint32 overflow not rejected: %v", err)
	}
	// Boundary values still round-trip.
	roundTrip(t, int32(math.MaxInt32))
	roundTrip(t, int32(math.MinInt32))
	roundTrip(t, uint32(math.MaxUint32))
	roundTrip(t, int(math.MaxInt64))
	roundTrip(t, int(math.MinInt64))
}

func ptr[T any](v T) *T { return &v }

func TestDecodeCkptFileRejectsTruncation(t *testing.T) {
	blob := encodeCkptFile(makeCodecCkptFile())
	for _, cut := range []int{5, len(blob) / 2, len(blob) - 1} {
		if _, err := decodeCkptFile("job@000", blob[:cut]); err == nil {
			t.Errorf("decoding a container truncated to %d/%d bytes succeeded", cut, len(blob))
		}
	}
}
