package pregel

import (
	"fmt"
	"sort"
	"sync/atomic"

	"ppaassembler/internal/telemetry"
)

// Online adaptive repartitioning: the engine observes which vertices
// actually talk to each other (a per-(sender, receiver) message matrix
// recorded at Send time over a trailing observation window), and at
// configurable superstep boundaries condenses the hottest communicating
// vertex groups onto single workers. Placement overrides
// live in a versioned routing table layered over the base Partitioner, so
// every placement decision — WorkerOf, lane addressing, Convert re-shards,
// point lookups, MapReduce key grouping — picks up a migration the moment
// it commits. Migrated partition state (value, flags, pending inbox) rides
// the binary checkpoint codec between workers — over the Transport when one
// is active, so a tcp run really ships the bytes — and the traffic is
// charged to the SimClock via CostModel.MigrationBytesPerSecond.
//
// Migrations commit only at superstep barriers, after delivery and the
// transport barrier and before the cadence checkpoint, so a checkpoint
// always captures post-migration state and the routing table that produced
// it (PPCK v5 persists the table; Resume restores placement exactly).
// Because the engine's applications are placement-invariant (proven across
// the static partitioners since the partitioner abstraction landed),
// relocating a vertex between barriers never changes run output — only the
// local/remote traffic split and therefore the simulated communication
// time.
//
// Determinism across failure: the observation matrix is deliberately
// volatile — cleared at every checkpoint save and restore in addition to
// window starts. Saves happen at fixed superstep numbers, so the matrix
// content at any barrier is a pure function of the superstep schedule, and
// a run rolled back to a checkpoint replays the exact same migration
// decisions the original execution made after that checkpoint.

// DefaultMaxMoves bounds how many vertices one repartition decision may
// relocate when RepartitionPolicy.MaxMoves is zero.
const DefaultMaxMoves = 64

// RepartitionPolicy enables and tunes live vertex migration for a run.
type RepartitionPolicy struct {
	// Every is the decision cadence: at every barrier where the completed
	// superstep count is a positive multiple of Every, the solver proposes
	// and commits migrations. Must be positive.
	Every int
	// Window is how many trailing supersteps of traffic feed each decision.
	// Zero means Every (observe continuously); values above Every are
	// clamped to Every — a window cannot span a migration decision, so
	// every decision sees only traffic generated under the placement it is
	// about to revise.
	Window int
	// MaxMoves caps the vertices relocated per decision. Zero means
	// DefaultMaxMoves; migration cost scales with it, so the cap is what
	// keeps each decision's charged transfer bounded.
	MaxMoves int
}

// withDefaults returns the normalized policy the engine runs with.
func (p RepartitionPolicy) withDefaults() RepartitionPolicy {
	if p.Window <= 0 || p.Window > p.Every {
		p.Window = p.Every
	}
	if p.MaxMoves <= 0 {
		p.MaxMoves = DefaultMaxMoves
	}
	return p
}

// validate rejects nonsensical policies early (see Config.Validate).
func (p RepartitionPolicy) validate() error {
	if p.Every <= 0 {
		return fmt.Errorf("pregel: Repartition.Every must be positive, got %d", p.Every)
	}
	if p.Window < 0 {
		return fmt.Errorf("pregel: Repartition.Window must not be negative, got %d", p.Window)
	}
	if p.MaxMoves < 0 {
		return fmt.Errorf("pregel: Repartition.MaxMoves must not be negative, got %d", p.MaxMoves)
	}
	return nil
}

// routingTable is one immutable generation of placement overrides: vertex
// IDs that no longer live where the base partitioner would put them. Tables
// are replaced wholesale (copy-on-write behind an atomic pointer), never
// mutated, so Assign can read them lock-free from every worker goroutine.
type routingTable struct {
	version uint64
	workers int
	moved   map[VertexID]int32
}

// DynamicPartitioner layers a versioned routing table over a base
// partitioner. With an empty table it places exactly like its base — which
// is why an adaptive run that never migrates is byte-identical to a static
// one — and each committed migration installs a new table generation that
// every subsequent placement decision consults. The table is bound to the
// worker count it was built for; under any other count every ID falls back
// to the base, so a table can never misplace across worker-count changes.
//
// Checkpoints persist the table (PPCK v5) and Name() reports the base
// inside the adaptive wrapper, so resuming an adaptive run under a static
// partitioner — or vice versa — fails the existing placement-identity check
// by name instead of scattering state.
type DynamicPartitioner struct {
	base Partitioner
	tab  atomic.Pointer[routingTable]
}

// AsDynamic wraps base in a DynamicPartitioner with an empty routing table.
// A base that is already dynamic is returned unchanged, so config layers
// can wrap defensively without stacking tables. Nil wraps the hash default.
func AsDynamic(base Partitioner) *DynamicPartitioner {
	if d, ok := base.(*DynamicPartitioner); ok {
		return d
	}
	if base == nil {
		base = HashPartitioner{}
	}
	return &DynamicPartitioner{base: base}
}

// BasePartitioner unwraps a DynamicPartitioner to the static strategy
// underneath; every other partitioner is returned unchanged. Callers that
// type-switch on concrete strategies (e.g. the assembler's affinity
// placement hook) unwrap through here so wrapping stays transparent.
func BasePartitioner(p Partitioner) Partitioner {
	if d, ok := p.(*DynamicPartitioner); ok {
		return d.base
	}
	return p
}

// Name implements Partitioner. The name is constant for the lifetime of a
// run regardless of table generation — checkpoint identity must not change
// as migrations commit — while still distinguishing adaptive from static
// placement of the same base.
func (d *DynamicPartitioner) Name() string { return "adaptive(" + d.base.Name() + ")" }

// Base returns the wrapped static strategy.
func (d *DynamicPartitioner) Base() Partitioner { return d.base }

// Assign implements Partitioner: the routing table wins for IDs it covers
// (under the worker count it was built for); everything else is base
// placement.
func (d *DynamicPartitioner) Assign(id VertexID, workers int) int {
	if t := d.tab.Load(); t != nil && t.workers == workers {
		if w, ok := t.moved[id]; ok {
			return int(w)
		}
	}
	return d.base.Assign(id, workers)
}

// Version returns the routing-table generation (0 = never migrated).
func (d *DynamicPartitioner) Version() uint64 {
	if t := d.tab.Load(); t != nil {
		return t.version
	}
	return 0
}

// Overrides returns how many vertex IDs the table currently re-places.
func (d *DynamicPartitioner) Overrides() int {
	if t := d.tab.Load(); t != nil {
		return len(t.moved)
	}
	return 0
}

// Reset drops every override, reverting to pure base placement. Only call
// between runs.
func (d *DynamicPartitioner) Reset() { d.tab.Store(nil) }

// install merges newly committed moves into the table as a fresh
// generation. Entries that now agree with base placement are dropped — a
// vertex migrated home again needs no override — so the table stays an
// exception list, not a full placement map.
func (d *DynamicPartitioner) install(moves map[VertexID]int32, workers int) {
	old := d.tab.Load()
	size := len(moves)
	version := uint64(1)
	if old != nil {
		size += len(old.moved)
		version = old.version + 1
	}
	merged := make(map[VertexID]int32, size)
	if old != nil && old.workers == workers {
		for id, w := range old.moved {
			merged[id] = w
		}
	}
	for id, w := range moves {
		merged[id] = w
	}
	for id, w := range merged {
		if d.base.Assign(id, workers) == int(w) {
			delete(merged, id)
		}
	}
	d.tab.Store(&routingTable{version: version, workers: workers, moved: merged})
}

// routingBytes encodes the current table for the checkpoint header. An
// empty table (or none) encodes to nil, which decodes back to "no
// overrides" — so static checkpoints and never-migrated adaptive ones carry
// zero routing payload.
func (d *DynamicPartitioner) routingBytes() []byte {
	return appendRoutingTable(nil, d.tab.Load())
}

// installBytes replaces the table wholesale with a decoded checkpoint
// payload — the restore-side twin of routingBytes. Empty data clears the
// table.
func (d *DynamicPartitioner) installBytes(data []byte, workers int) error {
	t, err := decodeRoutingTable(data)
	if err != nil {
		return err
	}
	if t != nil && len(t.moved) > 0 && t.workers != workers {
		return fmt.Errorf("pregel: checkpoint routing table was built for %d workers, this run has %d", t.workers, workers)
	}
	d.tab.Store(t)
	return nil
}

// appendRoutingTable encodes t: uvarint version, uvarint workers, uvarint
// entry count, then (delta-encoded ascending vertex ID, uvarint worker)
// pairs. Sorted entries make equal tables encode to equal bytes, which the
// resume byte-identity tests rely on. A nil or empty table appends nothing.
func appendRoutingTable(buf []byte, t *routingTable) []byte {
	if t == nil || len(t.moved) == 0 {
		return buf
	}
	buf = AppendUvarint(buf, t.version)
	buf = AppendUvarint(buf, uint64(t.workers))
	buf = AppendUvarint(buf, uint64(len(t.moved)))
	ids := make([]VertexID, 0, len(t.moved))
	for id := range t.moved {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	prev := uint64(0)
	for _, id := range ids {
		buf = AppendUvarint(buf, uint64(id)-prev)
		prev = uint64(id)
		buf = AppendUvarint(buf, uint64(t.moved[id]))
	}
	return buf
}

// decodeRoutingTable inverts appendRoutingTable. Empty input decodes to a
// nil table (no overrides); malformed input is ErrCheckpointCorrupt, so
// corruption-aware recovery treats a damaged routing block like any other
// damaged checkpoint region.
func decodeRoutingTable(data []byte) (*routingTable, error) {
	if len(data) == 0 {
		return nil, nil
	}
	version, data, err := ConsumeUvarint(data)
	if err != nil {
		return nil, err
	}
	uw, data, err := ConsumeUvarint(data)
	if err != nil {
		return nil, err
	}
	n, data, err := ConsumeUvarint(data)
	if err != nil {
		return nil, err
	}
	// The encoder emits nothing for an empty table, so a present header
	// with zero entries is not a canonical encoding.
	if n == 0 {
		return nil, corruptf("pregel: corrupt routing table: header with no entries")
	}
	// Every entry costs at least two bytes (ID delta + worker), so a count
	// beyond the bytes on hand is corruption; checked before the sized make.
	if n > uint64(len(data)) {
		return nil, corruptf("pregel: corrupt routing table: %d entries in %d bytes", n, len(data))
	}
	if uw > uint64(1)<<31 {
		return nil, corruptf("pregel: corrupt routing table: worker count %d out of range", uw)
	}
	workers := int(uw)
	t := &routingTable{version: version, workers: workers, moved: make(map[VertexID]int32, n)}
	prev := uint64(0)
	for i := uint64(0); i < n; i++ {
		var d, w uint64
		if d, data, err = ConsumeUvarint(data); err != nil {
			return nil, err
		}
		if i > 0 && d == 0 {
			return nil, corruptf("pregel: corrupt routing table: duplicate vertex ID %d", prev)
		}
		prev += d
		if w, data, err = ConsumeUvarint(data); err != nil {
			return nil, err
		}
		if w >= uint64(workers) {
			return nil, corruptf("pregel: corrupt routing table: entry places vertex %d on worker %d of %d", prev, w, workers)
		}
		t.moved[VertexID(prev)] = int32(w)
	}
	if len(data) != 0 {
		return nil, corruptf("pregel: corrupt routing table: %d trailing bytes", len(data))
	}
	return t, nil
}

// graphRouting returns the encoded routing table when the run places
// adaptively, nil otherwise — what saveCheckpoint stores in the v5 header.
func (g *Graph[V, M]) graphRouting() []byte {
	if d, ok := g.cfg.Partitioner.(*DynamicPartitioner); ok {
		return d.routingBytes()
	}
	return nil
}

// restoreRouting installs a checkpoint's routing payload into the run's
// DynamicPartitioner. Static runs never see a non-empty payload here — the
// partitioner-name identity check rejects an adaptive checkpoint before
// restore — so routing bytes under a static partitioner are corruption.
func (g *Graph[V, M]) restoreRouting(data []byte) error {
	if d, ok := g.cfg.Partitioner.(*DynamicPartitioner); ok {
		return d.installBytes(data, g.cfg.Workers)
	}
	if len(data) > 0 {
		return corruptf("pregel: checkpoint carries a routing table but the run's partitioner %q is not adaptive", g.cfg.Partitioner.Name())
	}
	return nil
}

// migEdge is one observed (sender, receiver) vertex pair — a key of the
// per-worker observation matrix.
type migEdge struct{ src, dst VertexID }

// resetTraffic clears every worker's observation matrix. Called at window
// starts, after every checkpoint save and restore (see the determinism
// note at the top of this file), and therefore always before the next
// recorded send indexes it.
func (g *Graph[V, M]) resetTraffic() {
	if g.cfg.Repartition == nil {
		return
	}
	for _, w := range g.workers {
		if w.edges == nil {
			w.edges = make(map[migEdge]int64)
		} else {
			clear(w.edges)
		}
	}
}

// observeWindow updates the recording gate for the superstep about to
// execute: Send records traffic only during the last Window supersteps
// before each decision boundary, and the matrix is zeroed when a window
// opens.
func (g *Graph[V, M]) observeWindow(step int) {
	pol := g.cfg.Repartition
	if pol == nil {
		g.observing = false
		return
	}
	phase := step % pol.Every
	g.observing = phase >= pol.Every-pol.Window
	if phase == pol.Every-pol.Window {
		g.resetTraffic()
	}
}

// repartitionDue reports whether the barrier completing superstep step-1
// (i.e. the loop position right after step was incremented) is a migration
// decision point.
func (g *Graph[V, M]) repartitionDue(step int) bool {
	pol := g.cfg.Repartition
	return pol != nil && step > 0 && step%pol.Every == 0 && g.cfg.Workers > 1
}

// Solver hysteresis: an edge participates in the affinity graph only when
// it carried at least migMinGain messages during the window, and a phase-B
// per-vertex reassignment is proposed only when the dominant remote worker
// carries at least migGainRatio times the vertex's current local traffic.
// The ratio suppresses oscillation between near-balanced neighborhoods;
// the floor suppresses noise edges from vertices that barely communicate,
// whose relocation payload would outweigh any conceivable wire saving.
const (
	migGainRatio = 2
	migMinGain   = 2
)

// migMove is one planned relocation.
type migMove struct {
	id       VertexID
	from, to int
	idx      int   // vertex index within the source worker
	gain     int64 // observed messages gained local by the move
}

// migEdgeCount is one observed (sender, receiver) vertex pair with its
// message count for the window, the raw affinity-graph edge the solver
// consumes.
type migEdgeCount struct {
	e migEdge
	n int64
}

// planMigration is the solver. The observed (sender, receiver) message
// counts form an affinity graph over vertices; the solver condenses its
// connected components onto single workers:
//
//  1. Components are found by union-find over every edge that cleared the
//     migMinGain noise floor. Condensing a whole component at once is what
//     lets migration beat per-vertex greedy placement on pointer-jumping
//     workloads: after one decision, a vertex's partner at ANY doubling
//     distance is on the same worker, not just its current neighbor.
//  2. Each component whose edges crossed workers during the window moves to
//     the worker already holding most of its members (its plurality home),
//     provided the destination stays under capacity and the move is worth
//     it — members moved must not exceed the cut traffic they localize.
//  3. Components too large for any worker fall back to the greedy
//     put-it-next-to-its-heaviest-neighborhood heuristic of the assembler's
//     static affinity placement (core.AffinityPartitioner), reused online
//     per vertex as the label-propagation seed: each vertex adopts the
//     label (worker) of its dominant traffic partner, with migGainRatio
//     hysteresis so near-balanced pairs don't swap homes every decision.
//
// The plan is capped at maxMoves and capacity-bounded so migration can
// never collapse the cluster onto one worker: a destination may grow to at
// most 25% above the balanced share.
func (g *Graph[V, M]) planMigration(maxMoves int) []migMove {
	W := g.cfg.Workers

	// Gather the affinity edges above the noise floor, deterministically
	// ordered. Self-loops carry no placement information.
	var edges []migEdgeCount
	for _, w := range g.workers {
		for e, n := range w.edges {
			if n >= migMinGain && e.src != e.dst {
				edges = append(edges, migEdgeCount{e, n})
			}
		}
	}
	if len(edges) == 0 {
		return nil
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].e.src != edges[b].e.src {
			return edges[a].e.src < edges[b].e.src
		}
		return edges[a].e.dst < edges[b].e.dst
	})

	// Union-find over edge endpoints; the root is always the smallest
	// vertex ID in the set so component identity is deterministic.
	parent := map[VertexID]VertexID{}
	var find func(VertexID) VertexID
	find = func(v VertexID) VertexID {
		p, ok := parent[v]
		if !ok || p == v {
			return v
		}
		r := find(p)
		parent[v] = r
		return r
	}
	union := func(a, b VertexID) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if rb < ra {
			ra, rb = rb, ra
		}
		parent[rb] = ra
	}

	// Locate every endpoint still alive under the current routing table.
	type migLoc struct{ wi, idx int }
	locs := map[VertexID]migLoc{}
	var vertices []VertexID // first-seen order over sorted edges: deterministic
	locate := func(id VertexID) {
		if _, seen := locs[id]; seen {
			return
		}
		wi := g.WorkerOf(id)
		i, ok := g.workers[wi].idx[id]
		if !ok || g.workers[wi].dead[i] {
			return
		}
		locs[id] = migLoc{wi, i}
		vertices = append(vertices, id)
	}
	for _, ec := range edges {
		locate(ec.e.src)
		locate(ec.e.dst)
		if _, ok := locs[ec.e.src]; !ok {
			continue
		}
		if _, ok := locs[ec.e.dst]; !ok {
			continue
		}
		union(ec.e.src, ec.e.dst)
	}

	comp := map[VertexID][]VertexID{}
	var roots []VertexID
	for _, v := range vertices {
		r := find(v)
		if len(comp[r]) == 0 {
			roots = append(roots, r)
		}
		comp[r] = append(comp[r], v)
	}
	// cut[r] is the traffic the component's worker-crossing edges carried:
	// the wire bytes condensing it would have saved this window.
	cut := map[VertexID]int64{}
	for _, ec := range edges {
		ls, oks := locs[ec.e.src]
		ld, okd := locs[ec.e.dst]
		if oks && okd && ls.wi != ld.wi {
			cut[find(ec.e.src)] += ec.n
		}
	}
	// Largest components first: they localize the most traffic per decision
	// and deserve first claim on destination capacity.
	sort.Slice(roots, func(a, b int) bool {
		if len(comp[roots[a]]) != len(comp[roots[b]]) {
			return len(comp[roots[a]]) > len(comp[roots[b]])
		}
		return roots[a] < roots[b]
	})

	total := 0
	sizes := make([]int, W)
	for wi, w := range g.workers {
		sizes[wi] = w.vertexCount()
		total += sizes[wi]
	}
	capacity := total/W + total/(4*W) + 1

	var moves []migMove
	var overflow []VertexID // members of components no worker could absorb
	for _, r := range roots {
		members := comp[r]
		if cut[r] == 0 {
			continue // already fully local
		}
		presence := make([]int, W)
		for _, v := range members {
			presence[locs[v].wi]++
		}
		target, ok := -1, false
		for wi := 0; wi < W; wi++ {
			if sizes[wi]+(len(members)-presence[wi]) > capacity {
				continue
			}
			// Maximize members already home (fewest moves); break ties
			// toward the least-loaded worker so near-uniform components
			// spread across the cluster instead of piling onto worker 0.
			if !ok || presence[wi] > presence[target] ||
				(presence[wi] == presence[target] && sizes[wi] < sizes[target]) {
				target, ok = wi, true
			}
		}
		if !ok {
			overflow = append(overflow, members...)
			continue
		}
		n := len(members) - presence[target]
		// Worth-it check: moving n vertices must localize at least n
		// observed messages, or the payload outweighs the wire saving.
		if n == 0 || int64(n) > cut[r] || len(moves)+n > maxMoves {
			continue
		}
		for _, v := range members {
			l := locs[v]
			if l.wi == target {
				continue
			}
			moves = append(moves, migMove{id: v, from: l.wi, to: target, idx: l.idx, gain: cut[r] / int64(n)})
			sizes[target]++
			sizes[l.wi]--
		}
	}

	// Phase B: per-vertex greedy for overflow components. Index each
	// vertex's incident edges once, then move it toward its dominant
	// traffic partner's worker when that clearly beats staying put.
	if len(overflow) > 0 {
		incident := map[VertexID][]int{}
		for i, ec := range edges {
			incident[ec.e.src] = append(incident[ec.e.src], i)
			incident[ec.e.dst] = append(incident[ec.e.dst], i)
		}
		row := make([]int64, W)
		for _, v := range overflow {
			if len(moves) >= maxMoves {
				break
			}
			for i := range row {
				row[i] = 0
			}
			for _, ei := range incident[v] {
				other := edges[ei].e.src
				if other == v {
					other = edges[ei].e.dst
				}
				if l, ok := locs[other]; ok {
					row[l.wi] += edges[ei].n
				}
			}
			cur := locs[v].wi
			best := cur
			for wi := 0; wi < W; wi++ {
				if row[wi] > row[best] || (row[wi] == row[best] && wi < best) {
					best = wi
				}
			}
			if best == cur || row[best] < migGainRatio*row[cur] || row[best]-row[cur] < migMinGain {
				continue
			}
			if sizes[best] >= capacity {
				continue
			}
			moves = append(moves, migMove{id: v, from: cur, to: best, idx: locs[v].idx, gain: row[best] - row[cur]})
			sizes[best]++
			sizes[cur]--
		}
	}
	return moves
}

// migrantSection builds the relocation payload for one (from, to) worker
// pair: a temporary partition holding exactly the moved vertices — value,
// active flag, pending inbox — encoded with the same binary worker-section
// codec checkpoints use, so migration exercises a proven byte path and
// works for any checkpointable vertex/message type (gob fallback included).
func (g *Graph[V, M]) migrantSection(moves []migMove, bin bool) ([]byte, error) {
	src := g.workers[moves[0].from]
	n := len(moves)
	tmp := &worker[V, M]{
		ids:    make([]VertexID, n),
		vals:   make([]V, n),
		active: make([]bool, n),
		dead:   make([]bool, n),
		inOff:  make([]int32, n+1),
	}
	for i, m := range moves {
		tmp.ids[i] = m.id
		tmp.vals[i] = src.vals[m.idx]
		tmp.active[i] = src.active[m.idx]
		tmp.inArena = append(tmp.inArena, src.inArena[src.inOff[m.idx]:src.inOff[m.idx+1]]...)
		tmp.inOff[i+1] = int32(len(tmp.inArena))
	}
	return encodeWorkerFull(tmp, bin)
}

// runRepartition executes one migration decision at a barrier: solve,
// transfer, splice, commit. It mutates nothing until every transfer payload
// has arrived and decoded, so a worker lost mid-migration (transport error)
// aborts cleanly and the run rolls back to its checkpoint exactly like a
// lost superstep — the checkpointed routing table still matches the
// checkpointed partitions.
func (g *Graph[V, M]) runRepartition(step int, stats *Stats) error {
	pol := g.cfg.Repartition
	tr := g.cfg.Tracer
	wall0 := nowNs()
	if tr != nil {
		g.emit(telemetry.KindBegin, "solve", "migration", wall0, g.clock.Ns(),
			telemetry.I("step", int64(step)))
	}
	moves := g.planMigration(pol.MaxMoves)
	if tr != nil {
		g.emit(telemetry.KindEnd, "solve", "migration", nowNs(), g.clock.Ns(),
			telemetry.I("moves", int64(len(moves))))
	}
	if len(moves) == 0 {
		return nil
	}

	// Group moves per (from, to) pair in deterministic order and encode
	// each pair's relocation payload.
	type pairKey struct{ from, to int }
	byPair := map[pairKey][]migMove{}
	for _, m := range moves {
		byPair[pairKey{m.from, m.to}] = append(byPair[pairKey{m.from, m.to}], m)
	}
	pairs := make([]pairKey, 0, len(byPair))
	for k := range byPair {
		pairs = append(pairs, k)
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].from != pairs[b].from {
			return pairs[a].from < pairs[b].from
		}
		return pairs[a].to < pairs[b].to
	})
	bin := binaryCodecFor[V]() && binaryCodecFor[M]()
	payloads := make([][]byte, len(pairs))
	for i, k := range pairs {
		// Moves arrive gain-ordered; the section codec wants ascending IDs.
		pm := byPair[k]
		sort.Slice(pm, func(a, b int) bool { return pm[a].id < pm[b].id })
		var err error
		if payloads[i], err = g.migrantSection(pm, bin); err != nil {
			return fmt.Errorf("pregel: encoding migration payload %d→%d: %w", k.from, k.to, err)
		}
	}

	wall1 := nowNs()
	if tr != nil {
		g.emit(telemetry.KindBegin, "transfer", "migration", wall1, g.clock.Ns(),
			telemetry.I("step", int64(step)), telemetry.I("vertices", int64(len(moves))))
	}
	// Over a real transport the payloads genuinely travel: each pair's
	// section is shipped to the destination depot and fetched back before
	// anything is spliced. The step key is the superstep about to run;
	// every data lane of that step is sent after this returns, and SendLane
	// overwrites by contract, so the keys cannot collide with the shuffle.
	if g.transportActive() {
		t := g.cfg.Transport
		for i, k := range pairs {
			if err := t.SendLane(step, k.from, k.to, payloads[i]); err != nil {
				return err
			}
		}
		for i, k := range pairs {
			fetched, err := t.RecvLane(step, k.from, k.to)
			if err != nil {
				return err
			}
			payloads[i] = fetched
		}
	}
	sections := make([]*ckptWorker[V, M], len(pairs))
	for i, k := range pairs {
		sec, err := decodeWorkerSection[V, M](payloads[i])
		if err != nil {
			return fmt.Errorf("pregel: decoding migration payload %d→%d: %w", k.from, k.to, err)
		}
		sections[i] = sec
	}

	// Point of no return: splice the migrants out of their source workers
	// and into their destinations, then publish the new routing generation.
	// Each sender ships its sections in parallel; the decision's transfer
	// cost is the busiest outgoing link, same as a shuffle round.
	totalBytes := int64(0)
	workerBytes := make([]float64, g.cfg.Workers)
	for i, k := range pairs {
		b := int64(len(payloads[i]))
		totalBytes += b
		workerBytes[k.from] += float64(b)
	}
	perPair := make([][]migMove, len(pairs))
	for i, k := range pairs {
		perPair[i] = byPair[k]
	}
	g.spliceMigrants(perPair, sections)
	routes := make(map[VertexID]int32, len(moves))
	for _, m := range moves {
		routes[m.id] = int32(m.to)
	}
	g.cfg.Partitioner.(*DynamicPartitioner).install(routes, g.cfg.Workers)

	maxBytes := 0.0
	for _, b := range workerBytes {
		if b > maxBytes {
			maxBytes = b
		}
	}
	g.clock.ChargeMigration(maxBytes)
	g.clock.CountMigration(int64(len(moves)), totalBytes)
	stats.Migrations++
	stats.MigratedVertices += int64(len(moves))
	stats.MigrationBytes += totalBytes
	if g.cfg.Metrics != nil {
		g.cfg.Metrics.Counter("pregel_migrations_total").Add(1)
		g.cfg.Metrics.Counter("pregel_migrated_vertices_total").Add(int64(len(moves)))
		g.cfg.Metrics.Counter("pregel_migration_bytes_total").Add(totalBytes)
	}
	if tr != nil {
		g.emit(telemetry.KindEnd, "transfer", "migration", nowNs(), g.clock.Ns(),
			telemetry.I("vertices", int64(len(moves))), telemetry.I("bytes", totalBytes))
	}
	return nil
}

// spliceMigrants rebuilds every worker touched by a committed migration:
// moved vertices leave their source partition and the decoded sections
// merge into their destinations, preserving sorted-by-ID order and carrying
// each vertex's pending inbox. Untouched workers keep their arrays (and
// their zero-allocation steady state) unchanged.
func (g *Graph[V, M]) spliceMigrants(perPair [][]migMove, sections []*ckptWorker[V, M]) {
	leaving := make(map[int]map[int]bool) // worker -> vertex indices moving out
	arriving := make(map[int][]*ckptWorker[V, M])
	for i, pm := range perPair {
		from, to := pm[0].from, pm[0].to
		if leaving[from] == nil {
			leaving[from] = map[int]bool{}
		}
		for _, m := range pm {
			leaving[from][m.idx] = true
		}
		arriving[to] = append(arriving[to], sections[i])
	}
	touched := map[int]bool{}
	for w := range leaving {
		touched[w] = true
	}
	for w := range arriving {
		touched[w] = true
	}
	for wi := range g.workers {
		if !touched[wi] {
			continue
		}
		w := g.workers[wi]
		out := leaving[wi]
		type rec struct {
			id     VertexID
			val    V
			active bool
			dead   bool
			msgs   []M
		}
		recs := make([]rec, 0, len(w.ids))
		for i, id := range w.ids {
			if out[i] {
				continue
			}
			recs = append(recs, rec{id, w.vals[i], w.active[i], w.dead[i], w.inArena[w.inOff[i]:w.inOff[i+1]]})
		}
		for _, sec := range arriving[wi] {
			for i, id := range sec.IDs {
				recs = append(recs, rec{id, sec.Vals[i], sec.Active[i], false, sec.InArena[sec.InOff[i]:sec.InOff[i+1]]})
			}
		}
		sort.Slice(recs, func(a, b int) bool { return recs[a].id < recs[b].id })
		n := len(recs)
		ids := make([]VertexID, n)
		vals := make([]V, n)
		active := make([]bool, n)
		dead := make([]bool, n)
		idx := make(map[VertexID]int, n)
		inOff := make([]int32, n+1)
		arena := make([]M, 0, len(w.inArena))
		nDead := 0
		for i, r := range recs {
			ids[i] = r.id
			vals[i] = r.val
			active[i] = r.active
			dead[i] = r.dead
			if r.dead {
				nDead++
			}
			idx[r.id] = i
			arena = append(arena, r.msgs...)
			inOff[i+1] = int32(len(arena))
		}
		w.ids, w.vals, w.active, w.dead, w.nDead = ids, vals, active, dead, nDead
		w.idx = idx
		w.inArena, w.inOff = arena, inOff
		w.inCur = growInt32(w.inCur, n)
		if w.dirty != nil {
			// The relocation invalidates per-index dirty tracking; the next
			// save is forced full (Run clears haveFull), so just resize.
			w.dirty = growBool(w.dirty, n)
			clear(w.dirty)
		}
	}
}
