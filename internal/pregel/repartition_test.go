package pregel

import (
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"ppaassembler/internal/transport"
)

// hubCompute is the skewed workload the adaptive tests migrate: vertices
// form clusters of k, members send every message to their cluster head and
// the head broadcasts back. Incoming traffic for a member therefore comes
// from exactly one source vertex — the head — so the solver has an
// unambiguous dominant worker to move each member to, and a static hash
// placement scatters clusters badly enough that migration has real remote
// traffic to eliminate.
func hubCompute(n, k uint64, iters int) Compute[int64, int64] {
	return func(ctx *Context[int64], id VertexID, v *int64, msgs []int64) {
		for _, m := range msgs {
			*v += m
		}
		if ctx.Superstep() >= iters {
			ctx.VoteToHalt()
			return
		}
		head := VertexID(uint64(id) / k * k)
		if id == head {
			for j := uint64(1); j < k; j++ {
				ctx.Send(head+VertexID(j), *v%1000+1)
			}
		} else {
			ctx.Send(head, *v%1000+1)
		}
	}
}

func buildHubGraph(cfg Config, n int) *Graph[int64, int64] {
	g := NewGraph[int64, int64](cfg)
	for i := 0; i < n; i++ {
		g.AddVertex(VertexID(i), int64(i)+1)
	}
	return g
}

func collectHub(g *Graph[int64, int64]) map[VertexID]int64 {
	out := map[VertexID]int64{}
	g.ForEach(func(id VertexID, v *int64) { out[id] = *v })
	return out
}

// TestRepartitionPolicyValidation: nonsensical policies are rejected at
// Run time, and defaults normalize the way the docs promise.
func TestRepartitionPolicyValidation(t *testing.T) {
	for _, pol := range []RepartitionPolicy{
		{Every: 0},
		{Every: -2},
		{Every: 3, Window: -1},
		{Every: 3, MaxMoves: -5},
	} {
		if err := (Config{Workers: 2, Repartition: &pol}).Validate(); err == nil {
			t.Errorf("policy %+v: expected a validation error", pol)
		}
	}
	// A broken cadence slips past Validate-skipping callers; Run must still
	// refuse it instead of dividing by zero in the window gate.
	for _, every := range []int{0, -2} {
		g := buildHubGraph(Config{Workers: 2, Repartition: &RepartitionPolicy{Every: every}}, 8)
		if _, err := g.Run(hubCompute(8, 4, 2)); err == nil {
			t.Errorf("Every=%d: expected a run error", every)
		}
	}
	p := RepartitionPolicy{Every: 3}.withDefaults()
	if p.Window != 3 || p.MaxMoves != DefaultMaxMoves {
		t.Errorf("withDefaults(Every:3) = %+v, want Window=3 MaxMoves=%d", p, DefaultMaxMoves)
	}
	if p := (RepartitionPolicy{Every: 2, Window: 9}).withDefaults(); p.Window != 2 {
		t.Errorf("Window above Every not clamped: %+v", p)
	}
}

// TestAdaptiveMatchesStaticMatrix is the placement-invariance contract for
// live migration: the same job with Repartition enabled — migrations
// actually committing — produces vertex values and run counters identical
// to the static run, across worker counts, Parallel/Overlap modes and the
// loopback and wire transports.
func TestAdaptiveMatchesStaticMatrix(t *testing.T) {
	const n, iters = 96, 11
	modes := []struct {
		name              string
		parallel, overlap bool
	}{{"seq", false, false}, {"par", true, false}, {"overlap", true, true}}
	for _, workers := range []int{1, 4, 7} {
		for _, mode := range modes {
			for _, wire := range []bool{false, true} {
				name := fmt.Sprintf("w%d-%s-wire%v", workers, mode.name, wire)
				t.Run(name, func(t *testing.T) {
					mkTx := func() transport.Transport {
						if wire {
							return transport.NewMemWire(workers)
						}
						return nil
					}
					static := buildPRGraph(Config{Workers: workers, Parallel: mode.parallel, Overlap: mode.overlap, Transport: mkTx()}, n)
					staticStats, err := static.Run(pageRankish(n, iters), WithName("adaptcheck"))
					if err != nil {
						t.Fatal(err)
					}
					want := collectPR(static)

					g := buildPRGraph(Config{
						Workers:     workers,
						Parallel:    mode.parallel,
						Overlap:     mode.overlap,
						Transport:   mkTx(),
						Repartition: &RepartitionPolicy{Every: 2, MaxMoves: 256},
					}, n)
					stats, err := g.Run(pageRankish(n, iters), WithName("adaptcheck"))
					if err != nil {
						t.Fatal(err)
					}
					if got := collectPR(g); !reflect.DeepEqual(got, want) {
						t.Error("adaptive run's vertex values differ from the static run")
					}
					sameRunStats(t, "adaptive", staticStats, stats)
					if workers > 1 && stats.MigratedVertices == 0 {
						t.Error("adaptive run migrated nothing; the matrix is not exercising migration")
					}
					if workers == 1 && stats.Migrations != 0 {
						t.Errorf("single-worker run reported %d migrations", stats.Migrations)
					}
				})
			}
		}
	}
}

// TestAdaptiveReducesRemoteTraffic is the payoff claim: on the hub
// workload, hash placement plus adaptive migration must deliver the same
// answer as static hash with a strictly smaller remote-message share.
func TestAdaptiveReducesRemoteTraffic(t *testing.T) {
	const n, iters = 120, 12
	static := buildHubGraph(Config{Workers: 4}, n)
	staticStats, err := static.Run(hubCompute(n, 8, iters), WithName("hub"))
	if err != nil {
		t.Fatal(err)
	}
	want := collectHub(static)

	g := buildHubGraph(Config{
		Workers:     4,
		Repartition: &RepartitionPolicy{Every: 2, MaxMoves: 1000},
	}, n)
	stats, err := g.Run(hubCompute(n, 8, iters), WithName("hub"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(collectHub(g), want) {
		t.Fatal("adaptive hub run changed vertex values")
	}
	if stats.Migrations == 0 || stats.MigratedVertices == 0 || stats.MigrationBytes == 0 {
		t.Fatalf("expected committed migrations, got %+v", stats)
	}
	frac := func(s *Stats) float64 {
		return float64(s.RemoteMessages) / float64(s.LocalMessages+s.RemoteMessages)
	}
	sf, af := frac(staticStats), frac(stats)
	if af >= sf*0.9 {
		t.Errorf("adaptive remote fraction %.4f is not meaningfully below static %.4f", af, sf)
	}
	d, ok := g.cfg.Partitioner.(*DynamicPartitioner)
	if !ok {
		t.Fatal("Repartition did not wrap the partitioner in a DynamicPartitioner")
	}
	if d.Version() == 0 || d.Overrides() == 0 {
		t.Errorf("routing table empty after migrations: version=%d overrides=%d", d.Version(), d.Overrides())
	}
	if name := d.Name(); name != "adaptive(hash)" {
		t.Errorf("adaptive partitioner name = %q", name)
	}
}

// TestRoutingTableCodecRoundTrip: encode/decode is lossless, deterministic
// (sorted entries), empty tables encode to nothing, and damaged payloads
// surface as ErrCheckpointCorrupt.
func TestRoutingTableCodecRoundTrip(t *testing.T) {
	tab := &routingTable{version: 7, workers: 5, moved: map[VertexID]int32{
		3: 4, 900: 0, 17: 2, 1 << 40: 3, 18: 1,
	}}
	enc := appendRoutingTable(nil, tab)
	if len(enc) == 0 {
		t.Fatal("non-empty table encoded to nothing")
	}
	if enc2 := appendRoutingTable(nil, tab); !reflect.DeepEqual(enc, enc2) {
		t.Error("routing table encoding is not deterministic")
	}
	got, err := decodeRoutingTable(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.version != tab.version || got.workers != tab.workers || !reflect.DeepEqual(got.moved, tab.moved) {
		t.Errorf("round trip mismatch: got %+v want %+v", got, tab)
	}

	if b := appendRoutingTable(nil, nil); b != nil {
		t.Errorf("nil table encoded %d bytes", len(b))
	}
	if b := appendRoutingTable(nil, &routingTable{version: 3, workers: 2, moved: map[VertexID]int32{}}); b != nil {
		t.Errorf("empty table encoded %d bytes", len(b))
	}
	if got, err := decodeRoutingTable(nil); err != nil || got != nil {
		t.Errorf("decode(nil) = %+v, %v", got, err)
	}

	for name, data := range map[string][]byte{
		"truncated": enc[:len(enc)-1],
		"trailing":  append(append([]byte{}, enc...), 0),
		"badworker": AppendUvarint(AppendUvarint(AppendUvarint(nil, 1), 2), 1e6),
	} {
		if _, err := decodeRoutingTable(data); err == nil {
			t.Errorf("%s payload decoded without error", name)
		}
	}
}

// FuzzRoutingTableCodec: arbitrary bytes either fail to decode or decode
// to a table that re-encodes canonically and round-trips.
func FuzzRoutingTableCodec(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(appendRoutingTable(nil, &routingTable{version: 2, workers: 3, moved: map[VertexID]int32{5: 1, 9: 2}}))
	f.Add([]byte{1, 4, 2, 0, 1, 3, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		tab, err := decodeRoutingTable(data)
		if err != nil {
			return
		}
		enc := appendRoutingTable(nil, tab)
		got, err := decodeRoutingTable(enc)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		if tab == nil {
			if got != nil {
				t.Fatal("nil table re-decoded non-nil")
			}
			return
		}
		if got.version != tab.version || got.workers != tab.workers || !reflect.DeepEqual(got.moved, tab.moved) {
			t.Fatalf("canonical round trip diverged: %+v vs %+v", got, tab)
		}
	})
}

// TestMigrationCrashMatrix kills each worker's depot at each superstep of
// an adaptive wire run — including the migration decision boundaries,
// where the first lane fetched at the trigger step is a migration payload,
// so the loss lands mid-transfer — and every recovery must replay to the
// unfailed adaptive run's exact values and counters.
func TestMigrationCrashMatrix(t *testing.T) {
	const n, iters = 120, 9
	pol := &RepartitionPolicy{Every: 2, MaxMoves: 1000}
	base := buildHubGraph(Config{Workers: 4, Transport: transport.NewMemWire(4), Repartition: pol}, n)
	baseStats, err := base.Run(hubCompute(n, 8, iters), WithName("migcrash"))
	if err != nil {
		t.Fatal(err)
	}
	if baseStats.MigratedVertices == 0 {
		t.Fatal("baseline adaptive run migrated nothing; the crash matrix would not cover migration")
	}
	want := collectHub(base)

	for trigger := 2; trigger <= 6; trigger++ {
		for victim := 0; victim < 4; victim++ {
			t.Run(fmt.Sprintf("step%d-victim%d", trigger, victim), func(t *testing.T) {
				tx := &droppingTransport{
					MemWire:     transport.NewMemWire(4),
					triggerStep: trigger,
					victim:      victim,
				}
				g := buildHubGraph(Config{
					Workers:         4,
					Transport:       tx,
					Repartition:     pol,
					CheckpointEvery: 3,
				}, n)
				stats, err := g.Run(hubCompute(n, 8, iters), WithName("migcrash"))
				if err != nil {
					t.Fatal(err)
				}
				if stats.Recoveries != 1 {
					t.Fatalf("expected 1 recovery, got %d", stats.Recoveries)
				}
				if !reflect.DeepEqual(collectHub(g), want) {
					t.Error("recovered adaptive run diverged from the unfailed run")
				}
				sameRunStats(t, "recovered", baseStats, stats)
				if stats.MigratedVertices == 0 {
					t.Error("recovered run reports no migrated vertices")
				}
			})
		}
	}
}

// TestAdaptiveFaultInjectionMatchesStatic runs the injected-crash path
// (FaultPlan, loopback shuffle) under migration: rollback must restore the
// pre-migration routing table from the checkpoint and deterministically
// replay the same migration decisions, landing on the static answer.
func TestAdaptiveFaultInjectionMatchesStatic(t *testing.T) {
	const n, iters = 120, 9
	static := buildHubGraph(Config{Workers: 4}, n)
	if _, err := static.Run(hubCompute(n, 8, iters), WithName("migfault")); err != nil {
		t.Fatal(err)
	}
	want := collectHub(static)

	for failAt := 1; failAt <= 6; failAt++ {
		g := buildHubGraph(Config{
			Workers:         4,
			CheckpointEvery: 3,
			Repartition:     &RepartitionPolicy{Every: 2, MaxMoves: 1000},
			Faults:          NewFaultPlan(Fault{Round: failAt, Worker: failAt % 4}),
		}, n)
		stats, err := g.Run(hubCompute(n, 8, iters), WithName("migfault"))
		if err != nil {
			t.Fatalf("fail@%d: %v", failAt, err)
		}
		if stats.Recoveries != 1 {
			t.Fatalf("fail@%d: %d recoveries, want 1", failAt, stats.Recoveries)
		}
		if !reflect.DeepEqual(collectHub(g), want) {
			t.Errorf("fail@%d: recovered adaptive values differ from static run", failAt)
		}
	}
}

// TestAdaptiveResumeRestoresRouting simulates coordinator death and
// restart: an adaptive run checkpoints to disk (PPCK v5 carries the
// routing table), a second process resumes, and the restored run must
// fast-forward with placement — the routing-table overrides — intact,
// finishing with the same values and migration counters.
func TestAdaptiveResumeRestoresRouting(t *testing.T) {
	const n, iters = 120, 9
	dir := t.TempDir()
	pol := &RepartitionPolicy{Every: 2, MaxMoves: 1000}

	store1, err := NewDirCheckpointer(dir)
	if err != nil {
		t.Fatal(err)
	}
	g1 := buildHubGraph(Config{Workers: 4, CheckpointEvery: 3, Checkpointer: store1, Repartition: pol}, n)
	stats1, err := g1.Run(hubCompute(n, 8, iters), WithName("migresume"))
	if err != nil {
		t.Fatal(err)
	}
	if stats1.MigratedVertices == 0 {
		t.Fatal("original run migrated nothing")
	}
	want := collectHub(g1)

	store2, err := NewDirCheckpointer(dir)
	if err != nil {
		t.Fatal(err)
	}
	d2 := AsDynamic(HashPartitioner{})
	g2 := buildHubGraph(Config{
		Workers: 4, CheckpointEvery: 3, Checkpointer: store2, Resume: true,
		Partitioner: d2, Repartition: pol,
	}, n)
	stats2, err := g2.Run(hubCompute(n, 8, iters), WithName("migresume"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(collectHub(g2), want) {
		t.Error("resumed adaptive run produced different vertex values")
	}
	if d2.Overrides() == 0 || d2.Version() == 0 {
		t.Errorf("resume did not restore the routing table: version=%d overrides=%d", d2.Version(), d2.Overrides())
	}
	if stats2.Migrations != stats1.Migrations || stats2.MigratedVertices != stats1.MigratedVertices ||
		stats2.MigrationBytes != stats1.MigrationBytes {
		t.Errorf("migration counters diverged on resume: got %d/%d/%d want %d/%d/%d",
			stats2.Migrations, stats2.MigratedVertices, stats2.MigrationBytes,
			stats1.Migrations, stats1.MigratedVertices, stats1.MigrationBytes)
	}
	if matches, _ := filepath.Glob(filepath.Join(dir, "migresume@*.ckpt")); len(matches) == 0 {
		t.Error("no on-disk checkpoints for the adaptive job")
	}

	// Resuming the adaptive checkpoints under a static partitioner must
	// fail the placement-identity check by name, not scatter state.
	store3, err := NewDirCheckpointer(dir)
	if err != nil {
		t.Fatal(err)
	}
	g3 := buildHubGraph(Config{Workers: 4, CheckpointEvery: 3, Checkpointer: store3, Resume: true}, n)
	if _, err := g3.Run(hubCompute(n, 8, iters), WithName("migresume")); err == nil {
		t.Error("static resume over an adaptive checkpoint succeeded; want a partitioner mismatch error")
	} else if !strings.Contains(err.Error(), "partitioner") {
		t.Errorf("mismatch error does not mention the partitioner: %v", err)
	}
}

// TestTransportFrameSymmetry pins the counter contract: FramesSent and
// FramesRecv meter data-plane lane frames only, so for any completed run —
// static or adaptive, with migration payloads riding the same lanes — the
// two are equal.
func TestTransportFrameSymmetry(t *testing.T) {
	const n, iters = 96, 11
	for _, adaptive := range []bool{false, true} {
		tx := transport.NewMemWire(4)
		cfg := Config{Workers: 4, Transport: tx}
		if adaptive {
			cfg.Repartition = &RepartitionPolicy{Every: 2, MaxMoves: 256}
		}
		g := buildPRGraph(cfg, n)
		if _, err := g.Run(pageRankish(n, iters), WithName("framesym")); err != nil {
			t.Fatal(err)
		}
		c := tx.Counters()
		if c.FramesSent == 0 || c.FramesRecv == 0 {
			t.Fatalf("adaptive=%v: no lane frames metered: %+v", adaptive, c)
		}
		if c.FramesSent != c.FramesRecv {
			t.Errorf("adaptive=%v: frame counters asymmetric: sent %d recv %d", adaptive, c.FramesSent, c.FramesRecv)
		}
	}
}
