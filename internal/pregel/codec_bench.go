package pregel

import (
	"fmt"
	"time"
)

// CheckpointCodecStats reports the measured throughput of the v2 binary
// checkpoint codec against the v1 gob baseline on a synthetic worker
// partition, plus the size ratio of a delta checkpoint at a given dirty
// fraction. Byte counts are deterministic for fixed inputs; the MB/s
// figures and speedups are host-dependent.
type CheckpointCodecStats struct {
	Vertices int `json:"vertices"`
	Messages int `json:"messages"`

	FullBytes  int `json:"full_bytes"`
	GobBytes   int `json:"gob_bytes"`
	DeltaBytes int `json:"delta_bytes"`
	// DirtyFraction is the fraction of vertices marked dirty for the delta
	// measurement; DeltaRatio = DeltaBytes / FullBytes at that fraction.
	DirtyFraction float64 `json:"dirty_fraction"`
	DeltaRatio    float64 `json:"delta_ratio"`

	BinEncodeMBps float64 `json:"bin_encode_mbps"`
	BinDecodeMBps float64 `json:"bin_decode_mbps"`
	GobEncodeMBps float64 `json:"gob_encode_mbps"`
	GobDecodeMBps float64 `json:"gob_decode_mbps"`
	// EncodeSpeedup and DecodeSpeedup are binary-over-gob throughput
	// ratios normalized by the respective encoded sizes (ratio of per-
	// snapshot encode/decode times), so they compare codec work per
	// checkpoint, not per byte.
	EncodeSpeedup float64 `json:"encode_speedup"`
	DecodeSpeedup float64 `json:"decode_speedup"`
}

// benchWorker builds the synthetic int64-valued partition used by
// MeasureCheckpointCodec and the engine-level codec benchmarks: full-range
// IDs, mixed active/halted flags, a sprinkle of dead vertices and a ragged
// pending inbox.
func benchWorker(vertices, msgsPerVertex int) *worker[int64, int64] {
	w := &worker[int64, int64]{
		ids:    make([]VertexID, vertices),
		vals:   make([]int64, vertices),
		active: make([]bool, vertices),
		dead:   make([]bool, vertices),
		inOff:  make([]int32, vertices+1),
		inCur:  make([]int32, vertices),
	}
	for i := 0; i < vertices; i++ {
		w.ids[i] = VertexID(uint64(i)*0x9e3779b97f4a7c15 ^ 0xb5ad4eceda1ce2a9)
		w.vals[i] = int64(i)*1_000_003 - 500_000
		w.active[i] = i%3 != 0
		if i%97 == 0 {
			w.dead[i] = true
			w.nDead++
		}
		w.inOff[i+1] = w.inOff[i]
		if i%2 == 0 {
			for j := 0; j < msgsPerVertex; j++ {
				w.inArena = append(w.inArena, int64(i+j)*31)
				w.inOff[i+1]++
			}
		}
	}
	return w
}

// timeOp runs fn until ~25ms of wall time has accumulated and returns the
// mean ns per call.
func timeOp(fn func()) float64 {
	fn() // warm-up (and gob type registration)
	total, calls := time.Duration(0), 0
	for total < 25*time.Millisecond {
		start := time.Now()
		fn()
		total += time.Since(start)
		calls++
	}
	return float64(total.Nanoseconds()) / float64(calls)
}

// MeasureCheckpointCodec times full-snapshot encode and decode through both
// worker-section codecs (v2 binary and the gob fallback) and sizes a delta
// checkpoint at the given dirty fraction. It exists for the benchmark
// artifact emitter; correctness of the codecs is pinned by the engine's
// test suite, not here.
func MeasureCheckpointCodec(vertices, msgsPerVertex int, dirtyFrac float64) (CheckpointCodecStats, error) {
	w := benchWorker(vertices, msgsPerVertex)

	binBlob, err := encodeWorkerFull(w, true)
	if err != nil {
		return CheckpointCodecStats{}, err
	}
	gobBlob, err := encodeWorkerFull(w, false)
	if err != nil {
		return CheckpointCodecStats{}, err
	}

	w.dirty = make([]bool, vertices)
	dirtyEvery := vertices
	if dirtyFrac > 0 {
		dirtyEvery = int(1 / dirtyFrac)
		if dirtyEvery < 1 {
			dirtyEvery = 1
		}
	}
	for i := 0; i < vertices; i += dirtyEvery {
		w.dirty[i] = true
	}
	deltaBlob := encodeWorkerDelta(w)

	st := CheckpointCodecStats{
		Vertices: vertices, Messages: len(w.inArena),
		FullBytes: len(binBlob), GobBytes: len(gobBlob), DeltaBytes: len(deltaBlob),
		DirtyFraction: dirtyFrac,
		DeltaRatio:    float64(len(deltaBlob)) / float64(len(binBlob)),
	}

	binEnc := timeOp(func() {
		if _, err := encodeWorkerFull(w, true); err != nil {
			panic(err)
		}
	})
	gobEnc := timeOp(func() {
		if _, err := encodeWorkerFull(w, false); err != nil {
			panic(err)
		}
	})
	binDec := timeOp(func() {
		if _, err := decodeWorkerSection[int64, int64](binBlob); err != nil {
			panic(err)
		}
	})
	gobDec := timeOp(func() {
		if _, err := decodeWorkerSection[int64, int64](gobBlob); err != nil {
			panic(err)
		}
	})
	if binEnc <= 0 || gobEnc <= 0 || binDec <= 0 || gobDec <= 0 {
		return st, fmt.Errorf("pregel: codec measurement produced a non-positive timing")
	}
	mbps := func(bytes int, nsPerOp float64) float64 {
		return float64(bytes) / nsPerOp * 1e9 / (1 << 20)
	}
	st.BinEncodeMBps = mbps(len(binBlob), binEnc)
	st.BinDecodeMBps = mbps(len(binBlob), binDec)
	st.GobEncodeMBps = mbps(len(gobBlob), gobEnc)
	st.GobDecodeMBps = mbps(len(gobBlob), gobDec)
	st.EncodeSpeedup = gobEnc / binEnc
	st.DecodeSpeedup = gobDec / binDec
	return st, nil
}
