package pregel

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"ppaassembler/internal/telemetry"
)

// Checkpointer persists superstep checkpoints, the engine's Pregel-style
// fault-tolerance mechanism: every Config.CheckpointEvery supersteps each
// worker snapshots its partition — vertex values, halted flags, the pending
// inbox arena — together with the aggregator state and run counters, and on
// a (simulated or real) worker failure the run rolls back to the latest
// checkpoint and replays. Because the engine is deterministic, the replayed
// run is bit-identical to an unfailed one.
//
// Job keys are reserved with NextJob in run-start order; a deterministic
// pipeline therefore re-acquires the same keys when re-executed, which is
// what lets a killed process resume from an on-disk store (Config.Resume).
//
// Implementations must be safe for concurrent use: independent graphs may
// share one store.
type Checkpointer interface {
	// NextJob reserves the next job key for a run labeled name.
	NextJob(name string) string
	// Save durably records the checkpoint for the given job and superstep,
	// replacing any earlier checkpoint of the same job.
	Save(job string, step int, data []byte) error
	// Latest returns the most recent checkpoint saved for job, or ok=false
	// when none exists.
	Latest(job string) (step int, data []byte, ok bool, err error)
}

// DeltaCheckpointer is an optional Checkpointer extension for incremental
// checkpoints (Config.DeltaCheckpoints): a delta records only the vertices
// dirtied since the preceding save and is only restorable together with the
// full snapshot it chains from. Stores that don't implement it silently get
// full snapshots on every save. Both built-in stores implement it.
type DeltaCheckpointer interface {
	Checkpointer
	// SaveDelta records an incremental checkpoint for job at step without
	// superseding the preceding full checkpoint or earlier deltas. A later
	// Save (full) supersedes the whole chain.
	SaveDelta(job string, step int, data []byte) error
	// Chain returns the newest full checkpoint plus every delta saved
	// after it, in ascending step order; ok=false when no full checkpoint
	// exists. Latest, by contrast, returns only the newest full snapshot
	// (the newest blob restorable on its own).
	Chain(job string) (steps []int, blobs [][]byte, ok bool, err error)
}

// legacyProber is an optional store hook used by Resume to tell "no
// previous process ran" apart from "a pre-workflow binary left checkpoints
// under the legacy key format": findLegacyJob reports a stored artifact
// whose key starts with the bare (unprefixed) job base — the `name@seq`
// format used before per-op plan prefixes — so the engine can fail loudly
// instead of silently recomputing from scratch.
type legacyProber interface {
	findLegacyJob(base string) (string, bool)
}

// jobTracker is the engine-side guard against checkpoint-key collisions: a
// store that implements it records every key an actual run reserved, and a
// second reservation of the same key within the same store instance fails
// the run loudly. Two jobs silently sharing a key would overwrite each
// other's checkpoints and corrupt Resume, so the built-in stores both
// implement it; custom Checkpointer implementations opt in by embedding
// one of them.
type jobTracker interface {
	trackJob(job string) error
}

// jobSet is the shared reservation registry of the built-in stores.
type jobSet struct {
	mu       sync.Mutex
	reserved map[string]bool
}

func (s *jobSet) trackJob(job string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.reserved == nil {
		s.reserved = map[string]bool{}
	}
	if s.reserved[job] {
		return fmt.Errorf("pregel: job key %q reserved twice in one run; duplicate keys would overwrite each other's checkpoints and corrupt Resume (is the store's NextJob not unique?)", job)
	}
	s.reserved[job] = true
	return nil
}

// MemCheckpointer keeps checkpoints in process memory: the natural store
// for simulated-failure experiments and tests, where recovery happens
// within one process.
type MemCheckpointer struct {
	jobSet
	mu     sync.Mutex
	seq    int
	data   map[string]memCkpt
	deltas map[string][]memCkpt
}

type memCkpt struct {
	step int
	blob []byte
}

// NewMemCheckpointer returns an empty in-memory store.
func NewMemCheckpointer() *MemCheckpointer {
	return &MemCheckpointer{data: map[string]memCkpt{}, deltas: map[string][]memCkpt{}}
}

// NextJob implements Checkpointer.
func (m *MemCheckpointer) NextJob(name string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	job := jobKey(name, m.seq)
	m.seq++
	return job
}

// Save implements Checkpointer. A full save supersedes the job's previous
// snapshot and any delta chain hanging off it.
func (m *MemCheckpointer) Save(job string, step int, data []byte) error {
	blob := append([]byte(nil), data...)
	m.mu.Lock()
	m.data[job] = memCkpt{step: step, blob: blob}
	if m.deltas != nil {
		delete(m.deltas, job)
	}
	m.mu.Unlock()
	return nil
}

// SaveDelta implements DeltaCheckpointer.
func (m *MemCheckpointer) SaveDelta(job string, step int, data []byte) error {
	blob := append([]byte(nil), data...)
	m.mu.Lock()
	if m.deltas == nil {
		m.deltas = map[string][]memCkpt{}
	}
	m.deltas[job] = append(m.deltas[job], memCkpt{step: step, blob: blob})
	m.mu.Unlock()
	return nil
}

// Latest implements Checkpointer: the newest blob restorable on its own,
// i.e. the newest full snapshot.
func (m *MemCheckpointer) Latest(job string) (int, []byte, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.data[job]
	if !ok {
		return 0, nil, false, nil
	}
	return c.step, c.blob, true, nil
}

// Chain implements DeltaCheckpointer.
func (m *MemCheckpointer) Chain(job string) ([]int, [][]byte, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.data[job]
	if !ok {
		return nil, nil, false, nil
	}
	steps := []int{c.step}
	blobs := [][]byte{c.blob}
	for _, d := range m.deltas[job] {
		if d.step > c.step {
			steps = append(steps, d.step)
			blobs = append(blobs, d.blob)
		}
	}
	return steps, blobs, true, nil
}

// DirCheckpointer persists checkpoints as files under one directory
// (standing in for the distributed file system of the paper's cluster), so
// a killed pipeline process can be restarted with Config.Resume and fast-
// forward each job from its last completed checkpoint. Files are written to
// a temporary name and renamed, so a crash mid-write never corrupts the
// previous checkpoint.
type DirCheckpointer struct {
	jobSet
	dir  string
	mu   sync.Mutex
	seq  int
	last map[string]int // step of the newest full file written per job this process
	// deltasOf tracks the delta steps written since the last full save per
	// job this process, so a full save can delete the superseded chain
	// without a directory scan.
	deltasOf map[string][]int
}

// NewDirCheckpointer creates (if needed) and opens a checkpoint directory.
func NewDirCheckpointer(dir string) (*DirCheckpointer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("pregel: checkpoint dir: %w", err)
	}
	return &DirCheckpointer{dir: dir, last: map[string]int{}, deltasOf: map[string][]int{}}, nil
}

// NextJob implements Checkpointer. The sequence restarts at zero in every
// process; deterministic pipelines re-reserve identical keys on a rerun,
// which is what Resume relies on.
func (d *DirCheckpointer) NextJob(name string) string {
	d.mu.Lock()
	defer d.mu.Unlock()
	job := jobKey(name, d.seq)
	d.seq++
	return job
}

func (d *DirCheckpointer) path(job string, step int) string {
	return filepath.Join(d.dir, fmt.Sprintf("%s.%08d.ckpt", job, step))
}

// dpath is the delta-checkpoint file name: same shape as path with a
// .dckpt extension, so full and incremental files sort and scan together
// but never collide.
func (d *DirCheckpointer) dpath(job string, step int) string {
	return filepath.Join(d.dir, fmt.Sprintf("%s.%08d.dckpt", job, step))
}

func (d *DirCheckpointer) write(final string, data []byte) error {
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("pregel: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("pregel: committing checkpoint: %w", err)
	}
	return nil
}

// Save implements Checkpointer.
func (d *DirCheckpointer) Save(job string, step int, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.write(d.path(job, step), data); err != nil {
		return err
	}
	// Drop superseded checkpoints of the same job — the previous full file
	// and any delta chain hanging off it. After the first save of a job
	// the newest step is tracked in memory, so only that first save (which
	// may find files a previous process left behind) pays for a directory
	// scan.
	if prev, ok := d.last[job]; ok {
		if prev != step {
			os.Remove(d.path(job, prev))
		}
		for _, s := range d.deltasOf[job] {
			os.Remove(d.dpath(job, s))
		}
	} else {
		steps, dsteps, err := d.scan(job)
		if err != nil {
			return err
		}
		for _, s := range steps {
			if s != step {
				os.Remove(d.path(job, s))
			}
		}
		for _, s := range dsteps {
			os.Remove(d.dpath(job, s))
		}
	}
	d.last[job] = step
	delete(d.deltasOf, job)
	return nil
}

// SaveDelta implements DeltaCheckpointer.
func (d *DirCheckpointer) SaveDelta(job string, step int, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.write(d.dpath(job, step), data); err != nil {
		return err
	}
	d.deltasOf[job] = append(d.deltasOf[job], step)
	return nil
}

// scan lists the checkpointed superstep numbers present for job: full
// snapshots and deltas, each ascending.
func (d *DirCheckpointer) scan(job string) (steps, dsteps []int, err error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("pregel: scanning checkpoints: %w", err)
	}
	prefix := job + "."
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		num := strings.TrimPrefix(name, prefix)
		delta := false
		switch {
		case strings.HasSuffix(num, ".dckpt"):
			num, delta = strings.TrimSuffix(num, ".dckpt"), true
		case strings.HasSuffix(num, ".ckpt"):
			num = strings.TrimSuffix(num, ".ckpt")
		default:
			continue
		}
		s, err := strconv.Atoi(num)
		if err != nil {
			continue
		}
		if delta {
			dsteps = append(dsteps, s)
		} else {
			steps = append(steps, s)
		}
	}
	sort.Ints(steps)
	sort.Ints(dsteps)
	return steps, dsteps, nil
}

// Latest implements Checkpointer: the newest full snapshot.
func (d *DirCheckpointer) Latest(job string) (int, []byte, bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	steps, _, err := d.scan(job)
	if err != nil {
		return 0, nil, false, err
	}
	if len(steps) == 0 {
		return 0, nil, false, nil
	}
	step := steps[len(steps)-1]
	data, err := os.ReadFile(d.path(job, step))
	if err != nil {
		return 0, nil, false, fmt.Errorf("pregel: reading checkpoint: %w", err)
	}
	return step, data, true, nil
}

// Chain implements DeltaCheckpointer.
func (d *DirCheckpointer) Chain(job string) ([]int, [][]byte, bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	steps, dsteps, err := d.scan(job)
	if err != nil {
		return nil, nil, false, err
	}
	if len(steps) == 0 {
		return nil, nil, false, nil
	}
	full := steps[len(steps)-1]
	outSteps := []int{full}
	for _, s := range dsteps {
		if s > full {
			outSteps = append(outSteps, s)
		}
	}
	blobs := make([][]byte, len(outSteps))
	for i, s := range outSteps {
		p := d.path(job, s)
		if i > 0 {
			p = d.dpath(job, s)
		}
		if blobs[i], err = os.ReadFile(p); err != nil {
			return nil, nil, false, fmt.Errorf("pregel: reading checkpoint: %w", err)
		}
	}
	return outSteps, blobs, true, nil
}

// findLegacyJob implements legacyProber: it scans the directory for any
// checkpoint file whose name starts with `base@` — the pre-workflow key
// format `name@seq`, with no plan prefix — and returns the first such file
// name. Current keys always start with the op's plan prefix (e.g.
// "s03.tiptrim.name@seq"), so the two shapes cannot collide.
func (d *DirCheckpointer) findLegacyJob(base string) (string, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return "", false
	}
	prefix := base + "@"
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, prefix) &&
			(strings.HasSuffix(name, ".ckpt") || strings.HasSuffix(name, ".dckpt")) {
			return name, true
		}
	}
	return "", false
}

// jobKey builds the stable per-run key: the run name (or "run") plus the
// store-wide reservation sequence, sanitized for use as a file name.
func jobKey(name string, seq int) string {
	return fmt.Sprintf("%s@%03d", sanitizeJobName(name), seq)
}

// sanitizeJobName is the file-name-safe form of a run name, shared by
// jobKey and the legacy-format probe (which must sanitize the bare name
// exactly as an old binary's jobKey would have).
func sanitizeJobName(name string) string {
	if name == "" {
		name = "run"
	}
	clean := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
			clean = append(clean, c)
		default:
			clean = append(clean, '_')
		}
	}
	return string(clean)
}

// ckptWorker is the serialized partition of one worker: everything runWorker
// and deliverTo need to replay from this point. V and M must be gob-
// encodable (exported fields, or GobEncoder/BinaryMarshaler implementations
// such as dna.Seq's).
type ckptWorker[V, M any] struct {
	IDs    []VertexID
	Vals   []V
	Active []bool
	Dead   []bool
	NDead  int
	// InArena/InOff are the pending inbox: messages delivered at the
	// checkpoint barrier but not yet consumed.
	InArena []M
	InOff   []int32
}

// aggSnapshot is the serialized aggregator state at a superstep boundary
// (the just-published values; in-progress accumulators are always empty at
// a barrier).
type aggSnapshot struct {
	Sum map[string]int64
	Min map[string]int64
	Or  map[string]bool
}

// ckptFile is one whole checkpoint: run-level progress plus the per-worker
// partition blobs (each encoded separately, since on a real cluster every
// worker persists its own partition in parallel). On disk it is serialized
// by the v2 binary container codec (see codec.go); the worker blobs use
// either the binary value codec or a per-section gob fallback.
type ckptFile struct {
	Step    int
	Pending int64
	// Kind distinguishes full snapshots from delta checkpoints; PrevStep
	// is the step of the save a delta chains from (zero for full saves),
	// which lets restore validate chain linkage.
	Kind     byte
	PrevStep int
	// PartitionerName and NumWorkers identify the placement the snapshot
	// was written under. Worker partitions are restored by index, so a
	// restore under a different partitioner or worker count would scatter
	// partition-local state; loadCheckpoint rejects either mismatch with
	// an error naming the difference (the job-key and fingerprint checks
	// alone would only report a generic identity mismatch).
	PartitionerName string
	NumWorkers      int
	// Run counters at the barrier, restored on rollback so a recovered
	// run reports the same totals as an unfailed one.
	Supersteps      int
	Messages        int64
	LocalMessages   int64
	RemoteMessages  int64
	Bytes           int64
	DroppedMessages int64
	// ClockNs is the simulated clock at checkpoint time (including this
	// checkpoint's write charge); Resume fast-forwards a fresh clock to
	// it, and in-process recovery never rewinds past it.
	ClockNs float64
	// Fingerprint identifies the run that wrote the checkpoint (worker
	// layout + input vertex-ID set, see runFingerprint); a restore whose
	// run computes a different fingerprint is an error, so resuming
	// against changed input or configuration fails instead of silently
	// replaying stale state.
	Fingerprint uint64
	Agg         aggSnapshot
	Workers     [][]byte
}

// ckptRun is the per-Run checkpointing state: the reserved job key, the
// cadence, the store, and the run's identity fingerprint, plus the delta-
// checkpoint chain position.
type ckptRun struct {
	store   Checkpointer
	job     string
	name    string // bare (unprefixed) run name, for the legacy-key probe
	prefix  string // JobPrefix in effect when the key was reserved
	every   int
	fp      uint64
	part    string // Partitioner.Name() of the running graph
	workers int

	// bin: V and M both round-trip through the binary value codec.
	// delta: this run takes delta checkpoints (bin, DeltaCheckpoints set,
	// and the store implements DeltaCheckpointer).
	bin   bool
	delta bool
	// Chain position: whether a full snapshot exists, the step of the last
	// save (full or delta), and how many deltas follow the last full.
	haveFull        bool
	lastStep        int
	deltasSinceFull int
}

// newCkptRun reserves a job key when checkpointing is enabled for g, and
// returns nil otherwise. Called after sortVertices, so the fingerprint
// hashes the run's input state. Reserving a key the store already handed
// to another run is an error (see jobTracker).
func (g *Graph[V, M]) newCkptRun(name string) (*ckptRun, error) {
	if g.cfg.CheckpointEvery <= 0 {
		return nil, nil
	}
	store := g.cfg.Checkpointer
	if store == nil {
		// withDefaults installs a MemCheckpointer whenever CheckpointEvery
		// is set, so this is only reachable on a hand-built Config.
		store = NewMemCheckpointer()
		g.cfg.Checkpointer = store
	}
	job := store.NextJob(g.cfg.JobPrefix + name)
	if t, ok := store.(jobTracker); ok {
		if err := t.trackJob(job); err != nil {
			return nil, err
		}
	}
	bin := binaryCodecFor[V]() && binaryCodecFor[M]()
	delta := false
	if g.cfg.DeltaCheckpoints && bin {
		_, delta = store.(DeltaCheckpointer)
	}
	return &ckptRun{
		store:   store,
		job:     job,
		name:    name,
		prefix:  g.cfg.JobPrefix,
		every:   g.cfg.CheckpointEvery,
		fp:      g.runFingerprint(),
		part:    g.cfg.Partitioner.Name(),
		workers: g.cfg.Workers,
		bin:     bin,
		delta:   delta,
	}, nil
}

// checkLegacyKeys runs when Resume finds nothing under the run's job key:
// if the store holds an artifact under the legacy pre-workflow key format
// (bare `name@seq`, no plan prefix), resuming would otherwise silently
// recompute the whole pipeline from scratch, so fail naming both formats.
func (ck *ckptRun) checkLegacyKeys() error {
	if ck.prefix == "" {
		// This run itself reserves unprefixed keys; there is no older
		// format to probe for.
		return nil
	}
	p, ok := ck.store.(legacyProber)
	if !ok {
		return nil
	}
	base := sanitizeJobName(ck.name)
	file, found := p.findLegacyJob(base)
	if !found {
		return nil
	}
	return fmt.Errorf("pregel: Resume found no checkpoint under job key %q, but the store contains %q, which uses the legacy job-key format %q (name@seq, written by an older binary without workflow plan prefixes); this binary reserves keys as %q (planprefix.name@seq), so the old checkpoints can never match and resuming would silently recompute from scratch — rerun with the binary that wrote the checkpoint directory, or delete it to start fresh", ck.job, file, base+"@NNN", ck.prefix+"name@NNN")
}

// runFingerprint hashes the run's identity — worker layout plus the input
// vertex-ID set — FNV-1a style. Checkpoints carry it so a restore into a
// run with different input or configuration is rejected.
func (g *Graph[V, M]) runFingerprint() uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(g.cfg.Workers))
	mix(uint64(g.cfg.MessageBytes))
	for _, w := range g.workers {
		mix(uint64(len(w.ids)))
		for _, id := range w.ids {
			mix(uint64(id))
		}
	}
	return h
}

// saveCheckpoint snapshots the graph at a superstep boundary, charges the
// write to the simulated clock, and hands the blob to the store. Workers
// encode their partitions concurrently in Parallel mode, mirroring the
// compute/deliver phases. When the run takes delta checkpoints, saves
// after the first snapshot encode only the dirtied vertices, up to
// maxDeltaChain deltas (or a mostly-dirty graph) before the next full.
func (g *Graph[V, M]) saveCheckpoint(ck *ckptRun, step int, pending int64, stats *Stats) error {
	wall0 := nowNs()
	if g.cfg.Tracer != nil {
		g.emit(telemetry.KindBegin, "checkpoint.save", "checkpoint", wall0, g.clock.Ns(),
			telemetry.I("step", int64(step)))
	}
	useDelta := ck.delta && ck.haveFull && ck.deltasSinceFull < maxDeltaChain
	if useDelta {
		// A delta of a mostly-dirty graph costs more than a full snapshot
		// (per-entry index and flags overhead); fall back to full. The
		// dirty pattern is deterministic, so so is this decision.
		total, dirty := 0, 0
		for _, w := range g.workers {
			total += len(w.ids)
			for _, d := range w.dirty {
				if d {
					dirty++
				}
			}
		}
		if 4*dirty >= 3*total {
			useDelta = false
		}
	}
	blobs := make([][]byte, g.cfg.Workers)
	errs := make([]error, g.cfg.Workers)
	forEachWorkerProf(g.cfg.Workers, g.cfg.Parallel, g.runName, "checkpoint", func(wi int) {
		if useDelta {
			blobs[wi] = encodeWorkerDelta(g.workers[wi])
			return
		}
		blobs[wi], errs[wi] = encodeWorkerFull(g.workers[wi], ck.bin)
	})
	maxBytes, totalBytes := 0.0, int64(0)
	for wi, err := range errs {
		if err != nil {
			return fmt.Errorf("pregel: encoding checkpoint (job %q, worker %d): %w", ck.job, wi, err)
		}
		totalBytes += int64(len(blobs[wi]))
		if b := float64(len(blobs[wi])); b > maxBytes {
			maxBytes = b
		}
	}
	// Charge the write before stamping ClockNs so a resumed run starts at
	// the post-write time and never under-reports.
	g.clock.ChargeCheckpoint(maxBytes)
	kind := ckptKindFull
	if useDelta {
		kind = ckptKindDelta
	}
	file := ckptFile{
		Step:            step,
		Pending:         pending,
		Kind:            kind,
		PrevStep:        ck.lastStep,
		PartitionerName: ck.part,
		NumWorkers:      ck.workers,
		Supersteps:      stats.Supersteps,
		Messages:        stats.Messages,
		LocalMessages:   stats.LocalMessages,
		RemoteMessages:  stats.RemoteMessages,
		Bytes:           stats.Bytes,
		DroppedMessages: stats.DroppedMessages,
		ClockNs:         g.clock.ns,
		Fingerprint:     ck.fp,
		Agg:             g.agg.snapshot(),
		Workers:         blobs,
	}
	data := encodeCkptFile(&file)
	if useDelta {
		if err := ck.store.(DeltaCheckpointer).SaveDelta(ck.job, step, data); err != nil {
			return err
		}
		ck.deltasSinceFull++
		stats.CheckpointDeltaSaves++
		if g.cfg.Metrics != nil {
			g.cfg.Metrics.Counter("pregel_checkpoint_delta_saves_total").Add(1)
		}
	} else {
		if err := ck.store.Save(ck.job, step, data); err != nil {
			return err
		}
		ck.haveFull = true
		ck.deltasSinceFull = 0
	}
	ck.lastStep = step
	// Everything up to this barrier is now captured; dirty tracking
	// restarts for the next save.
	for _, w := range g.workers {
		if w.dirty != nil {
			clear(w.dirty)
		}
	}
	stats.CheckpointSaves++
	stats.CheckpointBytesWritten += totalBytes
	g.clock.CountCheckpointSave(totalBytes)
	if g.cfg.Metrics != nil {
		g.cfg.Metrics.Counter("pregel_checkpoint_saves_total").Add(1)
		g.cfg.Metrics.Counter("pregel_checkpoint_bytes_written_total").Add(totalBytes)
	}
	if g.cfg.Tracer != nil {
		g.emit(telemetry.KindEnd, "checkpoint.save", "checkpoint", nowNs(), g.clock.Ns(),
			telemetry.I("step", int64(step)), telemetry.I("bytes", totalBytes))
	}
	return nil
}

// ckptChain is a decoded, restorable checkpoint: the newest full snapshot
// plus every delta saved after it, in ascending step order. Non-delta runs
// always carry an empty deltas slice.
type ckptChain struct {
	full   *ckptFile
	deltas []*ckptFile
}

// tip is the chain's newest save — the barrier a restore resumes at.
func (c *ckptChain) tip() *ckptFile {
	if n := len(c.deltas); n > 0 {
		return c.deltas[n-1]
	}
	return c.full
}

// loadCheckpoint fetches and decodes the latest checkpoint (chain) for the
// run, verifying that it was written by a run with the same identity and
// that the delta chain is unbroken.
func (ck *ckptRun) loadCheckpoint() (*ckptChain, bool, error) {
	var blobs [][]byte
	var ok bool
	var err error
	if ck.delta {
		_, blobs, ok, err = ck.store.(DeltaCheckpointer).Chain(ck.job)
	} else {
		var data []byte
		_, data, ok, err = ck.store.Latest(ck.job)
		blobs = [][]byte{data}
	}
	if err != nil || !ok {
		return nil, ok, err
	}
	chain := &ckptChain{}
	for i, data := range blobs {
		file, err := decodeCkptFile(ck.job, data)
		if err != nil {
			return nil, false, err
		}
		// Placement guards run before the generic fingerprint check so a
		// partitioner or worker-count change is reported as exactly that.
		if file.PartitionerName != ck.part {
			return nil, false, fmt.Errorf("pregel: checkpoint for job %q was written under partitioner %q, but this run places vertices with %q; restoring would scatter partition-local state — rerun with the original partitioner or delete the checkpoint directory to start fresh", ck.job, file.PartitionerName, ck.part)
		}
		if file.NumWorkers != ck.workers {
			return nil, false, fmt.Errorf("pregel: checkpoint for job %q was written with %d workers, but this run has %d; rerun with the original worker count or delete the checkpoint directory to start fresh", ck.job, file.NumWorkers, ck.workers)
		}
		if file.Fingerprint != ck.fp {
			return nil, false, fmt.Errorf("pregel: checkpoint for job %q was written by a different run (input or configuration changed); delete the checkpoint directory to start fresh", ck.job)
		}
		if i == 0 {
			if file.Kind != ckptKindFull {
				return nil, false, fmt.Errorf("pregel: checkpoint chain for job %q starts with a delta at step %d; the full snapshot it chains from is missing — delete the checkpoint directory to start fresh", ck.job, file.Step)
			}
			chain.full = file
			continue
		}
		prev := chain.tip()
		if file.Kind != ckptKindDelta || file.PrevStep != prev.Step || file.Step <= prev.Step {
			return nil, false, fmt.Errorf("pregel: delta checkpoint at step %d for job %q chains from step %d, but the preceding save in the chain is step %d; the chain is broken — delete the checkpoint directory to start fresh", file.Step, ck.job, file.PrevStep, prev.Step)
		}
		chain.deltas = append(chain.deltas, file)
	}
	// Resync the chain position so post-restore saves extend (or supersede)
	// what the store already holds.
	ck.haveFull = true
	ck.lastStep = chain.tip().Step
	ck.deltasSinceFull = len(chain.deltas)
	return chain, true, nil
}

// restoreCheckpoint replaces the graph's in-run state with the chain's
// state: the full snapshot with every delta folded in, aggregator values,
// and the run counters inside stats (all run-level state comes from the
// chain tip). It charges the recovery read to the clock — which, like real
// time, only moves forward — and returns the superstep to resume at plus
// the pending-message count at that barrier.
func (g *Graph[V, M]) restoreCheckpoint(chain *ckptChain, stats *Stats) (step int, pending int64, err error) {
	full, tip := chain.full, chain.tip()
	if len(full.Workers) != g.cfg.Workers {
		return 0, 0, fmt.Errorf("pregel: checkpoint has %d workers, graph has %d", len(full.Workers), g.cfg.Workers)
	}
	for _, d := range chain.deltas {
		if len(d.Workers) != g.cfg.Workers {
			return 0, 0, fmt.Errorf("pregel: delta checkpoint at step %d has %d workers, graph has %d", d.Step, len(d.Workers), g.cfg.Workers)
		}
	}
	wall0 := nowNs()
	if g.cfg.Tracer != nil {
		g.emit(telemetry.KindBegin, "checkpoint.restore", "checkpoint", wall0, g.clock.Ns(),
			telemetry.I("step", int64(tip.Step)))
	}
	errs := make([]error, g.cfg.Workers)
	// Per-worker read cost spans the whole chain: each worker replays its
	// own full section plus its slice of every delta.
	maxBytes, totalBytes := 0.0, int64(0)
	for wi := range full.Workers {
		n := int64(len(full.Workers[wi]))
		for _, d := range chain.deltas {
			n += int64(len(d.Workers[wi]))
		}
		totalBytes += n
		if b := float64(n); b > maxBytes {
			maxBytes = b
		}
	}
	forEachWorkerProf(g.cfg.Workers, g.cfg.Parallel, g.runName, "checkpoint", func(wi int) {
		cw, err := decodeWorkerSection[V, M](full.Workers[wi])
		if err != nil {
			errs[wi] = err
			return
		}
		for _, d := range chain.deltas {
			if err := applyWorkerDelta(cw, d.Workers[wi]); err != nil {
				errs[wi] = fmt.Errorf("delta at step %d: %w", d.Step, err)
				return
			}
		}
		w := g.workers[wi]
		n := len(cw.IDs)
		w.ids = cw.IDs
		w.vals = cw.Vals
		w.active = cw.Active
		w.dead = cw.Dead
		w.nDead = cw.NDead
		w.inArena = cw.InArena
		// Empty slices may decode as nil; the delivery path needs the
		// offset index to exist even for an empty partition.
		w.inOff = growInt32(cw.InOff, n+1)
		w.inCur = growInt32(w.inCur, n)
		w.idx = make(map[VertexID]int, n)
		for i, id := range w.ids {
			w.idx[id] = i
		}
		// Shuffle scratch is rebuilt by the next superstep; drop anything
		// staged after the checkpoint barrier.
		for i := range w.outbox {
			w.outbox[i] = w.outbox[i][:0]
		}
		// Dirty tracking restarts from the restored barrier.
		if w.dirty != nil {
			w.dirty = growBool(w.dirty, n)
			clear(w.dirty)
		}
	})
	for wi, err := range errs {
		if err != nil {
			return 0, 0, fmt.Errorf("pregel: decoding checkpoint (worker %d): %w", wi, err)
		}
	}
	g.agg.restore(tip.Agg)
	stats.Supersteps = tip.Supersteps
	stats.Messages = tip.Messages
	stats.LocalMessages = tip.LocalMessages
	stats.RemoteMessages = tip.RemoteMessages
	stats.Bytes = tip.Bytes
	stats.DroppedMessages = tip.DroppedMessages
	g.clock.advanceTo(tip.ClockNs)
	g.clock.ChargeRecovery(maxBytes)
	stats.CheckpointRestores++
	stats.CheckpointBytesRestored += totalBytes
	g.clock.CountCheckpointRestore(totalBytes)
	if g.cfg.Metrics != nil {
		g.cfg.Metrics.Counter("pregel_checkpoint_restores_total").Add(1)
		g.cfg.Metrics.Counter("pregel_checkpoint_bytes_restored_total").Add(totalBytes)
	}
	if g.cfg.Tracer != nil {
		g.emit(telemetry.KindEnd, "checkpoint.restore", "checkpoint", nowNs(), g.clock.Ns(),
			telemetry.I("step", int64(tip.Step)), telemetry.I("bytes", totalBytes))
	}
	return tip.Step, tip.Pending, nil
}
