package pregel

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"ppaassembler/internal/telemetry"
)

// Checkpointer persists superstep checkpoints, the engine's Pregel-style
// fault-tolerance mechanism: every Config.CheckpointEvery supersteps each
// worker snapshots its partition — vertex values, halted flags, the pending
// inbox arena — together with the aggregator state and run counters, and on
// a (simulated or real) worker failure the run rolls back to the latest
// checkpoint and replays. Because the engine is deterministic, the replayed
// run is bit-identical to an unfailed one.
//
// Job keys are reserved with NextJob in run-start order; a deterministic
// pipeline therefore re-acquires the same keys when re-executed, which is
// what lets a killed process resume from an on-disk store (Config.Resume).
//
// Implementations must be safe for concurrent use: independent graphs may
// share one store.
type Checkpointer interface {
	// NextJob reserves the next job key for a run labeled name.
	NextJob(name string) string
	// Save durably records the checkpoint for the given job and superstep,
	// replacing any earlier checkpoint of the same job.
	Save(job string, step int, data []byte) error
	// Latest returns the most recent checkpoint saved for job, or ok=false
	// when none exists.
	Latest(job string) (step int, data []byte, ok bool, err error)
}

// jobTracker is the engine-side guard against checkpoint-key collisions: a
// store that implements it records every key an actual run reserved, and a
// second reservation of the same key within the same store instance fails
// the run loudly. Two jobs silently sharing a key would overwrite each
// other's checkpoints and corrupt Resume, so the built-in stores both
// implement it; custom Checkpointer implementations opt in by embedding
// one of them.
type jobTracker interface {
	trackJob(job string) error
}

// jobSet is the shared reservation registry of the built-in stores.
type jobSet struct {
	mu       sync.Mutex
	reserved map[string]bool
}

func (s *jobSet) trackJob(job string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.reserved == nil {
		s.reserved = map[string]bool{}
	}
	if s.reserved[job] {
		return fmt.Errorf("pregel: job key %q reserved twice in one run; duplicate keys would overwrite each other's checkpoints and corrupt Resume (is the store's NextJob not unique?)", job)
	}
	s.reserved[job] = true
	return nil
}

// MemCheckpointer keeps checkpoints in process memory: the natural store
// for simulated-failure experiments and tests, where recovery happens
// within one process.
type MemCheckpointer struct {
	jobSet
	mu   sync.Mutex
	seq  int
	data map[string]memCkpt
}

type memCkpt struct {
	step int
	blob []byte
}

// NewMemCheckpointer returns an empty in-memory store.
func NewMemCheckpointer() *MemCheckpointer {
	return &MemCheckpointer{data: map[string]memCkpt{}}
}

// NextJob implements Checkpointer.
func (m *MemCheckpointer) NextJob(name string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	job := jobKey(name, m.seq)
	m.seq++
	return job
}

// Save implements Checkpointer.
func (m *MemCheckpointer) Save(job string, step int, data []byte) error {
	blob := append([]byte(nil), data...)
	m.mu.Lock()
	m.data[job] = memCkpt{step: step, blob: blob}
	m.mu.Unlock()
	return nil
}

// Latest implements Checkpointer.
func (m *MemCheckpointer) Latest(job string) (int, []byte, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.data[job]
	if !ok {
		return 0, nil, false, nil
	}
	return c.step, c.blob, true, nil
}

// DirCheckpointer persists checkpoints as files under one directory
// (standing in for the distributed file system of the paper's cluster), so
// a killed pipeline process can be restarted with Config.Resume and fast-
// forward each job from its last completed checkpoint. Files are written to
// a temporary name and renamed, so a crash mid-write never corrupts the
// previous checkpoint.
type DirCheckpointer struct {
	jobSet
	dir  string
	mu   sync.Mutex
	seq  int
	last map[string]int // step of the newest file written per job this process
}

// NewDirCheckpointer creates (if needed) and opens a checkpoint directory.
func NewDirCheckpointer(dir string) (*DirCheckpointer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("pregel: checkpoint dir: %w", err)
	}
	return &DirCheckpointer{dir: dir, last: map[string]int{}}, nil
}

// NextJob implements Checkpointer. The sequence restarts at zero in every
// process; deterministic pipelines re-reserve identical keys on a rerun,
// which is what Resume relies on.
func (d *DirCheckpointer) NextJob(name string) string {
	d.mu.Lock()
	defer d.mu.Unlock()
	job := jobKey(name, d.seq)
	d.seq++
	return job
}

func (d *DirCheckpointer) path(job string, step int) string {
	return filepath.Join(d.dir, fmt.Sprintf("%s.%08d.ckpt", job, step))
}

// Save implements Checkpointer.
func (d *DirCheckpointer) Save(job string, step int, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	final := d.path(job, step)
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("pregel: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("pregel: committing checkpoint: %w", err)
	}
	// Drop superseded checkpoints of the same job. After the first save of
	// a job the newest step is tracked in memory, so only that first save
	// (which may find files a previous process left behind) pays for a
	// directory scan.
	if prev, ok := d.last[job]; ok {
		if prev != step {
			os.Remove(d.path(job, prev))
		}
	} else {
		steps, err := d.steps(job)
		if err != nil {
			return err
		}
		for _, s := range steps {
			if s != step {
				os.Remove(d.path(job, s))
			}
		}
	}
	d.last[job] = step
	return nil
}

// steps lists the checkpointed superstep numbers present for job.
func (d *DirCheckpointer) steps(job string) ([]int, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, fmt.Errorf("pregel: scanning checkpoints: %w", err)
	}
	prefix := job + "."
	var steps []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".ckpt") {
			continue
		}
		num := strings.TrimSuffix(strings.TrimPrefix(name, prefix), ".ckpt")
		s, err := strconv.Atoi(num)
		if err != nil {
			continue
		}
		steps = append(steps, s)
	}
	sort.Ints(steps)
	return steps, nil
}

// Latest implements Checkpointer.
func (d *DirCheckpointer) Latest(job string) (int, []byte, bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	steps, err := d.steps(job)
	if err != nil {
		return 0, nil, false, err
	}
	if len(steps) == 0 {
		return 0, nil, false, nil
	}
	step := steps[len(steps)-1]
	data, err := os.ReadFile(d.path(job, step))
	if err != nil {
		return 0, nil, false, fmt.Errorf("pregel: reading checkpoint: %w", err)
	}
	return step, data, true, nil
}

// jobKey builds the stable per-run key: the run name (or "run") plus the
// store-wide reservation sequence, sanitized for use as a file name.
func jobKey(name string, seq int) string {
	if name == "" {
		name = "run"
	}
	clean := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
			clean = append(clean, c)
		default:
			clean = append(clean, '_')
		}
	}
	return fmt.Sprintf("%s@%03d", clean, seq)
}

// ckptWorker is the serialized partition of one worker: everything runWorker
// and deliverTo need to replay from this point. V and M must be gob-
// encodable (exported fields, or GobEncoder/BinaryMarshaler implementations
// such as dna.Seq's).
type ckptWorker[V, M any] struct {
	IDs    []VertexID
	Vals   []V
	Active []bool
	Dead   []bool
	NDead  int
	// InArena/InOff are the pending inbox: messages delivered at the
	// checkpoint barrier but not yet consumed.
	InArena []M
	InOff   []int32
}

// aggSnapshot is the serialized aggregator state at a superstep boundary
// (the just-published values; in-progress accumulators are always empty at
// a barrier).
type aggSnapshot struct {
	Sum map[string]int64
	Min map[string]int64
	Or  map[string]bool
}

// ckptFile is one whole checkpoint: run-level progress plus the per-worker
// partition blobs (each encoded separately, since on a real cluster every
// worker persists its own partition in parallel).
type ckptFile struct {
	Step    int
	Pending int64
	// PartitionerName and NumWorkers identify the placement the snapshot
	// was written under. Worker partitions are restored by index, so a
	// restore under a different partitioner or worker count would scatter
	// partition-local state; loadCheckpoint rejects either mismatch with
	// an error naming the difference (the job-key and fingerprint checks
	// alone would only report a generic identity mismatch).
	PartitionerName string
	NumWorkers      int
	// Run counters at the barrier, restored on rollback so a recovered
	// run reports the same totals as an unfailed one.
	Supersteps      int
	Messages        int64
	LocalMessages   int64
	RemoteMessages  int64
	Bytes           int64
	DroppedMessages int64
	// ClockNs is the simulated clock at checkpoint time (including this
	// checkpoint's write charge); Resume fast-forwards a fresh clock to
	// it, and in-process recovery never rewinds past it.
	ClockNs float64
	// Fingerprint identifies the run that wrote the checkpoint (worker
	// layout + input vertex-ID set, see runFingerprint); a restore whose
	// run computes a different fingerprint is an error, so resuming
	// against changed input or configuration fails instead of silently
	// replaying stale state.
	Fingerprint uint64
	Agg         aggSnapshot
	Workers     [][]byte
}

// ckptRun is the per-Run checkpointing state: the reserved job key, the
// cadence, the store, and the run's identity fingerprint.
type ckptRun struct {
	store   Checkpointer
	job     string
	every   int
	fp      uint64
	part    string // Partitioner.Name() of the running graph
	workers int
}

// newCkptRun reserves a job key when checkpointing is enabled for g, and
// returns nil otherwise. Called after sortVertices, so the fingerprint
// hashes the run's input state. Reserving a key the store already handed
// to another run is an error (see jobTracker).
func (g *Graph[V, M]) newCkptRun(name string) (*ckptRun, error) {
	if g.cfg.CheckpointEvery <= 0 {
		return nil, nil
	}
	store := g.cfg.Checkpointer
	if store == nil {
		// withDefaults installs a MemCheckpointer whenever CheckpointEvery
		// is set, so this is only reachable on a hand-built Config.
		store = NewMemCheckpointer()
		g.cfg.Checkpointer = store
	}
	job := store.NextJob(g.cfg.JobPrefix + name)
	if t, ok := store.(jobTracker); ok {
		if err := t.trackJob(job); err != nil {
			return nil, err
		}
	}
	return &ckptRun{
		store:   store,
		job:     job,
		every:   g.cfg.CheckpointEvery,
		fp:      g.runFingerprint(),
		part:    g.cfg.Partitioner.Name(),
		workers: g.cfg.Workers,
	}, nil
}

// runFingerprint hashes the run's identity — worker layout plus the input
// vertex-ID set — FNV-1a style. Checkpoints carry it so a restore into a
// run with different input or configuration is rejected.
func (g *Graph[V, M]) runFingerprint() uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(g.cfg.Workers))
	mix(uint64(g.cfg.MessageBytes))
	for _, w := range g.workers {
		mix(uint64(len(w.ids)))
		for _, id := range w.ids {
			mix(uint64(id))
		}
	}
	return h
}

// saveCheckpoint snapshots the graph at a superstep boundary, charges the
// write to the simulated clock, and hands the blob to the store. Workers
// encode their partitions concurrently in Parallel mode, mirroring the
// compute/deliver phases.
func (g *Graph[V, M]) saveCheckpoint(ck *ckptRun, step int, pending int64, stats *Stats) error {
	wall0 := nowNs()
	if g.cfg.Tracer != nil {
		g.emit(telemetry.KindBegin, "checkpoint.save", "checkpoint", wall0, g.clock.Ns(),
			telemetry.I("step", int64(step)))
	}
	blobs := make([][]byte, g.cfg.Workers)
	errs := make([]error, g.cfg.Workers)
	forEachWorkerProf(g.cfg.Workers, g.cfg.Parallel, g.runName, "checkpoint", func(wi int) {
		w := g.workers[wi]
		var buf bytes.Buffer
		errs[wi] = gob.NewEncoder(&buf).Encode(ckptWorker[V, M]{
			IDs:     w.ids,
			Vals:    w.vals,
			Active:  w.active,
			Dead:    w.dead,
			NDead:   w.nDead,
			InArena: w.inArena,
			InOff:   w.inOff,
		})
		blobs[wi] = buf.Bytes()
	})
	maxBytes, totalBytes := 0.0, int64(0)
	for wi, err := range errs {
		if err != nil {
			return fmt.Errorf("pregel: encoding checkpoint (job %q, worker %d): %w", ck.job, wi, err)
		}
		totalBytes += int64(len(blobs[wi]))
		if b := float64(len(blobs[wi])); b > maxBytes {
			maxBytes = b
		}
	}
	// Charge the write before stamping ClockNs so a resumed run starts at
	// the post-write time and never under-reports.
	g.clock.ChargeCheckpoint(maxBytes)
	file := ckptFile{
		Step:            step,
		Pending:         pending,
		PartitionerName: ck.part,
		NumWorkers:      ck.workers,
		Supersteps:      stats.Supersteps,
		Messages:        stats.Messages,
		LocalMessages:   stats.LocalMessages,
		RemoteMessages:  stats.RemoteMessages,
		Bytes:           stats.Bytes,
		DroppedMessages: stats.DroppedMessages,
		ClockNs:         g.clock.ns,
		Fingerprint:     ck.fp,
		Agg:             g.agg.snapshot(),
		Workers:         blobs,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&file); err != nil {
		return fmt.Errorf("pregel: encoding checkpoint (job %q): %w", ck.job, err)
	}
	if err := ck.store.Save(ck.job, step, buf.Bytes()); err != nil {
		return err
	}
	stats.CheckpointSaves++
	stats.CheckpointBytesWritten += totalBytes
	g.clock.CountCheckpointSave(totalBytes)
	if g.cfg.Metrics != nil {
		g.cfg.Metrics.Counter("pregel_checkpoint_saves_total").Add(1)
		g.cfg.Metrics.Counter("pregel_checkpoint_bytes_written_total").Add(totalBytes)
	}
	if g.cfg.Tracer != nil {
		g.emit(telemetry.KindEnd, "checkpoint.save", "checkpoint", nowNs(), g.clock.Ns(),
			telemetry.I("step", int64(step)), telemetry.I("bytes", totalBytes))
	}
	return nil
}

// loadCheckpoint fetches and decodes the latest checkpoint for the run,
// verifying that it was written by a run with the same identity.
func (ck *ckptRun) loadCheckpoint() (*ckptFile, bool, error) {
	_, data, ok, err := ck.store.Latest(ck.job)
	if err != nil || !ok {
		return nil, ok, err
	}
	var file ckptFile
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&file); err != nil {
		return nil, false, fmt.Errorf("pregel: decoding checkpoint (job %q): %w", ck.job, err)
	}
	// Placement guards run before the generic fingerprint check so a
	// partitioner or worker-count change is reported as exactly that.
	// Snapshots from before these headers existed decode to zero values
	// and fall through to the fingerprint, which covers the worker count.
	if file.PartitionerName != "" && file.PartitionerName != ck.part {
		return nil, false, fmt.Errorf("pregel: checkpoint for job %q was written under partitioner %q, but this run places vertices with %q; restoring would scatter partition-local state — rerun with the original partitioner or delete the checkpoint directory to start fresh", ck.job, file.PartitionerName, ck.part)
	}
	if file.NumWorkers != 0 && file.NumWorkers != ck.workers {
		return nil, false, fmt.Errorf("pregel: checkpoint for job %q was written with %d workers, but this run has %d; rerun with the original worker count or delete the checkpoint directory to start fresh", ck.job, file.NumWorkers, ck.workers)
	}
	if file.Fingerprint != ck.fp {
		return nil, false, fmt.Errorf("pregel: checkpoint for job %q was written by a different run (input or configuration changed); delete the checkpoint directory to start fresh", ck.job)
	}
	return &file, true, nil
}

// restoreCheckpoint replaces the graph's in-run state with the snapshot:
// per-worker partitions, aggregator values, and the run counters inside
// stats. It charges the recovery read to the clock — which, like real time,
// only moves forward — and returns the superstep to resume at plus the
// pending-message count at that barrier.
func (g *Graph[V, M]) restoreCheckpoint(file *ckptFile, stats *Stats) (step int, pending int64, err error) {
	if len(file.Workers) != g.cfg.Workers {
		return 0, 0, fmt.Errorf("pregel: checkpoint has %d workers, graph has %d", len(file.Workers), g.cfg.Workers)
	}
	wall0 := nowNs()
	if g.cfg.Tracer != nil {
		g.emit(telemetry.KindBegin, "checkpoint.restore", "checkpoint", wall0, g.clock.Ns(),
			telemetry.I("step", int64(file.Step)))
	}
	errs := make([]error, g.cfg.Workers)
	maxBytes, totalBytes := 0.0, int64(0)
	for _, b := range file.Workers {
		totalBytes += int64(len(b))
		if n := float64(len(b)); n > maxBytes {
			maxBytes = n
		}
	}
	forEachWorkerProf(g.cfg.Workers, g.cfg.Parallel, g.runName, "checkpoint", func(wi int) {
		var cw ckptWorker[V, M]
		if err := gob.NewDecoder(bytes.NewReader(file.Workers[wi])).Decode(&cw); err != nil {
			errs[wi] = err
			return
		}
		w := g.workers[wi]
		n := len(cw.IDs)
		w.ids = cw.IDs
		w.vals = cw.Vals
		w.active = cw.Active
		w.dead = cw.Dead
		w.nDead = cw.NDead
		w.inArena = cw.InArena
		// Gob decodes empty slices as nil; the delivery path needs the
		// offset index to exist even for an empty partition.
		w.inOff = growInt32(cw.InOff, n+1)
		w.inCur = growInt32(w.inCur, n)
		w.idx = make(map[VertexID]int, n)
		for i, id := range w.ids {
			w.idx[id] = i
		}
		// Shuffle scratch is rebuilt by the next superstep; drop anything
		// staged after the checkpoint barrier.
		for i := range w.outbox {
			w.outbox[i] = w.outbox[i][:0]
		}
	})
	for wi, err := range errs {
		if err != nil {
			return 0, 0, fmt.Errorf("pregel: decoding checkpoint (worker %d): %w", wi, err)
		}
	}
	g.agg.restore(file.Agg)
	stats.Supersteps = file.Supersteps
	stats.Messages = file.Messages
	stats.LocalMessages = file.LocalMessages
	stats.RemoteMessages = file.RemoteMessages
	stats.Bytes = file.Bytes
	stats.DroppedMessages = file.DroppedMessages
	g.clock.advanceTo(file.ClockNs)
	g.clock.ChargeRecovery(maxBytes)
	stats.CheckpointRestores++
	stats.CheckpointBytesRestored += totalBytes
	g.clock.CountCheckpointRestore(totalBytes)
	if g.cfg.Metrics != nil {
		g.cfg.Metrics.Counter("pregel_checkpoint_restores_total").Add(1)
		g.cfg.Metrics.Counter("pregel_checkpoint_bytes_restored_total").Add(totalBytes)
	}
	if g.cfg.Tracer != nil {
		g.emit(telemetry.KindEnd, "checkpoint.restore", "checkpoint", nowNs(), g.clock.Ns(),
			telemetry.I("step", int64(file.Step)), telemetry.I("bytes", totalBytes))
	}
	return file.Step, file.Pending, nil
}
