package pregel

import (
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"ppaassembler/internal/telemetry"
)

// Checkpointer persists superstep checkpoints, the engine's Pregel-style
// fault-tolerance mechanism: every Config.CheckpointEvery supersteps each
// worker snapshots its partition — vertex values, halted flags, the pending
// inbox arena — together with the aggregator state and run counters, and on
// a (simulated or real) worker failure the run rolls back to the latest
// checkpoint and replays. Because the engine is deterministic, the replayed
// run is bit-identical to an unfailed one.
//
// Job keys are reserved with NextJob in run-start order; a deterministic
// pipeline therefore re-acquires the same keys when re-executed, which is
// what lets a killed process resume from an on-disk store (Config.Resume).
//
// Implementations must be safe for concurrent use: independent graphs may
// share one store.
type Checkpointer interface {
	// NextJob reserves the next job key for a run labeled name.
	NextJob(name string) string
	// Save durably records the checkpoint for the given job and superstep,
	// replacing any earlier checkpoint of the same job.
	Save(job string, step int, data []byte) error
	// Latest returns the most recent checkpoint saved for job, or ok=false
	// when none exists.
	Latest(job string) (step int, data []byte, ok bool, err error)
}

// DeltaCheckpointer is an optional Checkpointer extension for incremental
// checkpoints (Config.DeltaCheckpoints): a delta records only the vertices
// dirtied since the preceding save and is only restorable together with the
// full snapshot it chains from. Stores that don't implement it get full
// snapshots on every save; the engine reports that downgrade through
// Config.Warn and the pregel_checkpoint_delta_downgrades_total counter.
// Both built-in stores implement it.
type DeltaCheckpointer interface {
	Checkpointer
	// SaveDelta records an incremental checkpoint for job at step without
	// superseding the preceding full checkpoint or earlier deltas. A later
	// Save (full) supersedes the whole chain.
	SaveDelta(job string, step int, data []byte) error
	// Chain returns the newest full checkpoint plus every delta saved
	// after it, in ascending step order; ok=false when no full checkpoint
	// exists. Latest, by contrast, returns only the newest full snapshot
	// (the newest blob restorable on its own).
	Chain(job string) (steps []int, blobs [][]byte, ok bool, err error)
}

// legacyProber is an optional store hook used by Resume to tell "no
// previous process ran" apart from "a pre-workflow binary left checkpoints
// under the legacy key format": findLegacyJob reports a stored artifact
// whose key starts with the bare (unprefixed) job base — the `name@seq`
// format used before per-op plan prefixes — so the engine can fail loudly
// instead of silently recomputing from scratch.
type legacyProber interface {
	findLegacyJob(base string) (string, bool)
}

// jobTracker is the engine-side guard against checkpoint-key collisions: a
// store that implements it records every key an actual run reserved, and a
// second reservation of the same key within the same store instance fails
// the run loudly. Two jobs silently sharing a key would overwrite each
// other's checkpoints and corrupt Resume, so the built-in stores both
// implement it; custom Checkpointer implementations opt in by embedding
// one of them.
type jobTracker interface {
	trackJob(job string) error
}

// jobSet is the shared reservation registry of the built-in stores.
type jobSet struct {
	mu       sync.Mutex
	reserved map[string]bool
}

func (s *jobSet) trackJob(job string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.reserved == nil {
		s.reserved = map[string]bool{}
	}
	if s.reserved[job] {
		return fmt.Errorf("pregel: job key %q reserved twice in one run; duplicate keys would overwrite each other's checkpoints and corrupt Resume (is the store's NextJob not unique?)", job)
	}
	s.reserved[job] = true
	return nil
}

// ckptBlobRef is one stored artifact handed to the corruption-aware
// restore path: the raw bytes (or the read error), plus enough identity to
// report the artifact in a warning.
type ckptBlobRef struct {
	step  int
	delta bool
	data  []byte
	src   string // artifact name for diagnostics (file base name, or a mem: key)
	err   error  // read failure, resolved by loadCheckpoint like corrupt bytes
}

// chainSource is the store hook behind corruption-aware recovery: instead
// of only the newest restorable chain (Latest/Chain), it exposes every
// candidate chain the store still holds, newest first, so a restore can
// walk back past a corrupt artifact to the last intact snapshot. Both
// built-in stores implement it; custom stores without it keep the strict
// behavior (any decode failure aborts the run).
type chainSource interface {
	ckptChains(job string) ([][]ckptBlobRef, error)
}

// MemCheckpointer keeps checkpoints in process memory: the natural store
// for simulated-failure experiments and tests, where recovery happens
// within one process.
type MemCheckpointer struct {
	jobSet
	mu     sync.Mutex
	seq    int
	data   map[string]memCkpt
	deltas map[string][]memCkpt
}

type memCkpt struct {
	step int
	blob []byte
}

// NewMemCheckpointer returns an empty in-memory store.
func NewMemCheckpointer() *MemCheckpointer {
	return &MemCheckpointer{data: map[string]memCkpt{}, deltas: map[string][]memCkpt{}}
}

// NextJob implements Checkpointer.
func (m *MemCheckpointer) NextJob(name string) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	job := jobKey(name, m.seq)
	m.seq++
	return job
}

// Save implements Checkpointer. A full save supersedes the job's previous
// snapshot and any delta chain hanging off it.
func (m *MemCheckpointer) Save(job string, step int, data []byte) error {
	blob := append([]byte(nil), data...)
	m.mu.Lock()
	m.data[job] = memCkpt{step: step, blob: blob}
	if m.deltas != nil {
		delete(m.deltas, job)
	}
	m.mu.Unlock()
	return nil
}

// SaveDelta implements DeltaCheckpointer.
func (m *MemCheckpointer) SaveDelta(job string, step int, data []byte) error {
	blob := append([]byte(nil), data...)
	m.mu.Lock()
	if m.deltas == nil {
		m.deltas = map[string][]memCkpt{}
	}
	m.deltas[job] = append(m.deltas[job], memCkpt{step: step, blob: blob})
	m.mu.Unlock()
	return nil
}

// Latest implements Checkpointer: the newest blob restorable on its own,
// i.e. the newest full snapshot.
func (m *MemCheckpointer) Latest(job string) (int, []byte, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.data[job]
	if !ok {
		return 0, nil, false, nil
	}
	return c.step, c.blob, true, nil
}

// Chain implements DeltaCheckpointer.
func (m *MemCheckpointer) Chain(job string) ([]int, [][]byte, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.data[job]
	if !ok {
		return nil, nil, false, nil
	}
	steps := []int{c.step}
	blobs := [][]byte{c.blob}
	for _, d := range m.deltas[job] {
		if d.step > c.step {
			steps = append(steps, d.step)
			blobs = append(blobs, d.blob)
		}
	}
	return steps, blobs, true, nil
}

// ckptChains implements chainSource. The in-memory store keeps a single
// generation, so there is exactly one candidate (or none).
func (m *MemCheckpointer) ckptChains(job string) ([][]ckptBlobRef, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.data[job]
	if !ok {
		return nil, nil
	}
	chain := []ckptBlobRef{{step: c.step, data: c.blob, src: fmt.Sprintf("mem:%s@%08d", job, c.step)}}
	for _, d := range m.deltas[job] {
		if d.step > c.step {
			chain = append(chain, ckptBlobRef{step: d.step, delta: true, data: d.blob,
				src: fmt.Sprintf("mem:%s@%08d(delta)", job, d.step)})
		}
	}
	return [][]ckptBlobRef{chain}, nil
}

// DirCheckpointer persists checkpoints as files under one directory
// (standing in for the distributed file system of the paper's cluster), so
// a killed pipeline process can be restarted with Config.Resume and fast-
// forward each job from its last completed checkpoint.
//
// Commit protocol: each blob goes to a uniquely named temp file (safe when
// several processes share the directory), is fsynced, renamed into place,
// and the directory is fsynced — so under DurabilityFull (the default) a
// checkpoint reported saved is on stable storage, surviving a machine
// crash, not just a process crash. The store retains the newest
// KeepGenerations full snapshots per job (plus the delta files between
// them), giving corruption-aware recovery an older generation to walk back
// to when the newest file fails its checksums.
type DirCheckpointer struct {
	jobSet
	dir        string
	fsys       FS
	durability Durability
	keep       int
	mu         sync.Mutex
	seq        int
	// scanned marks jobs whose on-disk files (left by a previous process)
	// have been folded into fulls/deltasOf, so only a job's first save pays
	// for a directory scan.
	scanned  map[string]bool
	fulls    map[string][]int // ascending steps of the retained full files per job
	deltasOf map[string][]int // ascending steps of the retained delta files per job
}

// DirStoreOptions configures NewDirCheckpointerOpts. The zero value gives
// the production defaults: the real filesystem, DurabilityFull, two
// retained generations.
type DirStoreOptions struct {
	// FS is the filesystem the store runs against; nil means the real one
	// (OSFS). Tests inject internal/testfs here to exercise crash faults.
	FS FS
	// Durability selects the fsync discipline; see the Durability doc.
	Durability Durability
	// KeepGenerations is how many full snapshots per job to retain. Older
	// generations exist purely as recovery fallbacks for when the newest
	// file is corrupt. Zero means the default of 2; 1 keeps only the
	// newest snapshot (the pre-v3 behavior).
	KeepGenerations int
}

// NewDirCheckpointer creates (if needed) and opens a checkpoint directory
// with the default options.
func NewDirCheckpointer(dir string) (*DirCheckpointer, error) {
	return NewDirCheckpointerOpts(dir, DirStoreOptions{})
}

// NewDirCheckpointerOpts is NewDirCheckpointer with explicit store options.
func NewDirCheckpointerOpts(dir string, opts DirStoreOptions) (*DirCheckpointer, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = OSFS()
	}
	keep := opts.KeepGenerations
	if keep <= 0 {
		keep = 2
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("pregel: checkpoint dir: %w", err)
	}
	return &DirCheckpointer{
		dir:        dir,
		fsys:       fsys,
		durability: opts.Durability,
		keep:       keep,
		scanned:    map[string]bool{},
		fulls:      map[string][]int{},
		deltasOf:   map[string][]int{},
	}, nil
}

// NextJob implements Checkpointer. The sequence restarts at zero in every
// process; deterministic pipelines re-reserve identical keys on a rerun,
// which is what Resume relies on.
func (d *DirCheckpointer) NextJob(name string) string {
	d.mu.Lock()
	defer d.mu.Unlock()
	job := jobKey(name, d.seq)
	d.seq++
	return job
}

func (d *DirCheckpointer) path(job string, step int) string {
	return filepath.Join(d.dir, fmt.Sprintf("%s.%08d.ckpt", job, step))
}

// dpath is the delta-checkpoint file name: same shape as path with a
// .dckpt extension, so full and incremental files sort and scan together
// but never collide.
func (d *DirCheckpointer) dpath(job string, step int) string {
	return filepath.Join(d.dir, fmt.Sprintf("%s.%08d.dckpt", job, step))
}

// write commits one blob: unique temp file, optional fsync, rename,
// optional directory fsync. The unique temp name (os.CreateTemp-style
// random suffix) is what makes a shared checkpoint directory safe — a
// fixed name would let two processes interleave writes into the same file.
// Temp names never end in .ckpt/.dckpt, so the scanners ignore strays left
// by a crash mid-write.
func (d *DirCheckpointer) write(final string, data []byte) error {
	f, err := d.fsys.CreateTemp(d.dir, filepath.Base(final)+".tmp-*")
	if err != nil {
		return fmt.Errorf("pregel: writing checkpoint: %w", err)
	}
	tmp := f.Name()
	abort := func(step string, err error) error {
		f.Close()
		d.fsys.Remove(tmp)
		return fmt.Errorf("pregel: %s checkpoint: %w", step, err)
	}
	if _, err := f.Write(data); err != nil {
		return abort("writing", err)
	}
	if d.durability == DurabilityFull {
		if err := f.Sync(); err != nil {
			return abort("syncing", err)
		}
	}
	if err := f.Close(); err != nil {
		d.fsys.Remove(tmp)
		return fmt.Errorf("pregel: writing checkpoint: %w", err)
	}
	if err := d.fsys.Rename(tmp, final); err != nil {
		d.fsys.Remove(tmp)
		return fmt.Errorf("pregel: committing checkpoint: %w", err)
	}
	if d.durability == DurabilityFull {
		if err := d.fsys.SyncDir(d.dir); err != nil {
			return fmt.Errorf("pregel: syncing checkpoint dir: %w", err)
		}
	}
	return nil
}

// ensureScanned folds the directory's existing files for job (left by a
// previous process) into the in-memory retention state, once per job.
func (d *DirCheckpointer) ensureScanned(job string) error {
	if d.scanned[job] {
		return nil
	}
	steps, dsteps, err := d.scan(job)
	if err != nil {
		return err
	}
	for _, s := range steps {
		d.fulls[job] = insertStep(d.fulls[job], s)
	}
	for _, s := range dsteps {
		d.deltasOf[job] = insertStep(d.deltasOf[job], s)
	}
	d.scanned[job] = true
	return nil
}

// insertStep adds s to an ascending step list, keeping it sorted and
// duplicate-free.
func insertStep(steps []int, s int) []int {
	for _, v := range steps {
		if v == s {
			return steps
		}
	}
	steps = append(steps, s)
	sort.Ints(steps)
	return steps
}

// Save implements Checkpointer.
func (d *DirCheckpointer) Save(job string, step int, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.ensureScanned(job); err != nil {
		return err
	}
	if err := d.write(d.path(job, step), data); err != nil {
		return err
	}
	// Drop superseded generations: full files beyond the newest keep, and
	// delta files older than the oldest retained full. The new file is
	// durable before anything is deleted (write fsyncs the directory), so
	// a crash at any point here leaves a restorable store.
	fulls := insertStep(d.fulls[job], step)
	if len(fulls) > d.keep {
		for _, s := range fulls[:len(fulls)-d.keep] {
			d.fsys.Remove(d.path(job, s))
		}
		fulls = append([]int(nil), fulls[len(fulls)-d.keep:]...)
	}
	d.fulls[job] = fulls
	oldest := fulls[0]
	kept := d.deltasOf[job][:0]
	for _, s := range d.deltasOf[job] {
		if s < oldest {
			d.fsys.Remove(d.dpath(job, s))
		} else {
			kept = append(kept, s)
		}
	}
	d.deltasOf[job] = kept
	return nil
}

// SaveDelta implements DeltaCheckpointer.
func (d *DirCheckpointer) SaveDelta(job string, step int, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.ensureScanned(job); err != nil {
		return err
	}
	if err := d.write(d.dpath(job, step), data); err != nil {
		return err
	}
	d.deltasOf[job] = insertStep(d.deltasOf[job], step)
	return nil
}

// scan lists the checkpointed superstep numbers present for job: full
// snapshots and deltas, each ascending.
func (d *DirCheckpointer) scan(job string) (steps, dsteps []int, err error) {
	names, err := d.fsys.ReadDir(d.dir)
	if err != nil {
		return nil, nil, fmt.Errorf("pregel: scanning checkpoints: %w", err)
	}
	prefix := job + "."
	for _, name := range names {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		num := strings.TrimPrefix(name, prefix)
		delta := false
		switch {
		case strings.HasSuffix(num, ".dckpt"):
			num, delta = strings.TrimSuffix(num, ".dckpt"), true
		case strings.HasSuffix(num, ".ckpt"):
			num = strings.TrimSuffix(num, ".ckpt")
		default:
			continue
		}
		s, err := strconv.Atoi(num)
		if err != nil {
			continue
		}
		if delta {
			dsteps = append(dsteps, s)
		} else {
			steps = append(steps, s)
		}
	}
	sort.Ints(steps)
	sort.Ints(dsteps)
	return steps, dsteps, nil
}

// Latest implements Checkpointer: the newest full snapshot.
func (d *DirCheckpointer) Latest(job string) (int, []byte, bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	steps, _, err := d.scan(job)
	if err != nil {
		return 0, nil, false, err
	}
	if len(steps) == 0 {
		return 0, nil, false, nil
	}
	step := steps[len(steps)-1]
	data, err := d.fsys.ReadFile(d.path(job, step))
	if err != nil {
		return 0, nil, false, fmt.Errorf("pregel: reading checkpoint: %w", err)
	}
	return step, data, true, nil
}

// Chain implements DeltaCheckpointer.
func (d *DirCheckpointer) Chain(job string) ([]int, [][]byte, bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	steps, dsteps, err := d.scan(job)
	if err != nil {
		return nil, nil, false, err
	}
	if len(steps) == 0 {
		return nil, nil, false, nil
	}
	full := steps[len(steps)-1]
	outSteps := []int{full}
	for _, s := range dsteps {
		if s > full {
			outSteps = append(outSteps, s)
		}
	}
	blobs := make([][]byte, len(outSteps))
	for i, s := range outSteps {
		p := d.path(job, s)
		if i > 0 {
			p = d.dpath(job, s)
		}
		if blobs[i], err = d.fsys.ReadFile(p); err != nil {
			return nil, nil, false, fmt.Errorf("pregel: reading checkpoint: %w", err)
		}
	}
	return outSteps, blobs, true, nil
}

// ckptChains implements chainSource: every candidate restore chain still
// in the directory, newest generation first. Candidate i is the i-th
// newest full snapshot plus the delta files saved between it and the next
// newer full. Blobs are handed up with any read error attached;
// loadCheckpoint decides whether a bad artifact truncates its chain or
// walks recovery back a generation.
func (d *DirCheckpointer) ckptChains(job string) ([][]ckptBlobRef, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	steps, dsteps, err := d.scan(job)
	if err != nil {
		return nil, err
	}
	readRef := func(step int, delta bool) ckptBlobRef {
		p := d.path(job, step)
		if delta {
			p = d.dpath(job, step)
		}
		data, err := d.fsys.ReadFile(p)
		return ckptBlobRef{step: step, delta: delta, data: data, src: filepath.Base(p), err: err}
	}
	chains := make([][]ckptBlobRef, 0, len(steps))
	for i := len(steps) - 1; i >= 0; i-- {
		full, next := steps[i], math.MaxInt
		if i+1 < len(steps) {
			next = steps[i+1]
		}
		chain := []ckptBlobRef{readRef(full, false)}
		for _, s := range dsteps {
			if s > full && s < next {
				chain = append(chain, readRef(s, true))
			}
		}
		chains = append(chains, chain)
	}
	return chains, nil
}

// findLegacyJob implements legacyProber: it scans the directory for any
// checkpoint file whose name starts with `base@` — the pre-workflow key
// format `name@seq`, with no plan prefix — and returns the first such file
// name. Current keys always start with the op's plan prefix (e.g.
// "s03.tiptrim.name@seq"), so the two shapes cannot collide.
func (d *DirCheckpointer) findLegacyJob(base string) (string, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	names, err := d.fsys.ReadDir(d.dir)
	if err != nil {
		return "", false
	}
	prefix := base + "@"
	for _, name := range names {
		if strings.HasPrefix(name, prefix) &&
			(strings.HasSuffix(name, ".ckpt") || strings.HasSuffix(name, ".dckpt")) {
			return name, true
		}
	}
	return "", false
}

// jobKey builds the stable per-run key: the run name (or "run") plus the
// store-wide reservation sequence, sanitized for use as a file name.
func jobKey(name string, seq int) string {
	return fmt.Sprintf("%s@%03d", sanitizeJobName(name), seq)
}

// sanitizeJobName is the file-name-safe form of a run name, shared by
// jobKey and the legacy-format probe (which must sanitize the bare name
// exactly as an old binary's jobKey would have).
func sanitizeJobName(name string) string {
	if name == "" {
		name = "run"
	}
	clean := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
			clean = append(clean, c)
		default:
			clean = append(clean, '_')
		}
	}
	return string(clean)
}

// ckptWorker is the serialized partition of one worker: everything runWorker
// and deliverTo need to replay from this point. V and M must be gob-
// encodable (exported fields, or GobEncoder/BinaryMarshaler implementations
// such as dna.Seq's).
type ckptWorker[V, M any] struct {
	IDs    []VertexID
	Vals   []V
	Active []bool
	Dead   []bool
	NDead  int
	// InArena/InOff are the pending inbox: messages delivered at the
	// checkpoint barrier but not yet consumed.
	InArena []M
	InOff   []int32
}

// aggSnapshot is the serialized aggregator state at a superstep boundary
// (the just-published values; in-progress accumulators are always empty at
// a barrier).
type aggSnapshot struct {
	Sum map[string]int64
	Min map[string]int64
	Or  map[string]bool
}

// ckptFile is one whole checkpoint: run-level progress plus the per-worker
// partition blobs (each encoded separately, since on a real cluster every
// worker persists its own partition in parallel). On disk it is serialized
// by the v3 checksummed binary container codec (see codec.go; v2 remains
// readable); the worker blobs use either the binary value codec or a
// per-section gob fallback.
type ckptFile struct {
	Step    int
	Pending int64
	// Kind distinguishes full snapshots from delta checkpoints; PrevStep
	// is the step of the save a delta chains from (zero for full saves),
	// which lets restore validate chain linkage.
	Kind     byte
	PrevStep int
	// PartitionerName and NumWorkers identify the placement the snapshot
	// was written under. Worker partitions are restored by index, so a
	// restore under a different partitioner or worker count would scatter
	// partition-local state; loadCheckpoint rejects either mismatch with
	// an error naming the difference (the job-key and fingerprint checks
	// alone would only report a generic identity mismatch).
	PartitionerName string
	NumWorkers      int
	// TransportName records the message transport the run used ("mem",
	// "memwire", "tcp"; v4+). Restores under a different transport are
	// rejected: a checkpoint written by a distributed run names worker
	// processes an in-memory resume does not have, and vice versa, so the
	// mismatch almost always means the wrong topology was launched. Empty
	// in pre-v4 files, which skips the check.
	TransportName string
	// Run counters at the barrier, restored on rollback so a recovered
	// run reports the same totals as an unfailed one.
	Supersteps      int
	Messages        int64
	LocalMessages   int64
	RemoteMessages  int64
	Bytes           int64
	DroppedMessages int64
	// ClockNs is the simulated clock at checkpoint time (including this
	// checkpoint's write charge); Resume fast-forwards a fresh clock to
	// it, and in-process recovery never rewinds past it.
	ClockNs float64
	// Fingerprint identifies the run that wrote the checkpoint (worker
	// layout + input vertex-ID set, see runFingerprint); a restore whose
	// run computes a different fingerprint is an error, so resuming
	// against changed input or configuration fails instead of silently
	// replaying stale state.
	Fingerprint uint64
	// Routing is the adaptive-repartitioning routing table at the barrier
	// (encoded by appendRoutingTable; v5+). Empty for static runs and for
	// adaptive runs that have not migrated yet; a restore installs it into
	// the run's DynamicPartitioner so placement resumes exactly where the
	// writing process left it.
	Routing []byte
	// Migration counters at the barrier (v5+), restored like the run
	// counters above so a resumed run reports the work already done.
	Migrations       int
	MigratedVertices int64
	MigrationBytes   int64
	Agg              aggSnapshot
	Workers          [][]byte
}

// ckptRun is the per-Run checkpointing state: the reserved job key, the
// cadence, the store, and the run's identity fingerprint, plus the delta-
// checkpoint chain position.
type ckptRun struct {
	store     Checkpointer
	job       string
	name      string // bare (unprefixed) run name, for the legacy-key probe
	prefix    string // JobPrefix in effect when the key was reserved
	every     int
	fp        uint64
	part      string // Partitioner.Name() of the running graph
	transport string // Transport.Name() of the running graph ("mem" when nil)
	workers   int

	// bin: V and M both round-trip through the binary value codec.
	// delta: this run takes delta checkpoints (bin, DeltaCheckpoints set,
	// and the store implements DeltaCheckpointer).
	bin   bool
	delta bool
	// Chain position: whether a full snapshot exists, the step of the last
	// save (full or delta), and how many deltas follow the last full.
	haveFull        bool
	lastStep        int
	deltasSinceFull int

	// warn and metrics carry the run's diagnostics sinks (Config.Warn and
	// Config.Metrics) into the load path, which runs without a *Graph.
	warn    func(format string, args ...any)
	metrics *telemetry.Registry
}

func (ck *ckptRun) warnf(format string, args ...any) {
	if ck.warn != nil {
		ck.warn(format, args...)
	}
}

func (ck *ckptRun) count(name string, v int64) {
	if ck.metrics != nil {
		ck.metrics.Counter(name).Add(v)
	}
}

// newCkptRun reserves a job key when checkpointing is enabled for g, and
// returns nil otherwise. Called after sortVertices, so the fingerprint
// hashes the run's input state. Reserving a key the store already handed
// to another run is an error (see jobTracker).
func (g *Graph[V, M]) newCkptRun(name string) (*ckptRun, error) {
	if g.cfg.CheckpointEvery <= 0 {
		return nil, nil
	}
	store := g.cfg.Checkpointer
	if store == nil {
		// withDefaults installs a MemCheckpointer whenever CheckpointEvery
		// is set, so this is only reachable on a hand-built Config.
		store = NewMemCheckpointer()
		g.cfg.Checkpointer = store
	}
	job := store.NextJob(g.cfg.JobPrefix + name)
	if t, ok := store.(jobTracker); ok {
		if err := t.trackJob(job); err != nil {
			return nil, err
		}
	}
	bin := binaryCodecFor[V]() && binaryCodecFor[M]()
	delta := false
	if g.cfg.DeltaCheckpoints {
		// A requested delta-checkpoint mode that cannot be honored must not
		// degrade silently: the run keeps working (full snapshots restore
		// identically) but writes more bytes per save than the caller asked
		// for, so say why, once per cause under the default Warn sink.
		switch {
		case !bin:
			var v V
			var m M
			g.warnf("pregel: DeltaCheckpoints requested, but vertex/message types %T/%T lack the binary checkpoint codec; every save falls back to a full snapshot", v, m)
			if g.cfg.Metrics != nil {
				g.cfg.Metrics.Counter("pregel_checkpoint_delta_downgrades_total").Add(1)
			}
		default:
			if _, ok := store.(DeltaCheckpointer); ok {
				delta = true
			} else {
				g.warnf("pregel: DeltaCheckpoints requested, but checkpoint store %T does not implement DeltaCheckpointer; every save falls back to a full snapshot", store)
				if g.cfg.Metrics != nil {
					g.cfg.Metrics.Counter("pregel_checkpoint_delta_downgrades_total").Add(1)
				}
			}
		}
	}
	return &ckptRun{
		store:     store,
		job:       job,
		name:      name,
		prefix:    g.cfg.JobPrefix,
		every:     g.cfg.CheckpointEvery,
		fp:        g.runFingerprint(),
		part:      g.cfg.Partitioner.Name(),
		transport: g.transportName(),
		workers:   g.cfg.Workers,
		bin:       bin,
		delta:     delta,
		warn:      g.warnf,
		metrics:   g.cfg.Metrics,
	}, nil
}

// checkLegacyKeys runs when Resume finds nothing under the run's job key:
// if the store holds an artifact under the legacy pre-workflow key format
// (bare `name@seq`, no plan prefix), resuming would otherwise silently
// recompute the whole pipeline from scratch, so fail naming both formats.
func (ck *ckptRun) checkLegacyKeys() error {
	if ck.prefix == "" {
		// This run itself reserves unprefixed keys; there is no older
		// format to probe for.
		return nil
	}
	p, ok := ck.store.(legacyProber)
	if !ok {
		return nil
	}
	base := sanitizeJobName(ck.name)
	file, found := p.findLegacyJob(base)
	if !found {
		return nil
	}
	return fmt.Errorf("pregel: Resume found no checkpoint under job key %q, but the store contains %q, which uses the legacy job-key format %q (name@seq, written by an older binary without workflow plan prefixes); this binary reserves keys as %q (planprefix.name@seq), so the old checkpoints can never match and resuming would silently recompute from scratch — rerun with the binary that wrote the checkpoint directory, or delete it to start fresh", ck.job, file, base+"@NNN", ck.prefix+"name@NNN")
}

// runFingerprint hashes the run's identity — worker layout plus the input
// vertex-ID set — FNV-1a style. Checkpoints carry it so a restore into a
// run with different input or configuration is rejected.
func (g *Graph[V, M]) runFingerprint() uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(g.cfg.Workers))
	mix(uint64(g.cfg.MessageBytes))
	for _, w := range g.workers {
		mix(uint64(len(w.ids)))
		for _, id := range w.ids {
			mix(uint64(id))
		}
	}
	return h
}

// saveCheckpoint snapshots the graph at a superstep boundary, charges the
// write to the simulated clock, and hands the blob to the store. Workers
// encode their partitions concurrently in Parallel mode, mirroring the
// compute/deliver phases. When the run takes delta checkpoints, saves
// after the first snapshot encode only the dirtied vertices, up to
// maxDeltaChain deltas (or a mostly-dirty graph) before the next full.
func (g *Graph[V, M]) saveCheckpoint(ck *ckptRun, step int, pending int64, stats *Stats) error {
	wall0 := nowNs()
	if g.cfg.Tracer != nil {
		g.emit(telemetry.KindBegin, "checkpoint.save", "checkpoint", wall0, g.clock.Ns(),
			telemetry.I("step", int64(step)))
	}
	useDelta := ck.delta && ck.haveFull && ck.deltasSinceFull < maxDeltaChain
	if useDelta {
		// A delta of a mostly-dirty graph costs more than a full snapshot
		// (per-entry index and flags overhead); fall back to full. The
		// dirty pattern is deterministic, so so is this decision.
		total, dirty := 0, 0
		for _, w := range g.workers {
			total += len(w.ids)
			for _, d := range w.dirty {
				if d {
					dirty++
				}
			}
		}
		if 4*dirty >= 3*total {
			useDelta = false
		}
	}
	blobs := make([][]byte, g.cfg.Workers)
	errs := make([]error, g.cfg.Workers)
	forEachWorkerProf(g.cfg.Workers, g.cfg.Parallel, g.runName, "checkpoint", func(wi int) {
		if useDelta {
			blobs[wi] = encodeWorkerDelta(g.workers[wi])
			return
		}
		blobs[wi], errs[wi] = encodeWorkerFull(g.workers[wi], ck.bin)
	})
	maxBytes, totalBytes := 0.0, int64(0)
	for wi, err := range errs {
		if err != nil {
			return fmt.Errorf("pregel: encoding checkpoint (job %q, worker %d): %w", ck.job, wi, err)
		}
		totalBytes += int64(len(blobs[wi]))
		if b := float64(len(blobs[wi])); b > maxBytes {
			maxBytes = b
		}
	}
	// Charge the write before stamping ClockNs so a resumed run starts at
	// the post-write time and never under-reports.
	g.clock.ChargeCheckpoint(maxBytes)
	kind := ckptKindFull
	if useDelta {
		kind = ckptKindDelta
	}
	file := ckptFile{
		Step:             step,
		Pending:          pending,
		Kind:             kind,
		PrevStep:         ck.lastStep,
		PartitionerName:  ck.part,
		TransportName:    ck.transport,
		NumWorkers:       ck.workers,
		Supersteps:       stats.Supersteps,
		Messages:         stats.Messages,
		LocalMessages:    stats.LocalMessages,
		RemoteMessages:   stats.RemoteMessages,
		Bytes:            stats.Bytes,
		DroppedMessages:  stats.DroppedMessages,
		ClockNs:          g.clock.ns,
		Fingerprint:      ck.fp,
		Routing:          g.graphRouting(),
		Migrations:       stats.Migrations,
		MigratedVertices: stats.MigratedVertices,
		MigrationBytes:   stats.MigrationBytes,
		Agg:              g.agg.snapshot(),
		Workers:          blobs,
	}
	data := encodeCkptFile(&file)
	if useDelta {
		if err := ck.store.(DeltaCheckpointer).SaveDelta(ck.job, step, data); err != nil {
			return err
		}
		ck.deltasSinceFull++
		stats.CheckpointDeltaSaves++
		if g.cfg.Metrics != nil {
			g.cfg.Metrics.Counter("pregel_checkpoint_delta_saves_total").Add(1)
		}
	} else {
		if err := ck.store.Save(ck.job, step, data); err != nil {
			return err
		}
		ck.haveFull = true
		ck.deltasSinceFull = 0
	}
	ck.lastStep = step
	// Everything up to this barrier is now captured; dirty tracking
	// restarts for the next save.
	for _, w := range g.workers {
		if w.dirty != nil {
			clear(w.dirty)
		}
	}
	// The traffic-observation matrix restarts at every save: saves happen at
	// fixed superstep numbers, so the matrix content at any boundary is a
	// pure function of the superstep schedule, and a run rolled back to this
	// checkpoint replays the same migration decisions the original made.
	g.resetTraffic()
	stats.CheckpointSaves++
	stats.CheckpointBytesWritten += totalBytes
	g.clock.CountCheckpointSave(totalBytes)
	if g.cfg.Metrics != nil {
		g.cfg.Metrics.Counter("pregel_checkpoint_saves_total").Add(1)
		g.cfg.Metrics.Counter("pregel_checkpoint_bytes_written_total").Add(totalBytes)
	}
	if g.cfg.Tracer != nil {
		g.emit(telemetry.KindEnd, "checkpoint.save", "checkpoint", nowNs(), g.clock.Ns(),
			telemetry.I("step", int64(step)), telemetry.I("bytes", totalBytes))
	}
	return nil
}

// ckptChain is a decoded, restorable checkpoint: the newest full snapshot
// plus every delta saved after it, in ascending step order. Non-delta runs
// always carry an empty deltas slice.
type ckptChain struct {
	full   *ckptFile
	deltas []*ckptFile
}

// tip is the chain's newest save — the barrier a restore resumes at.
func (c *ckptChain) tip() *ckptFile {
	if n := len(c.deltas); n > 0 {
		return c.deltas[n-1]
	}
	return c.full
}

// validateIdentity rejects a checkpoint written by a different placement or
// run. Placement guards run before the generic fingerprint check so a
// partitioner or worker-count change is reported as exactly that. These are
// hard errors, never walked back from: an older generation was written by
// the same run and would be just as mismatched.
func (ck *ckptRun) validateIdentity(file *ckptFile) error {
	if file.PartitionerName != ck.part {
		return fmt.Errorf("pregel: checkpoint for job %q was written under partitioner %q, but this run places vertices with %q; restoring would scatter partition-local state — rerun with the original partitioner or delete the checkpoint directory to start fresh", ck.job, file.PartitionerName, ck.part)
	}
	if file.TransportName != "" && file.TransportName != ck.transport {
		return fmt.Errorf("pregel: checkpoint for job %q was written under transport %q, but this run uses transport %q; resume with the original transport topology (-transport=%s) or delete the checkpoint directory to start fresh", ck.job, file.TransportName, ck.transport, file.TransportName)
	}
	if file.NumWorkers != ck.workers {
		return fmt.Errorf("pregel: checkpoint for job %q was written with %d workers, but this run has %d; rerun with the original worker count or delete the checkpoint directory to start fresh", ck.job, file.NumWorkers, ck.workers)
	}
	if file.Fingerprint != ck.fp {
		return fmt.Errorf("pregel: checkpoint for job %q was written by a different run (input or configuration changed); delete the checkpoint directory to start fresh", ck.job)
	}
	return nil
}

// loadCheckpoint fetches and decodes the latest checkpoint (chain) for the
// run, verifying that it was written by a run with the same identity and
// that the delta chain is unbroken. With the built-in stores (chainSource)
// the load is corruption-aware: an artifact failing its CRC or decode is
// reported through Config.Warn and recovery walks back to the last intact
// snapshot; only when no intact snapshot remains does the load fail.
func (ck *ckptRun) loadCheckpoint() (*ckptChain, bool, error) {
	if cs, ok := ck.store.(chainSource); ok {
		return ck.loadFromChains(cs)
	}
	// Custom stores expose only the newest chain; any decode failure is
	// fatal since there is nothing to walk back to.
	var blobs [][]byte
	var ok bool
	var err error
	if ck.delta {
		_, blobs, ok, err = ck.store.(DeltaCheckpointer).Chain(ck.job)
	} else {
		var data []byte
		_, data, ok, err = ck.store.Latest(ck.job)
		blobs = [][]byte{data}
	}
	if err != nil || !ok {
		return nil, ok, err
	}
	chain := &ckptChain{}
	for i, data := range blobs {
		file, err := decodeCkptFile(ck.job, data)
		if err != nil {
			return nil, false, err
		}
		if err := ck.validateIdentity(file); err != nil {
			return nil, false, err
		}
		if i == 0 {
			if file.Kind != ckptKindFull {
				return nil, false, fmt.Errorf("pregel: checkpoint chain for job %q starts with a delta at step %d; the full snapshot it chains from is missing — delete the checkpoint directory to start fresh", ck.job, file.Step)
			}
			chain.full = file
			continue
		}
		prev := chain.tip()
		if file.Kind != ckptKindDelta || file.PrevStep != prev.Step || file.Step <= prev.Step {
			return nil, false, fmt.Errorf("pregel: delta checkpoint at step %d for job %q chains from step %d, but the preceding save in the chain is step %d; the chain is broken — delete the checkpoint directory to start fresh", file.Step, ck.job, file.PrevStep, prev.Step)
		}
		chain.deltas = append(chain.deltas, file)
	}
	// Resync the chain position so post-restore saves extend (or supersede)
	// what the store already holds.
	ck.haveFull = true
	ck.lastStep = chain.tip().Step
	ck.deltasSinceFull = len(chain.deltas)
	return chain, true, nil
}

// loadFromChains is the corruption-aware restore path. Candidate chains
// are tried newest first: a corrupt delta truncates its chain at the last
// intact save, a corrupt full snapshot abandons the whole candidate for
// the previous generation. Every rejected artifact is warned about and
// counted (pregel_checkpoint_corrupt_skipped_total). If corruption was
// seen and no intact snapshot remains, the load fails — silently
// recomputing from scratch would mask data loss.
func (ck *ckptRun) loadFromChains(cs chainSource) (*ckptChain, bool, error) {
	cands, err := cs.ckptChains(ck.job)
	if err != nil {
		return nil, false, err
	}
	sawCorrupt := false
	reject := func(ref ckptBlobRef, err error) {
		sawCorrupt = true
		ck.warnf("pregel: skipping corrupt checkpoint artifact %s (job %q): %v", ref.src, ck.job, err)
		ck.count("pregel_checkpoint_corrupt_skipped_total", 1)
	}
	for _, cand := range cands {
		chain := &ckptChain{}
		for _, ref := range cand {
			if ref.delta && !ck.delta {
				// This run doesn't take delta checkpoints; delta files are
				// leftovers from an earlier configuration, and the chain
				// restores fine without them (just from an older barrier).
				continue
			}
			file, derr := (*ckptFile)(nil), ref.err
			if derr == nil {
				file, derr = decodeCkptFile(ck.job, ref.data)
			}
			if derr != nil {
				if ref.err != nil || errors.Is(derr, ErrCheckpointCorrupt) {
					reject(ref, derr)
					break // keep what decoded so far, or fall back a generation
				}
				return nil, false, derr
			}
			if err := ck.validateIdentity(file); err != nil {
				return nil, false, err
			}
			if chain.full == nil {
				if file.Kind != ckptKindFull {
					return nil, false, fmt.Errorf("pregel: checkpoint chain for job %q starts with a delta at step %d; the full snapshot it chains from is missing — delete the checkpoint directory to start fresh", ck.job, file.Step)
				}
				chain.full = file
				continue
			}
			prev := chain.tip()
			if file.Kind != ckptKindDelta || file.PrevStep != prev.Step || file.Step <= prev.Step {
				return nil, false, fmt.Errorf("pregel: delta checkpoint at step %d for job %q chains from step %d, but the preceding save in the chain is step %d; the chain is broken — delete the checkpoint directory to start fresh", file.Step, ck.job, file.PrevStep, prev.Step)
			}
			chain.deltas = append(chain.deltas, file)
		}
		if chain.full == nil {
			continue
		}
		if sawCorrupt {
			ck.warnf("pregel: job %q recovering from checkpoint at step %d after skipping corrupt artifacts", ck.job, chain.tip().Step)
		}
		ck.haveFull = true
		ck.lastStep = chain.tip().Step
		ck.deltasSinceFull = len(chain.deltas)
		return chain, true, nil
	}
	if sawCorrupt {
		return nil, false, fmt.Errorf("pregel: every checkpoint for job %q failed integrity verification; refusing to silently recompute from scratch — inspect the directory (ppa-assembler -ckpt-verify), restore the files, or delete the checkpoint directory to accept a full recompute", ck.job)
	}
	return nil, false, nil
}

// restoreCheckpoint replaces the graph's in-run state with the chain's
// state: the full snapshot with every delta folded in, aggregator values,
// and the run counters inside stats (all run-level state comes from the
// chain tip). It charges the recovery read to the clock — which, like real
// time, only moves forward — and returns the superstep to resume at plus
// the pending-message count at that barrier.
func (g *Graph[V, M]) restoreCheckpoint(chain *ckptChain, stats *Stats) (step int, pending int64, err error) {
	full, tip := chain.full, chain.tip()
	if len(full.Workers) != g.cfg.Workers {
		return 0, 0, fmt.Errorf("pregel: checkpoint has %d workers, graph has %d", len(full.Workers), g.cfg.Workers)
	}
	for _, d := range chain.deltas {
		if len(d.Workers) != g.cfg.Workers {
			return 0, 0, fmt.Errorf("pregel: delta checkpoint at step %d has %d workers, graph has %d", d.Step, len(d.Workers), g.cfg.Workers)
		}
	}
	wall0 := nowNs()
	if g.cfg.Tracer != nil {
		g.emit(telemetry.KindBegin, "checkpoint.restore", "checkpoint", wall0, g.clock.Ns(),
			telemetry.I("step", int64(tip.Step)))
	}
	errs := make([]error, g.cfg.Workers)
	// Per-worker read cost spans the whole chain: each worker replays its
	// own full section plus its slice of every delta.
	maxBytes, totalBytes := 0.0, int64(0)
	for wi := range full.Workers {
		n := int64(len(full.Workers[wi]))
		for _, d := range chain.deltas {
			n += int64(len(d.Workers[wi]))
		}
		totalBytes += n
		if b := float64(n); b > maxBytes {
			maxBytes = b
		}
	}
	forEachWorkerProf(g.cfg.Workers, g.cfg.Parallel, g.runName, "checkpoint", func(wi int) {
		cw, err := decodeWorkerSection[V, M](full.Workers[wi])
		if err != nil {
			errs[wi] = err
			return
		}
		for _, d := range chain.deltas {
			if err := applyWorkerDelta(cw, d.Workers[wi]); err != nil {
				errs[wi] = fmt.Errorf("delta at step %d: %w", d.Step, err)
				return
			}
		}
		w := g.workers[wi]
		n := len(cw.IDs)
		w.ids = cw.IDs
		w.vals = cw.Vals
		w.active = cw.Active
		w.dead = cw.Dead
		w.nDead = cw.NDead
		w.inArena = cw.InArena
		// Empty slices may decode as nil; the delivery path needs the
		// offset index to exist even for an empty partition.
		w.inOff = growInt32(cw.InOff, n+1)
		w.inCur = growInt32(w.inCur, n)
		w.idx = make(map[VertexID]int, n)
		for i, id := range w.ids {
			w.idx[id] = i
		}
		// Shuffle scratch is rebuilt by the next superstep; drop anything
		// staged after the checkpoint barrier.
		for i := range w.outbox {
			w.outbox[i] = w.outbox[i][:0]
		}
		// Dirty tracking restarts from the restored barrier.
		if w.dirty != nil {
			w.dirty = growBool(w.dirty, n)
			clear(w.dirty)
		}
	})
	for wi, err := range errs {
		if err != nil {
			return 0, 0, fmt.Errorf("pregel: decoding checkpoint (worker %d): %w", wi, err)
		}
	}
	// Adaptive repartitioning: reinstate the placement the checkpoint was
	// written under, and restart the observation matrix (sized for the
	// restored layout) — see the determinism note in saveCheckpoint.
	if err := g.restoreRouting(tip.Routing); err != nil {
		return 0, 0, err
	}
	g.resetTraffic()
	g.agg.restore(tip.Agg)
	stats.Supersteps = tip.Supersteps
	stats.Messages = tip.Messages
	stats.LocalMessages = tip.LocalMessages
	stats.RemoteMessages = tip.RemoteMessages
	stats.Bytes = tip.Bytes
	stats.DroppedMessages = tip.DroppedMessages
	stats.Migrations = tip.Migrations
	stats.MigratedVertices = tip.MigratedVertices
	stats.MigrationBytes = tip.MigrationBytes
	g.clock.advanceTo(tip.ClockNs)
	g.clock.ChargeRecovery(maxBytes)
	stats.CheckpointRestores++
	stats.CheckpointBytesRestored += totalBytes
	g.clock.CountCheckpointRestore(totalBytes)
	if g.cfg.Metrics != nil {
		g.cfg.Metrics.Counter("pregel_checkpoint_restores_total").Add(1)
		g.cfg.Metrics.Counter("pregel_checkpoint_bytes_restored_total").Add(totalBytes)
	}
	if g.cfg.Tracer != nil {
		g.emit(telemetry.KindEnd, "checkpoint.restore", "checkpoint", nowNs(), g.clock.Ns(),
			telemetry.I("step", int64(tip.Step)), telemetry.I("bytes", totalBytes))
	}
	return tip.Step, tip.Pending, nil
}
