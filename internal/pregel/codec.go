package pregel

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sort"
)

// Checkpoint format v3: a versioned, checksummed binary container. Layout
// (all integers varint/uvarint unless noted):
//
//	magic "PPCK" | version | kind (full/delta) | step | prevStep | pending
//	| partitioner name | numWorkers | run counters | clockNs (fixed 8 LE)
//	| fingerprint (fixed 8 LE) | aggregator snapshot (sorted keys)
//	| worker count | header CRC32C (fixed 4 LE, over every prior byte)
//	| per-worker: length | section bytes | section CRC32C (fixed 4 LE)
//
// The CRCs (Castagnoli polynomial) are what v3 adds over v2: a torn or
// bit-flipped file is detected at load time and reported as
// ErrCheckpointCorrupt, letting recovery walk back to an older intact
// snapshot instead of restoring garbage. v2 containers (identical layout
// minus both CRC fields) remain readable; writes always emit v3.
//
// Each worker section starts with one flag byte: wsecBinary sections encode
// the partition with the zero-copy value codec below; wsecGob sections are
// a gob-encoded ckptWorker, the universal fallback for vertex value or
// message types that neither are codec primitives nor implement
// CheckpointAppender/CheckpointDecoder. Delta containers (kindDelta) hold
// only the vertices dirtied since the checkpoint at prevStep; a restore
// replays the newest full container plus its delta chain.

const (
	ckptMagic     = "PPCK"
	ckptVersion   = 5
	ckptVersionV4 = 4
	ckptVersionV3 = 3
	ckptVersionV2 = 2

	ckptKindFull  byte = 0
	ckptKindDelta byte = 1

	wsecBinary byte = 0
	wsecGob    byte = 1

	// maxDeltaChain bounds how many delta checkpoints may follow a full
	// snapshot before the next save is forced full again, bounding both
	// recovery replay work and the disk footprint of a chain.
	maxDeltaChain = 8
)

// castagnoli is the CRC32C table used by every v3 checksum.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCheckpointCorrupt marks decode failures caused by damaged bytes — a
// failed CRC, a truncated frame, garbage where the magic should be. Errors
// wrapping it mean "this artifact is broken, an older one may not be":
// recovery responds by walking back to the previous intact snapshot
// (loudly), whereas any other load error — version/identity mismatch, I/O —
// aborts the run. Test with errors.Is.
var ErrCheckpointCorrupt = errors.New("checkpoint data corrupt")

// corruptf builds an error wrapping ErrCheckpointCorrupt.
func corruptf(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, ErrCheckpointCorrupt)...)
}

// CheckpointAppender is implemented by vertex-value and message types that
// opt into the engine's binary checkpoint codec (checkpoint format v2):
// AppendCheckpoint appends a self-delimiting encoding of the receiver to
// buf and returns the extended slice, in the style of dna.Seq's binary
// marshalling. Types implementing it (together with CheckpointDecoder)
// checkpoint without gob's reflection and type-dictionary overhead, and
// become eligible for delta checkpoints (Config.DeltaCheckpoints).
// Primitive value/message types (integers, floats, bool, string, VertexID,
// struct{}) are handled by the codec directly and need no methods.
type CheckpointAppender interface {
	AppendCheckpoint(buf []byte) []byte
}

// CheckpointDecoder is the inverse of CheckpointAppender: DecodeCheckpoint
// replaces the receiver with the value encoded at the front of data and
// returns the remaining bytes.
type CheckpointDecoder interface {
	DecodeCheckpoint(data []byte) (rest []byte, err error)
}

// AppendUvarint / AppendVarint / AppendUint64 and their Consume inverses
// are the primitive wire helpers of the checkpoint codec, exported so
// packages implementing CheckpointAppender/CheckpointDecoder on their
// vertex types compose encodings from the same vocabulary.

// AppendUvarint appends v as a uvarint.
func AppendUvarint(buf []byte, v uint64) []byte { return binary.AppendUvarint(buf, v) }

// AppendVarint appends v as a zig-zag varint.
func AppendVarint(buf []byte, v int64) []byte { return binary.AppendVarint(buf, v) }

// AppendUint64 appends v as 8 little-endian bytes (used for floats via
// math.Float64bits, and for hashes where varint packing buys nothing).
func AppendUint64(buf []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(buf, v) }

// AppendBool appends v as one byte.
func AppendBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// ConsumeUvarint decodes a uvarint from the front of data.
func ConsumeUvarint(data []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, corruptf("pregel: corrupt checkpoint encoding: bad uvarint")
	}
	return v, data[n:], nil
}

// ConsumeVarint decodes a zig-zag varint from the front of data.
func ConsumeVarint(data []byte) (int64, []byte, error) {
	v, n := binary.Varint(data)
	if n <= 0 {
		return 0, nil, corruptf("pregel: corrupt checkpoint encoding: bad varint")
	}
	return v, data[n:], nil
}

// ConsumeUint64 decodes 8 little-endian bytes from the front of data.
func ConsumeUint64(data []byte) (uint64, []byte, error) {
	if len(data) < 8 {
		return 0, nil, corruptf("pregel: corrupt checkpoint encoding: truncated uint64")
	}
	return binary.LittleEndian.Uint64(data), data[8:], nil
}

// ConsumeBool decodes one byte from the front of data.
func ConsumeBool(data []byte) (bool, []byte, error) {
	if len(data) < 1 {
		return false, nil, corruptf("pregel: corrupt checkpoint encoding: truncated bool")
	}
	return data[0] != 0, data[1:], nil
}

func appendCkptString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func consumeCkptString(data []byte) (string, []byte, error) {
	n, rest, err := ConsumeUvarint(data)
	if err != nil {
		return "", nil, err
	}
	if uint64(len(rest)) < n {
		return "", nil, corruptf("pregel: corrupt checkpoint encoding: truncated string")
	}
	return string(rest[:n]), rest[n:], nil
}

// appendBits packs a bool slice 8-per-byte (length known to the decoder).
func appendBits(buf []byte, bits []bool) []byte {
	var b byte
	for i, v := range bits {
		if v {
			b |= 1 << (i & 7)
		}
		if i&7 == 7 {
			buf = append(buf, b)
			b = 0
		}
	}
	if len(bits)&7 != 0 {
		buf = append(buf, b)
	}
	return buf
}

// consumeBits unpacks n bools packed by appendBits.
func consumeBits(data []byte, n int) ([]bool, []byte, error) {
	nb := (n + 7) / 8
	if len(data) < nb {
		return nil, nil, corruptf("pregel: corrupt checkpoint encoding: truncated bitset")
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = data[i/8]&(1<<(i&7)) != 0
	}
	return out, data[nb:], nil
}

// binaryCodecFor reports whether T round-trips through the binary value
// codec: either a codec primitive, or an implementation of both
// CheckpointAppender and CheckpointDecoder (on the pointer receiver).
func binaryCodecFor[T any]() bool {
	var z T
	switch any(z).(type) {
	case int64, uint64, int, int32, uint32, float64, bool, string, VertexID, struct{}:
		return true
	}
	if _, ok := any(&z).(CheckpointAppender); !ok {
		return false
	}
	_, ok := any(&z).(CheckpointDecoder)
	return ok
}

// appendVal appends one value with the binary codec. Only called for types
// binaryCodecFor admits; the pointer-shaped type switch keeps primitive
// fast paths allocation-free (no per-element boxing).
func appendVal[T any](buf []byte, v *T) []byte {
	switch x := any(v).(type) {
	case *int64:
		return binary.AppendVarint(buf, *x)
	case *uint64:
		return binary.AppendUvarint(buf, *x)
	case *int:
		return binary.AppendVarint(buf, int64(*x))
	case *int32:
		return binary.AppendVarint(buf, int64(*x))
	case *uint32:
		return binary.AppendUvarint(buf, uint64(*x))
	case *float64:
		return AppendUint64(buf, math.Float64bits(*x))
	case *bool:
		return AppendBool(buf, *x)
	case *string:
		return appendCkptString(buf, *x)
	case *VertexID:
		return binary.AppendUvarint(buf, uint64(*x))
	case *struct{}:
		return buf
	case CheckpointAppender:
		return x.AppendCheckpoint(buf)
	}
	panic("pregel: appendVal on a type without a binary codec")
}

// consumeVal decodes one value encoded by appendVal into *v.
func consumeVal[T any](data []byte, v *T) ([]byte, error) {
	switch x := any(v).(type) {
	case *int64:
		val, rest, err := ConsumeVarint(data)
		*x = val
		return rest, err
	case *uint64:
		val, rest, err := ConsumeUvarint(data)
		*x = val
		return rest, err
	case *int:
		val, rest, err := ConsumeVarint(data)
		if err != nil {
			return rest, err
		}
		if int64(int(val)) != val {
			return nil, corruptf("pregel: corrupt checkpoint encoding: varint %d overflows int", val)
		}
		*x = int(val)
		return rest, nil
	case *int32:
		val, rest, err := ConsumeVarint(data)
		if err != nil {
			return rest, err
		}
		if val < math.MinInt32 || val > math.MaxInt32 {
			return nil, corruptf("pregel: corrupt checkpoint encoding: varint %d overflows int32", val)
		}
		*x = int32(val)
		return rest, nil
	case *uint32:
		val, rest, err := ConsumeUvarint(data)
		if err != nil {
			return rest, err
		}
		if val > math.MaxUint32 {
			return nil, corruptf("pregel: corrupt checkpoint encoding: uvarint %d overflows uint32", val)
		}
		*x = uint32(val)
		return rest, nil
	case *float64:
		bits, rest, err := ConsumeUint64(data)
		*x = math.Float64frombits(bits)
		return rest, err
	case *bool:
		val, rest, err := ConsumeBool(data)
		*x = val
		return rest, err
	case *string:
		val, rest, err := consumeCkptString(data)
		*x = val
		return rest, err
	case *VertexID:
		val, rest, err := ConsumeUvarint(data)
		*x = VertexID(val)
		return rest, err
	case *struct{}:
		return data, nil
	case CheckpointDecoder:
		return x.DecodeCheckpoint(data)
	}
	panic("pregel: consumeVal on a type without a binary codec")
}

// encodeWorkerFull serializes one worker partition as a full section. With
// bin set it uses the binary value codec; otherwise it falls back to gob,
// preserving checkpointability for arbitrary V/M.
func encodeWorkerFull[V, M any](w *worker[V, M], bin bool) ([]byte, error) {
	if !bin {
		var buf bytes.Buffer
		buf.WriteByte(wsecGob)
		err := gob.NewEncoder(&buf).Encode(ckptWorker[V, M]{
			IDs:     w.ids,
			Vals:    w.vals,
			Active:  w.active,
			Dead:    w.dead,
			NDead:   w.nDead,
			InArena: w.inArena,
			InOff:   w.inOff,
		})
		return buf.Bytes(), err
	}
	n := len(w.ids)
	buf := make([]byte, 0, 16+10*n)
	buf = append(buf, wsecBinary)
	buf = binary.AppendUvarint(buf, uint64(n))
	// IDs delta-encoded: sorted runs cost ~1 byte per vertex, and uint64
	// wraparound keeps arbitrary orders correct.
	prev := uint64(0)
	for _, id := range w.ids {
		buf = binary.AppendUvarint(buf, uint64(id)-prev)
		prev = uint64(id)
	}
	for i := range w.vals {
		buf = appendVal(buf, &w.vals[i])
	}
	buf = appendBits(buf, w.active)
	buf = appendBits(buf, w.dead)
	// Pending inbox: per-vertex counts, then the arena in order.
	for i := 0; i < n; i++ {
		buf = binary.AppendUvarint(buf, uint64(w.inOff[i+1]-w.inOff[i]))
	}
	for i := range w.inArena {
		buf = appendVal(buf, &w.inArena[i])
	}
	return buf, nil
}

// decodeWorkerSection inverts encodeWorkerFull (either flavor).
func decodeWorkerSection[V, M any](data []byte) (*ckptWorker[V, M], error) {
	if len(data) == 0 {
		return nil, corruptf("pregel: corrupt checkpoint: empty worker section")
	}
	flag, data := data[0], data[1:]
	switch flag {
	case wsecGob:
		var cw ckptWorker[V, M]
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&cw); err != nil {
			return nil, corruptf("pregel: corrupt checkpoint: gob worker section: %v", err)
		}
		return &cw, nil
	case wsecBinary:
		// handled below
	default:
		return nil, corruptf("pregel: corrupt checkpoint: unknown worker section flag %d", flag)
	}
	un, data, err := ConsumeUvarint(data)
	if err != nil {
		return nil, err
	}
	// Every vertex costs at least one ID byte, so a count beyond the bytes
	// on hand is corruption — reject before the allocations below trust it.
	if un > uint64(len(data)) {
		return nil, corruptf("pregel: corrupt checkpoint: worker section claims %d vertices in %d bytes", un, len(data))
	}
	n := int(un)
	cw := &ckptWorker[V, M]{
		IDs:  make([]VertexID, n),
		Vals: make([]V, n),
	}
	prev := uint64(0)
	for i := 0; i < n; i++ {
		d, rest, err := ConsumeUvarint(data)
		if err != nil {
			return nil, err
		}
		prev += d
		cw.IDs[i] = VertexID(prev)
		data = rest
	}
	for i := 0; i < n; i++ {
		if data, err = consumeVal(data, &cw.Vals[i]); err != nil {
			return nil, err
		}
	}
	if cw.Active, data, err = consumeBits(data, n); err != nil {
		return nil, err
	}
	if cw.Dead, data, err = consumeBits(data, n); err != nil {
		return nil, err
	}
	for _, d := range cw.Dead {
		if d {
			cw.NDead++
		}
	}
	cw.InOff = make([]int32, n+1)
	off := int64(0)
	for i := 0; i < n; i++ {
		c, rest, err := ConsumeUvarint(data)
		if err != nil {
			return nil, err
		}
		cw.InOff[i] = int32(off)
		off += int64(c)
		if off > math.MaxInt32 {
			return nil, corruptf("pregel: corrupt checkpoint: inbox arena of %d messages overflows the offset table", off)
		}
		data = rest
	}
	cw.InOff[n] = int32(off)
	// Bound the arena allocation by the bytes left: every message costs at
	// least one byte unless the message type encodes to nothing (struct{},
	// for which the allocation below is free regardless).
	var probe M
	if off > int64(len(data)) && len(appendVal(nil, &probe)) > 0 {
		return nil, corruptf("pregel: corrupt checkpoint: worker section claims %d messages in %d bytes", off, len(data))
	}
	cw.InArena = make([]M, off)
	for i := range cw.InArena {
		if data, err = consumeVal(data, &cw.InArena[i]); err != nil {
			return nil, err
		}
	}
	if len(data) != 0 {
		return nil, corruptf("pregel: corrupt checkpoint: %d trailing bytes in worker section", len(data))
	}
	return cw, nil
}

// encodeWorkerDelta serializes only the vertices dirtied since the last
// save: ascending vertex index (delta-encoded), a flags byte
// (active/dead), the value, and the vertex's pending inbox. Clean vertices
// are guaranteed unchanged with an empty inbox at both barriers (see
// worker.dirty), so the previous snapshot's entry remains valid for them.
func encodeWorkerDelta[V, M any](w *worker[V, M]) []byte {
	n := len(w.ids)
	dirtyN := 0
	for _, d := range w.dirty {
		if d {
			dirtyN++
		}
	}
	buf := make([]byte, 0, 16+8*dirtyN)
	buf = append(buf, wsecBinary)
	buf = binary.AppendUvarint(buf, uint64(n))
	buf = binary.AppendUvarint(buf, uint64(dirtyN))
	prev := 0
	for i, d := range w.dirty {
		if !d {
			continue
		}
		buf = binary.AppendUvarint(buf, uint64(i-prev))
		prev = i
		var flags byte
		if w.active[i] {
			flags |= 1
		}
		if w.dead[i] {
			flags |= 2
		}
		buf = append(buf, flags)
		buf = appendVal(buf, &w.vals[i])
		buf = binary.AppendUvarint(buf, uint64(w.inOff[i+1]-w.inOff[i]))
		for j := w.inOff[i]; j < w.inOff[i+1]; j++ {
			buf = appendVal(buf, &w.inArena[j])
		}
	}
	return buf
}

// applyWorkerDelta folds a delta section into a decoded full snapshot,
// rebuilding the inbox arena with the dirty vertices' entries replaced.
func applyWorkerDelta[V, M any](cw *ckptWorker[V, M], data []byte) error {
	if len(data) == 0 {
		return corruptf("pregel: corrupt delta checkpoint: empty worker section")
	}
	flag, data := data[0], data[1:]
	if flag != wsecBinary {
		return corruptf("pregel: corrupt delta checkpoint: section flag %d", flag)
	}
	un, data, err := ConsumeUvarint(data)
	if err != nil {
		return err
	}
	if un > uint64(len(cw.IDs)) {
		return corruptf("pregel: delta checkpoint has %d vertices, snapshot has %d", un, len(cw.IDs))
	}
	n := int(un)
	if n != len(cw.IDs) {
		return corruptf("pregel: delta checkpoint has %d vertices, snapshot has %d", n, len(cw.IDs))
	}
	ud, data, err := ConsumeUvarint(data)
	if err != nil {
		return err
	}
	// Each dirty entry costs at least its index delta and flags byte.
	if ud > uint64(len(data)) {
		return corruptf("pregel: corrupt delta checkpoint: %d dirty entries in %d bytes", ud, len(data))
	}
	dirtyN := int(ud)

	newArena := make([]M, 0, len(cw.InArena))
	newOff := make([]int32, n+1)
	nextIdx := -1
	prev := 0
	readIdx := func() error {
		if dirtyN == 0 {
			nextIdx = n // past the end
			return nil
		}
		d, rest, err := ConsumeUvarint(data)
		if err != nil {
			return err
		}
		data = rest
		nextIdx = prev + int(d)
		prev = nextIdx
		dirtyN--
		return nil
	}
	if err := readIdx(); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		newOff[i] = int32(len(newArena))
		if i != nextIdx {
			// Clean vertex: previous snapshot entry stands.
			newArena = append(newArena, cw.InArena[cw.InOff[i]:cw.InOff[i+1]]...)
			continue
		}
		if len(data) < 1 {
			return corruptf("pregel: corrupt delta checkpoint: truncated entry")
		}
		flags := data[0]
		data = data[1:]
		cw.Active[i] = flags&1 != 0
		cw.Dead[i] = flags&2 != 0
		if data, err = consumeVal(data, &cw.Vals[i]); err != nil {
			return err
		}
		cnt, rest, err := ConsumeUvarint(data)
		if err != nil {
			return err
		}
		// Zero-size message types carry no payload bytes to run out of, so
		// the count itself must be bounded; sized types fail fast below
		// when the bytes run dry.
		if cnt > uint64(math.MaxInt32) {
			return corruptf("pregel: corrupt delta checkpoint: vertex inbox claims %d messages", cnt)
		}
		data = rest
		for j := uint64(0); j < cnt; j++ {
			var m M
			if data, err = consumeVal(data, &m); err != nil {
				return err
			}
			newArena = append(newArena, m)
		}
		if int64(len(newArena)) > math.MaxInt32 {
			return corruptf("pregel: corrupt delta checkpoint: merged inbox arena overflows the offset table")
		}
		if err := readIdx(); err != nil {
			return err
		}
	}
	newOff[n] = int32(len(newArena))
	if len(data) != 0 {
		return corruptf("pregel: corrupt delta checkpoint: %d trailing bytes", len(data))
	}
	cw.InArena = newArena
	cw.InOff = newOff
	cw.NDead = 0
	for _, d := range cw.Dead {
		if d {
			cw.NDead++
		}
	}
	return nil
}

// appendCkptHeader writes the container header — everything up to and
// including the worker count, which is the header-CRC coverage — shared by
// the current writer and the v2 compatibility encoder. v4 added
// TransportName after PartitionerName; v5 added the adaptive-repartitioning
// block (routing-table payload + migration counters); older versions omit
// them.
func appendCkptHeader(buf []byte, f *ckptFile, version uint64) []byte {
	buf = append(buf, ckptMagic...)
	buf = binary.AppendUvarint(buf, version)
	buf = append(buf, f.Kind)
	buf = binary.AppendUvarint(buf, uint64(f.Step))
	buf = binary.AppendUvarint(buf, uint64(f.PrevStep))
	buf = binary.AppendVarint(buf, f.Pending)
	buf = appendCkptString(buf, f.PartitionerName)
	if version >= 4 {
		buf = appendCkptString(buf, f.TransportName)
	}
	if version >= 5 {
		buf = binary.AppendUvarint(buf, uint64(len(f.Routing)))
		buf = append(buf, f.Routing...)
		buf = binary.AppendUvarint(buf, uint64(f.Migrations))
		buf = binary.AppendVarint(buf, f.MigratedVertices)
		buf = binary.AppendVarint(buf, f.MigrationBytes)
	}
	buf = binary.AppendUvarint(buf, uint64(f.NumWorkers))
	buf = binary.AppendUvarint(buf, uint64(f.Supersteps))
	buf = binary.AppendVarint(buf, f.Messages)
	buf = binary.AppendVarint(buf, f.LocalMessages)
	buf = binary.AppendVarint(buf, f.RemoteMessages)
	buf = binary.AppendVarint(buf, f.Bytes)
	buf = binary.AppendVarint(buf, f.DroppedMessages)
	buf = AppendUint64(buf, math.Float64bits(f.ClockNs))
	buf = AppendUint64(buf, f.Fingerprint)
	buf = appendAggSnapshot(buf, f.Agg)
	buf = binary.AppendUvarint(buf, uint64(len(f.Workers)))
	return buf
}

// encodeCkptFile assembles a v3 container around already-encoded worker
// sections: checksummed header, then length-prefixed sections each followed
// by its own CRC32C.
func encodeCkptFile(f *ckptFile) []byte {
	size := 72 + len(f.PartitionerName)
	for _, b := range f.Workers {
		size += len(b) + binary.MaxVarintLen64 + crc32.Size
	}
	buf := make([]byte, 0, size)
	buf = appendCkptHeader(buf, f, ckptVersion)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))
	for _, b := range f.Workers {
		buf = binary.AppendUvarint(buf, uint64(len(b)))
		buf = append(buf, b...)
		buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(b, castagnoli))
	}
	return buf
}

// encodeCkptFileV2 emits the legacy v2 container (no CRCs), kept so the
// v2-read compatibility path stays covered by tests.
func encodeCkptFileV2(f *ckptFile) []byte {
	buf := appendCkptHeader(nil, f, ckptVersionV2)
	for _, b := range f.Workers {
		buf = binary.AppendUvarint(buf, uint64(len(b)))
		buf = append(buf, b...)
	}
	return buf
}

// decodeCkptFile parses a v3 or v2 container. Blobs not starting with the
// PPCK magic — in practice, gob streams written by a pre-v2 binary, or a
// file torn down to garbage — fail with an error naming both formats.
func decodeCkptFile(job string, data []byte) (*ckptFile, error) {
	f, _, err := decodeCkptFileBounds(job, data)
	return f, err
}

// decodeCkptFileBounds is decodeCkptFile plus the container's internal
// boundaries: bounds[0] is the byte offset where the header (including its
// CRC in v3) ends, bounds[i+1] where worker section i (including its CRC)
// ends. The torn-write tests truncate at exactly these offsets, and
// VerifyCheckpointDir reports them.
func decodeCkptFileBounds(job string, data []byte) (*ckptFile, []int64, error) {
	full := data
	if len(data) == 0 {
		// An empty file is what a dropped fsync leaves behind — corruption,
		// eligible for walk-back, unlike the wrong-format case below.
		return nil, nil, corruptf("pregel: checkpoint for job %q is an empty file", job)
	}
	if len(data) < len(ckptMagic) || string(data[:len(ckptMagic)]) != ckptMagic {
		// Deliberately NOT ErrCheckpointCorrupt: bytes in a different format
		// mean the wrong binary wrote them, and walking back to an older
		// generation of the same format would not help.
		return nil, nil, fmt.Errorf("pregel: checkpoint for job %q is not in the binary checkpoint format (missing %q magic): it was most likely written by an older binary using the v1 gob format, which this version cannot restore — rerun with the binary that wrote it, or delete the checkpoint directory to start fresh", job, ckptMagic)
	}
	data = data[len(ckptMagic):]
	ver, data, err := ConsumeUvarint(data)
	if err != nil {
		return nil, nil, err
	}
	if ver != ckptVersion && ver != ckptVersionV4 && ver != ckptVersionV3 && ver != ckptVersionV2 {
		return nil, nil, fmt.Errorf("pregel: checkpoint for job %q uses format v%d, but this binary reads v%d through v%d — rerun with a matching binary or delete the checkpoint directory to start fresh", job, ver, ckptVersionV2, ckptVersion)
	}
	var f ckptFile
	fail := func(err error) (*ckptFile, []int64, error) {
		return nil, nil, fmt.Errorf("pregel: decoding checkpoint (job %q): %w", job, err)
	}
	if len(data) < 1 {
		return fail(corruptf("truncated header"))
	}
	f.Kind, data = data[0], data[1:]
	var u uint64
	if u, data, err = ConsumeUvarint(data); err != nil {
		return fail(err)
	}
	f.Step = int(u)
	if u, data, err = ConsumeUvarint(data); err != nil {
		return fail(err)
	}
	f.PrevStep = int(u)
	if f.Pending, data, err = ConsumeVarint(data); err != nil {
		return fail(err)
	}
	if f.PartitionerName, data, err = consumeCkptString(data); err != nil {
		return fail(err)
	}
	if ver >= 4 {
		if f.TransportName, data, err = consumeCkptString(data); err != nil {
			return fail(err)
		}
	}
	if ver >= 5 {
		if u, data, err = ConsumeUvarint(data); err != nil {
			return fail(err)
		}
		if u > uint64(len(data)) {
			return fail(corruptf("routing table claims %d bytes, %d remain", u, len(data)))
		}
		if u > 0 {
			f.Routing = append([]byte(nil), data[:u]...)
			data = data[u:]
		}
		if u, data, err = ConsumeUvarint(data); err != nil {
			return fail(err)
		}
		f.Migrations = int(u)
		if f.MigratedVertices, data, err = ConsumeVarint(data); err != nil {
			return fail(err)
		}
		if f.MigrationBytes, data, err = ConsumeVarint(data); err != nil {
			return fail(err)
		}
	}
	if u, data, err = ConsumeUvarint(data); err != nil {
		return fail(err)
	}
	f.NumWorkers = int(u)
	if u, data, err = ConsumeUvarint(data); err != nil {
		return fail(err)
	}
	f.Supersteps = int(u)
	if f.Messages, data, err = ConsumeVarint(data); err != nil {
		return fail(err)
	}
	if f.LocalMessages, data, err = ConsumeVarint(data); err != nil {
		return fail(err)
	}
	if f.RemoteMessages, data, err = ConsumeVarint(data); err != nil {
		return fail(err)
	}
	if f.Bytes, data, err = ConsumeVarint(data); err != nil {
		return fail(err)
	}
	if f.DroppedMessages, data, err = ConsumeVarint(data); err != nil {
		return fail(err)
	}
	if u, data, err = ConsumeUint64(data); err != nil {
		return fail(err)
	}
	f.ClockNs = math.Float64frombits(u)
	if f.Fingerprint, data, err = ConsumeUint64(data); err != nil {
		return fail(err)
	}
	if f.Agg, data, err = consumeAggSnapshot(data); err != nil {
		return fail(err)
	}
	if u, data, err = ConsumeUvarint(data); err != nil {
		return fail(err)
	}
	// Each worker section costs at least its length prefix.
	if u > uint64(len(data)) {
		return fail(corruptf("container claims %d worker sections in %d bytes", u, len(data)))
	}
	if ver >= ckptVersionV3 {
		hdrLen := len(full) - len(data)
		if len(data) < crc32.Size {
			return fail(corruptf("truncated header CRC"))
		}
		want := binary.LittleEndian.Uint32(data[:crc32.Size])
		data = data[crc32.Size:]
		if got := crc32.Checksum(full[:hdrLen], castagnoli); got != want {
			return fail(corruptf("header CRC mismatch (stored %08x, computed %08x)", want, got))
		}
	}
	bounds := make([]int64, 0, int(u)+1)
	bounds = append(bounds, int64(len(full)-len(data)))
	f.Workers = make([][]byte, int(u))
	for i := range f.Workers {
		var l uint64
		if l, data, err = ConsumeUvarint(data); err != nil {
			return fail(err)
		}
		if uint64(len(data)) < l {
			return fail(corruptf("truncated worker section %d", i))
		}
		sec := data[:l:l]
		data = data[l:]
		if ver >= ckptVersionV3 {
			if len(data) < crc32.Size {
				return fail(corruptf("truncated CRC of worker section %d", i))
			}
			want := binary.LittleEndian.Uint32(data[:crc32.Size])
			data = data[crc32.Size:]
			if got := crc32.Checksum(sec, castagnoli); got != want {
				return fail(corruptf("worker section %d CRC mismatch (stored %08x, computed %08x)", i, want, got))
			}
		}
		f.Workers[i] = sec
		bounds = append(bounds, int64(len(full)-len(data)))
	}
	if len(data) != 0 {
		return fail(corruptf("%d trailing bytes", len(data)))
	}
	return &f, bounds, nil
}

// appendAggSnapshot encodes the three aggregator maps with sorted keys, so
// equal states encode to equal bytes.
func appendAggSnapshot(buf []byte, a aggSnapshot) []byte {
	sortedKeys := func(n int, collect func(app func(string))) []string {
		ks := make([]string, 0, n)
		collect(func(k string) { ks = append(ks, k) })
		sort.Strings(ks)
		return ks
	}
	ks := sortedKeys(len(a.Sum), func(app func(string)) {
		for k := range a.Sum {
			app(k)
		}
	})
	buf = binary.AppendUvarint(buf, uint64(len(ks)))
	for _, k := range ks {
		buf = appendCkptString(buf, k)
		buf = binary.AppendVarint(buf, a.Sum[k])
	}
	ks = sortedKeys(len(a.Min), func(app func(string)) {
		for k := range a.Min {
			app(k)
		}
	})
	buf = binary.AppendUvarint(buf, uint64(len(ks)))
	for _, k := range ks {
		buf = appendCkptString(buf, k)
		buf = binary.AppendVarint(buf, a.Min[k])
	}
	ks = sortedKeys(len(a.Or), func(app func(string)) {
		for k := range a.Or {
			app(k)
		}
	})
	buf = binary.AppendUvarint(buf, uint64(len(ks)))
	for _, k := range ks {
		buf = appendCkptString(buf, k)
		buf = AppendBool(buf, a.Or[k])
	}
	return buf
}

func consumeAggSnapshot(data []byte) (aggSnapshot, []byte, error) {
	var a aggSnapshot
	// Each map entry costs at least two bytes (key length + value), so an
	// entry count beyond the remaining bytes is corruption; checked before
	// the sized make calls below.
	guard := func(n uint64, data []byte) error {
		if n > uint64(len(data)) {
			return corruptf("pregel: corrupt checkpoint: aggregator snapshot claims %d entries in %d bytes", n, len(data))
		}
		return nil
	}
	n, data, err := ConsumeUvarint(data)
	if err != nil {
		return a, nil, err
	}
	if err := guard(n, data); err != nil {
		return a, nil, err
	}
	if n > 0 {
		a.Sum = make(map[string]int64, n)
	}
	for i := uint64(0); i < n; i++ {
		var k string
		var v int64
		if k, data, err = consumeCkptString(data); err != nil {
			return a, nil, err
		}
		if v, data, err = ConsumeVarint(data); err != nil {
			return a, nil, err
		}
		a.Sum[k] = v
	}
	if n, data, err = ConsumeUvarint(data); err != nil {
		return a, nil, err
	}
	if err := guard(n, data); err != nil {
		return a, nil, err
	}
	if n > 0 {
		a.Min = make(map[string]int64, n)
	}
	for i := uint64(0); i < n; i++ {
		var k string
		var v int64
		if k, data, err = consumeCkptString(data); err != nil {
			return a, nil, err
		}
		if v, data, err = ConsumeVarint(data); err != nil {
			return a, nil, err
		}
		a.Min[k] = v
	}
	if n, data, err = ConsumeUvarint(data); err != nil {
		return a, nil, err
	}
	if err := guard(n, data); err != nil {
		return a, nil, err
	}
	if n > 0 {
		a.Or = make(map[string]bool, n)
	}
	for i := uint64(0); i < n; i++ {
		var k string
		var v bool
		if k, data, err = consumeCkptString(data); err != nil {
			return a, nil, err
		}
		if v, data, err = ConsumeBool(data); err != nil {
			return a, nil, err
		}
		a.Or[k] = v
	}
	return a, data, nil
}
