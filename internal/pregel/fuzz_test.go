package pregel

import (
	"testing"
)

// foldEager replays a message batch through the engine's at-Send eager
// combine: a fold map from destination to lane position, new destinations
// appended in first-occurrence order. It mirrors gAdapter.send with a
// combiner installed and exists so the fuzz suite can compare it against
// combineEnvelopes, the reference semantics.
func foldEager[M any](envs []envelope[M], fn func(a, b M) M) []envelope[M] {
	fold := make(map[VertexID]int32, len(envs))
	out := make([]envelope[M], 0, len(envs))
	for _, e := range envs {
		if i, ok := fold[e.dst]; ok {
			out[i].msg = fn(out[i].msg, e.msg)
			continue
		}
		fold[e.dst] = int32(len(out))
		out = append(out, e)
	}
	return out
}

// decodeBatch turns fuzz bytes into a message batch: each byte pair is one
// (destination, payload) envelope, keeping destinations in a small range so
// collisions (the interesting case) are common.
func decodeBatch(data []byte) []envelope[int64] {
	var envs []envelope[int64]
	for i := 0; i+1 < len(data); i += 2 {
		envs = append(envs, envelope[int64]{
			dst: VertexID(data[i] % 17),
			msg: int64(int8(data[i+1])),
		})
	}
	return envs
}

// FuzzCombineEquivalence checks two properties of the engine's combiner
// path on arbitrary message batches:
//
//  1. Exact equivalence: the eager at-Send fold produces the same envelopes
//     in the same order as the reference combineEnvelopes pass — even for a
//     non-commutative fold, since both fold left-to-right in emission order.
//  2. Order independence: for a commutative, associative combiner (sum, as
//     the API requires), any arrival order combines to the same
//     per-destination totals.
func FuzzCombineEquivalence(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 1, 10}, uint64(0))
	f.Add([]byte{5, 1, 5, 2, 5, 3, 9, 100, 5, 4}, uint64(12345))
	f.Add([]byte{}, uint64(7))
	f.Fuzz(func(t *testing.T, data []byte, permSeed uint64) {
		envs := decodeBatch(data)

		// Property 1: eager fold == reference fold, exactly, under a
		// deliberately order-sensitive combiner.
		sensitive := func(a, b int64) int64 { return a*1000003 + b }
		ref := combineEnvelopes(append([]envelope[int64](nil), envs...), sensitive)
		eager := foldEager(envs, sensitive)
		if len(ref) != len(eager) {
			t.Fatalf("eager combined to %d envelopes, reference %d", len(eager), len(ref))
		}
		for i := range ref {
			if ref[i] != eager[i] {
				t.Fatalf("envelope %d: eager %+v != reference %+v", i, eager[i], ref[i])
			}
		}

		// Property 2: a commutative combiner's per-destination totals are
		// arrival-order independent. Permute with a SplitMix-driven
		// Fisher-Yates derived from the fuzzed seed.
		perm := append([]envelope[int64](nil), envs...)
		z := permSeed
		next := func() uint64 {
			z += 0x9E3779B97F4A7C15
			x := z
			x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
			x = (x ^ (x >> 27)) * 0x94D049BB133111EB
			return x ^ (x >> 31)
		}
		for i := len(perm) - 1; i > 0; i-- {
			j := int(next() % uint64(i+1))
			perm[i], perm[j] = perm[j], perm[i]
		}
		sum := func(a, b int64) int64 { return a + b }
		totals := func(in []envelope[int64]) map[VertexID]int64 {
			m := make(map[VertexID]int64)
			for _, e := range foldEager(in, sum) {
				m[e.dst] = e.msg
			}
			return m
		}
		a, b := totals(envs), totals(perm)
		if len(a) != len(b) {
			t.Fatalf("permuted batch folded to %d destinations, original %d", len(b), len(a))
		}
		for dst, v := range a {
			if b[dst] != v {
				t.Fatalf("destination %d: permuted total %d != original %d", dst, b[dst], v)
			}
		}
	})
}

// TestFuzzSeedsRunClean executes the fuzz corpus seeds as a plain test so
// `go test` (without -fuzz) still covers the equivalence properties.
func TestFuzzSeedsRunClean(t *testing.T) {
	seeds := [][]byte{
		{1, 2, 3, 4, 1, 10},
		{5, 1, 5, 2, 5, 3, 9, 100, 5, 4},
		{},
		{0, 255, 0, 1, 0, 2, 17, 9, 34, 8}, // dst 0 and collisions mod 17
	}
	for _, s := range seeds {
		envs := decodeBatch(s)
		sensitive := func(a, b int64) int64 { return a*1000003 + b }
		ref := combineEnvelopes(append([]envelope[int64](nil), envs...), sensitive)
		eager := foldEager(envs, sensitive)
		if len(ref) != len(eager) {
			t.Fatalf("seed %v: eager %d envelopes != reference %d", s, len(eager), len(ref))
		}
		for i := range ref {
			if ref[i] != eager[i] {
				t.Fatalf("seed %v envelope %d: %+v != %+v", s, i, eager[i], ref[i])
			}
		}
	}
}
