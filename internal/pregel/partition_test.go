package pregel

import (
	"strings"
	"testing"
)

// TestHashPartitionerMatchesLegacy: the default partitioner must reproduce
// the engine's historical hashID-modulo placement bit for bit, so existing
// runs, checkpoints and goldens are unchanged by the abstraction.
func TestHashPartitionerMatchesLegacy(t *testing.T) {
	p := HashPartitioner{}
	for _, workers := range []int{1, 3, 4, 7} {
		for id := uint64(0); id < 10_000; id += 37 {
			want := int(hashID(VertexID(id)) % uint64(workers))
			if got := p.Assign(VertexID(id), workers); got != want {
				t.Fatalf("workers=%d id=%d: Assign=%d, legacy=%d", workers, id, got, want)
			}
		}
	}
}

// TestRangePartitionerSpans: range placement must be monotone over the
// declared ID space (contiguous spans), cover every worker for a full
// sweep, and stay in bounds at the space's edges.
func TestRangePartitionerSpans(t *testing.T) {
	const bits = 10
	p := RangePartitioner{Bits: bits}
	for _, workers := range []int{1, 3, 4, 7} {
		seen := make([]bool, workers)
		prev := 0
		for id := uint64(0); id < 1<<bits; id++ {
			w := p.Assign(VertexID(id), workers)
			if w < 0 || w >= workers {
				t.Fatalf("workers=%d id=%d: worker %d out of range", workers, id, w)
			}
			if w < prev {
				t.Fatalf("workers=%d id=%d: placement went backwards (%d after %d)", workers, id, w, prev)
			}
			prev = w
			seen[w] = true
		}
		for w, ok := range seen {
			if !ok {
				t.Errorf("workers=%d: worker %d owns no IDs", workers, w)
			}
		}
	}
}

// TestRangePartitionerFallback: IDs outside the declared space (contig and
// NULL IDs in the assembler's scheme) must fall back to hash placement.
func TestRangePartitionerFallback(t *testing.T) {
	p := RangePartitioner{Bits: 42}
	h := HashPartitioner{}
	for _, id := range []VertexID{1 << 42, 1 << 63, 1<<63 | 12345, 1 << 62} {
		if got, want := p.Assign(id, 7), h.Assign(id, 7); got != want {
			t.Errorf("id=%x: range fallback %d != hash %d", id, got, want)
		}
	}
	// Degenerate widths disable ranging entirely.
	for _, bits := range []uint{0, 64} {
		p := RangePartitioner{Bits: bits}
		if got, want := p.Assign(5, 7), h.Assign(5, 7); got != want {
			t.Errorf("bits=%d: expected hash fallback, got %d want %d", bits, got, want)
		}
	}
}

// TestRangePartitionerBalance: over a dense ID space, span widths differ by
// at most one ID, i.e. the split is as balanced as arithmetic allows.
func TestRangePartitionerBalance(t *testing.T) {
	const bits = 12
	p := RangePartitioner{Bits: bits}
	for _, workers := range []int{3, 4, 7} {
		counts := make([]int, workers)
		for id := uint64(0); id < 1<<bits; id++ {
			counts[p.Assign(VertexID(id), workers)]++
		}
		min, max := counts[0], counts[0]
		for _, c := range counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if max-min > 1 {
			t.Errorf("workers=%d: span sizes range %d..%d, want spread <= 1", workers, min, max)
		}
	}
}

// TestTablePartitioner: overrides apply only under the worker count they
// were installed for; everything else delegates to the base.
func TestTablePartitioner(t *testing.T) {
	p := NewTablePartitioner("test", HashPartitioner{})
	if p.Name() != "test" {
		t.Fatalf("Name() = %q", p.Name())
	}
	p.Install(map[VertexID]int{10: 2, 11: 9}, 4) // 11 -> 9 is out of range and must be dropped
	if p.Len() != 1 {
		t.Fatalf("out-of-range entry survived Install: len=%d", p.Len())
	}
	if got := p.Assign(10, 4); got != 2 {
		t.Errorf("table override ignored: Assign(10,4)=%d", got)
	}
	if got, want := p.Assign(10, 7), (HashPartitioner{}).Assign(10, 7); got != want {
		t.Errorf("stale table applied under wrong worker count: got %d want %d", got, want)
	}
	if got, want := p.Assign(99, 4), (HashPartitioner{}).Assign(99, 4); got != want {
		t.Errorf("uncovered ID bypassed base: got %d want %d", got, want)
	}
	p.Reset()
	if got, want := p.Assign(10, 4), (HashPartitioner{}).Assign(10, 4); got != want {
		t.Errorf("Reset did not revert to base: got %d want %d", got, want)
	}
}

// partSumCompute is a commutative message-sum compute used by the placement
// tests: every vertex accumulates incoming payloads and forwards its ID to
// a fixed successor ring for a few supersteps.
func partSumCompute(n int, rounds int) Compute[int64, int64] {
	return func(ctx *Context[int64], id VertexID, val *int64, msgs []int64) {
		for _, m := range msgs {
			*val += m
		}
		if ctx.Superstep() >= rounds {
			ctx.VoteToHalt()
			return
		}
		ctx.Send(VertexID((uint64(id)+1)%uint64(n)), int64(id)+1)
		ctx.Send(VertexID((uint64(id)+7)%uint64(n)), 1)
	}
}

// runPlacement executes the ring workload under one partitioner and returns
// final vertex values plus run stats.
func runPlacement(t *testing.T, part Partitioner, workers int, parallel bool) (map[VertexID]int64, *Stats) {
	t.Helper()
	const n = 512
	g := NewGraph[int64, int64](Config{Workers: workers, Parallel: parallel, Partitioner: part})
	for i := 0; i < n; i++ {
		g.AddVertex(VertexID(i), 0)
	}
	st, err := g.Run(partSumCompute(n, 4), WithName("placement"))
	if err != nil {
		t.Fatal(err)
	}
	vals := map[VertexID]int64{}
	g.ForEach(func(id VertexID, v *int64) { vals[id] = *v })
	return vals, st
}

// TestPlacementInvariance: vertex states and message totals are identical
// under every partitioner; only the local/remote split moves. The ring
// workload has perfect range locality, so the range partitioner must beat
// hash on remote fraction.
func TestPlacementInvariance(t *testing.T) {
	baseVals, baseStats := runPlacement(t, HashPartitioner{}, 4, false)
	table := NewTablePartitioner("blocks", nil)
	blocks := map[VertexID]int{}
	for i := 0; i < 512; i++ {
		blocks[VertexID(i)] = i * 4 / 512
	}
	table.Install(blocks, 4)
	for _, tc := range []struct {
		name string
		part Partitioner
	}{
		{"range", RangePartitioner{Bits: 9}},
		{"table", table},
	} {
		for _, parallel := range []bool{false, true} {
			vals, st := runPlacement(t, tc.part, 4, parallel)
			if len(vals) != len(baseVals) {
				t.Fatalf("%s parallel=%v: %d vertices, want %d", tc.name, parallel, len(vals), len(baseVals))
			}
			for id, v := range baseVals {
				if vals[id] != v {
					t.Fatalf("%s parallel=%v: vertex %d = %d, want %d", tc.name, parallel, id, vals[id], v)
				}
			}
			if st.Messages != baseStats.Messages || st.Supersteps != baseStats.Supersteps {
				t.Errorf("%s parallel=%v: stats (msgs=%d steps=%d) != hash (msgs=%d steps=%d)",
					tc.name, parallel, st.Messages, st.Supersteps, baseStats.Messages, baseStats.Supersteps)
			}
			if st.LocalMessages+st.RemoteMessages != st.Messages {
				t.Errorf("%s parallel=%v: local %d + remote %d != total %d",
					tc.name, parallel, st.LocalMessages, st.RemoteMessages, st.Messages)
			}
			if st.RemoteMessages >= baseStats.RemoteMessages {
				t.Errorf("%s parallel=%v: remote messages %d did not drop below hash's %d",
					tc.name, parallel, st.RemoteMessages, baseStats.RemoteMessages)
			}
		}
	}
}

// TestCheckpointPartitionerGuard: resuming a checkpointed job under a
// different partitioner must fail with an error naming both strategies —
// before the generic fingerprint check gets a chance to obscure the cause.
func TestCheckpointPartitionerGuard(t *testing.T) {
	dir := t.TempDir()
	run := func(part Partitioner, resume bool) error {
		// A fresh DirCheckpointer per run restarts the job-key sequence,
		// exactly like a killed-and-restarted process.
		store, err := NewDirCheckpointer(dir)
		if err != nil {
			t.Fatal(err)
		}
		g := NewGraph[int64, int64](Config{
			Workers: 4, Partitioner: part,
			CheckpointEvery: 2, Checkpointer: store, Resume: resume,
		})
		for i := 0; i < 64; i++ {
			g.AddVertex(VertexID(i), 0)
		}
		_, err = g.Run(partSumCompute(64, 4), WithName("guard"))
		return err
	}
	if err := run(RangePartitioner{Bits: 6}, false); err != nil {
		t.Fatal(err)
	}
	err := run(HashPartitioner{}, true)
	if err == nil {
		t.Fatal("resume under a different partitioner succeeded")
	}
	for _, want := range []string{`partitioner "range"`, `"hash"`} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not name %s", err, want)
		}
	}
}

// TestCheckpointWorkerCountGuard: the snapshot header also pins the worker
// count, with an error that says so explicitly.
func TestCheckpointWorkerCountGuard(t *testing.T) {
	dir := t.TempDir()
	run := func(workers int, resume bool) error {
		store, err := NewDirCheckpointer(dir)
		if err != nil {
			t.Fatal(err)
		}
		g := NewGraph[int64, int64](Config{
			Workers:         workers,
			CheckpointEvery: 2, Checkpointer: store, Resume: resume,
		})
		for i := 0; i < 64; i++ {
			g.AddVertex(VertexID(i), 0)
		}
		_, err = g.Run(partSumCompute(64, 4), WithName("guard"))
		return err
	}
	if err := run(4, false); err != nil {
		t.Fatal(err)
	}
	err := run(3, true)
	if err == nil {
		t.Fatal("resume under a different worker count succeeded")
	}
	if !strings.Contains(err.Error(), "4 workers") || !strings.Contains(err.Error(), "has 3") {
		t.Errorf("error %q does not name both worker counts", err)
	}
}

// TestStatsLocalRemoteSurviveRecovery: a crash-recovered run restores its
// tier counters from the checkpoint and finishes with the same split as an
// unfailed run.
func TestStatsLocalRemoteSurviveRecovery(t *testing.T) {
	clean, _ := func() (*Stats, error) {
		g := NewGraph[int64, int64](Config{Workers: 4, Partitioner: RangePartitioner{Bits: 9}, CheckpointEvery: 2})
		for i := 0; i < 512; i++ {
			g.AddVertex(VertexID(i), 0)
		}
		return g.Run(partSumCompute(512, 6), WithName("clean"))
	}()
	faults, err := ParseFaultPlan("3:1")
	if err != nil {
		t.Fatal(err)
	}
	g := NewGraph[int64, int64](Config{
		Workers: 4, Partitioner: RangePartitioner{Bits: 9},
		CheckpointEvery: 2, Faults: faults,
	})
	for i := 0; i < 512; i++ {
		g.AddVertex(VertexID(i), 0)
	}
	recovered, err := g.Run(partSumCompute(512, 6), WithName("recovered"))
	if err != nil {
		t.Fatal(err)
	}
	if recovered.Recoveries != 1 {
		t.Fatalf("expected 1 recovery, got %d", recovered.Recoveries)
	}
	if recovered.LocalMessages != clean.LocalMessages || recovered.RemoteMessages != clean.RemoteMessages {
		t.Errorf("recovered split local=%d remote=%d != clean local=%d remote=%d",
			recovered.LocalMessages, recovered.RemoteMessages, clean.LocalMessages, clean.RemoteMessages)
	}
}
