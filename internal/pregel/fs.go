package pregel

import (
	"io"
	"os"
)

// FS is the filesystem seam DirCheckpointer performs all of its I/O
// through. The default implementation (OSFS) is the real filesystem;
// internal/testfs provides a fault-injecting in-memory implementation used
// by the crash matrices to prove the store survives torn writes, dropped
// fsyncs and crashes between write and rename.
//
// The interface is deliberately small: exactly the operations the
// checkpoint store's commit protocol needs, each with the semantics of the
// corresponding os function.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string, perm os.FileMode) error
	// CreateTemp creates a new file in dir with a unique name built from
	// pattern (the last "*" is replaced by a random string, as in
	// os.CreateTemp). Unique names are what make one checkpoint directory
	// safe to share between processes: a fixed temp name would let two
	// writers interleave into the same file.
	CreateTemp(dir, pattern string) (FSFile, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// ReadDir lists the base names of dir's entries.
	ReadDir(dir string) ([]string, error)
	// ReadFile returns the contents of name.
	ReadFile(name string) ([]byte, error)
	// SyncDir fsyncs the directory itself, making completed renames and
	// removes of its entries durable.
	SyncDir(dir string) error
}

// FSFile is an open, writable checkpoint temp file.
type FSFile interface {
	io.Writer
	// Sync flushes the file's contents to stable storage (fsync).
	Sync() error
	Close() error
	// Name returns the path the file was created with.
	Name() string
}

// Durability selects how hard DirCheckpointer tries to make a committed
// checkpoint survive a machine crash (not just a process crash).
type Durability int

const (
	// DurabilityFull is the default: the temp file is fsynced before the
	// rename and the parent directory is fsynced after it, so a checkpoint
	// reported as saved is on stable storage — a kernel panic or power
	// loss immediately after Save returns cannot tear or drop it. This is
	// the mode a real shared checkpoint store must run in.
	DurabilityFull Durability = iota
	// DurabilityNone skips every fsync. Commit is still atomic against
	// process crashes (write-temp-then-rename), but a machine crash can
	// leave a committed checkpoint empty or torn. Intended for tests and
	// throwaway runs where the SimClock prices the I/O and wall-clock
	// fsync latency is pure overhead.
	DurabilityNone
)

func (d Durability) String() string {
	if d == DurabilityNone {
		return "none"
	}
	return "full"
}

// osFS is the real-filesystem FS.
type osFS struct{}

// OSFS returns the FS backed by the real filesystem (package os).
func OSFS() FS { return osFS{} }

func (osFS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }

func (osFS) CreateTemp(dir, pattern string) (FSFile, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name()
	}
	return names, nil
}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	// Directory fsync is best-effort on platforms that reject it (it is a
	// no-op on some filesystems); the close error is what matters for the
	// handle itself.
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
