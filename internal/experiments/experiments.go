// Package experiments regenerates every table and figure of the paper's
// evaluation (§V) over the synthetic stand-in datasets of DESIGN.md. Both
// cmd/paperbench and the top-level benchmarks drive these entry points, so
// the printed rows and the benchmark measurements come from the same code.
package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"ppaassembler/internal/baselines"
	"ppaassembler/internal/core"
	"ppaassembler/internal/dna"
	"ppaassembler/internal/genome"
	"ppaassembler/internal/pregel"
	"ppaassembler/internal/quality"
	"ppaassembler/internal/readsim"
)

// K is the k-mer length used by all experiments. The paper uses k=31 on
// 48–300 Mbp genomes; the scaled datasets here (0.2–1.6 Mbp) use k=21 to
// keep k-mer uniqueness statistics comparable.
const K = 21

// Dataset is one Table-I stand-in: a generated reference plus simulated
// reads.
type Dataset struct {
	Spec    genome.Spec
	Profile readsim.Profile
	Ref     dna.Seq
	Reads   []string
	// HasRef mirrors Table I: the two small datasets have reference
	// sequences (quality can be measured exactly), the two large ones are
	// evaluated reference-free.
	HasRef bool
}

// LoadDataset builds the named dataset ("sim-HC2", "sim-HCX", "sim-HC14",
// "sim-BI") at the given scale (1.0 = the DESIGN.md size; benchmarks use
// smaller scales).
func LoadDataset(name string, scale float64) (*Dataset, error) {
	var spec genome.Spec
	for _, s := range genome.PaperDatasets() {
		if s.Name == name {
			spec = s
		}
	}
	if spec.Name == "" {
		return nil, fmt.Errorf("experiments: unknown dataset %q", name)
	}
	if scale > 0 && scale != 1 {
		spec.Length = int(float64(spec.Length) * scale)
		spec.Repeats = int(float64(spec.Repeats)*scale) + 1
	}
	ref, err := genome.Generate(spec)
	if err != nil {
		return nil, err
	}
	prof := readsim.PaperProfile(name, spec.Seed+7)
	reads, err := readsim.Simulate(ref, prof)
	if err != nil {
		return nil, err
	}
	return &Dataset{
		Spec:    spec,
		Profile: prof,
		Ref:     ref,
		Reads:   reads,
		HasRef:  name == "sim-HC2" || name == "sim-HCX",
	}, nil
}

// AllDatasetNames lists the Table-I stand-ins in the paper's size order.
func AllDatasetNames() []string {
	return []string{"sim-HC2", "sim-HCX", "sim-HC14", "sim-BI"}
}

// coreOptions returns the paper-default pipeline options for a dataset.
func coreOptions(workers int, labeler core.Labeler) core.Options {
	o := core.DefaultOptions(workers)
	o.K = K
	o.Labeler = labeler
	return o
}

// RunPPA assembles a dataset with the core pipeline.
func RunPPA(d *Dataset, workers int, labeler core.Labeler) (*core.Result, error) {
	return core.Assemble(pregel.ShardSlice(d.Reads, workers), coreOptions(workers, labeler))
}

// Table1 prints the dataset table (the stand-in for Table I).
func Table1(w io.Writer, scale float64) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Dataset\t# of Reads\tAVG Read Length\tReference Length\tHas Reference")
	for _, name := range AllDatasetNames() {
		d, err := LoadDataset(name, scale)
		if err != nil {
			return err
		}
		hasRef := "-"
		if d.HasRef {
			hasRef = "yes"
		}
		fmt.Fprintf(tw, "%s\t%d\t%d bp\t%d\t%s\n",
			name, len(d.Reads), d.Profile.ReadLen, d.Ref.Len(), hasRef)
	}
	return tw.Flush()
}

// Fig12Row is one assembler's scaling series.
type Fig12Row struct {
	Assembler string
	// Seconds maps worker count to end-to-end simulated seconds.
	Seconds map[int]float64
}

// Fig12 measures end-to-end execution time (simulated cluster clock) for
// the four assemblers across worker counts — Figure 12(a) uses sim-HC14,
// Figure 12(b) sim-BI.
func Fig12(d *Dataset, workerCounts []int) ([]Fig12Row, error) {
	asms := []baselines.Assembler{baselines.PPA{}, baselines.ABySS{}, baselines.Ray{}, baselines.SWAP{}}
	var rows []Fig12Row
	for _, a := range asms {
		row := Fig12Row{Assembler: a.Name(), Seconds: map[int]float64{}}
		for _, w := range workerCounts {
			res, err := a.Assemble(pregel.ShardSlice(d.Reads, w), baselines.Options{
				K: K, Theta: 1, TipLen: 80, Workers: w,
			})
			if err != nil {
				return nil, err
			}
			row.Seconds[w] = res.SimSeconds
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFig12 renders the scaling rows like the figure's data table.
func PrintFig12(w io.Writer, title string, workerCounts []int, rows []Fig12Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\t", title)
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t", r.Assembler)
	}
	fmt.Fprintln(tw)
	for _, wc := range workerCounts {
		fmt.Fprintf(tw, "%d\t", wc)
		for _, r := range rows {
			fmt.Fprintf(tw, "%.1f\t", r.Seconds[wc])
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// LabelRow is one Table II/III row: LR vs S-V on one dataset.
type LabelRow struct {
	Dataset  string
	LR, SV   core.LabelStats
	LRStats2 core.LabelStats // unused placeholder for API stability
}

// LabelComparison runs the pipeline once per labeler and extracts the
// k-mer-labeling stats (Table II, phase="kmer") or the contig-labeling
// stats of the second round (Table III, phase="contig").
func LabelComparison(d *Dataset, workers int, phase string) (LabelRow, error) {
	row := LabelRow{Dataset: d.Spec.Name}
	for _, lab := range []core.Labeler{core.LabelerLR, core.LabelerSV} {
		res, err := RunPPA(d, workers, lab)
		if err != nil {
			return row, err
		}
		var st *core.LabelStats
		if phase == "contig" {
			st = res.ContigLabel
		} else {
			st = res.KmerLabel
		}
		if lab == core.LabelerLR {
			row.LR = *st
		} else {
			row.SV = *st
		}
	}
	return row, nil
}

// PrintLabelTable renders Table II or III.
func PrintLabelTable(w io.Writer, title string, rows []LabelRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\n", title)
	fmt.Fprintln(tw, "Dataset\tSupersteps LR\tSupersteps S-V\tMessages LR\tMessages S-V\tRuntime(s) LR\tRuntime(s) S-V")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%.3f\t%.3f\n",
			r.Dataset, r.LR.Supersteps, r.SV.Supersteps,
			r.LR.Messages, r.SV.Messages,
			r.LR.SimSeconds, r.SV.SimSeconds)
	}
	tw.Flush()
}

// QualityRow is one assembler's Table IV/V column.
type QualityRow struct {
	Assembler string
	Report    quality.Report
}

// QualityComparison assembles the dataset with all four assemblers and
// evaluates each result (against the reference when the dataset has one).
func QualityComparison(d *Dataset, workers int) ([]QualityRow, error) {
	asms := []baselines.Assembler{baselines.PPA{}, baselines.ABySS{}, baselines.Ray{}, baselines.SWAP{}}
	var rows []QualityRow
	ref := dna.Seq{}
	if d.HasRef {
		ref = d.Ref
	}
	for _, a := range asms {
		res, err := a.Assemble(pregel.ShardSlice(d.Reads, workers), baselines.Options{
			K: K, Theta: 1, TipLen: 80, Workers: workers,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, QualityRow{
			Assembler: a.Name(),
			Report:    quality.Evaluate(res.Contigs, ref, quality.MinContigLen),
		})
	}
	return rows, nil
}

// PrintQualityTable renders Table IV (with reference metrics) or Table V.
func PrintQualityTable(w io.Writer, title string, rows []QualityRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\n", title)
	fmt.Fprint(tw, "Metric")
	for _, r := range rows {
		fmt.Fprintf(tw, "\t%s", r.Assembler)
	}
	fmt.Fprintln(tw)
	cell := func(name string, f func(quality.Report) string) {
		fmt.Fprint(tw, name)
		for _, r := range rows {
			fmt.Fprintf(tw, "\t%s", f(r.Report))
		}
		fmt.Fprintln(tw)
	}
	cell("# of contigs", func(r quality.Report) string { return fmt.Sprint(r.NumContigs) })
	cell("Total length", func(r quality.Report) string { return fmt.Sprint(r.TotalLength) })
	cell("N50", func(r quality.Report) string { return fmt.Sprint(r.N50) })
	cell("Largest contig", func(r quality.Report) string { return fmt.Sprint(r.LargestContig) })
	cell("GC (%)", func(r quality.Report) string { return fmt.Sprintf("%.2f", r.GCPercent) })
	if len(rows) > 0 && rows[0].Report.HasReference {
		cell("# misassemblies", func(r quality.Report) string { return fmt.Sprint(r.Misassemblies) })
		cell("Misassembled length", func(r quality.Report) string { return fmt.Sprint(r.MisassembledLength) })
		cell("Unaligned length", func(r quality.Report) string { return fmt.Sprint(r.UnalignedLength) })
		cell("Genome fraction (%)", func(r quality.Report) string { return fmt.Sprintf("%.3f", r.GenomeFraction) })
		cell("# mismatches per 100 kbp", func(r quality.Report) string { return fmt.Sprintf("%.2f", r.MismatchesPer100kbp) })
		cell("# indels per 100 kbp", func(r quality.Report) string { return fmt.Sprintf("%.2f", r.IndelsPer100kbp) })
		cell("Largest alignment", func(r quality.Report) string { return fmt.Sprint(r.LargestAlignment) })
	}
	tw.Flush()
}

// N50Growth reports N50 after the first merge round and after the full
// workflow (the paper: 1074 -> 2070 on HC-2, experiment E8).
func N50Growth(d *Dataset, workers int) (round1, final int, err error) {
	res, err := RunPPA(d, workers, core.LabelerLR)
	if err != nil {
		return 0, 0, err
	}
	var l1, l2 []int
	for _, c := range res.Round1Contigs {
		l1 = append(l1, c.Len())
	}
	for _, c := range res.Contigs {
		l2 = append(l2, c.Len())
	}
	return quality.N50(l1), quality.N50(l2), nil
}

// VertexCollapse reports the three-stage vertex-count collapse of §V
// (experiment E9; the paper: 46.97M -> 1.00M -> 68k on HC-2).
func VertexCollapse(d *Dataset, workers int) (kmers, mid, contigs int, err error) {
	res, err := RunPPA(d, workers, core.LabelerLR)
	if err != nil {
		return 0, 0, 0, err
	}
	return res.KmerVertices, res.MidVertices, res.FinalContigs, nil
}
