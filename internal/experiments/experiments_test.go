package experiments

import (
	"bytes"
	"strings"
	"testing"

	"ppaassembler/internal/core"
)

const testScale = 0.02 // 4 kbp sim-HC2 etc: fast enough for unit tests

func TestLoadDataset(t *testing.T) {
	d, err := LoadDataset("sim-HC2", testScale)
	if err != nil {
		t.Fatal(err)
	}
	if d.Ref.Len() != 4000 {
		t.Errorf("ref length = %d, want 4000", d.Ref.Len())
	}
	if len(d.Reads) == 0 {
		t.Error("no reads")
	}
	if !d.HasRef {
		t.Error("sim-HC2 must have a reference")
	}
	d2, err := LoadDataset("sim-HC14", testScale)
	if err != nil {
		t.Fatal(err)
	}
	if d2.HasRef {
		t.Error("sim-HC14 must be reference-free")
	}
	if _, err := LoadDataset("nope", 1); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestTable1Prints(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(&buf, testScale); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range AllDatasetNames() {
		if !strings.Contains(out, name) {
			t.Errorf("Table1 output missing %s", name)
		}
	}
}

func TestFig12ShapesAtSmallScale(t *testing.T) {
	d, err := LoadDataset("sim-HC2", testScale)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Fig12(d, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig12Row{}
	for _, r := range rows {
		byName[r.Assembler] = r
	}
	ppa := byName["PPA-assembler"]
	if ppa.Seconds[8] >= ppa.Seconds[1] {
		t.Errorf("PPA did not improve with workers: %v", ppa.Seconds)
	}
	ab := byName["ABySS-style"]
	if ab.Seconds[8] < ab.Seconds[1]/2 {
		t.Errorf("ABySS-style scaled too well: %v", ab.Seconds)
	}
	var buf bytes.Buffer
	PrintFig12(&buf, "# workers", []int{1, 8}, rows)
	if !strings.Contains(buf.String(), "Ray-style") {
		t.Error("PrintFig12 output incomplete")
	}
}

func TestLabelComparisonLRBeatsSV(t *testing.T) {
	d, err := LoadDataset("sim-HC2", testScale)
	if err != nil {
		t.Fatal(err)
	}
	row, err := LabelComparison(d, 4, "kmer")
	if err != nil {
		t.Fatal(err)
	}
	if row.LR.Supersteps >= row.SV.Supersteps {
		t.Errorf("Table II shape violated: LR %d supersteps vs SV %d",
			row.LR.Supersteps, row.SV.Supersteps)
	}
	if row.LR.Messages >= row.SV.Messages {
		t.Errorf("Table II shape violated: LR %d messages vs SV %d",
			row.LR.Messages, row.SV.Messages)
	}
	rowC, err := LabelComparison(d, 4, "contig")
	if err != nil {
		t.Fatal(err)
	}
	// Table III's rows are orders of magnitude below Table II's.
	if rowC.LR.Messages*10 > row.LR.Messages {
		t.Errorf("contig labeling messages %d not well below k-mer labeling %d",
			rowC.LR.Messages, row.LR.Messages)
	}
	var buf bytes.Buffer
	PrintLabelTable(&buf, "Table II", []LabelRow{row})
	if !strings.Contains(buf.String(), "sim-HC2") {
		t.Error("PrintLabelTable output incomplete")
	}
}

func TestQualityComparisonShape(t *testing.T) {
	d, err := LoadDataset("sim-HC2", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := QualityComparison(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]QualityRow{}
	for _, r := range rows {
		byName[r.Assembler] = r
	}
	ppa := byName["PPA-assembler"].Report
	if !ppa.HasReference {
		t.Fatal("reference metrics missing")
	}
	for _, b := range []string{"ABySS-style", "Ray-style"} {
		if ppa.N50 < byName[b].Report.N50 {
			t.Errorf("PPA N50 %d below %s %d", ppa.N50, b, byName[b].Report.N50)
		}
	}
	var buf bytes.Buffer
	PrintQualityTable(&buf, "Table IV", rows)
	if !strings.Contains(buf.String(), "Genome fraction") {
		t.Error("reference metrics not printed")
	}
}

func TestN50GrowthAfterErrorCorrection(t *testing.T) {
	// Experiment E8: the second merge round must grow N50 substantially
	// (the paper reports ~2x on HC-2).
	d, err := LoadDataset("sim-HC2", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	r1, final, err := N50Growth(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	if final < r1 {
		t.Errorf("N50 shrank across the second round: %d -> %d", r1, final)
	}
	if float64(final) < 1.2*float64(r1) {
		t.Errorf("N50 growth %d -> %d below 1.2x; error correction ineffective", r1, final)
	}
}

func TestVertexCollapseShape(t *testing.T) {
	// Experiment E9: k-mers >> mid >> final contigs.
	d, err := LoadDataset("sim-HC2", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	kmers, mid, contigs, err := VertexCollapse(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	if kmers < mid*10 {
		t.Errorf("k-mers %d not >> mid %d", kmers, mid)
	}
	if mid < contigs {
		t.Errorf("mid %d below final contigs %d", mid, contigs)
	}
}

func TestRunPPAWithBothLabelers(t *testing.T) {
	d, err := LoadDataset("sim-HC2", testScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, lab := range []core.Labeler{core.LabelerLR, core.LabelerSV} {
		res, err := RunPPA(d, 2, lab)
		if err != nil {
			t.Fatalf("%v: %v", lab, err)
		}
		if len(res.Contigs) == 0 {
			t.Errorf("%v produced no contigs", lab)
		}
	}
}
