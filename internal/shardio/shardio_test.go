package shardio

import (
	"path/filepath"
	"sort"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	shards := [][]string{{"a", "b"}, {"c"}, {"d", "e", "f"}}
	if err := s.WriteShards(shards); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadShards(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("shards = %d", len(got))
	}
	for i := range shards {
		if len(got[i]) != len(shards[i]) {
			t.Fatalf("shard %d length %d", i, len(got[i]))
		}
		for j := range shards[i] {
			if got[i][j] != shards[i][j] {
				t.Errorf("shard %d line %d = %q", i, j, got[i][j])
			}
		}
	}
}

func TestReadShardsRedistributes(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteShards([][]string{{"1", "2", "3", "4", "5"}}); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadShards(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("shards = %d", len(got))
	}
	var all []string
	for _, sh := range got {
		all = append(all, sh...)
	}
	sort.Strings(all)
	want := []string{"1", "2", "3", "4", "5"}
	for i := range want {
		if all[i] != want[i] {
			t.Errorf("line %d = %q", i, all[i])
		}
	}
}

func TestWriteReplacesOldParts(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteShards([][]string{{"a"}, {"b"}, {"c"}}); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteShards([][]string{{"x"}}); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadShards(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0][0] != "x" {
		t.Errorf("stale parts survived: %v", got)
	}
}

func TestEmptyStore(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadShards(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty store returned %v", got)
	}
}
