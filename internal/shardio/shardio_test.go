package shardio

import (
	"fmt"
	"path/filepath"
	"sort"
	"testing"
)

func TestPartSizes(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sizes, err := s.PartSizes()
	if err != nil || len(sizes) != 0 {
		t.Fatalf("empty store: sizes=%v err=%v", sizes, err)
	}
	if err := s.WriteShards([][]string{{"abcd"}, {"ab", "cd"}, {}}); err != nil {
		t.Fatal(err)
	}
	sizes, err = s.PartSizes()
	if err != nil {
		t.Fatal(err)
	}
	// "abcd\n" = 5 bytes; "ab\ncd\n" = 6; empty part = 0.
	want := []int64{5, 6, 0}
	if len(sizes) != len(want) {
		t.Fatalf("sizes = %v, want %v", sizes, want)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Errorf("part %d size = %d, want %d", i, sizes[i], want[i])
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	shards := [][]string{{"a", "b"}, {"c"}, {"d", "e", "f"}}
	if err := s.WriteShards(shards); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadShards(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("shards = %d", len(got))
	}
	for i := range shards {
		if len(got[i]) != len(shards[i]) {
			t.Fatalf("shard %d length %d", i, len(got[i]))
		}
		for j := range shards[i] {
			if got[i][j] != shards[i][j] {
				t.Errorf("shard %d line %d = %q", i, j, got[i][j])
			}
		}
	}
}

func TestReadShardsRedistributes(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteShards([][]string{{"1", "2", "3", "4", "5"}}); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadShards(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("shards = %d", len(got))
	}
	var all []string
	for _, sh := range got {
		all = append(all, sh...)
	}
	sort.Strings(all)
	want := []string{"1", "2", "3", "4", "5"}
	for i := range want {
		if all[i] != want[i] {
			t.Errorf("line %d = %q", i, all[i])
		}
	}
}

func TestWriteReplacesOldParts(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteShards([][]string{{"a"}, {"b"}, {"c"}}); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteShards([][]string{{"x"}}); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadShards(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0][0] != "x" {
		t.Errorf("stale parts survived: %v", got)
	}
}

func TestEmptyStore(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadShards(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty store returned %v", got)
	}
}

// TestInterleavedPairsRoundTrip covers the scaffolding input path: an
// interleaved paired read set must survive a store round-trip with mates
// kept adjacent when read back in on-disk order (workers = 0), and must
// lose no reads when redistributed to any other shard count.
func TestInterleavedPairsRoundTrip(t *testing.T) {
	var interleaved []string
	for i := 0; i < 20; i++ {
		interleaved = append(interleaved,
			fmt.Sprintf("PAIR%02d/1", i), fmt.Sprintf("PAIR%02d/2", i))
	}
	for _, parts := range []int{1, 3} {
		s, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		// Shard whole pairs: each part receives consecutive (R1, R2) blocks.
		shards := make([][]string, parts)
		for i := 0; i+1 < len(interleaved); i += 2 {
			w := (i / 2) % parts
			shards[w] = append(shards[w], interleaved[i], interleaved[i+1])
		}
		if err := s.WriteShards(shards); err != nil {
			t.Fatal(err)
		}

		// workers=0: on-disk order, mates stay adjacent.
		got, err := s.ReadShards(0)
		if err != nil {
			t.Fatal(err)
		}
		var flat []string
		for _, sh := range got {
			flat = append(flat, sh...)
		}
		if len(flat) != len(interleaved) {
			t.Fatalf("parts=%d: %d reads back, want %d", parts, len(flat), len(interleaved))
		}
		for i := 0; i+1 < len(flat); i += 2 {
			if flat[i][:6] != flat[i+1][:6] || flat[i][6:] != "/1" || flat[i+1][6:] != "/2" {
				t.Fatalf("parts=%d: mates separated at %d: %q %q", parts, i, flat[i], flat[i+1])
			}
		}

		// Any re-replicated shard count preserves the read multiset.
		for _, workers := range []int{1, 2, 5, 7} {
			re, err := s.ReadShards(workers)
			if err != nil {
				t.Fatal(err)
			}
			if len(re) != workers {
				t.Fatalf("asked for %d shards, got %d", workers, len(re))
			}
			count := map[string]int{}
			for _, sh := range re {
				for _, line := range sh {
					count[line]++
				}
			}
			if len(count) != len(interleaved) {
				t.Fatalf("parts=%d workers=%d: %d distinct reads, want %d", parts, workers, len(count), len(interleaved))
			}
			for _, r := range interleaved {
				if count[r] != 1 {
					t.Fatalf("parts=%d workers=%d: read %q seen %d times", parts, workers, r, count[r])
				}
			}
		}
	}
}
