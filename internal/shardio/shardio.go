// Package shardio is a minimal sharded line store standing in for HDFS:
// each logical worker owns one part-file (part-00000, part-00001, ...), as
// Hadoop would place blocks. Operations may load their input from a store
// or — the point of the paper's in-memory chaining extension — skip it
// entirely and hand shards between jobs in memory. The store exists so the
// CLI tools and examples can demonstrate both paths.
package shardio

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
)

// Store is a directory of part-files.
type Store struct {
	dir string
}

// Open returns a store rooted at dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("shardio: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) partPath(i int) string {
	return filepath.Join(s.dir, fmt.Sprintf("part-%05d", i))
}

// WriteShards writes one part-file per shard, replacing existing parts.
func (s *Store) WriteShards(shards [][]string) error {
	if err := s.removeParts(); err != nil {
		return err
	}
	for i, shard := range shards {
		f, err := os.Create(s.partPath(i))
		if err != nil {
			return fmt.Errorf("shardio: %w", err)
		}
		w := bufio.NewWriter(f)
		for _, line := range shard {
			if _, err := fmt.Fprintln(w, line); err != nil {
				f.Close()
				return fmt.Errorf("shardio: %w", err)
			}
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return fmt.Errorf("shardio: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("shardio: %w", err)
		}
	}
	return nil
}

// ReadShards loads every part-file in order. If workers > 0 and differs
// from the stored part count, lines are redistributed round-robin across
// the requested number of shards (as a re-replicated HDFS read would).
func (s *Store) ReadShards(workers int) ([][]string, error) {
	parts, err := s.partFiles()
	if err != nil {
		return nil, err
	}
	var all [][]string
	for _, p := range parts {
		f, err := os.Open(p)
		if err != nil {
			return nil, fmt.Errorf("shardio: %w", err)
		}
		var lines []string
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
		for sc.Scan() {
			lines = append(lines, sc.Text())
		}
		if err := sc.Err(); err != nil {
			f.Close()
			return nil, fmt.Errorf("shardio: %w", err)
		}
		f.Close()
		all = append(all, lines)
	}
	if workers <= 0 || workers == len(all) {
		return all, nil
	}
	out := make([][]string, workers)
	i := 0
	for _, shard := range all {
		for _, line := range shard {
			out[i%workers] = append(out[i%workers], line)
			i++
		}
	}
	return out, nil
}

// PartSizes returns the byte size of every part-file in order — what a
// cost model needs to price a store round trip without knowing the
// store's file layout.
func (s *Store) PartSizes() ([]int64, error) {
	parts, err := s.partFiles()
	if err != nil {
		return nil, err
	}
	sizes := make([]int64, len(parts))
	for i, p := range parts {
		fi, err := os.Stat(p)
		if err != nil {
			return nil, fmt.Errorf("shardio: %w", err)
		}
		sizes[i] = fi.Size()
	}
	return sizes, nil
}

func (s *Store) partFiles() ([]string, error) {
	var parts []string
	for i := 0; ; i++ {
		p := s.partPath(i)
		if _, err := os.Stat(p); err != nil {
			if os.IsNotExist(err) {
				break
			}
			return nil, fmt.Errorf("shardio: %w", err)
		}
		parts = append(parts, p)
	}
	return parts, nil
}

func (s *Store) removeParts() error {
	parts, err := s.partFiles()
	if err != nil {
		return err
	}
	for _, p := range parts {
		if err := os.Remove(p); err != nil {
			return fmt.Errorf("shardio: %w", err)
		}
	}
	return nil
}
