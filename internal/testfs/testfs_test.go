package testfs

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// mustCreate writes data into dir/name via the public FS surface (temp +
// write + optional syncs + rename), failing the test on any error.
func mustCreate(t *testing.T, fs *FS, name string, data []byte, syncFile, syncDir bool) {
	t.Helper()
	if err := fs.MkdirAll("/ck", 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := fs.CreateTemp("/ck", name+".tmp-*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if syncFile {
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(f.Name(), "/ck/"+name); err != nil {
		t.Fatal(err)
	}
	if syncDir {
		if err := fs.SyncDir("/ck"); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCrashDiscardsUnsynced(t *testing.T) {
	fs := New()
	mustCreate(t, fs, "durable", []byte("synced"), true, true)
	mustCreate(t, fs, "volatile", []byte("never synced"), false, false)
	fs.Crash()
	if _, ok := fs.ReadRaw("/ck/volatile"); ok {
		t.Error("file without file or dir sync survived the crash")
	}
	got, ok := fs.ReadRaw("/ck/durable")
	if !ok || !bytes.Equal(got, []byte("synced")) {
		t.Errorf("fully synced file after crash: %q, %v", got, ok)
	}
}

// TestCrashRenamedButNoDirSync: a renamed file whose directory was never
// synced vanishes on crash, but the content of an earlier durable entry
// with the same inode is unaffected.
func TestCrashRenamedButNoDirSync(t *testing.T) {
	fs := New()
	mustCreate(t, fs, "a", []byte("v1"), true, true)
	// Overwrite via rename, file synced but directory not.
	mustCreate(t, fs, "a", []byte("v2-longer"), true, false)
	fs.Crash()
	got, ok := fs.ReadRaw("/ck/a")
	if !ok {
		t.Fatal("durable entry lost")
	}
	// The old entry still points at the old inode; the new inode's rename
	// never became durable, so v1 must be what survives.
	if !bytes.Equal(got, []byte("v1")) {
		t.Errorf("after crash without dir sync: %q, want v1", got)
	}
}

// TestSyncAfterSyncDirStillDurable: real fsync semantics — once the
// directory entry is durable, a later file Sync persists content through
// the shared inode without another SyncDir.
func TestSyncAfterSyncDirStillDurable(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll("/ck", 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := fs.CreateTemp("/ck", "x.tmp-*")
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(f.Name(), "/ck/x"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir("/ck"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("late")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	got, ok := fs.ReadRaw("/ck/x")
	if !ok || !bytes.Equal(got, []byte("late")) {
		t.Errorf("content synced after dir sync lost in crash: %q, %v", got, ok)
	}
}

func TestCrashRevertsRemoval(t *testing.T) {
	fs := New()
	mustCreate(t, fs, "keep", []byte("data"), true, true)
	if err := fs.Remove("/ck/keep"); err != nil {
		t.Fatal(err)
	}
	if _, ok := fs.ReadRaw("/ck/keep"); ok {
		t.Fatal("volatile view still has removed file")
	}
	fs.Crash()
	if _, ok := fs.ReadRaw("/ck/keep"); !ok {
		t.Error("removal without dir sync survived the crash")
	}

	// And with a dir sync the removal is durable.
	fs2 := New()
	mustCreate(t, fs2, "gone", []byte("data"), true, true)
	if err := fs2.Remove("/ck/gone"); err != nil {
		t.Fatal(err)
	}
	if err := fs2.SyncDir("/ck"); err != nil {
		t.Fatal(err)
	}
	fs2.Crash()
	if _, ok := fs2.ReadRaw("/ck/gone"); ok {
		t.Error("synced removal came back after the crash")
	}
}

func TestFailAfterOps(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll("/ck", 0o755); err != nil {
		t.Fatal(err)
	}
	fs.FailAfterOps(1) // CreateTemp succeeds, Write fails.
	f, err := fs.CreateTemp("/ck", "x.tmp-*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("boom")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write after budget: %v, want ErrInjected", err)
	}
	// Every later mutation keeps failing.
	if err := fs.SyncDir("/ck"); !errors.Is(err, ErrInjected) {
		t.Errorf("syncdir after failure: %v, want ErrInjected", err)
	}
	// Crash disarms.
	fs.Crash()
	if err := fs.MkdirAll("/ck", 0o755); err != nil {
		t.Errorf("mkdir after crash: %v", err)
	}
}

func TestFailAfterBytesTornWrite(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll("/ck", 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := fs.CreateTemp("/ck", "x.tmp-*")
	if err != nil {
		t.Fatal(err)
	}
	fs.FailAfterBytes(3)
	n, err := f.Write([]byte("abcdef"))
	if n != 3 || !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write: n=%d err=%v, want 3, ErrInjected", n, err)
	}
	got, _ := fs.ReadRaw(f.Name())
	if !bytes.Equal(got, []byte("abc")) {
		t.Errorf("torn tail content: %q, want abc", got)
	}
	if _, err := f.Write([]byte("more")); !errors.Is(err, ErrInjected) {
		t.Errorf("write after torn write: %v, want ErrInjected", err)
	}
}

func TestDropSyncsAfter(t *testing.T) {
	fs := New()
	fs.DropSyncsAfter(1)
	mustCreate(t, fs, "a", []byte("first"), true, false)  // sync #1 persists
	mustCreate(t, fs, "b", []byte("second"), true, false) // sync #2 dropped
	if err := fs.SyncDir("/ck"); err != nil {             // sync #3 dropped
		t.Fatal(err)
	}
	if fs.Syncs() != 3 {
		t.Fatalf("Syncs() = %d, want 3", fs.Syncs())
	}
	fs.Crash()
	// Nothing survives: a's content was synced but its rename never became
	// durable (the SyncDir was dropped); b lost both.
	if files := fs.Files(); len(files) != 0 {
		t.Errorf("files after crash with dropped dir sync: %v", files)
	}
}

func TestCloneIndependence(t *testing.T) {
	fs := New()
	mustCreate(t, fs, "a", []byte("base"), true, true)
	c := fs.Clone()
	c.Truncate("/ck/a", 2)
	c.FailAfterOps(0)
	// Damage and faults stay in the clone.
	got, _ := fs.ReadRaw("/ck/a")
	if !bytes.Equal(got, []byte("base")) {
		t.Errorf("original damaged by clone edit: %q", got)
	}
	if err := fs.MkdirAll("/x", 0o755); err != nil {
		t.Errorf("original inherited clone's fault plan: %v", err)
	}
	if err := c.MkdirAll("/x", 0o755); !errors.Is(err, ErrInjected) {
		t.Errorf("clone fault plan not armed: %v", err)
	}
	// Clone preserves inode aliasing: crash in the clone behaves like the
	// original would.
	c2 := fs.Clone()
	c2.Crash()
	if !reflect.DeepEqual(c2.Files(), fs.Files()) {
		t.Errorf("clone crash view %v != original durable view %v", c2.Files(), fs.Files())
	}
}

func TestCreateTempUniqueNames(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll("/ck", 0o755); err != nil {
		t.Fatal(err)
	}
	f1, err := fs.CreateTemp("/ck", "x.tmp-*")
	if err != nil {
		t.Fatal(err)
	}
	f2, err := fs.CreateTemp("/ck", "x.tmp-*")
	if err != nil {
		t.Fatal(err)
	}
	if f1.Name() == f2.Name() {
		t.Errorf("CreateTemp reused name %s", f1.Name())
	}
}
