// Package testfs is an in-memory, fault-injecting implementation of
// pregel.FS used by the checkpoint crash matrices. It models the two-level
// durability of a real filesystem: file contents become durable on
// Sync (fsync), directory entries — creations, renames, removals — become
// durable on SyncDir, and Crash() discards everything else, leaving
// exactly what a machine crash would have left. On top of that sit fault
// knobs: short writes (torn tails), silently dropped fsyncs (a lying
// disk), and op-granular failures (a crash between write and rename).
//
// Simplification: directories themselves are durable as soon as created —
// checkpoint stores create their directory once up front, so modeling
// mkdir loss buys nothing.
package testfs

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"ppaassembler/internal/pregel"
)

// ErrInjected is returned by operations the fault plan kills. Tests
// distinguish it from genuine logic errors with errors.Is.
var ErrInjected = errors.New("testfs: injected fault")

// inode is one file: the volatile content a running process sees, and the
// durable content a crash preserves (what was there at the last
// un-dropped Sync).
type inode struct {
	data    []byte
	durData []byte
}

// FS implements pregel.FS. The zero value is not usable; call New.
type FS struct {
	mu   sync.Mutex
	dirs map[string]bool
	// files is the volatile namespace; durNames is the durable one (entries
	// as of each directory's last un-dropped SyncDir). Both map to shared
	// inodes, so a file Sync after a SyncDir still lands in the durable
	// view, matching real fsync semantics.
	files    map[string]*inode
	durNames map[string]*inode

	seq          int
	syncs        int
	bytesWritten int64

	// Fault knobs; -1 = disarmed.
	dropSyncsAfter int
	failAfterOps   int
	failAfterBytes int64
	failed         bool
}

// New returns an empty filesystem with no faults armed.
func New() *FS {
	return &FS{
		dirs:           map[string]bool{},
		files:          map[string]*inode{},
		durNames:       map[string]*inode{},
		dropSyncsAfter: -1,
		failAfterOps:   -1,
		failAfterBytes: -1,
	}
}

// --- fault plan -----------------------------------------------------------

// FailAfterOps arms an op-granular crash: the next n mutating operations
// (MkdirAll, CreateTemp, Write, Sync, Rename, Remove, SyncDir) succeed and
// every one after that fails with ErrInjected. n=0 fails the very next
// mutation. Sweeping n across a workload hits every commit-protocol
// boundary, including the gap between write and rename.
func (t *FS) FailAfterOps(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.failAfterOps = n
}

// FailAfterBytes arms a torn write: Write calls consume the budget and the
// write that would exceed it lands only partially (a torn tail) and
// returns ErrInjected; later mutations keep failing.
func (t *FS) FailAfterBytes(n int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.failAfterBytes = n
}

// DropSyncsAfter arms a lying disk: the next n Sync/SyncDir calls persist
// normally, and every one after that reports success without persisting
// anything.
func (t *FS) DropSyncsAfter(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.dropSyncsAfter = n
}

// Crash simulates a machine crash and reboot: the volatile state is
// discarded, every file reverts to its durable view (entries as of the
// last directory sync, contents as of each file's last un-dropped Sync),
// and all fault knobs are disarmed so the "rebooted" process runs clean.
func (t *FS) Crash() {
	t.mu.Lock()
	defer t.mu.Unlock()
	files := make(map[string]*inode, len(t.durNames))
	durNames := make(map[string]*inode, len(t.durNames))
	for name, ino := range t.durNames {
		dur := append([]byte(nil), ino.durData...)
		n := &inode{data: append([]byte(nil), dur...), durData: dur}
		files[name] = n
		durNames[name] = n
	}
	t.files = files
	t.durNames = durNames
	t.dropSyncsAfter = -1
	t.failAfterOps = -1
	t.failAfterBytes = -1
	t.failed = false
}

// Clone deep-copies the filesystem — volatile and durable state — with all
// fault knobs disarmed, so a sweep can fork one baseline into many
// independently damaged copies.
func (t *FS) Clone() *FS {
	t.mu.Lock()
	defer t.mu.Unlock()
	c := New()
	for d := range t.dirs {
		c.dirs[d] = true
	}
	inoMap := map[*inode]*inode{}
	cloneIno := func(ino *inode) *inode {
		if n, ok := inoMap[ino]; ok {
			return n
		}
		n := &inode{
			data:    append([]byte(nil), ino.data...),
			durData: append([]byte(nil), ino.durData...),
		}
		inoMap[ino] = n
		return n
	}
	for name, ino := range t.files {
		c.files[name] = cloneIno(ino)
	}
	for name, ino := range t.durNames {
		c.durNames[name] = cloneIno(ino)
	}
	c.seq = t.seq
	return c
}

// opErr implements the op-granular fault countdown; callers hold t.mu.
func (t *FS) opErr() error {
	if t.failed {
		return ErrInjected
	}
	if t.failAfterOps >= 0 {
		if t.failAfterOps == 0 {
			t.failed = true
			return ErrInjected
		}
		t.failAfterOps--
	}
	return nil
}

// syncDropped reports whether this Sync/SyncDir should silently not
// persist; callers hold t.mu.
func (t *FS) syncDropped() bool {
	if t.dropSyncsAfter < 0 {
		return false
	}
	if t.dropSyncsAfter == 0 {
		return true
	}
	t.dropSyncsAfter--
	return false
}

// --- pregel.FS ------------------------------------------------------------

// MkdirAll implements pregel.FS.
func (t *FS) MkdirAll(dir string, _ os.FileMode) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.opErr(); err != nil {
		return fmt.Errorf("mkdir %s: %w", dir, err)
	}
	dir = filepath.Clean(dir)
	for dir != "." && dir != string(filepath.Separator) {
		t.dirs[dir] = true
		dir = filepath.Dir(dir)
	}
	return nil
}

// CreateTemp implements pregel.FS. Names are deterministic (a global
// sequence replaces the pattern's "*"), keeping crash matrices replayable.
func (t *FS) CreateTemp(dir, pattern string) (pregel.FSFile, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.opErr(); err != nil {
		return nil, fmt.Errorf("create temp in %s: %w", dir, err)
	}
	dir = filepath.Clean(dir)
	if !t.dirs[dir] {
		return nil, &fs.PathError{Op: "createtemp", Path: dir, Err: fs.ErrNotExist}
	}
	var base string
	for {
		suffix := fmt.Sprintf("%06d", t.seq)
		t.seq++
		if i := lastStar(pattern); i >= 0 {
			base = pattern[:i] + suffix + pattern[i+1:]
		} else {
			base = pattern + suffix
		}
		if _, exists := t.files[filepath.Join(dir, base)]; !exists {
			break
		}
	}
	name := filepath.Join(dir, base)
	ino := &inode{}
	t.files[name] = ino
	return &file{fs: t, name: name, ino: ino}, nil
}

func lastStar(pattern string) int {
	for i := len(pattern) - 1; i >= 0; i-- {
		if pattern[i] == '*' {
			return i
		}
	}
	return -1
}

// Rename implements pregel.FS. The entry change is volatile until the
// directory is synced.
func (t *FS) Rename(oldpath, newpath string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.opErr(); err != nil {
		return fmt.Errorf("rename %s: %w", oldpath, err)
	}
	oldpath, newpath = filepath.Clean(oldpath), filepath.Clean(newpath)
	ino, ok := t.files[oldpath]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldpath, Err: fs.ErrNotExist}
	}
	delete(t.files, oldpath)
	t.files[newpath] = ino
	return nil
}

// Remove implements pregel.FS. Volatile until the directory is synced.
func (t *FS) Remove(name string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.opErr(); err != nil {
		return fmt.Errorf("remove %s: %w", name, err)
	}
	name = filepath.Clean(name)
	if _, ok := t.files[name]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(t.files, name)
	return nil
}

// ReadDir implements pregel.FS: sorted base names of the directory's
// (volatile) file entries.
func (t *FS) ReadDir(dir string) ([]string, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	dir = filepath.Clean(dir)
	if !t.dirs[dir] {
		return nil, &fs.PathError{Op: "readdir", Path: dir, Err: fs.ErrNotExist}
	}
	var names []string
	for name := range t.files {
		if filepath.Dir(name) == dir {
			names = append(names, filepath.Base(name))
		}
	}
	sort.Strings(names)
	return names, nil
}

// ReadFile implements pregel.FS.
func (t *FS) ReadFile(name string) ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ino, ok := t.files[filepath.Clean(name)]
	if !ok {
		return nil, &fs.PathError{Op: "read", Path: name, Err: fs.ErrNotExist}
	}
	return append([]byte(nil), ino.data...), nil
}

// SyncDir implements pregel.FS: the directory's current entries (and
// entry removals) become durable. File contents stay governed by each
// file's own Sync.
func (t *FS) SyncDir(dir string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.opErr(); err != nil {
		return fmt.Errorf("syncdir %s: %w", dir, err)
	}
	t.syncs++
	if t.syncDropped() {
		return nil
	}
	dir = filepath.Clean(dir)
	for name := range t.durNames {
		if filepath.Dir(name) == dir {
			if _, ok := t.files[name]; !ok {
				delete(t.durNames, name)
			}
		}
	}
	for name, ino := range t.files {
		if filepath.Dir(name) == dir {
			t.durNames[name] = ino
		}
	}
	return nil
}

// file is an open testfs handle.
type file struct {
	fs   *FS
	name string
	ino  *inode
}

func (f *file) Name() string { return f.name }

func (f *file) Write(p []byte) (int, error) {
	t := f.fs
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.opErr(); err != nil {
		return 0, fmt.Errorf("write %s: %w", f.name, err)
	}
	if t.failAfterBytes >= 0 && int64(len(p)) > t.failAfterBytes {
		// Torn write: part of the payload lands, then the fault fires.
		n := int(t.failAfterBytes)
		f.ino.data = append(f.ino.data, p[:n]...)
		t.bytesWritten += int64(n)
		t.failAfterBytes = 0
		t.failed = true
		return n, fmt.Errorf("write %s: short write after %d bytes: %w", f.name, n, ErrInjected)
	}
	if t.failAfterBytes >= 0 {
		t.failAfterBytes -= int64(len(p))
	}
	f.ino.data = append(f.ino.data, p...)
	t.bytesWritten += int64(len(p))
	return len(p), nil
}

func (f *file) Sync() error {
	t := f.fs
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.opErr(); err != nil {
		return fmt.Errorf("sync %s: %w", f.name, err)
	}
	t.syncs++
	if t.syncDropped() {
		return nil
	}
	f.ino.durData = append([]byte(nil), f.ino.data...)
	return nil
}

func (f *file) Close() error { return nil }

// --- test helpers ---------------------------------------------------------

// Files returns the sorted full paths of the volatile namespace.
func (t *FS) Files() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	names := make([]string, 0, len(t.files))
	for name := range t.files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Truncate cuts name to n bytes in both the volatile and durable views —
// the torn-tail primitive: "this is what reached the disk".
func (t *FS) Truncate(name string, n int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	ino, ok := t.files[filepath.Clean(name)]
	if !ok {
		return &fs.PathError{Op: "truncate", Path: name, Err: fs.ErrNotExist}
	}
	if n < len(ino.data) {
		ino.data = ino.data[:n]
	}
	if n < len(ino.durData) {
		ino.durData = ino.durData[:n]
	}
	return nil
}

// WriteRaw plants a file with identical volatile and durable content,
// bypassing the fault plan — for building corrupt fixtures.
func (t *FS) WriteRaw(name string, data []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	name = filepath.Clean(name)
	dur := append([]byte(nil), data...)
	ino := &inode{data: append([]byte(nil), data...), durData: dur}
	t.files[name] = ino
	t.durNames[name] = ino
	for d := filepath.Dir(name); d != "." && d != string(filepath.Separator); d = filepath.Dir(d) {
		t.dirs[d] = true
	}
}

// ReadRaw returns the volatile content of name, bypassing the fault plan.
func (t *FS) ReadRaw(name string) ([]byte, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ino, ok := t.files[filepath.Clean(name)]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), ino.data...), true
}

// Syncs reports how many Sync/SyncDir calls have been made (dropped ones
// included) — used to size DropSyncsAfter sweeps.
func (t *FS) Syncs() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.syncs
}

// BytesWritten reports the total bytes accepted by Write — used to size
// FailAfterBytes sweeps.
func (t *FS) BytesWritten() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.bytesWritten
}
