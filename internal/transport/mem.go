package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// laneKey addresses one stored lane: the encoded outbox batch from source
// worker Src to destination worker Dst at superstep Step.
type laneKey struct {
	Step int
	Src  int
	Dst  int
}

// Mem is the loopback transport: it names the engine's historical
// in-process shuffle. Loopback reports true, so the engine keeps its
// zero-copy lane delivery and never touches the byte path; Mem exists so
// that runs and checkpoints always carry an explicit transport name.
type Mem struct {
	workers int
}

// NewMem returns the loopback in-memory transport for the given worker
// count.
func NewMem(workers int) *Mem { return &Mem{workers: workers} }

func (m *Mem) Name() string       { return "mem" }
func (m *Mem) Workers() int       { return m.workers }
func (m *Mem) Loopback() bool     { return true }
func (m *Mem) Connect() error     { return nil }
func (m *Mem) Close() error       { return nil }
func (m *Mem) Counters() Counters { return Counters{} }

func (m *Mem) SendLane(step, src, dst int, payload []byte) error {
	return fmt.Errorf("transport mem: SendLane called on the loopback transport")
}

func (m *Mem) RecvLane(step, src, dst int) ([]byte, error) {
	return nil, fmt.Errorf("transport mem: RecvLane called on the loopback transport")
}

func (m *Mem) Barrier(step int, payload []byte) error { return nil }

// MemWire pushes every lane through the full encode → frame → decode wire
// path, but stores the framed bytes in process memory instead of sockets.
// It is the deterministic, dependency-free way to exercise exactly the
// code a TCP run executes: the engine sees Loopback()==false and switches
// to the byte path, frames round-trip through AppendFrame/DecodeFrame, and
// counters meter the traffic — with no listener, no ports, no timing.
type MemWire struct {
	workers int

	mu    sync.Mutex
	depot map[laneKey][]byte

	bytesSent  atomic.Int64
	bytesRecv  atomic.Int64
	framesSent atomic.Int64
	framesRecv atomic.Int64
	barriers   atomic.Int64
}

// NewMemWire returns an in-memory transport that exercises the full frame
// codec.
func NewMemWire(workers int) *MemWire {
	return &MemWire{workers: workers, depot: make(map[laneKey][]byte)}
}

func (m *MemWire) Name() string   { return "memwire" }
func (m *MemWire) Workers() int   { return m.workers }
func (m *MemWire) Loopback() bool { return false }
func (m *MemWire) Connect() error { return nil }
func (m *MemWire) Close() error   { return nil }

func (m *MemWire) Counters() Counters {
	return Counters{
		BytesSent:  m.bytesSent.Load(),
		BytesRecv:  m.bytesRecv.Load(),
		FramesSent: m.framesSent.Load(),
		FramesRecv: m.framesRecv.Load(),
		Barriers:   m.barriers.Load(),
	}
}

func (m *MemWire) SendLane(step, src, dst int, payload []byte) error {
	wire := AppendFrame(nil, Frame{Type: FrameLane, Step: step, Src: src, Dst: dst, Payload: payload})
	m.bytesSent.Add(int64(len(wire)))
	m.framesSent.Add(1)
	f, rest, err := DecodeFrame(wire)
	if err != nil || len(rest) != 0 {
		return fmt.Errorf("transport memwire: lane frame round trip failed: %w", err)
	}
	m.mu.Lock()
	m.depot[laneKey{f.Step, f.Src, f.Dst}] = f.Payload
	m.mu.Unlock()
	return nil
}

func (m *MemWire) RecvLane(step, src, dst int) ([]byte, error) {
	m.mu.Lock()
	payload, ok := m.depot[laneKey{step, src, dst}]
	m.mu.Unlock()
	if !ok {
		return nil, &WorkerDownError{Worker: dst, Err: fmt.Errorf("no lane stored for step %d src %d dst %d", step, src, dst)}
	}
	wire := AppendFrame(nil, Frame{Type: FrameLaneData, Step: step, Src: src, Dst: dst, Payload: payload})
	m.bytesRecv.Add(int64(len(wire)))
	m.framesRecv.Add(1)
	f, _, err := DecodeFrame(wire)
	if err != nil {
		return nil, fmt.Errorf("transport memwire: lane data frame round trip failed: %w", err)
	}
	return f.Payload, nil
}

func (m *MemWire) Barrier(step int, payload []byte) error {
	// Control-plane traffic: the frame still round-trips the codec, but only
	// the barrier counter moves — FramesSent/FramesRecv meter data lanes
	// only (see Counters), and counting the barrier as a send with no
	// matching receive would break their symmetry.
	wire := AppendFrame(nil, Frame{Type: FrameBarrier, Step: step, Payload: payload})
	if _, _, err := DecodeFrame(wire); err != nil {
		return fmt.Errorf("transport memwire: barrier frame round trip failed: %w", err)
	}
	m.barriers.Add(1)
	m.mu.Lock()
	for k := range m.depot {
		if k.Step <= step {
			delete(m.depot, k)
		}
	}
	m.mu.Unlock()
	return nil
}

// DropWorker discards every lane stored for destination worker dst,
// simulating a worker process that died and restarted with an empty depot.
// Tests use it to drive the engine's checkpoint-rollback path without real
// processes.
func (m *MemWire) DropWorker(dst int) {
	m.mu.Lock()
	for k := range m.depot {
		if k.Dst == dst {
			delete(m.depot, k)
		}
	}
	m.mu.Unlock()
}
