package transport

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzFrameDecode feeds arbitrary (and seeded corrupt/truncated) bytes to
// the wire-frame decoder. The invariant mirrors the checkpoint container's
// ErrCheckpointCorrupt taxonomy: DecodeFrame either returns a frame that
// re-encodes to the exact bytes it consumed, or an error wrapping
// ErrFrameCorrupt — never a panic, never silent garbage.
func FuzzFrameDecode(f *testing.F) {
	// Valid frames of every type.
	f.Add(AppendFrame(nil, Frame{Type: FrameHello, Payload: helloPayload(2, 4)}))
	f.Add(AppendFrame(nil, Frame{Type: FrameLane, Step: 9, Src: 1, Dst: 3, Payload: []byte("payload")}))
	f.Add(AppendFrame(nil, Frame{Type: FrameBarrier, Step: 4, Payload: bytes.Repeat([]byte{7}, 200)}))
	f.Add(AppendFrame(nil, Frame{Type: FrameError, Payload: []byte("err")}))
	// Two frames back to back.
	f.Add(AppendFrame(AppendFrame(nil, Frame{Type: FrameLaneReq, Step: 1, Src: 0, Dst: 1}),
		Frame{Type: FrameLaneData, Step: 1, Src: 0, Dst: 1, Payload: []byte("x")}))
	// Seeded corruptions: truncation, flipped CRC, flipped type, huge length.
	good := AppendFrame(nil, Frame{Type: FrameLane, Step: 3, Src: 1, Dst: 2, Payload: []byte("seed")})
	f.Add(good[:len(good)-3])
	crcFlip := append([]byte(nil), good...)
	crcFlip[len(crcFlip)-1] ^= 0xFF
	f.Add(crcFlip)
	typeFlip := append([]byte(nil), good...)
	typeFlip[4] = 0xEE
	f.Add(typeFlip)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x00})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		rest := data
		for len(rest) > 0 {
			frame, tail, err := DecodeFrame(rest)
			if err != nil {
				if !errors.Is(err, ErrFrameCorrupt) {
					t.Fatalf("decode error %v does not wrap ErrFrameCorrupt", err)
				}
				return
			}
			if len(tail) >= len(rest) {
				t.Fatalf("decode consumed nothing: %d -> %d bytes", len(rest), len(tail))
			}
			consumed := rest[:len(rest)-len(tail)]
			if re := AppendFrame(nil, frame); !bytes.Equal(re, consumed) {
				t.Fatalf("re-encode mismatch:\n consumed %x\n re-encoded %x", consumed, re)
			}
			rest = tail
		}
	})
}
