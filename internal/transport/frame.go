package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Wire framing, in the style of the engine's PPCK checkpoint container: a
// frame on the wire is
//
//	u32 LE body length | body | u32 LE CRC32C(body)
//
// and the body is
//
//	type byte | uvarint step | uvarint src | uvarint dst
//	| uvarint payload length | payload
//
// The CRC (Castagnoli polynomial, same table as checkpoint v3) makes a torn
// or bit-flipped frame a detected error — ErrFrameCorrupt — instead of
// garbage handed to the lane decoder. Every decode failure wraps
// ErrFrameCorrupt, mirroring the ErrCheckpointCorrupt taxonomy.

// Frame types of the coordinator/worker protocol.
const (
	// FrameHello opens a coordinator connection: payload carries protocol
	// version, the worker index the coordinator believes it dialed, and
	// the worker count. The worker resets its lane depot (a new
	// coordinator session supersedes any previous one) and answers
	// FrameHelloAck, or FrameError on a mismatch.
	FrameHello byte = 1
	// FrameHelloAck acknowledges a FrameHello.
	FrameHelloAck byte = 2
	// FrameLane stores one encoded lane (step, src, dst, payload) in the
	// worker's depot, overwriting any previous lane under the same key.
	// It is not acknowledged; errors surface on the next read.
	FrameLane byte = 3
	// FrameLaneReq asks for the lane stored under (step, src, dst).
	FrameLaneReq byte = 4
	// FrameLaneData answers a FrameLaneReq with the stored payload.
	FrameLaneData byte = 5
	// FrameBarrier signals the end of superstep step, carrying the
	// engine's aggregator snapshot; the worker frees lanes of that step
	// and older and answers FrameBarrierAck.
	FrameBarrier byte = 6
	// FrameBarrierAck acknowledges a FrameBarrier.
	FrameBarrierAck byte = 7
	// FrameError reports a protocol-level failure; the payload is the
	// message text.
	FrameError byte = 8
)

// MaxFrameBytes bounds one frame's body. Lanes are per-(src,dst) message
// batches of one superstep; anything beyond this is a corrupt length
// prefix, not a real lane.
const MaxFrameBytes = 1 << 30

// frameCRC is the CRC32C table shared with the checkpoint container.
var frameCRC = crc32.MakeTable(crc32.Castagnoli)

// ErrFrameCorrupt marks frame decode failures caused by damaged bytes — a
// failed CRC, a truncated body, an unknown frame type, an oversized length
// prefix. Test with errors.Is.
var ErrFrameCorrupt = errors.New("transport frame corrupt")

// frameCorruptf builds an error wrapping ErrFrameCorrupt.
func frameCorruptf(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, ErrFrameCorrupt)...)
}

// Frame is one decoded protocol frame.
type Frame struct {
	Type    byte
	Step    int
	Src     int
	Dst     int
	Payload []byte
}

// AppendFrame appends the wire encoding of f to buf and returns the
// extended slice.
func AppendFrame(buf []byte, f Frame) []byte {
	body := make([]byte, 0, 16+len(f.Payload))
	body = append(body, f.Type)
	body = binary.AppendUvarint(body, uint64(f.Step))
	body = binary.AppendUvarint(body, uint64(f.Src))
	body = binary.AppendUvarint(body, uint64(f.Dst))
	body = binary.AppendUvarint(body, uint64(len(f.Payload)))
	body = append(body, f.Payload...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(body)))
	buf = append(buf, body...)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(body, frameCRC))
}

// DecodeFrame decodes one frame from the front of data, returning the
// frame and the remaining bytes. All failures wrap ErrFrameCorrupt.
func DecodeFrame(data []byte) (Frame, []byte, error) {
	var f Frame
	if len(data) < 4 {
		return f, nil, frameCorruptf("truncated frame length prefix (%d bytes)", len(data))
	}
	n := binary.LittleEndian.Uint32(data[:4])
	if n == 0 {
		return f, nil, frameCorruptf("empty frame body")
	}
	if n > MaxFrameBytes {
		return f, nil, frameCorruptf("frame length %d exceeds the %d-byte bound", n, MaxFrameBytes)
	}
	data = data[4:]
	if uint32(len(data)) < n+4 {
		return f, nil, frameCorruptf("truncated frame: length prefix says %d+4 bytes, %d remain", n, len(data))
	}
	body, rest := data[:n], data[n:]
	want := binary.LittleEndian.Uint32(rest[:4])
	rest = rest[4:]
	if got := crc32.Checksum(body, frameCRC); got != want {
		return f, nil, frameCorruptf("frame CRC mismatch (stored %08x, computed %08x)", want, got)
	}
	var err error
	if f, err = decodeBody(body); err != nil {
		return f, nil, err
	}
	return f, rest, nil
}

// decodeBody parses a CRC-verified frame body.
func decodeBody(body []byte) (Frame, error) {
	var f Frame
	f.Type, body = body[0], body[1:]
	if f.Type < FrameHello || f.Type > FrameError {
		return f, frameCorruptf("unknown frame type %d", f.Type)
	}
	var err error
	if f.Step, body, err = consumeInt(body, "step"); err != nil {
		return f, err
	}
	if f.Src, body, err = consumeInt(body, "src"); err != nil {
		return f, err
	}
	if f.Dst, body, err = consumeInt(body, "dst"); err != nil {
		return f, err
	}
	n, body, err := consumeInt(body, "payload length")
	if err != nil {
		return f, err
	}
	if n != len(body) {
		return f, frameCorruptf("frame payload length %d does not match the %d body bytes left", n, len(body))
	}
	f.Payload = body
	return f, nil
}

// consumeInt decodes one non-negative uvarint field.
func consumeInt(data []byte, field string) (int, []byte, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, frameCorruptf("bad %s uvarint", field)
	}
	if v > MaxFrameBytes {
		return 0, nil, frameCorruptf("%s value %d out of range", field, v)
	}
	return int(v), data[n:], nil
}

// ReadFrame reads exactly one frame from r (blocking). I/O errors are
// returned as-is; malformed bytes wrap ErrFrameCorrupt.
func ReadFrame(r io.Reader) (Frame, error) {
	f, _, err := readFrameCount(r)
	return f, err
}

// readFrameCount is ReadFrame plus the number of wire bytes consumed, for
// exact traffic accounting.
func readFrameCount(r io.Reader) (Frame, int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, 0, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrameBytes {
		return Frame{}, 4, frameCorruptf("frame length %d out of range", n)
	}
	buf := make([]byte, 4+int(n)+4)
	copy(buf, hdr[:])
	if _, err := io.ReadFull(r, buf[4:]); err != nil {
		return Frame{}, 4, err
	}
	f, _, err := DecodeFrame(buf)
	return f, len(buf), err
}

// helloPayload encodes the FrameHello payload: protocol version, the
// worker index being addressed, and the worker count.
const protocolVersion = 1

func helloPayload(worker, workers int) []byte {
	buf := binary.AppendUvarint(nil, protocolVersion)
	buf = binary.AppendUvarint(buf, uint64(worker))
	return binary.AppendUvarint(buf, uint64(workers))
}

func decodeHello(payload []byte) (version, worker, workers int, err error) {
	if version, payload, err = consumeInt(payload, "protocol version"); err != nil {
		return
	}
	if worker, payload, err = consumeInt(payload, "worker index"); err != nil {
		return
	}
	workers, _, err = consumeInt(payload, "worker count")
	return
}
