package transport

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: FrameHello, Payload: helloPayload(3, 7)},
		{Type: FrameHelloAck},
		{Type: FrameLane, Step: 12, Src: 2, Dst: 5, Payload: []byte("lane-bytes")},
		{Type: FrameLane, Step: 0, Src: 0, Dst: 0, Payload: nil},
		{Type: FrameLaneReq, Step: 12, Src: 2, Dst: 5},
		{Type: FrameLaneData, Step: 12, Src: 2, Dst: 5, Payload: bytes.Repeat([]byte{0xAB}, 4096)},
		{Type: FrameBarrier, Step: 99, Payload: []byte("agg-snapshot")},
		{Type: FrameBarrierAck, Step: 99},
		{Type: FrameError, Payload: []byte("boom")},
	}
	var wire []byte
	for _, f := range frames {
		wire = AppendFrame(wire, f)
	}
	rest := wire
	for i, want := range frames {
		var got Frame
		var err error
		got, rest, err = DecodeFrame(rest)
		if err != nil {
			t.Fatalf("frame %d: decode: %v", i, err)
		}
		if got.Type != want.Type || got.Step != want.Step || got.Src != want.Src || got.Dst != want.Dst {
			t.Fatalf("frame %d: got %+v want %+v", i, got, want)
		}
		if !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: payload mismatch", i)
		}
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes after decoding all frames", len(rest))
	}
}

func TestFrameReadStream(t *testing.T) {
	var wire []byte
	for step := 0; step < 5; step++ {
		wire = AppendFrame(wire, Frame{Type: FrameLane, Step: step, Src: 1, Dst: 2, Payload: []byte{byte(step)}})
	}
	r := bytes.NewReader(wire)
	for step := 0; step < 5; step++ {
		f, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if f.Step != step || len(f.Payload) != 1 || f.Payload[0] != byte(step) {
			t.Fatalf("step %d: got %+v", step, f)
		}
	}
}

func TestFrameDecodeCorruption(t *testing.T) {
	good := AppendFrame(nil, Frame{Type: FrameLane, Step: 3, Src: 1, Dst: 2, Payload: []byte("payload")})

	t.Run("bit flips are detected", func(t *testing.T) {
		for i := range good {
			for _, bit := range []byte{0x01, 0x80} {
				mut := append([]byte(nil), good...)
				mut[i] ^= bit
				f, rest, err := DecodeFrame(mut)
				if err == nil {
					// A flip in the length prefix can only "succeed" by
					// shrinking the frame; anything decoded must then fail
					// the CRC, so reaching here is always a bug.
					t.Fatalf("flip byte %d bit %02x: decoded %+v (rest %d) from corrupt frame", i, bit, f, len(rest))
				}
				if !errors.Is(err, ErrFrameCorrupt) {
					t.Fatalf("flip byte %d bit %02x: error %v does not wrap ErrFrameCorrupt", i, bit, err)
				}
			}
		}
	})

	t.Run("truncations are detected", func(t *testing.T) {
		for n := 0; n < len(good); n++ {
			_, _, err := DecodeFrame(good[:n])
			if err == nil {
				t.Fatalf("truncation to %d bytes decoded successfully", n)
			}
			if !errors.Is(err, ErrFrameCorrupt) {
				t.Fatalf("truncation to %d bytes: error %v does not wrap ErrFrameCorrupt", n, err)
			}
		}
	})

	t.Run("oversized length prefix", func(t *testing.T) {
		mut := append([]byte(nil), good...)
		mut[3] = 0xFF // length prefix becomes > MaxFrameBytes
		if _, _, err := DecodeFrame(mut); !errors.Is(err, ErrFrameCorrupt) {
			t.Fatalf("oversized length: %v", err)
		}
	})
}

func TestMemLoopback(t *testing.T) {
	m := NewMem(4)
	if m.Name() != "mem" || !m.Loopback() || m.Workers() != 4 {
		t.Fatalf("unexpected mem identity: %q loopback=%v workers=%d", m.Name(), m.Loopback(), m.Workers())
	}
	if err := m.Connect(); err != nil {
		t.Fatal(err)
	}
	if err := m.SendLane(0, 0, 1, nil); err == nil {
		t.Fatal("SendLane on the loopback transport should refuse")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMemWireStoreAndDrain(t *testing.T) {
	m := NewMemWire(3)
	if m.Name() != "memwire" || m.Loopback() {
		t.Fatalf("unexpected memwire identity: %q loopback=%v", m.Name(), m.Loopback())
	}
	for src := 0; src < 3; src++ {
		for dst := 0; dst < 3; dst++ {
			payload := fmt.Appendf(nil, "lane-%d-%d", src, dst)
			if err := m.SendLane(7, src, dst, payload); err != nil {
				t.Fatal(err)
			}
		}
	}
	for src := 0; src < 3; src++ {
		for dst := 0; dst < 3; dst++ {
			got, err := m.RecvLane(7, src, dst)
			if err != nil {
				t.Fatal(err)
			}
			if want := fmt.Sprintf("lane-%d-%d", src, dst); string(got) != want {
				t.Fatalf("lane (%d,%d): got %q want %q", src, dst, got, want)
			}
		}
	}
	c := m.Counters()
	if c.FramesSent != 9 || c.FramesRecv != 9 || c.BytesSent == 0 || c.BytesRecv == 0 {
		t.Fatalf("unexpected counters: %+v", c)
	}
	// Barrier frees lanes at or below the step.
	if err := m.Barrier(7, []byte("agg")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.RecvLane(7, 0, 0); !IsWorkerDown(err) {
		t.Fatalf("lane should be gone after barrier, got err=%v", err)
	}
}

func TestMemWireOverwriteAndDrop(t *testing.T) {
	m := NewMemWire(2)
	if err := m.SendLane(1, 0, 1, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := m.SendLane(1, 0, 1, []byte("second")); err != nil {
		t.Fatal(err)
	}
	got, err := m.RecvLane(1, 0, 1)
	if err != nil || string(got) != "second" {
		t.Fatalf("overwrite: got %q err=%v", got, err)
	}
	m.DropWorker(1)
	_, err = m.RecvLane(1, 0, 1)
	var wd *WorkerDownError
	if !errors.As(err, &wd) || wd.Worker != 1 {
		t.Fatalf("after DropWorker: err=%v", err)
	}
}

// startWorkers launches n in-process WorkerServers on ephemeral localhost
// ports and returns their addresses plus a shutdown func.
func startWorkers(t *testing.T, n int) ([]string, []*WorkerServer) {
	t.Helper()
	addrs := make([]string, n)
	servers := make([]*WorkerServer, n)
	for i := 0; i < n; i++ {
		s := &WorkerServer{Worker: i}
		addr, err := s.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go s.Serve()
		t.Cleanup(func() { s.Close() })
		addrs[i] = addr
		servers[i] = s
	}
	return addrs, servers
}

func dialTestTCP(t *testing.T, addrs []string) *TCP {
	t.Helper()
	tr, err := DialTCP(TCPOptions{
		Peers:        addrs,
		DialTimeout:  2 * time.Second,
		IOTimeout:    5 * time.Second,
		RetryBackoff: 10 * time.Millisecond,
		MaxRetries:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

func TestTCPLaneExchange(t *testing.T) {
	const workers = 3
	addrs, _ := startWorkers(t, workers)
	tr := dialTestTCP(t, addrs)
	if err := tr.Connect(); err != nil {
		t.Fatal(err)
	}
	if tr.Name() != "tcp" || tr.Loopback() || tr.Workers() != workers {
		t.Fatalf("unexpected tcp identity: %q loopback=%v workers=%d", tr.Name(), tr.Loopback(), tr.Workers())
	}
	for step := 0; step < 3; step++ {
		for src := 0; src < workers; src++ {
			for dst := 0; dst < workers; dst++ {
				payload := fmt.Appendf(nil, "s%d-%d>%d", step, src, dst)
				if err := tr.SendLane(step, src, dst, payload); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Drain destinations concurrently, like the engine does.
		var wg sync.WaitGroup
		errs := make([]error, workers)
		for dst := 0; dst < workers; dst++ {
			wg.Add(1)
			go func(dst int) {
				defer wg.Done()
				for src := 0; src < workers; src++ {
					got, err := tr.RecvLane(step, src, dst)
					if err != nil {
						errs[dst] = err
						return
					}
					if want := fmt.Sprintf("s%d-%d>%d", step, src, dst); string(got) != want {
						errs[dst] = fmt.Errorf("lane (%d,%d,%d): got %q want %q", step, src, dst, got, want)
						return
					}
				}
			}(dst)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := tr.Barrier(step, []byte("agg")); err != nil {
			t.Fatal(err)
		}
	}
	c := tr.Counters()
	if c.Connects != workers || c.Barriers != 3 || c.BytesSent == 0 || c.BytesRecv == 0 || c.WireNs == 0 {
		t.Fatalf("unexpected counters: %+v", c)
	}
}

func TestTCPWorkerRestartDetected(t *testing.T) {
	addrs, servers := startWorkers(t, 2)
	tr := dialTestTCP(t, addrs)
	if err := tr.Connect(); err != nil {
		t.Fatal(err)
	}
	if err := tr.SendLane(0, 0, 1, []byte("lane")); err != nil {
		t.Fatal(err)
	}
	// Kill worker 1 and restart a fresh depot on the same address.
	servers[1].Close()
	restarted := &WorkerServer{Worker: 1}
	var err error
	for i := 0; i < 50; i++ { // the old listener may linger briefly
		if _, err = restarted.Listen(addrs[1]); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("restart listen: %v", err)
	}
	go restarted.Serve()
	t.Cleanup(func() { restarted.Close() })

	// The lane sent before the crash is gone: either the dead connection
	// or the empty depot after redial must surface as WorkerDownError.
	_, err = tr.RecvLane(0, 0, 1)
	var wd *WorkerDownError
	if !errors.As(err, &wd) || wd.Worker != 1 {
		t.Fatalf("expected WorkerDownError for worker 1, got %v", err)
	}
	// The transport recovers: a replay (fresh send + recv) succeeds.
	if err := tr.SendLane(0, 0, 1, []byte("replayed")); err != nil {
		t.Fatalf("replay send: %v", err)
	}
	got, err := tr.RecvLane(0, 0, 1)
	if err != nil || string(got) != "replayed" {
		t.Fatalf("replay recv: got %q err=%v", got, err)
	}
	if tr.Counters().Redials == 0 && tr.Counters().Connects < 3 {
		t.Fatalf("expected a redial after worker restart: %+v", tr.Counters())
	}
}

func TestTCPDialFailureIsWorkerDown(t *testing.T) {
	tr, err := DialTCP(TCPOptions{
		Peers:        []string{"127.0.0.1:1"}, // reserved port, nothing listens
		DialTimeout:  200 * time.Millisecond,
		RetryBackoff: time.Millisecond,
		MaxRetries:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = tr.Connect()
	var wd *WorkerDownError
	if !errors.As(err, &wd) || wd.Worker != 0 {
		t.Fatalf("expected WorkerDownError for worker 0, got %v", err)
	}
}

func TestTCPHelloWrongWorkerRejected(t *testing.T) {
	addrs, _ := startWorkers(t, 1)
	// Peer slot 1 points at worker 0's depot: the hello addresses worker 1,
	// the depot rejects it, and the peer is declared down.
	tr, err := DialTCP(TCPOptions{
		Peers:        []string{addrs[0], addrs[0]},
		DialTimeout:  time.Second,
		RetryBackoff: time.Millisecond,
		MaxRetries:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	err = tr.Connect()
	var wd *WorkerDownError
	if !errors.As(err, &wd) || wd.Worker != 1 {
		t.Fatalf("expected WorkerDownError for mis-addressed worker 1, got %v", err)
	}
	if !strings.Contains(err.Error(), "this is worker 0") {
		t.Fatalf("error should carry the depot's rejection text, got %v", err)
	}
}

func TestWorkerServerCrashHook(t *testing.T) {
	exited := make(chan int, 1)
	s := &WorkerServer{Worker: 0, ExitAfterFrames: 3, Exit: func(code int) {
		exited <- code
		runtime.Goexit() // end the handler goroutine like os.Exit would
	}}
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve()
	t.Cleanup(func() { s.Close() })

	tr := dialTestTCP(t, []string{addr})
	if err := tr.Connect(); err != nil {
		t.Fatal(err)
	}
	// Hello counted as frame 1; two lanes reach the hook threshold.
	tr.SendLane(0, 0, 0, []byte("a"))
	tr.SendLane(0, 0, 0, []byte("b"))
	select {
	case code := <-exited:
		if code != 1 {
			t.Fatalf("crash hook exit code %d", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("crash hook did not fire")
	}
}

func TestWorkerDownErrorText(t *testing.T) {
	err := &WorkerDownError{Worker: 4, Err: errors.New("connection refused")}
	if !strings.Contains(err.Error(), "worker 4") {
		t.Fatalf("error text should name the worker: %q", err.Error())
	}
	if !IsWorkerDown(fmt.Errorf("wrapped: %w", err)) {
		t.Fatal("IsWorkerDown should see through wrapping")
	}
}
