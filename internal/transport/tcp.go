package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// TCPOptions configure the coordinator side of the TCP transport.
type TCPOptions struct {
	// Peers are the worker addresses, one per logical worker, in worker
	// order ("host:port").
	Peers []string
	// DialTimeout bounds one dial attempt. Default 5s.
	DialTimeout time.Duration
	// IOTimeout is the per-frame read/write deadline. A worker that stops
	// responding trips it and surfaces as a WorkerDownError. Default 30s.
	IOTimeout time.Duration
	// RetryBackoff is the initial redial backoff, doubled per attempt up
	// to 1s. Default 50ms.
	RetryBackoff time.Duration
	// MaxRetries is the number of dial attempts per Connect call before a
	// worker is declared down. Default 10.
	MaxRetries int
}

func (o *TCPOptions) withDefaults() {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.IOTimeout <= 0 {
		o.IOTimeout = 30 * time.Second
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 50 * time.Millisecond
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = 10
	}
}

// TCP is the coordinator side of the multi-process transport. One
// connection per worker process, guarded by a per-peer mutex so the engine
// may drain destinations in parallel; all I/O runs under deadlines, and
// any failure on a peer closes its connection and reports a
// *WorkerDownError so the engine can roll back to its latest checkpoint.
// The next Connect (or the lazy redial inside the failing call's retry)
// re-establishes the session.
type TCP struct {
	opts  TCPOptions
	peers []*tcpPeer

	bytesSent  atomic.Int64
	bytesRecv  atomic.Int64
	framesSent atomic.Int64
	framesRecv atomic.Int64
	wireNs     atomic.Int64
	connects   atomic.Int64
	redials    atomic.Int64
	barriers   atomic.Int64
}

type tcpPeer struct {
	mu   sync.Mutex
	addr string
	id   int
	conn net.Conn
}

// DialTCP builds the coordinator transport for the given worker addresses.
// It does not dial; Connect does, so construction is cheap and Connect
// owns every retry.
func DialTCP(opts TCPOptions) (*TCP, error) {
	opts.withDefaults()
	if len(opts.Peers) == 0 {
		return nil, fmt.Errorf("transport tcp: no peer addresses")
	}
	t := &TCP{opts: opts}
	for i, addr := range opts.Peers {
		if addr == "" {
			return nil, fmt.Errorf("transport tcp: empty address for worker %d", i)
		}
		t.peers = append(t.peers, &tcpPeer{addr: addr, id: i})
	}
	return t, nil
}

func (t *TCP) Name() string   { return "tcp" }
func (t *TCP) Workers() int   { return len(t.peers) }
func (t *TCP) Loopback() bool { return false }

func (t *TCP) Counters() Counters {
	return Counters{
		BytesSent:  t.bytesSent.Load(),
		BytesRecv:  t.bytesRecv.Load(),
		FramesSent: t.framesSent.Load(),
		FramesRecv: t.framesRecv.Load(),
		WireNs:     t.wireNs.Load(),
		Connects:   t.connects.Load(),
		Redials:    t.redials.Load(),
		Barriers:   t.barriers.Load(),
	}
}

// Connect dials every worker that is not already connected, retrying with
// exponential backoff. Idempotent.
func (t *TCP) Connect() error {
	for _, p := range t.peers {
		p.mu.Lock()
		err := t.ensureConn(p)
		p.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// ensureConn dials and handshakes p if needed. Caller holds p.mu.
func (t *TCP) ensureConn(p *tcpPeer) error {
	if p.conn != nil {
		return nil
	}
	backoff := t.opts.RetryBackoff
	var lastErr error
	for attempt := 0; attempt < t.opts.MaxRetries; attempt++ {
		if attempt > 0 {
			t.redials.Add(1)
			time.Sleep(backoff)
			if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
		}
		start := time.Now()
		conn, err := net.DialTimeout("tcp", p.addr, t.opts.DialTimeout)
		if err != nil {
			t.wireNs.Add(time.Since(start).Nanoseconds())
			lastErr = err
			continue
		}
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		if err := t.handshake(p, conn); err != nil {
			conn.Close()
			lastErr = err
			continue
		}
		p.conn = conn
		t.connects.Add(1)
		return nil
	}
	return &WorkerDownError{Worker: p.id, Err: fmt.Errorf("dialing %s failed after %d attempts: %w", p.addr, t.opts.MaxRetries, lastErr)}
}

// handshake runs the HELLO exchange on a fresh connection. The worker
// resets its lane depot on HELLO, so a redial always starts from an empty
// depot — which is why a missing lane after a worker restart is detected
// rather than silently served stale.
func (t *TCP) handshake(p *tcpPeer, conn net.Conn) error {
	hello := Frame{Type: FrameHello, Payload: helloPayload(p.id, len(t.peers))}
	ack, err := t.roundTrip(conn, hello)
	if err != nil {
		return fmt.Errorf("hello to worker %d (%s): %w", p.id, p.addr, err)
	}
	if ack.Type == FrameError {
		return fmt.Errorf("worker %d (%s) rejected hello: %s", p.id, p.addr, ack.Payload)
	}
	if ack.Type != FrameHelloAck {
		return fmt.Errorf("worker %d (%s): unexpected hello reply type %d", p.id, p.addr, ack.Type)
	}
	return nil
}

// writeFrame sends one frame under the I/O deadline, metering bytes and
// wire time. The frame counter moves only for data-plane lane frames
// (FrameLane); control frames (hello, lane requests, barriers) still meter
// their bytes — they genuinely cross the wire — but not frames, keeping
// FramesSent==FramesRecv for completed runs (see Counters).
func (t *TCP) writeFrame(conn net.Conn, f Frame) error {
	wire := AppendFrame(nil, f)
	conn.SetWriteDeadline(time.Now().Add(t.opts.IOTimeout))
	start := time.Now()
	_, err := conn.Write(wire)
	t.wireNs.Add(time.Since(start).Nanoseconds())
	if err != nil {
		return err
	}
	t.bytesSent.Add(int64(len(wire)))
	if f.Type == FrameLane {
		t.framesSent.Add(1)
	}
	return nil
}

// readFrame reads one frame under the I/O deadline, metering bytes and
// wire time. Like writeFrame, the frame counter moves only for data-plane
// lane payloads (FrameLaneData); ack frames meter bytes only.
func (t *TCP) readFrame(conn net.Conn) (Frame, error) {
	conn.SetReadDeadline(time.Now().Add(t.opts.IOTimeout))
	start := time.Now()
	f, n, err := readFrameCount(conn)
	t.wireNs.Add(time.Since(start).Nanoseconds())
	if err != nil {
		return f, err
	}
	t.bytesRecv.Add(int64(n))
	if f.Type == FrameLaneData {
		t.framesRecv.Add(1)
	}
	return f, nil
}

// roundTrip writes f and reads the reply on conn.
func (t *TCP) roundTrip(conn net.Conn, f Frame) (Frame, error) {
	if err := t.writeFrame(conn, f); err != nil {
		return Frame{}, err
	}
	return t.readFrame(conn)
}

// withPeer runs fn with worker dst's live connection. On error the
// connection is closed (the next call redials) and a *WorkerDownError is
// returned.
func (t *TCP) withPeer(dst int, fn func(conn net.Conn) error) error {
	if dst < 0 || dst >= len(t.peers) {
		return fmt.Errorf("transport tcp: worker %d out of range [0,%d)", dst, len(t.peers))
	}
	p := t.peers[dst]
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := t.ensureConn(p); err != nil {
		return err
	}
	if err := fn(p.conn); err != nil {
		p.conn.Close()
		p.conn = nil
		var wd *WorkerDownError
		if errors.As(err, &wd) {
			return err
		}
		return &WorkerDownError{Worker: p.id, Err: err}
	}
	return nil
}

// SendLane ships one encoded lane to worker dst's depot. Lane frames are
// pipelined without acknowledgment; a lost lane surfaces on RecvLane.
func (t *TCP) SendLane(step, src, dst int, payload []byte) error {
	return t.withPeer(dst, func(conn net.Conn) error {
		return t.writeFrame(conn, Frame{Type: FrameLane, Step: step, Src: src, Dst: dst, Payload: payload})
	})
}

// RecvLane fetches the lane stored at worker dst for (step, src). A worker
// that restarted since the lanes were sent answers FrameError, which is
// reported as a *WorkerDownError so the engine rolls back and replays.
func (t *TCP) RecvLane(step, src, dst int) ([]byte, error) {
	var payload []byte
	err := t.withPeer(dst, func(conn net.Conn) error {
		reply, err := t.roundTrip(conn, Frame{Type: FrameLaneReq, Step: step, Src: src, Dst: dst})
		if err != nil {
			return err
		}
		switch reply.Type {
		case FrameLaneData:
			payload = reply.Payload
			return nil
		case FrameError:
			return &WorkerDownError{Worker: dst, Err: fmt.Errorf("worker reports: %s", reply.Payload)}
		default:
			return fmt.Errorf("unexpected reply type %d to lane request", reply.Type)
		}
	})
	return payload, err
}

// Barrier publishes the end of superstep step (with the aggregator
// snapshot) to every worker and waits for each acknowledgment.
func (t *TCP) Barrier(step int, payload []byte) error {
	for dst := range t.peers {
		err := t.withPeer(dst, func(conn net.Conn) error {
			reply, err := t.roundTrip(conn, Frame{Type: FrameBarrier, Step: step, Payload: payload})
			if err != nil {
				return err
			}
			if reply.Type == FrameError {
				return fmt.Errorf("worker rejected barrier: %s", reply.Payload)
			}
			if reply.Type != FrameBarrierAck {
				return fmt.Errorf("unexpected reply type %d to barrier", reply.Type)
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	t.barriers.Add(1)
	return nil
}

// Close tears down every worker connection.
func (t *TCP) Close() error {
	var firstErr error
	for _, p := range t.peers {
		p.mu.Lock()
		if p.conn != nil {
			if err := p.conn.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
			p.conn = nil
		}
		p.mu.Unlock()
	}
	return firstErr
}
