// Package transport is the engine's pluggable message-transport subsystem:
// it owns lane addressing, framed message batches, barrier signaling and
// aggregator exchange between the coordinator and its workers.
//
// Two families of implementations exist. The in-memory transports (NewMem,
// NewMemWire) keep every lane in process memory: NewMem is the loopback
// transport behind the engine's historical zero-copy shuffle (the engine
// bypasses the byte path entirely when Loopback reports true), and
// NewMemWire pushes every lane through the full encode/frame/decode path
// without sockets, which is how tests exercise the wire code
// deterministically. The TCP transport (DialTCP) is a real multi-process
// backend: each worker is its own OS process (ppa-assembler -serve-worker)
// acting as a lane depot, lane drains become length-prefixed CRC-framed
// network reads, and worker death surfaces as a typed WorkerDownError so
// the engine can roll back to its latest checkpoint and replay.
//
// The protocol is deliberately coordinator-centric: compute runs on the
// coordinator (user compute functions are Go closures and cannot be shipped
// to another process), and worker processes store and serve the encoded
// lanes addressed to them — the external-shuffle-service design. Because
// lanes are encoded with the engine's deterministic binary codec and drained
// in source-worker order, a run over TCP is byte-identical to an in-memory
// run.
package transport

import (
	"errors"
	"fmt"
)

// Transport moves framed lane batches between logical workers for one
// engine run at a time. Lane (step, src, dst) is the encoded outbox lane
// from source worker src to destination worker dst at superstep step.
//
// The contract the engine relies on:
//
//   - SendLane stores the lane payload at the destination worker; sending
//     the same (step, src, dst) key again overwrites (replay after a
//     rollback re-sends identical bytes, so overwriting is always safe).
//   - RecvLane returns the payload previously sent for the key. The engine
//     always sends every remote lane of a superstep before draining any,
//     so a missing lane means a worker lost state (death + restart) and is
//     reported as a *WorkerDownError.
//   - Barrier publishes the end of a superstep together with an opaque
//     payload (the engine's aggregator snapshot) to every worker; workers
//     may then discard lanes of that step and older.
//
// Implementations must be safe for concurrent RecvLane calls with distinct
// dst values (the engine drains destinations in parallel).
type Transport interface {
	// Name identifies the transport kind ("mem", "tcp", ...). Checkpoints
	// record it; resuming under a different transport fails loudly.
	Name() string
	// Workers is the number of logical workers this transport addresses.
	Workers() int
	// Loopback reports that lanes never leave process memory and the
	// engine should keep its zero-copy in-memory shuffle, skipping the
	// byte path entirely. The mem transport returns true; everything that
	// actually frames bytes returns false.
	Loopback() bool
	// Connect establishes (or re-establishes) the worker connections,
	// retrying with backoff. It is idempotent; the engine calls it once at
	// run start so connection cost is paid before the first superstep.
	Connect() error
	// SendLane stores one encoded lane at the destination worker.
	SendLane(step, src, dst int, payload []byte) error
	// RecvLane fetches the lane stored for (step, src, dst).
	RecvLane(step, src, dst int) ([]byte, error)
	// Barrier signals the end of superstep step to every worker, carrying
	// the aggregator snapshot, and allows them to free that step's lanes.
	Barrier(step int, payload []byte) error
	// Counters returns cumulative traffic counters for this transport
	// instance (monotonic; diff two readings to meter a window).
	Counters() Counters
	// Close releases connections. The transport is unusable afterwards.
	Close() error
}

// Counters are the cumulative traffic totals of one transport instance.
// WireNs meters real wall time spent on wire I/O (dial, write, read) — the
// measured counterpart of the engine's simulated network charge.
//
// FramesSent and FramesRecv count data-plane lane frames only: a FrameLane
// shipped via SendLane, and a FrameLaneData fetched via RecvLane. Control
// frames (hello handshakes, lane requests, barriers and their acks) are
// excluded by every backend, so for any completed run the two are equal —
// each lane sent is drained exactly once. Byte counters remain honest wire
// totals and do include control-frame bytes on backends where control
// frames genuinely cross the wire (tcp), so BytesSent/BytesRecv may differ
// from each other even though frame counts match.
type Counters struct {
	BytesSent  int64
	BytesRecv  int64
	FramesSent int64
	FramesRecv int64
	WireNs     int64
	Connects   int64
	Redials    int64
	Barriers   int64
}

// WorkerDownError reports that a worker process died or lost its lane
// state (connection failure, or a lane request the worker could not serve
// after a restart). The engine treats it like an injected worker crash:
// with checkpointing enabled it rolls back to the latest checkpoint and
// replays; without, the run fails. Test with errors.As.
type WorkerDownError struct {
	Worker int
	Err    error
}

func (e *WorkerDownError) Error() string {
	return fmt.Sprintf("transport: worker %d down: %v", e.Worker, e.Err)
}

func (e *WorkerDownError) Unwrap() error { return e.Err }

// IsWorkerDown reports whether err wraps a *WorkerDownError.
func IsWorkerDown(err error) bool {
	var wd *WorkerDownError
	return errors.As(err, &wd)
}
