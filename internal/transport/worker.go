package transport

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
)

// WorkerServer is the process side of the TCP transport: a lane depot. It
// accepts coordinator connections, stores FrameLane payloads keyed by
// (step, src, dst), serves FrameLaneReq, and frees old lanes on
// FrameBarrier. It holds no compute and no graph state — compute stays on
// the coordinator; the depot is the external shuffle service the engine
// drains over the network.
//
// A new FrameHello resets the depot: a fresh coordinator session (initial
// connect or a redial after either side died) supersedes anything stored
// before, so a replayed superstep never reads stale lanes. This is also
// what makes worker death detectable — after a restart the depot is empty,
// a lane request answers FrameError, and the coordinator maps that to a
// WorkerDownError and rolls back to its checkpoint.
type WorkerServer struct {
	// Worker is this depot's logical worker index; HELLOs addressed to a
	// different index are rejected.
	Worker int
	// Logf receives one line per session event (accept, reset, close).
	// Nil disables logging.
	Logf func(format string, args ...any)
	// ExitAfterFrames, when positive, makes the process exit(1) after
	// handling that many frames — a crash hook for kill-and-recover tests.
	ExitAfterFrames int
	// exit is the crash hook; defaults to log.Fatalf-style os.Exit.
	Exit func(code int)

	mu     sync.Mutex
	depot  map[laneKey][]byte
	frames int
	ln     net.Listener
	conns  map[net.Conn]struct{}
}

// Listen binds addr ("host:port", port 0 for ephemeral) and returns the
// bound address. Serve accepts on the listener until Close.
func (s *WorkerServer) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport worker %d: listen %s: %w", s.Worker, addr, err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	return ln.Addr().String(), nil
}

// Serve accepts coordinator connections until the listener closes. Each
// connection is handled on its own goroutine; the depot is shared, so a
// redial sees the state the HELLO handshake chooses to keep (none).
func (s *WorkerServer) Serve() error {
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln == nil {
		return fmt.Errorf("transport worker %d: Serve before Listen", s.Worker)
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return fmt.Errorf("transport worker %d: accept: %w", s.Worker, err)
		}
		go s.handle(conn)
	}
}

// Close stops the listener and severs live coordinator connections, the
// way a dying worker process would.
func (s *WorkerServer) Close() error {
	s.mu.Lock()
	ln := s.ln
	s.ln = nil
	conns := s.conns
	s.conns = nil
	s.mu.Unlock()
	for conn := range conns {
		conn.Close()
	}
	if ln != nil {
		return ln.Close()
	}
	return nil
}

func (s *WorkerServer) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// handle runs one coordinator session.
func (s *WorkerServer) handle(conn net.Conn) {
	s.mu.Lock()
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	s.logf("worker %d: session from %s", s.Worker, conn.RemoteAddr())
	for {
		f, err := ReadFrame(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				s.logf("worker %d: session ended: %v", s.Worker, err)
			}
			return
		}
		if err := s.dispatch(conn, f); err != nil {
			s.logf("worker %d: reply failed: %v", s.Worker, err)
			return
		}
		s.tickCrashHook()
	}
}

// tickCrashHook implements ExitAfterFrames for crash tests.
func (s *WorkerServer) tickCrashHook() {
	if s.ExitAfterFrames <= 0 {
		return
	}
	s.mu.Lock()
	s.frames++
	crash := s.frames >= s.ExitAfterFrames
	s.mu.Unlock()
	if crash {
		s.logf("worker %d: crash hook after %d frames", s.Worker, s.ExitAfterFrames)
		if s.Exit != nil {
			s.Exit(1)
		}
		log.Fatalf("transport worker %d: crash hook fired", s.Worker)
	}
}

// dispatch handles one frame, writing replies for request frames.
func (s *WorkerServer) dispatch(conn net.Conn, f Frame) error {
	switch f.Type {
	case FrameHello:
		version, worker, _, err := decodeHello(f.Payload)
		if err != nil {
			return s.reply(conn, errorFrame("bad hello payload: %v", err))
		}
		if version != protocolVersion {
			return s.reply(conn, errorFrame("protocol version %d, want %d", version, protocolVersion))
		}
		if worker != s.Worker {
			return s.reply(conn, errorFrame("this is worker %d, hello addressed worker %d", s.Worker, worker))
		}
		s.mu.Lock()
		s.depot = make(map[laneKey][]byte)
		s.mu.Unlock()
		s.logf("worker %d: depot reset for new session", s.Worker)
		return s.reply(conn, Frame{Type: FrameHelloAck})

	case FrameLane:
		payload := append([]byte(nil), f.Payload...)
		s.mu.Lock()
		if s.depot == nil {
			s.depot = make(map[laneKey][]byte)
		}
		s.depot[laneKey{f.Step, f.Src, f.Dst}] = payload
		s.mu.Unlock()
		return nil // lanes are pipelined, not acknowledged

	case FrameLaneReq:
		s.mu.Lock()
		payload, ok := s.depot[laneKey{f.Step, f.Src, f.Dst}]
		s.mu.Unlock()
		if !ok {
			return s.reply(conn, errorFrame("no lane for step %d src %d dst %d (worker restarted?)", f.Step, f.Src, f.Dst))
		}
		return s.reply(conn, Frame{Type: FrameLaneData, Step: f.Step, Src: f.Src, Dst: f.Dst, Payload: payload})

	case FrameBarrier:
		s.mu.Lock()
		for k := range s.depot {
			if k.Step <= f.Step {
				delete(s.depot, k)
			}
		}
		s.mu.Unlock()
		return s.reply(conn, Frame{Type: FrameBarrierAck, Step: f.Step})

	default:
		return s.reply(conn, errorFrame("unexpected frame type %d", f.Type))
	}
}

func (s *WorkerServer) reply(conn net.Conn, f Frame) error {
	_, err := conn.Write(AppendFrame(nil, f))
	return err
}

func errorFrame(format string, args ...any) Frame {
	return Frame{Type: FrameError, Payload: fmt.Appendf(nil, format, args...)}
}
