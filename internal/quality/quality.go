// Package quality computes assembly-quality metrics in the style of QUAST
// [7], which the paper uses for Tables IV and V: contig counts and lengths,
// N50, GC%, and — when a reference is available — genome fraction,
// misassemblies, unaligned length, mismatch and indel rates, and largest
// alignment.
package quality

import (
	"sort"

	"ppaassembler/internal/align"
	"ppaassembler/internal/dna"
)

// MinContigLen is QUAST's default: contigs shorter than 500 bp are ignored
// by the headline metrics.
const MinContigLen = 500

// Report holds the Table IV/V metric set. Reference-based fields are zero
// when no reference was supplied (HasReference false), matching Table V's
// reduced metric set.
type Report struct {
	// Contig statistics (reference-free; Table V).
	NumContigs    int
	TotalLength   int
	N50           int
	N75           int
	L50           int
	LargestContig int
	GCPercent     float64

	// Reference-based statistics (Table IV).
	HasReference        bool
	NG50                int     // N50 against the reference length
	GenomeFraction      float64 // percent of reference bases covered
	Misassemblies       int     // contigs with >= 1 breakpoint
	MisassembledLength  int
	UnalignedLength     int
	MismatchesPer100kbp float64
	IndelsPer100kbp     float64
	LargestAlignment    int
}

// Evaluate computes the report for the given contigs; ref may be the zero
// Seq for reference-free evaluation. Contigs shorter than minLen (pass
// MinContigLen for QUAST behavior, or 0 to keep everything) are excluded.
func Evaluate(contigs []dna.Seq, ref dna.Seq, minLen int) Report {
	var kept []dna.Seq
	for _, c := range contigs {
		if c.Len() >= minLen {
			kept = append(kept, c)
		}
	}
	r := Report{NumContigs: len(kept)}
	gc := 0
	lens := make([]int, 0, len(kept))
	for _, c := range kept {
		r.TotalLength += c.Len()
		gc += c.GC()
		lens = append(lens, c.Len())
		if c.Len() > r.LargestContig {
			r.LargestContig = c.Len()
		}
	}
	r.N50 = N50(lens)
	r.N75 = nxx(lens, 75)
	r.L50 = l50(lens)
	if r.TotalLength > 0 {
		r.GCPercent = 100 * float64(gc) / float64(r.TotalLength)
	}
	if ref.Len() == 0 {
		return r
	}

	r.HasReference = true
	r.NG50 = ngxx(lens, ref.Len(), 50)
	ix := align.NewIndex(ref, align.Options{})
	covered := make([]bool, ref.Len())
	alignedTotal := 0
	mismatches, indels := 0, 0
	for _, c := range kept {
		res := ix.Align(c)
		if res.Breakpoints > 0 {
			r.Misassemblies++
			r.MisassembledLength += c.Len()
		}
		r.UnalignedLength += res.UnalignedLen
		alignedTotal += res.AlignedLen
		mismatches += res.Mismatches
		indels += res.Indels
		for _, b := range res.Blocks {
			if b.Len() > r.LargestAlignment {
				r.LargestAlignment = b.Len()
			}
			for p := b.RStart; p < b.REnd && p < len(covered); p++ {
				if p >= 0 {
					covered[p] = true
				}
			}
		}
	}
	cov := 0
	for _, c := range covered {
		if c {
			cov++
		}
	}
	r.GenomeFraction = 100 * float64(cov) / float64(ref.Len())
	if alignedTotal > 0 {
		r.MismatchesPer100kbp = float64(mismatches) / float64(alignedTotal) * 100_000
		r.IndelsPer100kbp = float64(indels) / float64(alignedTotal) * 100_000
	}
	return r
}

// N50 is the length of the contig at which the cumulative length, walking
// contigs from longest to shortest, first reaches half the total.
func N50(lens []int) int { return nxx(lens, 50) }

// nxx generalizes N50 to any percentile of the total assembly length.
func nxx(lens []int, pct int) int {
	if len(lens) == 0 {
		return 0
	}
	sorted := sortedDesc(lens)
	total := 0
	for _, l := range sorted {
		total += l
	}
	return nAtTarget(sorted, (total*pct+99)/100)
}

// ngxx is the NG-variant: the target is a percentile of the reference
// length rather than of the assembly length (QUAST's NG50). It returns 0
// when the assembly never reaches the target.
func ngxx(lens []int, refLen, pct int) int {
	if len(lens) == 0 {
		return 0
	}
	sorted := sortedDesc(lens)
	target := (refLen*pct + 99) / 100
	acc := 0
	for _, l := range sorted {
		acc += l
		if acc >= target {
			return l
		}
	}
	return 0
}

// l50 is the smallest number of contigs whose lengths sum to half the
// assembly.
func l50(lens []int) int {
	if len(lens) == 0 {
		return 0
	}
	sorted := sortedDesc(lens)
	total := 0
	for _, l := range sorted {
		total += l
	}
	half := (total + 1) / 2
	acc := 0
	for i, l := range sorted {
		acc += l
		if acc >= half {
			return i + 1
		}
	}
	return len(sorted)
}

func sortedDesc(lens []int) []int {
	sorted := make([]int, len(lens))
	copy(sorted, lens)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	return sorted
}

func nAtTarget(sortedDesc []int, target int) int {
	acc := 0
	for _, l := range sortedDesc {
		acc += l
		if acc >= target {
			return l
		}
	}
	return sortedDesc[len(sortedDesc)-1]
}
