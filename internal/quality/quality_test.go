package quality

import (
	"testing"

	"ppaassembler/internal/dna"
	"ppaassembler/internal/genome"
)

func TestN50(t *testing.T) {
	for _, tc := range []struct {
		lens []int
		want int
	}{
		{nil, 0},
		{[]int{100}, 100},
		{[]int{1, 1, 1, 1}, 1},
		{[]int{80, 70, 50, 40, 30, 20}, 70}, // total 290, half 145: 80+70 >= 145
		{[]int{10, 9, 8, 7, 6, 5}, 8},       // total 45, half 23: 10+9+8 >= 23
	} {
		if got := N50(tc.lens); got != tc.want {
			t.Errorf("N50(%v) = %d, want %d", tc.lens, got, tc.want)
		}
	}
}

func TestNxxL50NG50(t *testing.T) {
	lens := []int{80, 70, 50, 40, 30, 20} // total 290
	if got := nxx(lens, 75); got != 40 {  // 3/4 of 290 = 218: 80+70+50+40=240
		t.Errorf("N75 = %d, want 40", got)
	}
	if got := l50(lens); got != 2 { // 80+70 = 150 >= 145
		t.Errorf("L50 = %d, want 2", got)
	}
	if got := l50(nil); got != 0 {
		t.Errorf("L50(nil) = %d", got)
	}
	// NG50 against a 400 bp reference: target 200: 80+70+50=200 -> 50.
	if got := ngxx(lens, 400, 50); got != 50 {
		t.Errorf("NG50 = %d, want 50", got)
	}
	// Assembly too small for the reference target: 0.
	if got := ngxx(lens, 10_000, 50); got != 0 {
		t.Errorf("NG50 with huge reference = %d, want 0", got)
	}
}

func TestEvaluateReportsNG50(t *testing.T) {
	ref, err := genome.Generate(genome.Spec{Name: "r", Length: 4000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	r := Evaluate([]dna.Seq{ref.Slice(0, 3000), ref.Slice(3000, 4000)}, ref, 500)
	if r.NG50 != 3000 {
		t.Errorf("NG50 = %d, want 3000", r.NG50)
	}
	if r.L50 != 1 {
		t.Errorf("L50 = %d, want 1", r.L50)
	}
	if r.N75 != 3000 { // 75% of 4000 = 3000; the first contig reaches it
		t.Errorf("N75 = %d, want 3000", r.N75)
	}
}

func TestEvaluateReferenceFree(t *testing.T) {
	contigs := []dna.Seq{
		dna.ParseSeq(repeatStr("ACGT", 200)), // 800 bp, 50% GC
		dna.ParseSeq(repeatStr("AT", 300)),   // 600 bp, 0% GC
		dna.ParseSeq("ACGT"),                 // below MinContigLen
	}
	r := Evaluate(contigs, dna.Seq{}, MinContigLen)
	if r.NumContigs != 2 {
		t.Errorf("NumContigs = %d", r.NumContigs)
	}
	if r.TotalLength != 1400 {
		t.Errorf("TotalLength = %d", r.TotalLength)
	}
	if r.N50 != 800 || r.LargestContig != 800 {
		t.Errorf("N50 = %d, largest = %d", r.N50, r.LargestContig)
	}
	wantGC := 100 * 400.0 / 1400.0
	if r.GCPercent < wantGC-0.01 || r.GCPercent > wantGC+0.01 {
		t.Errorf("GC%% = %f, want %f", r.GCPercent, wantGC)
	}
	if r.HasReference {
		t.Error("HasReference set without a reference")
	}
}

func repeatStr(s string, n int) string {
	out := make([]byte, 0, len(s)*n)
	for i := 0; i < n; i++ {
		out = append(out, s...)
	}
	return string(out)
}

func TestEvaluatePerfectAssembly(t *testing.T) {
	ref, err := genome.Generate(genome.Spec{Name: "r", Length: 5000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	r := Evaluate([]dna.Seq{ref}, ref, MinContigLen)
	if !r.HasReference {
		t.Fatal("reference ignored")
	}
	if r.GenomeFraction < 99.9 {
		t.Errorf("GenomeFraction = %f", r.GenomeFraction)
	}
	if r.Misassemblies != 0 || r.MismatchesPer100kbp != 0 || r.IndelsPer100kbp != 0 {
		t.Errorf("perfect assembly scored %+v", r)
	}
	if r.LargestAlignment != 5000 {
		t.Errorf("LargestAlignment = %d", r.LargestAlignment)
	}
}

func TestEvaluateFragmentedAssembly(t *testing.T) {
	ref, err := genome.Generate(genome.Spec{Name: "r", Length: 6000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	contigs := []dna.Seq{
		ref.Slice(0, 2000),
		ref.Slice(2500, 4000).ReverseComplement(),
	}
	r := Evaluate(contigs, ref, MinContigLen)
	wantFrac := 100 * 3500.0 / 6000.0
	if r.GenomeFraction < wantFrac-1 || r.GenomeFraction > wantFrac+1 {
		t.Errorf("GenomeFraction = %f, want ~%f", r.GenomeFraction, wantFrac)
	}
	if r.Misassemblies != 0 {
		t.Errorf("Misassemblies = %d", r.Misassemblies)
	}
}

func TestEvaluateMisassembledContig(t *testing.T) {
	ref, err := genome.Generate(genome.Spec{Name: "r", Length: 6000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	chimera := ref.Slice(0, 600).Concat(ref.Slice(4000, 4600))
	r := Evaluate([]dna.Seq{chimera}, ref, MinContigLen)
	if r.Misassemblies != 1 {
		t.Errorf("Misassemblies = %d, want 1", r.Misassemblies)
	}
	if r.MisassembledLength != 1200 {
		t.Errorf("MisassembledLength = %d", r.MisassembledLength)
	}
}

func TestEvaluateUnalignedContig(t *testing.T) {
	ref, _ := genome.Generate(genome.Spec{Name: "r", Length: 3000, Seed: 6})
	foreign, _ := genome.Generate(genome.Spec{Name: "f", Length: 800, Seed: 99})
	r := Evaluate([]dna.Seq{foreign}, ref, MinContigLen)
	if r.UnalignedLength < 700 {
		t.Errorf("UnalignedLength = %d, want ~800", r.UnalignedLength)
	}
}

func TestEvaluateMismatchRate(t *testing.T) {
	ref, _ := genome.Generate(genome.Spec{Name: "r", Length: 5000, Seed: 7})
	// One substitution in an otherwise perfect contig of 2000 bases:
	// 1/2000 aligned bases = 50 per 100 kbp.
	var b dna.Builder
	sl := ref.Slice(1000, 3000)
	for i := 0; i < sl.Len(); i++ {
		base := sl.At(i)
		if i == 1000 {
			base = (base + 1) & 3
		}
		b.Append(base)
	}
	r := Evaluate([]dna.Seq{b.Seq()}, ref, MinContigLen)
	if r.MismatchesPer100kbp < 45 || r.MismatchesPer100kbp > 55 {
		t.Errorf("MismatchesPer100kbp = %f, want ~50", r.MismatchesPer100kbp)
	}
}
