package quality

import (
	"strings"
	"testing"

	"ppaassembler/internal/dna"
	"ppaassembler/internal/genome"
)

func scaffoldRef(t *testing.T, n int, seed int64) dna.Seq {
	t.Helper()
	g, err := genome.Generate(genome.Spec{Name: "t", Length: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestParseScaffold(t *testing.T) {
	p := ParseScaffold("ACGT" + strings.Repeat("N", 5) + "GGCC" + strings.Repeat("N", 2) + "TTAA")
	if len(p.Contigs) != 3 || len(p.Gaps) != 2 {
		t.Fatalf("parts = %d contigs, %d gaps", len(p.Contigs), len(p.Gaps))
	}
	if p.Gaps[0] != 5 || p.Gaps[1] != 2 {
		t.Errorf("gaps = %v", p.Gaps)
	}
	if p.Contigs[1].String() != "GGCC" {
		t.Errorf("middle contig = %s", p.Contigs[1])
	}
	if p.Span() != 4+5+4+2+4 {
		t.Errorf("span = %d", p.Span())
	}
	// Leading/trailing Ns are not joins.
	p = ParseScaffold("NNNACGTACGTNN")
	if len(p.Contigs) != 1 || len(p.Gaps) != 0 {
		t.Errorf("edge-N parts = %d contigs, %d gaps", len(p.Contigs), len(p.Gaps))
	}
}

func TestEvaluateScaffoldsSizesAndN50(t *testing.T) {
	mk := func(lens ...int) ScaffoldParts {
		var p ScaffoldParts
		for i, l := range lens {
			p.Contigs = append(p.Contigs, scaffoldRef(t, l, int64(100+i)))
			if i > 0 {
				p.Gaps = append(p.Gaps, 10)
			}
		}
		return p
	}
	r := EvaluateScaffolds([]ScaffoldParts{mk(600, 400), mk(500)}, dna.Seq{}, 0, 50)
	if r.NumScaffolds != 2 || r.MultiContig != 1 {
		t.Errorf("counts = %d/%d", r.NumScaffolds, r.MultiContig)
	}
	if r.TotalLength != 600+400+10+500 {
		t.Errorf("total = %d", r.TotalLength)
	}
	if r.ScaffoldN50 != 1010 {
		t.Errorf("scaffold N50 = %d, want 1010", r.ScaffoldN50)
	}
	if r.HasReference {
		t.Error("reference-free report claims a reference")
	}
}

func TestEvaluateScaffoldsJoins(t *testing.T) {
	ref := scaffoldRef(t, 6000, 9)
	a := ref.Slice(0, 2000)
	b := ref.Slice(2200, 4000)
	c := ref.Slice(4300, 5800)

	// Correct scaffold: a --200-- b --300-- c.
	good := ScaffoldParts{Contigs: []dna.Seq{a, b, c}, Gaps: []int{200, 300}}
	r := EvaluateScaffolds([]ScaffoldParts{good}, ref, 0, 50)
	if r.Joins != 2 || r.Misjoins != 0 {
		t.Errorf("good scaffold: joins=%d misjoins=%d", r.Joins, r.Misjoins)
	}
	if r.GapsEvaluated != 2 || r.GapsOutOfTolerance != 0 || r.MeanAbsGapError > 1 {
		t.Errorf("gap accuracy: %+v", r)
	}

	// A reverse-complemented scaffold is internally consistent too.
	rc := ScaffoldParts{
		Contigs: []dna.Seq{c.ReverseComplement(), b.ReverseComplement(), a.ReverseComplement()},
		Gaps:    []int{300, 200},
	}
	r = EvaluateScaffolds([]ScaffoldParts{rc}, ref, 0, 50)
	if r.Joins != 2 || r.Misjoins != 0 {
		t.Errorf("rc scaffold: joins=%d misjoins=%d", r.Joins, r.Misjoins)
	}

	// Wrong orientation of the middle contig: both joins are misjoins.
	bad := ScaffoldParts{Contigs: []dna.Seq{a, b.ReverseComplement(), c}, Gaps: []int{200, 300}}
	r = EvaluateScaffolds([]ScaffoldParts{bad}, ref, 0, 50)
	if r.Misjoins != 2 {
		t.Errorf("flipped middle: misjoins=%d, want 2", r.Misjoins)
	}

	// Wrong order: c before b jumps backwards on the reference.
	wrongOrder := ScaffoldParts{Contigs: []dna.Seq{a, c, b}, Gaps: []int{200, 300}}
	r = EvaluateScaffolds([]ScaffoldParts{wrongOrder}, ref, 0, 50)
	if r.Misjoins == 0 {
		t.Error("wrong-order scaffold reported no misjoins")
	}

	// A badly mis-sized (but in-order) gap inside MisjoinSlack counts
	// against tolerance, not as a misjoin.
	offGap := ScaffoldParts{Contigs: []dna.Seq{a, b}, Gaps: []int{700}}
	r = EvaluateScaffolds([]ScaffoldParts{offGap}, ref, 0, 50)
	if r.Misjoins != 0 || r.GapsOutOfTolerance != 1 {
		t.Errorf("off gap: misjoins=%d outOfTol=%d", r.Misjoins, r.GapsOutOfTolerance)
	}

	// An unalignable contig suppresses its joins.
	junk := scaffoldRef(t, 1000, 999)
	withJunk := ScaffoldParts{Contigs: []dna.Seq{a, junk, b}, Gaps: []int{200, 200}}
	r = EvaluateScaffolds([]ScaffoldParts{withJunk}, ref, 0, 50)
	if r.UnalignedContigs != 1 || r.Joins != 0 {
		t.Errorf("junk contig: unaligned=%d joins=%d", r.UnalignedContigs, r.Joins)
	}
}
